package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/simnet"
)

func newTestEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(WithDBIterations(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestRunJoinShape(t *testing.T) {
	if testing.Short() {
		t.Skip("join benchmark in -short mode")
	}
	env := newTestEnv(t)
	res, err := RunJoin(env, simnet.ProfileLAN, 3)
	if err != nil {
		t.Fatalf("RunJoin: %v", err)
	}
	// The shape the paper reports: the secure join is substantially more
	// expensive than the plain one (81.76% on their testbed), and both
	// are positive.
	if res.PlainTotal <= 0 || res.SecureTotal <= 0 {
		t.Fatalf("non-positive totals: %+v", res)
	}
	if res.SecureTotal <= res.PlainTotal {
		t.Fatalf("secure join (%v) not more expensive than plain (%v)", res.SecureTotal, res.PlainTotal)
	}
	if res.OverheadPct < 10 {
		t.Fatalf("join overhead %.1f%% implausibly low", res.OverheadPct)
	}
	// The secure exchange moves more frames (3 round trips vs 2) and
	// more bytes (credentials, signatures, envelopes).
	if res.Secure.Frames <= res.Plain.Frames {
		t.Fatalf("secure frames %d <= plain frames %d", res.Secure.Frames, res.Plain.Frames)
	}
	if res.Secure.Bytes <= res.Plain.Bytes {
		t.Fatalf("secure bytes %d <= plain bytes %d", res.Secure.Bytes, res.Plain.Bytes)
	}
}

func TestRunMsgSeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("message benchmark in -short mode")
	}
	env := newTestEnv(t)
	sizes := []int{64, 65536, 1 << 20}
	points, err := RunMsgSeries(env, simnet.ProfileLAN, sizes, 2, core.ModeFull)
	if err != nil {
		t.Fatalf("RunMsgSeries: %v", err)
	}
	if len(points) != len(sizes) {
		t.Fatalf("points = %d", len(points))
	}
	// Figure 2's shape: overhead is largest for small messages and falls
	// as transfer time dominates.
	if points[0].OverheadPct <= points[len(points)-1].OverheadPct {
		t.Fatalf("overhead did not fall with size: %.1f%% (64B) vs %.1f%% (1MiB)",
			points[0].OverheadPct, points[len(points)-1].OverheadPct)
	}
	// At small sizes the crypto cost must dominate visibly; at large
	// sizes secure and plain converge, so only a small negative margin
	// (scheduler noise at few iterations) is tolerated.
	if points[0].OverheadPct < 20 {
		t.Fatalf("small-message overhead %.1f%% implausibly low", points[0].OverheadPct)
	}
	for _, p := range points {
		if p.OverheadPct < -20 {
			t.Fatalf("secure substantially faster than plain at size %d (%.1f%%)", p.Size, p.OverheadPct)
		}
	}
}

func TestOpCostTotal(t *testing.T) {
	c := OpCost{Wall: 10 * time.Millisecond, Frames: 4, Bytes: 1_000_000}
	p := simnet.LinkProfile{Latency: time.Millisecond, Bandwidth: 1_000_000}
	// 10ms wall + 4×1ms latency + 1s serialization.
	want := 10*time.Millisecond + 4*time.Millisecond + time.Second
	if got := c.Total(p); got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	if got := c.Total(simnet.LinkProfile{}); got != c.Wall {
		t.Fatalf("Total(zero profile) = %v, want wall", got)
	}
}

func TestOverheadPct(t *testing.T) {
	if got := Overhead(100, 182); got < 81.9 || got > 82.1 {
		t.Fatalf("Overhead(100,182) = %.2f", got)
	}
	if got := Overhead(0, 50); got != 0 {
		t.Fatalf("Overhead(0,·) = %.2f", got)
	}
}

func TestAddUserUnique(t *testing.T) {
	env := newTestEnv(t)
	a1, p1, err := env.AddUser()
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := env.AddUser()
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("AddUser produced duplicate aliases")
	}
	if _, err := env.DB.Authenticate(a1, p1); err != nil {
		t.Fatal("registered user cannot authenticate")
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"size", "plain", "secure"},
	}
	tbl.AddRow("64", "1ms", "3ms")
	tbl.AddRow("1048576", "100ms", "104ms")
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1048576") {
		t.Fatalf("output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Header: []string{"a", "b"}}
	tbl.AddRow("1", `va"l,ue`)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"va\"\"l,ue\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
