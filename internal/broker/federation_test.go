package broker_test

import (
	"context"
	"strconv"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

// fedHarness is a two-broker federated network over one shared user
// database, as §2.1 describes.
type fedHarness struct {
	t        *testing.T
	net      *simnet.Network
	brA, brB *broker.Broker
	db       *userdb.Store
}

func newFedHarness(t *testing.T) *fedHarness {
	t.Helper()
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "math")
	db.Register("bob", "pw", "math")
	auth := broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
		return db.Authenticate(u, p)
	})
	mk := func(name string) *broker.Broker {
		b, err := broker.New(broker.Config{
			Name: name, PeerID: keys.LegacyPeerID(name), Net: net, DB: auth,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		return b
	}
	brA, brB := mk("broker-a"), mk("broker-b")
	brA.Federate(brB.PeerID())
	brB.Federate(brA.PeerID())
	return &fedHarness{t: t, net: net, brA: brA, brB: brB, db: db}
}

func (h *fedHarness) login(alias string, br *broker.Broker) *client.Client {
	h.t.Helper()
	cl, err := client.New(h.net, membership.NewNone(), alias)
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(cl.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Connect(ctx, br.PeerID()); err != nil {
		h.t.Fatal(err)
	}
	if err := cl.Login(ctx, "pw"); err != nil {
		h.t.Fatal(err)
	}
	return cl
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met within deadline")
}

func TestFederationSharesPeerRegistry(t *testing.T) {
	h := newFedHarness(t)
	alice := h.login("alice", h.brA)
	_ = h.login("bob", h.brB)

	// Broker A learns about bob (connected to B) and vice versa.
	waitUntil(t, func() bool {
		info, ok := h.brA.Peer(keys.LegacyPeerID("bob"))
		return ok && info.Online && !info.Local()
	})
	waitUntil(t, func() bool {
		info, ok := h.brB.Peer(alice.PeerID())
		return ok && info.Online && info.Origin == h.brA.PeerID()
	})

	// Alice (on A) sees bob in the math group listing.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var sawBob bool
	waitUntil(t, func() bool {
		peers, err := alice.GetOnlinePeers(ctx, "math")
		if err != nil {
			return false
		}
		for _, p := range peers {
			if p.Username == "bob" {
				sawBob = true
			}
		}
		return sawBob
	})
}

func TestFederationCrossBrokerMessaging(t *testing.T) {
	h := newFedHarness(t)
	alice := h.login("alice", h.brA)
	bob := h.login("bob", h.brB)

	// Bob's pipe advertisement (published to B) must reach A's index.
	waitUntil(t, func() bool {
		recs := h.brA.Cache().Find("PipeAdvertisement", nil)
		for _, r := range recs {
			if r.Doc.ChildText("PeerID") == string(bob.PeerID()) {
				return true
			}
		}
		return false
	})

	bobEvents := events.NewCollector(bob.Bus())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := alice.SendMsgPeer(ctx, bob.PeerID(), "math", "cross-broker hello"); err != nil {
		t.Fatalf("cross-broker SendMsgPeer: %v", err)
	}
	e, ok := bobEvents.WaitFor(events.MessageReceived, 5*time.Second)
	if !ok {
		t.Fatal("message across brokers not delivered")
	}
	if string(e.Data) != "cross-broker hello" {
		t.Fatalf("payload = %q", e.Data)
	}
}

func TestFederationPeerDown(t *testing.T) {
	h := newFedHarness(t)
	alice := h.login("alice", h.brA)
	bob := h.login("bob", h.brB)
	waitUntil(t, func() bool {
		info, ok := h.brA.Peer(bob.PeerID())
		return ok && info.Online
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := bob.Logout(ctx); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool {
		info, ok := h.brA.Peer(bob.PeerID())
		return ok && !info.Online
	})
	peers, err := alice.GetOnlinePeers(ctx, "math")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers {
		if p.Username == "bob" {
			t.Fatal("bob still listed on broker A after logout at broker B")
		}
	}
}

func TestFederationIgnoresNonPartners(t *testing.T) {
	h := newFedHarness(t)
	// A rogue broker not in the federation sends a fedPeerUp; it must be
	// ignored.
	rogue, err := broker.New(broker.Config{
		Name: "rogue", PeerID: keys.LegacyPeerID("rogue"), Net: h.net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return nil, nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	rogue.Federate(h.brA.PeerID()) // one-sided: A does not trust rogue
	rogue.RegisterPeer("urn:jxta:uuid-ghost", "ghost", []string{"math"})
	time.Sleep(100 * time.Millisecond)
	if _, ok := h.brA.Peer("urn:jxta:uuid-ghost"); ok {
		t.Fatal("broker A accepted a peer from a non-partner broker")
	}
}

func TestFederateAnnouncesExistingPeers(t *testing.T) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "math")
	auth := broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
		return db.Authenticate(u, p)
	})
	brA, err := broker.New(broker.Config{Name: "a", PeerID: keys.LegacyPeerID("a"), Net: net, DB: auth})
	if err != nil {
		t.Fatal(err)
	}
	defer brA.Close()
	brB, err := broker.New(broker.Config{Name: "b", PeerID: keys.LegacyPeerID("b"), Net: net, DB: auth})
	if err != nil {
		t.Fatal(err)
	}
	defer brB.Close()

	// Alice logs into A before the federation link exists.
	cl, err := client.New(net, membership.NewNone(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Connect(ctx, brA.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Login(ctx, "pw"); err != nil {
		t.Fatal(err)
	}

	// Federating later still announces alice to B.
	brB.Federate(brA.PeerID())
	brA.Federate(brB.PeerID())
	waitUntil(t, func() bool {
		info, ok := brB.Peer(cl.PeerID())
		return ok && info.Online
	})
	if got := brB.FederationPartners(); len(got) != 1 || got[0] != brA.PeerID() {
		t.Fatalf("partners = %v", got)
	}
}

// TestFederationStalePresenceIgnored: broker-to-broker presence pushes
// are delivered with no ordering guarantee, so a peer-up or peer-down
// describing a peer's PREVIOUS session can arrive after the peer has
// already re-registered — here, locally. The session timestamp the
// messages carry must keep presence monotonic: the stale updates are
// discarded (a live local login is never clobbered into a federation-
// resident or offline record, which would misroute relay hand-offs),
// while a genuinely newer remote session still supersedes the local
// record once the peer really moves.
func TestFederationStalePresenceIgnored(t *testing.T) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	defer net.Close()
	db := userdb.NewStoreIter(4)
	db.Register("bob", "pw", "math")
	br, err := broker.New(broker.Config{
		Name: "b", PeerID: keys.LegacyPeerID("b"), Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	partnerID := keys.LegacyPeerID("partner")
	partner, err := endpoint.NewService(net, partnerID)
	if err != nil {
		t.Fatal(err)
	}
	defer partner.Close()
	br.Federate(partnerID)

	bob := h2Login(t, net, br)
	if !br.PeerResident(bob.PeerID()) || !br.PeerOnline(bob.PeerID()) {
		t.Fatal("local login did not register bob resident+online")
	}

	// The partner replays bob's old session: a peer-up and peer-down
	// whose session started a minute before his live local one.
	stale := time.Now().Add(-time.Minute).UnixNano()
	send := func(msg *endpoint.Message) {
		t.Helper()
		if err := partner.Send(br.PeerID(), proto.BrokerService, msg); err != nil {
			t.Fatal(err)
		}
	}
	send(endpoint.NewMessage().
		AddString(proto.ElemOp, "fedPeerUp").
		AddString(proto.ElemPeer, string(bob.PeerID())).
		AddString(proto.ElemUser, "bob").
		AddString(proto.ElemGroups, "math").
		AddString(proto.ElemFedSession, strconv.FormatInt(stale, 10)))
	send(endpoint.NewMessage().
		AddString(proto.ElemOp, "fedPeerDown").
		AddString(proto.ElemPeer, string(bob.PeerID())).
		AddString(proto.ElemFedSession, strconv.FormatInt(stale, 10)))
	// Ignoring is the absence of a transition: watch the record through
	// the delivery window and fail the moment it flips.
	hold := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(hold) {
		if !br.PeerResident(bob.PeerID()) || !br.PeerOnline(bob.PeerID()) {
			t.Fatal("stale federation update clobbered a live local session")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A NEWER remote session still wins: bob really moved brokers.
	fresh := time.Now().UnixNano()
	send(endpoint.NewMessage().
		AddString(proto.ElemOp, "fedPeerUp").
		AddString(proto.ElemPeer, string(bob.PeerID())).
		AddString(proto.ElemUser, "bob").
		AddString(proto.ElemGroups, "math").
		AddString(proto.ElemFedSession, strconv.FormatInt(fresh, 10)))
	waitUntil(t, func() bool {
		return br.PeerOrigin(bob.PeerID()) == partnerID && !br.PeerResident(bob.PeerID())
	})
}

// h2Login logs bob into a single plain broker (no harness).
func h2Login(t *testing.T, net *simnet.Network, br *broker.Broker) *client.Client {
	t.Helper()
	cl, err := client.New(net, membership.NewNone(), "bob")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := cl.Connect(ctx, br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Login(ctx, "pw"); err != nil {
		t.Fatal(err)
	}
	return cl
}
