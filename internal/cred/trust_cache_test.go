package cred

import (
	"errors"
	"testing"
	"time"
)

// The TrustStore memoizes successful RSA signature checks. These tests
// pin the security contract of that cache: expiry is still enforced on
// every call, and a same-body credential carrying a different signature
// never rides a previous verdict.

func TestTrustStoreCachedVerifyStillChecksExpiry(t *testing.T) {
	adm, br, _ := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := ts.Verify(br, now); err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	if err := ts.Verify(br, now); err != nil {
		t.Fatalf("warm verify: %v", err)
	}
	if h, _ := ts.sigCache.Stats(); h == 0 {
		t.Fatal("second verify did not hit the signature cache")
	}
	// Past NotAfter the cached RSA verdict must not rescue the
	// credential.
	if err := ts.Verify(br, br.NotAfter.Add(time.Minute)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired verify after caching = %v, want ErrExpired", err)
	}
	if err := ts.Verify(br, br.NotBefore.Add(-time.Minute)); !errors.Is(err, ErrExpired) {
		t.Fatalf("not-yet-valid verify after caching = %v, want ErrExpired", err)
	}
}

func TestTrustStoreCacheKeyedBySignature(t *testing.T) {
	adm, br, _ := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := ts.Verify(br, now); err != nil {
		t.Fatal(err)
	}
	// Same body, forged signature: byte-identical digest and issuer, but
	// the cached verdict must not apply.
	forged := br.Clone()
	forged.Signature[0] ^= 0xff
	if err := ts.Verify(forged, now); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged-signature verify after caching = %v, want ErrBadSignature", err)
	}
	// The genuine credential still verifies.
	if err := ts.Verify(br, now); err != nil {
		t.Fatalf("genuine verify after forgery attempt: %v", err)
	}
}

func TestTrustStoreChainUsesCache(t *testing.T) {
	adm, br, cl := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := ts.VerifyChain(now, cl, br); err != nil {
		t.Fatalf("cold chain: %v", err)
	}
	if err := ts.VerifyChain(now, cl, br); err != nil {
		t.Fatalf("warm chain: %v", err)
	}
	hits, _ := ts.chainCache.Stats()
	if hits == 0 {
		t.Fatal("repeat chain verification never hit the chain-verdict cache")
	}
	// Chain verification after leaf expiry must fail even when cached.
	if err := ts.VerifyChain(cl.NotAfter.Add(time.Minute), cl, br); err == nil {
		t.Fatal("chain with expired leaf accepted after caching")
	}
}

func TestTrustStoreChainCacheCrossDocument(t *testing.T) {
	// Two different documents signed by the same peer carry freshly
	// parsed — distinct but byte-identical — credential chains. The
	// chain verdict must carry across those instances without any new
	// RSA work.
	adm, br, cl := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := ts.VerifyChain(now, cl, br); err != nil {
		t.Fatalf("cold chain: %v", err)
	}
	sigHits0, sigMiss0 := ts.sigCache.Stats()
	// Clones simulate a re-parse: same fields, no shared memo state.
	if err := ts.VerifyChain(now, cl.Clone(), br.Clone()); err != nil {
		t.Fatalf("cloned chain: %v", err)
	}
	if hits, _ := ts.chainCache.Stats(); hits == 0 {
		t.Fatal("cloned chain missed the chain-verdict cache")
	}
	sigHits1, sigMiss1 := ts.sigCache.Stats()
	if sigHits1 != sigHits0 || sigMiss1 != sigMiss0 {
		t.Fatal("chain-cache hit still consulted the per-link signature cache")
	}
}

func TestTrustStoreChainCacheKeyedBySignature(t *testing.T) {
	adm, br, cl := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := ts.VerifyChain(now, cl, br); err != nil {
		t.Fatal(err)
	}
	// A same-body leaf carrying a forged signature must not ride the
	// cached chain verdict.
	forged := cl.Clone()
	forged.Signature[0] ^= 0xff
	if err := ts.VerifyChain(now, forged, br); err == nil {
		t.Fatal("forged-signature chain accepted after caching")
	}
	// Nor may a leaf whose validity window was stretched (different
	// body, original signature).
	stretched := cl.Clone()
	stretched.NotAfter = stretched.NotAfter.Add(24 * time.Hour)
	if err := ts.VerifyChain(now, stretched, br); err == nil {
		t.Fatal("window-stretched chain accepted after caching")
	}
}
