package broker

// Registration hooks for the store-and-forward relay subsystem
// (internal/relay, attached by core.EnableBrokerRelay). The relay needs
// a broker-truth answer to two questions the original module never had
// to ask: "is this peer deliverable right now?" and "does this peer
// belong to that group, even though it is offline?" — offline peers
// leave the live group registry at logout, but their session record
// (PeerInfo) survives, which is exactly the roster store-and-forward
// delivery needs.

import (
	"sort"

	"jxtaoverlay/internal/keys"
)

// PeerOnline reports whether a peer is logged in at THIS broker and
// deliverable by direct push. Peers logged into federation partners are
// reported offline here: their own broker owns their presence, and the
// relay treats them as queueable.
func (b *Broker) PeerOnline(id keys.PeerID) bool {
	b.mu.RLock()
	p, ok := b.peers[id]
	// The PeerInfo fields must be read under the lock: the lease
	// sweeper flips Online concurrently with relay drains asking.
	online := ok && p.Online && p.Local()
	b.mu.RUnlock()
	return online && b.ep.Reachable(id)
}

// PeerResident reports whether a peer's presence is owned by THIS
// broker: its session record is local, not learned through federation.
// Only resident peers can ever be served from this broker's relay
// queues — a partner-resident peer logs in (and emits the presence
// event that drains a queue) at its own broker, so queueing for it
// here could only end in TTL expiry.
func (b *Broker) PeerResident(id keys.PeerID) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, ok := b.peers[id]
	return ok && p.Local()
}

// PeerOrigin reports which federation partner owns a peer's presence:
// the broker the peer was learned from, or "" for local (resident)
// peers and peers with no session record. The relay's delivery hook
// uses it to chase a queued slice to the partner broker the recipient
// migrated to, instead of letting the slice expire here.
func (b *Broker) PeerOrigin(id keys.PeerID) keys.PeerID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, ok := b.peers[id]
	if !ok {
		return ""
	}
	return p.Origin
}

// KnownMember reports whether a peer — online or offline — belongs to a
// group in its current session record. The empty group (network-wide
// traffic) is open to every known peer, mirroring memberOf.
func (b *Broker) KnownMember(id keys.PeerID, group string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, ok := b.peers[id]
	if !ok {
		return false
	}
	// Groups is mutated in place by join/leave, so it must be read
	// while still holding the lock.
	return group == "" || contains(p.Groups, group)
}

// KnownPeers lists every peer the broker has a session record for —
// online or offline — filtered to one group (all peers when group is
// empty), sorted by peer ID. This is the store-and-forward roster: the
// set of peers a relayed round may address.
func (b *Broker) KnownPeers(group string) []PeerInfo {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []PeerInfo
	for _, p := range b.peers {
		if group != "" && !contains(p.Groups, group) {
			continue
		}
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
