package cred

import (
	"errors"
	"testing"
	"time"
)

// The TrustStore memoizes successful RSA signature checks. These tests
// pin the security contract of that cache: expiry is still enforced on
// every call, and a same-body credential carrying a different signature
// never rides a previous verdict.

func TestTrustStoreCachedVerifyStillChecksExpiry(t *testing.T) {
	adm, br, _ := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := ts.Verify(br, now); err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	if err := ts.Verify(br, now); err != nil {
		t.Fatalf("warm verify: %v", err)
	}
	if h, _ := ts.sigCache.Stats(); h == 0 {
		t.Fatal("second verify did not hit the signature cache")
	}
	// Past NotAfter the cached RSA verdict must not rescue the
	// credential.
	if err := ts.Verify(br, br.NotAfter.Add(time.Minute)); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired verify after caching = %v, want ErrExpired", err)
	}
	if err := ts.Verify(br, br.NotBefore.Add(-time.Minute)); !errors.Is(err, ErrExpired) {
		t.Fatalf("not-yet-valid verify after caching = %v, want ErrExpired", err)
	}
}

func TestTrustStoreCacheKeyedBySignature(t *testing.T) {
	adm, br, _ := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := ts.Verify(br, now); err != nil {
		t.Fatal(err)
	}
	// Same body, forged signature: byte-identical digest and issuer, but
	// the cached verdict must not apply.
	forged := br.Clone()
	forged.Signature[0] ^= 0xff
	if err := ts.Verify(forged, now); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged-signature verify after caching = %v, want ErrBadSignature", err)
	}
	// The genuine credential still verifies.
	if err := ts.Verify(br, now); err != nil {
		t.Fatalf("genuine verify after forgery attempt: %v", err)
	}
}

func TestTrustStoreChainUsesCache(t *testing.T) {
	adm, br, cl := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := ts.VerifyChain(now, cl, br); err != nil {
		t.Fatalf("cold chain: %v", err)
	}
	if err := ts.VerifyChain(now, cl, br); err != nil {
		t.Fatalf("warm chain: %v", err)
	}
	hits, _ := ts.sigCache.Stats()
	if hits == 0 {
		t.Fatal("repeat chain verification never hit the signature cache")
	}
	// Chain verification after leaf expiry must fail even when cached.
	if err := ts.VerifyChain(cl.NotAfter.Add(time.Minute), cl, br); err == nil {
		t.Fatal("chain with expired leaf accepted after caching")
	}
}
