package cred

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/lru"
)

// verifyCacheSize bounds the per-store cache of RSA signature verdicts.
// Each entry is ~200 bytes of key material; 4096 entries comfortably
// cover a broker re-validating the credential chains of thousands of
// active peers.
const verifyCacheSize = 4096

// chainCacheSize bounds the per-store cache of whole-chain verdicts.
// One entry per distinct signer chain; a deployment has one chain per
// client credential, so 1024 covers about a thousand active signers.
const chainCacheSize = 1024

// TrustStore verifies credentials and credential chains against a set of
// anchors. Every JXTA-Overlay peer is provisioned with the
// administrator's self-signed credential as its single anchor (paper
// §4.1); brokers verified through it become intermediate issuers for
// client credentials.
type TrustStore struct {
	mu      sync.RWMutex
	anchors map[keys.PeerID]*Credential
	// issuers caches verified intermediate credentials (brokers) so a
	// client credential can be verified without re-presenting the broker
	// credential every time.
	issuers map[keys.PeerID]*Credential

	// sigCache remembers successful RSA signature checks, keyed by
	// (credential body digest, issuer key fingerprint, signature bytes).
	// Only the expensive modular exponentiation is skipped on a hit: the
	// validity window is always re-checked against the caller's clock, so
	// an expired credential is rejected even when cached. Failed checks
	// are never cached.
	sigCache *lru.Cache[string, struct{}]

	// chainCache remembers successful whole-chain verdicts across
	// *documents*: two different advertisements signed by the same peer
	// embed byte-identical credential chains, but each arrives as a
	// freshly parsed Credential whose canonical body would have to be
	// rebuilt to hit sigCache. The chain key is an injective encoding of
	// every security-relevant field of every link (identity fields, key
	// fingerprints, validity window, signature bytes) plus the resolved
	// root issuer's key fingerprint — equivalent to keying on the body
	// digests without paying canonicalization. Entries carry the chain's
	// validity window (latest NotBefore checked on every hit, earliest
	// NotAfter as the LRU expiry), so expiry is honored exactly as on
	// the uncached path; failures are never cached.
	chainCache *lru.Cache[string, *chainVerdict]
}

type chainVerdict struct {
	// notBefore is the latest NotBefore across the chain; the entry's
	// LRU expiry holds the earliest NotAfter.
	notBefore time.Time
}

// NewTrustStore creates a store trusting the given anchor credentials.
// Anchors must be self-signed and internally consistent; invalid anchors
// are rejected.
func NewTrustStore(anchors ...*Credential) (*TrustStore, error) {
	ts := &TrustStore{
		anchors:    make(map[keys.PeerID]*Credential),
		issuers:    make(map[keys.PeerID]*Credential),
		sigCache:   lru.New[string, struct{}](verifyCacheSize),
		chainCache: lru.New[string, *chainVerdict](chainCacheSize),
	}
	for _, a := range anchors {
		if a.Subject != a.Issuer {
			return nil, fmt.Errorf("cred: anchor %q is not self-signed", a.Subject)
		}
		if err := a.Verify(a.Key, time.Now()); err != nil {
			return nil, fmt.Errorf("cred: anchor %q: %w", a.Subject, err)
		}
		ts.anchors[a.Subject] = a
	}
	return ts, nil
}

// AddIssuer records a credential as an intermediate issuer after
// verifying it against the store. Typically called with a broker
// credential obtained during secureConnection.
func (t *TrustStore) AddIssuer(c *Credential) error {
	if err := t.Verify(c, time.Now()); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.issuers[c.Subject] = c
	return nil
}

// IssuerKey returns the public key of a known anchor or verified
// intermediate issuer.
func (t *TrustStore) IssuerKey(id keys.PeerID) (*keys.PublicKey, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if a, ok := t.anchors[id]; ok {
		return a.Key, true
	}
	if c, ok := t.issuers[id]; ok {
		return c.Key, true
	}
	return nil, false
}

// Verify checks a single credential: its issuer must be a known anchor
// or verified intermediate, and the signature and validity window must
// hold. Signature verdicts are cached (see sigCache); the validity
// window is enforced on every call.
func (t *TrustStore) Verify(c *Credential, now time.Time) error {
	key, ok := t.IssuerKey(c.Issuer)
	if !ok {
		return fmt.Errorf("%w: issuer %q", ErrUntrusted, c.Issuer)
	}
	return t.verifyCached(c, key, now)
}

// verifyCached is Credential.Verify with the RSA work memoized in the
// store's signature cache.
func (t *TrustStore) verifyCached(c *Credential, issuerKey *keys.PublicKey, now time.Time) error {
	if now.Before(c.NotBefore) || now.After(c.NotAfter) {
		return ErrExpired
	}
	m, err := c.bodyMemo()
	if err != nil {
		return err
	}
	fp, err := issuerKey.Fingerprint()
	if err != nil {
		return err
	}
	// The signature bytes are part of the key: a same-body credential
	// carrying a different (possibly forged) signature must never ride a
	// previous verdict.
	cacheKey := string(m.digest) + string(fp[:]) + string(c.Signature)
	if _, ok := t.sigCache.Get(cacheKey, now); ok {
		return nil
	}
	if err := issuerKey.Verify(m.body, c.Signature); err != nil {
		return ErrBadSignature
	}
	// The verdict can outlive its usefulness past NotAfter; expire it
	// there so the cache never vouches for a credential the window check
	// would reject anyway.
	t.sigCache.Put(cacheKey, struct{}{}, c.NotAfter)
	return nil
}

// VerifyChain checks a credential chain leaf-first: chain[0] must be
// signed by chain[1]'s subject, and so on, with the last element's
// issuer being a trust anchor. Every link's validity window is enforced.
// On success the intermediates are cached as issuers.
//
// Verdicts are memoized across documents (see chainCache): verifying a
// second advertisement by an already-known signer skips the per-link
// RSA and canonicalization work entirely, leaving the document's own
// leaf signature as cold verification's only RSA operation.
func (t *TrustStore) VerifyChain(now time.Time, chain ...*Credential) error {
	if len(chain) == 0 {
		return fmt.Errorf("cred: empty chain")
	}
	key := t.chainKey(chain)
	if key != "" {
		// A hit outside the validity window falls through to the slow
		// path, which produces the precise per-link error.
		if v, hit := t.chainCache.Get(key, now); hit && !now.Before(v.notBefore) {
			t.rememberIssuers(chain)
			return nil
		}
	}
	for i, c := range chain {
		if i+1 < len(chain) {
			next := chain[i+1]
			if c.Issuer != next.Subject {
				return fmt.Errorf("cred: chain broken at %d: issuer %q != next subject %q", i, c.Issuer, next.Subject)
			}
			if err := t.verifyCached(c, next.Key, now); err != nil {
				return fmt.Errorf("cred: chain link %d: %w", i, err)
			}
			continue
		}
		// Last link must chain to an anchor (or already-verified issuer).
		if err := t.Verify(c, now); err != nil {
			return fmt.Errorf("cred: chain root: %w", err)
		}
	}
	t.rememberIssuers(chain)
	if key != "" {
		nb, na := ChainWindow(chain)
		t.chainCache.Put(key, &chainVerdict{notBefore: nb}, na)
	}
	return nil
}

// rememberIssuers records the chain's intermediates as trusted issuers.
func (t *TrustStore) rememberIssuers(chain []*Credential) {
	if len(chain) < 2 {
		return
	}
	t.mu.Lock()
	for _, c := range chain[1:] {
		t.issuers[c.Subject] = c
	}
	t.mu.Unlock()
}

// ChainWindow returns a chain's combined validity window: the latest
// NotBefore and the earliest NotAfter across all links. Every cache of
// chain-derived verdicts (the store's own chain cache, xdsig's
// document verification cache) must bound entry lifetime by exactly
// this window.
func ChainWindow(chain []*Credential) (notBefore, notAfter time.Time) {
	for _, c := range chain {
		if c.NotBefore.After(notBefore) {
			notBefore = c.NotBefore
		}
		if notAfter.IsZero() || c.NotAfter.Before(notAfter) {
			notAfter = c.NotAfter
		}
	}
	return notBefore, notAfter
}

// chainKey builds the chain-verdict cache key: for every link, a
// length-prefixed (hence injective) encoding of each field the verdict
// vouches for — identity fields, subject key fingerprint, validity
// window and signature bytes — plus the fingerprint of the resolved
// root issuer key the last link was verified under. The encoding covers
// exactly the fields the canonical signing body covers, so it is
// equivalent to keying on the body digests without rebuilding and
// canonicalizing a document tree per link. Returns "" when a key cannot
// be built (e.g. the root issuer is unknown); callers then take the
// slow path, which reports the precise error.
func (t *TrustStore) chainKey(chain []*Credential) string {
	rootKey, ok := t.IssuerKey(chain[len(chain)-1].Issuer)
	if !ok {
		return ""
	}
	rootFP, err := rootKey.Fingerprint()
	if err != nil {
		return ""
	}
	buf := make([]byte, 0, 64+len(chain)*224)
	buf = append(buf, rootFP[:]...)
	for _, c := range chain {
		if c.Key == nil {
			return ""
		}
		fp, err := c.Key.Fingerprint()
		if err != nil {
			return ""
		}
		for _, field := range [][]byte{
			[]byte(c.Subject), []byte(c.SubjectName), []byte(c.Role),
			[]byte(c.Issuer), fp[:],
			binary.BigEndian.AppendUint64(nil, uint64(c.NotBefore.UnixNano())),
			binary.BigEndian.AppendUint64(nil, uint64(c.NotAfter.UnixNano())),
			c.Signature,
		} {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(field)))
			buf = append(buf, field...)
		}
	}
	return string(buf)
}

// ChainCacheStats reports cumulative chain-verdict cache hits and
// misses.
func (t *TrustStore) ChainCacheStats() (hits, misses uint64) {
	return t.chainCache.Stats()
}

// Anchors returns the anchor credentials (for diagnostics).
func (t *TrustStore) Anchors() []*Credential {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Credential, 0, len(t.anchors))
	for _, a := range t.anchors {
		out = append(out, a)
	}
	return out
}
