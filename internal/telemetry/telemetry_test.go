package telemetry

import (
	"bytes"
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeSnapshot(t *testing.T) {
	r := New()
	c := r.Counter("relay_enqueued_total", "items queued")
	g := r.Gauge("relay_queued", "items currently queued")
	r.GaugeFunc("verify_cache_hits_total", "cache hits", func() float64 { return 42 })
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)

	snap := r.Snapshot()
	want := map[string]float64{
		"relay_enqueued_total":    4,
		"relay_queued":            5,
		"verify_cache_hits_total": 42,
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d samples, want %d", len(snap), len(want))
	}
	for _, s := range snap {
		if want[s.Name] != s.Value {
			t.Errorf("%s = %g, want %g", s.Name, s.Value, want[s.Name])
		}
	}
	// Sorted by name.
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Errorf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestCounterIdempotentByName(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("counter identity broken")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestGaugeFuncRebind(t *testing.T) {
	// A restarted subsystem re-registers its collectors; the name must
	// follow the live instance, not the dead closure.
	r := New()
	r.GaugeFunc("relay_queued", "", func() float64 { return 1 })
	r.GaugeFunc("relay_queued", "", func() float64 { return 2 })
	if v, _ := r.Get("relay_queued"); v != 2 {
		t.Fatalf("collector not rebound: got %g, want 2", v)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("delivery_ms", "", []float64{1, 2, 4, 8, 16})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(10) // (8,16] bucket
	}
	if p50 := h.Quantile(0.5); p50 > 1 {
		t.Errorf("p50 = %g, want <= 1", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 8 || p99 > 16 {
		t.Errorf("p99 = %g, want in (8,16]", p99)
	}
	if q := h.Quantile(1); q > 16 {
		t.Errorf("p100 = %g, want <= 16", q)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := New()
	h := r.Histogram("d", "", []float64{1})
	h.Observe(100)
	if q := h.Quantile(0.99); !(q == 1 || math.IsInf(q, 1)) {
		// Overflow observations clamp to the largest finite bound.
		t.Errorf("overflow quantile = %g", q)
	}
	snap := r.Snapshot()
	if snap[0].Buckets[1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", snap[0].Buckets[1])
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := New()
	r.Counter("ops_total", "dispatched broker operations").Add(9)
	h := r.Histogram("lat_ms", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP ops_total dispatched broker operations",
		"# TYPE ops_total counter",
		"ops_total 9",
		`lat_ms_bucket{le="1"} 1`,
		`lat_ms_bucket{le="10"} 2`,
		`lat_ms_bucket{le="+Inf"} 2`,
		"lat_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text exposition missing %q:\n%s", want, out)
		}
	}
}

func TestServeAndFetch(t *testing.T) {
	r := New()
	r.Counter("relay_direct_total", "").Add(5)
	r.GaugeFunc("parse_failures_total", "", func() float64 { return 3 })
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// All three address forms admin metrics accepts.
	for _, base := range []string{srv.Addr(), "http://" + srv.Addr(), "http://" + srv.Addr() + "/metrics.json"} {
		samples, err := Fetch(ctx, base)
		if err != nil {
			t.Fatalf("Fetch(%q): %v", base, err)
		}
		got := map[string]float64{}
		for _, s := range samples {
			got[s.Name] = s.Value
		}
		if got["relay_direct_total"] != 5 || got["parse_failures_total"] != 3 {
			t.Fatalf("Fetch(%q) returned %v", base, got)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := New()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", LatencyBucketsMS)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 50))
				r.Counter("c", "").Add(1) // registration race path
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent snapshots
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if c.Value() != 16000 {
		t.Fatalf("counter = %d, want 16000", c.Value())
	}
}
