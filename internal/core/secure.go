package core

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/backoff"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/parallel"
	"jxtaoverlay/internal/pipes"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/trace"
	"jxtaoverlay/internal/xdsig"
	"jxtaoverlay/internal/xmldoc"
)

// Secure-primitive errors.
var (
	ErrBrokerNotLegit  = errors.New("core: broker failed the legitimacy check")
	ErrNoSid           = errors.New("core: no session identifier (call SecureConnection first)")
	ErrNotSecure       = errors.New("core: identity has no key pair (use PSE membership)")
	ErrNoCredential    = errors.New("core: no broker-issued credential (call SecureLogin first)")
	ErrPeerAdvInvalid  = errors.New("core: peer advertisement failed verification")
	ErrLoginRejected   = errors.New("core: secure login rejected")
	ErrCredUnexpected  = errors.New("core: issued credential does not match this peer")
	ErrSenderUnknown   = errors.New("core: sender's signed advertisement unavailable")
	ErrMessageTampered = errors.New("core: secure message failed verification")
	ErrMessageReplayed = errors.New("core: secure message replayed")
	ErrMessageStale    = errors.New("core: secure message outside freshness window")
)

// Option configures a SecureClient.
type Option func(*SecureClient)

// WithMode selects the envelope mode for outgoing secure messages
// (default ModeFull — the paper's primitive).
func WithMode(m Mode) Option { return func(s *SecureClient) { s.mode = m } }

// WithChallengeSize sets the secureConnection challenge length in bytes.
func WithChallengeSize(n int) Option { return func(s *SecureClient) { s.challengeSize = n } }

// WithReplayGuard enables receive-side replay protection for the
// messenger primitives — the paper leaves them stateless best-effort;
// this is the further-work hardening (see ReplayGuard).
func WithReplayGuard(g *ReplayGuard) Option { return func(s *SecureClient) { s.replayGuard = g } }

// WithVerifyCacheSize sizes the client's signed-advertisement
// verification cache (0 = xdsig.DefaultVerifyCacheSize).
func WithVerifyCacheSize(n int) Option { return func(s *SecureClient) { s.verifyCacheSize = n } }

// SecureClient layers the paper's secure primitives over a client peer.
// The embedded Client keeps every original primitive available, so an
// application can be migrated one primitive at a time.
type SecureClient struct {
	*client.Client

	kp    *keys.KeyPair
	trust *cred.TrustStore
	mode  Mode

	challengeSize   int
	replayGuard     *ReplayGuard
	verifyCacheSize int

	// vcache memoizes VerifyTrusted verdicts on peers' signed pipe
	// advertisements, so messaging the same peers repeatedly (or a group
	// fan-out touching the same advertisements) pays RSA once per
	// advertisement rather than once per message.
	vcache *xdsig.VerifyCache

	// auditor receives every client-side security refusal (the
	// SecurityAlert surface: open, replay and verification failures) as
	// a tamper-evident audit record. Nil = off; loads are nil-tolerant.
	auditor atomic.Pointer[audit.Journal]

	mu         sync.RWMutex
	sid        string
	brokerCred *cred.Credential

	// Presence lease granted at SecureLogin (liveness; see
	// heartbeat.go). hbSeq is the client-side heartbeat sequence,
	// strictly increasing across the whole client lifetime so a lease
	// from a resumed session never sees a repeated sequence number.
	leaseID  string
	leaseTTL time.Duration
	hbSeq    uint64
}

// NewSecureClient wraps a client whose membership identity carries a key
// pair (PSE). The trust store must be anchored at the deployment's
// administrator credential.
func NewSecureClient(cl *client.Client, trust *cred.TrustStore, opts ...Option) (*SecureClient, error) {
	id := cl.Identity()
	if !id.Secure() {
		return nil, ErrNotSecure
	}
	s := &SecureClient{
		Client:        cl,
		kp:            id.Keys,
		trust:         trust,
		mode:          ModeFull,
		challengeSize: 32,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.vcache = xdsig.NewVerifyCache(trust, s.verifyCacheSize)
	cl.SetEnvelopeHandler(s.handleEnvelope)
	return s, nil
}

// SetAuditor attaches a tamper-evident audit journal: every client-side
// security refusal that raises a SecurityAlert also lands in the
// journal as an open-fail record, and the alert payload carries the
// record's sequence number under "audit" so an alert, its audit record
// and its trace waterfall cross-reference each other.
func (s *SecureClient) SetAuditor(j *audit.Journal) {
	if j != nil {
		s.auditor.Store(j)
	}
}

// alertAudit appends one security refusal to the attached audit journal
// (nil-safe) and builds the SecurityAlert payload, stamping the audit
// sequence number when a record was written.
func (s *SecureClient) alertAudit(peer keys.PeerID, op, reason string, tid uint64) map[string]string {
	payload := map[string]string{"reason": reason}
	if seq := s.auditor.Load().Record(audit.Event{Kind: audit.KindOpenFail, Peer: string(peer), Op: op, Reason: reason, Trace: tid}); seq != 0 {
		payload["audit"] = strconv.FormatUint(seq, 10)
	}
	return payload
}

// VerifyCache exposes the client's advertisement verification cache for
// diagnostics.
func (s *SecureClient) VerifyCache() *xdsig.VerifyCache { return s.vcache }

// Sid returns the current session identifier ("" before
// SecureConnection or after SecureLogin consumes it).
func (s *SecureClient) Sid() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sid
}

// BrokerCredential returns the verified broker credential.
func (s *SecureClient) BrokerCredential() *cred.Credential {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.brokerCred
}

// Mode returns the configured envelope mode.
func (s *SecureClient) Mode() Mode { return s.mode }

// SecureConnection implements §4.2.1: locate the broker, then
// authenticate it with a random challenge. On success the broker's
// credential and the fresh session identifier are stored; on failure the
// broker is treated as illegitimate and the connection is abandoned.
func (s *SecureClient) SecureConnection(ctx context.Context, brokerID keys.PeerID) error {
	// Step 1: wait for a broker and open the connection.
	if err := s.Connect(ctx, brokerID); err != nil {
		return err
	}
	// Step 2: choose a random challenge.
	chall, err := keys.RandomBytes(s.challengeSize)
	if err != nil {
		return err
	}
	// Step 3: Cl → Br {chall}.
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpSecureConnect).
		Add(proto.ElemChallenge, chall)
	resp, err := s.Call(ctx, msg)
	if err != nil {
		s.reject(brokerID, "no secure connection response")
		return fmt.Errorf("%w: %v", ErrBrokerNotLegit, err)
	}
	// Step 5 response: {sid, S_SKBr(chall), Cred_Br^Adm}.
	sid, _ := resp.GetString(proto.ElemSid)
	sig, _ := resp.Get(proto.ElemSig)
	credRaw, ok := resp.Get(proto.ElemCred)
	if sid == "" || len(sig) == 0 || !ok {
		s.reject(brokerID, "incomplete secure connection response")
		return ErrBrokerNotLegit
	}
	credDoc, err := xmldoc.ParseCanonical(credRaw)
	if err != nil {
		s.reject(brokerID, "malformed broker credential")
		return ErrBrokerNotLegit
	}
	brCred, err := cred.Parse(credDoc)
	if err != nil {
		s.reject(brokerID, "malformed broker credential")
		return ErrBrokerNotLegit
	}
	// Step 6: check Cred_Br^Adm authenticity using PK_Adm.
	if err := s.trust.Verify(brCred, time.Now()); err != nil || brCred.Role != cred.RoleBroker {
		s.reject(brokerID, "broker credential not issued by administrator")
		return ErrBrokerNotLegit
	}
	// Step 7: check S_SKBr(chall) using PK_Br from the credential.
	if err := brCred.Key.Verify(chall, sig); err != nil {
		s.reject(brokerID, "broker does not possess SK_Br (impersonator)")
		return ErrBrokerNotLegit
	}
	// Brokers with CBIDs also get the key/ID binding check.
	if keys.IsCBID(brCred.Subject) {
		if err := brCred.VerifyCBID(); err != nil {
			s.reject(brokerID, "broker credential CBID mismatch")
			return ErrBrokerNotLegit
		}
	}
	// Step 8-9: broker is legitimate; store sid and Cred_Br.
	s.mu.Lock()
	s.sid = sid
	s.brokerCred = brCred
	s.mu.Unlock()
	s.trust.AddIssuer(brCred)
	s.Bus().Emit(events.Event{Type: events.BrokerVerified, From: brokerID, Payload: map[string]string{
		"broker": brCred.SubjectName,
	}})
	return nil
}

func (s *SecureClient) reject(brokerID keys.PeerID, reason string) {
	s.Bus().Emit(events.Event{Type: events.BrokerRejected, From: brokerID, Payload: map[string]string{
		"reason": reason,
	}})
}

// SecureLogin implements §4.2.2: the login request is signed with the
// client's key, bundled with the session identifier, and encrypted to
// the verified broker's public key. On success the broker-issued
// credential is installed and every advertisement published from now on
// is signed.
func (s *SecureClient) SecureLogin(ctx context.Context, password string) error {
	s.mu.Lock()
	sid := s.sid
	brCred := s.brokerCred
	s.sid = "" // single use, mirroring the broker
	s.mu.Unlock()
	if brCred == nil {
		return ErrNoCredential
	}
	if sid == "" {
		return ErrNoSid
	}
	keyB64, err := s.kp.Public().MarshalBase64()
	if err != nil {
		return err
	}
	// Step 1: req = S_SKCl(username, password, PKCl).
	doc := xmldoc.New("SecureLoginRequest", "")
	doc.AddText("User", s.Username())
	doc.AddText("Pass", password)
	doc.AddText("PeerID", string(s.PeerID()))
	doc.AddText("Key", keyB64)
	doc.AddText("Sid", sid)
	sig, err := s.kp.Sign(doc.Canonical())
	if err != nil {
		return err
	}
	doc.AddText("Signature", base64.StdEncoding.EncodeToString(sig))

	// Step 3: Cl → Br {E_PKBr(req, sid)}.
	env, err := brCred.Key.Encrypt(doc.Canonical())
	if err != nil {
		return err
	}
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpSecureLogin).
		Add(proto.ElemEnvelope, env.Marshal())
	resp, err := s.Call(ctx, msg)
	if err != nil {
		s.Bus().Emit(events.Event{Type: events.LoginFailed, From: s.Broker()})
		return fmt.Errorf("%w: %v", ErrLoginRejected, err)
	}

	// Step 9-10: receive and validate cr = Cred_Cl^Br.
	credRaw, ok := resp.Get(proto.ElemCred)
	if !ok {
		return ErrLoginRejected
	}
	credDoc, err := xmldoc.ParseCanonical(credRaw)
	if err != nil {
		return ErrLoginRejected
	}
	myCred, err := cred.Parse(credDoc)
	if err != nil {
		return ErrLoginRejected
	}
	if !myCred.Key.Equal(s.kp.Public()) || myCred.Subject != s.PeerID() {
		return ErrCredUnexpected
	}
	if err := myCred.Verify(brCred.Key, time.Now()); err != nil {
		return ErrCredUnexpected
	}

	// Install the credential into the identity (and keystore, for PSE).
	if pse, ok := s.Membership().(*membership.PSE); ok {
		if err := pse.SetCredential(myCred, brCred); err != nil {
			return err
		}
	} else {
		id := s.Identity()
		id.Credential = myCred
		id.Chain = []*cred.Credential{myCred, brCred}
	}

	// From here on, everything published is signed with the chain.
	s.SetAdvSigner(func(doc *xmldoc.Element) error {
		return xdsig.Sign(doc, s.kp, myCred, brCred)
	})

	// Liveness: record the presence lease, if the broker granted one.
	leaseID, _ := resp.GetString(proto.ElemLease)
	var leaseTTL time.Duration
	if ttlStr, ok := resp.GetString(proto.ElemLeaseTTL); ok {
		if ms, err := strconv.ParseInt(ttlStr, 10, 64); err == nil && ms > 0 {
			leaseTTL = time.Duration(ms) * time.Millisecond
		}
	}
	s.mu.Lock()
	s.leaseID = leaseID
	s.leaseTTL = leaseTTL
	s.mu.Unlock()

	groupsCSV, _ := resp.GetString(proto.ElemGroups)
	return s.FinishLogin(ctx, splitCSV(groupsCSV))
}

// SecureMsgPeer implements §4.3.1: fetch and verify the destination's
// signed pipe advertisement, extract PK from the enclosed credential,
// then send E_PK(m, S_SK(m)).
func (s *SecureClient) SecureMsgPeer(ctx context.Context, peer keys.PeerID, group, text string) error {
	recipientKey, pipeAdv, err := s.verifiedPeerKey(ctx, peer, group)
	if err != nil {
		return err
	}
	sealed, err := Seal(s.kp, s.PeerID(), group, []byte(text), recipientKey, s.mode)
	if err != nil {
		return err
	}
	msg := endpoint.NewMessage().
		Add(proto.ElemEnvelope, sealed.Bytes()).
		AddString(proto.ElemGroup, group)
	return s.Control().SendOnPipe(pipeAdv, msg)
}

// SecureMsgPeerGroup fans a secure message out over the group's online
// members (§4.3.1). In ModeFull it uses the group round format: every
// recipient's signed pipe advertisement is verified in parallel (cached
// after the first encounter), then SealGroup signs ONE round header and
// wraps the content key to each recipient — a 100-member round costs one
// RSA signature instead of one hundred, and every member receives the
// same wire bytes. Degraded modes keep the per-recipient path. The
// returned count and first error match the sequential iteration order.
func (s *SecureClient) SecureMsgPeerGroup(ctx context.Context, group, text string) (int, error) {
	members, err := s.GetOnlinePeers(ctx, group)
	if err != nil {
		return 0, err
	}
	targets := members[:0]
	for _, m := range members {
		if m.ID != s.PeerID() {
			targets = append(targets, m)
		}
	}
	if s.mode != ModeFull || len(targets) == 0 {
		return s.fanOutPerRecipient(ctx, group, text, targets)
	}

	// Resolve and verify every recipient's certified key in parallel
	// (steps 1-3 of §4.3.1, once per member, verification cached).
	type recipient struct {
		key     *keys.PublicKey
		pipeAdv *advert.Pipe
	}
	recipients := make([]recipient, len(targets))
	errs := make([]error, len(targets))
	parallel.ForEach(fanOutParallelism(), len(targets), func(i int) {
		key, pipeAdv, err := s.verifiedPeerKey(ctx, targets[i].ID, group)
		if err != nil {
			errs[i] = err
			return
		}
		recipients[i] = recipient{key: key, pipeAdv: pipeAdv}
	})

	verified := make([]int, 0, len(recipients))
	for i, r := range recipients {
		if r.key != nil {
			verified = append(verified, i)
		}
	}
	// One signature per round; only the key wraps differ. Groups larger
	// than the wire format's recipient cap are split into consecutive
	// rounds, so arbitrarily large groups still deliver (at one
	// signature per maxRoundRecipients members).
	for start := 0; start < len(verified); start += maxRoundRecipients {
		chunk := verified[start:min(start+maxRoundRecipients, len(verified))]
		keyList := make([]*keys.PublicKey, len(chunk))
		for j, i := range chunk {
			keyList[j] = recipients[i].key
		}
		sealed, err := SealGroup(s.kp, s.PeerID(), group, []byte(text), keyList)
		if err != nil {
			for _, i := range chunk {
				errs[i] = err
			}
			continue
		}
		msg := endpoint.NewMessage().
			Add(proto.ElemEnvelope, sealed.Bytes()).
			AddString(proto.ElemGroup, group)
		parallel.ForEach(fanOutParallelism(), len(chunk), func(j int) {
			i := chunk[j]
			errs[i] = s.Control().SendOnPipe(recipients[i].pipeAdv, msg)
		})
	}
	return tallyFanOut(errs)
}

// fanOutPerRecipient is the pre-round fan-out: one Seal (and in signed
// modes, one signature) per recipient.
func (s *SecureClient) fanOutPerRecipient(ctx context.Context, group, text string, targets []client.PeerSummary) (int, error) {
	errs := make([]error, len(targets))
	parallel.ForEach(fanOutParallelism(), len(targets), func(i int) {
		errs[i] = s.SecureMsgPeer(ctx, targets[i].ID, group, text)
	})
	return tallyFanOut(errs)
}

func tallyFanOut(errs []error) (int, error) {
	sent := 0
	var firstErr error
	for _, err := range errs {
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// fanOutParallelism bounds concurrent per-recipient work in group
// fan-outs; the work is dominated by RSA, so core count is the natural
// limit.
func fanOutParallelism() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// verifiedPeerKey resolves a peer's signed pipe advertisement and
// returns the certified public key (steps 1-3 of §4.3.1).
func (s *SecureClient) verifiedPeerKey(ctx context.Context, peer keys.PeerID, group string) (*keys.PublicKey, *advert.Pipe, error) {
	pipeAdv, rawDoc, err := s.LookupPipe(ctx, peer, group)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.vcache.VerifyTrusted(rawDoc, time.Now())
	if err != nil {
		s.Bus().Emit(events.Event{Type: events.SecurityAlert, From: peer, Group: group,
			Payload: s.alertAudit(peer, "lookupPipe", "pipe advertisement failed verification: "+err.Error(), 0)})
		return nil, nil, fmt.Errorf("%w: %v", ErrPeerAdvInvalid, err)
	}
	// LookupPipe already parsed the advertisement; the ownership check
	// reuses that parse (the same single-parse discipline as the broker).
	if err := CheckParsedAdvOwnership(pipeAdv, res.Signer.Subject); err != nil || res.Signer.Subject != peer {
		s.Bus().Emit(events.Event{Type: events.SecurityAlert, From: peer, Group: group,
			Payload: s.alertAudit(peer, "lookupPipe", "pipe advertisement signer does not own the advertisement", 0)})
		return nil, nil, ErrPeerAdvInvalid
	}
	return res.Signer.Key, pipeAdv, nil
}

// handleEnvelope is the receiving side of §4.3.1 (steps 5-7): decrypt
// with the own private key, then authenticate the sender through its
// signed pipe advertisement.
func (s *SecureClient) handleEnvelope(group string, d pipes.Delivery) bool {
	wire, ok := d.Msg.Get(proto.ElemEnvelope)
	if !ok {
		return false
	}
	// Trace correlation: the push may carry the sender's trace ID. A
	// security rejection below ends the open span with OutcomeAlert
	// (force-captured) and stamps the same ID into the SecurityAlert
	// payload, so an alert can be looked up as a full waterfall.
	var tid uint64
	tr := s.Tracer()
	if tr != nil {
		if idStr, _ := d.Msg.GetString(proto.ElemTrace); idStr != "" {
			tid = trace.ParseID(idStr)
		}
	}
	var spOpen trace.Span
	if tid != 0 {
		spOpen = trace.Begin(tid, trace.StageOpen)
	}
	alert := func(from keys.PeerID, reason string) {
		// Audit before emitting so the alert payload can carry the audit
		// record's sequence number alongside the trace ID.
		payload := s.alertAudit(from, "open", reason, tid)
		if tid != 0 {
			payload["trace"] = trace.FormatID(tid)
			tr.End(spOpen, trace.OutcomeAlert)
		}
		s.Bus().Emit(events.Event{Type: events.SecurityAlert, From: from, Group: group, Payload: payload})
	}
	var opened *Opened
	var err error
	switch {
	case len(wire) > 0 && Mode(wire[0]) == ModeGroup:
		// Group rounds are only accepted on this messaging surface, which
		// tracks round nonces below; Open rejects them everywhere else.
		opened, err = OpenGroup(s.kp, wire, nil)
	case len(wire) > 0 && Mode(wire[0]) == ModeSlice:
		// A per-recipient cut of a round, relayed by the broker. Same
		// round semantics (and the same nonce tracking below) with the
		// slice Merkle binding in place of the full recipient digest.
		opened, err = OpenSlice(s.kp, wire, nil)
	default:
		opened, err = Open(s.kp, wire)
	}
	if err != nil {
		alert(d.From, "secure envelope rejected: "+err.Error())
		return true
	}
	if (opened.Mode == ModeGroup || opened.Mode == ModeSlice) && opened.Group != group {
		// Round delivery is the one surface where the group label is a
		// remote claim (the relay push / propagate fan-out carries it),
		// not the receiver's own pipe registration. The signed header
		// names the real group: a two-group insider must not get a round
		// sealed for group Y surfaced to the application as group X
		// traffic. Checked before the replay guard so a mislabeled
		// delivery does not burn the round's single-use nonce.
		alert(opened.Sender, "round delivered under wrong group: signed "+opened.Group+", claimed "+group)
		return true
	}
	if s.replayGuard != nil {
		err := s.replayGuard.Check(wire, opened.SentAt)
		if err == nil && (opened.Mode == ModeGroup || opened.Mode == ModeSlice) {
			// Round wires are identical across recipients (and a slice is a
			// re-cut of the same round), so a replay can arrive as different
			// bytes — re-encrypted by a malicious round member, or the same
			// round re-sliced and re-sent by a compromised relay; the signed
			// single-use nonce catches both.
			err = s.replayGuard.CheckRound(opened.Sender, opened.Nonce, opened.SentAt)
		}
		if err != nil {
			alert(opened.Sender, err.Error())
			return true
		}
	}
	authenticated := false
	user := ""
	if opened.Signed() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		senderKey, senderCred, err := s.senderKeyPatient(ctx, opened.Sender, group)
		cancel()
		if err != nil {
			alert(opened.Sender, ErrSenderUnknown.Error())
			return true
		}
		if err := opened.VerifySignature(senderKey); err != nil {
			alert(opened.Sender, ErrMessageTampered.Error())
			return true
		}
		authenticated = true
		user = senderCred.SubjectName
	}
	if tid != 0 {
		tr.End(spOpen, trace.OutcomeOK)
	}
	// End-to-end delivery latency, measured against the signed (and
	// replay-guarded) send timestamp — this feeds the client-side
	// histogram that scenario quantiles read.
	if !opened.SentAt.IsZero() {
		s.ObserveDelivery(time.Since(opened.SentAt))
	}
	s.Bus().Emit(events.Event{
		Type:  events.SecureMessage,
		From:  opened.Sender,
		Group: group,
		Payload: map[string]string{
			"authenticated": boolStr(authenticated),
			"mode":          opened.Mode.String(),
			"user":          user,
		},
		Data: opened.Body,
	})
	return true
}

// senderKeyPatient resolves the sender's certified key for an inbound
// push, absorbing transient lookup failures. This is the one surface
// where giving up loses data permanently: by the time the envelope is
// in hand the relay has already acked the delivery and retired the
// slice, so a lookup that fails because this client is mid-resume
// (not-logged-in for a beat while the heartbeat loop re-establishes
// the session) or because the lookup frame itself was lost must not
// condemn the message. Each attempt is individually bounded — a
// silently dropped frame costs one openLookupTimeout, not the whole
// budget — and terminal verdicts (untrusted chain, subject mismatch)
// stop the loop at once.
const (
	openLookupAttempts = 4
	openLookupTimeout  = 1 * time.Second
)

func (s *SecureClient) senderKeyPatient(ctx context.Context, sender keys.PeerID, group string) (*keys.PublicKey, *cred.Credential, error) {
	pol := backoff.Policy{Base: 100 * time.Millisecond, Cap: 800 * time.Millisecond}
	var lastErr error
	for attempt := 0; attempt < openLookupAttempts; attempt++ {
		actx, cancel := context.WithTimeout(ctx, openLookupTimeout)
		key, c, err := s.senderKey(actx, sender, group)
		cancel()
		if err == nil {
			return key, c, nil
		}
		lastErr = err
		if class, _ := classify(err); class == classTerminal {
			return nil, nil, err
		}
		select {
		case <-ctx.Done():
			return nil, nil, lastErr
		case <-time.After(pol.Delay(attempt, nil)):
		}
	}
	return nil, nil, lastErr
}

// senderKey resolves the sender's certified key via its signed pipe
// advertisement (steps 6-7 of §4.3.1).
func (s *SecureClient) senderKey(ctx context.Context, sender keys.PeerID, group string) (*keys.PublicKey, *cred.Credential, error) {
	_, rawDoc, err := s.LookupPipe(ctx, sender, group)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.vcache.VerifyTrusted(rawDoc, time.Now())
	if err != nil {
		return nil, nil, err
	}
	if res.Signer.Subject != sender {
		return nil, nil, ErrPeerAdvInvalid
	}
	return res.Signer.Key, res.Signer, nil
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	out := []string{}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
