package relay_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/relay/wal"
)

func mustDurable(t *testing.T, dir string, cfg relay.Config, s *sink) *relay.Relay {
	t.Helper()
	cfg.WAL.Dir = dir
	r, err := relay.New(cfg, s.isOnline, s.deliver)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDurableQueueSurvivesRestart: items queued for an offline peer
// survive a relay restart and deliver at the peer's next login — the
// crash-recovery contract in its simplest shape.
func TestDurableQueueSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := newSink()
	r := mustDurable(t, dir, relay.Config{TTL: time.Hour}, s)
	for i := 0; i < 3; i++ {
		if r.Submit(item("bob", fmt.Sprintf("m%d", i))) != relay.SubmitQueued {
			t.Fatal("offline submit not queued")
		}
	}
	r.Close() // graceful shutdown must NOT ack queued items

	s2 := newSink()
	r2 := mustDurable(t, dir, relay.Config{TTL: time.Hour}, s2)
	defer r2.Close()
	if m := r2.Metrics(); m.RecoveryReplayed != 3 {
		t.Fatalf("recovery metrics = %+v, want 3 replayed", m)
	}
	if r2.QueueLen("bob") != 3 {
		t.Fatalf("queue len after restart = %d", r2.QueueLen("bob"))
	}
	s2.setOnline("bob", true)
	r2.Flush("bob")
	waitFor(t, func() bool { return len(s2.got("bob")) == 3 })
	if got := s2.got("bob"); got[0] != "m0" || got[1] != "m1" || got[2] != "m2" {
		t.Fatalf("recovered order = %v", got)
	}
}

// TestDeliveredItemsDoNotResurrect: an item delivered before the
// restart is acked in the log and must not come back — the recipient
// already has it, and the broker must not rely on the replay guard
// alone to suppress a whole queue's worth of duplicates.
func TestDeliveredItemsDoNotResurrect(t *testing.T) {
	dir := t.TempDir()
	s := newSink()
	r := mustDurable(t, dir, relay.Config{TTL: time.Hour}, s)
	r.Submit(item("bob", "delivered"))
	r.Submit(item("bob", "pending"))
	s.setOnline("bob", true)
	r.Flush("bob")
	waitFor(t, func() bool { return len(s.got("bob")) == 2 })
	r.Submit(item("carol", "still-queued"))
	r.Close()

	s2 := newSink()
	r2 := mustDurable(t, dir, relay.Config{TTL: time.Hour}, s2)
	defer r2.Close()
	m := r2.Metrics()
	if m.RecoveryReplayed != 1 || m.RecoveryDiscardedGuard != 2 {
		t.Fatalf("recovery metrics = %+v, want 1 replayed / 2 guarded", m)
	}
	if r2.QueueLen("bob") != 0 {
		t.Fatalf("delivered items resurrected: bob queue = %d", r2.QueueLen("bob"))
	}
	if r2.QueueLen("carol") != 1 {
		t.Fatalf("carol queue = %d, want 1", r2.QueueLen("carol"))
	}
}

// TestExpiredWhileDownDoesNotResurrect: TTL is re-enforced at recovery
// — an item whose deadline passed while the broker was dead is
// discarded (and acked, so the NEXT recovery need not re-judge it).
func TestExpiredWhileDownDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	var clock atomic.Int64
	now := func() time.Time { return time.Unix(1000+clock.Load(), 0) }
	s := newSink()
	r := mustDurable(t, dir, relay.Config{TTL: 30 * time.Second, Clock: now}, s)
	r.Submit(item("bob", "stale"))
	it := item("bob", "fresh")
	it.Expires = now().Add(time.Hour)
	r.Submit(it)
	r.Close()

	clock.Store(60) // the default-TTL item died while the relay was down
	s2 := newSink()
	r2 := mustDurable(t, dir, relay.Config{TTL: 30 * time.Second, Clock: now}, s2)
	r2.Close()
	if m := r2.Metrics(); m.RecoveryReplayed != 1 || m.RecoveryDiscardedTTL != 1 {
		t.Fatalf("recovery metrics = %+v, want 1 replayed / 1 TTL-discarded", m)
	}

	// The TTL discard was itself logged: a third recovery sees it as a
	// plain ack, not a live item to re-expire.
	s3 := newSink()
	r3 := mustDurable(t, dir, relay.Config{TTL: 30 * time.Second, Clock: now}, s3)
	defer r3.Close()
	if m := r3.Metrics(); m.RecoveryDiscardedTTL != 0 || m.RecoveryReplayed != 1 {
		t.Fatalf("second recovery metrics = %+v", m)
	}
}

// TestWALFaultDegradesToMemory: a dying log (injected crash) must not
// take the relay down with it — queueing continues in memory, the
// failure is counted, and durability is all that is lost.
func TestWALFaultDegradesToMemory(t *testing.T) {
	dir := t.TempDir()
	var armed atomic.Bool
	s := newSink()
	cfg := relay.Config{TTL: time.Hour}
	cfg.WAL.Dir = dir
	cfg.WAL.Faults = func(fp wal.FaultPoint) error {
		if armed.Load() && fp == wal.BeforeAppend {
			return wal.ErrInjected
		}
		return nil
	}
	r, err := relay.New(cfg, s.isOnline, s.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Submit(item("bob", "durable"))
	armed.Store(true)
	if got := r.Submit(item("bob", "memory-only")); got != relay.SubmitQueued {
		t.Fatalf("submit during WAL fault = %v, want SubmitQueued", got)
	}
	if m := r.Metrics(); m.WALErrors == 0 {
		t.Fatal("WAL failure not counted")
	}
	s.setOnline("bob", true)
	r.Flush("bob")
	waitFor(t, func() bool { return len(s.got("bob")) == 2 })
}

// TestSenderQuotaRefusesAndReleases: the third queued item from one
// sender is refused with the quota-specific result, and delivering the
// backlog returns the occupancy.
func TestSenderQuotaRefusesAndReleases(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{SenderQuota: 2, TTL: time.Hour}, s)
	defer r.Close()
	r.Submit(item("bob", "m0"))
	r.Submit(item("carol", "m1")) // quota spans recipients
	if got := r.Submit(item("dave", "m2")); got != relay.SubmitDroppedQuota {
		t.Fatalf("over-quota submit = %v, want SubmitDroppedQuota", got)
	}
	if !r.SenderOverQuota("sender") {
		t.Fatal("SenderOverQuota = false at cap")
	}
	if m := r.Metrics(); m.DroppedQuota != 1 {
		t.Fatalf("DroppedQuota = %d", m.DroppedQuota)
	}
	s.setOnline("bob", true)
	r.Flush("bob")
	waitFor(t, func() bool { return len(s.got("bob")) == 1 })
	waitFor(t, func() bool { return !r.SenderOverQuota("sender") })
	if got := r.Submit(item("dave", "m3")); got != relay.SubmitQueued {
		t.Fatalf("post-release submit = %v, want SubmitQueued", got)
	}
}

// TestGroupQuotaIsolatesGroups: one noisy group hitting its cap must
// not block traffic from another group, even from the same sender.
func TestGroupQuotaIsolatesGroups(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{GroupQuota: 1, TTL: time.Hour}, s)
	defer r.Close()
	r.Submit(item("bob", "g-first"))
	if got := r.Submit(item("carol", "g-second")); got != relay.SubmitDroppedQuota {
		t.Fatalf("over-quota group submit = %v", got)
	}
	other := item("carol", "h-first")
	other.Group = "h"
	if got := r.Submit(other); got != relay.SubmitQueued {
		t.Fatalf("other-group submit = %v, want SubmitQueued", got)
	}
}

// TestQuotaSurvivesRecovery: quota occupancy is rebuilt from the
// recovered queues, so a restart cannot be used to dodge the cap.
func TestQuotaSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newSink()
	r := mustDurable(t, dir, relay.Config{SenderQuota: 2, TTL: time.Hour}, s)
	r.Submit(item("bob", "m0"))
	r.Submit(item("carol", "m1"))
	r.Close()

	s2 := newSink()
	r2 := mustDurable(t, dir, relay.Config{SenderQuota: 2, TTL: time.Hour}, s2)
	defer r2.Close()
	if !r2.SenderOverQuota("sender") {
		t.Fatal("recovered relay forgot quota occupancy")
	}
	if got := r2.Submit(item("dave", "m2")); got != relay.SubmitDroppedQuota {
		t.Fatalf("post-recovery over-quota submit = %v", got)
	}
}

// TestCloseCancelsArmedRetry: a retry timer armed by a failed drain
// must die with the relay. Before the fix, Close left the 250ms
// time.AfterFunc running and it fired Flush against a closed relay —
// benign-looking, but a real shutdown race under -race and a leaked
// timer per failed peer. Run with -race.
func TestCloseCancelsArmedRetry(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{}, s)
	s.mu.Lock()
	s.online["bob"] = true
	s.fail = true
	s.mu.Unlock()
	r.Submit(item("bob", "m0"))
	waitFor(t, func() bool { return r.ArmedRetries() == 1 })
	r.Close()
	if n := r.ArmedRetries(); n != 0 {
		t.Fatalf("%d retry timers still armed after Close", n)
	}
	// A retry that had already fired before Close must also be inert.
	time.Sleep(2 * retryDelayForTest())
	if n := r.ArmedRetries(); n != 0 {
		t.Fatalf("retry re-armed after Close: %d", n)
	}
}

func retryDelayForTest() time.Duration { return relay.DefaultRetryBackoff.Ceiling(1) }
