package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"jxtaoverlay/internal/keys"
)

// Wire layout of one record:
//
//	uint32 LE  body length
//	uint32 LE  CRC-32C (Castagnoli) of body
//	body:
//	  [0]      version (1)
//	  [1]      kind (KindAdd | KindAck)
//	  [2:10]   uint64 LE sequence number
//	  KindAdd:
//	    [10:18]  int64 LE expiry, unix nanoseconds
//	    [18]     flags (flagForwarded)
//	    uint16 LE len + bytes: To
//	    uint16 LE len + bytes: From
//	    uint16 LE len + bytes: Group
//	    uint32 LE len + bytes: Payload
//	  KindAck:
//	    [10]     reason (AckDelivered | AckExpired | AckDropped)
//
// Every field is fixed-width or explicitly length-prefixed and the
// decoder rejects records whose fields do not consume the body exactly,
// so decoding is a bijection on accepted inputs: any record the decoder
// admits re-encodes to the identical bytes (FuzzWALDecode pins this).

// Kind discriminates record types.
type Kind byte

// Record kinds.
const (
	// KindAdd appends one queued item.
	KindAdd Kind = 1
	// KindAck retires a previously added item (delivered, expired or
	// dropped); the sequence number names the add it retires.
	KindAck Kind = 2
)

// AckReason says why an item left the queue.
type AckReason byte

// Ack reasons.
const (
	// AckDelivered: the item was handed to its recipient.
	AckDelivered AckReason = 1
	// AckExpired: the item's TTL ran out before delivery.
	AckExpired AckReason = 2
	// AckDropped: the item was evicted (queue overflow or quota).
	AckDropped AckReason = 3
)

const (
	recordVersion = 1
	headerSize    = 8 // length + CRC

	// flagForwarded marks an item received through federation hand-off;
	// it must never be forwarded again (one-hop loop guard).
	flagForwarded = 1 << 0

	// MaxPayload bounds one record's payload so a corrupt length field
	// cannot drive a giant allocation during recovery. Relay slices are
	// a few KB; 16 MiB leaves room for any realistic wire.
	MaxPayload = 16 << 20

	// maxIDLen bounds the peer/group identifier fields.
	maxIDLen = 1 << 12
)

// Codec errors.
var (
	// ErrShortRecord: the buffer ends before the record does — the torn
	// tail a crash mid-append leaves behind.
	ErrShortRecord = errors.New("wal: truncated record")
	// ErrCorruptRecord: framing decoded but the contents are invalid —
	// CRC mismatch, bad version/kind, or fields that do not tile the
	// body exactly.
	ErrCorruptRecord = errors.New("wal: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one WAL entry.
type Record struct {
	Seq  Seq
	Kind Kind

	// KindAdd fields.
	To        keys.PeerID
	From      keys.PeerID
	Group     string
	Payload   []byte
	Expires   time.Time
	Forwarded bool

	// KindAck field.
	Reason AckReason
}

// Seq is a WAL sequence number. Zero means "not persisted".
type Seq uint64

// AppendRecord encodes rec onto dst and returns the extended slice.
func AppendRecord(dst []byte, rec Record) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header backfilled below
	bodyStart := len(dst)
	dst = append(dst, recordVersion, byte(rec.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Seq))
	switch rec.Kind {
	case KindAdd:
		if len(rec.To) > maxIDLen || len(rec.From) > maxIDLen || len(rec.Group) > maxIDLen {
			return dst[:start], fmt.Errorf("%w: oversized identifier", ErrCorruptRecord)
		}
		if len(rec.Payload) > MaxPayload {
			return dst[:start], fmt.Errorf("%w: oversized payload", ErrCorruptRecord)
		}
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Expires.UnixNano()))
		var flags byte
		if rec.Forwarded {
			flags |= flagForwarded
		}
		dst = append(dst, flags)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.To)))
		dst = append(dst, rec.To...)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.From)))
		dst = append(dst, rec.From...)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.Group)))
		dst = append(dst, rec.Group...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Payload)))
		dst = append(dst, rec.Payload...)
	case KindAck:
		if rec.Reason < AckDelivered || rec.Reason > AckDropped {
			return dst[:start], fmt.Errorf("%w: bad ack reason", ErrCorruptRecord)
		}
		dst = append(dst, byte(rec.Reason))
	default:
		return dst[:start], fmt.Errorf("%w: bad kind %d", ErrCorruptRecord, rec.Kind)
	}
	body := dst[bodyStart:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, crcTable))
	return dst, nil
}

// DecodeRecord decodes one record from the front of b, returning the
// record and the number of bytes it occupied. ErrShortRecord means b
// ends mid-record (a torn tail); ErrCorruptRecord means the bytes are
// framed but invalid (CRC mismatch included). The returned record's
// Payload aliases b.
func DecodeRecord(b []byte) (Record, int, error) {
	var rec Record
	if len(b) < headerSize {
		return rec, 0, ErrShortRecord
	}
	bodyLen := binary.LittleEndian.Uint32(b)
	if bodyLen < 10 || bodyLen > MaxPayload+64 {
		return rec, 0, fmt.Errorf("%w: implausible body length %d", ErrCorruptRecord, bodyLen)
	}
	if uint32(len(b)-headerSize) < bodyLen {
		return rec, 0, ErrShortRecord
	}
	body := b[headerSize : headerSize+int(bodyLen)]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return rec, 0, fmt.Errorf("%w: CRC mismatch", ErrCorruptRecord)
	}
	if body[0] != recordVersion {
		return rec, 0, fmt.Errorf("%w: version %d", ErrCorruptRecord, body[0])
	}
	rec.Kind = Kind(body[1])
	rec.Seq = Seq(binary.LittleEndian.Uint64(body[2:]))
	rest := body[10:]
	switch rec.Kind {
	case KindAdd:
		if len(rest) < 9 {
			return rec, 0, fmt.Errorf("%w: short add body", ErrCorruptRecord)
		}
		rec.Expires = time.Unix(0, int64(binary.LittleEndian.Uint64(rest)))
		flags := rest[8]
		if flags&^byte(flagForwarded) != 0 {
			return rec, 0, fmt.Errorf("%w: unknown flags %#x", ErrCorruptRecord, flags)
		}
		rec.Forwarded = flags&flagForwarded != 0
		rest = rest[9:]
		var field []byte
		var err error
		if field, rest, err = take16(rest); err != nil {
			return rec, 0, err
		}
		rec.To = keys.PeerID(field)
		if field, rest, err = take16(rest); err != nil {
			return rec, 0, err
		}
		rec.From = keys.PeerID(field)
		if field, rest, err = take16(rest); err != nil {
			return rec, 0, err
		}
		rec.Group = string(field)
		if len(rec.To) > maxIDLen || len(rec.From) > maxIDLen || len(rec.Group) > maxIDLen {
			return rec, 0, fmt.Errorf("%w: oversized identifier", ErrCorruptRecord)
		}
		if len(rest) < 4 {
			return rec, 0, fmt.Errorf("%w: short payload length", ErrCorruptRecord)
		}
		plen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) != plen {
			// Too short OR trailing garbage: either way the body does not
			// tile, and accepting it would break encode∘decode identity.
			return rec, 0, fmt.Errorf("%w: payload does not tile body", ErrCorruptRecord)
		}
		rec.Payload = rest
	case KindAck:
		if len(rest) != 1 {
			return rec, 0, fmt.Errorf("%w: ack body must be exactly 1 byte", ErrCorruptRecord)
		}
		rec.Reason = AckReason(rest[0])
		if rec.Reason < AckDelivered || rec.Reason > AckDropped {
			return rec, 0, fmt.Errorf("%w: bad ack reason %d", ErrCorruptRecord, rest[0])
		}
	default:
		return rec, 0, fmt.Errorf("%w: bad kind %d", ErrCorruptRecord, body[1])
	}
	return rec, headerSize + int(bodyLen), nil
}

func take16(b []byte) (field, rest []byte, err error) {
	if len(b) < 2 {
		return nil, b, fmt.Errorf("%w: short field length", ErrCorruptRecord)
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return nil, b, fmt.Errorf("%w: field overruns body", ErrCorruptRecord)
	}
	return b[:n], b[n:], nil
}
