package core

// Presence leases and the signed heartbeat primitive. secureLogin
// grants the session a lease (BrokerConfig.LeaseTTL); a lightweight
// signed heartbeat renews it; a session that stops heartbeating —
// crashed process, partitioned link, half-open connection — has its
// lease lapse, at which point the sweeper takes its presence down
// (audited peer-down "lease-expired") and the relay flips from live
// push to queueing. Without leases a silently dead peer black-holes
// delivery: the broker keeps pushing into a session nobody reads.
//
// The heartbeat follows the secureRenew template (§6: new primitives
// reuse the extension's building blocks): a signed body carrying the
// session credential, verified for own-issuance, key possession, CBID
// binding and timestamp freshness. On top of that it binds two
// liveness-specific fields:
//
//   - the lease identifier minted at login — a heartbeat captured in
//     one session cannot renew a different (stolen or later) session,
//     because re-login mints a fresh lease id;
//   - a strictly increasing sequence number — a replayed heartbeat
//     (same lease, same seq) is refused and renews nothing.

import (
	"context"
	"encoding/hex"
	"errors"
	"strconv"
	"time"

	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/xmldoc"
)

// OpHeartbeat is the broker operation renewing a presence lease.
const OpHeartbeat = "heartbeat"

// ErrNoLease is returned by SecureHeartbeat when the login granted no
// lease (the broker runs without liveness).
var ErrNoLease = errors.New("core: broker granted no presence lease")

// ErrLeaseLost is returned when the broker refused the heartbeat with
// lease-expired: the session is gone and must be re-established.
var ErrLeaseLost = errors.New("core: presence lease lost")

// lease is one session's liveness record.
type lease struct {
	id     string
	seq    uint64 // highest heartbeat sequence accepted
	expiry time.Time
	// session is the ConnectedAt of the session the lease belongs to:
	// the monotonic-guard key handed to Broker.ExpirePeer so a stale
	// expiry can never take down a newer session.
	session time.Time
}

// grantLease mints a presence lease for a freshly registered session.
// Returns ok=false when leases are disabled.
func (bs *BrokerSecurity) grantLease(peer keys.PeerID) (string, time.Duration, bool) {
	if bs.cfg.LeaseTTL <= 0 {
		return "", 0, false
	}
	idBytes, err := keys.RandomBytes(16)
	if err != nil {
		return "", 0, false
	}
	id := "ls-" + hex.EncodeToString(idBytes)
	session := time.Now()
	if info, ok := bs.b.Peer(peer); ok {
		session = info.ConnectedAt
	}
	bs.mu.Lock()
	bs.leases[peer] = &lease{id: id, expiry: bs.clock().Add(bs.cfg.LeaseTTL), session: session}
	bs.mu.Unlock()
	bs.leasesGranted.Add(1)
	return id, bs.cfg.LeaseTTL, true
}

// renewLease is the heartbeat's bookkeeping hot path: one mutex-guarded
// table lookup, the lease/seq checks, and an expiry bump. Zero
// allocations steady-state (bench-gated); the RSA work lives in the
// caller. Returns the refusal token ("" = renewed).
func (bs *BrokerSecurity) renewLease(peer keys.PeerID, leaseID string, seq uint64) string {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	l, ok := bs.leases[peer]
	now := bs.clock()
	if !ok || l.id != leaseID || now.After(l.expiry) {
		return proto.ErrLeaseExpired
	}
	if seq <= l.seq {
		// A replayed (or reordered-stale) heartbeat: refuse without
		// touching the expiry, so captured heartbeats cannot keep a
		// dead session's presence alive.
		return proto.ErrBadRequest
	}
	l.seq = seq
	l.expiry = now.Add(bs.cfg.LeaseTTL)
	return ""
}

// Leases reports how many presence leases are live (telemetry gauge).
func (bs *BrokerSecurity) Leases() int {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return len(bs.leases)
}

// LivenessStats is a snapshot of the lease/heartbeat counters.
type LivenessStats struct {
	LeasesGranted      uint64
	LeasesExpired      uint64
	HeartbeatsRenewed  uint64
	HeartbeatsRejected uint64
}

// LivenessStats returns the liveness counter snapshot.
func (bs *BrokerSecurity) LivenessStats() LivenessStats {
	return LivenessStats{
		LeasesGranted:      bs.leasesGranted.Load(),
		LeasesExpired:      bs.leasesExpired.Load(),
		HeartbeatsRenewed:  bs.heartbeatsRenewed.Load(),
		HeartbeatsRejected: bs.heartbeatsRejected.Load(),
	}
}

// sweepLeases expires lapsed leases until Close. The cadence is a
// quarter of the TTL: a dead session is detected at most 1.25 TTLs
// after its last heartbeat.
func (bs *BrokerSecurity) sweepLeases() {
	defer close(bs.sweepDone)
	interval := bs.cfg.LeaseTTL / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-bs.sweepStop:
			return
		case <-ticker.C:
			bs.expireLapsed()
		}
	}
}

// expireLapsed collects lapsed leases and takes their sessions'
// presence down. The peer-down runs outside the extension lock (it
// fans out presence advertisements); the monotonic session key makes
// that safe — a re-login that slips between collection and expiry
// has a newer ConnectedAt and is left untouched by ExpirePeer.
func (bs *BrokerSecurity) expireLapsed() {
	type lapsed struct {
		peer    keys.PeerID
		id      string
		session time.Time
	}
	var out []lapsed
	bs.mu.Lock()
	now := bs.clock()
	for peer, l := range bs.leases {
		if now.After(l.expiry) {
			out = append(out, lapsed{peer: peer, id: l.id, session: l.session})
			delete(bs.leases, peer)
		}
	}
	bs.mu.Unlock()
	for _, l := range out {
		bs.leasesExpired.Add(1)
		if bs.b.ExpirePeer(l.peer, "lease-expired", l.session) {
			bs.auditAuth(audit.KindHeartbeat, l.peer, OpHeartbeat, proto.ErrLeaseExpired)
		}
	}
}

// ExpireLapsedNow runs one sweep pass synchronously (tests drive the
// injected clock past the TTL and call this instead of sleeping).
func (bs *BrokerSecurity) ExpireLapsedNow() { bs.expireLapsed() }

// heartbeatRequest is the signed renewal body.
func heartbeatRequest(c *cred.Credential, leaseID string, seq uint64) (*xmldoc.Element, error) {
	credDoc, err := c.Document()
	if err != nil {
		return nil, err
	}
	doc := xmldoc.New("HeartbeatRequest", "")
	doc.AddText("Lease", leaseID)
	doc.AddText("Seq", strconv.FormatUint(seq, 10))
	doc.AddText("Timestamp", time.Now().UTC().Format(time.RFC3339Nano))
	doc.Add(credDoc)
	return doc, nil
}

// SecureHeartbeat renews the presence lease granted at SecureLogin.
// Returns ErrLeaseLost when the broker no longer holds the lease (the
// session expired or was superseded) — the caller must re-establish
// the session, not retry the heartbeat.
func (s *SecureClient) SecureHeartbeat(ctx context.Context) error {
	current := s.Identity().Credential
	if current == nil {
		return ErrNoCredential
	}
	s.mu.Lock()
	leaseID := s.leaseID
	s.hbSeq++
	seq := s.hbSeq
	s.mu.Unlock()
	if leaseID == "" {
		return ErrNoLease
	}
	doc, err := heartbeatRequest(current, leaseID, seq)
	if err != nil {
		return err
	}
	sig, err := s.kp.Sign(doc.Canonical())
	if err != nil {
		return err
	}
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, OpHeartbeat).
		AddXML(proto.ElemBody, doc.Canonical()).
		Add(proto.ElemSig, sig)
	_, err = s.Call(ctx, msg)
	if err != nil {
		var opErr *client.OpError
		if errors.As(err, &opErr) && opErr.Token == proto.ErrLeaseExpired {
			return ErrLeaseLost
		}
		return err
	}
	return nil
}

// Lease returns the current presence lease id and TTL ("" / 0 when the
// broker granted none).
func (s *SecureClient) Lease() (string, time.Duration) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.leaseID, s.leaseTTL
}

// handleHeartbeat is the broker side: the secureRenew validation
// pipeline (own-issuance, possession, CBID, freshness) plus the
// lease-id and sequence binding, then a lease renewal.
func (bs *BrokerSecurity) handleHeartbeat(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	body, ok := msg.Get(proto.ElemBody)
	if !ok {
		return proto.Fail(proto.ErrBadRequest)
	}
	sig, ok := msg.Get(proto.ElemSig)
	if !ok {
		return proto.Fail(proto.ErrBadRequest)
	}
	doc, err := xmldoc.ParseCanonical(body)
	if err != nil || doc.Name != "HeartbeatRequest" {
		return proto.Fail(proto.ErrBadRequest)
	}
	credDoc := doc.Child(cred.ElementName)
	if credDoc == nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	current, err := cred.Parse(credDoc)
	if err != nil {
		bs.heartbeatsRejected.Add(1)
		bs.auditAuth(audit.KindHeartbeat, from, OpHeartbeat, proto.ErrBadCredential)
		return proto.Fail(proto.ErrBadCredential)
	}
	refuse := func(token string) *endpoint.Message {
		bs.heartbeatsRejected.Add(1)
		bs.auditAuth(audit.KindHeartbeat, current.Subject, OpHeartbeat, token)
		return proto.Fail(token)
	}
	// Only credentials this broker issued, still within validity.
	if current.Issuer != bs.cfg.Credential.Subject {
		return refuse(proto.ErrBadCredential)
	}
	if err := current.Verify(bs.cfg.KeyPair.Public(), bs.now()); err != nil {
		return refuse(proto.ErrBadCredential)
	}
	// Proof of key possession over the whole request.
	if err := current.Key.Verify(body, sig); err != nil {
		return refuse(proto.ErrBadSignature)
	}
	if err := keys.VerifyCBID(current.Subject, current.Key); err != nil {
		return refuse(proto.ErrCBIDMismatch)
	}
	ts, err := time.Parse(time.RFC3339Nano, doc.ChildText("Timestamp"))
	if err != nil || absDuration(bs.now().Sub(ts)) > 2*time.Minute {
		return refuse(proto.ErrBadRequest)
	}
	seq, err := strconv.ParseUint(doc.ChildText("Seq"), 10, 64)
	if err != nil {
		return refuse(proto.ErrBadRequest)
	}
	if token := bs.renewLease(current.Subject, doc.ChildText("Lease"), seq); token != "" {
		return refuse(token)
	}
	bs.heartbeatsRenewed.Add(1)
	bs.b.TouchPeer(current.Subject)
	return proto.OK()
}
