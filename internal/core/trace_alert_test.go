package core_test

import (
	"testing"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/trace"
)

// TestSecurityAlertCarriesRetrievableTraceID pins the anomaly
// correlation contract: a SecurityAlert raised while opening a traced
// delivery carries the trace ID in its payload, and that ID retrieves
// the captured span from the recorder — even at sample rate ZERO,
// because anomalous outcomes force capture.
func TestSecurityAlertCarriesRetrievableTraceID(t *testing.T) {
	h := newSecureHarness(t, true)
	rec := trace.New(trace.Config{SampleRate: 0, Seed: 7})
	h.br.SetTracer(rec)
	rly, err := core.EnableBrokerRelay(h.br, core.RelayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rly.Close() })

	alice := h.secureClient("alice")
	bob := h.secureClient("bob", core.WithReplayGuard(core.NewReplayGuard(time.Minute, 64)))
	alice.SetTracer(rec)
	bob.SetTracer(rec)
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")
	bobEvents := events.NewCollector(bob.Bus())

	eve := attack.NewEavesdropper(h.net)
	ctx := testCtx(t)
	// The relayed round's slice push carries the trace ID on the wire.
	if _, _, err := alice.SecureMsgPeersViaRelay(ctx, "math", "pay invoice 42", []keys.PeerID{bob.PeerID()}); err != nil {
		t.Fatal(err)
	}
	if _, ok := bobEvents.WaitFor(events.SecureMessage, 5*time.Second); !ok {
		t.Fatal("original slice not delivered")
	}

	// Replay the captured push verbatim: the round-nonce guard rejects
	// it and raises the alert whose trace ID we assert on.
	raw, err := attack.NewRawNode(h.net, "replayer")
	if err != nil {
		t.Fatal(err)
	}
	bobNode := simnet.NodeID(bob.PeerID())
	for _, frame := range eve.FramesTo(bobNode) {
		if err := raw.Replay(bobNode, frame); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := bobEvents.WaitFor(events.SecurityAlert, 5*time.Second); !ok {
		t.Fatal("replayed slice raised no alert")
	}

	idStr := ""
	for _, e := range bobEvents.OfType(events.SecurityAlert) {
		if v := e.Payload["trace"]; v != "" {
			idStr = v
			break
		}
	}
	if idStr == "" {
		t.Fatal("no SecurityAlert carried a trace ID")
	}
	id := trace.ParseID(idStr)
	if id == 0 {
		t.Fatalf("alert trace ID %q does not parse", idStr)
	}
	spans := rec.TraceSpans(id)
	if len(spans) == 0 {
		t.Fatalf("trace %s not retrievable from the recorder", idStr)
	}
	found := false
	for _, sp := range spans {
		if sp.Stage == trace.StageOpen && sp.Outcome == trace.OutcomeAlert {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s has no open span with outcome %s (got %d spans)", idStr, trace.OutcomeAlert, len(spans))
	}
}
