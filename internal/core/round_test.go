package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"jxtaoverlay/internal/keys"
)

func TestSealGroupOpenGroupRoundtrip(t *testing.T) {
	body := []byte("round payload")
	sealed, err := SealGroup(senderKP, "urn:jxta:cbid-sender", "math", body,
		[]*keys.PublicKey{recvKP.Public(), evilKP.Public()})
	if err != nil {
		t.Fatalf("SealGroup: %v", err)
	}
	if sealed.Mode != ModeGroup {
		t.Fatalf("mode = %v", sealed.Mode)
	}
	// Every recipient opens the SAME wire bytes.
	for _, kp := range []*keys.KeyPair{recvKP, evilKP} {
		opened, err := OpenGroup(kp, sealed.Bytes(), nil)
		if err != nil {
			t.Fatalf("OpenGroup: %v", err)
		}
		if !bytes.Equal(opened.Body, body) || opened.Group != "math" || opened.Sender != "urn:jxta:cbid-sender" {
			t.Fatalf("opened = %+v", opened)
		}
		if len(opened.Nonce) != roundNonceSize {
			t.Fatalf("nonce length = %d", len(opened.Nonce))
		}
		if !opened.Signed() {
			t.Fatal("round not signed")
		}
		if err := opened.VerifySignature(senderKP.Public()); err != nil {
			t.Fatalf("VerifySignature: %v", err)
		}
		if err := opened.VerifySignature(evilKP.Public()); err == nil {
			t.Fatal("signature verified under wrong key")
		}
	}
	// The generic Open must NOT accept group wires: surfaces without
	// round replay tracking (secure tasks) opt out by construction.
	if _, err := Open(recvKP, sealed.Bytes()); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("Open on group wire = %v, want ErrEnvelope", err)
	}
}

func TestSealGroupOneSignaturePerRound(t *testing.T) {
	recipients := make([]*keys.PublicKey, 0, 10)
	for i := 0; i < 10; i++ {
		recipients = append(recipients, recvKP.Public())
	}
	before := senderKP.SignCalls()
	if _, err := SealGroup(senderKP, "s", "g", []byte("m"), recipients); err != nil {
		t.Fatal(err)
	}
	if got := senderKP.SignCalls() - before; got != 1 {
		t.Fatalf("round of 10 recipients cost %d signatures, want exactly 1", got)
	}
}

func TestOpenGroupNotRecipient(t *testing.T) {
	sealed, err := SealGroup(senderKP, "s", "g", []byte("m"), []*keys.PublicKey{recvKP.Public()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenGroup(evilKP, sealed.Bytes(), nil); !errors.Is(err, ErrNotRecipient) {
		t.Fatalf("non-recipient open = %v, want ErrNotRecipient", err)
	}
}

func TestOpenGroupTamperedWrapRejected(t *testing.T) {
	sealed, err := SealGroup(senderKP, "s", "g", []byte("m"), []*keys.PublicKey{recvKP.Public()})
	if err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), sealed.Bytes()...)
	// Flip a byte in the middle of the (only) wrapped key: offset = mode
	// byte + wrap count + fingerprint + wrap length prefix + a bit.
	wire[1+4+32+4+10] ^= 0xff
	if _, err := OpenGroup(recvKP, wire, nil); err == nil {
		t.Fatal("tampered key wrap accepted")
	}
}

func TestOpenGroupTamperedCiphertextRejected(t *testing.T) {
	sealed, err := SealGroup(senderKP, "s", "g", []byte("m"), []*keys.PublicKey{recvKP.Public()})
	if err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), sealed.Bytes()...)
	wire[len(wire)-1] ^= 0xff
	if _, err := OpenGroup(recvKP, wire, nil); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("tampered ciphertext open = %v, want ErrEnvelope", err)
	}
}

// retargetWire rebuilds a round wire keeping only the wraps whose index
// is listed — the wire a malicious party would forge by splicing a
// signed round onto a smaller recipient set.
func retargetWire(t *testing.T, wire []byte, keep ...int) []byte {
	t.Helper()
	rw, err := parseRoundWire(wire[1:])
	if err != nil {
		t.Fatal(err)
	}
	out := []byte{byte(ModeGroup)}
	out = binary.BigEndian.AppendUint32(out, uint32(len(keep)))
	for _, i := range keep {
		out = append(out, rw.fps[i][:]...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(rw.wraps[i])))
		out = append(out, rw.wraps[i]...)
	}
	out = binary.BigEndian.AppendUint32(out, uint32(len(rw.gcmNonce)))
	out = append(out, rw.gcmNonce...)
	return append(out, rw.ct...)
}

func TestOpenGroupRecipientSetBinding(t *testing.T) {
	// A round sealed to {recv, evil}, then stripped down to {recv}: the
	// ciphertext still decrypts for recv, but the signed recipient-set
	// digest no longer matches the wire's wraps.
	sealed, err := SealGroup(senderKP, "s", "g", []byte("m"),
		[]*keys.PublicKey{recvKP.Public(), evilKP.Public()})
	if err != nil {
		t.Fatal(err)
	}
	forged := retargetWire(t, sealed.Bytes(), 0)
	if _, err := OpenGroup(recvKP, forged, nil); !errors.Is(err, ErrRoundBinding) {
		t.Fatalf("re-targeted round open = %v, want ErrRoundBinding", err)
	}
}

func TestOpenGroupNonceGuard(t *testing.T) {
	guard := NewReplayGuard(time.Minute, 16)
	sealed, err := SealGroup(senderKP, "s", "g", []byte("m"), []*keys.PublicKey{recvKP.Public()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenGroup(recvKP, sealed.Bytes(), guard); err != nil {
		t.Fatalf("first open: %v", err)
	}
	if _, err := OpenGroup(recvKP, sealed.Bytes(), guard); !errors.Is(err, ErrMessageReplayed) {
		t.Fatalf("nonce reuse = %v, want ErrMessageReplayed", err)
	}
	// A fresh round from the same sender is unaffected.
	sealed2, err := SealGroup(senderKP, "s", "g", []byte("m2"), []*keys.PublicKey{recvKP.Public()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenGroup(recvKP, sealed2.Bytes(), guard); err != nil {
		t.Fatalf("fresh round after replay: %v", err)
	}
}

func TestReplayGuardCheckRound(t *testing.T) {
	g := NewReplayGuard(time.Minute, 16)
	base := time.Now()
	g.SetClock(func() time.Time { return base })
	nonce := []byte("0123456789abcdef")
	if err := g.CheckRound("peerA", nonce, base); err != nil {
		t.Fatalf("fresh round nonce: %v", err)
	}
	if err := g.CheckRound("peerA", nonce, base); !errors.Is(err, ErrMessageReplayed) {
		t.Fatalf("reused nonce = %v, want ErrMessageReplayed", err)
	}
	// Same nonce, different sender: independent.
	if err := g.CheckRound("peerB", nonce, base); err != nil {
		t.Fatalf("other sender, same nonce: %v", err)
	}
	// Outside the freshness window: stale regardless of novelty.
	if err := g.CheckRound("peerA", []byte("fedcba9876543210"), base.Add(-2*time.Minute)); !errors.Is(err, ErrMessageStale) {
		t.Fatalf("stale round = %v, want ErrMessageStale", err)
	}
}
