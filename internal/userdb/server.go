package userdb

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// ServiceName is the endpoint service the database server listens on.
const ServiceName = "overlay:db"

// Wire element names.
const (
	elemEnvelope = "db:env"
	elemSig      = "db:sig"
	elemCred     = "db:cred"
	elemBody     = "db:body"
)

// maxSkew bounds the accepted request timestamp drift.
const maxSkew = 2 * time.Minute

// Remote-protocol errors.
var (
	ErrUnauthorized = errors.New("userdb: caller is not an authorized broker")
	ErrProtocol     = errors.New("userdb: malformed database request")
	ErrReplay       = errors.New("userdb: replayed request")
	ErrServerAuth   = errors.New("userdb: response not authentic")
)

// Server exposes a Store on the network under the paper's trust
// topology: every request must be encrypted to the server's key and
// signed by a broker holding an administrator-issued credential.
type Server struct {
	store *Store
	ep    *endpoint.Service
	kp    *keys.KeyPair
	crd   *cred.Credential
	trust *cred.TrustStore

	mu    sync.Mutex
	seen  map[string]time.Time
	clock func() time.Time
}

// NewServer registers the database service on the given endpoint.
func NewServer(ep *endpoint.Service, store *Store, kp *keys.KeyPair, serverCred *cred.Credential, trust *cred.TrustStore) *Server {
	s := &Server{
		store: store,
		ep:    ep,
		kp:    kp,
		crd:   serverCred,
		trust: trust,
		seen:  make(map[string]time.Time),
		clock: time.Now,
	}
	ep.RegisterHandler(ServiceName, s.handle)
	return s
}

// SetClock overrides the server's time source (tests).
func (s *Server) SetClock(now func() time.Time) { s.clock = now }

func (s *Server) handle(_ keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	resp, err := s.process(msg)
	if err != nil {
		resp = &response{OK: false, Err: err.Error()}
	}
	out, mErr := s.marshalResponse(resp)
	if mErr != nil {
		return nil
	}
	return out
}

type request struct {
	Op        string
	User      string
	Pass      string
	Group     string
	Broker    keys.PeerID
	Nonce     string
	Timestamp time.Time
}

type response struct {
	OK     bool
	Err    string
	Groups []string
	Nonce  string
}

func (s *Server) process(msg *endpoint.Message) (*response, error) {
	envBytes, ok := msg.Get(elemEnvelope)
	if !ok {
		return nil, ErrProtocol
	}
	sig, ok := msg.Get(elemSig)
	if !ok {
		return nil, ErrProtocol
	}
	credBytes, ok := msg.Get(elemCred)
	if !ok {
		return nil, ErrProtocol
	}

	// 1. Authenticate the caller: administrator-issued broker credential.
	credDoc, err := xmldoc.ParseCanonical(credBytes)
	if err != nil {
		return nil, ErrProtocol
	}
	callerCred, err := cred.Parse(credDoc)
	if err != nil {
		return nil, ErrProtocol
	}
	if err := s.trust.Verify(callerCred, s.clock()); err != nil {
		return nil, ErrUnauthorized
	}
	if callerCred.Role != cred.RoleBroker {
		return nil, ErrUnauthorized
	}

	// 2. Open the envelope (only the DB can) and check the signature.
	env, err := keys.ParseEnvelope(envBytes)
	if err != nil {
		return nil, ErrProtocol
	}
	body, err := s.kp.Decrypt(env)
	if err != nil {
		return nil, ErrProtocol
	}
	if err := callerCred.Key.Verify(body, sig); err != nil {
		return nil, ErrUnauthorized
	}

	req, err := parseRequest(body)
	if err != nil {
		return nil, err
	}
	if req.Broker != callerCred.Subject {
		return nil, ErrUnauthorized
	}

	// 3. Freshness and replay checks.
	now := s.clock()
	if d := now.Sub(req.Timestamp); d > maxSkew || d < -maxSkew {
		return nil, fmt.Errorf("%w: stale timestamp", ErrProtocol)
	}
	if err := s.checkNonce(req.Nonce, now); err != nil {
		return nil, err
	}

	// 4. Execute.
	switch req.Op {
	case "auth":
		groups, err := s.store.Authenticate(req.User, req.Pass)
		if err != nil {
			return &response{OK: false, Err: "auth", Nonce: req.Nonce}, nil
		}
		return &response{OK: true, Groups: groups, Nonce: req.Nonce}, nil
	case "groups":
		groups, err := s.store.Groups(req.User)
		if err != nil {
			return &response{OK: false, Err: "nouser", Nonce: req.Nonce}, nil
		}
		return &response{OK: true, Groups: groups, Nonce: req.Nonce}, nil
	default:
		return nil, fmt.Errorf("%w: op %q", ErrProtocol, req.Op)
	}
}

func (s *Server) checkNonce(nonce string, now time.Time) error {
	if nonce == "" {
		return ErrProtocol
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for n, t := range s.seen {
		if now.Sub(t) > 2*maxSkew {
			delete(s.seen, n)
		}
	}
	if _, dup := s.seen[nonce]; dup {
		return ErrReplay
	}
	s.seen[nonce] = now
	return nil
}

func (s *Server) marshalResponse(r *response) (*endpoint.Message, error) {
	doc := xmldoc.New("DBResponse", "")
	if r.OK {
		doc.AddText("OK", "1")
	} else {
		doc.AddText("OK", "0")
	}
	doc.AddText("Err", r.Err)
	doc.AddText("Groups", strings.Join(r.Groups, ","))
	doc.AddText("Nonce", r.Nonce)
	body := doc.Canonical()
	sig, err := s.kp.Sign(body)
	if err != nil {
		return nil, err
	}
	msg := endpoint.NewMessage()
	msg.AddXML(elemBody, body)
	msg.Add(elemSig, sig)
	return msg, nil
}

func parseRequest(body []byte) (*request, error) {
	doc, err := xmldoc.ParseCanonical(body)
	if err != nil || doc.Name != "DBRequest" {
		return nil, ErrProtocol
	}
	ts, err := time.Parse(time.RFC3339Nano, doc.ChildText("Timestamp"))
	if err != nil {
		return nil, ErrProtocol
	}
	return &request{
		Op:        doc.ChildText("Op"),
		User:      doc.ChildText("User"),
		Pass:      doc.ChildText("Pass"),
		Group:     doc.ChildText("Group"),
		Broker:    keys.PeerID(doc.ChildText("Broker")),
		Nonce:     doc.ChildText("Nonce"),
		Timestamp: ts,
	}, nil
}

// Client is the broker-side handle to the remote database.
type Client struct {
	ep         *endpoint.Service
	server     keys.PeerID
	kp         *keys.KeyPair
	brokerCred *cred.Credential
	serverCred *cred.Credential
}

// NewClient builds a database client for a broker. serverCred is the
// database's administrator-issued credential, provisioned at deployment,
// used to authenticate responses.
func NewClient(ep *endpoint.Service, server keys.PeerID, kp *keys.KeyPair, brokerCred, serverCred *cred.Credential) *Client {
	return &Client{ep: ep, server: server, kp: kp, brokerCred: brokerCred, serverCred: serverCred}
}

// Authenticate checks a username/password pair against the central
// database and returns the user's groups.
func (c *Client) Authenticate(ctx context.Context, username, password string) ([]string, error) {
	return c.call(ctx, "auth", username, password)
}

// Groups fetches the user's group memberships.
func (c *Client) Groups(ctx context.Context, username string) ([]string, error) {
	return c.call(ctx, "groups", username, "")
}

func (c *Client) call(ctx context.Context, op, user, pass string) ([]string, error) {
	nonceBytes, err := keys.RandomBytes(16)
	if err != nil {
		return nil, err
	}
	nonce := hex.EncodeToString(nonceBytes)

	doc := xmldoc.New("DBRequest", "")
	doc.AddText("Op", op)
	doc.AddText("User", user)
	doc.AddText("Pass", pass)
	doc.AddText("Broker", string(c.brokerCred.Subject))
	doc.AddText("Nonce", nonce)
	doc.AddText("Timestamp", time.Now().UTC().Format(time.RFC3339Nano))
	body := doc.Canonical()

	sig, err := c.kp.Sign(body)
	if err != nil {
		return nil, err
	}
	env, err := c.serverCred.Key.Encrypt(body)
	if err != nil {
		return nil, err
	}
	credDoc, err := c.brokerCred.Document()
	if err != nil {
		return nil, err
	}

	msg := endpoint.NewMessage()
	msg.Add(elemEnvelope, env.Marshal())
	msg.Add(elemSig, sig)
	msg.AddXML(elemCred, credDoc.Canonical())

	resp, err := c.ep.Request(ctx, c.server, ServiceName, msg)
	if err != nil {
		return nil, err
	}
	return c.parseResponse(resp, nonce)
}

func (c *Client) parseResponse(msg *endpoint.Message, wantNonce string) ([]string, error) {
	body, ok := msg.Get(elemBody)
	if !ok {
		return nil, ErrProtocol
	}
	sig, ok := msg.Get(elemSig)
	if !ok {
		return nil, ErrProtocol
	}
	if err := c.serverCred.Key.Verify(body, sig); err != nil {
		return nil, ErrServerAuth
	}
	doc, err := xmldoc.ParseCanonical(body)
	if err != nil || doc.Name != "DBResponse" {
		return nil, ErrProtocol
	}
	if doc.ChildText("OK") == "1" {
		// The nonce echo binds this response to our request.
		if doc.ChildText("Nonce") != wantNonce {
			return nil, ErrServerAuth
		}
		groups := doc.ChildText("Groups")
		if groups == "" {
			return nil, nil
		}
		return strings.Split(groups, ","), nil
	}
	switch doc.ChildText("Err") {
	case "auth":
		return nil, ErrAuth
	case "nouser":
		return nil, ErrNoUser
	default:
		return nil, fmt.Errorf("userdb: server error: %s", doc.ChildText("Err"))
	}
}
