package core_test

import (
	"context"
	"testing"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/xdsig"
)

// secureHarness is a full §4.1 deployment: administrator, credentialed
// broker with the security extension, user database, PSE clients.
type secureHarness struct {
	t       *testing.T
	net     *simnet.Network
	dep     *core.Deployment
	br      *broker.Broker
	brSec   *core.BrokerSecurity
	brKP    *keys.KeyPair
	brCred  *cred.Credential
	db      *userdb.Store
	signAdv bool
}

func newSecureHarness(t *testing.T, requireSigned bool) *secureHarness {
	t.Helper()
	h := &secureHarness{t: t, signAdv: requireSigned}
	h.net = simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(h.net.Close)

	var err error
	h.dep, err = core.NewDeployment("uoc-admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	h.db = userdb.NewStoreIter(4)
	h.db.Register("alice", "pw-alice", "math")
	h.db.Register("bob", "pw-bob", "math")

	h.brKP, err = keys.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	h.brCred, err = h.dep.IssueBrokerCredential(h.brKP.Public(), "broker-1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, err := h.dep.TrustStore()
	if err != nil {
		t.Fatal(err)
	}
	h.br, err = broker.New(broker.Config{
		Name:   "broker-1",
		PeerID: h.brCred.Subject,
		Net:    h.net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return h.db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.br.Close)
	h.brSec, err = core.EnableBrokerSecurity(h.br, core.BrokerConfig{
		KeyPair:           h.brKP,
		Credential:        h.brCred,
		Trust:             trust,
		RequireSignedAdvs: requireSigned,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *secureHarness) secureClient(alias string, opts ...core.Option) *core.SecureClient {
	h.t.Helper()
	cl, err := client.New(h.net, membership.NewPSE("", 0), alias)
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(cl.Close)
	trust, err := h.dep.TrustStore()
	if err != nil {
		h.t.Fatal(err)
	}
	sc, err := core.NewSecureClient(cl, trust, opts...)
	if err != nil {
		h.t.Fatal(err)
	}
	return sc
}

func (h *secureHarness) join(sc *core.SecureClient, password string) {
	h.t.Helper()
	ctx := testCtx(h.t)
	if err := sc.SecureConnection(ctx, h.br.PeerID()); err != nil {
		h.t.Fatalf("SecureConnection: %v", err)
	}
	if err := sc.SecureLogin(ctx, password); err != nil {
		h.t.Fatalf("SecureLogin: %v", err)
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSecureConnection(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	col := events.NewCollector(sc.Bus())
	ctx := testCtx(t)
	if err := sc.SecureConnection(ctx, h.br.PeerID()); err != nil {
		t.Fatalf("SecureConnection: %v", err)
	}
	if sc.Sid() == "" {
		t.Fatal("no session identifier stored")
	}
	if sc.BrokerCredential() == nil || sc.BrokerCredential().SubjectName != "broker-1" {
		t.Fatal("broker credential not stored")
	}
	if _, ok := col.WaitFor(events.BrokerVerified, 5*time.Second); !ok {
		t.Fatal("no BrokerVerified event")
	}
	if h.brSec.PendingSids() != 1 {
		t.Fatalf("pending sids = %d", h.brSec.PendingSids())
	}
}

func TestSecureConnectionRejectsFakeBroker(t *testing.T) {
	// The DNS-spoofing scenario of §2.3: traffic is redirected to a
	// broker that does not hold an administrator-issued credential.
	h := newSecureHarness(t, true)

	fakeDep, err := core.NewDeployment("evil-admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	fakeKP, _ := keys.NewKeyPair()
	fakeCred, err := fakeDep.IssueBrokerCredential(fakeKP.Public(), "broker-1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	fakeTrust, _ := fakeDep.TrustStore()
	fakeBroker, err := broker.New(broker.Config{
		Name:   "broker-1", // same well-known name!
		PeerID: fakeCred.Subject,
		Net:    h.net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return []string{"math"}, nil // accepts anyone, to harvest credentials
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fakeBroker.Close)
	if _, err := core.EnableBrokerSecurity(fakeBroker, core.BrokerConfig{
		KeyPair: fakeKP, Credential: fakeCred, Trust: fakeTrust,
	}); err != nil {
		t.Fatal(err)
	}

	sc := h.secureClient("alice")
	col := events.NewCollector(sc.Bus())
	ctx := testCtx(t)
	err = sc.SecureConnection(ctx, fakeBroker.PeerID())
	if err == nil {
		t.Fatal("secureConnection accepted a fake broker")
	}
	if _, ok := col.WaitFor(events.BrokerRejected, 5*time.Second); !ok {
		t.Fatal("no BrokerRejected event")
	}
	if sc.Sid() != "" {
		t.Fatal("sid stored despite rejection")
	}
}

func TestSecureConnectionRejectsKeylessImpersonator(t *testing.T) {
	// An attacker replays the real broker's credential but cannot sign
	// the fresh challenge without SK_Br.
	h := newSecureHarness(t, true)
	realCredDoc, err := h.brCred.Document()
	if err != nil {
		t.Fatal(err)
	}

	impKP, _ := keys.NewKeyPair()
	impID, _ := keys.CBID(impKP.Public())
	impDB := broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
		return nil, nil
	})
	imp, err := broker.New(broker.Config{Name: "broker-1", PeerID: impID, Net: h.net, DB: impDB})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(imp.Close)
	// The impersonator answers secureConnection with the stolen
	// credential and a signature under its own key.
	imp.RegisterOp(proto.OpSecureConnect, func(_ keys.PeerID, msg *endpoint.Message) *endpoint.Message {
		chall, _ := msg.Get(proto.ElemChallenge)
		sig, _ := impKP.Sign(chall)
		return proto.OK().
			AddString(proto.ElemSid, "deadbeef").
			Add(proto.ElemSig, sig).
			AddXML(proto.ElemCred, realCredDoc.Canonical())
	})

	sc := h.secureClient("alice")
	ctx := testCtx(t)
	if err := sc.SecureConnection(ctx, imp.PeerID()); err == nil {
		t.Fatal("secureConnection accepted an impersonator without SK_Br")
	}
}

func TestSecureLogin(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")

	if !sc.LoggedIn() {
		t.Fatal("not logged in")
	}
	id := sc.Identity()
	if id.Credential == nil {
		t.Fatal("no credential issued")
	}
	if id.Credential.SubjectName != "alice" || id.Credential.Role != cred.RoleClient {
		t.Fatalf("credential = %+v", id.Credential)
	}
	if id.Credential.Issuer != h.brCred.Subject {
		t.Fatal("credential not issued by broker")
	}
	// Sid must be consumed on both sides.
	if sc.Sid() != "" {
		t.Fatal("client kept the sid")
	}
	if h.brSec.PendingSids() != 0 {
		t.Fatal("broker kept the sid")
	}
	if got := sc.Groups(); len(got) != 1 || got[0] != "math" {
		t.Fatalf("groups = %v", got)
	}
}

func TestSecureLoginWrongPassword(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	ctx := testCtx(t)
	if err := sc.SecureConnection(ctx, h.br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := sc.SecureLogin(ctx, "wrong"); err == nil {
		t.Fatal("secureLogin with wrong password succeeded")
	}
	if sc.LoggedIn() {
		t.Fatal("client believes it is logged in")
	}
}

func TestSecureLoginRequiresSecureConnection(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	ctx := testCtx(t)
	if err := sc.SecureLogin(ctx, "pw-alice"); err == nil {
		t.Fatal("secureLogin without secureConnection succeeded")
	}
}

func TestSidIsSingleUse(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	// A second login without a fresh secureConnection must fail: the sid
	// was consumed.
	ctx := testCtx(t)
	if err := sc.SecureLogin(ctx, "pw-alice"); err == nil {
		t.Fatal("second secureLogin with consumed sid succeeded")
	}
	// After re-running secureConnection, login works again.
	if err := sc.SecureConnection(ctx, h.br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := sc.SecureLogin(ctx, "pw-alice"); err != nil {
		t.Fatalf("re-login after fresh secureConnection: %v", err)
	}
}

func TestPlainLoginRejectedWhenSecureRequired(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	ctx := testCtx(t)
	if err := sc.Connect(ctx, h.br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := sc.Login(ctx, "pw-alice"); err == nil {
		t.Fatal("plaintext login accepted by secure-only broker")
	}
}

func TestSecureLoginPasswordNeverInClear(t *testing.T) {
	h := newSecureHarness(t, true)
	// The eavesdropper's capture is mutex-guarded: taps fire from
	// network goroutines concurrently with the test's assertions.
	eve := attack.NewEavesdropper(h.net)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	if eve.SawString("pw-alice") {
		t.Fatal("password appeared in clear on the wire during secureLogin")
	}
}

func TestPipeAdvertisementsSignedAfterLogin(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	// The broker's index must hold a signed, trusted pipe advertisement.
	recs := h.br.Cache().Find("PipeAdvertisement", nil)
	if len(recs) == 0 {
		t.Fatal("broker has no pipe advertisements")
	}
	trust, _ := h.dep.TrustStore()
	res, err := xdsig.VerifyTrusted(recs[0].Doc, trust, time.Now())
	if err != nil {
		t.Fatalf("published pipe advertisement not verifiable: %v", err)
	}
	if res.Signer.Subject != sc.PeerID() {
		t.Fatal("advertisement signed by someone else")
	}
}

func TestSecureMsgPeer(t *testing.T) {
	h := newSecureHarness(t, true)
	alice := h.secureClient("alice")
	bob := h.secureClient("bob")
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")
	bobEvents := events.NewCollector(bob.Bus())

	ctx := testCtx(t)
	if err := alice.SecureMsgPeer(ctx, bob.PeerID(), "math", "confidential hello"); err != nil {
		t.Fatalf("SecureMsgPeer: %v", err)
	}
	e, ok := bobEvents.WaitFor(events.SecureMessage, 5*time.Second)
	if !ok {
		t.Fatal("no SecureMessage event")
	}
	if string(e.Data) != "confidential hello" {
		t.Fatalf("body = %q", e.Data)
	}
	if e.Attr("authenticated") != "true" {
		t.Fatal("message not authenticated")
	}
	if e.Attr("user") != "alice" {
		t.Fatalf("sender user = %q", e.Attr("user"))
	}
	if e.From != alice.PeerID() {
		t.Fatalf("sender = %q", e.From)
	}
}

func TestSecureMsgPeerConfidentialOnWire(t *testing.T) {
	h := newSecureHarness(t, true)
	alice := h.secureClient("alice")
	bob := h.secureClient("bob")
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")

	eve := attack.NewEavesdropper(h.net)
	ctx := testCtx(t)
	secret := "eyes-only-payload-marker"
	if err := alice.SecureMsgPeer(ctx, bob.PeerID(), "math", secret); err != nil {
		t.Fatal(err)
	}
	if eve.SawString(secret) {
		t.Fatal("secure message payload visible on the wire")
	}
}

func TestSecureMsgPeerGroup(t *testing.T) {
	h := newSecureHarness(t, true)
	h.db.Register("carol", "pw-carol", "math")
	alice := h.secureClient("alice")
	bob := h.secureClient("bob")
	carol := h.secureClient("carol")
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")
	h.join(carol, "pw-carol")
	bobEvents := events.NewCollector(bob.Bus())
	carolEvents := events.NewCollector(carol.Bus())

	ctx := testCtx(t)
	sent, err := alice.SecureMsgPeerGroup(ctx, "math", "team update")
	if err != nil {
		t.Fatalf("SecureMsgPeerGroup: %v", err)
	}
	if sent != 2 {
		t.Fatalf("sent = %d, want 2", sent)
	}
	if _, ok := bobEvents.WaitFor(events.SecureMessage, 5*time.Second); !ok {
		t.Fatal("bob missed the group message")
	}
	if _, ok := carolEvents.WaitFor(events.SecureMessage, 5*time.Second); !ok {
		t.Fatal("carol missed the group message")
	}
}

func TestBrokerRejectsUnsignedAdvWhenRequired(t *testing.T) {
	h := newSecureHarness(t, true)
	alice := h.secureClient("alice")
	h.join(alice, "pw-alice")
	ctx := testCtx(t)
	// Bypass the signer: publish a raw unsigned document.
	pres := presenceAdv(alice.PeerID(), "math")
	if err := alice.PublishAdvDoc(ctx, pres); err == nil {
		t.Fatal("broker accepted an unsigned advertisement")
	}
}

func TestBrokerRejectsForeignSignedAdv(t *testing.T) {
	// Mallory (validly logged in) signs an advertisement describing
	// alice's peer ID: ownership check must reject it.
	h := newSecureHarness(t, true)
	h.db.Register("mallory", "pw-m", "math")
	alice := h.secureClient("alice")
	mallory := h.secureClient("mallory")
	h.join(alice, "pw-alice")
	h.join(mallory, "pw-m")

	ctx := testCtx(t)
	forged := presenceAdv(alice.PeerID(), "math") // claims to be alice
	mID := mallory.Identity()
	if err := xdsig.Sign(forged, mID.Keys, mID.Credential, h.brCred); err != nil {
		t.Fatal(err)
	}
	if err := mallory.PublishAdvDoc(ctx, forged); err == nil {
		t.Fatal("broker propagated an advertisement signed by a non-owner")
	}
}

func TestSecureMsgRejectsUnsignedPipeAdv(t *testing.T) {
	// Without signed-adv enforcement at the broker, a client may still
	// receive an unsigned pipe advertisement; secureMsgPeer must refuse
	// to use it (§4.3.1 step 2).
	h := newSecureHarness(t, false)
	alice := h.secureClient("alice")
	bob := h.secureClient("bob")
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")

	// Poison alice's cache with an unsigned pipe adv for bob.
	ctx := testCtx(t)
	pipeAdv, _, err := alice.LookupPipe(ctx, bob.PeerID(), "math")
	if err != nil {
		t.Fatal(err)
	}
	unsignedDoc, err := pipeAdv.Document()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Cache().Put(unsignedDoc); err != nil {
		t.Fatal(err)
	}
	alerts := events.NewCollector(alice.Bus())
	if err := alice.SecureMsgPeer(ctx, bob.PeerID(), "math", "x"); err == nil {
		t.Fatal("secureMsgPeer used an unsigned pipe advertisement")
	}
	if _, ok := alerts.WaitFor(events.SecurityAlert, 5*time.Second); !ok {
		t.Fatal("no security alert for invalid advertisement")
	}
}

func TestModeAblation(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeFull, core.ModeSign, core.ModeEncrypt} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			h := newSecureHarness(t, true)
			alice := h.secureClient("alice", core.WithMode(mode))
			bob := h.secureClient("bob")
			h.join(alice, "pw-alice")
			h.join(bob, "pw-bob")
			bobEvents := events.NewCollector(bob.Bus())
			ctx := testCtx(t)
			if err := alice.SecureMsgPeer(ctx, bob.PeerID(), "math", "payload"); err != nil {
				t.Fatal(err)
			}
			e, ok := bobEvents.WaitFor(events.SecureMessage, 5*time.Second)
			if !ok {
				t.Fatal("message not delivered")
			}
			wantAuth := "true"
			if mode == core.ModeEncrypt {
				wantAuth = "false"
			}
			if e.Attr("authenticated") != wantAuth {
				t.Fatalf("authenticated = %q (mode %s)", e.Attr("authenticated"), mode)
			}
		})
	}
}

func TestNewSecureClientRequiresKeys(t *testing.T) {
	h := newSecureHarness(t, true)
	cl, err := client.New(h.net, membership.NewNone(), "plain-user")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	trust, _ := h.dep.TrustStore()
	if _, err := core.NewSecureClient(cl, trust); err == nil {
		t.Fatal("NewSecureClient accepted a keyless identity")
	}
}
