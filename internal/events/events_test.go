package events

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubscribeEmit(t *testing.T) {
	b := NewBus()
	var got []Event
	b.Subscribe(MessageReceived, func(e Event) { got = append(got, e) })
	b.Emit(Event{Type: MessageReceived, From: "peer-1", Data: []byte("hi")})
	b.Emit(Event{Type: LoginOK}) // different type, must not be delivered
	if len(got) != 1 {
		t.Fatalf("received %d events", len(got))
	}
	if got[0].From != "peer-1" || string(got[0].Data) != "hi" {
		t.Fatalf("event = %+v", got[0])
	}
	if got[0].Time.IsZero() {
		t.Fatal("Emit did not stamp time")
	}
	if got[0].Payload == nil {
		t.Fatal("Emit did not initialize payload")
	}
}

func TestWildcardSubscription(t *testing.T) {
	b := NewBus()
	var count atomic.Int32
	b.SubscribeAll(func(Event) { count.Add(1) })
	b.Emit(Event{Type: LoginOK})
	b.Emit(Event{Type: LoginFailed})
	b.Emit(Event{Type: SecurityAlert})
	if count.Load() != 3 {
		t.Fatalf("wildcard got %d events", count.Load())
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBus()
	var count atomic.Int32
	cancel := b.Subscribe(LoginOK, func(Event) { count.Add(1) })
	b.Emit(Event{Type: LoginOK})
	cancel()
	b.Emit(Event{Type: LoginOK})
	if count.Load() != 1 {
		t.Fatalf("handler fired %d times, want 1", count.Load())
	}
	cancel() // double-cancel must be safe
}

func TestMultipleSubscribersSameType(t *testing.T) {
	b := NewBus()
	var a, c atomic.Int32
	b.Subscribe(GroupUpdated, func(Event) { a.Add(1) })
	b.Subscribe(GroupUpdated, func(Event) { c.Add(1) })
	b.Emit(Event{Type: GroupUpdated})
	if a.Load() != 1 || c.Load() != 1 {
		t.Fatalf("subscribers fired %d/%d", a.Load(), c.Load())
	}
}

func TestConcurrentEmitSubscribe(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			cancel := b.Subscribe(PresenceUpdate, func(Event) {})
			defer cancel()
		}()
		go func() {
			defer wg.Done()
			b.Emit(Event{Type: PresenceUpdate})
		}()
	}
	wg.Wait()
}

func TestAttr(t *testing.T) {
	e := Event{Payload: map[string]string{"user": "alice"}}
	if e.Attr("user") != "alice" || e.Attr("none") != "" {
		t.Fatal("Attr misbehaved")
	}
}

func TestCollector(t *testing.T) {
	b := NewBus()
	c := NewCollector(b)
	go func() {
		time.Sleep(10 * time.Millisecond)
		b.Emit(Event{Type: FileReceived, Group: "g"})
	}()
	e, ok := c.WaitFor(FileReceived, 5*time.Second)
	if !ok {
		t.Fatal("WaitFor timed out")
	}
	if e.Group != "g" {
		t.Fatalf("event = %+v", e)
	}
	if len(c.OfType(FileReceived)) != 1 {
		t.Fatal("OfType mismatch")
	}
	if _, ok := c.WaitFor(TaskCompleted, 30*time.Millisecond); ok {
		t.Fatal("WaitFor returned event that never fired")
	}
}
