package xmldoc

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalSimple(t *testing.T) {
	e := New("Msg", "hello")
	got := string(e.Canonical())
	want := "<Msg>hello</Msg>"
	if got != want {
		t.Fatalf("Canonical() = %q, want %q", got, want)
	}
}

func TestCanonicalAttrsSorted(t *testing.T) {
	e := New("Adv", "")
	e.SetAttr("zeta", "1")
	e.SetAttr("alpha", "2")
	e.SetAttr("mid", "3")
	got := string(e.Canonical())
	want := `<Adv alpha="2" mid="3" zeta="1"></Adv>`
	if got != want {
		t.Fatalf("Canonical() = %q, want %q", got, want)
	}
}

func TestCanonicalEscaping(t *testing.T) {
	e := New("T", `a<b&c>d`)
	e.SetAttr("q", `x"y<z&`)
	got := string(e.Canonical())
	want := `<T q="x&quot;y&lt;z&amp;">a&lt;b&amp;c&gt;d</T>`
	if got != want {
		t.Fatalf("Canonical() = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	e := NewTree("PipeAdvertisement",
		New("Id", "urn:jxta:pipe-0123"),
		New("Type", "JxtaUnicast"),
		New("Name", "chat/alice"),
	)
	e.SetAttr("version", "2")
	back, err := RoundTrip(e)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if !e.Equal(back) {
		t.Fatalf("round trip mismatch:\n  in:  %s\n  out: %s", e, back)
	}
}

func TestParsePrettyPrintedInput(t *testing.T) {
	in := `
<PeerAdvertisement>
  <Id>urn:jxta:cbid-abc</Id>
  <Name>alice</Name>
  <Desc>  spaces kept inside leaf  </Desc>
</PeerAdvertisement>`
	e, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if e.Name != "PeerAdvertisement" {
		t.Fatalf("root = %q", e.Name)
	}
	if got := e.ChildText("Id"); got != "urn:jxta:cbid-abc" {
		t.Fatalf("Id = %q", got)
	}
	if got := e.ChildText("Desc"); got != "  spaces kept inside leaf  " {
		t.Fatalf("Desc = %q (leaf whitespace must be preserved)", got)
	}
	// Indentation whitespace around children must not leak into Text.
	if e.Text != "" {
		t.Fatalf("container text = %q, want empty", e.Text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"unbalanced", "<A><B></A>"},
		{"truncated", "<A><B>"},
		{"two-roots", "<A></A><B></B>"},
		{"garbage", "not xml at all <"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestChildHelpers(t *testing.T) {
	e := NewTree("Root",
		New("A", "1"),
		New("B", "2"),
		New("A", "3"),
	)
	if c := e.Child("A"); c == nil || c.Text != "1" {
		t.Fatalf("Child(A) = %v", c)
	}
	if c := e.Child("Z"); c != nil {
		t.Fatalf("Child(Z) = %v, want nil", c)
	}
	if got := e.ChildText("B"); got != "2" {
		t.Fatalf("ChildText(B) = %q", got)
	}
	if got := e.ChildText("Z"); got != "" {
		t.Fatalf("ChildText(Z) = %q", got)
	}
	if got := len(e.ChildrenNamed("A")); got != 2 {
		t.Fatalf("ChildrenNamed(A) len = %d", got)
	}
	if n := e.RemoveChildren("A"); n != 2 {
		t.Fatalf("RemoveChildren(A) = %d", n)
	}
	if got := len(e.Children); got != 1 {
		t.Fatalf("remaining children = %d", got)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	e := New("E", "")
	e.SetAttr("k", "v1")
	e.SetAttr("k", "v2")
	if len(e.Attrs) != 1 {
		t.Fatalf("attrs = %v", e.Attrs)
	}
	if v, ok := e.Attr("k"); !ok || v != "v2" {
		t.Fatalf("Attr(k) = %q, %v", v, ok)
	}
	if _, ok := e.Attr("missing"); ok {
		t.Fatal("Attr(missing) reported present")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := NewTree("Root", New("C", "x"))
	e.SetAttr("a", "1")
	c := e.Clone()
	c.Children[0].Text = "mutated"
	c.SetAttr("a", "2")
	if e.Children[0].Text != "x" {
		t.Fatal("clone mutation leaked into original child")
	}
	if v, _ := e.Attr("a"); v != "1" {
		t.Fatal("clone mutation leaked into original attr")
	}
	if !e.Equal(e.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestEqualIgnoresAttrOrder(t *testing.T) {
	a := New("E", "t")
	a.Attrs = []Attr{{"x", "1"}, {"y", "2"}}
	b := New("E", "t")
	b.Attrs = []Attr{{"y", "2"}, {"x", "1"}}
	if !a.Equal(b) {
		t.Fatal("Equal must ignore attribute order")
	}
	b.Attrs[0].Value = "3"
	if a.Equal(b) {
		t.Fatal("Equal must detect attribute value change")
	}
}

func TestEqualDetectsChildOrder(t *testing.T) {
	a := NewTree("R", New("A", ""), New("B", ""))
	b := NewTree("R", New("B", ""), New("A", ""))
	if a.Equal(b) {
		t.Fatal("Equal must be sensitive to child order (canonical form is)")
	}
}

// randomTree builds a bounded random element tree for property testing.
func randomTree(r *rand.Rand, depth int) *Element {
	names := []string{"Adv", "Id", "Name", "Key", "Sig", "Data"}
	e := New(names[r.Intn(len(names))], "")
	if r.Intn(2) == 0 {
		e.Text = randText(r)
	}
	for i := 0; i < r.Intn(3); i++ {
		e.SetAttr(names[r.Intn(len(names))]+"attr", randText(r))
	}
	if depth > 0 {
		for i := 0; i < r.Intn(4); i++ {
			e.Add(randomTree(r, depth-1))
		}
	}
	if len(e.Children) > 0 {
		// Mixed content is normalized away by Parse; keep element normal form.
		e.Text = strings.TrimSpace(e.Text)
	}
	return e
}

func randText(r *rand.Rand) string {
	alphabet := []rune("abc <>&\"'xyz0123456789")
	n := r.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	// Leaf text is trimmed only when siblings exist; keep it trimmed so the
	// property holds regardless of structure.
	return strings.TrimSpace(string(out))
}

func TestPropertyCanonicalRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomTree(r, 3))
		},
	}
	prop := func(e *Element) bool {
		back, err := RoundTrip(e)
		if err != nil {
			t.Logf("round trip error: %v on %s", err, e)
			return false
		}
		return e.Equal(back) && bytes.Equal(e.Canonical(), back.Canonical())
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCanonicalDeterministic(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomTree(r, 3))
		},
	}
	prop := func(e *Element) bool {
		c := e.Clone()
		// Shuffle attribute order on the clone; canonical bytes must agree.
		for i := range c.Attrs {
			j := len(c.Attrs) - 1 - i
			if j > i {
				c.Attrs[i], c.Attrs[j] = c.Attrs[j], c.Attrs[i]
			}
		}
		return bytes.Equal(e.Canonical(), c.Canonical())
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
