// Package relay implements the broker-side store-and-forward delivery
// subsystem: per-recipient wires (round slices cut by the broker from
// one uploaded ModeGroup round) are delivered immediately to online
// peers and queued — in bounded, TTL-expiring, per-peer FIFO queues —
// for offline ones, then drained by sharded delivery workers when the
// peer's presence comes back (login events on the events.Bus).
//
// Queues are durable when Config.WAL.Dir is set: every enqueue,
// delivery, expiry and drop is written behind the in-memory state to an
// append-only, CRC-checked log (internal/relay/wal), and a restarted
// relay replays the log to rebuild its queues — re-enforcing TTL on
// every recovered item and never resurrecting one whose delivery,
// expiry or drop was already logged. Per-sender and per-group quotas
// bound how much of the shared store one chatty sender (or one noisy
// group) may occupy, so the per-peer drop-oldest policy cannot be
// weaponized to evict everyone else's traffic.
//
// The relay is deliberately ignorant of cryptography: payloads are
// opaque bytes. Everything that makes a queued slice safe to hold at an
// untrusted intermediary — the signed recipient binding, the body
// digest, the single-use round nonce — lives inside the payload and is
// enforced by the recipient (core.OpenSlice). A compromised relay can
// drop or delay traffic; it cannot read, re-target or replay it (see
// SECURITY.md, "Store-and-forward trust model").
package relay

import (
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/backoff"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/relay/wal"
	"jxtaoverlay/internal/trace"
)

// Item is one undelivered payload addressed to one recipient.
type Item struct {
	// To is the recipient peer.
	To keys.PeerID
	// From is the originating peer (diagnostics and quota accounting;
	// the authenticated sender is inside the payload).
	From keys.PeerID
	// Group is the overlay group the payload belongs to.
	Group string
	// Payload is the wire to hand to the recipient, opaque to the relay.
	Payload []byte
	// Expires is when the item stops being deliverable. The zero value
	// means "now + Config.TTL", stamped at submission.
	Expires time.Time
	// Forwarded marks an item received through federation hand-off; the
	// delivery hook must not forward it a second time (one-hop loop
	// guard across the broker mesh).
	Forwarded bool
	// Trace is the message-lifecycle trace ID the item belongs to
	// (0 = untraced). It rides in memory only — the WAL record format
	// does not carry it, so recovered items come back untraced.
	Trace uint64

	// seq is the item's WAL sequence number (0 = not persisted).
	seq wal.Seq
	// enqueuedAt stamps when the item entered its offline queue, so a
	// later flush can attribute the queue-wait stage to its trace.
	enqueuedAt time.Time
}

// DeliverFunc hands one item to its recipient. A non-nil error means
// the recipient was not reached; the relay keeps (or re-queues) the
// item until its TTL runs out.
type DeliverFunc func(it Item) error

// OnlineFunc reports whether a peer is currently reachable for direct
// delivery.
type OnlineFunc func(id keys.PeerID) bool

// Config parameterizes a Relay.
type Config struct {
	// QueueCap bounds each peer's offline queue. On overflow the OLDEST
	// item is dropped (and counted) — newer traffic is the traffic a
	// returning peer still cares about. 0 = 64.
	QueueCap int
	// SenderQuota bounds how many items one SENDER may have queued
	// across all recipients (0 = unlimited). Submissions over quota are
	// refused with SubmitDroppedQuota instead of evicting other
	// senders' traffic.
	SenderQuota int
	// GroupQuota bounds how many items one GROUP may have queued across
	// all recipients (0 = unlimited).
	GroupQuota int
	// TTL is how long a queued item stays deliverable (0 = 2 minutes).
	// Note the tension with the recipients' replay-guard freshness
	// window: items held longer than that window would be rejected as
	// stale on delivery anyway, so the TTL should not exceed it.
	TTL time.Duration
	// Shards is the number of queue shards, each with one delivery
	// worker (0 = 8). Peers hash onto shards, so flushes for different
	// peers proceed in parallel while one peer's queue always drains in
	// order from a single worker.
	Shards int
	// WAL configures the durable queue log. WAL.Dir == "" runs the
	// relay in-memory (queues die with the process). The relay owns the
	// log: it opens it in New (replaying any previous state) and closes
	// it in Close.
	WAL wal.Options
	// Tracer records lifecycle spans for traced items (nil = off): the
	// enqueue stage, WAL append and fsync attribution, and queue-wait
	// dwell time. Untraced items (Item.Trace == 0) cost nothing.
	Tracer *trace.Recorder
	// Auditor receives a tamper-evident audit record for every
	// security-relevant relay decision — quota refusals, overflow drops
	// and WAL write failures (nil = off). Ordinary deliveries are not
	// audited: the audit log records refusals and faults, not traffic.
	Auditor *audit.Journal
	// RetryBackoff spaces the re-drain attempts armed after delivery
	// failures against a still-online peer: capped exponential with
	// full jitter, per-peer attempt counters resetting on a successful
	// delivery (zero = DefaultRetryBackoff). A fixed spacing here
	// re-synchronizes every stuck peer's retries; the jitter spreads
	// them out.
	RetryBackoff backoff.Policy
	// RetrySeed seeds the retry jitter for deterministic scenarios
	// (0 = the global entropy source).
	RetrySeed int64
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// DefaultRetryBackoff keeps the first re-drain as prompt as the old
// fixed 250ms timer while letting a persistently failing peer's
// retries stretch to 5s instead of hammering every quarter second.
var DefaultRetryBackoff = backoff.Policy{Base: 250 * time.Millisecond, Cap: 5 * time.Second}

// Metrics is a snapshot of the relay's counters.
type Metrics struct {
	// DeliveredDirect counts items handed to online recipients without
	// queueing.
	DeliveredDirect uint64
	// DeliveredFlushed counts queued items delivered by a flush.
	DeliveredFlushed uint64
	// HandedOff counts items forwarded to a federation partner broker
	// because the recipient's presence migrated there.
	HandedOff uint64
	// Enqueued counts items that entered an offline queue.
	Enqueued uint64
	// DroppedOverflow counts oldest-items dropped by full queues.
	DroppedOverflow uint64
	// DroppedQuota counts submissions refused because the sender or
	// group was over its queue quota — isolation, not overflow.
	DroppedQuota uint64
	// Expired counts items whose TTL ran out before delivery.
	Expired uint64
	// DeliverErrors counts failed delivery attempts (the item is kept).
	DeliverErrors uint64
	// WALErrors counts queue mutations the WAL failed to log (the
	// in-memory queue keeps working; durability degrades).
	WALErrors uint64
	// RecoveryReplayed counts items rebuilt into queues at startup.
	RecoveryReplayed uint64
	// RecoveryDiscardedTTL counts logged items discarded at startup
	// because their TTL had already run out.
	RecoveryDiscardedTTL uint64
	// RecoveryDiscardedGuard counts logged items discarded at startup
	// because a delivery/expiry/drop ack was also logged — the
	// no-resurrection guard.
	RecoveryDiscardedGuard uint64
}

// Relay is the store-and-forward subsystem of one broker.
type Relay struct {
	cfg     Config
	deliver DeliverFunc
	online  OnlineFunc

	shards []*shard
	wg     sync.WaitGroup
	stop   chan struct{}
	closed atomic.Bool

	log *wal.Log // nil when running in-memory

	// Cross-queue quota occupancy, by sender and by group.
	quotaMu  sync.Mutex
	bySender map[keys.PeerID]int
	byGroup  map[string]int

	// Armed mid-drain retry timers, cancelled by Close so a retry can
	// never fire against a closed relay. retryAttempts drives the
	// per-peer backoff schedule; retryUnit is the jitter draw.
	retryMu       sync.Mutex
	retryTimers   map[keys.PeerID]*time.Timer
	retryAttempts map[keys.PeerID]int
	retryUnit     func() float64

	bus       *events.Bus // optional, set by BindBus; emits RelayFlushed
	busCancel func()      // unsubscribes from the bus; called by Close

	// Traced items staged behind the next WAL fsync; the OnSync hook
	// drains it to attribute the fsync's duration to each trace.
	fsyncMu      sync.Mutex
	fsyncPending []uint64

	deliveredDirect  atomic.Uint64
	deliveredFlushed atomic.Uint64
	handedOff        atomic.Uint64
	enqueued         atomic.Uint64
	droppedOverflow  atomic.Uint64
	droppedQuota     atomic.Uint64
	expired          atomic.Uint64
	deliverErrors    atomic.Uint64
	walErrors        atomic.Uint64

	recoveryReplayed       uint64
	recoveryDiscardedTTL   uint64
	recoveryDiscardedGuard uint64
}

type shard struct {
	r       *Relay
	mu      sync.Mutex
	queues  map[keys.PeerID][]Item
	flushCh chan keys.PeerID
}

// New starts a relay. online gates direct delivery; deliver performs
// it. Both must be safe for concurrent use. With Config.WAL.Dir set the
// previous process's queue log is replayed first: un-acked items
// re-enter their queues (TTL re-checked, acked items never resurrected)
// and the error reports an unreadable or unreplayable log.
func New(cfg Config, online OnlineFunc, deliver DeliverFunc) (*Relay, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 2 * time.Minute
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.RetryBackoff == (backoff.Policy{}) {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	r := &Relay{
		cfg:           cfg,
		deliver:       deliver,
		online:        online,
		stop:          make(chan struct{}),
		bySender:      make(map[keys.PeerID]int),
		byGroup:       make(map[string]int),
		retryTimers:   make(map[keys.PeerID]*time.Timer),
		retryAttempts: make(map[keys.PeerID]int),
	}
	if cfg.RetrySeed != 0 {
		r.retryUnit = backoff.NewSource(cfg.RetryBackoff, cfg.RetrySeed).Unit
	}
	r.shards = make([]*shard, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = &shard{r: r, queues: make(map[keys.PeerID][]Item), flushCh: make(chan keys.PeerID, 256)}
	}
	if cfg.Tracer != nil && cfg.WAL.Dir != "" {
		// Attribute each successful fsync to the traced items staged
		// behind it (the hook fires from wal with log locks held; it
		// only touches the recorder and the pending list).
		r.cfg.WAL.OnSync = r.onWALSync
	}
	if cfg.WAL.Dir != "" {
		if err := r.recover(); err != nil {
			return nil, err
		}
	}
	for _, s := range r.shards {
		r.wg.Add(1)
		go s.work()
	}
	return r, nil
}

// recover opens the WAL and rebuilds the queues from its live records.
// Replay re-runs the admission checks a live submission would face:
// items whose TTL passed while the broker was down are discarded (and
// acked so compaction reclaims them), caps and quotas are re-enforced,
// and — inside wal.Open — items with a logged delivery/expiry/drop
// never come back at all.
func (r *Relay) recover() error {
	log, recovered, stats, err := wal.Open(r.cfg.WAL)
	if err != nil {
		return err
	}
	r.log = log
	r.recoveryDiscardedGuard = uint64(stats.Acked)
	now := r.cfg.Clock()
	for _, rec := range recovered {
		if now.After(rec.Expires) {
			r.recoveryDiscardedTTL++
			r.expired.Add(1)
			if aerr := log.AppendAck(rec.Seq, wal.AckExpired); aerr != nil {
				r.walErrors.Add(1)
				r.audit(audit.Event{Kind: audit.KindWALError, Peer: string(rec.To), Op: "relay-recover", Reason: aerr.Error()})
			}
			continue
		}
		it := Item{
			To: rec.To, From: rec.From, Group: rec.Group,
			Payload: rec.Payload, Expires: rec.Expires,
			Forwarded: rec.Forwarded, seq: rec.Seq,
		}
		if !r.reserveQuota(it) {
			r.droppedQuota.Add(1)
			r.audit(audit.Event{Kind: audit.KindRelayDrop, Peer: string(it.From), Op: "relay-recover", Reason: "quota"})
			if aerr := log.AppendAck(rec.Seq, wal.AckDropped); aerr != nil {
				r.walErrors.Add(1)
				r.audit(audit.Event{Kind: audit.KindWALError, Peer: string(rec.To), Op: "relay-recover", Reason: aerr.Error()})
			}
			continue
		}
		// Workers are not running yet, so enqueue touches shards
		// unobserved; cap overflow acks through the usual path.
		r.shardOf(it.To).enqueue(it)
		r.recoveryReplayed++
	}
	return nil
}

// BindBus subscribes the relay to presence events so a peer's queue is
// drained the moment it logs (back) in, and lets the relay announce
// completed drains as events.RelayFlushed. It returns the unsubscribe
// function; Close also unsubscribes, so a bus-bound relay does not
// outlive its shutdown as a dead subscriber.
func (r *Relay) BindBus(bus *events.Bus) (cancel func()) {
	r.bus = bus
	cancel = bus.Subscribe(events.PresenceUpdate, func(e events.Event) {
		if e.Attr("status") == advert.StatusOnline {
			r.Flush(e.From)
		}
	})
	r.busCancel = cancel
	return cancel
}

func (r *Relay) shardOf(id keys.PeerID) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return r.shards[int(h.Sum32())%len(r.shards)]
}

// SubmitResult reports the disposition of one submitted item.
type SubmitResult int

const (
	// SubmitDropped means the relay is closed and the item was
	// discarded — it was neither delivered nor stored.
	SubmitDropped SubmitResult = iota
	// SubmitDirect means the item was handed to its online recipient
	// immediately.
	SubmitDirect
	// SubmitQueued means the item was stored for delivery at the
	// recipient's next login (or the armed retry).
	SubmitQueued
	// SubmitDroppedQuota means the item was refused because its sender
	// or group is over its queue quota. Distinct from SubmitDropped so
	// the broker can tell the sender "you are throttled" rather than
	// "the relay is down".
	SubmitDroppedQuota
)

// Submit routes one item: direct delivery when the recipient is online
// (falling back to the queue when the send fails under it), the
// bounded queue otherwise. Callers must not report SubmitDropped or
// SubmitDroppedQuota items as pending — nothing will ever deliver them.
func (r *Relay) Submit(it Item) SubmitResult {
	if r.closed.Load() {
		return SubmitDropped
	}
	if it.Expires.IsZero() {
		it.Expires = r.cfg.Clock().Add(r.cfg.TTL)
	}
	if r.online(it.To) {
		if err := r.deliver(it); err == nil {
			r.deliveredDirect.Add(1)
			// A direct success proves the peer reachable: drain any
			// stragglers an earlier failed flush put back in its queue,
			// so they don't sit until TTL while new traffic flows past.
			r.Flush(it.To)
			return SubmitDirect
		}
		r.deliverErrors.Add(1)
	}
	// Queue path: quota first (a refused item must not reach the WAL),
	// then the durable append, then the in-memory queue.
	traced := r.cfg.Tracer != nil && it.Trace != 0
	var spEnq trace.Span
	if traced {
		spEnq = trace.Begin(it.Trace, trace.StageEnqueue)
	}
	if !r.reserveQuota(it) {
		r.droppedQuota.Add(1)
		r.audit(audit.Event{Kind: audit.KindRelayDrop, Peer: string(it.From), Op: "relay-submit", Reason: "quota", Trace: it.Trace})
		if traced {
			// Anomalous: force-captured even when the trace is unsampled,
			// so the sender's quota refusal is always attributable.
			r.cfg.Tracer.End(spEnq, trace.OutcomeQuota)
		}
		return SubmitDroppedQuota
	}
	if r.log != nil {
		var spWAL trace.Span
		if traced {
			// Stage the trace for fsync attribution BEFORE the append:
			// in sync-per-append mode the fsync happens inside AppendAdd.
			r.stageFsyncTrace(it.Trace)
			spWAL = trace.Begin(it.Trace, trace.StageWALAppend)
		}
		seq, err := r.log.AppendAdd(wal.Record{
			To: it.To, From: it.From, Group: it.Group,
			Payload: it.Payload, Expires: it.Expires, Forwarded: it.Forwarded,
		})
		if err != nil {
			// The log died (disk fault or injected crash). Keep serving
			// from memory — a degraded relay beats a dead one — but
			// count it: operators alert on WALErrors.
			r.walErrors.Add(1)
			r.audit(audit.Event{Kind: audit.KindWALError, Peer: string(it.From), Op: "relay-append", Reason: err.Error(), Trace: it.Trace})
			if traced {
				r.cfg.Tracer.End(spWAL, trace.OutcomeWALError)
			}
		} else {
			it.seq = seq
			if traced {
				r.cfg.Tracer.End(spWAL, trace.OutcomeOK)
			}
		}
	}
	s := r.shardOf(it.To)
	it.enqueuedAt = r.cfg.Clock()
	s.enqueue(it)
	if traced {
		r.cfg.Tracer.End(spEnq, trace.OutcomeOK)
	}
	// Close raced the enqueue: the workers are (or are about to be)
	// gone and nothing will drain this item, so don't report it queued.
	if r.closed.Load() {
		return SubmitDropped
	}
	// Close the enqueue-vs-login race: if the peer came online between
	// the check above and the enqueue, its login flush may already have
	// run and missed this item — re-trigger. Either the enqueue
	// happened before the flush drained (item delivered there) or this
	// flush sees it; no ordering loses the item.
	if r.online(it.To) {
		r.Flush(it.To)
	}
	return SubmitQueued
}

// reserveQuota claims one unit of sender and group occupancy, refusing
// when either is at its cap. Direct deliveries never reserve — quotas
// bound queue OCCUPANCY, the contended resource.
func (r *Relay) reserveQuota(it Item) bool {
	if r.cfg.SenderQuota <= 0 && r.cfg.GroupQuota <= 0 {
		return true
	}
	r.quotaMu.Lock()
	defer r.quotaMu.Unlock()
	if r.cfg.SenderQuota > 0 && r.bySender[it.From] >= r.cfg.SenderQuota {
		return false
	}
	if r.cfg.GroupQuota > 0 && r.byGroup[it.Group] >= r.cfg.GroupQuota {
		return false
	}
	r.bySender[it.From]++
	r.byGroup[it.Group]++
	return true
}

// releaseQuota returns an item's occupancy when it leaves its queue for
// any reason (delivered, expired, dropped).
func (r *Relay) releaseQuota(it Item) {
	if r.cfg.SenderQuota <= 0 && r.cfg.GroupQuota <= 0 {
		return
	}
	r.quotaMu.Lock()
	defer r.quotaMu.Unlock()
	if n := r.bySender[it.From] - 1; n > 0 {
		r.bySender[it.From] = n
	} else {
		delete(r.bySender, it.From)
	}
	if n := r.byGroup[it.Group] - 1; n > 0 {
		r.byGroup[it.Group] = n
	} else {
		delete(r.byGroup, it.Group)
	}
}

// SenderOverQuota reports whether a sender has exhausted its queue
// quota — the broker's fast-fail check before it pays for slicing a
// round whose every slice would be refused.
func (r *Relay) SenderOverQuota(id keys.PeerID) bool {
	if r.cfg.SenderQuota <= 0 {
		return false
	}
	r.quotaMu.Lock()
	defer r.quotaMu.Unlock()
	return r.bySender[id] >= r.cfg.SenderQuota
}

// TTL reports the queue TTL items are stamped with at submission.
func (r *Relay) TTL() time.Duration { return r.cfg.TTL }

// retryFlush arms a delayed re-drain of the peer's queue, spaced by
// the capped-exponential-with-jitter schedule (Config.RetryBackoff) on
// the peer's attempt counter. The timer is tracked so Close can cancel
// it: without that, a retry armed just before shutdown could fire
// against a closed relay (and, under -race, against freed state). One
// armed timer per peer — re-arming replaces.
func (r *Relay) retryFlush(id keys.PeerID) {
	r.retryMu.Lock()
	defer r.retryMu.Unlock()
	if r.closed.Load() {
		return
	}
	if t, ok := r.retryTimers[id]; ok {
		t.Stop()
	}
	attempt := r.retryAttempts[id]
	r.retryAttempts[id] = attempt + 1
	delay := r.cfg.RetryBackoff.Delay(attempt, r.retryUnit)
	var tm *time.Timer
	tm = time.AfterFunc(delay, func() {
		r.retryMu.Lock()
		if r.retryTimers[id] == tm {
			delete(r.retryTimers, id)
		}
		r.retryMu.Unlock()
		r.Flush(id)
	})
	r.retryTimers[id] = tm
}

// resetRetry rewinds a peer's backoff schedule after a successful
// delivery, so the next transient failure starts from the base delay
// again instead of the stretched tail.
func (r *Relay) resetRetry(id keys.PeerID) {
	r.retryMu.Lock()
	delete(r.retryAttempts, id)
	r.retryMu.Unlock()
}

// RetryAttempt reports the peer's current backoff attempt counter
// (tests and diagnostics).
func (r *Relay) RetryAttempt(id keys.PeerID) int {
	r.retryMu.Lock()
	defer r.retryMu.Unlock()
	return r.retryAttempts[id]
}

// Flush schedules an asynchronous drain of the peer's queue on its
// shard worker. Draining attempts delivery in FIFO order and stops at
// the first failure (the peer went away again); expired items are
// discarded.
func (r *Relay) Flush(id keys.PeerID) {
	if r.closed.Load() {
		return
	}
	s := r.shardOf(id)
	s.mu.Lock()
	pending := len(s.queues[id]) > 0
	s.mu.Unlock()
	if !pending {
		return
	}
	select {
	case s.flushCh <- id:
	default:
		// Worker backlog: hand off without blocking the caller (which
		// may be the broker's login path).
		go func() {
			select {
			case s.flushCh <- id:
			case <-r.stop:
			}
		}()
	}
}

// fsyncPendingCap bounds the traced-item staging list so a sync stall
// cannot grow it without bound; overflow items simply lose their fsync
// span, never their data.
const fsyncPendingCap = 512

// stageFsyncTrace marks a traced item as staged behind the next WAL
// fsync. Duplicates (several slices of one round) collapse to one span.
func (r *Relay) stageFsyncTrace(id uint64) {
	r.fsyncMu.Lock()
	defer r.fsyncMu.Unlock()
	if len(r.fsyncPending) >= fsyncPendingCap {
		return
	}
	for _, p := range r.fsyncPending {
		if p == id {
			return
		}
	}
	r.fsyncPending = append(r.fsyncPending, id)
}

// onWALSync is the wal.Options.OnSync hook: one fsync covered every
// trace staged since the previous one, so each gets a wal-fsync span
// with the sync's start and duration. Runs with wal locks held — it
// must only touch the recorder and the pending list.
func (r *Relay) onWALSync(start time.Time, d time.Duration) {
	r.fsyncMu.Lock()
	ids := r.fsyncPending
	r.fsyncPending = nil
	r.fsyncMu.Unlock()
	for _, id := range ids {
		r.cfg.Tracer.Record(trace.Span{
			TraceID:  id,
			Stage:    trace.StageWALFsync,
			Outcome:  trace.OutcomeOK,
			Start:    start.UnixNano(),
			Duration: d.Nanoseconds(),
		})
	}
}

// Sync forces the WAL to disk, making every accepted submission so far
// durable. A no-op for an in-memory relay.
func (r *Relay) Sync() error {
	if r.log == nil {
		return nil
	}
	return r.log.Sync()
}

// QueueLen reports how many items are queued for a peer (expired items
// included until their lazy removal).
func (r *Relay) QueueLen(id keys.PeerID) int {
	s := r.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[id])
}

// QueuedTotal reports the total queued items across all peers.
func (r *Relay) QueuedTotal() int {
	total := 0
	for _, s := range r.shards {
		s.mu.Lock()
		for _, q := range s.queues {
			total += len(q)
		}
		s.mu.Unlock()
	}
	return total
}

// QueuedFor reports how many items a sender has queued across all
// recipients (0 when quotas are disabled — occupancy is only tracked
// under a quota).
func (r *Relay) QueuedFor(sender keys.PeerID) int {
	r.quotaMu.Lock()
	defer r.quotaMu.Unlock()
	return r.bySender[sender]
}

// Metrics returns a snapshot of the counters.
func (r *Relay) Metrics() Metrics {
	return Metrics{
		DeliveredDirect:        r.deliveredDirect.Load(),
		DeliveredFlushed:       r.deliveredFlushed.Load(),
		HandedOff:              r.handedOff.Load(),
		Enqueued:               r.enqueued.Load(),
		DroppedOverflow:        r.droppedOverflow.Load(),
		DroppedQuota:           r.droppedQuota.Load(),
		Expired:                r.expired.Load(),
		DeliverErrors:          r.deliverErrors.Load(),
		WALErrors:              r.walErrors.Load(),
		RecoveryReplayed:       r.recoveryReplayed,
		RecoveryDiscardedTTL:   r.recoveryDiscardedTTL,
		RecoveryDiscardedGuard: r.recoveryDiscardedGuard,
	}
}

// AddHandoff counts one federation hand-off (called by the broker-side
// delivery hook when it routes an item to a partner broker instead of
// a local recipient).
func (r *Relay) AddHandoff() { r.handedOff.Add(1) }

// Close stops the delivery workers and cancels armed retries. Queued
// items are abandoned in memory but remain in the WAL (graceful
// shutdown does NOT ack them): a relay reopened on the same directory
// recovers them.
func (r *Relay) Close() {
	if r.closed.Swap(true) {
		return
	}
	r.retryMu.Lock()
	for id, t := range r.retryTimers {
		t.Stop()
		delete(r.retryTimers, id)
	}
	r.retryMu.Unlock()
	if r.busCancel != nil {
		r.busCancel()
	}
	close(r.stop)
	r.wg.Wait()
	if r.log != nil {
		_ = r.log.Close()
	}
}

func (s *shard) enqueue(it Item) {
	now := s.r.cfg.Clock()
	s.mu.Lock()
	q := s.pruneLocked(it.To, now)
	if len(q) >= s.r.cfg.QueueCap {
		// Drop-oldest: the front of the FIFO is the stalest traffic.
		drop := len(q) - s.r.cfg.QueueCap + 1
		for _, old := range q[:drop] {
			s.r.retire(old, wal.AckDropped)
			s.r.audit(audit.Event{Kind: audit.KindRelayDrop, Peer: string(old.From), Op: "relay-enqueue", Reason: "overflow", Trace: old.Trace})
		}
		q = append(q[:0], q[drop:]...)
		s.r.droppedOverflow.Add(uint64(drop))
	}
	s.queues[it.To] = append(q, it)
	s.mu.Unlock()
	s.r.enqueued.Add(1)
}

// retire logs an item's departure from its queue and returns its quota
// occupancy. Every exit path (delivered, expired, dropped) funnels
// through here so the WAL and the quota books can never disagree.
func (r *Relay) retire(it Item, reason wal.AckReason) {
	r.releaseQuota(it)
	if r.log != nil && it.seq != 0 {
		if err := r.log.AppendAck(it.seq, reason); err != nil {
			r.walErrors.Add(1)
			r.audit(audit.Event{Kind: audit.KindWALError, Peer: string(it.To), Op: "relay-ack", Reason: err.Error(), Trace: it.Trace})
		}
	}
}

// audit appends one record to the configured audit journal. Safe on a
// nil journal (Record is nil-receiver tolerant), so call sites stay
// unconditional.
func (r *Relay) audit(e audit.Event) { r.cfg.Auditor.Record(e) }

// pruneLocked removes expired items wherever they sit in the peer's
// queue (items submitted with caller-set TTLs need not expire in FIFO
// order) and returns the surviving queue. Caller holds s.mu.
func (s *shard) pruneLocked(id keys.PeerID, now time.Time) []Item {
	q := s.queues[id]
	kept := q[:0]
	for _, it := range q {
		if now.After(it.Expires) {
			s.r.expired.Add(1)
			s.r.retire(it, wal.AckExpired)
			continue
		}
		kept = append(kept, it)
	}
	if len(kept) == 0 && q != nil {
		delete(s.queues, id)
		return nil
	}
	s.queues[id] = kept
	return kept
}

func (s *shard) work() {
	defer s.r.wg.Done()
	for {
		select {
		case <-s.r.stop:
			return
		case id := <-s.flushCh:
			s.drain(id)
		}
	}
}

// drain delivers the peer's queue in order: pop the front under the
// lock, deliver outside it (delivery does wire I/O), push back at the
// front and stop on failure. A successful delivery is acked to the WAL
// AFTER the handoff to the wire — so a crash between the two redelivers
// (at-least-once) rather than loses, and the recipient's replay guard
// collapses the duplicate.
func (s *shard) drain(id keys.PeerID) {
	flushed := 0
	for {
		now := s.r.cfg.Clock()
		s.mu.Lock()
		q := s.pruneLocked(id, now)
		if len(q) == 0 {
			s.mu.Unlock()
			break
		}
		it := q[0]
		s.queues[id] = q[1:]
		s.mu.Unlock()

		if err := s.r.deliver(it); err != nil {
			s.r.deliverErrors.Add(1)
			// Put the item back where it was. Usually the peer went away
			// again and the next presence event re-triggers the drain —
			// but a TRANSIENT failure against a still-online peer has no
			// such trigger, so arm a delayed retry; it re-enters this
			// path (re-arming) until delivery succeeds, the peer drops
			// offline, or the items expire.
			s.mu.Lock()
			s.queues[id] = append([]Item{it}, s.queues[id]...)
			s.mu.Unlock()
			if s.r.online(id) {
				s.r.retryFlush(id)
			}
			break
		}
		s.r.retire(it, wal.AckDelivered)
		s.r.deliveredFlushed.Add(1)
		if s.r.cfg.Tracer != nil && it.Trace != 0 && !it.enqueuedAt.IsZero() {
			// Attribute the dwell time between enqueue and this flush
			// delivery to the item's trace.
			s.r.cfg.Tracer.Record(trace.Span{
				TraceID:  it.Trace,
				Stage:    trace.StageQueueWait,
				Outcome:  trace.OutcomeOK,
				Start:    it.enqueuedAt.UnixNano(),
				Duration: s.r.cfg.Clock().Sub(it.enqueuedAt).Nanoseconds(),
			})
		}
		flushed++
	}
	if flushed > 0 {
		s.r.resetRetry(id)
	}
	if flushed > 0 && s.r.bus != nil {
		s.r.bus.Emit(events.Event{Type: events.RelayFlushed, From: id, Payload: map[string]string{
			"delivered": strconv.Itoa(flushed),
		}})
	}
}
