// Liveness end-to-end: a peer that silently dies mid-round (no logout,
// no FIN — it just stops heartbeating) must not black-hole delivery.
// Its lease lapses, the broker expires its presence, and the relay
// flips from live push to queueing; when the peer re-logins, the
// queued slices drain to it through the normal flush pipeline.
package integration_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/waituntil"
)

func TestExpiredLeasePeerIsQueuedForNotBlackHoled(t *testing.T) {
	const leaseTTL = 30 * time.Second
	net := simnet.NewNetwork(simnet.LinkProfile{})
	defer net.Close()

	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "g")
	db.Register("bob", "pw", "g")
	brKP, _ := keys.NewKeyPair()
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "lease-broker", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, _ := dep.TrustStore()
	br, err := broker.New(broker.Config{
		Name: "lease-broker", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	brSec, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust,
		RequireSignedAdvs: true, LeaseTTL: leaseTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer brSec.Close()
	var mu sync.Mutex
	now := time.Now()
	brSec.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	rly, err := core.EnableBrokerRelay(br, core.RelayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rly.Close()

	mkClient := func(name string) *core.SecureClient {
		cl, err := client.New(net, membership.NewPSE("", 0), name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		clTrust, _ := dep.TrustStore()
		sc, err := core.NewSecureClient(cl, clTrust)
		if err != nil {
			t.Fatal(err)
		}
		ctx := ctxT(t, 30*time.Second)
		if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
			t.Fatalf("%s secureConnection: %v", name, err)
		}
		if err := sc.SecureLogin(ctx, "pw"); err != nil {
			t.Fatalf("%s secureLogin: %v", name, err)
		}
		return sc
	}
	alice, bob := mkClient("alice"), mkClient("bob")
	bobEvents := events.NewCollector(bob.Bus())

	// Bob silently dies: no logout, no disconnect — his heartbeats just
	// stop. Alice keeps heartbeating; one TTL later the sweeper expires
	// bob's presence and only his.
	advance(leaseTTL - time.Second)
	if err := alice.SecureHeartbeat(ctxT(t, 10*time.Second)); err != nil {
		t.Fatalf("alice heartbeat: %v", err)
	}
	advance(2 * time.Second)
	brSec.ExpireLapsedNow()
	if br.PeerOnline(bob.PeerID()) {
		t.Fatal("bob still online past his lease with no heartbeat")
	}
	if !br.PeerOnline(alice.PeerID()) {
		t.Fatal("alice expired despite heartbeating")
	}

	// Alice's round now queues bob's slice instead of pushing into the
	// dead session (or skipping him entirely — the black-hole this test
	// convicts).
	direct, queued, err := alice.SecureMsgPeerGroupRelay(ctxT(t, 30*time.Second), "g", "while you were out")
	if err != nil {
		t.Fatal(err)
	}
	if direct != 0 || queued != 1 {
		t.Fatalf("direct=%d queued=%d, want 0 direct / 1 queued for the expired peer", direct, queued)
	}
	if rly.QueuedTotal() != 1 {
		t.Fatalf("relay holds %d slices, want 1", rly.QueuedTotal())
	}

	// Bob comes back with a full re-login (his sid and lease are gone).
	// The login presence event drains his queue: the message that was
	// sent while he was dead arrives now.
	ctx := ctxT(t, 30*time.Second)
	if err := bob.SecureConnection(ctx, br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := bob.SecureLogin(ctx, "pw"); err != nil {
		t.Fatal(err)
	}
	e, ok := bobEvents.WaitFor(events.SecureMessage, 10*time.Second)
	if !ok {
		t.Fatalf("queued slice never delivered after re-login (relay %+v)", rly.Metrics())
	}
	if string(e.Data) != "while you were out" || e.Payload["authenticated"] != "true" {
		t.Fatalf("bob got %q (auth=%s)", e.Data, e.Payload["authenticated"])
	}
	waituntil.True(5*time.Second, func() bool { return rly.QueuedTotal() == 0 })
	if got := rly.QueuedTotal(); got != 0 {
		t.Fatalf("relay still holds %d slices after re-login", got)
	}
	// Exactly once: the drain must not double-deliver.
	time.Sleep(100 * time.Millisecond)
	if n := len(bobEvents.OfType(events.SecureMessage)); n != 1 {
		t.Fatalf("bob saw %d copies, want 1", n)
	}
	if st := brSec.LivenessStats(); st.LeasesExpired != 1 || st.LeasesGranted != 3 {
		t.Fatalf("liveness stats %+v, want 1 expired / 3 granted", st)
	}
}
