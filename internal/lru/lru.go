// Package lru provides a small, concurrency-safe LRU cache with
// per-entry expiry. It backs the signature-verification caches in
// internal/cred and internal/xdsig: verification verdicts are keyed by
// content digest, bounded in number, and must never outlive the validity
// window of the credentials that produced them — hence the explicit
// expiry timestamp on every entry and the caller-supplied clock on
// lookup (the security layer verifies against a caller-chosen "now",
// not the wall clock).
package lru

import (
	"container/list"
	"sync"
	"time"
)

// Cache is a bounded LRU map with optional per-entry expiry.
// The zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[K]*list.Element

	hits   uint64
	misses uint64
}

type entry[K comparable, V any] struct {
	key     K
	val     V
	expires time.Time // zero = never expires
}

// New creates a cache holding at most capacity entries. Capacities below
// one are raised to one.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element, capacity),
	}
}

// Get returns the live value for key, if any. An entry whose expiry is
// at or before now is deleted and reported as a miss — expiry is judged
// against the caller's clock so that security code verifying "as of" a
// given instant stays consistent with its own time source.
func (c *Cache[K, V]) Get(key K, now time.Time) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	ent := el.Value.(*entry[K, V])
	if !ent.expires.IsZero() && !now.Before(ent.expires) {
		c.order.Remove(el)
		delete(c.items, key)
		c.misses++
		return zero, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return ent.val, true
}

// Put inserts or replaces the value for key. A zero expires means the
// entry never expires on its own; otherwise the entry dies at expires.
// The least recently used entry is evicted when the cache is full.
func (c *Cache[K, V]) Put(key K, val V, expires time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*entry[K, V])
		ent.val = val
		ent.expires = expires
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry[K, V]{key: key, val: val, expires: expires})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Remove deletes the entry for key and reports whether it existed.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// Purge empties the cache.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.items)
}

// Len returns the number of cached entries, expired ones included (they
// are collected lazily on Get).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cumulative hit and miss counts, for diagnostics and
// benchmarks.
func (c *Cache[K, V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
