package core_test

// Black-box resilience tests: resume after lease loss, retry under
// rate limiting, terminal auth refusals, and the Reconnected event.

import (
	"context"
	"errors"
	"testing"
	"time"

	"jxtaoverlay/internal/backoff"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
)

func listPeersReq(group string) *endpoint.Message {
	return endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpListPeers).
		AddString(proto.ElemGroup, group)
}

func resilientCfg() core.ResilientConfig {
	return core.ResilientConfig{
		Backoff: backoff.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
		Seed:    42,
	}
}

func TestResilientResumeAfterLeaseLoss(t *testing.T) {
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	rc := core.NewResilientClient(sc, h.br.PeerID(), "pw-alice", resilientCfg())
	if err := rc.Connect(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)
	rec := events.NewCollector(rc.Bus())

	// The session silently dies: its lease lapses and the sweeper takes
	// presence down. The next resilient call must transparently resume
	// (fresh secureConnection + secureLogin) and then succeed.
	h.advance(testLeaseTTL + time.Second)
	h.brSec.ExpireLapsedNow()
	if h.br.PeerOnline(rc.PeerID()) {
		t.Fatal("expired session still online")
	}

	resp, err := rc.CallResilient(testCtx(t), listPeersReq("math"))
	if err != nil {
		t.Fatalf("resilient call after lease loss: %v", err)
	}
	if ok, _ := proto.IsOK(resp); !ok {
		t.Fatal("resilient call returned a refusal")
	}
	if !h.br.PeerOnline(rc.PeerID()) {
		t.Fatal("resume did not re-establish presence")
	}
	if _, ok := rec.WaitFor(events.Reconnected, 5*time.Second); !ok {
		t.Fatal("no Reconnected event after resume")
	}
	if st := rc.Stats(); st.Resumes != 1 {
		t.Fatalf("stats = %+v, want exactly 1 resume", st)
	}
	if lease, _ := rc.Lease(); lease == "" {
		t.Fatal("resumed session holds no lease")
	}
}

func TestResilientTerminalAuthNotRetried(t *testing.T) {
	// Auth refusals must fail immediately: no retries, no resume loop
	// hammering the broker with bad credentials.
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	rc := core.NewResilientClient(sc, h.br.PeerID(), "pw-alice", resilientCfg())
	if err := rc.Connect(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)

	req := endpoint.NewMessage().AddString(proto.ElemOp, "no-such-op")
	_, err := rc.CallResilient(testCtx(t), req)
	var opErr *client.OpError
	if !errors.As(err, &opErr) || opErr.Token != proto.ErrUnknownOp {
		t.Fatalf("err = %v, want unknown-op refusal", err)
	}
	if st := rc.Stats(); st.Retries != 0 {
		t.Fatalf("terminal refusal was retried %d times", st.Retries)
	}
}

func TestResilientRetryBudgetExhausts(t *testing.T) {
	// A peer that can never reach the broker gives up after the budget,
	// wrapping the last failure.
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	cfg := resilientCfg()
	cfg.RetryBudget = 3
	cfg.ResumeBudget = 2
	rc := core.NewResilientClient(sc, h.br.PeerID(), "pw-alice", cfg)
	if err := rc.Connect(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)

	// Sever the link for good; keep per-attempt timeouts short.
	sc.SetTimeout(100 * time.Millisecond)
	h.net.Partition(simnet.NodeID(rc.PeerID()), h.br.NodeID())

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	_, err := rc.CallResilient(ctx, listPeersReq("math"))
	if err == nil {
		t.Fatal("call across a permanent partition succeeded")
	}
	if !errors.Is(err, core.ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if st := rc.Stats(); st.Retries == 0 {
		t.Fatal("no retries recorded before giving up")
	}
}

func TestResilientIdempotentCallMintsDistinctKeys(t *testing.T) {
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	rc := core.NewResilientClient(sc, h.br.PeerID(), "pw-alice", resilientCfg())
	if err := rc.Connect(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Close)
	ctx := testCtx(t)

	mk := func(name string) *endpoint.Message {
		return endpoint.NewMessage().
			AddString(proto.ElemOp, proto.OpGroupCreate).
			AddString(proto.ElemGroup, name).
			AddString(proto.ElemDesc, "d")
	}
	if _, err := rc.CallIdempotent(ctx, mk("g-one")); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.CallIdempotent(ctx, mk("g-two")); err != nil {
		t.Fatal(err)
	}
	// Distinct logical calls carry distinct keys: the second create is
	// NOT collapsed into the first's cached response.
	if got := h.br.Stats().IdemDeduped; got != 0 {
		t.Fatalf("IdemDeduped = %d, want 0 across distinct calls", got)
	}
	if h.br.IdemEntries() != 2 {
		t.Fatalf("IdemEntries = %d, want 2", h.br.IdemEntries())
	}
}
