// File sharing scenario: several peers share course material with a
// group, search the broker's global index by keyword, download in
// integrity-checked chunks (including through the broker relay when the
// peers are NATed from each other), and observe the file-index events.
//
//	go run ./examples/filesharing
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/filesvc"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	net := simnet.NewNetwork(simnet.ProfileLAN)
	defer net.Close()
	db := userdb.NewStore()
	for _, u := range []string{"ana", "bo", "cy"} {
		db.Register(u, u+"-pw", "seminar")
	}
	br, err := broker.New(broker.Config{
		Name: "file-broker", PeerID: keys.LegacyPeerID("file-broker"), Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		return err
	}
	defer br.Close()

	join := func(alias string) (*client.Client, *filesvc.Service, error) {
		cl, err := client.New(net, membership.NewNone(), alias)
		if err != nil {
			return nil, nil, err
		}
		if err := cl.Connect(ctx, br.PeerID()); err != nil {
			return nil, nil, err
		}
		if err := cl.Login(ctx, alias+"-pw"); err != nil {
			return nil, nil, err
		}
		return cl, filesvc.New(cl), nil
	}

	ana, anaFiles, err := join("ana")
	if err != nil {
		return err
	}
	defer ana.Close()
	bo, boFiles, err := join("bo")
	if err != nil {
		return err
	}
	defer bo.Close()
	cy, cyFiles, err := join("cy")
	if err != nil {
		return err
	}
	defer cy.Close()

	// cy learns about new shared material through file-index events.
	indexUpdates := make(chan events.Event, 8)
	cy.Bus().Subscribe(events.FileIndexUpdated, func(e events.Event) { indexUpdates <- e })

	// ana and bo each share files with the seminar.
	slides := bytes.Repeat([]byte("slide content / "), 8000) // ~128 KiB, multi-chunk
	if err := anaFiles.Share(ctx, "seminar", "p2p-slides.bin", slides); err != nil {
		return err
	}
	if err := anaFiles.Share(ctx, "seminar", "reading-list.txt", []byte("JXTA spec; CBID paper; XMLdsig")); err != nil {
		return err
	}
	if err := boFiles.Share(ctx, "seminar", "p2p-notes.txt", []byte("broker = super peer")); err != nil {
		return err
	}
	fmt.Println("ana shares:", names(anaFiles.Shared("seminar")))
	fmt.Println("bo  shares:", names(boFiles.Shared("seminar")))

	select {
	case e := <-indexUpdates:
		fmt.Printf("cy observed a file-index update from %.24s...\n", e.From)
	case <-ctx.Done():
		return ctx.Err()
	}

	// Keyword search hits both sharers.
	results, err := cyFiles.Search(ctx, "p2p", "seminar")
	if err != nil {
		return err
	}
	fmt.Printf("cy searched \"p2p\": %d hit(s)\n", len(results))
	for _, r := range results {
		fmt.Printf("  %-18s %7d bytes  at %.24s...\n", r.File.Name, r.File.Size, r.Peer)
	}

	// NAT cy away from ana: the download must flow through the broker
	// relay, chunk by chunk, and still verify.
	net.SetReachable(simnet.NodeID(cy.PeerID()), simnet.NodeID(ana.PeerID()), false)
	data, err := cyFiles.Download(ctx, ana.PeerID(), "p2p-slides.bin")
	if err != nil {
		return err
	}
	fmt.Printf("cy downloaded p2p-slides.bin through the broker relay: %d bytes, %d chunks, digest ok\n",
		len(data), (len(data)+filesvc.ChunkSize-1)/filesvc.ChunkSize)

	// Withdrawing a file removes it from the network.
	if err := anaFiles.Unshare(ctx, "seminar", "p2p-slides.bin"); err != nil {
		return err
	}
	if _, err := cyFiles.Download(ctx, ana.PeerID(), "p2p-slides.bin"); err != nil {
		fmt.Println("after unshare, the download fails as expected:", short(err))
	} else {
		return fmt.Errorf("download of unshared file succeeded")
	}
	return nil
}

func names(entries []advert.FileEntry) []string {
	var out []string
	for _, e := range entries {
		out = append(out, e.Name)
	}
	return out
}

func short(err error) string {
	s := err.Error()
	if i := strings.LastIndexByte(s, ':'); i > 0 {
		return strings.TrimSpace(s[i+1:])
	}
	return s
}
