// Package keys provides the cryptographic primitives the JXTA-Overlay
// security extension is built from: RSA key pairs, detached signatures,
// a wrapped-key hybrid encryption scheme (the paper's E_PK(x), per
// PKCS#1 v2.0 [19]), crypto-based identifiers (CBIDs [20]) binding peer
// IDs to public keys, and PBKDF2 password hashing for the central
// database.
//
// Everything here uses only the Go standard library. Algorithm choices
// mirror the paper's era while staying modern enough to be safe:
// RSASSA-PKCS1-v1_5 with SHA-256 for signatures (what XMLdsig's
// rsa-sha256 URI denotes), RSA-OAEP wrapping an AES-256-GCM content key
// for encryption.
package keys

import (
	"crypto"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"encoding/binary"
	"encoding/pem"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// DefaultRSABits is the key size used when callers do not specify one.
// The paper's testbed era default (1024) is kept for faithful overhead
// reproduction; production deployments should raise it (see KeyPairBits).
const DefaultRSABits = 1024

// MinRSABits is the smallest key size accepted: below this the OAEP
// payload (a 32-byte AES key) no longer fits.
const MinRSABits = 1024

var (
	// ErrVerify is returned when a signature does not validate.
	ErrVerify = errors.New("keys: signature verification failed")
	// ErrDecrypt is returned when an envelope cannot be opened.
	ErrDecrypt = errors.New("keys: decryption failed")
	// ErrKeySize is returned for unsupported RSA key sizes.
	ErrKeySize = fmt.Errorf("keys: RSA key size below minimum %d bits", MinRSABits)
)

// KeyPair is an RSA key pair owned by one JXTA-Overlay entity
// (administrator, broker or client peer).
type KeyPair struct {
	priv *rsa.PrivateKey
	// pub memoizes Public so every caller shares one PublicKey wrapper
	// (and with it the wrapper's fingerprint memo).
	pub atomic.Pointer[PublicKey]
	// sigCalls counts Sign invocations. Signatures are the dominant
	// cost of the secure primitives, so tests and benchmarks assert on
	// this counter (e.g. "one header signature per fan-out round").
	sigCalls atomic.Uint64
}

// NewKeyPair generates a key pair of DefaultRSABits using crypto/rand.
func NewKeyPair() (*KeyPair, error) { return KeyPairBits(DefaultRSABits) }

// KeyPairBits generates a key pair with the given modulus size.
func KeyPairBits(bits int) (*KeyPair, error) {
	if bits < MinRSABits {
		return nil, ErrKeySize
	}
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("keys: generate: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// KeyPairFrom generates a key pair reading randomness from r. It exists
// so tests and deterministic simulations can derive stable keys from a
// seed; it must never be used with a non-cryptographic reader in
// production paths.
func KeyPairFrom(r io.Reader, bits int) (*KeyPair, error) {
	if bits < MinRSABits {
		return nil, ErrKeySize
	}
	priv, err := rsa.GenerateKey(r, bits)
	if err != nil {
		return nil, fmt.Errorf("keys: generate: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// Public returns the public half. The wrapper is shared across calls.
func (k *KeyPair) Public() *PublicKey {
	if p := k.pub.Load(); p != nil {
		return p
	}
	p := &PublicKey{pub: &k.priv.PublicKey}
	k.pub.Store(p)
	return p
}

// Bits returns the modulus size in bits.
func (k *KeyPair) Bits() int { return k.priv.N.BitLen() }

// Sign produces a detached RSASSA-PKCS1-v1_5/SHA-256 signature over msg.
func (k *KeyPair) Sign(msg []byte) ([]byte, error) {
	k.sigCalls.Add(1)
	digest := sha256.Sum256(msg)
	sig, err := rsa.SignPKCS1v15(rand.Reader, k.priv, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("keys: sign: %w", err)
	}
	return sig, nil
}

// SignCalls reports how many times Sign has been invoked on this key
// pair. Benchmarks and tests use it to assert signature amortization
// (e.g. a group fan-out round must cost exactly one signature).
func (k *KeyPair) SignCalls() uint64 { return k.sigCalls.Load() }

// Decrypt opens an envelope produced by PublicKey.Encrypt for this key.
func (k *KeyPair) Decrypt(env *Envelope) ([]byte, error) {
	if env == nil {
		return nil, ErrDecrypt
	}
	cek, err := k.UnwrapKey(env.WrappedKey)
	if err != nil {
		return nil, ErrDecrypt
	}
	return AEADOpen(cek, env.Nonce, env.Ciphertext)
}

// UnwrapKey recovers a content key wrapped with PublicKey.WrapKey for
// this key pair.
func (k *KeyPair) UnwrapKey(wrapped []byte) ([]byte, error) {
	cek, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, k.priv, wrapped, oaepLabel)
	if err != nil {
		return nil, ErrDecrypt
	}
	return cek, nil
}

// MarshalPEM serializes the private key as PKCS#8 PEM, for keystore
// persistence (the PSE-like membership service).
func (k *KeyPair) MarshalPEM() ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(k.priv)
	if err != nil {
		return nil, fmt.Errorf("keys: marshal private: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// ParseKeyPairPEM reads a PKCS#8 PEM private key.
func ParseKeyPairPEM(data []byte) (*KeyPair, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != "PRIVATE KEY" {
		return nil, errors.New("keys: no PRIVATE KEY block")
	}
	key, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("keys: parse private: %w", err)
	}
	priv, ok := key.(*rsa.PrivateKey)
	if !ok {
		return nil, errors.New("keys: not an RSA private key")
	}
	return &KeyPair{priv: priv}, nil
}

// PublicKey is the shareable half of a KeyPair; it travels inside
// credentials and signed advertisements.
type PublicKey struct {
	pub *rsa.PublicKey
	// fp memoizes Fingerprint: the digest keys of the verification
	// caches include the key fingerprint, so it is recomputed far too
	// often to re-serialize the PKIX encoding each time. Keys are
	// immutable after construction, so the memo never goes stale.
	fp atomic.Pointer[[32]byte]
}

// Verify checks a detached signature produced by KeyPair.Sign.
func (p *PublicKey) Verify(msg, sig []byte) error {
	digest := sha256.Sum256(msg)
	if err := rsa.VerifyPKCS1v15(p.pub, crypto.SHA256, digest[:], sig); err != nil {
		return ErrVerify
	}
	return nil
}

// oaepLabel domain-separates the wrapped keys from any other OAEP use.
var oaepLabel = []byte("jxta-overlay/wrapped-key/v1")

// Envelope is the wire form of the wrapped-key encryption scheme: an
// RSA-OAEP encrypted AES-256 content key plus the AES-GCM ciphertext.
type Envelope struct {
	WrappedKey []byte
	Nonce      []byte
	Ciphertext []byte
}

// Encrypt seals plain for the holder of the matching private key using a
// fresh AES-256 content key wrapped under RSA-OAEP (the paper's
// E_PKi(x) wrapped key encryption scheme).
func (p *PublicKey) Encrypt(plain []byte) (*Envelope, error) {
	cek, err := NewContentKey()
	if err != nil {
		return nil, err
	}
	wrapped, err := p.WrapKey(cek)
	if err != nil {
		return nil, err
	}
	nonce, ct, err := AEADSeal(cek, plain)
	if err != nil {
		return nil, err
	}
	return &Envelope{WrappedKey: wrapped, Nonce: nonce, Ciphertext: ct}, nil
}

// WrapKey encrypts a content key to this public key under RSA-OAEP. The
// wrap is the only per-recipient asymmetric operation of a group fan-out
// round: one public-key exponentiation, orders of magnitude cheaper than
// a private-key signature.
func (p *PublicKey) WrapKey(cek []byte) ([]byte, error) {
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, p.pub, cek, oaepLabel)
	if err != nil {
		return nil, fmt.Errorf("keys: wrap: %w", err)
	}
	return wrapped, nil
}

// NewContentKey returns a fresh AES-256 content key.
func NewContentKey() ([]byte, error) {
	cek := make([]byte, 32)
	if _, err := rand.Read(cek); err != nil {
		return nil, fmt.Errorf("keys: cek: %w", err)
	}
	return cek, nil
}

// AEADSeal encrypts plain under the content key with AES-GCM and a
// fresh random nonce, returning nonce and ciphertext.
func AEADSeal(cek, plain []byte) (nonce, ciphertext []byte, err error) {
	gcm, err := newGCM(cek)
	if err != nil {
		return nil, nil, err
	}
	nonce = make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, fmt.Errorf("keys: nonce: %w", err)
	}
	return nonce, gcm.Seal(nil, nonce, plain, nil), nil
}

// AEADOpen reverses AEADSeal.
func AEADOpen(cek, nonce, ciphertext []byte) ([]byte, error) {
	gcm, err := newGCM(cek)
	if err != nil {
		return nil, ErrDecrypt
	}
	if len(nonce) != gcm.NonceSize() {
		return nil, ErrDecrypt
	}
	plain, err := gcm.Open(nil, nonce, ciphertext, nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return plain, nil
}

func newGCM(cek []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(cek)
	if err != nil {
		return nil, fmt.Errorf("keys: cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("keys: gcm: %w", err)
	}
	return gcm, nil
}

// Marshal flattens the envelope into a single self-describing byte
// string (length-prefixed sections) for transport inside messages.
func (e *Envelope) Marshal() []byte {
	out := make([]byte, 0, 12+len(e.WrappedKey)+len(e.Nonce)+len(e.Ciphertext))
	for _, part := range [][]byte{e.WrappedKey, e.Nonce, e.Ciphertext} {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(part)))
		out = append(out, n[:]...)
		out = append(out, part...)
	}
	return out
}

// ParseEnvelope reverses Envelope.Marshal.
func ParseEnvelope(data []byte) (*Envelope, error) {
	parts := make([][]byte, 3)
	for i := range parts {
		if len(data) < 4 {
			return nil, errors.New("keys: short envelope")
		}
		n := binary.BigEndian.Uint32(data[:4])
		data = data[4:]
		if uint32(len(data)) < n {
			return nil, errors.New("keys: truncated envelope section")
		}
		parts[i] = data[:n:n]
		data = data[n:]
	}
	if len(data) != 0 {
		return nil, errors.New("keys: trailing bytes after envelope")
	}
	return &Envelope{WrappedKey: parts[0], Nonce: parts[1], Ciphertext: parts[2]}, nil
}

// MarshalPublic serializes a public key as PKIX DER.
func (p *PublicKey) MarshalDER() ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(p.pub)
	if err != nil {
		return nil, fmt.Errorf("keys: marshal public: %w", err)
	}
	return der, nil
}

// MarshalBase64 serializes a public key as base64(PKIX DER), the form
// embedded in XML credentials and advertisements.
func (p *PublicKey) MarshalBase64() (string, error) {
	der, err := p.MarshalDER()
	if err != nil {
		return "", err
	}
	return base64.StdEncoding.EncodeToString(der), nil
}

// ParsePublicDER reads a PKIX DER public key.
func ParsePublicDER(der []byte) (*PublicKey, error) {
	key, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("keys: parse public: %w", err)
	}
	pub, ok := key.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("keys: not an RSA public key")
	}
	return &PublicKey{pub: pub}, nil
}

// ParsePublicBase64 reads a base64(PKIX DER) public key.
func ParsePublicBase64(s string) (*PublicKey, error) {
	der, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("keys: public key base64: %w", err)
	}
	return ParsePublicDER(der)
}

// Fingerprint returns the SHA-256 digest of the PKIX encoding; CBIDs and
// verification-cache keys are derived from it. The digest is memoized.
func (p *PublicKey) Fingerprint() ([32]byte, error) {
	if fp := p.fp.Load(); fp != nil {
		return *fp, nil
	}
	der, err := p.MarshalDER()
	if err != nil {
		return [32]byte{}, err
	}
	sum := sha256.Sum256(der)
	p.fp.Store(&sum)
	return sum, nil
}

// Equal reports whether two public keys are the same key.
func (p *PublicKey) Equal(o *PublicKey) bool {
	if p == nil || o == nil {
		return p == o
	}
	return p.pub.Equal(o.pub)
}

// RandomBytes returns n cryptographically random bytes; it backs
// challenge and session-identifier generation.
func RandomBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return nil, fmt.Errorf("keys: random: %w", err)
	}
	return b, nil
}

// PBKDF2 derives a key from a password with HMAC-SHA256, per RFC 2898.
// The central database stores only PBKDF2 hashes of end-user passwords.
func PBKDF2(password, salt []byte, iter, keyLen int) []byte {
	prf := hmac.New(sha256.New, password)
	hashLen := prf.Size()
	numBlocks := (keyLen + hashLen - 1) / hashLen
	dk := make([]byte, 0, numBlocks*hashLen)
	var block [4]byte
	u := make([]byte, hashLen)
	for i := 1; i <= numBlocks; i++ {
		prf.Reset()
		prf.Write(salt)
		binary.BigEndian.PutUint32(block[:], uint32(i))
		prf.Write(block[:])
		t := prf.Sum(nil)
		copy(u, t)
		for n := 2; n <= iter; n++ {
			prf.Reset()
			prf.Write(u)
			sum := prf.Sum(u[:0])
			for x := range t {
				t[x] ^= sum[x]
			}
		}
		dk = append(dk, t...)
	}
	return dk[:keyLen]
}

// ConstantTimeEqual compares two byte strings without leaking length
// position information about the mismatch.
func ConstantTimeEqual(a, b []byte) bool {
	return hmac.Equal(a, b)
}

// SHA256 returns the SHA-256 digest of data as a slice; it is the digest
// algorithm used throughout the extension (XMLdsig digests, CBIDs).
func SHA256(data []byte) []byte {
	sum := sha256.Sum256(data)
	return sum[:]
}
