package audit

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"jxtaoverlay/internal/trace"
)

// RecordJSON is the stable wire shape of one event on /debug/audit.
// Field names are part of the operational surface (the admin audit
// subcommand and CI artifacts consume them) — change deliberately.
type RecordJSON struct {
	Seq    uint64 `json:"seq"`
	TimeNS int64  `json:"time_ns"`
	Kind   string `json:"kind"`
	Peer   string `json:"peer"`
	Op     string `json:"op"`
	Reason string `json:"reason"`
	Trace  string `json:"trace,omitempty"`
}

// PageJSON is the /debug/audit response envelope. Head and Seq are the
// live chain state — scrape them periodically and you hold the trust
// point that makes rollback provable (Verify's ExpectHead/ExpectSeq).
type PageJSON struct {
	Seq         uint64       `json:"seq"`
	Head        string       `json:"head"`
	Records     uint64       `json:"records"`
	Checkpoints uint64       `json:"checkpoints"`
	Lost        uint64       `json:"lost"`
	Events      []RecordJSON `json:"events"`
}

// DebugHandler serves the in-memory event ring as JSON. Query
// parameters filter server-side so a big ring doesn't ship in full:
//
//	kind=<name>      only events of one kind (e.g. rate-limited)
//	peer=<id>        only one peer
//	op=<name>        only one operation
//	trace=<hex id>   only events of one trace
//	since=<seq>      only events with a later sequence number
//	limit=<n>        at most n events (default 4096)
//
// Events return in ring order (oldest surviving first). The ring is a
// query convenience; the journal on disk is the authoritative record.
func (j *Journal) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var (
			kind      = q.Get("kind")
			peer      = q.Get("peer")
			op        = q.Get("op")
			wantTrace = trace.ParseID(q.Get("trace"))
			filterTr  = q.Get("trace") != ""
			since     uint64
		)
		if v := q.Get("since"); v != "" {
			since, _ = strconv.ParseUint(v, 10, 64)
		}
		limit := 4096
		if v := q.Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				limit = n
			}
		}

		page := PageJSON{Events: []RecordJSON{}}
		j.mu.Lock()
		page.Seq = j.seq
		page.Head = base64.StdEncoding.EncodeToString(j.head[:])
		page.Records = j.appended
		page.Checkpoints = j.ckpts
		page.Lost = j.lost
		n := len(j.ring)
		for i := 0; i < n && len(page.Events) < limit; i++ {
			e := j.ring[(j.ringNext+i)%n]
			if e.seq == 0 || e.seq <= since {
				continue
			}
			if kind != "" && e.ev.Kind != kind {
				continue
			}
			if peer != "" && e.ev.Peer != peer {
				continue
			}
			if op != "" && e.ev.Op != op {
				continue
			}
			if filterTr && e.ev.Trace != wantTrace {
				continue
			}
			js := RecordJSON{
				Seq: e.seq, TimeNS: e.time,
				Kind: e.ev.Kind, Peer: e.ev.Peer, Op: e.ev.Op, Reason: e.ev.Reason,
			}
			if e.ev.Trace != 0 {
				js.Trace = trace.FormatID(e.ev.Trace)
			}
			page.Events = append(page.Events, js)
		}
		j.mu.Unlock()

		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page) //nolint:errcheck // best-effort write to scraper
	})
}

// Fetch retrieves one /debug/audit page from a running endpoint. The
// base URL may be "host:port", "http://host:port" or the full
// ".../debug/audit" path — the forms `admin audit` accepts. The query
// values are the handler's filter parameters.
func Fetch(ctx context.Context, base string, query url.Values) (*PageJSON, error) {
	u := base
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		u = "http://" + u
	}
	if !strings.HasSuffix(u, "/debug/audit") {
		u = strings.TrimSuffix(u, "/") + "/debug/audit"
	}
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("audit: %s returned %s", u, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	var page PageJSON
	if err := json.Unmarshal(body, &page); err != nil {
		return nil, fmt.Errorf("audit: bad page from %s: %w", u, err)
	}
	return &page, nil
}
