package core_test

import (
	"context"
	"strconv"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

// TestRelayRefusesFederationResidentRecipients: a group member logged
// in at a federation partner must NOT be queued for locally — its
// presence events (and therefore the queue drain) fire at its own
// broker, so a queue here could only expire. The relay op refuses the
// slice and reports it skipped instead of telling the sender it is
// queued for a login that will never happen at this broker.
func TestRelayRefusesFederationResidentRecipients(t *testing.T) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	defer net.Close()
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "math")
	db.Register("bob", "pw", "math")
	auth := broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
		return db.Authenticate(u, p)
	})
	mk := func(name string) *broker.Broker {
		b, err := broker.New(broker.Config{Name: name, PeerID: keys.LegacyPeerID(name), Net: net, DB: auth})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(b.Close)
		return b
	}
	brA, brB := mk("fed-broker-a"), mk("fed-broker-b")
	brA.Federate(brB.PeerID())
	brB.Federate(brA.PeerID())
	rly := core.EnableBrokerRelay(brA, core.RelayConfig{})
	defer rly.Close()

	login := func(alias string, br *broker.Broker) *client.Client {
		cl, err := client.New(net, membership.NewNone(), alias)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := cl.Connect(ctx, br.PeerID()); err != nil {
			t.Fatal(err)
		}
		if err := cl.Login(ctx, "pw"); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	alice := login("alice", brA)
	bob := login("bob", brB)

	// Broker A learns bob's session record through federation.
	deadline := time.Now().Add(5 * time.Second)
	for !brA.KnownMember(bob.PeerID(), "math") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !brA.KnownMember(bob.PeerID(), "math") {
		t.Fatal("broker A never learned bob through federation")
	}
	if brA.PeerResident(bob.PeerID()) {
		t.Fatal("federation-origin peer reported resident")
	}
	if !brA.PeerResident(alice.PeerID()) {
		t.Fatal("locally logged-in peer not resident")
	}

	// One sealed round addressed to bob (federation-resident) and a peer
	// the broker has no session record for. The wrap keys need not be
	// real recipient keys: the broker holds no keys and must refuse on
	// residency and roster facts, before delivery is even attempted —
	// and every refused recipient must be counted, not silently dropped.
	kp, err := keys.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.SealGroupDetached(kp, alice.PeerID(), "math", []byte("cross-broker"),
		[]*keys.PublicKey{kp.Public(), kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := alice.Call(ctx, endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpRelayRound).
		AddString(proto.ElemGroup, "math").
		AddString(proto.ElemRecipients, string(bob.PeerID())+",urn:jxta:nobody").
		Add(proto.ElemEnvelope, d.Wire()))
	if err != nil {
		t.Fatal(err)
	}
	count := func(elem string) int {
		v, _ := resp.GetString(elem)
		n, _ := strconv.Atoi(v)
		return n
	}
	if direct, queued, skipped := count(proto.ElemRelayDirect), count(proto.ElemRelayQueued), count(proto.ElemRelaySkipped); direct != 0 || queued != 0 || skipped != 2 {
		t.Fatalf("direct=%d queued=%d skipped=%d, want 0/0/2", direct, queued, skipped)
	}
	if got := rly.QueuedTotal(); got != 0 {
		t.Fatalf("relay queued %d slices for undeliverable recipients", got)
	}
}
