package core

// White-box classification table: which failures retry, which resume,
// which are terminal. The classification IS the trust model (see
// SECURITY.md): an auth refusal that retried would hammer the broker
// with what looks like a credential-stuffing loop.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/proto"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		want  callClass
		floor time.Duration
	}{
		{"transport timeout", context.DeadlineExceeded, classRetryable, 0},
		{"wrapped transport", fmt.Errorf("request: %w", errors.New("link down")), classRetryable, 0},
		{"not connected", client.ErrNotConnected, classResume, 0},
		{"lease lost", ErrLeaseLost, classResume, 0},
		{"not logged in", &client.OpError{Token: proto.ErrNotLoggedIn}, classResume, 0},
		{"lease expired token", &client.OpError{Token: proto.ErrLeaseExpired}, classResume, 0},
		{"bad sid", &client.OpError{Token: proto.ErrBadSid}, classResume, 0},
		{"rate limited plain", client.ErrRateLimited, classRetryable, 0},
		{"rate limited hinted", &client.RateLimitedError{RetryAfter: 20 * time.Millisecond}, classRetryable, 20 * time.Millisecond},
		{"relay quota", client.ErrRelayQuota, classRetryable, 0},
		{"auth failed", &client.OpError{Token: proto.ErrAuthFailed}, classTerminal, 0},
		{"bad signature", &client.OpError{Token: proto.ErrBadSignature}, classTerminal, 0},
		{"bad credential", &client.OpError{Token: proto.ErrBadCredential}, classTerminal, 0},
		{"cbid mismatch", &client.OpError{Token: proto.ErrCBIDMismatch}, classTerminal, 0},
		{"bad request", &client.OpError{Token: proto.ErrBadRequest}, classTerminal, 0},
		{"unknown op", &client.OpError{Token: proto.ErrUnknownOp}, classTerminal, 0},
		{"canceled", context.Canceled, classTerminal, 0},
		{"unknown token", &client.OpError{Token: proto.ErrNotFound}, classRetryable, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cls, floor := classify(tc.err)
			if cls != tc.want {
				t.Fatalf("classify(%v) = %v, want %v", tc.err, cls, tc.want)
			}
			if floor != tc.floor {
				t.Fatalf("classify(%v) floor = %v, want %v", tc.err, floor, tc.floor)
			}
		})
	}
}

func TestResilientConfigDefaults(t *testing.T) {
	cfg := ResilientConfig{}.withDefaults()
	if cfg.RetryBudget != 5 || cfg.ResumeBudget != 8 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
