package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// SpanJSON is the stable wire shape of one span on /debug/traces.
// Field names are part of the operational surface (the admin trace
// subcommand and CI artifacts consume them) — change deliberately.
type SpanJSON struct {
	Trace      string  `json:"trace"`
	Stage      string  `json:"stage"`
	Outcome    string  `json:"outcome"`
	StartNS    int64   `json:"start_ns"`
	DurationMS float64 `json:"duration_ms"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

// PageJSON is the /debug/traces response envelope.
type PageJSON struct {
	Recorded uint64     `json:"recorded"`
	Dropped  uint64     `json:"dropped"`
	Spans    []SpanJSON `json:"spans"`
}

// DebugHandler serves the capture buffer as JSON. Query parameters
// filter server-side so a big ring doesn't ship in full:
//
//	trace=<hex id>     only spans of one trace
//	stage=<name>       only one lifecycle stage
//	outcome=<name>     only one outcome token
//	min_ms=<float>     only spans at least this slow
//	limit=<n>          at most n spans (default 4096)
//
// Unknown stage/outcome names match nothing (and report no error):
// the filter vocabulary is discoverable from any unfiltered response.
func (r *Recorder) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var (
			wantTrace   = ParseID(q.Get("trace"))
			filterTrace = q.Get("trace") != ""
			wantStage   Stage
			filterStage = q.Get("stage") != ""
			wantOut     Outcome
			filterOut   = q.Get("outcome") != ""
			minMS       float64
		)
		if filterStage {
			wantStage, _ = ParseStage(q.Get("stage"))
		}
		if filterOut {
			wantOut, _ = ParseOutcome(q.Get("outcome"))
		}
		if v := q.Get("min_ms"); v != "" {
			minMS, _ = strconv.ParseFloat(v, 64)
		}
		limit := 4096
		if v := q.Get("limit"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				limit = n
			}
		}

		page := PageJSON{Spans: []SpanJSON{}}
		page.Recorded, page.Dropped = r.Stats()
		for _, sp := range r.Snapshot() {
			if filterTrace && sp.TraceID != wantTrace {
				continue
			}
			if filterStage && sp.Stage != wantStage {
				continue
			}
			if filterOut && sp.Outcome != wantOut {
				continue
			}
			durMS := float64(sp.Duration) / float64(time.Millisecond)
			if durMS < minMS {
				continue
			}
			js := SpanJSON{
				Trace:      FormatID(sp.TraceID),
				Stage:      sp.Stage.String(),
				Outcome:    sp.Outcome.String(),
				StartNS:    sp.Start,
				DurationMS: durMS,
			}
			if n := sp.AttrCount(); n > 0 {
				js.Attrs = append(js.Attrs, sp.Attrs[:n]...)
			}
			page.Spans = append(page.Spans, js)
			if len(page.Spans) >= limit {
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(page) //nolint:errcheck // best-effort write to scraper
	})
}

// Fetch retrieves one /debug/traces page from a running endpoint. The
// base URL may be "host:port", "http://host:port" or the full
// ".../debug/traces" path — the forms `admin trace` accepts. The query
// values are the handler's filter parameters.
func Fetch(ctx context.Context, base string, query url.Values) (*PageJSON, error) {
	u := base
	if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
		u = "http://" + u
	}
	if !strings.HasSuffix(u, "/debug/traces") {
		u = strings.TrimSuffix(u, "/") + "/debug/traces"
	}
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("trace: %s returned %s", u, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, err
	}
	var page PageJSON
	if err := json.Unmarshal(body, &page); err != nil {
		return nil, fmt.Errorf("trace: bad page from %s: %w", u, err)
	}
	return &page, nil
}
