package core_test

import (
	"testing"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xdsig"
)

func TestSecureRenewCredential(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	before := sc.Identity().Credential

	time.Sleep(5 * time.Millisecond) // ensure a strictly later NotAfter
	ctx := testCtx(t)
	if err := sc.SecureRenewCredential(ctx); err != nil {
		t.Fatalf("SecureRenewCredential: %v", err)
	}
	after := sc.Identity().Credential
	if after.Equal(before) {
		t.Fatal("credential not replaced")
	}
	if !after.NotAfter.After(before.NotAfter) {
		t.Fatalf("renewed NotAfter %v not after %v", after.NotAfter, before.NotAfter)
	}
	if after.Subject != before.Subject || !after.Key.Equal(before.Key) {
		t.Fatal("renewal changed the identity")
	}

	// Advertisements published after renewal are signed with the fresh
	// chain and still verify.
	if err := sc.PublishStats(ctx, "math"); err != nil {
		t.Fatalf("publish after renewal: %v", err)
	}
	recs := h.br.Cache().Find("StatsAdvertisement", nil)
	if len(recs) == 0 {
		t.Fatal("no stats advertisement at broker")
	}
	trust, _ := h.dep.TrustStore()
	res, err := xdsig.VerifyTrusted(recs[0].Doc, trust, time.Now())
	if err != nil {
		t.Fatalf("post-renewal advertisement does not verify: %v", err)
	}
	if !res.Signer.Equal(after) {
		t.Fatal("advertisement not signed with the renewed credential")
	}
}

func TestSecureRenewRequiresLogin(t *testing.T) {
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	ctx := testCtx(t)
	if err := sc.SecureRenewCredential(ctx); err == nil {
		t.Fatal("renewal succeeded without a credential")
	}
}

func TestSecureRenewRejectsForeignCredential(t *testing.T) {
	// A credential issued by a different (valid) broker of another
	// deployment is not renewable here.
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")

	otherKP, _ := keys.NewKeyPair()
	otherID, _ := keys.CBID(otherKP.Public())
	forged, err := cred.Issue(otherKP, otherID, sc.PeerID(), "alice", cred.RoleClient, sc.Identity().Keys.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	sc.Identity().Credential = forged

	ctx := testCtx(t)
	if err := sc.SecureRenewCredential(ctx); err == nil {
		t.Fatal("broker renewed a credential it never issued")
	}
}

func TestSecureRenewRejectsExpiredCredential(t *testing.T) {
	// Renewal requires the current credential to still be valid: after
	// expiry the user must run the full secureLogin again.
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")

	// Craft an already-expired credential signed by the real broker key.
	expired := sc.Identity().Credential.Clone()
	expired.NotBefore = time.Now().Add(-2 * time.Hour)
	expired.NotAfter = time.Now().Add(-time.Hour)
	// Re-sign with the broker key so only the validity check can fail.
	reissued, err := cred.Issue(h.brKP, h.brCred.Subject, expired.Subject, expired.SubjectName, cred.RoleClient, expired.Key, -time.Hour)
	if err == nil {
		sc.Identity().Credential = reissued
		ctx := testCtx(t)
		if err := sc.SecureRenewCredential(ctx); err == nil {
			t.Fatal("broker renewed an expired credential")
		}
		return
	}
	// cred.Issue may reject negative validity outright; that is an
	// equally acceptable defense.
}
