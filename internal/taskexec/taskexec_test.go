package taskexec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/simnet"
)

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Register("echo", func(args []string) (string, error) {
		return strings.Join(args, " "), nil
	})
	reg.Register("sum", func(args []string) (string, error) {
		total := 0
		for _, a := range args {
			n := 0
			if _, err := fmt.Sscanf(a, "%d", &n); err != nil {
				return "", fmt.Errorf("bad arg %q", a)
			}
			total += n
		}
		return fmt.Sprintf("%d", total), nil
	})
	reg.Register("fail", func([]string) (string, error) {
		return "", errors.New("boom")
	})
	return reg
}

func TestRegistryRun(t *testing.T) {
	reg := testRegistry()
	out, err := reg.Run("echo", []string{"a", "b"})
	if err != nil || out != "a b" {
		t.Fatalf("Run echo = %q, %v", out, err)
	}
	if _, err := reg.Run("nope", nil); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("Run nope = %v", err)
	}
	if _, err := reg.Run("fail", nil); !errors.Is(err, ErrExecFailed) {
		t.Fatalf("Run fail = %v", err)
	}
	names := reg.Names()
	if len(names) != 3 || names[0] != "echo" {
		t.Fatalf("Names = %v", names)
	}
}

func TestPackUnpackArgs(t *testing.T) {
	cases := [][]string{nil, {"a"}, {"a", "b c", "d,e"}, {"", ""}}
	for _, args := range cases {
		got := UnpackArgs(PackArgs(args))
		if len(got) != len(args) {
			// nil and empty round trip to nil.
			if len(args) == 0 && got == nil {
				continue
			}
			t.Fatalf("round trip %v = %v", args, got)
		}
		for i := range args {
			if got[i] != args[i] {
				t.Fatalf("round trip %v = %v", args, got)
			}
		}
	}
}

func remotePair(t *testing.T) (*Service, *Service) {
	t.Helper()
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	epA, err := endpoint.NewService(net, keys.PeerID("urn:jxta:task-a"))
	if err != nil {
		t.Fatal(err)
	}
	epB, err := endpoint.NewService(net, keys.PeerID("urn:jxta:task-b"))
	if err != nil {
		t.Fatal(err)
	}
	return New(epA, testRegistry()), New(epB, testRegistry())
}

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return c
}

func TestRemoteExec(t *testing.T) {
	a, b := remotePair(t)
	out, err := a.Exec(ctx(t), b.ep.PeerID(), "sum", []string{"1", "2", "39"})
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if out != "42" {
		t.Fatalf("out = %q", out)
	}
}

func TestRemoteExecErrors(t *testing.T) {
	a, b := remotePair(t)
	if _, err := a.Exec(ctx(t), b.ep.PeerID(), "missing", nil); err == nil {
		t.Fatal("Exec of unknown task succeeded")
	}
	if _, err := a.Exec(ctx(t), b.ep.PeerID(), "fail", nil); err == nil {
		t.Fatal("Exec of failing task succeeded")
	}
}

func TestAuthorizer(t *testing.T) {
	a, b := remotePair(t)
	b.SetAuthorizer(func(from keys.PeerID, task string) error {
		if task == "sum" {
			return errors.New("sum is restricted")
		}
		return nil
	})
	if _, err := a.Exec(ctx(t), b.ep.PeerID(), "sum", []string{"1"}); err == nil {
		t.Fatal("authorizer did not block the call")
	}
	if out, err := a.Exec(ctx(t), b.ep.PeerID(), "echo", []string{"ok"}); err != nil || out != "ok" {
		t.Fatalf("allowed task failed: %q, %v", out, err)
	}
}

func TestDefaultAllowsEveryone(t *testing.T) {
	// The original middleware ships without authorization — anyone who
	// can reach the peer can execute tasks. This test documents that
	// vulnerability (the secure variant in internal/core closes it).
	a, b := remotePair(t)
	if _, err := a.Exec(ctx(t), b.ep.PeerID(), "echo", []string{"pwned"}); err != nil {
		t.Fatalf("unauthenticated exec should succeed on plain service: %v", err)
	}
}
