// Package filesvc implements JXTA-Overlay's file sharing primitives:
// peers announce shared files per group through FileListAdvertisements
// (indexed by the broker), search the index by keyword, and download
// directly from the sharing peer in integrity-checked chunks.
//
// As with the rest of the original middleware, the transfer path is
// unauthenticated; the digests protect against corruption, not against
// an adversarial sender. The security extension's envelope can wrap the
// chunks (see internal/core) when confidential transfer is needed.
package filesvc

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/xmldoc"
)

// ChunkSize is the transfer unit.
const ChunkSize = 16 * 1024

// Errors returned by the service.
var (
	ErrNotShared = errors.New("filesvc: file not shared")
	ErrIntegrity = errors.New("filesvc: digest mismatch")
	ErrTransfer  = errors.New("filesvc: transfer failed")
)

type sharedFile struct {
	content []byte
	digest  string
}

// Result is one search hit.
type Result struct {
	Peer  keys.PeerID
	Group string
	File  advert.FileEntry
}

// Service provides the file primitives for one client peer.
type Service struct {
	cl *client.Client

	mu     sync.RWMutex
	shares map[string]map[string]*sharedFile // group → name → file
}

// New attaches the file service to a client peer.
func New(cl *client.Client) *Service {
	s := &Service{
		cl:     cl,
		shares: make(map[string]map[string]*sharedFile),
	}
	cl.Endpoint().RegisterHandler(proto.FileService, s.handleGet)
	return s
}

// Share publishes a file to a group: the content is retained in the
// local share table and the group's FileListAdvertisement is re-issued.
func (s *Service) Share(ctx context.Context, group, name string, content []byte) error {
	if name == "" {
		return errors.New("filesvc: empty file name")
	}
	digest := hex.EncodeToString(keys.SHA256(content))
	s.mu.Lock()
	if s.shares[group] == nil {
		s.shares[group] = make(map[string]*sharedFile)
	}
	s.shares[group][name] = &sharedFile{content: append([]byte(nil), content...), digest: digest}
	s.mu.Unlock()
	return s.publishList(ctx, group)
}

// Unshare withdraws a file and re-publishes the group list.
func (s *Service) Unshare(ctx context.Context, group, name string) error {
	s.mu.Lock()
	if files := s.shares[group]; files != nil {
		delete(files, name)
	}
	s.mu.Unlock()
	return s.publishList(ctx, group)
}

// Shared lists the files currently shared with a group, sorted by name.
func (s *Service) Shared(group string) []advert.FileEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []advert.FileEntry
	for name, f := range s.shares[group] {
		out = append(out, advert.FileEntry{Name: name, Size: int64(len(f.content)), Digest: f.digest})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Service) publishList(ctx context.Context, group string) error {
	list := &advert.FileList{
		PeerID: s.cl.PeerID(),
		Group:  group,
		Files:  s.Shared(group),
	}
	return s.cl.PublishAdv(ctx, list)
}

// Search queries the broker's file index by keyword (substring match on
// file names), optionally restricted to a group.
func (s *Service) Search(ctx context.Context, keyword, group string) ([]Result, error) {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpFileSearch).
		AddString(proto.ElemKeyword, keyword).
		AddString(proto.ElemGroup, group)
	resp, err := s.cl.Call(ctx, msg)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, el := range resp.Elements {
		if el.Name != proto.ElemAdv {
			continue
		}
		doc, err := xmldoc.ParseCanonical(el.Data)
		if err != nil {
			continue
		}
		fl, err := advert.ParseFileList(doc)
		if err != nil {
			continue
		}
		for _, f := range fl.Files {
			if keyword == "" || bytes.Contains([]byte(f.Name), []byte(keyword)) {
				out = append(out, Result{Peer: fl.PeerID, Group: fl.Group, File: f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].File.Name < out[j].File.Name
	})
	return out, nil
}

// Download fetches a file from a peer chunk by chunk and verifies the
// whole-file digest. The FileReceived event fires on success.
func (s *Service) Download(ctx context.Context, peer keys.PeerID, name string) ([]byte, error) {
	var buf bytes.Buffer
	var wantDigest string
	total := 1
	for chunk := 0; chunk < total; chunk++ {
		msg := endpoint.NewMessage().
			AddString(proto.ElemOp, proto.OpFileGet).
			AddString(proto.ElemFileName, name).
			AddString(proto.ElemFileChunk, strconv.Itoa(chunk))
		resp, err := s.cl.Endpoint().Request(ctx, peer, proto.FileService, msg)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTransfer, err)
		}
		if ok, errToken := proto.IsOK(resp); !ok {
			return nil, fmt.Errorf("%w: %s", ErrTransfer, errToken)
		}
		nchunks, _ := resp.GetString(proto.ElemFileCount)
		if n, err := strconv.Atoi(nchunks); err == nil && n > 0 {
			total = n
		}
		wantDigest, _ = resp.GetString(proto.ElemFileSum)
		data, _ := resp.Get(proto.ElemFileData)
		buf.Write(data)
	}
	got := hex.EncodeToString(keys.SHA256(buf.Bytes()))
	if wantDigest != "" && got != wantDigest {
		return nil, ErrIntegrity
	}
	s.cl.Bus().Emit(events.Event{
		Type: events.FileReceived,
		From: peer,
		Payload: map[string]string{
			"name":   name,
			"digest": got,
			"size":   strconv.Itoa(buf.Len()),
		},
	})
	return buf.Bytes(), nil
}

// handleGet serves chunk requests from other peers.
func (s *Service) handleGet(_ keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	op, _ := msg.GetString(proto.ElemOp)
	if op != proto.OpFileGet {
		return proto.Fail(proto.ErrUnknownOp)
	}
	name, _ := msg.GetString(proto.ElemFileName)
	chunkStr, _ := msg.GetString(proto.ElemFileChunk)
	chunk, err := strconv.Atoi(chunkStr)
	if err != nil || chunk < 0 {
		return proto.Fail(proto.ErrBadRequest)
	}
	s.mu.RLock()
	var file *sharedFile
	for _, files := range s.shares {
		if f, ok := files[name]; ok {
			file = f
			break
		}
	}
	s.mu.RUnlock()
	if file == nil {
		return proto.Fail(proto.ErrNotFound)
	}
	nchunks := (len(file.content) + ChunkSize - 1) / ChunkSize
	if nchunks == 0 {
		nchunks = 1
	}
	if chunk >= nchunks {
		return proto.Fail(proto.ErrBadRequest)
	}
	start := chunk * ChunkSize
	end := start + ChunkSize
	if end > len(file.content) {
		end = len(file.content)
	}
	return proto.OK().
		Add(proto.ElemFileData, file.content[start:end]).
		AddString(proto.ElemFileCount, strconv.Itoa(nchunks)).
		AddString(proto.ElemFileSize, strconv.Itoa(len(file.content))).
		AddString(proto.ElemFileSum, file.digest)
}
