// Package taskexec implements the executable set of primitives: remote
// task submission and execution. The paper singles these out as the most
// security-sensitive primitives left for further work ("of special note
// are those of the executable set, related to remote code execution");
// internal/core wraps this service with the secure envelope.
//
// Tasks are registered Go functions, not OS processes: the substrate
// models JXTA-Overlay's remote-execution capability without giving the
// network arbitrary code execution on the host.
package taskexec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
)

// TaskFunc is one executable task.
type TaskFunc func(args []string) (string, error)

// argSep separates packed argument lists on the wire.
const argSep = "\x1f"

// Errors returned by the service.
var (
	ErrUnknownTask  = errors.New("taskexec: unknown task")
	ErrExecFailed   = errors.New("taskexec: execution failed")
	ErrUnauthorized = errors.New("taskexec: caller not authorized")
)

// Registry holds the locally executable tasks.
type Registry struct {
	mu    sync.RWMutex
	tasks map[string]TaskFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tasks: make(map[string]TaskFunc)}
}

// Register installs a task under a name.
func (r *Registry) Register(name string, fn TaskFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tasks[name] = fn
}

// Get returns a registered task.
func (r *Registry) Get(name string) (TaskFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.tasks[name]
	return fn, ok
}

// Names lists registered task names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tasks))
	for n := range r.tasks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Run executes a task locally.
func (r *Registry) Run(name string, args []string) (string, error) {
	fn, ok := r.Get(name)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownTask, name)
	}
	out, err := fn(args)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrExecFailed, err)
	}
	return out, nil
}

// Authorizer decides whether a remote caller may run a task. The default
// (nil) allows everyone — the original JXTA-Overlay behaviour the paper
// flags as dangerous.
type Authorizer func(from keys.PeerID, task string) error

// Service exposes a registry over the network.
type Service struct {
	ep  *endpoint.Service
	reg *Registry

	mu        sync.RWMutex
	authorize Authorizer
}

// New attaches the task service to an endpoint.
func New(ep *endpoint.Service, reg *Registry) *Service {
	s := &Service{ep: ep, reg: reg}
	ep.RegisterHandler(proto.TaskService, s.handle)
	return s
}

// Registry returns the backing registry.
func (s *Service) Registry() *Registry { return s.reg }

// SetAuthorizer installs the authorization policy.
func (s *Service) SetAuthorizer(a Authorizer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.authorize = a
}

func (s *Service) handle(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	op, _ := msg.GetString(proto.ElemOp)
	if op != proto.OpTaskExec {
		return proto.Fail(proto.ErrUnknownOp)
	}
	name, _ := msg.GetString(proto.ElemTaskName)
	argsPacked, _ := msg.GetString(proto.ElemTaskArgs)
	s.mu.RLock()
	auth := s.authorize
	s.mu.RUnlock()
	if auth != nil {
		if err := auth(from, name); err != nil {
			return proto.Fail("unauthorized")
		}
	}
	out, err := s.reg.Run(name, UnpackArgs(argsPacked))
	if err != nil {
		return proto.Fail(err.Error())
	}
	return proto.OK().AddString(proto.ElemTaskOut, out)
}

// Exec runs a task on a remote peer (the plain, unauthenticated
// primitive).
func (s *Service) Exec(ctx context.Context, peer keys.PeerID, task string, args []string) (string, error) {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpTaskExec).
		AddString(proto.ElemTaskName, task).
		AddString(proto.ElemTaskArgs, PackArgs(args))
	resp, err := s.ep.Request(ctx, peer, proto.TaskService, msg)
	if err != nil {
		return "", err
	}
	if ok, errToken := proto.IsOK(resp); !ok {
		return "", fmt.Errorf("taskexec: remote: %s", errToken)
	}
	out, _ := resp.GetString(proto.ElemTaskOut)
	return out, nil
}

// PackArgs flattens an argument list for the wire.
func PackArgs(args []string) string { return strings.Join(args, argSep) }

// UnpackArgs reverses PackArgs.
func UnpackArgs(packed string) []string {
	if packed == "" {
		return nil
	}
	return strings.Split(packed, argSep)
}
