package attack_test

import (
	"errors"
	"testing"
	"time"

	"jxtaoverlay/internal/admission"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/proto"
)

// --- Resource exhaustion: one credential flooding the op surface ---
//
// The paper's broker answers every operation a logged-in peer sends, so
// a single legitimate credential can monopolize the broker by hammering
// it — not an identity attack, a resource one. Admission control bounds
// it: each credential spends tokens per operation, exhaustion earns the
// `rate-limited` wire refusal, and a refusal streak raises a
// SecurityAlert on the broker's audit bus. The defense is isolation,
// not punishment — other credentials keep their own buckets and never
// notice the flood.

func TestFloodingCredentialRateLimited(t *testing.T) {
	s := newSecureStack(t)
	mallory := s.join(t, "mallory", "mallory-pw")
	bob := s.join(t, "bob", "bob-secret-pw")
	ctx := testCtx(t)

	// Admission goes on after login so the handshake ops don't eat into
	// the flood budget and the numbers below stay deterministic.
	s.br.EnableAdmission(admission.New(admission.Config{
		Rate: 5, Burst: 8, OffenseThreshold: 4,
	}))
	alerts := events.NewCollector(s.br.Bus())

	// Mallory floods listPeers far past her burst. The flood must hit
	// the rate limiter, and keep hitting it once the bucket is dry.
	var limited int
	for i := 0; i < 60; i++ {
		_, err := mallory.GetOnlinePeers(ctx, "math")
		if errors.Is(err, client.ErrRateLimited) {
			limited++
		} else if err != nil {
			t.Fatalf("flood call %d: unexpected error %v", i, err)
		}
	}
	if limited == 0 {
		t.Fatal("flooding credential was never rate limited")
	}

	// The refusal streak crossed the offense threshold: the broker's
	// audit bus carries a SecurityAlert naming the refusal.
	ev, ok := alerts.WaitFor(events.SecurityAlert, 5*time.Second)
	if !ok {
		t.Fatal("no SecurityAlert for the flooding credential")
	}
	if ev.From != mallory.PeerID() {
		t.Fatalf("alert names %s, want %s", ev.From, mallory.PeerID())
	}
	if ev.Attr("reason") != proto.ErrRateLimited {
		t.Fatalf("alert reason = %q, want %q", ev.Attr("reason"), proto.ErrRateLimited)
	}

	// Isolation: bob's bucket is untouched by mallory's flood — his
	// operations still succeed while mallory is being refused.
	if _, err := mallory.GetOnlinePeers(ctx, "math"); !errors.Is(err, client.ErrRateLimited) {
		t.Fatalf("mallory not still limited: %v", err)
	}
	if _, err := bob.GetOnlinePeers(ctx, "math"); err != nil {
		t.Fatalf("bob starved by mallory's flood: %v", err)
	}

	// The refusal is visible in the broker's own accounting too.
	if st := s.br.Stats(); st.OpsRateLimited == 0 {
		t.Fatal("broker stats recorded no rate-limited ops")
	}
}

// A drained bucket refills: after backing off for the advertised
// window, the offender is served again (and the successful call resets
// its offense streak).
func TestRateLimitRecoversAfterBackoff(t *testing.T) {
	s := newSecureStack(t)
	mallory := s.join(t, "mallory", "mallory-pw")
	ctx := testCtx(t)

	s.br.EnableAdmission(admission.New(admission.Config{
		Rate: 50, Burst: 4, OffenseThreshold: 4,
	}))

	var sawLimit bool
	for i := 0; i < 30; i++ {
		if _, err := mallory.GetOnlinePeers(ctx, "math"); errors.Is(err, client.ErrRateLimited) {
			sawLimit = true
			break
		}
	}
	if !sawLimit {
		t.Fatal("burst never exhausted")
	}

	// At 50 tokens/s a 200ms pause buys ~10 tokens — plenty for one op.
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(200 * time.Millisecond)
		if _, err := mallory.GetOnlinePeers(ctx, "math"); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("rate limit never recovered after backoff")
		}
	}
}
