package core

import (
	"testing"
	"time"

	"jxtaoverlay/internal/keys"
)

// BenchmarkLivenessOverhead prices the broker-side bookkeeping every
// heartbeat pays once its signature is verified: one locked table
// lookup, the lease/seq checks and the expiry bump. Held to an
// absolute nanosecond ceiling and exactly zero allocations in
// bench_compare.sh — a fleet heartbeating at TTL/3 must cost the
// broker table work, not GC pressure. The RSA verify that guards this
// path is priced separately (BenchmarkVerifyTrusted).
func BenchmarkLivenessOverhead(b *testing.B) {
	b.Run("renew", func(b *testing.B) {
		bs := &BrokerSecurity{
			cfg:    BrokerConfig{LeaseTTL: time.Minute},
			leases: make(map[keys.PeerID]*lease),
			clock:  time.Now,
		}
		peer := keys.PeerID("urn:jxta:bench-peer")
		bs.leases[peer] = &lease{id: "ls-bench", expiry: time.Now().Add(time.Hour)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tok := bs.renewLease(peer, "ls-bench", uint64(i)+1); tok != "" {
				b.Fatalf("heartbeat refused: %s", tok)
			}
		}
	})
}
