package waituntil

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestTrueImmediate(t *testing.T) {
	start := time.Now()
	if !True(time.Second, func() bool { return true }) {
		t.Fatal("immediate condition reported false")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("immediate condition slept")
	}
}

func TestTrueEventually(t *testing.T) {
	var n atomic.Int32
	ok := True(2*time.Second, func() bool { return n.Add(1) >= 4 })
	if !ok {
		t.Fatal("condition never reached")
	}
}

func TestTrueTimesOut(t *testing.T) {
	start := time.Now()
	if True(30*time.Millisecond, func() bool { return false }) {
		t.Fatal("unreachable condition reported true")
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("returned before the timeout: %v", elapsed)
	}
}

func TestOnSignalDriven(t *testing.T) {
	var flag atomic.Bool
	sig := make(chan struct{}, 1)
	go func() {
		flag.Store(true)
		sig <- struct{}{}
	}()
	if !On(sig, 2*time.Second, flag.Load) {
		t.Fatal("signal-driven wait missed the condition")
	}
}

func TestOnFallbackTick(t *testing.T) {
	// No signal ever fires; the fallback tick must still observe the
	// condition flipping.
	var flag atomic.Bool
	time.AfterFunc(20*time.Millisecond, func() { flag.Store(true) })
	if !On(make(chan struct{}), 2*time.Second, flag.Load) {
		t.Fatal("fallback tick never observed the condition")
	}
}

type fakeT struct {
	failed bool
}

func (f *fakeT) Helper()               {}
func (f *fakeT) Fatalf(string, ...any) { f.failed = true }

func TestMustFailsOnTimeout(t *testing.T) {
	var f fakeT
	Must(&f, 10*time.Millisecond, func() bool { return false }, "nope")
	if !f.failed {
		t.Fatal("Must did not fail the test on timeout")
	}
}
