// Store-and-forward delivery end-to-end: a sender uploads ONE sealed
// round to the broker relay while part of the group is logged out; the
// online members receive sliced wires immediately, the offline members'
// slices wait in bounded queues and drain — through the real presence
// pipeline — when they log back in.
package integration_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/waituntil"
)

func TestRelayedRoundSurvivesChurn(t *testing.T) {
	const (
		nPeers   = 9 // 1 sender + 8 recipients
		nOffline = 3 // recipients logged out at send time
	)
	net := simnet.NewNetwork(simnet.LinkProfile{})
	defer net.Close()

	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	db := userdb.NewStoreIter(16)
	names := make([]string, nPeers)
	for i := range names {
		names[i] = "peer" + string(rune('a'+i))
		// Two groups: the mislabeled-round check below needs an insider
		// that legitimately belongs to both.
		db.Register(names[i], "pw", "g", "g2")
	}
	brKP, _ := keys.NewKeyPair()
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "relay-broker", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, _ := dep.TrustStore()
	br, err := broker.New(broker.Config{
		Name: "relay-broker", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if _, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: true,
	}); err != nil {
		t.Fatal(err)
	}
	rly, err := core.EnableBrokerRelay(br, core.RelayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rly.Close()

	clients := make([]*core.SecureClient, nPeers)
	for i, name := range names {
		cl, err := client.New(net, membership.NewPSE("", 0), name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		clTrust, _ := dep.TrustStore()
		sc, err := core.NewSecureClient(cl, clTrust)
		if err != nil {
			t.Fatal(err)
		}
		ctx := ctxT(t, 30*time.Second)
		if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
			t.Fatalf("%s secureConnection: %v", name, err)
		}
		if err := sc.SecureLogin(ctx, "pw"); err != nil {
			t.Fatalf("%s secureLogin: %v", name, err)
		}
		clients[i] = sc
	}
	sender, online, offline := clients[0], clients[1:nPeers-nOffline], clients[nPeers-nOffline:]

	collectors := make(map[*core.SecureClient]*events.Collector, nPeers-1)
	for _, c := range clients[1:] {
		collectors[c] = events.NewCollector(c.Bus())
	}

	// Part of the group leaves BEFORE the round is sent.
	for _, c := range offline {
		if err := c.Logout(ctxT(t, 10*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	// One upload fans out to the full roster, present or not.
	signsBefore := sender.Identity().Keys.SignCalls()
	direct, queued, err := sender.SecureMsgPeerGroupRelay(ctxT(t, 30*time.Second), "g", "survives churn")
	if err != nil {
		t.Fatal(err)
	}
	if got := sender.Identity().Keys.SignCalls() - signsBefore; got != 1 {
		t.Fatalf("relayed round cost %d sender signatures, want exactly 1", got)
	}
	if direct != len(online) || queued != len(offline) {
		t.Fatalf("direct=%d queued=%d, want %d/%d", direct, queued, len(online), len(offline))
	}

	// Online members get their slice now, authenticated end-to-end.
	for _, c := range online {
		e, ok := collectors[c].WaitFor(events.SecureMessage, 10*time.Second)
		if !ok {
			t.Fatalf("online member %s never received its slice", c.Username())
		}
		if string(e.Data) != "survives churn" || e.Payload["authenticated"] != "true" {
			t.Fatalf("online member %s got %q (auth=%s)", c.Username(), e.Data, e.Payload["authenticated"])
		}
	}

	// The offline members' queues hold exactly their slices.
	if got := rly.QueuedTotal(); got != len(offline) {
		t.Fatalf("relay holds %d queued slices, want %d", got, len(offline))
	}

	// They return; the login presence event drains each queue.
	for _, c := range offline {
		ctx := ctxT(t, 30*time.Second)
		if err := c.SecureConnection(ctx, br.PeerID()); err != nil {
			t.Fatal(err)
		}
		if err := c.SecureLogin(ctx, "pw"); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range offline {
		e, ok := collectors[c].WaitFor(events.SecureMessage, 10*time.Second)
		if !ok {
			t.Fatalf("returning member %s never received its queued slice", c.Username())
		}
		if string(e.Data) != "survives churn" || e.Payload["authenticated"] != "true" {
			t.Fatalf("returning member %s got %q (auth=%s)", c.Username(), e.Data, e.Payload["authenticated"])
		}
		if e.Payload["mode"] != core.ModeSlice.String() {
			t.Fatalf("returning member %s got mode %s, want %s", c.Username(), e.Payload["mode"], core.ModeSlice)
		}
	}
	waituntil.True(5*time.Second, func() bool { return rly.QueuedTotal() == 0 })
	if got := rly.QueuedTotal(); got != 0 {
		t.Fatalf("relay still holds %d slices after everyone returned", got)
	}
	m := rly.Metrics()
	if m.DeliveredDirect != uint64(len(online)) || m.DeliveredFlushed != uint64(len(offline)) {
		t.Fatalf("metrics = %+v, want direct=%d flushed=%d", m, len(online), len(offline))
	}

	// A two-group insider mislabels a round: sealed (and signed) for
	// group "g", uploaded under "g2". The broker cannot look inside the
	// ciphertext, so it forwards — the recipient must refuse the
	// cross-group delivery rather than surface it as "g2" traffic.
	tgt := online[0]
	d, err := core.SealGroupDetached(sender.Identity().Keys, sender.PeerID(), "g",
		[]byte("mislabeled"), []*keys.PublicKey{tgt.Identity().Keys.Public()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Call(ctxT(t, 10*time.Second), endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpRelayRound).
		AddString(proto.ElemGroup, "g2").
		AddString(proto.ElemRecipients, string(tgt.PeerID())).
		Add(proto.ElemEnvelope, d.Wire())); err != nil {
		t.Fatal(err)
	}
	e, ok := collectors[tgt].WaitFor(events.SecurityAlert, 10*time.Second)
	if !ok {
		t.Fatal("mislabeled round raised no security alert at the recipient")
	}
	if !strings.Contains(e.Payload["reason"], "wrong group") {
		t.Fatalf("alert reason = %q, want wrong-group rejection", e.Payload["reason"])
	}

	// A closed relay must refuse further rounds outright — an OK response
	// claiming slices were queued would be a lie the sender acts on.
	rly.Close()
	direct, queued, err = sender.SecureMsgPeerGroupRelay(ctxT(t, 30*time.Second), "g", "after close")
	if !errors.Is(err, core.ErrRelayUnavailable) || direct != 0 || queued != 0 {
		t.Fatalf("send after relay close: direct=%d queued=%d err=%v, want 0/0/ErrRelayUnavailable", direct, queued, err)
	}
}
