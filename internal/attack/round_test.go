// Round-header replay negatives: the group fan-out round shares ONE
// signed header across every recipient, which creates attack surface the
// unicast envelope never had — a legitimate round member holds a validly
// signed header plus the plaintext and can try to re-encrypt them. These
// tests pin the two defenses (signed recipient-set binding, single-use
// round nonce) and the wire-integrity baseline (tampered key wraps).
package attack_test

import (
	"errors"
	"testing"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/keys"
)

type roundParty struct {
	kp *keys.KeyPair
	id keys.PeerID
}

func newRoundParty(t *testing.T) roundParty {
	t.Helper()
	kp, err := keys.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	id, err := keys.CBID(kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	return roundParty{kp: kp, id: id}
}

// TestRoundHeaderRetargetedRecipientSetRejected: mallory, a legitimate
// recipient of alice's round, splices the signed header onto a wire
// addressed to a different recipient set (bob alone). Bob decrypts
// fine — mallory wrapped the fresh key for him — but the signed
// Recipients digest still names {bob, mallory}, so OpenGroup rejects
// the round before its valid signature can vouch for anything.
func TestRoundHeaderRetargetedRecipientSetRejected(t *testing.T) {
	alice, bob, mallory := newRoundParty(t), newRoundParty(t), newRoundParty(t)
	sealed, err := core.SealGroup(alice.kp, alice.id, "math", []byte("round secret"),
		[]*keys.PublicKey{bob.kp.Public(), mallory.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	// Mallory opens her copy and harvests the signed header + body.
	opened, err := core.OpenGroup(mallory.kp, sealed.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := attack.ForgeRound(opened.HeaderXML(), opened.Body,
		[]*keys.PublicKey{bob.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.OpenGroup(bob.kp, forged, nil); !errors.Is(err, core.ErrRoundBinding) {
		t.Fatalf("re-targeted round = %v, want ErrRoundBinding", err)
	}
}

// TestRoundHeaderStaleNonceReuseRejected: mallory re-encrypts the round
// to its ORIGINAL recipient set, so the recipient-set binding, the body
// digest and the header signature all still hold — only the single-use
// round nonce distinguishes the forgery from the round bob already
// accepted. The receive-side guard must reject the reuse.
func TestRoundHeaderStaleNonceReuseRejected(t *testing.T) {
	alice, bob, mallory := newRoundParty(t), newRoundParty(t), newRoundParty(t)
	recipients := []*keys.PublicKey{bob.kp.Public(), mallory.kp.Public()}
	sealed, err := core.SealGroup(alice.kp, alice.id, "math", []byte("round secret"), recipients)
	if err != nil {
		t.Fatal(err)
	}
	guard := core.NewReplayGuard(time.Minute, 64)
	if _, err := core.OpenGroup(bob.kp, sealed.Bytes(), guard); err != nil {
		t.Fatalf("legitimate round rejected: %v", err)
	}
	opened, err := core.OpenGroup(mallory.kp, sealed.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := attack.ForgeRound(opened.HeaderXML(), opened.Body, recipients)
	if err != nil {
		t.Fatal(err)
	}
	// The forged wire differs byte-for-byte from the original (fresh
	// content key and GCM nonce), so only the signed round nonce can
	// identify it as a replay.
	if _, err := core.OpenGroup(bob.kp, forged, guard); !errors.Is(err, core.ErrMessageReplayed) {
		t.Fatalf("nonce-reusing round = %v, want ErrMessageReplayed", err)
	}
	// And even without prior delivery, the forgery cannot outlive the
	// freshness window: well past the signed timestamp it is stale.
	lateGuard := core.NewReplayGuard(time.Minute, 64)
	lateGuard.SetClock(func() time.Time { return time.Now().Add(10 * time.Minute) })
	if _, err := core.OpenGroup(bob.kp, forged, lateGuard); !errors.Is(err, core.ErrMessageStale) {
		t.Fatalf("aged round = %v, want ErrMessageStale", err)
	}
}

// TestRoundTamperedKeyWrapRejected: an on-path attacker flips bits in a
// recipient's key wrap. The recipient must fail to open the round —
// OAEP unwrapping (or the AEAD under a corrupted key) cannot succeed.
func TestRoundTamperedKeyWrapRejected(t *testing.T) {
	alice, bob, mallory := newRoundParty(t), newRoundParty(t), newRoundParty(t)
	sealed, err := core.SealGroup(alice.kp, alice.id, "math", []byte("round secret"),
		[]*keys.PublicKey{bob.kp.Public(), mallory.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), sealed.Bytes()...)
	// First wrap entry (bob's, wire order = recipient order) sits after
	// the mode byte, wrap count and fingerprint: corrupt its payload.
	wrapStart := 1 + 4 + 32 + 4
	wire[wrapStart+7] ^= 0xff
	if _, err := core.OpenGroup(bob.kp, wire, nil); err == nil {
		t.Fatal("tampered key wrap opened successfully")
	}
	// The untouched recipient still opens — corruption is contained to
	// the targeted wrap.
	if _, err := core.OpenGroup(mallory.kp, wire, nil); err != nil {
		t.Fatalf("untampered recipient rejected: %v", err)
	}
}
