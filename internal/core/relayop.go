package core

import (
	"errors"
	"strconv"
	"strings"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/relay"
)

// Broker-side relay registration: the glue between the generic
// store-and-forward queues (internal/relay) and the broker's operation
// surface. A sender uploads ONE sealed ModeGroup round (relayRound);
// the broker slices it per recipient (core.SliceRound — byte surgery,
// no keys, no plaintext) and routes each slice: direct push to online
// peers, bounded TTL queue for offline ones, drained on their next
// login by the relay's shard workers.
//
// Trust model (see SECURITY.md): the broker validates session and
// group-roster facts it owns (submitter logged in, recipients known
// members) but can vouch for nothing cryptographic. Each slice carries
// the signed round header inside the shared ciphertext; the recipient's
// OpenSlice enforces the Merkle recipient binding and the single-use
// round nonce, so a compromised broker cannot read, re-target, forge or
// replay what it queues — only drop or delay it.

// ErrRelayUnavailable is returned by the client-side relay primitives
// when the broker rejects the relay operation.
var ErrRelayUnavailable = errors.New("core: broker relay unavailable")

// ErrRelaySkipped is returned (wrapped, with counts) by the client-side
// relay primitives when the broker refused some addressed recipients —
// unknown to it, or resident at a federation partner it cannot flush a
// queue for. The round still went out to everyone counted in
// direct/queued; the error exists so a shortfall is never silent.
var ErrRelaySkipped = errors.New("core: relay skipped undeliverable recipients")

// RelayConfig parameterizes the broker relay. It embeds the queue
// configuration and exists so future knobs (per-group quotas, federated
// hand-off) have a home that is not internal/relay's concern.
type RelayConfig struct {
	relay.Config
}

// EnableBrokerRelay attaches the store-and-forward relay subsystem to a
// broker: it builds the sharded queues, binds queue drains to the
// broker's presence events, and registers the relayRound operation.
// Close() the returned relay when the broker shuts down.
func EnableBrokerRelay(b *broker.Broker, cfg RelayConfig) *relay.Relay {
	r := relay.New(cfg.Config, b.PeerOnline, func(it relay.Item) error {
		return b.Endpoint().Send(it.To, proto.ClientService, sliceDeliverMessage(it))
	})
	r.BindBus(b.Bus())
	b.RegisterOp(proto.OpRelayRound, relayRoundHandler(b, r))
	return r
}

// sliceDeliverMessage wraps one slice into the client push that carries
// it — the same ClientService surface advertisement pushes use.
func sliceDeliverMessage(it relay.Item) *endpoint.Message {
	return endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpSliceDeliver).
		AddString(proto.ElemGroup, it.Group).
		AddString(proto.ElemPeer, string(it.From)).
		Add(proto.ElemEnvelope, it.Payload)
}

// relayRoundHandler processes one uploaded round: validate, slice,
// route. The response reports how many slices went out directly and how
// many were queued.
func relayRoundHandler(b *broker.Broker, r *relay.Relay) broker.OpHandler {
	return func(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
		if !b.PeerOnline(from) {
			return proto.Fail(proto.ErrNotLoggedIn)
		}
		group, _ := msg.GetString(proto.ElemGroup)
		if !b.KnownMember(from, group) {
			return proto.Fail(proto.ErrNoGroup)
		}
		wire, ok := msg.Get(proto.ElemEnvelope)
		if !ok || len(wire) == 0 || Mode(wire[0]) != ModeGroup {
			return proto.Fail(proto.ErrBadRound)
		}
		rcptCSV, _ := msg.GetString(proto.ElemRecipients)
		if rcptCSV == "" {
			return proto.Fail(proto.ErrBadRequest)
		}
		ids := strings.Split(rcptCSV, ",")
		d, err := SliceRound(wire)
		if err != nil {
			return proto.Fail(proto.ErrBadRound)
		}
		// The recipient list must pair 1:1 with the round's key wraps —
		// the broker cannot check WHICH fingerprint belongs to which peer
		// (it holds no keys), but a mismapped slice is merely
		// undeliverable: the wrong recipient fails ErrNotRecipient and the
		// signed Merkle binding stops anything stronger.
		if len(ids) != d.Recipients() {
			return proto.Fail(proto.ErrBadRound)
		}
		// Every addressed recipient lands in exactly one of the three
		// counters — direct, queued or skipped — so the sender can detect
		// a shortfall instead of a silent drop. Slices are cut lazily:
		// only accepted recipients pay for their copy of the ciphertext.
		direct, queued, skipped := 0, 0, 0
		for i, raw := range ids {
			id := keys.PeerID(raw)
			if !b.KnownMember(id, group) || id == from {
				// No session record for this member (e.g. the broker
				// restarted and the peer never returned), or the sender
				// addressed itself.
				skipped++
				continue
			}
			if !b.PeerResident(id) {
				// The member is logged in at (or last seen through) a
				// federation partner: its presence events fire there, so a
				// queue here would only expire. Until federated hand-off
				// exists (ROADMAP), refuse the slice honestly instead of
				// reporting it queued-for-delivery.
				skipped++
				continue
			}
			switch r.Submit(relay.Item{To: id, From: from, Group: group, Payload: d.Slice(i)}) {
			case relay.SubmitDirect:
				direct++
			case relay.SubmitQueued:
				queued++
			case relay.SubmitDropped:
				// The relay shut down mid-round; nothing already counted is
				// lost, but the remaining slices cannot be accepted — fail
				// so the sender does not trust the queued count.
				return proto.Fail(proto.ErrRelayOff)
			}
		}
		return proto.OK().
			AddString(proto.ElemRelayDirect, strconv.Itoa(direct)).
			AddString(proto.ElemRelayQueued, strconv.Itoa(queued)).
			AddString(proto.ElemRelaySkipped, strconv.Itoa(skipped))
	}
}
