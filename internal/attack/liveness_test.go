package attack_test

// Liveness attack negatives (PR 10). The lease/heartbeat/idempotency
// machinery exists to keep sessions honest under churn, so each of its
// moving parts gets the adversarial treatment the rest of the suite
// gives the login and relay paths:
//
//   - a captured heartbeat, replayed, must not keep a dead session's
//     presence alive (the strictly-increasing sequence number);
//   - a captured idempotent mutation, replayed, must not execute twice
//     (the dedup window answers from cache), and another peer reusing
//     the same key must not be able to read the victim's cached
//     response (keys are namespaced per sender);
//   - a forged or lagging peer-down describing an OLD session must not
//     clobber a newer live one (the monotonic session guard from the
//     federation work, now also carrying lease expiries).

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/waituntil"
)

const attackLeaseTTL = 30 * time.Second

// leaseStack is a secureStack with liveness enabled and a movable
// broker clock, so lease expiry is driven deterministically.
type leaseStack struct {
	net   *simnet.Network
	dep   *core.Deployment
	br    *broker.Broker
	brSec *core.BrokerSecurity
	mu    sync.Mutex
	now   time.Time
}

func newLeaseStack(t *testing.T) *leaseStack {
	t.Helper()
	s := &leaseStack{now: time.Now()}
	s.net = simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(s.net.Close)
	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.dep = dep
	db := userdb.NewStoreIter(4)
	db.Register("alice", "alice-secret-pw", "math")
	db.Register("mallory", "mallory-pw", "math")
	brKP, _ := keys.NewKeyPair()
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "broker-1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, _ := dep.TrustStore()
	s.br, err = broker.New(broker.Config{
		Name: "broker-1", PeerID: brCred.Subject, Net: s.net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.br.Close)
	s.brSec, err = core.EnableBrokerSecurity(s.br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust,
		RequireSignedAdvs: true, LeaseTTL: attackLeaseTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.brSec.Close)
	s.brSec.SetClock(func() time.Time {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.now
	})
	return s
}

func (s *leaseStack) advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

func (s *leaseStack) join(t *testing.T, alias, password string) *core.SecureClient {
	t.Helper()
	cl, err := client.New(s.net, membership.NewPSE("", 0), alias)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	trust, _ := s.dep.TrustStore()
	sc, err := core.NewSecureClient(cl, trust)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	if err := sc.SecureConnection(ctx, s.br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := sc.SecureLogin(ctx, password); err != nil {
		t.Fatal(err)
	}
	return sc
}

// A heartbeat captured off the wire and replayed carries an
// already-seen sequence number: the broker refuses it without touching
// the lease expiry, so an attacker holding a victim's heartbeat
// traffic cannot keep the dead session's presence alive (and collect
// its relayed slices, impersonate its availability, and so on).
func TestReplayedHeartbeatCannotKeepSessionAlive(t *testing.T) {
	s := newLeaseStack(t)
	alice := s.join(t, "alice", "alice-secret-pw")
	brokerNode := simnet.NodeID(s.br.PeerID())

	// Eve starts capturing after login, so the captured frames are
	// exactly one genuine heartbeat exchange.
	eve := attack.NewEavesdropper(s.net)
	if err := alice.SecureHeartbeat(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if st := s.brSec.LivenessStats(); st.HeartbeatsRenewed != 1 {
		t.Fatalf("renewed = %d, want 1", st.HeartbeatsRenewed)
	}
	captured := eve.FramesTo(brokerNode)
	if len(captured) == 0 {
		t.Fatal("eavesdropper captured no heartbeat frames")
	}

	// Alice dies silently. The attacker keeps replaying her last
	// heartbeat: every copy is refused (same lease, same seq) and the
	// expiry stays where the genuine renewal left it.
	raw, err := attack.NewRawNode(s.net, "attacker-node")
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range captured {
		_ = raw.Replay(brokerNode, frame)
	}
	waituntil.Must(t, 5*time.Second, func() bool {
		return s.brSec.LivenessStats().HeartbeatsRejected >= 1
	}, "replayed heartbeat never refused")

	// One TTL later the lease lapses on schedule — the replays renewed
	// nothing — and the sweeper takes the session down.
	s.advance(attackLeaseTTL + time.Second)
	for _, frame := range captured {
		_ = raw.Replay(brokerNode, frame)
	}
	s.brSec.ExpireLapsedNow()
	if s.br.PeerOnline(alice.PeerID()) {
		t.Fatal("replayed heartbeats kept a dead session's presence alive")
	}
	st := s.brSec.LivenessStats()
	if st.HeartbeatsRenewed != 1 {
		t.Fatalf("replays renewed the lease: renewed = %d, want 1", st.HeartbeatsRenewed)
	}
	if st.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", st.LeasesExpired)
	}
}

// A mutating request captured with its idempotency key and replayed
// verbatim is answered from the dedup window — it does not execute a
// second time. And the key namespace is per sender: another peer
// presenting the victim's key gets her own fresh execution (and its
// honest refusal), never the victim's cached response.
func TestReplayedIdempotencyKeyCannotDoubleExecute(t *testing.T) {
	s := newLeaseStack(t)
	alice := s.join(t, "alice", "alice-secret-pw")
	mallory := s.join(t, "mallory", "mallory-pw")
	brokerNode := simnet.NodeID(s.br.PeerID())
	ctx := testCtx(t)

	eve := attack.NewEavesdropper(s.net)
	create := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpGroupCreate).
		AddString(proto.ElemGroup, "proj").
		AddString(proto.ElemDesc, "project").
		AddString(proto.ElemIdem, "ik-replay-1")
	if _, err := alice.Call(ctx, create); err != nil {
		t.Fatalf("first create: %v", err)
	}
	captured := eve.FramesTo(brokerNode)
	if len(captured) == 0 {
		t.Fatal("eavesdropper captured no frames")
	}

	// Replay the captured creation. The broker answers from the dedup
	// cache instead of re-running the handler.
	raw, err := attack.NewRawNode(s.net, "attacker-node")
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range captured {
		_ = raw.Replay(brokerNode, frame)
	}
	waituntil.Must(t, 5*time.Second, func() bool {
		return s.br.Stats().IdemDeduped >= 1
	}, "replayed idempotent request was not deduplicated")

	// Mallory presents alice's key under her own session: the cache
	// misses (keys are scoped to the sender), her create executes for
	// real, and she gets the honest group-exists refusal — not alice's
	// cached OK.
	steal := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpGroupCreate).
		AddString(proto.ElemGroup, "proj").
		AddString(proto.ElemDesc, "project").
		AddString(proto.ElemIdem, "ik-replay-1")
	if _, err := mallory.Call(ctx, steal); err == nil {
		t.Fatal("foreign idempotency key served the victim's cached response")
	}
}

// Presence is monotonic in session-start time. A peer-down describing
// an OLD session — a forger outside the federation, or a lagging /
// compromised partner replaying history — must not take down the
// newer live session it races with.
func TestForgedStalePresenceCannotClobberNewerSession(t *testing.T) {
	s := newLeaseStack(t)
	alice := s.join(t, "alice", "alice-secret-pw")
	stale := strconv.FormatInt(time.Now().Add(-time.Minute).UnixNano(), 10)
	peerDown := func() *endpoint.Message {
		return endpoint.NewMessage().
			AddString(proto.ElemOp, "fedPeerDown").
			AddString(proto.ElemPeer, string(alice.PeerID())).
			AddString(proto.ElemFedSession, stale)
	}

	// A non-partner forging federation presence is ignored outright.
	outsider, err := endpoint.NewService(s.net, "outsider-node")
	if err != nil {
		t.Fatal(err)
	}
	defer outsider.Close()
	if err := outsider.Send(s.br.PeerID(), proto.BrokerService, peerDown()); err != nil {
		t.Fatal(err)
	}

	// A real partner replaying alice's previous session is discarded by
	// the monotonic guard (and counted).
	partnerID := keys.LegacyPeerID("partner-broker")
	partner, err := endpoint.NewService(s.net, partnerID)
	if err != nil {
		t.Fatal(err)
	}
	defer partner.Close()
	s.br.Federate(partnerID)
	if err := partner.Send(s.br.PeerID(), proto.BrokerService, peerDown()); err != nil {
		t.Fatal(err)
	}
	waituntil.Must(t, 5*time.Second, func() bool {
		return s.br.Stats().FedStalePresence >= 1
	}, "stale partner peer-down never reached the monotonic guard")
	if !s.br.PeerOnline(alice.PeerID()) {
		t.Fatal("stale peer-down clobbered a live newer session")
	}

	// The same guard protects lease expiry: a sweep collected against a
	// session that has since re-logged-in must not land.
	if s.br.ExpirePeer(alice.PeerID(), "lease-expired", time.Now().Add(-time.Hour)) {
		t.Fatal("stale lease expiry took down a newer session")
	}
	if !s.br.PeerOnline(alice.PeerID()) {
		t.Fatal("peer offline after stale expiry")
	}
	if errors.Is(alice.SecureHeartbeat(testCtx(t)), core.ErrLeaseLost) {
		t.Fatal("live session lost its lease to stale presence replays")
	}
}
