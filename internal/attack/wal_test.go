// Durable-queue negatives: with store-and-forward queues persisted to
// disk, the disk itself joins the adversary model. An attacker (or a
// failing device) that can rewrite the broker's WAL gets three moves:
// flip bits under an intact length frame, tear the tail mid-record,
// and roll the log back to un-ack a delivered slice so it resurrects
// at recovery. The first two must be fail-stop — a damaged record is
// dropped, never delivered damaged, and never takes recovery down with
// it. The third is the one move the log cannot stop alone: the
// resurrected slice redelivers, and only the recipient's single-use
// round nonce (core.ReplayGuard) turns the duplicate away.
package attack_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/relay/wal"
)

// durableRelay builds a WAL-backed relay delivering into a channel.
func durableRelay(t *testing.T, dir string, online *atomic.Bool) (*relay.Relay, chan relay.Item) {
	t.Helper()
	drained := make(chan relay.Item, 16)
	cfg := relay.Config{TTL: time.Hour}
	cfg.WAL.Dir = dir
	r, err := relay.New(cfg, func(keys.PeerID) bool { return online.Load() },
		func(it relay.Item) error {
			drained <- it
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return r, drained
}

func drainOne(t *testing.T, r *relay.Relay, id keys.PeerID, ch chan relay.Item) relay.Item {
	t.Helper()
	r.Flush(id)
	select {
	case it := <-ch:
		return it
	case <-time.After(5 * time.Second):
		t.Fatal("queued slice never drained")
		return relay.Item{}
	}
}

// TestWALBitFlipDropsRecordFailStop: a bit flipped inside a stored
// record (intact framing, broken CRC) must cost exactly that record —
// recovery neither crashes nor delivers the damaged slice, and the
// records before it survive untouched, byte-for-byte openable.
func TestWALBitFlipDropsRecordFailStop(t *testing.T) {
	alice, bob, carol := newRoundParty(t), newRoundParty(t), newRoundParty(t)
	d, err := core.SealGroupDetached(alice.kp, alice.id, "math", []byte("disk secret"),
		[]*keys.PublicKey{bob.kp.Public(), carol.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var online atomic.Bool
	r, _ := durableRelay(t, dir, &online)
	if r.Submit(relay.Item{To: bob.id, From: alice.id, Group: "math", Payload: d.Slices()[0]}) != relay.SubmitQueued {
		t.Fatal("submit not queued")
	}
	if r.Submit(relay.Item{To: carol.id, From: alice.id, Group: "math", Payload: d.Slices()[1]}) != relay.SubmitQueued {
		t.Fatal("submit not queued")
	}
	r.Close()
	// The adversary flips one bit in the LAST record (carol's slice).
	if err := wal.FlipTailCRC(dir); err != nil {
		t.Fatal(err)
	}

	r2, drained := durableRelay(t, dir, &online)
	defer r2.Close()
	if m := r2.Metrics(); m.RecoveryReplayed != 1 {
		t.Fatalf("recovered %d records past the flipped one, want 1 (metrics %+v)", m.RecoveryReplayed, m)
	}
	if r2.QueueLen(carol.id) != 0 {
		t.Fatal("corrupted record was resurrected")
	}
	online.Store(true)
	it := drainOne(t, r2, bob.id, drained)
	if _, err := core.OpenSlice(bob.kp, it.Payload, nil); err != nil {
		t.Fatalf("intact neighbor of flipped record no longer opens: %v", err)
	}
}

// TestWALTornTailTruncatedFailStop: a record torn in half (crash
// mid-write, or an adversary truncating the file) reads as a torn
// tail: recovery truncates it away and the log keeps working — the
// survivors deliver and open, and nothing half-written ever surfaces.
func TestWALTornTailTruncatedFailStop(t *testing.T) {
	alice, bob := newRoundParty(t), newRoundParty(t)
	d, err := core.SealGroupDetached(alice.kp, alice.id, "math", []byte("torn secret"),
		[]*keys.PublicKey{bob.kp.Public(), bob.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var online atomic.Bool
	r, _ := durableRelay(t, dir, &online)
	r.Submit(relay.Item{To: bob.id, From: alice.id, Group: "math", Payload: d.Slices()[0]})
	r.Submit(relay.Item{To: bob.id, From: alice.id, Group: "math", Payload: d.Slices()[1]})
	r.Close()
	if err := wal.TearFinalRecord(dir); err != nil {
		t.Fatal(err)
	}

	r2, drained := durableRelay(t, dir, &online)
	defer r2.Close()
	if m := r2.Metrics(); m.RecoveryReplayed != 1 {
		t.Fatalf("recovered %d records, want 1 before the tear", m.RecoveryReplayed)
	}
	online.Store(true)
	it := drainOne(t, r2, bob.id, drained)
	if _, err := core.OpenSlice(bob.kp, it.Payload, nil); err != nil {
		t.Fatalf("survivor of torn tail no longer opens: %v", err)
	}
}

// TestWALRollbackResurrectionStoppedByReplayGuard: the move the log
// cannot defend alone. The adversary lets a queued slice drain to bob,
// then destroys the delivery ack (tearing the log tail back past it)
// so the restarted relay resurrects and redelivers the slice. The
// redelivery is byte-identical and validly signed — only bob's spent
// round nonce stands between it and a duplicate message. This is the
// end-to-end shape of the recovery invariant: WAL acks make honest
// restarts exactly-once; the replay guard covers dishonest ones.
func TestWALRollbackResurrectionStoppedByReplayGuard(t *testing.T) {
	alice, bob := newRoundParty(t), newRoundParty(t)
	d, err := core.SealGroupDetached(alice.kp, alice.id, "math", []byte("resurrect me"),
		[]*keys.PublicKey{bob.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	guard := core.NewReplayGuard(time.Minute, 64)
	var online atomic.Bool
	r, drained := durableRelay(t, dir, &online)
	if r.Submit(relay.Item{To: bob.id, From: alice.id, Group: "math", Payload: d.Slices()[0]}) != relay.SubmitQueued {
		t.Fatal("submit not queued")
	}
	online.Store(true)
	it := drainOne(t, r, bob.id, drained)
	if _, err := core.OpenSlice(bob.kp, it.Payload, guard); err != nil {
		t.Fatalf("first delivery rejected: %v", err)
	}
	r.Close()

	// Roll back the log: the final record is the AckDelivered — tearing
	// it leaves the slice's add record live again.
	if err := wal.TearFinalRecord(dir); err != nil {
		t.Fatal(err)
	}
	r2, drained2 := durableRelay(t, dir, &online)
	defer r2.Close()
	if m := r2.Metrics(); m.RecoveryReplayed != 1 {
		t.Fatalf("rollback did not resurrect the slice (metrics %+v)", m)
	}
	redelivered := drainOne(t, r2, bob.id, drained2)
	if _, err := core.OpenSlice(bob.kp, redelivered.Payload, guard); !errors.Is(err, core.ErrMessageReplayed) {
		t.Fatalf("resurrected slice = %v, want ErrMessageReplayed", err)
	}
}
