// Store-and-forward relay negatives: once queued slices sit at a broker
// for offline recipients, the relay itself becomes the adversary the
// round format must resist. It holds every recipient's wire for as long
// as the queue TTL allows, so it can try to re-target, re-cut, replay
// after a drain, or corrupt what it stores. These tests pin the two
// defenses carried INSIDE the payload — the signed slice Merkle binding
// and the single-use round nonce — plus clean rejection of truncation.
package attack_test

import (
	"encoding/binary"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/relay"
)

// TestSliceRetargetedToNonRecipientRejected: a round insider (mallory)
// opened her slice legitimately and colludes with the relay, handing it
// the validly signed header and plaintext. The relay re-encrypts and
// cuts a slice for eve — whom the sender never addressed. Eve decrypts
// fine (the wrap is genuinely hers), but the leaf (0, eve, wrap) cannot
// reach the signed SliceRoot: ErrRoundBinding, before the header's
// valid signature can vouch for anything.
func TestSliceRetargetedToNonRecipientRejected(t *testing.T) {
	alice, bob, mallory, eve := newRoundParty(t), newRoundParty(t), newRoundParty(t), newRoundParty(t)
	d, err := core.SealGroupDetached(alice.kp, alice.id, "math", []byte("queued secret"),
		[]*keys.PublicKey{bob.kp.Public(), mallory.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	opened, err := core.OpenSlice(mallory.kp, d.Slices()[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := attack.ForgeSlice(opened.HeaderXML(), opened.Body, eve.kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.OpenSlice(eve.kp, forged, nil); !errors.Is(err, core.ErrRoundBinding) {
		t.Fatalf("re-targeted slice = %v, want ErrRoundBinding", err)
	}
}

// TestSliceReindexedByRelayRejected: a relay needs NO insider to attempt
// reorder forgery — it can re-cut a queued slice claiming a different
// leaf position, or transplant another recipient's inclusion proof. The
// recipient still decrypts (its wrap is untouched), so only the index-
// committing Merkle leaf stands between the forgery and acceptance.
func TestSliceReindexedByRelayRejected(t *testing.T) {
	alice := newRoundParty(t)
	members := make([]roundParty, 3)
	pubs := make([]*keys.PublicKey, 3)
	for i := range members {
		members[i] = newRoundParty(t)
		pubs[i] = members[i].kp.Public()
	}
	d, err := core.SealGroupDetached(alice.kp, alice.id, "math", []byte("queued secret"), pubs)
	if err != nil {
		t.Fatal(err)
	}
	slices := d.Slices()

	// Rewrite slice 0's leaf index in place (u32 after mode byte + count).
	reindexed := append([]byte(nil), slices[0]...)
	binary.BigEndian.PutUint32(reindexed[5:9], 1)
	if _, err := core.OpenSlice(members[0].kp, reindexed, nil); !errors.Is(err, core.ErrRoundBinding) {
		t.Fatalf("re-indexed slice = %v, want ErrRoundBinding", err)
	}

	// Transplant slice 1's proof hashes into slice 0 (same length: both
	// carry ceil(log2(3))-ish sibling paths of equal depth here).
	proofAt := func(w []byte) (start, end int) {
		wl := int(binary.BigEndian.Uint32(w[41:45]))
		start = 45 + wl + 1
		return start, start + 32*int(w[45+wl])
	}
	s0, e0 := proofAt(slices[0])
	s1, e1 := proofAt(slices[1])
	if e0-s0 != e1-s1 {
		t.Fatalf("test setup: proof lengths differ (%d vs %d)", e0-s0, e1-s1)
	}
	spliced := append([]byte(nil), slices[0]...)
	copy(spliced[s0:e0], slices[1][s1:e1])
	if _, err := core.OpenSlice(members[0].kp, spliced, nil); !errors.Is(err, core.ErrRoundBinding) {
		t.Fatalf("proof-spliced slice = %v, want ErrRoundBinding", err)
	}
}

// TestSliceReplayAfterFlushRejected: the drain-then-replay attack. A
// slice queued for offline bob is flushed to him at login and accepted;
// a compromised relay that kept the bytes re-submits them. The slice is
// byte-identical and carries a valid signature — only the signed
// single-use round nonce, already spent at the first drain, stops the
// second delivery.
func TestSliceReplayAfterFlushRejected(t *testing.T) {
	alice, bob := newRoundParty(t), newRoundParty(t)
	d, err := core.SealGroupDetached(alice.kp, alice.id, "math", []byte("flush me"),
		[]*keys.PublicKey{bob.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	wire := d.Slices()[0]

	// Bob's receive pipeline: nonce-tracking guard in front of OpenSlice.
	guard := core.NewReplayGuard(time.Minute, 64)
	var online atomic.Bool
	drained := make(chan []byte, 4)
	r, err := relay.New(relay.Config{}, func(keys.PeerID) bool { return online.Load() },
		func(it relay.Item) error {
			drained <- it.Payload
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Queued while bob is offline, drained when he returns.
	if r.Submit(relay.Item{To: bob.id, Payload: wire}) != relay.SubmitQueued {
		t.Fatal("offline submit not queued")
	}
	online.Store(true)
	r.Flush(bob.id)
	var delivered []byte
	select {
	case delivered = <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("queued slice never drained")
	}
	if _, err := core.OpenSlice(bob.kp, delivered, guard); err != nil {
		t.Fatalf("flushed slice rejected: %v", err)
	}
	// The relay kept the bytes and replays them after the drain.
	if _, err := core.OpenSlice(bob.kp, wire, guard); !errors.Is(err, core.ErrMessageReplayed) {
		t.Fatalf("replayed drained slice = %v, want ErrMessageReplayed", err)
	}
}

// TestSliceTruncatedByRelayRejected: a relay that corrupts what it
// stores (or a queue that truncates on overflow-adjacent bugs) must not
// crash the recipient or slip a partial wire past it. Boundary cuts
// target each wire section; the core suite separately checks every
// prefix.
func TestSliceTruncatedByRelayRejected(t *testing.T) {
	alice, bob, carol := newRoundParty(t), newRoundParty(t), newRoundParty(t)
	d, err := core.SealGroupDetached(alice.kp, alice.id, "math", []byte("truncate me"),
		[]*keys.PublicKey{bob.kp.Public(), carol.kp.Public()})
	if err != nil {
		t.Fatal(err)
	}
	wire := d.Slices()[0]
	for _, cut := range []int{0, 1, 5, 9, 41, 45, len(wire) / 2, len(wire) - 1} {
		if _, err := core.OpenSlice(bob.kp, wire[:cut], nil); err == nil {
			t.Fatalf("truncated slice (%d/%d bytes) accepted", cut, len(wire))
		}
	}
}
