// Hostile-input negatives for the ingest parser. Every inbound wire —
// advertisements, envelope headers, credentials — now funnels through
// xmldoc.ParseCanonical, whose grammar excludes the classic XML attack
// surface by construction: no DTDs or entity definitions (so no
// entity-expansion bombs), no processing instructions or comments, and
// bounded nesting. These tests act as the adversary feeding such
// documents to the parser directly and through a secure envelope, and
// pin that rejection costs work proportional to the scanned prefix —
// not to what the document would expand to.
package attack_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// entityBomb is a billion-laughs document: ~10 levels of nested entity
// definitions that a DTD-expanding parser would blow up to gigabytes.
func entityBomb() []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE lolz [<!ENTITY lol \"lol\">")
	for i := 1; i <= 9; i++ {
		fmt.Fprintf(&b, "<!ENTITY lol%d \"", i)
		for j := 0; j < 10; j++ {
			fmt.Fprintf(&b, "&lol%d;", i-1)
		}
		b.WriteString("\">")
	}
	b.WriteString("]><PipeAdvertisement><Id>&lol9;</Id></PipeAdvertisement>")
	return []byte(b.String())
}

// TestEntityBombRejectedAtFirstByte: the expansion bomb dies on the
// '<!' of its DOCTYPE — before a single entity is defined, let alone
// expanded. The work bound is the point: rejection happens at the
// scanned prefix, so the attacker cannot buy CPU or memory with a
// small wire.
func TestEntityBombRejectedAtFirstByte(t *testing.T) {
	bomb := entityBomb()
	start := time.Now()
	if _, err := xmldoc.ParseCanonical(bomb); !errors.Is(err, xmldoc.ErrCanonicalSyntax) {
		t.Fatalf("entity bomb not rejected as non-canonical: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("rejection took %v — expansion work performed", elapsed)
	}
}

// TestDeeplyNestedDocumentRejected: a 100k-level nesting chain (which
// would recurse a tree-building parser into the ground) is cut off at
// the fixed depth bound with work linear in the scanned prefix, open
// tags only — no matching close tags are ever needed to reject.
func TestDeeplyNestedDocumentRejected(t *testing.T) {
	deep := []byte(strings.Repeat("<A>", 100_000))
	start := time.Now()
	if _, err := xmldoc.ParseCanonical(deep); !errors.Is(err, xmldoc.ErrCanonicalSyntax) {
		t.Fatalf("deep nesting not rejected: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("rejection took %v — unbounded recursion work", elapsed)
	}
}

// TestHostileHeaderInsideEnvelopeRejected: an attacker who controls the
// bytes inside a sign-only envelope (no key material needed for
// ModeSign) cannot smuggle DTD/PI/comment markup through the header
// parse — core.Open rejects the envelope before any field of the
// hostile header is interpreted.
func TestHostileHeaderInsideEnvelopeRejected(t *testing.T) {
	hostile := [][]byte{
		entityBomb(),
		[]byte(`<?xml version="1.0"?><SecureMessage></SecureMessage>`),
		[]byte("<SecureMessage><!-- smuggled --><Sender>x</Sender></SecureMessage>"),
		[]byte("<SecureMessage><Sender>&nbsp;</Sender></SecureMessage>"),
	}
	for _, header := range hostile {
		// Hand-assemble the ModeSign wire: mode byte, u32 header length,
		// header bytes, empty body.
		wire := []byte{byte(core.ModeSign)}
		wire = binary.BigEndian.AppendUint32(wire, uint32(len(header)))
		wire = append(wire, header...)
		if _, err := core.Open(nil, wire); !errors.Is(err, core.ErrEnvelope) {
			t.Fatalf("hostile header %.40q... not rejected: %v", header, err)
		}
	}
}

// TestCanonicalHeadersStillAccepted is the positive control for the
// hardening: a legitimately sealed envelope — whose header is canonical
// by construction — still opens and verifies.
func TestCanonicalHeadersStillAccepted(t *testing.T) {
	alice := newRoundParty(t)
	sealed, err := core.Seal(alice.kp, alice.id, "math", []byte("hi"), nil, core.ModeSign)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := core.Open(nil, sealed.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := opened.VerifySignature(alice.kp.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := keys.CBID(alice.kp.Public()); err != nil {
		t.Fatal(err)
	}
}
