#!/usr/bin/env bash
# Benchmark regression gate: compare a benchmark snapshot against the
# committed baseline and fail when a gated hot-path metric regresses by
# more than BENCH_TOLERANCE percent (default 20).
#
# Usage:
#   scripts/bench_compare.sh                      # run a fresh bench, compare
#   scripts/bench_compare.sh BASE.json            # fresh bench vs BASE.json
#   scripts/bench_compare.sh BASE.json CUR.json   # pure comparison, no run
#
# With no current file, the gated benchmarks are run via scripts/bench.sh
# into a temp snapshot (not committed). The baseline defaults to the
# highest-numbered BENCH_<n>.json in the repo root.
#
# Gated metrics — the fast paths this repo's PRs optimize:
#   - BenchmarkVerifyTrusted/warm           ns/op (cache-hit verification)
#   - BenchmarkFanOutSecure/recipients100   ns/op / 100 (per-recipient
#     cost of a 100-member secure fan-out round)
#   - BenchmarkParseCold/canonical          ns/op (receive-side parse of
#     a signed advertisement via the canonical fast path)
#   - BenchmarkOpenSlice                    ns/op (full receive of one
#     relayed round slice: unwrap + AEAD + parse + bindings + verify)
#   - BenchmarkRelayDrainDurable/recipients100  ns/op / 100 (per-slice
#     cost of a churn round on the WAL-backed relay)
#
# The durable drain is additionally held to an intra-snapshot ratio:
# within the CURRENT snapshot it must stay under BENCH_DURABLE_FACTOR
# (default 2) times BenchmarkRelayDelivery/recipients100 — the same
# round shape on the in-memory relay. Both sides come from one run on
# one machine, so the persistence-tax bound needs no canary.
#
# By default the thresholds compare absolute ns/op, which requires
# baseline and current runs to come from the same machine class. Set
# BENCH_NORMALIZE=1 (the CI bench-gate does) to divide every metric by
# that snapshot's BenchmarkSignedAdvertisement/sign ns/op — one bare RSA
# signature, a machine-speed canary untouched by the gated
# optimizations — so a committed baseline survives runner hardware
# churn while an injected slowdown of a gated path still fails.
#
# The same two paths are additionally gated on allocs_per_op
# (BENCH_ALLOC_TOLERANCE percent, default 10), compared ABSOLUTELY —
# allocation counts do not scale with machine speed, so this gate
# catches the blind spot of canary normalization: a regression that
# slows the RSA canary and the gated paths proportionally (e.g. a
# slower runner class masking a real slowdown, or an added allocation
# on a path whose ns cost drowns in RSA time).
set -euo pipefail
cd "$(dirname "$0")/.."

tolerance="${BENCH_TOLERANCE:-20}"
normalize="${BENCH_NORMALIZE:-0}"
canary="BenchmarkSignedAdvertisement/sign"

baseline="${1:-}"
current="${2:-}"

if [ -z "$baseline" ]; then
    n=0
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    if [ "$n" -eq 0 ]; then
        echo "bench_compare: no committed BENCH_<n>.json baseline found" >&2
        exit 2
    fi
    baseline="BENCH_$((n - 1)).json"
fi
[ -r "$baseline" ] || { echo "bench_compare: unreadable baseline $baseline" >&2; exit 2; }

if [ -z "$current" ]; then
    current=$(mktemp --suffix=.json)
    trap 'rm -f "$current"' EXIT
    echo "bench_compare: running gated benchmarks (baseline: $baseline)"
    BENCH="${BENCH:-BenchmarkVerifyTrusted|BenchmarkFanOutSecure|BenchmarkSignedAdvertisement|BenchmarkParseCold|BenchmarkOpenSlice|BenchmarkRelayDelivery|BenchmarkRelayDrainDurable|BenchmarkTelemetryOverhead|BenchmarkTraceOverhead|BenchmarkAuditOverhead|BenchmarkLivenessOverhead|BenchmarkIdemOverhead}" \
        BENCHTIME="${BENCHTIME:-1s}" BENCH_OUT="$current" ./scripts/bench.sh >/dev/null
fi
[ -r "$current" ] || { echo "bench_compare: unreadable current $current" >&2; exit 2; }

# metric_of FILE NAME FIELD — extract one numeric field for one
# benchmark. Prefer jq (any valid JSON); fall back to line-based
# extraction for bench.sh's one-object-per-line layout when jq is
# unavailable.
if command -v jq >/dev/null 2>&1; then
    metric_of() {
        jq -r --arg n "$2" --arg f "$3" \
            '[.benchmarks[] | select(.name == $n) | .[$f]][0] // empty' "$1"
    }
else
    metric_of() {
        # `|| true` keeps a missing metric an *empty* result instead of
        # letting grep's exit status abort the script under set -e; the
        # callers report missing metrics themselves.
        { grep -F "\"name\": \"$2\"" "$1" || true; } |
            sed -n "s/.*\"$3\": \([0-9.e+-]*\).*/\1/p" | head -n 1
    }
fi
ns_of() { metric_of "$1" "$2" ns_per_op; }
allocs_of() { metric_of "$1" "$2" allocs_per_op; }

fail=0
baseNorm=1
curNorm=1
if [ "$normalize" = "1" ]; then
    baseNorm=$(ns_of "$baseline" "$canary")
    curNorm=$(ns_of "$current" "$canary")
    if [ -z "$baseNorm" ] || [ -z "$curNorm" ]; then
        echo "bench_compare: BENCH_NORMALIZE=1 but canary $canary missing from a snapshot" >&2
        exit 2
    fi
    echo "bench_compare: normalizing by $canary (baseline ${baseNorm} ns, current ${curNorm} ns)"
fi
echo "bench_compare: $current vs $baseline (tolerance ${tolerance}%)"
printf '%-42s %14s %14s %9s\n' "metric" "baseline" "current" "delta"

# gate NAME DIVISOR LABEL — units are ns (or signature-equivalents
# when normalizing)
gate() {
    local name="$1" div="$2" label="$3" base cur
    base=$(ns_of "$baseline" "$name")
    cur=$(ns_of "$current" "$name")
    if [ -z "$base" ] || [ -z "$cur" ]; then
        echo "bench_compare: metric $name missing from snapshot" >&2
        fail=1
        return
    fi
    awk -v base="$base" -v cur="$cur" -v div="$div" -v tol="$tolerance" -v label="$label" \
        -v baseNorm="$baseNorm" -v curNorm="$curNorm" '
    BEGIN {
        base /= div * baseNorm; cur /= div * curNorm
        delta = (cur - base) / base * 100
        status = (delta > tol) ? "FAIL" : "ok"
        printf "%-42s %14.4g %14.4g %+8.1f%% %s\n", label, base, cur, delta, status
        exit (delta > tol) ? 1 : 0
    }' || fail=1
}

# gate_allocs NAME DIVISOR LABEL — absolute allocs/op comparison; never
# normalized (see header). Alloc counts are integers, so the percentage
# tolerance doubles as an absolute one on lean paths: a single injected
# allocation on a 2-alloc/op path is +50% and fails.
alloc_tolerance="${BENCH_ALLOC_TOLERANCE:-10}"
gate_allocs() {
    local name="$1" div="$2" label="$3" base cur
    base=$(allocs_of "$baseline" "$name")
    cur=$(allocs_of "$current" "$name")
    if [ -z "$base" ] || [ -z "$cur" ]; then
        echo "bench_compare: allocs_per_op for $name missing from snapshot" >&2
        fail=1
        return
    fi
    awk -v base="$base" -v cur="$cur" -v div="$div" -v tol="$alloc_tolerance" -v label="$label" '
    BEGIN {
        base /= div; cur /= div
        delta = (base > 0) ? (cur - base) / base * 100 : (cur > 0 ? 100 : 0)
        status = (delta > tol) ? "FAIL" : "ok"
        printf "%-42s %14.4g %14.4g %+8.1f%% %s\n", label, base, cur, delta, status
        exit (delta > tol) ? 1 : 0
    }' || fail=1
}

gate "BenchmarkVerifyTrusted/warm" 1 "VerifyTrusted/warm"
gate "BenchmarkFanOutSecure/recipients100" 100 "FanOutSecure per-recipient (N=100)"
gate "BenchmarkParseCold/canonical" 1 "ParseCold fast path"
gate "BenchmarkOpenSlice" 1 "OpenSlice receive"
gate "BenchmarkRelayDrainDurable/recipients100" 100 "RelayDrainDurable per-slice (N=100)"
gate_allocs "BenchmarkVerifyTrusted/warm" 1 "VerifyTrusted/warm allocs"
gate_allocs "BenchmarkFanOutSecure/recipients100" 100 "FanOutSecure per-recipient allocs (N=100)"
gate_allocs "BenchmarkParseCold/canonical" 1 "ParseCold fast path allocs"
gate_allocs "BenchmarkOpenSlice" 1 "OpenSlice receive allocs"
gate_allocs "BenchmarkRelayDrainDurable/recipients100" 100 "RelayDrainDurable per-slice allocs (N=100)"

# Telemetry instrument ceilings: the inline counter/histogram are what
# instrumented hot paths pay PER EVENT, so they are held to absolute
# nanosecond ceilings and exactly zero allocations — from the CURRENT
# snapshot only. No baseline comparison: "free" is an absolute claim,
# and a ceiling (unlike a relative gate) cannot ratchet upward across
# PRs. The ceilings are generous for slow runners; the alloc gate is
# the sharp edge.
telemetry_counter_max="${BENCH_TELEMETRY_COUNTER_MAX_NS:-50}"
telemetry_hist_max="${BENCH_TELEMETRY_HIST_MAX_NS:-150}"
gate_ceiling() {
    local name="$1" max="$2" label="$3" cur curAllocs
    cur=$(ns_of "$current" "$name")
    curAllocs=$(allocs_of "$current" "$name")
    if [ -z "$cur" ] || [ -z "$curAllocs" ]; then
        echo "bench_compare: $name missing from current snapshot" >&2
        fail=1
        return
    fi
    awk -v cur="$cur" -v max="$max" -v allocs="$curAllocs" -v label="$label" '
    BEGIN {
        bad = (cur > max) || (allocs > 0)
        status = bad ? "FAIL" : "ok"
        printf "%-42s %14s %14.4g %8sns %s\n", label, "<=" max "ns/0alloc", cur, allocs "a", status
        exit bad ? 1 : 0
    }' || fail=1
}
gate_ceiling "BenchmarkTelemetryOverhead/counter" "$telemetry_counter_max" "Telemetry counter Inc"
gate_ceiling "BenchmarkTelemetryOverhead/histogram" "$telemetry_hist_max" "Telemetry histogram Observe"

# Trace recorder ceilings, same absolute regime as the telemetry
# instruments. "unsampled" is the price EVERY traced operation pays when
# its trace lost the sampling decision — two clock reads, the seeded
# hash compare and one atomic load, held to exactly zero allocations.
# "sampled" adds the ring write under a shard mutex and must stay
# alloc-free too (spans drop into a preallocated ring). The ring read
# (/debug/traces snapshot of a full 4096-span buffer) allocates by
# design — it builds a sorted copy — so it is held to a wall-clock
# ceiling only.
trace_unsampled_max="${BENCH_TRACE_UNSAMPLED_MAX_NS:-500}"
trace_sampled_max="${BENCH_TRACE_SAMPLED_MAX_NS:-1000}"
trace_read_max="${BENCH_TRACE_READ_MAX_NS:-20000000}"
gate_ceiling "BenchmarkTraceOverhead/unsampled" "$trace_unsampled_max" "Trace span unsampled"
gate_ceiling "BenchmarkTraceOverhead/sampled" "$trace_sampled_max" "Trace span sampled"
gate_ceiling_ns() {
    local name="$1" max="$2" label="$3" cur
    cur=$(ns_of "$current" "$name")
    if [ -z "$cur" ]; then
        echo "bench_compare: $name missing from current snapshot" >&2
        fail=1
        return
    fi
    awk -v cur="$cur" -v max="$max" -v label="$label" '
    BEGIN {
        status = (cur > max) ? "FAIL" : "ok"
        printf "%-42s %14s %14.4g %9s %s\n", label, "<=" max "ns", cur, "", status
        exit (cur > max) ? 1 : 0
    }' || fail=1
}
gate_ceiling_ns "BenchmarkTraceOverhead/read" "$trace_read_max" "Trace ring snapshot (4096 spans)"

# Liveness and idempotency ceilings: what the session-resilience layer
# costs the broker per event. "renew" is the heartbeat's bookkeeping
# (every client pays it at TTL/3 cadence), "idem hit" is a retried
# mutation answered from the dedup window — both absolute ceilings
# with exactly zero allocations, same regime as the telemetry
# instruments: keeping a fleet's sessions alive must not cost GC
# pressure. "idem store" caches one acknowledged response; a map
# insert allocates by design, so it gets a wall-clock ceiling only.
lease_renew_max="${BENCH_LEASE_RENEW_MAX_NS:-1000}"
idem_hit_max="${BENCH_IDEM_HIT_MAX_NS:-1000}"
idem_store_max="${BENCH_IDEM_STORE_MAX_NS:-3000}"
gate_ceiling "BenchmarkLivenessOverhead/renew" "$lease_renew_max" "Lease renew (heartbeat bookkeeping)"
gate_ceiling "BenchmarkIdemOverhead/hit" "$idem_hit_max" "Idem dedup hit (retry fast path)"
gate_ceiling_ns "BenchmarkIdemOverhead/store" "$idem_store_max" "Idem dedup store"

# Audit journal ceilings: Record on the staged path is what every
# offense, refusal and auth outcome pays inline — one encode into a
# reused stage buffer, one SHA-256 to advance the chain head, one ring
# slot. Held to an absolute ceiling and exactly zero steady-state
# allocations, same regime as the telemetry instruments: attribution
# must not cost GC pressure. The fdatasync-per-append policy is the
# disk's price, not the encoder's — wall-clock ceiling only, sized for
# a slow fsync.
audit_append_max="${BENCH_AUDIT_APPEND_MAX_NS:-5000}"
audit_synced_max="${BENCH_AUDIT_SYNCED_MAX_NS:-20000000}"
gate_ceiling "BenchmarkAuditOverhead/append" "$audit_append_max" "Audit append (staged)"
gate_ceiling_ns "BenchmarkAuditOverhead/synced" "$audit_synced_max" "Audit append (fsync per record)"

# Persistence-tax ratio: durable drain vs in-memory drain, both from the
# CURRENT snapshot (same machine, same run), so this bound is absolute
# and canary-free. A blown ratio means the WAL path grew software
# overhead — syscalls, lock stalls or copies on the drain path.
durable_factor="${BENCH_DURABLE_FACTOR:-2}"
mem_ns=$(ns_of "$current" "BenchmarkRelayDelivery/recipients100")
dur_ns=$(ns_of "$current" "BenchmarkRelayDrainDurable/recipients100")
if [ -z "$mem_ns" ] || [ -z "$dur_ns" ]; then
    echo "bench_compare: relay drain metrics missing from current snapshot" >&2
    fail=1
else
    awk -v mem="$mem_ns" -v dur="$dur_ns" -v factor="$durable_factor" '
    BEGIN {
        ratio = dur / mem
        status = (ratio > factor) ? "FAIL" : "ok"
        printf "%-42s %14.4g %14.4g %7.2fx %s\n", "RelayDrainDurable / RelayDelivery", mem, dur, ratio, status
        exit (ratio > factor) ? 1 : 0
    }' || fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "bench_compare: REGRESSION — a gated metric regressed (>${tolerance}% ns or >${alloc_tolerance}% allocs) vs $baseline" >&2
    exit 1
fi
echo "bench_compare: within tolerance"
