// Command benchjoin regenerates experiment E1 (paper §5): the overhead
// of joining the JXTA-Overlay network through secureConnection +
// secureLogin compared to the original connect + login, plus the A1
// key-size ablation.
//
// Usage:
//
//	benchjoin [-iters 20] [-profile lan|wan|local] [-keysizes 1024,2048]
//
// Output is a paper-style table: plain time, secure time, overhead %.
// The paper reports ≈81.76% on its testbed; see EXPERIMENTS.md for the
// shape comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jxtaoverlay/internal/bench"
)

func main() {
	iters := flag.Int("iters", 20, "join iterations per variant")
	profileName := flag.String("profile", "lan", "link profile: local, lan, wan")
	keySizes := flag.String("keysizes", "1024", "comma-separated RSA modulus sizes (A1 ablation)")
	flag.Parse()

	profile, err := bench.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}

	table := &bench.Table{
		Title: fmt.Sprintf("E1: network join overhead (profile=%s, iters=%d)", *profileName, *iters),
		Header: []string{
			"rsa-bits", "plain", "secure", "overhead%",
			"plain-frames", "secure-frames", "plain-bytes", "secure-bytes",
		},
	}
	for _, sizeStr := range strings.Split(*keySizes, ",") {
		bits, err := strconv.Atoi(strings.TrimSpace(sizeStr))
		if err != nil {
			fatal(fmt.Errorf("bad key size %q: %w", sizeStr, err))
		}
		env, err := bench.NewEnv(bench.WithKeyBits(bits))
		if err != nil {
			fatal(err)
		}
		res, err := bench.RunJoin(env, profile, *iters)
		env.Close()
		if err != nil {
			fatal(err)
		}
		table.AddRow(
			strconv.Itoa(bits),
			res.PlainTotal.String(),
			res.SecureTotal.String(),
			fmt.Sprintf("%.2f", res.OverheadPct),
			strconv.FormatUint(res.Plain.Frames, 10),
			strconv.FormatUint(res.Secure.Frames, 10),
			strconv.FormatUint(res.Plain.Bytes, 10),
			strconv.FormatUint(res.Secure.Bytes, 10),
		)
	}
	if err := table.Fprint(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println("\npaper reference (1.20 GHz Pentium M, LAN): secure join overhead ~= 81.76%")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjoin:", err)
	os.Exit(1)
}
