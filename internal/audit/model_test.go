package audit

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestJournalTamperModel is the property test mirroring the relay WAL's
// crash model: random interleavings of appends, clean closes, crashes
// (torn tails) and reopens must always leave a journal that verifies
// clean — and when the run ends with a disk tamper (bit flip, reorder,
// rollback), verification against the remembered trust point must
// detect it. Every iteration is an independent seeded run, so a failure
// reports a reproducible seed.
func TestJournalTamperModel(t *testing.T) {
	kp, chain, trust := signer(t)
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			open := func() *Journal {
				j, err := Open(Options{
					Dir: dir, SyncInterval: -1, SegmentBytes: 1 << 10,
					CheckpointEvery: 8, Signer: kp, Chain: chain,
				})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				return j
			}

			j := open()
			var modelSeq uint64 // lower bound: a crash can only lose the torn record
			for step := 0; step < 8; step++ {
				switch rng.Intn(3) {
				case 0, 1: // append a burst
					n := 1 + rng.Intn(12)
					for i := 0; i < n; i++ {
						mustRecord(t, j, ev(i))
					}
					modelSeq = j.Seq()
				case 2: // restart — cleanly half the time, by crash otherwise
					if err := j.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}
					if rng.Intn(2) == 0 {
						if _, err := TearRecord(dir); err != nil && !errors.Is(err, ErrNoRecords) {
							t.Fatalf("tear: %v", err)
						}
						// The torn record (at most one) is lost.
						if modelSeq > 0 {
							modelSeq--
						}
					}
					j = open()
					if got := j.Seq(); got < modelSeq {
						t.Fatalf("reopen lost history: seq %d, model lower bound %d", got, modelSeq)
					}
					modelSeq = j.Seq()
				}
			}
			if err := j.Close(); err != nil {
				t.Fatalf("final close: %v", err)
			}

			// Remember the trust point the auditor would have scraped.
			rep, err := Verify(dir, VerifyOptions{Trust: trust})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("untampered journal must verify clean, got %v", rep.Fault)
			}
			expectHead, expectSeq := rep.Head, rep.LastSeq

			// Final act: tamper (or don't) and check the verdict.
			tampered := true
			switch rng.Intn(4) {
			case 0:
				tampered = false
			case 1:
				if _, err := FlipBit(dir); errors.Is(err, ErrNoRecords) {
					tampered = false
				} else if err != nil {
					t.Fatal(err)
				}
			case 2:
				if _, err := SwapRecords(dir); errors.Is(err, ErrNoRecords) {
					tampered = false
				} else if err != nil {
					t.Fatal(err)
				}
			case 3:
				if _, err := Rollback(dir); errors.Is(err, ErrNoRecords) {
					tampered = false
				} else if err != nil {
					t.Fatal(err)
				}
			}

			rep, err = Verify(dir, VerifyOptions{Trust: trust, ExpectHead: expectHead[:], ExpectSeq: expectSeq})
			if err != nil {
				t.Fatal(err)
			}
			if tampered && rep.OK() {
				t.Fatal("tampered journal verified clean")
			}
			if !tampered && !rep.OK() {
				t.Fatalf("untampered journal reported fault: %v", rep.Fault)
			}
		})
	}
}
