#!/usr/bin/env bash
# Run the repo benchmarks and append a machine-readable snapshot as
# BENCH_<n>.json — the next free index is picked automatically, so the
# performance trajectory across PRs stays on record without callers
# managing numbers. Knobs:
#   BENCH=<regex>      benchmark filter   (default: all)
#   BENCHTIME=<spec>   go -benchtime      (default: 1s)
#   BENCH_OUT=<path>   output path        (default: next free BENCH_<n>.json)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ -n "${BENCH_OUT:-}" ]; then
    out="$BENCH_OUT"
else
    n=0
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
fi

# Record effective parallelism so multi-core runs (e.g. the CI
# GOMAXPROCS=4 job) are distinguishable from the single-vCPU baseline.
gomaxprocs="${GOMAXPROCS:-$(nproc)}"

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# The root package holds the paper-reproduction benchmarks; the two
# internal packages export nothing bench-worthy through the public
# surface, so their hot-path ceilings (lease renewal, idem dedup) are
# benchmarked in-package.
go test -bench="${BENCH:-.}" -benchtime="${BENCHTIME:-1s}" -run='^$' . ./internal/core ./internal/broker | tee "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v goversion="$(go version)" -v gomaxprocs="$gomaxprocs" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"benchmarks\": [", date, goversion, gomaxprocs
    first = 1
}
/^cpu:/ { cpu = substr($0, 6); gsub(/^ +| +$/, "", cpu) }
/^Benchmark/ {
    name = $1; iters = $2
    # Strip the -<GOMAXPROCS> suffix Go appends on multi-core runs so
    # names stay comparable across machines (gomaxprocs is recorded
    # separately above).
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (!first) printf ","
    first = 0
    printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
    if (ns != "") printf ", \"ns_per_op\": %s", ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END {
    printf "\n  ],\n  \"cpu\": \"%s\"\n}\n", cpu
}' "$raw" > "$out"

echo "wrote $out"
