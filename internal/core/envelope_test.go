package core

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"

	"jxtaoverlay/internal/keys"
)

var (
	senderKP = mustKey(400)
	recvKP   = mustKey(401)
	evilKP   = mustKey(402)
)

func mustKey(seed int64) *keys.KeyPair {
	kp, err := keys.KeyPairFrom(rand.New(rand.NewSource(seed)), keys.DefaultRSABits)
	if err != nil {
		panic(err)
	}
	return kp
}

func TestSealOpenFull(t *testing.T) {
	sealed, err := Seal(senderKP, "urn:jxta:cbid-sender", "math", []byte("secret text"), recvKP.Public(), ModeFull)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	opened, err := Open(recvKP, sealed.Bytes())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if string(opened.Body) != "secret text" || opened.Group != "math" {
		t.Fatalf("opened = %+v", opened)
	}
	if !opened.Signed() {
		t.Fatal("full mode message not signed")
	}
	if err := opened.VerifySignature(senderKP.Public()); err != nil {
		t.Fatalf("VerifySignature: %v", err)
	}
	if err := opened.VerifySignature(evilKP.Public()); err == nil {
		t.Fatal("signature verified under wrong key")
	}
}

func TestOpenWrongRecipient(t *testing.T) {
	sealed, err := Seal(senderKP, "s", "g", []byte("m"), recvKP.Public(), ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(evilKP, sealed.Bytes()); err == nil {
		t.Fatal("Open with wrong key succeeded")
	}
}

func TestFullModeHidesPlaintext(t *testing.T) {
	body := []byte("the-plaintext-body-marker")
	sealed, err := Seal(senderKP, "s", "g", body, recvKP.Public(), ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed.Bytes(), body) {
		t.Fatal("plaintext visible in full-mode envelope")
	}
}

func TestSignOnlyMode(t *testing.T) {
	body := []byte("public but authenticated")
	sealed, err := Seal(senderKP, "s", "g", body, nil, ModeSign)
	if err != nil {
		t.Fatalf("Seal sign-only: %v", err)
	}
	// Sign-only mode is readable without any key.
	opened, err := Open(nil, sealed.Bytes())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !opened.Signed() {
		t.Fatal("sign-only message not signed")
	}
	if err := opened.VerifySignature(senderKP.Public()); err != nil {
		t.Fatal(err)
	}
}

func TestSignOnlyDetectsBodyTamper(t *testing.T) {
	sealed, err := Seal(senderKP, "s", "g", []byte("abc"), nil, ModeSign)
	if err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), sealed.Bytes()...)
	// The raw body is the trailing bytes of a sign-only envelope;
	// flipping one must trip the digest check.
	wire[len(wire)-1] ^= 0x01
	if _, err := Open(nil, wire); err != ErrBodyDigest {
		t.Fatalf("Open(tampered body) = %v, want ErrBodyDigest", err)
	}
}

func TestSignOnlyDetectsHeaderTamper(t *testing.T) {
	sealed, err := Seal(senderKP, "urn:jxta:cbid-real", "g", []byte("abc"), nil, ModeSign)
	if err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), sealed.Bytes()...)
	// Rewrite the claimed sender inside the header (same length so the
	// framing stays valid); the signature must then fail.
	idx := bytes.Index(wire, []byte("urn:jxta:cbid-real"))
	if idx < 0 {
		t.Fatal("sender marker not found")
	}
	copy(wire[idx:], "urn:jxta:cbid-fake")
	opened, err := Open(nil, wire)
	if err != nil {
		return // structural rejection is detection too
	}
	if err := opened.VerifySignature(senderKP.Public()); err == nil {
		t.Fatal("tampered sign-only header verified")
	}
}

func TestEncryptOnlyMode(t *testing.T) {
	sealed, err := Seal(nil, "s", "g", []byte("private"), recvKP.Public(), ModeEncrypt)
	if err != nil {
		t.Fatalf("Seal encrypt-only: %v", err)
	}
	opened, err := Open(recvKP, sealed.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if opened.Signed() {
		t.Fatal("encrypt-only message claims a signature")
	}
	if err := opened.VerifySignature(senderKP.Public()); err != ErrNoSignature {
		t.Fatalf("VerifySignature = %v, want ErrNoSignature", err)
	}
}

func TestSealParameterChecks(t *testing.T) {
	if _, err := Seal(nil, "s", "g", []byte("m"), recvKP.Public(), ModeFull); err == nil {
		t.Fatal("full mode without signer succeeded")
	}
	if _, err := Seal(senderKP, "s", "g", []byte("m"), nil, ModeFull); err == nil {
		t.Fatal("full mode without recipient succeeded")
	}
	if _, err := Seal(senderKP, "s", "g", []byte("m"), recvKP.Public(), Mode('?')); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestOpenMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":      nil,
		"short":      {byte(ModeFull)},
		"bad mode":   {'?', 1, 2, 3},
		"not an env": append([]byte{byte(ModeFull)}, []byte("garbage")...),
		"bad doc":    append([]byte{byte(ModeSign)}, []byte("<NotSecureMessage></NotSecureMessage>")...),
	}
	for name, wire := range cases {
		if _, err := Open(recvKP, wire); err == nil {
			t.Errorf("Open(%s) succeeded", name)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeFull.String() != "sign+encrypt" || ModeSign.String() != "sign-only" || ModeEncrypt.String() != "encrypt-only" {
		t.Fatal("mode strings changed")
	}
}

func TestPropertySealOpenRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10}
	prop := func(body []byte, groupRaw []byte) bool {
		// Group names are hex-encoded: XML cannot carry arbitrary bytes in
		// text nodes, and real group names are identifiers.
		group := hex.EncodeToString(groupRaw)
		sealed, err := Seal(senderKP, "urn:jxta:cbid-s", group, body, recvKP.Public(), ModeFull)
		if err != nil {
			return false
		}
		opened, err := Open(recvKP, sealed.Bytes())
		if err != nil {
			return false
		}
		return bytes.Equal(opened.Body, body) &&
			opened.Group == group &&
			opened.VerifySignature(senderKP.Public()) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
