package cred

import (
	"math/rand"
	"testing"
	"time"

	"jxtaoverlay/internal/keys"
)

var (
	adminKP  = mustKey(100)
	brokerKP = mustKey(101)
	clientKP = mustKey(102)
	otherKP  = mustKey(103)
)

func mustKey(seed int64) *keys.KeyPair {
	kp, err := keys.KeyPairFrom(rand.New(rand.NewSource(seed)), keys.DefaultRSABits)
	if err != nil {
		panic(err)
	}
	return kp
}

func mustID(t *testing.T, kp *keys.KeyPair) keys.PeerID {
	t.Helper()
	id, err := keys.CBID(kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func setup(t *testing.T) (adm *Credential, br *Credential, cl *Credential) {
	t.Helper()
	adm, err := SelfSigned(adminKP, "admin", time.Hour)
	if err != nil {
		t.Fatalf("SelfSigned: %v", err)
	}
	br, err = Issue(adminKP, adm.Subject, mustID(t, brokerKP), "broker-1", RoleBroker, brokerKP.Public(), time.Hour)
	if err != nil {
		t.Fatalf("Issue broker: %v", err)
	}
	cl, err = Issue(brokerKP, br.Subject, mustID(t, clientKP), "alice", RoleClient, clientKP.Public(), time.Hour)
	if err != nil {
		t.Fatalf("Issue client: %v", err)
	}
	return adm, br, cl
}

func TestSelfSignedVerifies(t *testing.T) {
	adm, _, _ := setup(t)
	if adm.Subject != adm.Issuer {
		t.Fatal("self-signed credential has distinct issuer")
	}
	if err := adm.Verify(adminKP.Public(), time.Now()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := adm.VerifyCBID(); err != nil {
		t.Fatalf("VerifyCBID: %v", err)
	}
}

func TestIssueAndVerify(t *testing.T) {
	_, br, _ := setup(t)
	if err := br.Verify(adminKP.Public(), time.Now()); err != nil {
		t.Fatalf("broker credential Verify: %v", err)
	}
	if err := br.Verify(otherKP.Public(), time.Now()); err == nil {
		t.Fatal("broker credential verified under wrong issuer key")
	}
	if br.Role != RoleBroker {
		t.Fatalf("role = %q", br.Role)
	}
}

func TestVerifyExpired(t *testing.T) {
	_, br, _ := setup(t)
	if err := br.Verify(adminKP.Public(), time.Now().Add(2*time.Hour)); err != ErrExpired {
		t.Fatalf("Verify after expiry = %v, want ErrExpired", err)
	}
	if err := br.Verify(adminKP.Public(), time.Now().Add(-2*time.Hour)); err != ErrExpired {
		t.Fatalf("Verify before NotBefore = %v, want ErrExpired", err)
	}
}

func TestDocumentParseRoundTrip(t *testing.T) {
	_, _, cl := setup(t)
	doc, err := cl.Document()
	if err != nil {
		t.Fatalf("Document: %v", err)
	}
	back, err := Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !cl.Equal(back) {
		t.Fatal("round trip credential mismatch")
	}
	// Signature must survive the round trip and still verify.
	if err := back.Verify(brokerKP.Public(), time.Now()); err != nil {
		t.Fatalf("Verify after round trip: %v", err)
	}
}

func TestParseRejectsTamper(t *testing.T) {
	_, _, cl := setup(t)
	doc, err := cl.Document()
	if err != nil {
		t.Fatalf("Document: %v", err)
	}
	// Tamper with the subject name (privilege escalation attempt).
	doc.Child("SubjectName").Text = "mallory"
	back, err := Parse(doc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := back.Verify(brokerKP.Public(), time.Now()); err != ErrBadSignature {
		t.Fatalf("Verify tampered credential = %v, want ErrBadSignature", err)
	}
}

func TestParseErrors(t *testing.T) {
	_, _, cl := setup(t)
	good, _ := cl.Document()

	if _, err := Parse(nil); err == nil {
		t.Fatal("Parse(nil) succeeded")
	}

	wrongName := good.Clone()
	wrongName.Name = "NotACredential"
	if _, err := Parse(wrongName); err == nil {
		t.Fatal("Parse accepted wrong element name")
	}

	noKey := good.Clone()
	noKey.Child("Key").Text = "###"
	if _, err := Parse(noKey); err == nil {
		t.Fatal("Parse accepted malformed key")
	}

	badTime := good.Clone()
	badTime.Child("NotAfter").Text = "not-a-time"
	if _, err := Parse(badTime); err == nil {
		t.Fatal("Parse accepted malformed NotAfter")
	}

	noSig := good.Clone()
	noSig.RemoveChildren("Signature")
	if _, err := Parse(noSig); err == nil {
		t.Fatal("Parse accepted credential without signature")
	}
}

func TestCBIDBindingDetectsKeySubstitution(t *testing.T) {
	// An attacker reuses alice's subject ID with their own key; the
	// credential can't be re-signed, but even if the issuer were tricked,
	// the CBID check still fails.
	_, br, _ := setup(t)
	forged, err := Issue(brokerKP, br.Subject, mustID(t, clientKP), "alice", RoleClient, otherKP.Public(), time.Hour)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if err := forged.VerifyCBID(); err == nil {
		t.Fatal("VerifyCBID accepted substituted key")
	}
}

func TestTrustStoreVerify(t *testing.T) {
	adm, br, cl := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatalf("NewTrustStore: %v", err)
	}
	if err := ts.Verify(br, time.Now()); err != nil {
		t.Fatalf("Verify broker: %v", err)
	}
	// Client credential is not verifiable until the broker is registered
	// as an issuer.
	if err := ts.Verify(cl, time.Now()); err == nil {
		t.Fatal("client credential verified without issuer registration")
	}
	if err := ts.AddIssuer(br); err != nil {
		t.Fatalf("AddIssuer: %v", err)
	}
	if err := ts.Verify(cl, time.Now()); err != nil {
		t.Fatalf("Verify client after AddIssuer: %v", err)
	}
}

func TestTrustStoreVerifyChain(t *testing.T) {
	adm, br, cl := setup(t)
	ts, err := NewTrustStore(adm)
	if err != nil {
		t.Fatalf("NewTrustStore: %v", err)
	}
	if err := ts.VerifyChain(time.Now(), cl, br); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	// After a chain verification the broker is cached as issuer.
	if _, ok := ts.IssuerKey(br.Subject); !ok {
		t.Fatal("chain verification did not cache intermediate issuer")
	}
}

func TestTrustStoreVerifyChainBroken(t *testing.T) {
	adm, br, _ := setup(t)
	ts, _ := NewTrustStore(adm)

	// Leaf issued by an entity that is not in the chain.
	stray, err := Issue(otherKP, keys.LegacyPeerID("rogue"), mustID(t, clientKP), "alice", RoleClient, clientKP.Public(), time.Hour)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if err := ts.VerifyChain(time.Now(), stray, br); err == nil {
		t.Fatal("VerifyChain accepted broken chain")
	}
	if err := ts.VerifyChain(time.Now()); err == nil {
		t.Fatal("VerifyChain accepted empty chain")
	}
}

func TestTrustStoreRejectsFakeAnchor(t *testing.T) {
	// Not self-signed.
	_, br, _ := setup(t)
	if _, err := NewTrustStore(br); err == nil {
		t.Fatal("NewTrustStore accepted non-self-signed anchor")
	}
}

func TestTrustStoreRejectsFakeBrokerCredential(t *testing.T) {
	// The fake-broker scenario: a credential self-made by the attacker,
	// not issued by the administrator.
	adm, _, _ := setup(t)
	ts, _ := NewTrustStore(adm)
	fakeID := mustID(t, otherKP)
	fake, err := Issue(otherKP, fakeID, fakeID, "evil-broker", RoleBroker, otherKP.Public(), time.Hour)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if err := ts.Verify(fake, time.Now()); err == nil {
		t.Fatal("trust store verified a self-issued broker credential")
	}
}

func TestIssuerKeyUnknown(t *testing.T) {
	adm, _, _ := setup(t)
	ts, _ := NewTrustStore(adm)
	if _, ok := ts.IssuerKey("urn:jxta:cbid-deadbeef"); ok {
		t.Fatal("IssuerKey returned key for unknown id")
	}
	if got := len(ts.Anchors()); got != 1 {
		t.Fatalf("Anchors() len = %d", got)
	}
}
