package xdsig

import (
	"sync"
	"testing"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
)

func TestVerifyCacheHit(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	vc := NewVerifyCache(f.ts, 16)
	now := time.Now()

	res1, err := vc.VerifyTrusted(doc, now)
	if err != nil {
		t.Fatalf("cold verify: %v", err)
	}
	res2, err := vc.VerifyTrusted(doc, now)
	if err != nil {
		t.Fatalf("warm verify: %v", err)
	}
	if res1 != res2 {
		t.Fatal("warm verify did not return the cached result")
	}
	if hits, misses := vc.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if res2.Signer.SubjectName != "alice" {
		t.Fatalf("cached signer = %q", res2.Signer.SubjectName)
	}
}

func TestVerifyCacheRejectsTamperAfterWarm(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	vc := NewVerifyCache(f.ts, 16)
	now := time.Now()
	if _, err := vc.VerifyTrusted(doc, now); err != nil {
		t.Fatal(err)
	}
	// Tamper with the already-cached document: the digest changes, the
	// lookup misses, and the full path must reject it.
	doc.Child("Id").SetText("urn:jxta:pipe-evil")
	if _, err := vc.VerifyTrusted(doc, now); err != ErrDigestMismatch {
		t.Fatalf("tampered verify through cache = %v, want ErrDigestMismatch", err)
	}
}

func TestVerifyCacheHonorsExpiry(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	vc := NewVerifyCache(f.ts, 16)
	now := time.Now()
	if _, err := vc.VerifyTrusted(doc, now); err != nil {
		t.Fatal(err)
	}
	// Fixture credentials live one hour; two hours later the cached
	// verdict must NOT resurrect the chain.
	if _, err := vc.VerifyTrusted(doc, now.Add(2*time.Hour)); err == nil {
		t.Fatal("cache accepted an expired credential chain")
	}
	// And before NotBefore the verdict must not apply either.
	if _, err := vc.VerifyTrusted(doc, now.Add(-2*time.Hour)); err == nil {
		t.Fatal("cache accepted a not-yet-valid credential chain")
	}
	// Back inside the window it verifies again (fresh entry).
	if _, err := vc.VerifyTrusted(doc, now); err != nil {
		t.Fatalf("re-verify inside window: %v", err)
	}
}

func TestVerifyCacheUntrustedChainNotCached(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	// Chain signed by mallory's self-issued credential: never trusted.
	malID, _ := keys.CBID(mallory.Public())
	malCred, err := cred.Issue(mallory, malID, malID, "mallory", cred.RoleClient, mallory.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := Sign(doc, mallory, malCred); err != nil {
		t.Fatal(err)
	}
	vc := NewVerifyCache(f.ts, 16)
	now := time.Now()
	for i := 0; i < 2; i++ {
		if _, err := vc.VerifyTrusted(doc, now); err == nil {
			t.Fatalf("attempt %d: untrusted chain accepted", i)
		}
	}
	if hits, _ := vc.Stats(); hits != 0 {
		t.Fatalf("failure was served from cache: %d hits", hits)
	}
}

func TestVerifyCacheUnsignedDocument(t *testing.T) {
	f := newFixture(t)
	vc := NewVerifyCache(f.ts, 16)
	if _, err := vc.VerifyTrusted(pipeAdv(), time.Now()); err != ErrNoSignature {
		t.Fatalf("unsigned doc through cache = %v, want ErrNoSignature", err)
	}
	if _, err := vc.VerifyTrusted(nil, time.Now()); err == nil {
		t.Fatal("nil doc accepted")
	}
}

// TestVerifyCacheConcurrent hammers one cache with valid and tampered
// documents from many goroutines; run with -race.
func TestVerifyCacheConcurrent(t *testing.T) {
	f := newFixture(t)
	good := pipeAdv()
	if err := Sign(good, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	bad := good.Clone()
	bad.Child("Id").SetText("urn:jxta:pipe-evil")

	vc := NewVerifyCache(f.ts, 16)
	now := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := vc.VerifyTrusted(good, now); err != nil {
					errs <- err
					return
				}
				if _, err := vc.VerifyTrusted(bad, now); err == nil {
					errs <- ErrDigestMismatch
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent cache verification: %v", err)
	}
	hits, _ := vc.Stats()
	if hits == 0 {
		t.Fatal("concurrent verification never hit the cache")
	}
}
