package filesvc_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/filesvc"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

type harness struct {
	t   *testing.T
	net *simnet.Network
	br  *broker.Broker
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "lab")
	db.Register("bob", "pw", "lab")
	br, err := broker.New(broker.Config{
		Name: "b", PeerID: keys.LegacyPeerID("b"), Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(br.Close)
	return &harness{t: t, net: net, br: br}
}

func (h *harness) peer(alias string) (*client.Client, *filesvc.Service) {
	h.t.Helper()
	cl, err := client.New(h.net, membership.NewNone(), alias)
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(cl.Close)
	ctx := testCtx(h.t)
	if err := cl.Connect(ctx, h.br.PeerID()); err != nil {
		h.t.Fatal(err)
	}
	if err := cl.Login(ctx, "pw"); err != nil {
		h.t.Fatal(err)
	}
	return cl, filesvc.New(cl)
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestShareSearchDownload(t *testing.T) {
	h := newHarness(t)
	alice, aliceFiles := h.peer("alice")
	_, bobFiles := h.peer("bob")
	ctx := testCtx(t)

	content := bytes.Repeat([]byte("lecture material "), 5000) // ~85 KB, multi-chunk
	if err := aliceFiles.Share(ctx, "lab", "lecture.pdf", content); err != nil {
		t.Fatalf("Share: %v", err)
	}

	results, err := bobFiles.Search(ctx, "lecture", "lab")
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(results) != 1 || results[0].Peer != alice.PeerID() {
		t.Fatalf("results = %+v", results)
	}
	if results[0].File.Size != int64(len(content)) {
		t.Fatalf("size = %d", results[0].File.Size)
	}

	got, err := bobFiles.Download(ctx, alice.PeerID(), "lecture.pdf")
	if err != nil {
		t.Fatalf("Download: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("downloaded content differs")
	}
}

func TestDownloadEmitsEvent(t *testing.T) {
	h := newHarness(t)
	alice, aliceFiles := h.peer("alice")
	bob, bobFiles := h.peer("bob")
	ctx := testCtx(t)
	col := events.NewCollector(bob.Bus())

	if err := aliceFiles.Share(ctx, "lab", "tiny.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := bobFiles.Download(ctx, alice.PeerID(), "tiny.txt"); err != nil {
		t.Fatal(err)
	}
	e, ok := col.WaitFor(events.FileReceived, 5*time.Second)
	if !ok {
		t.Fatal("no FileReceived event")
	}
	if e.Attr("name") != "tiny.txt" || e.Attr("size") != "1" {
		t.Fatalf("event = %+v", e)
	}
}

func TestDownloadMissing(t *testing.T) {
	h := newHarness(t)
	alice, _ := h.peer("alice")
	_, bobFiles := h.peer("bob")
	ctx := testCtx(t)
	if _, err := bobFiles.Download(ctx, alice.PeerID(), "nope.bin"); err == nil {
		t.Fatal("Download of unshared file succeeded")
	}
}

func TestUnshare(t *testing.T) {
	h := newHarness(t)
	alice, aliceFiles := h.peer("alice")
	_, bobFiles := h.peer("bob")
	ctx := testCtx(t)
	if err := aliceFiles.Share(ctx, "lab", "doc.txt", []byte("d")); err != nil {
		t.Fatal(err)
	}
	if err := aliceFiles.Unshare(ctx, "lab", "doc.txt"); err != nil {
		t.Fatal(err)
	}
	if got := aliceFiles.Shared("lab"); len(got) != 0 {
		t.Fatalf("Shared = %v", got)
	}
	if _, err := bobFiles.Download(ctx, alice.PeerID(), "doc.txt"); err == nil {
		t.Fatal("Download of unshared file succeeded")
	}
}

func TestSearchKeywordFilter(t *testing.T) {
	h := newHarness(t)
	_, aliceFiles := h.peer("alice")
	_, bobFiles := h.peer("bob")
	ctx := testCtx(t)
	aliceFiles.Share(ctx, "lab", "physics-notes.txt", []byte("a"))
	aliceFiles.Share(ctx, "lab", "art-history.txt", []byte("b"))

	res, err := bobFiles.Search(ctx, "physics", "lab")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].File.Name != "physics-notes.txt" {
		t.Fatalf("res = %+v", res)
	}
	all, err := bobFiles.Search(ctx, "", "lab")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("all = %+v", all)
	}
	none, err := bobFiles.Search(ctx, "chemistry", "lab")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("none = %+v", none)
	}
}

func TestShareEmptyNameRejected(t *testing.T) {
	h := newHarness(t)
	_, files := h.peer("alice")
	if err := files.Share(testCtx(t), "lab", "", []byte("x")); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestEmptyFileRoundTrip(t *testing.T) {
	h := newHarness(t)
	alice, aliceFiles := h.peer("alice")
	_, bobFiles := h.peer("bob")
	ctx := testCtx(t)
	if err := aliceFiles.Share(ctx, "lab", "empty.bin", nil); err != nil {
		t.Fatal(err)
	}
	got, err := bobFiles.Download(ctx, alice.PeerID(), "empty.bin")
	if err != nil {
		t.Fatalf("Download empty: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes", len(got))
	}
}

func TestExactChunkBoundary(t *testing.T) {
	h := newHarness(t)
	alice, aliceFiles := h.peer("alice")
	_, bobFiles := h.peer("bob")
	ctx := testCtx(t)
	content := bytes.Repeat([]byte{0xAB}, filesvc.ChunkSize*2) // exactly 2 chunks
	if err := aliceFiles.Share(ctx, "lab", "boundary.bin", content); err != nil {
		t.Fatal(err)
	}
	got, err := bobFiles.Download(ctx, alice.PeerID(), "boundary.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("boundary file corrupted")
	}
}
