package scenario

import (
	"encoding/json"
	"testing"

	"jxtaoverlay/internal/telemetry"
)

// Each scenario runs at a small scale and must finish with an empty
// anomaly list: the scenarios are the CI gate, so a red run here means
// either the stack or the gate itself regressed.
func TestScenariosCleanAtSmallScale(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sum, err := Run(name, Options{Clients: 5, Rounds: 2, Profile: "local"})
			if err != nil {
				t.Fatal(err)
			}
			if len(sum.Anomalies) != 0 {
				t.Fatalf("anomalies: %v", sum.Anomalies)
			}
			if sum.Scenario != name {
				t.Fatalf("summary names %q", sum.Scenario)
			}
			if sum.Delivered == 0 {
				t.Fatal("no delivered work recorded")
			}
			if sum.DurationSec <= 0 || sum.RoundsPerSec <= 0 {
				t.Fatalf("throughput not measured: dur=%v rps=%v", sum.DurationSec, sum.RoundsPerSec)
			}
		})
	}
}

// The JSON field set is a CI contract: jq expressions in the workflow
// read these exact keys, so their presence is pinned here. New fields
// may be added; these may never go away.
func TestSummarySchemaStable(t *testing.T) {
	sum, err := Run("join-storm", Options{Clients: 3, Profile: "local"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"scenario", "profile", "clients", "rounds", "duration_sec",
		"rounds_per_sec", "delivered", "p50_delivery_ms", "p99_delivery_ms",
		"drops", "hostile_rejected", "alerts", "anomalies",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("summary JSON lost contract key %q", key)
		}
	}
	// The gate key must round-trip as an array even when empty — a null
	// would make `jq '.anomalies | length'` lie.
	if _, ok := m["anomalies"].([]any); !ok {
		t.Errorf("anomalies is %T, want JSON array", m["anomalies"])
	}
}

// A run with a registry wired in exposes the stack's counters through
// the telemetry snapshot — the same path `overlaysim -metrics` serves.
func TestScenarioFeedsTelemetry(t *testing.T) {
	reg := telemetry.New()
	sum, err := Run("drain-spike", Options{Clients: 5, Rounds: 2, Profile: "local", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", sum.Anomalies)
	}
	// Collectors registered by the run read live state; after close they
	// still answer from the final counters.
	flushed, ok := reg.Get("relay_delivered_flushed_total")
	if !ok {
		t.Fatal("relay collectors not registered")
	}
	if flushed == 0 {
		t.Fatal("drain-spike flushed nothing through the relay")
	}
	if v, ok := reg.Get("broker_ops_dispatched_total"); !ok || v == 0 {
		t.Fatalf("broker collectors not live: %v %v", v, ok)
	}
}

func TestUnknownScenarioRejected(t *testing.T) {
	if _, err := Run("no-such-scenario", Options{}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
