package scenario

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"jxtaoverlay/internal/admission"
	"jxtaoverlay/internal/backoff"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
)

// joinStorm brings the whole population up at once: every client runs
// secureConnection + secureLogin concurrently against one broker. The
// summary's latency quantiles are per-join wall times and Delivered is
// the count of successful joins — the scenario fails if any peer is
// turned away or the storm trips a security alert.
func joinStorm(ctx context.Context, opt Options, profile simnet.LinkProfile) (*Summary, error) {
	n := opt.Clients
	if n <= 0 {
		n = 20
	}
	sum := &Summary{Scenario: "join-storm", Profile: opt.Profile, Clients: n, Rounds: 1,
		Drops: map[string]int64{}, Anomalies: []string{}}
	s, err := newStack(n, profile, nil, core.RelayConfig{}, 0, opt)
	if err != nil {
		return nil, err
	}
	defer s.close()

	var (
		mu       sync.Mutex
		joinLat  []time.Duration
		failures []string
		wg       sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			_, err := s.join(ctx, i, nil)
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures = append(failures, err.Error())
				return
			}
			joinLat = append(joinLat, d)
		}(i)
	}
	wg.Wait()
	dur := time.Since(start)

	sum.DurationSec = dur.Seconds()
	sum.Delivered = int64(len(joinLat))
	if dur > 0 {
		sum.RoundsPerSec = float64(len(joinLat)) / dur.Seconds()
	}
	sum.P50DeliveryMS = quantileMS(joinLat, 0.50)
	sum.P99DeliveryMS = quantileMS(joinLat, 0.99)
	for _, f := range failures {
		sum.anomaly("join failed: %s", f)
	}
	if on := s.br.Stats().PeersOnline; on != len(joinLat) {
		sum.anomaly("broker sees %d peers online, %d logged in", on, len(joinLat))
	}
	finish(sum, s)
	return sum, nil
}

// drainSpike fills the relay's offline queues and then releases them
// all at once: a third of the peers log out, the rest upload their
// rounds (slicing queues the absentees' copies), and the absentees
// re-login simultaneously — the drain spike. Delivery latency for a
// queued slice spans its owner's offline time by design; the gate is
// that every addressed slice arrives and nothing is shed.
func drainSpike(ctx context.Context, opt Options, profile simnet.LinkProfile) (*Summary, error) {
	n := opt.Clients
	if n <= 0 {
		n = 12
	}
	rounds := opt.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	sum := &Summary{Scenario: "drain-spike", Profile: opt.Profile, Clients: n, Rounds: rounds,
		Drops: map[string]int64{}, Anomalies: []string{}}
	// Size each offline queue to the whole intended backlog: every
	// online sender addresses every churned peer each round, and an
	// overflow drop here must mean a relay bug, not an undersized
	// scenario default.
	relayCfg := core.RelayConfig{}
	relayCfg.QueueCap = n*rounds + 16
	// Durable queues: the spike runs over a real WAL so traced runs show
	// the append/fsync stages a production drain would pay, and the
	// recovery path stays exercised by a scenario, not just unit tests.
	walDir, err := os.MkdirTemp("", "drain-spike-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	relayCfg.WAL.Dir = walDir
	s, err := newStack(n, profile, nil, relayCfg, 0, opt)
	if err != nil {
		return nil, err
	}
	defer s.close()

	rec := newRecorder()
	clients := make([]*core.SecureClient, n)
	for i := 0; i < n; i++ {
		if clients[i], err = s.join(ctx, i, rec); err != nil {
			return nil, err
		}
	}
	var churned []int
	for i := 0; i < n; i++ {
		if i%3 == 2 {
			churned = append(churned, i)
		}
	}
	for _, i := range churned {
		if err := clients[i].Logout(ctx); err != nil {
			return nil, fmt.Errorf("%s logout: %w", user(i), err)
		}
	}

	start := time.Now()
	uploads := 0
	for round := 0; round < rounds; round++ {
		for i, sc := range clients {
			if i%3 == 2 {
				continue
			}
			text := fmt.Sprintf("round %d from %s", round, user(i))
			if _, _, err := sc.SecureMsgPeerGroupRelay(ctx, "plenary", text); err != nil {
				sum.anomaly("%s round %d upload: %v", user(i), round, err)
				continue
			}
			uploads++
		}
	}

	// The spike: every churned peer returns at once; the relay's shard
	// workers drain each queue on the presence event.
	var wg sync.WaitGroup
	for _, i := range churned {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc := clients[i]
			if err := sc.SecureConnection(ctx, s.br.PeerID()); err != nil {
				sum.anomaly("%s re-connect: %v", user(i), err)
				return
			}
			if err := sc.SecureLogin(ctx, pw(i)); err != nil {
				sum.anomaly("%s re-login: %v", user(i), err)
			}
		}(i)
	}
	wg.Wait()

	// Every upload addresses all other group members exactly once.
	senders := n - len(churned)
	expected := int64(uploads * (n - 1))
	if !waitFor(ctx, 30*time.Second, func() bool { return rec.count() >= expected && s.rly.QueuedTotal() == 0 }) {
		// fall through: the shortfall is reported below
	}
	dur := time.Since(start)

	sum.DurationSec = dur.Seconds()
	if dur > 0 {
		sum.RoundsPerSec = float64(uploads) / dur.Seconds()
	}
	sum.Delivered = rec.count()
	sum.P50DeliveryMS, sum.P99DeliveryMS = deliveryQuantiles(opt.Registry)
	if got := rec.count(); got != expected {
		sum.anomaly("delivered %d of %d addressed slices (%d senders)", got, expected, senders)
	}
	if residual := s.rly.QueuedTotal(); residual != 0 {
		sum.anomaly("%d slices still queued after drain", residual)
	}
	finish(sum, s)
	return sum, nil
}

// hostileDocs are the parser attack corpus: each would cost an
// expanding or recursing parser far more than its wire size, and each
// must be refused by the broker's canonical grammar at the scanned
// prefix. They cycle through the flood.
func hostileDocs() [][]byte {
	var bomb strings.Builder
	bomb.WriteString(`<!DOCTYPE lolz [<!ENTITY lol "lol">`)
	for i := 1; i <= 9; i++ {
		fmt.Fprintf(&bomb, `<!ENTITY lol%d "`, i)
		for j := 0; j < 10; j++ {
			fmt.Fprintf(&bomb, "&lol%d;", i-1)
		}
		bomb.WriteString(`">`)
	}
	bomb.WriteString("]><PipeAdvertisement><Id>&lol9;</Id></PipeAdvertisement>")
	return [][]byte{
		[]byte(bomb.String()),
		[]byte(strings.Repeat("<A>", 50_000)),
		[]byte(`<?xml version="1.0"?><PipeAdvertisement></PipeAdvertisement>`),
		[]byte("<PipeAdvertisement><!-- smuggled --><Id>x</Id></PipeAdvertisement>"),
		[]byte("\x00\xff\xfenot xml at all"),
		[]byte("<PipeAdvertisement><Id>unclosed"),
	}
}

// parseFlood hammers the broker's publishAdv surface with malformed
// documents from one logged-in credential while a bystander keeps
// doing legitimate work. The contract: every hostile document is
// refused (none reaches the advertisement cache), and the bystander
// never notices the flood.
func parseFlood(ctx context.Context, opt Options, profile simnet.LinkProfile) (*Summary, error) {
	n := opt.Clients
	if n <= 0 {
		n = 4
	}
	if n < 2 {
		n = 2
	}
	floods := opt.Rounds
	if floods <= 0 {
		floods = 60
	}
	sum := &Summary{Scenario: "parse-flood", Profile: opt.Profile, Clients: n, Rounds: floods,
		Drops: map[string]int64{}, Anomalies: []string{}}
	// Admission stays on but far above the flood rate: the scenario
	// isolates the parser, not the rate limiter.
	s, err := newStack(n, profile, &admission.Config{Rate: 10_000, Burst: 10_000}, core.RelayConfig{}, 0, opt)
	if err != nil {
		return nil, err
	}
	defer s.close()

	rec := newRecorder()
	clients := make([]*core.SecureClient, n)
	for i := 0; i < n; i++ {
		if clients[i], err = s.join(ctx, i, rec); err != nil {
			return nil, err
		}
	}
	flooder, bystander := clients[0], clients[1]
	advsBefore := s.br.Stats().AdvsPublished
	docs := hostileDocs()

	var bystanderLat []time.Duration
	start := time.Now()
	for i := 0; i < floods; i++ {
		msg := endpoint.NewMessage().
			AddString(proto.ElemOp, proto.OpPublishAdv).
			AddXML(proto.ElemAdv, docs[i%len(docs)])
		if _, err := flooder.Call(ctx, msg); err == nil {
			sum.anomaly("hostile document %d accepted by publishAdv", i)
		} else {
			sum.HostileRejected++
		}
		// Interleave a legitimate op: the flood must not starve it. The
		// final iteration always probes, so even a tiny flood measures
		// at least one bystander round trip.
		if i%10 == 5 || i == floods-1 {
			t0 := time.Now()
			if _, err := bystander.GetOnlinePeers(ctx, "plenary"); err != nil {
				sum.anomaly("bystander op failed mid-flood: %v", err)
			} else {
				bystanderLat = append(bystanderLat, time.Since(t0))
			}
		}
	}
	dur := time.Since(start)

	sum.DurationSec = dur.Seconds()
	if dur > 0 {
		sum.RoundsPerSec = float64(floods) / dur.Seconds()
	}
	// Delivered is the bystander's successful ops; its quantiles show
	// what the flood cost legitimate traffic.
	sum.Delivered = int64(len(bystanderLat))
	sum.P50DeliveryMS = quantileMS(bystanderLat, 0.50)
	sum.P99DeliveryMS = quantileMS(bystanderLat, 0.99)
	if accepted := s.br.Stats().AdvsPublished - advsBefore; accepted != 0 {
		sum.anomaly("%d hostile advertisements entered the cache", accepted)
	}
	finish(sum, s)
	return sum, nil
}

// slowSender degrades one peer's link (high latency, trickle
// bandwidth) while the whole population exchanges relayed rounds. The
// contract is isolation: the fast peers' traffic completes in full and
// their latency reflects their own links, not the slow peer's.
func slowSender(ctx context.Context, opt Options, profile simnet.LinkProfile) (*Summary, error) {
	n := opt.Clients
	if n <= 0 {
		n = 8
	}
	if n < 3 {
		n = 3
	}
	rounds := opt.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	sum := &Summary{Scenario: "slow-sender", Profile: opt.Profile, Clients: n, Rounds: rounds,
		Drops: map[string]int64{}, Anomalies: []string{}}
	// Everyone stays online, but a recipient mid-drain can still queue
	// briefly; size the queues to the full round volume anyway.
	relayCfg := core.RelayConfig{}
	relayCfg.QueueCap = n*rounds + 16
	s, err := newStack(n, profile, nil, relayCfg, 0, opt)
	if err != nil {
		return nil, err
	}
	defer s.close()

	rec := newRecorder()
	clients := make([]*core.SecureClient, n)
	for i := 0; i < n; i++ {
		if clients[i], err = s.join(ctx, i, rec); err != nil {
			return nil, err
		}
	}
	// The last peer gets a degraded path to everyone, broker included.
	slow := clients[n-1]
	slowLink := simnet.LinkProfile{Latency: 60 * time.Millisecond, Jitter: 2 * time.Millisecond, Bandwidth: 100_000}
	s.net.SetLink(simnet.NodeID(slow.PeerID()), simnet.NodeID(s.br.PeerID()), slowLink)
	for i := 0; i < n-1; i++ {
		s.net.SetLink(simnet.NodeID(slow.PeerID()), simnet.NodeID(clients[i].PeerID()), slowLink)
	}

	start := time.Now()
	uploads := 0
	var wg sync.WaitGroup
	for i, sc := range clients {
		wg.Add(1)
		go func(i int, sc *core.SecureClient) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				text := fmt.Sprintf("round %d from %s", round, user(i))
				if _, _, err := sc.SecureMsgPeerGroupRelay(ctx, "plenary", text); err != nil {
					sum.anomaly("%s round %d upload: %v", user(i), round, err)
				}
			}
		}(i, sc)
	}
	wg.Wait()
	uploads = n * rounds

	expected := int64(uploads * (n - 1))
	waitFor(ctx, 60*time.Second, func() bool { return rec.count() >= expected })
	dur := time.Since(start)

	sum.DurationSec = dur.Seconds()
	if dur > 0 {
		sum.RoundsPerSec = float64(uploads) / dur.Seconds()
	}
	sum.Delivered = rec.count()
	sum.P50DeliveryMS, sum.P99DeliveryMS = deliveryQuantiles(opt.Registry)
	if got := rec.count(); got != expected {
		sum.anomaly("delivered %d of %d addressed slices", got, expected)
	}
	// Isolation check: deliveries from fast senders must all have
	// arrived; a fast sender held hostage by the slow peer's link shows
	// up as a shortfall here even when the totals eventually catch up.
	for i := 0; i < n-1; i++ {
		want := int64(rounds * (n - 1))
		if got := rec.bySender(clients[i].PeerID()); got != want {
			sum.anomaly("fast sender %s delivered %d of %d", user(i), got, want)
		}
	}
	finish(sum, s)
	return sum, nil
}

// joinResilient brings one client up behind the resilience wrapper:
// replay guard installed (relay redeliveries must collapse below the
// application), short per-call timeout (partitions should cost a
// retry, not a stall), heartbeat loop running against the broker's
// lease.
func (s *stack) joinResilient(ctx context.Context, i int, rcfg core.ResilientConfig) (*core.ResilientClient, error) {
	cl, err := client.New(s.net, membership.NewPSE("", 0), user(i))
	if err != nil {
		return nil, err
	}
	s.onClose(func() { cl.Close() })
	trust, err := s.dep.TrustStore()
	if err != nil {
		return nil, err
	}
	sc, err := core.NewSecureClient(cl, trust, core.WithReplayGuard(core.NewReplayGuard(time.Minute, 512)))
	if err != nil {
		return nil, err
	}
	cl.BindTelemetry(s.reg)
	cl.SetTracer(s.tr)
	sc.SetAuditor(s.aud)
	sc.SetTimeout(500 * time.Millisecond)
	rc := core.NewResilientClient(sc, s.br.PeerID(), pw(i), rcfg)
	if err := rc.Connect(ctx); err != nil {
		return nil, fmt.Errorf("%s connect: %w", user(i), err)
	}
	s.onClose(rc.Close)
	return rc, nil
}

// churnRecorder counts opens per (recipient, sender, payload) so the
// summary can convict both directions of failure: a slice that never
// arrived and a slice that arrived twice.
type churnRecorder struct {
	mu    sync.Mutex
	total int64
	opens map[string]int
}

func newChurnRecorder() *churnRecorder {
	return &churnRecorder{opens: make(map[string]int)}
}

func (c *churnRecorder) watch(recipient int, bus *events.Bus) {
	bus.Subscribe(events.SecureMessage, func(e events.Event) {
		key := fmt.Sprintf("%d|%s|%s", recipient, e.From, e.Data)
		c.mu.Lock()
		c.total++
		c.opens[key]++
		c.mu.Unlock()
	})
}

func (c *churnRecorder) count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

func (c *churnRecorder) opensOf(recipient int, from keys.PeerID, text string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.opens[fmt.Sprintf("%d|%s|%s", recipient, from, text)]
}

// partitionChurn is the liveness/resilience chaos scenario: the whole
// population exchanges relayed rounds while the director flaps
// partitions between clients and the broker, every client→broker
// uplink drops 5% of its frames, one partition is held long enough for
// the victims' presence leases to expire, and the relay is restarted
// mid-traffic on its WAL. The contract is exactly-once eventual
// delivery: every addressed slice arrives (resumed sessions drain
// their queues), none arrives twice (idempotent resubmission upstream,
// replay-guard collapse downstream), reconnect attempts stay inside
// the backoff-derived storm bound, and the audit chain verifies clean
// afterwards (CI runs `admin audit verify` on the journal).
func partitionChurn(ctx context.Context, opt Options, profile simnet.LinkProfile) (*Summary, error) {
	n := opt.Clients
	if n <= 0 {
		n = 6
	}
	if n < 4 {
		n = 4
	}
	rounds := opt.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	const (
		leaseTTL = 2 * time.Second
		lossRate = 0.05
		flapDown = 700 * time.Millisecond // short flap: retries absorb it, no expiry
		sendGap  = 900 * time.Millisecond // spreads rounds across the churn timeline
	)
	pol := backoff.Policy{Base: 25 * time.Millisecond, Cap: 400 * time.Millisecond}
	// The retry budget must outlast the held partition: groupB is down
	// for its lease TTL plus a sweep plus the relay restart (~3s), and a
	// sender inside it keeps retrying the whole time. 25 attempts at
	// this policy sleep ~4.4s on average — comfortably past the outage —
	// while the 600ms attempt bound keeps a silently-lost frame (the 5%
	// loss) from eating the deadline before the first retry fires.
	rcfg := core.ResilientConfig{Backoff: pol, RetryBudget: 25, ResumeBudget: 8, Seed: 42,
		AttemptTimeout: 600 * time.Millisecond}
	sum := &Summary{Scenario: "partition-churn", Profile: opt.Profile, Clients: n, Rounds: rounds,
		Drops: map[string]int64{}, Anomalies: []string{}}
	relayCfg := core.RelayConfig{}
	relayCfg.QueueCap = n*rounds*2 + 32
	// Durable queues: the mid-traffic restart must find its backlog in
	// the WAL and rebuild it.
	walDir, err := os.MkdirTemp("", "partition-churn-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)
	relayCfg.WAL.Dir = walDir
	s, err := newStack(n, profile, nil, relayCfg, leaseTTL, opt)
	if err != nil {
		return nil, err
	}
	defer s.close()
	brNode := s.br.NodeID()

	rec := newChurnRecorder()
	rclients := make([]*core.ResilientClient, n)
	// A client-side open that gives up on its sender lookup is a
	// permanently lost message — the relay already retired the slice —
	// so those alerts convict the run directly, with the reason in the
	// anomaly instead of just a shortfall in the exactly-once audit.
	var dropMu sync.Mutex
	var droppedOpens []string
	for i := 0; i < n; i++ {
		if rclients[i], err = s.joinResilient(ctx, i, rcfg); err != nil {
			return nil, err
		}
		rec.watch(i, rclients[i].Bus())
		who := user(i)
		rclients[i].Bus().Subscribe(events.SecurityAlert, func(e events.Event) {
			if e.Payload["reason"] == core.ErrSenderUnknown.Error() {
				dropMu.Lock()
				droppedOpens = append(droppedOpens, fmt.Sprintf("%s dropped a slice from %s: %s", who, e.From, e.Payload["reason"]))
				dropMu.Unlock()
			}
		})
	}
	node := func(i int) simnet.NodeID { return simnet.NodeID(rclients[i].PeerID()) }
	// 5% loss on every client→broker uplink, one-way by design: a lost
	// request or heartbeat is recoverable (timeout, retry under the
	// idempotency key), a lost broker→client push would be a silent
	// black hole no client policy could see.
	lossy := profile
	lossy.Loss = lossRate
	for i := 0; i < n; i++ {
		s.net.SetLinkOneWay(node(i), brNode, lossy)
	}

	// The victim sets: groupA rides two short flaps, groupB is held
	// down past its lease TTL (expiry, queueing, resume).
	third := n / 3
	if third < 1 {
		third = 1
	}
	var groupA, groupB []int
	for i := 0; i < third; i++ {
		groupA = append(groupA, i)
	}
	for i := third; i < 2*third; i++ {
		groupB = append(groupB, i)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				text := fmt.Sprintf("round %d from %s", round, user(i))
				if _, _, err := rclients[i].SendGroupRelay(ctx, "plenary", text); err != nil {
					sum.anomaly("%s round %d: %v", user(i), round, err)
				}
				time.Sleep(sendGap)
			}
		}(i)
	}

	// The churn director. Flap 1: a short partition mid-traffic.
	flap := func(victims []int, down time.Duration) {
		for _, i := range victims {
			s.net.Partition(node(i), brNode)
		}
		time.Sleep(down)
		for _, i := range victims {
			s.net.Heal(node(i), brNode)
		}
	}
	time.Sleep(300 * time.Millisecond)
	flap(groupA, flapDown)

	// Flap 2: groupB is held down until its leases lapse — the broker
	// takes the silent sessions' presence down and the relay flips to
	// queueing for them.
	expiredBefore := s.bs.LivenessStats().LeasesExpired
	for _, i := range groupB {
		s.net.Partition(node(i), brNode)
	}
	if !waitFor(ctx, 15*time.Second, func() bool {
		return s.bs.LivenessStats().LeasesExpired >= expiredBefore+uint64(len(groupB))
	}) {
		sum.anomaly("held partition expired %d leases, want >= %d",
			s.bs.LivenessStats().LeasesExpired-expiredBefore, len(groupB))
	}

	// Mid-traffic relay restart on the same WAL: the queued backlog —
	// including the expired peers' slices — must survive into the
	// recovered queues.
	queuedAtRestart := s.rly.QueuedTotal()
	s.rly.Close()
	rly2, rerr := core.EnableBrokerRelay(s.br, relayCfg)
	if rerr != nil {
		sum.anomaly("relay restart: %v", rerr)
	} else {
		s.rly = rly2
		s.onClose(rly2.Close)
		sum.RelayRecovered = int64(rly2.Metrics().RecoveryReplayed)
		if sum.RelayRecovered < int64(queuedAtRestart) {
			sum.anomaly("restart recovered %d of %d queued slices", sum.RelayRecovered, queuedAtRestart)
		}
	}
	for _, i := range groupB {
		s.net.Heal(node(i), brNode)
	}

	// Flap 3: one more short partition while the expired peers resume
	// and their queues drain.
	flap(groupA, flapDown)
	wg.Wait()

	// Convergence: every addressed slice delivered, queues empty. The
	// expired peers come back through their heartbeat loops (lease-lost
	// triggers a background resume), not through any scenario nudge.
	expected := int64(n*rounds) * int64(n-1)
	waitFor(ctx, 90*time.Second, func() bool {
		return rec.count() >= expected && s.rly.QueuedTotal() == 0
	})
	dur := time.Since(start)

	sum.DurationSec = dur.Seconds()
	if dur > 0 {
		sum.RoundsPerSec = float64(n*rounds) / dur.Seconds()
	}
	sum.Delivered = rec.count()
	sum.P50DeliveryMS, sum.P99DeliveryMS = deliveryQuantiles(opt.Registry)

	// Exactly-once audit, both directions, per addressed slice.
	var missing int64
	for to := 0; to < n; to++ {
		for from := 0; from < n; from++ {
			if to == from {
				continue
			}
			for round := 0; round < rounds; round++ {
				text := fmt.Sprintf("round %d from %s", round, user(from))
				switch got := rec.opensOf(to, rclients[from].PeerID(), text); {
				case got == 0:
					missing++
					if missing <= 5 {
						sum.anomaly("never delivered: %q to %s", text, user(to))
					}
				case got > 1:
					sum.DuplicateOpens += int64(got - 1)
				}
			}
		}
	}
	if missing > 0 {
		sum.anomaly("%d of %d addressed slices never delivered", missing, expected)
	}
	dropMu.Lock()
	for _, d := range droppedOpens {
		sum.anomaly("%s", d)
	}
	dropMu.Unlock()
	if sum.DuplicateOpens > 0 {
		sum.anomaly("%d duplicate opens (exactly-once broken)", sum.DuplicateOpens)
	}
	if residual := s.rly.QueuedTotal(); residual != 0 {
		sum.anomaly("%d slices still queued after convergence window", residual)
	}

	// Liveness evidence: the scenario must actually have exercised
	// expiry and resume, and reconnects must stay inside the
	// backoff-derived storm bound — per outage a client can fit at most
	// MaxDelaysWithin(outage)+budget attempts, across 3 outages.
	ls := s.bs.LivenessStats()
	sum.HeartbeatsRenewed = int64(ls.HeartbeatsRenewed)
	sum.LeasesExpired = int64(ls.LeasesExpired)
	for _, rc := range rclients {
		st := rc.Stats()
		sum.Resumes += int64(st.Resumes)
		sum.ResumeAttempts += int64(st.ResumeAttempts)
		sum.Retries += int64(st.Retries)
	}
	sum.IdemDeduped = int64(s.br.Stats().IdemDeduped)
	if sum.LeasesExpired == 0 {
		sum.anomaly("no lease ever expired: the held partition proved nothing")
	}
	if sum.Resumes == 0 {
		sum.anomaly("no session ever resumed")
	}
	if sum.HeartbeatsRenewed == 0 {
		sum.anomaly("no heartbeat ever renewed a lease")
	}
	perOutage := int64(pol.MaxDelaysWithin(2*time.Second)) + int64(rcfg.ResumeBudget)
	storm := int64(n) * 3 * perOutage
	if sum.ResumeAttempts > storm {
		sum.anomaly("reconnect storm: %d resume attempts exceed the backoff bound %d", sum.ResumeAttempts, storm)
	}
	finishChurn(sum, s)
	return sum, nil
}

// finishChurn folds harness-wide evidence for a scenario whose network
// is HOSTILE by design: frames dropped by injected loss and partitions
// are the scenario working, so net-dropped is recorded as evidence but
// not flagged, unlike finish. Relay losses, rate-limit refusals and
// security alerts remain anomalies — churn never licenses shedding.
func finishChurn(sum *Summary, s *stack) {
	relayDrops(sum, s.rly.Metrics())
	sum.Drops["net-dropped"] = int64(s.net.Stats().Dropped)
	st := s.br.Stats()
	sum.Drops["rate-limited"] = int64(st.OpsRateLimited)
	if st.OpsRateLimited > 0 {
		sum.anomaly("%d operations rate-limited", st.OpsRateLimited)
	}
	sum.Alerts = s.alerts.Load()
	if sum.Alerts > 0 {
		sum.anomaly("%d security alerts raised", sum.Alerts)
	}
	if s.aud != nil {
		sum.AuditRecords = int64(s.aud.Stats().Records)
	}
}

// finish folds the harness-wide evidence (relay losses, network drops,
// security alerts, rate-limit refusals) into the summary.
func finish(sum *Summary, s *stack) {
	relayDrops(sum, s.rly.Metrics())
	ns := s.net.Stats()
	sum.Drops["net-dropped"] = int64(ns.Dropped)
	if ns.Dropped > 0 {
		sum.anomaly("%d frames dropped by the network", ns.Dropped)
	}
	st := s.br.Stats()
	sum.Drops["rate-limited"] = int64(st.OpsRateLimited)
	if st.OpsRateLimited > 0 {
		sum.anomaly("%d operations rate-limited", st.OpsRateLimited)
	}
	sum.Alerts = s.alerts.Load()
	if sum.Alerts > 0 {
		sum.anomaly("%d security alerts raised", sum.Alerts)
	}
	if s.aud != nil {
		sum.AuditRecords = int64(s.aud.Stats().Records)
	}
}
