// Package core implements the paper's contribution: the security
// extension to the JXTA-Overlay primitives (§4).
//
// The extension adds four secure primitives on top of the unmodified
// middleware machinery:
//
//   - secureConnection — challenge/response authentication of the broker
//     using an administrator-issued credential, yielding a fresh
//     session identifier (§4.2.1);
//   - secureLogin — encrypted, signed, replay-protected end-user
//     authentication that ends with the broker issuing the client a
//     credential (§4.2.2);
//   - secureMsgPeer / secureMsgPeerGroup — stateless sign-then-encrypt
//     messaging whose key distribution rides on XMLdsig-signed pipe
//     advertisements (§4.3).
//
// It also provides the system setup of §4.1 (administrator trust anchor,
// broker credentials, signed-advertisement publication) and — as the
// paper's stated further work — extends the same envelope to the
// executable primitives (securetask.go).
package core

import (
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
)

// DefaultCredValidity is the default lifetime of issued credentials.
const DefaultCredValidity = 24 * time.Hour

// Deployment is the administrator-side state of §4.1: the key pair
// PK/SK_Adm and the self-signed credential Cred_Adm^Adm that every peer
// is provisioned with as trust anchor.
type Deployment struct {
	kp     *keys.KeyPair
	anchor *cred.Credential
}

// NewDeployment generates the administrator key pair and self-signed
// credential. bits=0 selects the default RSA size.
func NewDeployment(name string, bits int) (*Deployment, error) {
	if bits == 0 {
		bits = keys.DefaultRSABits
	}
	kp, err := keys.KeyPairBits(bits)
	if err != nil {
		return nil, err
	}
	anchor, err := cred.SelfSigned(kp, name, 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	return &Deployment{kp: kp, anchor: anchor}, nil
}

// NewDeploymentFromKey builds a deployment around an existing
// administrator key (e.g. loaded from a keystore file).
func NewDeploymentFromKey(kp *keys.KeyPair, name string) (*Deployment, error) {
	anchor, err := cred.SelfSigned(kp, name, 10*365*24*time.Hour)
	if err != nil {
		return nil, err
	}
	return &Deployment{kp: kp, anchor: anchor}, nil
}

// Anchor returns Cred_Adm^Adm, the credential provisioned to every peer.
func (d *Deployment) Anchor() *cred.Credential { return d.anchor }

// AdminID returns the administrator's peer identifier.
func (d *Deployment) AdminID() keys.PeerID { return d.anchor.Subject }

// IssueBrokerCredential produces Cred_Br^Adm for a broker's public key:
// only legitimate brokers can prove ownership of one (§4.1).
func (d *Deployment) IssueBrokerCredential(pub *keys.PublicKey, name string, validity time.Duration) (*cred.Credential, error) {
	id, err := keys.CBID(pub)
	if err != nil {
		return nil, err
	}
	return cred.Issue(d.kp, d.anchor.Subject, id, name, cred.RoleBroker, pub, validity)
}

// IssueDatabaseCredential certifies the central database service so
// brokers can authenticate their backend connection.
func (d *Deployment) IssueDatabaseCredential(pub *keys.PublicKey, name string, validity time.Duration) (*cred.Credential, error) {
	id, err := keys.CBID(pub)
	if err != nil {
		return nil, err
	}
	return cred.Issue(d.kp, d.anchor.Subject, id, name, cred.RoleDatabase, pub, validity)
}

// TrustStore builds a fresh trust store anchored at this deployment's
// administrator credential — what every client and broker boots with.
func (d *Deployment) TrustStore() (*cred.TrustStore, error) {
	return cred.NewTrustStore(d.anchor)
}
