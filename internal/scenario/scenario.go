// Package scenario drives reproducible whole-stack load scenarios —
// named traffic shapes run against a complete in-process deployment
// (broker, security extension, relay, admission control) on the
// simulated network. Each run emits a schema-stable Summary that CI
// archives and gates on: throughput, delivery latency quantiles, drops
// by cause, and an explicit anomaly list. A scenario with a non-empty
// anomaly list failed; everything else in the summary is evidence.
package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/admission"
	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/bench"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/telemetry"
	"jxtaoverlay/internal/trace"
	"jxtaoverlay/internal/userdb"
)

// Names lists the runnable scenarios.
func Names() []string {
	return []string{"join-storm", "drain-spike", "parse-flood", "slow-sender", "partition-churn"}
}

// Options parameterize a scenario run. Zero values take per-scenario
// defaults, so Run(name, Options{}) is always valid.
type Options struct {
	// Clients is the peer population (0 = scenario default).
	Clients int
	// Rounds is the per-sender message (or flood-document) count
	// (0 = scenario default).
	Rounds int
	// Profile names the simnet link profile: local, lan, wan
	// ("" = lan).
	Profile string
	// Registry, when set, gets the deployment's telemetry collectors
	// registered into it, so a /metrics endpoint serving it exposes the
	// run live. When nil the harness uses a private registry — the
	// delivery-latency quantiles in the Summary come from the
	// client-library histogram either way.
	Registry *telemetry.Registry
	// Tracer, when set, records message-lifecycle spans for the whole
	// deployment: clients, broker dispatch, relay queues. Serve its
	// DebugHandler (or run `admin trace`) to inspect the waterfalls.
	Tracer *trace.Recorder
	// AuditDir, when set, opens a tamper-evident audit journal there
	// and attaches it to the whole deployment (broker, relay, every
	// client). The directory survives the run so `admin audit verify`
	// can walk the chain afterwards — CI does exactly that. Small
	// segments and a low checkpoint interval are deliberate: a scenario
	// run should exercise rotation and sealing, not just appends.
	AuditDir string
	// OnAudit, if set, receives the journal opened for AuditDir before
	// any traffic runs. The scenario driver uses it to point an
	// already-serving /debug/audit route at the live journal (the
	// telemetry mux is built before the scenario stack exists).
	OnAudit func(*audit.Journal)
	// Timeout bounds the whole run (0 = 2 minutes).
	Timeout time.Duration
}

// Summary is the machine-readable result of one scenario run. The
// field set is the CI contract: fields may be added, never renamed or
// removed, and every field is always present in the JSON (no omitempty
// on gated fields), so downstream jq expressions cannot silently read
// a missing key as null.
type Summary struct {
	Scenario     string  `json:"scenario"`
	Profile      string  `json:"profile"`
	Clients      int     `json:"clients"`
	Rounds       int     `json:"rounds"`
	DurationSec  float64 `json:"duration_sec"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// Delivered counts the scenario's unit of successful work: logins
	// for join-storm, secure message deliveries otherwise.
	Delivered int64 `json:"delivered"`
	// Delivery latency quantiles in milliseconds, measured end to end
	// from the sender stamping the message to the recipient's event
	// (for drain-spike this includes the queued wait — that is the
	// point). Zero when the scenario recorded no deliveries.
	P50DeliveryMS float64 `json:"p50_delivery_ms"`
	P99DeliveryMS float64 `json:"p99_delivery_ms"`
	// Drops counts losses by cause. Keys are stable: relay-overflow,
	// relay-quota, relay-expired, relay-skipped, net-dropped,
	// rate-limited. A cause that cannot occur in a scenario is simply
	// absent; a present key is always a real count.
	Drops map[string]int64 `json:"drops"`
	// HostileRejected counts intentionally malformed inputs the stack
	// refused (parse-flood). Rejections are the scenario succeeding,
	// so they are not drops.
	HostileRejected int64 `json:"hostile_rejected"`
	// Alerts counts SecurityAlert events on the broker's bus.
	Alerts int64 `json:"alerts"`
	// AuditRecords counts event records appended to the audit journal
	// (0 when the run had no AuditDir).
	AuditRecords int64 `json:"audit_records"`
	// Liveness and resilience evidence (PR 10). Populated by
	// partition-churn; zero (but always present) elsewhere.
	// HeartbeatsRenewed counts heartbeat renewals the broker accepted.
	HeartbeatsRenewed int64 `json:"heartbeats_renewed"`
	// LeasesExpired counts presence leases lapsed by missed heartbeats.
	LeasesExpired int64 `json:"leases_expired"`
	// Resumes counts successful client session resumes; ResumeAttempts
	// the login attempts they took (the reconnect-storm bound gates on
	// attempts, not successes).
	Resumes        int64 `json:"resumes"`
	ResumeAttempts int64 `json:"resume_attempts"`
	// Retries counts resilient-call attempts beyond the first.
	Retries int64 `json:"retries"`
	// IdemDeduped counts retried mutations the broker's dedup window
	// collapsed (each one is a double-execution that did not happen).
	IdemDeduped int64 `json:"idem_deduped"`
	// DuplicateOpens counts message deliveries a recipient saw more
	// than once — the churn contract demands zero.
	DuplicateOpens int64 `json:"duplicate_opens"`
	// RelayRecovered counts slices rebuilt from the WAL by the
	// mid-traffic relay restart.
	RelayRecovered int64 `json:"relay_recovered"`
	// Anomalies is the gate: human-readable descriptions of everything
	// that deviated from the scenario's contract. Empty means pass.
	Anomalies []string `json:"anomalies"`

	// anomaly() is called from scenario worker goroutines.
	mu sync.Mutex
}

func (s *Summary) anomaly(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Anomalies = append(s.Anomalies, fmt.Sprintf(format, args...))
}

// Run executes one named scenario and returns its summary. The error
// return is reserved for harness failures (bad name, setup errors);
// scenario-level deviations land in Summary.Anomalies instead, so a
// degraded run still produces its evidence.
func Run(name string, opt Options) (*Summary, error) {
	if opt.Profile == "" {
		opt.Profile = "lan"
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Minute
	}
	if opt.Registry == nil {
		// The Summary's delivery quantiles are read from the
		// client-library histogram, which lives in a registry — give the
		// run a private one when the caller did not supply theirs.
		opt.Registry = telemetry.New()
	}
	profile, err := bench.ProfileByName(opt.Profile)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), opt.Timeout)
	defer cancel()
	switch name {
	case "join-storm":
		return joinStorm(ctx, opt, profile)
	case "drain-spike":
		return drainSpike(ctx, opt, profile)
	case "parse-flood":
		return parseFlood(ctx, opt, profile)
	case "slow-sender":
		return slowSender(ctx, opt, profile)
	case "partition-churn":
		return partitionChurn(ctx, opt, profile)
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
}

// --- shared harness ---

// stack is one complete secure deployment on a seeded network: the
// same seed and traffic shape replay the same run.
type stack struct {
	net *simnet.Network
	dep *core.Deployment
	br  *broker.Broker
	bs  *core.BrokerSecurity
	rly *relay.Relay
	adm *admission.Limiter
	db  *userdb.Store
	reg *telemetry.Registry
	tr  *trace.Recorder
	aud *audit.Journal

	alerts atomic.Int64

	mu      sync.Mutex
	closers []func()
}

// newStack builds the deployment. A non-zero leaseTTL enables presence
// leases (partition-churn heartbeats against it); zero keeps the
// pre-liveness behavior the other scenarios were gated on.
func newStack(nClients int, profile simnet.LinkProfile, admCfg *admission.Config, relayCfg core.RelayConfig, leaseTTL time.Duration, opt Options) (*stack, error) {
	reg := opt.Registry
	s := &stack{net: simnet.NewNetworkSeeded(profile, 42), reg: reg, tr: opt.Tracer}
	s.closers = append(s.closers, s.net.Close)
	ok := false
	defer func() {
		if !ok {
			s.close()
		}
	}()

	dep, err := core.NewDeployment("scn-admin", 0)
	if err != nil {
		return nil, err
	}
	s.dep = dep
	s.db = userdb.NewStoreIter(128)
	for i := 0; i < nClients; i++ {
		if err := s.db.Register(user(i), pw(i), "plenary"); err != nil {
			return nil, err
		}
	}
	brKP, err := keys.NewKeyPair()
	if err != nil {
		return nil, err
	}
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "scn-broker", time.Hour)
	if err != nil {
		return nil, err
	}
	trust, err := dep.TrustStore()
	if err != nil {
		return nil, err
	}
	if opt.AuditDir != "" {
		// Opened (and its closer appended) before the broker so it
		// closes after broker and relay — their shutdown still emits
		// presence and drop records. Small segments + frequent
		// checkpoints make a normal run exercise rotation and sealing.
		aud, aerr := audit.Open(audit.Options{
			Dir:             opt.AuditDir,
			SyncInterval:    2 * time.Millisecond,
			SegmentBytes:    8 << 10,
			CheckpointEvery: 32,
			Signer:          brKP,
			Chain:           []*cred.Credential{brCred},
		})
		if aerr != nil {
			return nil, aerr
		}
		s.aud = aud
		s.closers = append(s.closers, func() { _ = aud.Close() })
		if opt.OnAudit != nil {
			opt.OnAudit(aud)
		}
	}
	br, err := broker.New(broker.Config{
		Name: "scn-broker", PeerID: brCred.Subject, Net: s.net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return s.db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		return nil, err
	}
	s.br = br
	s.closers = append(s.closers, br.Close)
	bs, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: true,
		LeaseTTL: leaseTTL,
	})
	if err != nil {
		return nil, err
	}
	s.bs = bs
	// The broker's recorder (and audit journal) are installed before
	// the relay attaches so EnableBrokerRelay inherits them for the
	// queue-side stages and drop records.
	br.SetTracer(opt.Tracer)
	br.SetAuditor(s.aud)
	rly, err := core.EnableBrokerRelay(br, relayCfg)
	if err != nil {
		return nil, err
	}
	s.rly = rly
	s.closers = append(s.closers, rly.Close)
	if admCfg != nil {
		s.adm = admission.New(*admCfg)
		br.EnableAdmission(s.adm)
	}
	br.Bus().Subscribe(events.SecurityAlert, func(events.Event) { s.alerts.Add(1) })
	if reg != nil {
		core.RegisterBrokerTelemetry(reg, br, bs, rly, s.adm, s.aud)
	}
	ok = true
	return s, nil
}

func (s *stack) close() {
	s.mu.Lock()
	closers := s.closers
	s.closers = nil
	s.mu.Unlock()
	for i := len(closers) - 1; i >= 0; i-- {
		closers[i]()
	}
}

func (s *stack) onClose(f func()) {
	s.mu.Lock()
	s.closers = append(s.closers, f)
	s.mu.Unlock()
}

// join brings one secure client up: connect, verify, login.
func (s *stack) join(ctx context.Context, i int, rec *recorder) (*core.SecureClient, error) {
	cl, err := client.New(s.net, membership.NewPSE("", 0), user(i))
	if err != nil {
		return nil, err
	}
	s.onClose(func() { cl.Close() })
	trust, err := s.dep.TrustStore()
	if err != nil {
		return nil, err
	}
	sc, err := core.NewSecureClient(cl, trust)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		rec.watch(cl.Bus())
	}
	// Every client shares the registry's delivery histogram (idempotent
	// registration) and the deployment's span recorder.
	cl.BindTelemetry(s.reg)
	cl.SetTracer(s.tr)
	sc.SetAuditor(s.aud)
	if err := sc.SecureConnection(ctx, s.br.PeerID()); err != nil {
		return nil, fmt.Errorf("%s secureConnection: %w", user(i), err)
	}
	if err := sc.SecureLogin(ctx, pw(i)); err != nil {
		return nil, fmt.Errorf("%s secureLogin: %w", user(i), err)
	}
	return sc, nil
}

func user(i int) string { return fmt.Sprintf("peer%03d", i) }
func pw(i int) string   { return fmt.Sprintf("pw-%03d", i) }

// --- delivery accounting ---

// recorder counts SecureMessage deliveries per recipient bus. Latency
// is NOT measured here anymore: the client library observes (now -
// signed SentAt) into its registry histogram on every successful open,
// and deliveryQuantiles reads that instrument — the same quantiles a
// production peer exports over /metrics, with no body stamping.
type recorder struct {
	mu sync.Mutex
	n  int64
	by map[keys.PeerID]int64 // deliveries by sender
}

func newRecorder() *recorder { return &recorder{by: make(map[keys.PeerID]int64)} }

func (r *recorder) watch(bus *events.Bus) {
	bus.Subscribe(events.SecureMessage, func(e events.Event) {
		r.mu.Lock()
		r.n++
		r.by[e.From]++
		r.mu.Unlock()
	})
}

func (r *recorder) count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *recorder) bySender(id keys.PeerID) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.by[id]
}

// deliveryQuantiles reads the p50/p99 end-to-end delivery latency (ms)
// from the client-library histogram shared by every client bound to
// the run's registry.
func deliveryQuantiles(reg *telemetry.Registry) (p50, p99 float64) {
	h := reg.Histogram(client.DeliveryLatencyMetric,
		"end-to-end secure delivery latency: signed seal time to local open (ms)",
		telemetry.LatencyBucketsMS)
	if h.Count() == 0 {
		return 0, 0
	}
	return h.Quantile(0.50), h.Quantile(0.99)
}

func quantileMS(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(q * float64(len(lat)))
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return float64(lat[idx]) / float64(time.Millisecond)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(ctx context.Context, d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// relayDrops folds the relay's loss counters into the summary's drops
// map and reports them as anomalies: no scenario here is allowed to
// shed relay traffic.
func relayDrops(sum *Summary, m relay.Metrics) {
	sum.Drops["relay-overflow"] = int64(m.DroppedOverflow)
	sum.Drops["relay-quota"] = int64(m.DroppedQuota)
	sum.Drops["relay-expired"] = int64(m.Expired)
	for _, k := range []string{"relay-overflow", "relay-quota", "relay-expired"} {
		if n := sum.Drops[k]; n > 0 {
			sum.anomaly("%d slices lost to %s", n, k)
		}
	}
}
