package scenario

import (
	"sort"
	"testing"
	"time"

	"jxtaoverlay/internal/trace"
)

// TestDrainSpikeTraceWaterfall is the tracing acceptance test: a
// drain-spike run with every trace sampled must yield at least one
// COMPLETE message lifecycle — seal and send at the sender, admission,
// parse, verify and slice at the broker, enqueue plus WAL append/fsync
// and the queue wait in the relay, the delivery push, and the
// recipient's open. drain-spike runs on a real WAL, so the durable
// stages are genuinely exercised, not simulated.
func TestDrainSpikeTraceWaterfall(t *testing.T) {
	rec := trace.New(trace.Config{SampleRate: 1, Seed: 42, Shards: 4, ShardCap: 8192})
	sum, err := Run("drain-spike", Options{
		Clients: 6, Rounds: 2, Profile: "local",
		Tracer: rec, Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Anomalies) != 0 {
		t.Fatalf("drain-spike anomalies: %v", sum.Anomalies)
	}

	required := []trace.Stage{
		trace.StageSeal, trace.StageSend,
		trace.StageAdmission, trace.StageParse, trace.StageVerify, trace.StageSlice,
		trace.StageEnqueue, trace.StageWALAppend, trace.StageWALFsync, trace.StageQueueWait,
		trace.StageDeliver, trace.StageOpen,
	}
	byTrace := map[uint64]map[trace.Stage]bool{}
	for _, sp := range rec.Snapshot() {
		m := byTrace[sp.TraceID]
		if m == nil {
			m = make(map[trace.Stage]bool)
			byTrace[sp.TraceID] = m
		}
		m[sp.Stage] = true
	}
	best, bestID := 0, uint64(0)
	for id, stages := range byTrace {
		n := 0
		for _, st := range required {
			if stages[st] {
				n++
			}
		}
		if n > best {
			best, bestID = n, id
		}
		if n == len(required) {
			return // complete waterfall found
		}
	}
	var have []string
	for st := range byTrace[bestID] {
		have = append(have, st.String())
	}
	sort.Strings(have)
	t.Fatalf("no trace covers all %d lifecycle stages; best trace %s covers %d: %v",
		len(required), trace.FormatID(bestID), best, have)
}

// TestDeliveryQuantilesFromClientHistogram pins the Summary's latency
// source: the quantiles must come from the client-library histogram
// (non-zero after real deliveries), with no dependence on message-body
// stamping — the scenario sends plain texts.
func TestDeliveryQuantilesFromClientHistogram(t *testing.T) {
	sum, err := Run("drain-spike", Options{
		Clients: 6, Rounds: 2, Profile: "local", Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Anomalies) != 0 {
		t.Fatalf("drain-spike anomalies: %v", sum.Anomalies)
	}
	if sum.Delivered == 0 {
		t.Fatal("no deliveries recorded")
	}
	if sum.P50DeliveryMS <= 0 || sum.P99DeliveryMS <= 0 {
		t.Fatalf("delivery quantiles not observed: p50=%g p99=%g", sum.P50DeliveryMS, sum.P99DeliveryMS)
	}
	if sum.P99DeliveryMS < sum.P50DeliveryMS {
		t.Fatalf("p99 %g < p50 %g", sum.P99DeliveryMS, sum.P50DeliveryMS)
	}
}
