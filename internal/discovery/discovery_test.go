package discovery

import (
	"testing"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/xmldoc"
)

func pipeAdv(id, group string) *advert.Pipe {
	return &advert.Pipe{
		PipeID:   id,
		PipeType: advert.PipeUnicast,
		PeerID:   "urn:jxta:cbid-1",
		Group:    group,
	}
}

func TestPutLookup(t *testing.T) {
	c := NewCache()
	if err := c.PutAdv(pipeAdv("urn:jxta:pipe-1", "g")); err != nil {
		t.Fatalf("PutAdv: %v", err)
	}
	rec, err := c.Lookup(advert.TypePipe, "urn:jxta:pipe-1")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if rec.Adv.(*advert.Pipe).Group != "g" {
		t.Fatalf("record = %+v", rec.Adv)
	}
	if _, err := c.Lookup(advert.TypePipe, "urn:jxta:pipe-404"); err != ErrNotFound {
		t.Fatalf("Lookup missing = %v", err)
	}
}

func TestPutReplacesSameID(t *testing.T) {
	c := NewCache()
	c.PutAdv(pipeAdv("urn:jxta:pipe-1", "old"))
	c.PutAdv(pipeAdv("urn:jxta:pipe-1", "new"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	rec, err := c.Lookup(advert.TypePipe, "urn:jxta:pipe-1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Adv.(*advert.Pipe).Group != "new" {
		t.Fatal("Put did not replace record")
	}
}

func TestPutRejectsGarbage(t *testing.T) {
	c := NewCache()
	if _, err := c.Put(xmldoc.New("Nonsense", "")); err == nil {
		t.Fatal("Put accepted unknown advertisement")
	}
}

func TestDocStoredVerbatim(t *testing.T) {
	// The cache must preserve the received document (with signature),
	// not a re-serialization.
	c := NewCache()
	adv := pipeAdv("urn:jxta:pipe-1", "g")
	doc, _ := adv.Document()
	doc.Add(xmldoc.New("Signature", "SIGBYTES"))
	if _, err := c.Put(doc); err != nil {
		t.Fatalf("Put: %v", err)
	}
	rec, err := c.Lookup(advert.TypePipe, "urn:jxta:pipe-1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Doc.Child("Signature") == nil {
		t.Fatal("signature element lost in cache")
	}
	// And mutating the caller's doc must not reach the cache.
	doc.Child("Signature").SetText("TAMPERED")
	if rec.Doc.Child("Signature").Text != "SIGBYTES" {
		t.Fatal("cache shares memory with caller document")
	}
}

func TestExpiry(t *testing.T) {
	c := NewCache()
	now := time.Now()
	c.SetClock(func() time.Time { return now })
	c.PutAdv(pipeAdv("urn:jxta:pipe-1", "g"))
	// Advance past the pipe advertisement lifetime.
	now = now.Add(advert.DefaultLifetime + time.Second)
	if _, err := c.Lookup(advert.TypePipe, "urn:jxta:pipe-1"); err != ErrNotFound {
		t.Fatalf("Lookup expired = %v, want ErrNotFound", err)
	}
	if c.Len() != 0 {
		t.Fatal("expired record not evicted on lookup")
	}
}

func TestSweep(t *testing.T) {
	c := NewCache()
	now := time.Now()
	c.SetClock(func() time.Time { return now })
	c.PutAdv(pipeAdv("urn:jxta:pipe-1", "g"))
	c.PutAdv(pipeAdv("urn:jxta:pipe-2", "g"))
	pres := &advert.Presence{PeerID: "urn:jxta:cbid-9", Group: "g", Status: advert.StatusOnline, Seen: now}
	c.PutAdv(pres)
	// Presence lifetime (2m) is shorter than pipe lifetime (15m).
	now = now.Add(3 * time.Minute)
	if n := c.Sweep(); n != 1 {
		t.Fatalf("Sweep = %d, want 1", n)
	}
	if c.Len() != 2 {
		t.Fatalf("Len after sweep = %d", c.Len())
	}
}

func TestFindFilterAndSort(t *testing.T) {
	c := NewCache()
	c.PutAdv(pipeAdv("urn:jxta:pipe-b", "g1"))
	c.PutAdv(pipeAdv("urn:jxta:pipe-a", "g1"))
	c.PutAdv(pipeAdv("urn:jxta:pipe-c", "g2"))
	recs := c.Find(advert.TypePipe, func(a advert.Advertisement) bool {
		return a.(*advert.Pipe).Group == "g1"
	})
	if len(recs) != 2 {
		t.Fatalf("Find returned %d records", len(recs))
	}
	if recs[0].Adv.AdvID() != "urn:jxta:pipe-a" || recs[1].Adv.AdvID() != "urn:jxta:pipe-b" {
		t.Fatal("Find output not sorted by AdvID")
	}
	all := c.Find(advert.TypePipe, nil)
	if len(all) != 3 {
		t.Fatalf("Find(nil) returned %d", len(all))
	}
	none := c.Find(advert.TypePeer, nil)
	if len(none) != 0 {
		t.Fatal("Find returned records of wrong type")
	}
}

func TestRemove(t *testing.T) {
	c := NewCache()
	c.PutAdv(pipeAdv("urn:jxta:pipe-1", "g"))
	c.Remove(advert.TypePipe, "urn:jxta:pipe-1")
	if _, err := c.Lookup(advert.TypePipe, "urn:jxta:pipe-1"); err != ErrNotFound {
		t.Fatal("record survived Remove")
	}
}

func TestTypesDoNotCollide(t *testing.T) {
	c := NewCache()
	// Same AdvID string under two different types must coexist.
	c.PutAdv(&advert.Presence{PeerID: "p", Group: "g", Status: advert.StatusOnline, Seen: time.Now()})
	c.PutAdv(&advert.FileList{PeerID: "p", Group: "g"})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}
