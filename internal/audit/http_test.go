package audit

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"jxtaoverlay/internal/trace"
)

// TestDebugHandlerConcurrentWithAppends hammers /debug/audit while
// writer goroutines append — the race detector turns any unsynchronized
// ring/chain access into a failure (this is the -race half of the
// observability contract; CI runs the package under -race).
func TestDebugHandlerConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: time.Millisecond, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	h := j.DebugHandler()

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Record(Event{Kind: KindRateLimited, Peer: fmt.Sprintf("peer-%d", w), Op: "op", Reason: "r", Trace: uint64(i)})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/audit?limit=16", nil))
			var page PageJSON
			if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
				t.Errorf("bad page mid-append: %v", err)
				return
			}
		}
	}()
	// Wait for the writers, then stop the reader.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if j.Seq() >= writers*perWriter {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/audit", nil))
	var page PageJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Seq != writers*perWriter || page.Records != writers*perWriter {
		t.Fatalf("final page seq %d records %d, want %d", page.Seq, page.Records, writers*perWriter)
	}
	if len(page.Events) != 64 {
		t.Fatalf("ring of 64 served %d events", len(page.Events))
	}
}

// TestDebugHandlerFilters: the server-side query filters select on
// kind, peer, op, trace and since.
func TestDebugHandlerFilters(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustRecord(t, j, Event{Kind: KindLogin, Peer: "alice", Op: "secureLogin", Reason: "ok"})
	mustRecord(t, j, Event{Kind: KindRateLimited, Peer: "bob", Op: "publishAdv", Reason: "rate-limited", Trace: 0xabcd})
	mustRecord(t, j, Event{Kind: KindLogin, Peer: "bob", Op: "secureLogin", Reason: "auth-failed"})

	get := func(query string) PageJSON {
		t.Helper()
		rr := httptest.NewRecorder()
		j.DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/audit?"+query, nil))
		var page PageJSON
		if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	if p := get("kind=login"); len(p.Events) != 2 {
		t.Fatalf("kind filter: %d events, want 2", len(p.Events))
	}
	if p := get("peer=bob"); len(p.Events) != 2 {
		t.Fatalf("peer filter: %d events, want 2", len(p.Events))
	}
	if p := get("op=publishAdv"); len(p.Events) != 1 {
		t.Fatalf("op filter: %d events, want 1", len(p.Events))
	}
	if p := get("trace=" + trace.FormatID(0xabcd)); len(p.Events) != 1 || p.Events[0].Seq != 2 {
		t.Fatalf("trace filter: %+v, want the seq-2 event", p.Events)
	}
	if p := get("since=2"); len(p.Events) != 1 || p.Events[0].Seq != 3 {
		t.Fatalf("since filter: %+v, want only seq 3", p.Events)
	}
	if p := get("limit=1"); len(p.Events) != 1 {
		t.Fatalf("limit: %d events, want 1", len(p.Events))
	}
}

// TestFetchRoundTrip: the admin-tool client reads the same page the
// handler serves, through every URL form it accepts.
func TestFetchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustRecord(t, j, Event{Kind: KindOffense, Peer: "mallory", Op: "relayRound", Reason: "relay-quota-exceeded"})

	srv := httptest.NewServer(j.DebugHandler())
	defer srv.Close()

	for _, base := range []string{srv.URL, srv.URL + "/debug/audit", srv.Listener.Addr().String()} {
		page, err := Fetch(context.Background(), base, url.Values{"kind": {KindOffense}})
		if err != nil {
			t.Fatalf("Fetch(%q): %v", base, err)
		}
		if page.Seq != 1 || len(page.Events) != 1 || page.Events[0].Peer != "mallory" {
			t.Fatalf("Fetch(%q) page: %+v", base, page)
		}
	}
}
