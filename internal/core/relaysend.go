package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/parallel"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/trace"
)

// Client-side relay fan-out: the send-once path. Instead of sending the
// round wire to every member (client-side fan-out, O(N^2) bytes up the
// sender's link across a round), the sender verifies each recipient's
// certified key, seals ONE round — one header signature, one content
// encryption, one wrap per recipient — and uploads the wire ONCE to the
// broker's relay, which slices it per recipient and handles presence:
// direct push to online members, bounded store-and-forward queues for
// offline ones. Recipients may therefore be offline at send time, which
// no other messenger primitive in this repo allows.

// SecureMsgPeerGroupRelay fans a secure message over the group's FULL
// membership roster — online and offline members alike — through the
// broker relay. It returns how many recipients were reached immediately
// and how many were queued for delivery at their next login.
func (s *SecureClient) SecureMsgPeerGroupRelay(ctx context.Context, group, text string) (direct, queued int, err error) {
	members, err := s.GetGroupMembers(ctx, group)
	if err != nil {
		return 0, 0, err
	}
	ids := make([]keys.PeerID, 0, len(members))
	for _, m := range members {
		if m.ID != s.PeerID() {
			ids = append(ids, m.ID)
		}
	}
	return s.SecureMsgPeersViaRelay(ctx, group, text, ids)
}

// SecureMsgPeersViaRelay seals one round for the listed peers and
// uploads it once per maxRoundRecipients chunk. Every recipient's
// signed pipe advertisement is verified first (steps 1-3 of §4.3.1,
// cached) — advertisements survive in the broker index while their
// owner is offline, so offline recipients resolve too. Peers whose key
// cannot be verified are skipped and reported via the first error, and
// recipients the broker refuses — unknown to it, or resident at a
// federation partner whose presence events (and queue drains) fire
// elsewhere — surface as a wrapped ErrRelaySkipped: direct+queued then
// falls short of len(peers), never silently.
func (s *SecureClient) SecureMsgPeersViaRelay(ctx context.Context, group, text string, peers []keys.PeerID) (direct, queued int, err error) {
	if len(peers) == 0 {
		return 0, 0, nil
	}
	recipients := make([]*keys.PublicKey, len(peers))
	errs := make([]error, len(peers))
	parallel.ForEach(fanOutParallelism(), len(peers), func(i int) {
		key, _, kerr := s.verifiedPeerKey(ctx, peers[i], group)
		if kerr != nil {
			errs[i] = kerr
			return
		}
		recipients[i] = key
	})
	var firstErr error
	for _, e := range errs {
		if e != nil {
			firstErr = e
			break
		}
	}
	verified := make([]int, 0, len(peers))
	for i := range peers {
		if recipients[i] != nil {
			verified = append(verified, i)
		}
	}
	for start := 0; start < len(verified); start += maxRoundRecipients {
		chunk := verified[start:min(start+maxRoundRecipients, len(verified))]
		keyList := make([]*keys.PublicKey, len(chunk))
		idList := make([]string, len(chunk))
		for j, i := range chunk {
			keyList[j] = recipients[i]
			idList[j] = string(peers[i])
		}
		// Each chunk is its own round, so each gets its own trace: the ID
		// minted here rides the upload (Call reuses it for the send span)
		// and then every slice cut from the round, tying seal, broker
		// dispatch, queueing and the eventual opens into one waterfall.
		tr := s.Tracer()
		var tid uint64
		if tr != nil {
			tid = tr.NewID()
		}
		var spSeal trace.Span
		if tid != 0 {
			spSeal = trace.Begin(tid, trace.StageSeal)
		}
		d, serr := SealGroupDetached(s.kp, s.PeerID(), group, []byte(text), keyList)
		if serr != nil {
			tr.End(spSeal, trace.OutcomeError)
			if firstErr == nil {
				firstErr = serr
			}
			continue
		}
		tr.End(spSeal, trace.OutcomeOK)
		// The single upload: one wire for the whole chunk, recipient IDs
		// paired in wrap order so the broker can address the slices.
		msg := endpoint.NewMessage().
			AddString(proto.ElemOp, proto.OpRelayRound).
			AddString(proto.ElemGroup, group).
			AddString(proto.ElemRecipients, strings.Join(idList, ",")).
			Add(proto.ElemEnvelope, d.Wire())
		if tid != 0 {
			msg.AddString(proto.ElemTrace, trace.FormatID(tid))
		}
		resp, cerr := s.Call(ctx, msg)
		if cerr != nil {
			if firstErr == nil {
				if errors.Is(cerr, client.ErrRelayQuota) {
					firstErr = ErrRelayQuota
				} else {
					firstErr = ErrRelayUnavailable
				}
			}
			continue
		}
		di, qi, rerr := relayCounts(resp, len(chunk))
		direct += di
		queued += qi
		if rerr != nil && firstErr == nil {
			firstErr = rerr
		}
	}
	return direct, queued, firstErr
}

// relayCounts unpacks a relayRound response: recipients reached
// directly, recipients accepted for eventual delivery (queued locally
// or handed off toward the partner broker that owns them), and an
// error when any were throttled or skipped.
func relayCounts(resp *endpoint.Message, chunkLen int) (direct, queued int, err error) {
	dd, _ := resp.GetString(proto.ElemRelayDirect)
	qq, _ := resp.GetString(proto.ElemRelayQueued)
	hh, _ := resp.GetString(proto.ElemRelayHandoff)
	nn, _ := resp.GetString(proto.ElemRelayQuota)
	ss, _ := resp.GetString(proto.ElemRelaySkipped)
	di, _ := strconv.Atoi(dd)
	qi, _ := strconv.Atoi(qq)
	hi, _ := strconv.Atoi(hh)
	ni, _ := strconv.Atoi(nn)
	si, _ := strconv.Atoi(ss)
	// A handed-off slice is in flight toward the partner broker that
	// owns the recipient — from the sender's seat that is "queued":
	// accepted for eventual delivery, not confirmed received.
	direct = di
	queued = qi + hi
	if ni > 0 {
		return direct, queued, fmt.Errorf("%w: %d of %d throttled", ErrRelayQuota, ni, chunkLen)
	}
	if si > 0 {
		return direct, queued, fmt.Errorf("%w: %d of %d", ErrRelaySkipped, si, chunkLen)
	}
	return direct, queued, nil
}
