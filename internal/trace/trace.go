// Package trace is a sampling, lock-cheap span recorder for message
// lifecycle attribution, built in the style of internal/telemetry: the
// instrumented path pays a fixed, allocation-free cost per event, and
// everything expensive (snapshotting, filtering, rendering) happens on
// the pull side.
//
// A span is a fixed-size struct — trace ID, stage, start/duration,
// outcome token, and a small attr array — written into one of a set of
// per-shard ring buffers. Sharding is by trace ID so all spans of one
// trace land in one ring (locality for retrieval, and one mutex is
// never contended by more than 1/shards of the traffic).
//
// Sampling is head-based on the trace ID: a trace is either in the
// sampled set for the recorder's seed or it is not, and every stage of
// its lifecycle — across client, broker, relay and the receiving
// client, as long as they share the seed or the decision is made once
// at the head — agrees. The unsampled fast path is a seeded hash
// compare plus ONE atomic load (the forced-trace probe): no locks, no
// allocations, no syscalls. BenchmarkTraceOverhead/unsampled pins that
// claim in the bench gate.
//
// Anomalies override sampling: spans whose outcome is anomalous
// (rate-limited, relay-quota-exceeded, WAL errors, security alerts)
// or whose duration exceeds the configured slow threshold are always
// recorded, and their trace ID is marked in a small lossy forced-set
// so subsequent stages of the same trace are captured too. This is
// what lets a SecurityAlert carry a trace ID that is actually
// retrievable from /debug/traces after the fact.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one step of the message lifecycle. The zero value
// is StageSeal; stages are ordered roughly in lifecycle order, which
// the waterfall renderer uses as a tiebreak for zero-duration spans.
type Stage uint8

const (
	StageSeal      Stage = iota // client: SealGroupDetached / envelope seal
	StageSend                   // client: RPC to the broker (upload, op call)
	StageAdmission              // broker: admission-control decision
	StageParse                  // broker: wire parse (canonical XML / round wire)
	StageVerify                 // broker: signature / recipient verification
	StagePublish                // broker: cache insert + propagation
	StageSlice                  // broker: per-recipient round slicing + routing
	StageEnqueue                // relay: quota + queue insert for an offline peer
	StageWALAppend              // relay: WAL record append (staged or inline)
	StageWALFsync               // relay: fsync making the append durable
	StageQueueWait              // relay: dwell time in the offline queue
	StageHandoff                // broker: federation hand-off to partner
	StageDeliver                // broker: slice push to the recipient client
	StageOpen                   // client: OpenSlice / envelope open + verify
	StageResume                 // client: automatic session resume (reconnect + re-login)
	stageCount
)

var stageNames = [stageCount]string{
	"seal", "send", "admission", "parse", "verify", "publish",
	"slice", "enqueue", "wal-append", "wal-fsync", "queue-wait",
	"handoff", "deliver", "open", "resume",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// ParseStage maps a stage name (as rendered by String) back to its
// value; ok is false for unknown names.
func ParseStage(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Outcome is the span's result token. Outcomes at or beyond
// OutcomeRateLimited are anomalous and force capture regardless of the
// head-sampling decision.
type Outcome uint8

const (
	OutcomeOK    Outcome = iota
	OutcomeError         // ordinary failure (bad wire, unknown op); not forced
	// Anomalous outcomes — everything from here on forces capture.
	OutcomeRateLimited // admission refusal
	OutcomeQuota       // relay queue quota refusal
	OutcomeWALError    // durable-queue append/fsync failure
	OutcomeAlert       // a SecurityAlert fired during this span
	outcomeCount
)

var outcomeNames = [outcomeCount]string{
	"ok", "error", "rate-limited", "relay-quota-exceeded", "wal-error",
	"security-alert",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return "unknown"
}

// ParseOutcome maps an outcome name back to its value.
func ParseOutcome(name string) (Outcome, bool) {
	for i, n := range outcomeNames {
		if n == name {
			return Outcome(i), true
		}
	}
	return 0, false
}

// Anomalous reports whether the outcome forces capture.
func (o Outcome) Anomalous() bool { return o >= OutcomeRateLimited }

// MaxAttrBytes bounds each attr key and value. Spans carry stage
// metadata only — short printable tokens like an op name or an error
// token — never plaintext, key material, or wire bytes. SetAttr
// enforces the bound; see SECURITY.md.
const MaxAttrBytes = 48

// maxAttrs is the fixed attr capacity per span.
const maxAttrs = 2

// Attr is one key/value pair of span metadata.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is the fixed-size unit written into the ring. All fields are
// plain values; copying a Span never allocates.
type Span struct {
	TraceID  uint64
	Stage    Stage
	Outcome  Outcome
	Start    int64 // unix nanoseconds
	Duration int64 // nanoseconds
	Attrs    [maxAttrs]Attr
	nattrs   uint8
}

// SetAttr records one metadata pair on the span. Oversized or
// non-printable (binary) keys/values are rejected outright — dropped,
// not truncated — so a mis-instrumented call site can never leak wire
// bytes or ciphertext into the trace buffer. Excess attrs beyond the
// fixed capacity are dropped too.
func (sp *Span) SetAttr(key, value string) {
	if int(sp.nattrs) >= maxAttrs || !attrOK(key) || !attrOK(value) {
		return
	}
	sp.Attrs[sp.nattrs] = Attr{Key: key, Value: value}
	sp.nattrs++
}

// AttrCount returns how many attrs SetAttr accepted.
func (sp *Span) AttrCount() int { return int(sp.nattrs) }

func attrOK(s string) bool {
	if len(s) > MaxAttrBytes {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e { // printable ASCII only
			return false
		}
	}
	return true
}

// Begin opens a span: it stamps the start time and nothing else. The
// span lives on the caller's stack until End decides whether it is
// kept. Callers should guard Begin behind a tracer-nil check so a
// disabled deployment pays literally zero.
func Begin(traceID uint64, stage Stage) Span {
	return Span{TraceID: traceID, Stage: stage, Start: time.Now().UnixNano()}
}

// Config sizes a Recorder.
type Config struct {
	// Shards is the number of ring buffers (rounded up to a power of
	// two, default 8).
	Shards int
	// ShardCap is the span capacity of each ring (default 1024). The
	// ring overwrites oldest-first; overwrites are counted as drops.
	ShardCap int
	// SampleRate is the head-sampling probability in [0, 1]. 0 means
	// forced-capture only (anomalies and slow ops still record).
	SampleRate float64
	// SlowThreshold forces capture of any span at least this slow.
	// 0 disables the slow path.
	SlowThreshold time.Duration
	// Seed determines both the NewID sequence and the sampled set.
	// Two recorders with the same seed sample the same trace IDs —
	// scenario runs stay reproducible.
	Seed uint64
}

// Recorder owns the sharded span rings. A nil *Recorder is a valid,
// disabled recorder: every method is nil-safe and free.
type Recorder struct {
	seed      uint64
	threshold uint64 // sample iff mix64(id^seed) <= threshold
	slowNS    int64
	shardMask uint64
	shards    []shard
	forced    []atomic.Uint64 // lossy open-addressed forced-trace set
	nextID    atomic.Uint64
	recorded  atomic.Uint64
	dropped   atomic.Uint64 // ring overwrites
}

const forcedSlots = 256 // power of two

type shard struct {
	mu   sync.Mutex
	next uint64 // total spans ever written; ring slot = next % len(ring)
	ring []Span
}

// New builds a Recorder. See Config for defaults.
func New(cfg Config) *Recorder {
	nshards := ceilPow2(cfg.Shards, 8)
	cap := cfg.ShardCap
	if cap <= 0 {
		cap = 1024
	}
	r := &Recorder{
		seed:      cfg.Seed,
		slowNS:    int64(cfg.SlowThreshold),
		shardMask: uint64(nshards - 1),
		shards:    make([]shard, nshards),
		forced:    make([]atomic.Uint64, forcedSlots),
	}
	for i := range r.shards {
		r.shards[i].ring = make([]Span, cap)
	}
	switch rate := cfg.SampleRate; {
	case rate >= 1:
		r.threshold = ^uint64(0)
	case rate > 0:
		r.threshold = uint64(rate * float64(^uint64(0)))
	}
	return r
}

func ceilPow2(n, def int) int {
	if n <= 0 {
		n = def
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewID mints a trace ID. IDs are deterministic for a given seed and
// call order (an atomic counter mixed with the seed), well spread, and
// never zero — zero means "untraced" on the wire.
func (r *Recorder) NewID() uint64 {
	if r == nil {
		return 0
	}
	id := mix64(r.seed + r.nextID.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Sampled reports the head-sampling decision for a trace ID. Pure
// arithmetic: deterministic in (seed, id).
func (r *Recorder) Sampled(id uint64) bool {
	if r == nil || id == 0 {
		return false
	}
	return r.threshold != 0 && mix64(id^r.seed) <= r.threshold
}

// Force marks a trace for capture from now on, independent of the
// sampling decision. The set is small and lossy (a colliding later
// trace evicts), which is fine: it exists to extend capture of an
// anomalous trace through its remaining stages, not to be a registry.
func (r *Recorder) Force(id uint64) {
	if r == nil || id == 0 {
		return
	}
	r.forced[mix64(id)&(forcedSlots-1)].Store(id)
}

func (r *Recorder) isForced(id uint64) bool {
	return r.forced[mix64(id)&(forcedSlots-1)].Load() == id
}

// End closes a span and records it if the trace is sampled, forced, or
// the span itself is anomalous or slow (which also forces the rest of
// the trace). Returns whether the span was kept. Nil-safe; spans with
// a zero trace ID are never recorded.
func (r *Recorder) End(sp Span, outcome Outcome) bool {
	if r == nil || sp.TraceID == 0 {
		return false
	}
	sp.Outcome = outcome
	sp.Duration = time.Now().UnixNano() - sp.Start
	return r.Record(sp)
}

// Record applies the keep/drop decision to a complete span (one whose
// Duration the caller has already set — used for after-the-fact spans
// like queue-wait and fsync attribution). The fast path for an
// unsampled, unforced, unremarkable span is the seeded hash compare
// plus one atomic load.
func (r *Recorder) Record(sp Span) bool {
	if r == nil || sp.TraceID == 0 {
		return false
	}
	anomalous := sp.Outcome.Anomalous() || (r.slowNS > 0 && sp.Duration >= r.slowNS)
	if !anomalous && !r.Sampled(sp.TraceID) && !r.isForced(sp.TraceID) {
		return false
	}
	if anomalous {
		r.Force(sp.TraceID)
	}
	sh := &r.shards[mix64(sp.TraceID)&r.shardMask]
	sh.mu.Lock()
	if sh.next >= uint64(len(sh.ring)) {
		r.dropped.Add(1)
	}
	sh.ring[sh.next%uint64(len(sh.ring))] = sp
	sh.next++
	sh.mu.Unlock()
	r.recorded.Add(1)
	return true
}

// Snapshot copies out every live span, ordered by start time (stage
// order as tiebreak so same-nanosecond stages render in lifecycle
// order). Cost is proportional to the ring capacity; it is a pull-side
// operation and never blocks writers for longer than one shard copy.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, 256)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := sh.next
		if n > uint64(len(sh.ring)) {
			n = uint64(len(sh.ring))
		}
		for j := uint64(0); j < n; j++ {
			out = append(out, sh.ring[j])
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		if out[a].TraceID != out[b].TraceID {
			return out[a].TraceID < out[b].TraceID
		}
		return out[a].Stage < out[b].Stage
	})
	return out
}

// TraceSpans returns the captured spans of one trace, in snapshot
// order.
func (r *Recorder) TraceSpans(id uint64) []Span {
	var out []Span
	for _, sp := range r.Snapshot() {
		if sp.TraceID == id {
			out = append(out, sp)
		}
	}
	return out
}

// Stats returns how many spans were recorded and how many ring slots
// were overwritten before being snapshotted.
func (r *Recorder) Stats() (recorded, dropped uint64) {
	if r == nil {
		return 0, 0
	}
	return r.recorded.Load(), r.dropped.Load()
}

// FormatID renders a trace ID for the wire and for alert payloads
// (lower-case hex, no padding). Zero renders as "0" but should not be
// put on the wire — zero means untraced.
func FormatID(id uint64) string { return formatHex(id) }

// ParseID parses FormatID output; returns 0 for anything malformed.
func ParseID(s string) uint64 {
	if s == "" || len(s) > 16 {
		return 0
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0
		}
	}
	return v
}

func formatHex(id uint64) string {
	if id == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = "0123456789abcdef"[id&0xf]
		id >>= 4
	}
	return string(buf[i:])
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit
// mixer used for sharding, the forced-set probe, and the seeded
// sampling decision.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
