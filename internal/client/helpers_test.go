package client_test

import (
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/proto"
)

// newSecEnvelopeMessage fabricates a pipe message that looks like a
// secure envelope to a client without the security extension.
func newSecEnvelopeMessage() *endpoint.Message {
	return endpoint.NewMessage().
		Add(proto.ElemEnvelope, []byte{0xFF, 0x00, 0x01}).
		AddString(proto.ElemGroup, "math")
}
