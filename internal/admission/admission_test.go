package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// testClock is a manually advanced time source.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1_700_000_000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBurstThenRefusal(t *testing.T) {
	clk := newTestClock()
	l := New(Config{Rate: 10, Burst: 4, Clock: clk.Now})
	for i := 0; i < 4; i++ {
		if d := l.Allow("alice"); !d.Allowed {
			t.Fatalf("op %d refused inside burst", i)
		}
	}
	if d := l.Allow("alice"); d.Allowed {
		t.Fatal("op admitted past exhausted bucket with no time elapsed")
	}
	m := l.Metrics()
	if m.Allowed != 4 || m.Limited != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRefill(t *testing.T) {
	clk := newTestClock()
	l := New(Config{Rate: 10, Burst: 4, Clock: clk.Now})
	for i := 0; i < 4; i++ {
		l.Allow("alice")
	}
	if l.Allow("alice").Allowed {
		t.Fatal("bucket not empty")
	}
	clk.Advance(100 * time.Millisecond) // one token at 10/s
	if !l.Allow("alice").Allowed {
		t.Fatal("token not refilled after 100ms at rate 10/s")
	}
	if l.Allow("alice").Allowed {
		t.Fatal("refill over-credited")
	}
	// Refill never exceeds the burst depth.
	clk.Advance(time.Hour)
	for i := 0; i < 4; i++ {
		if !l.Allow("alice").Allowed {
			t.Fatalf("op %d refused after full refill", i)
		}
	}
	if l.Allow("alice").Allowed {
		t.Fatal("idle refill exceeded burst")
	}
}

func TestIsolationBetweenCredentials(t *testing.T) {
	clk := newTestClock()
	l := New(Config{Rate: 5, Burst: 2, Clock: clk.Now})
	for i := 0; i < 50; i++ {
		l.Allow("flooder")
	}
	if !l.Allow("bob").Allowed {
		t.Fatal("a flooding credential starved an unrelated one")
	}
}

func TestOffenseEscalation(t *testing.T) {
	clk := newTestClock()
	l := New(Config{Rate: 1, Burst: 1, OffenseThreshold: 4, Clock: clk.Now})
	l.Allow("mallory") // drains the bucket
	alerts := 0
	for i := 0; i < 12; i++ {
		if d := l.Allow("mallory"); d.Alert {
			alerts++
			if d.Offenses%4 != 0 {
				t.Errorf("alert at offense count %d, want multiples of 4", d.Offenses)
			}
		}
	}
	if alerts != 3 {
		t.Fatalf("12 refusals at threshold 4 raised %d alerts, want 3", alerts)
	}
	if m := l.Metrics(); m.Alerts != 3 {
		t.Fatalf("metrics.Alerts = %d, want 3", m.Alerts)
	}
}

func TestSuccessResetsOffenseStreak(t *testing.T) {
	clk := newTestClock()
	l := New(Config{Rate: 10, Burst: 1, OffenseThreshold: 4, Clock: clk.Now})
	l.Allow("alice")
	for i := 0; i < 3; i++ {
		l.Allow("alice") // 3 offenses, below threshold
	}
	clk.Advance(time.Second) // refill; success resets the streak
	if !l.Allow("alice").Allowed {
		t.Fatal("refilled op refused")
	}
	for i := 0; i < 3; i++ {
		if d := l.Allow("alice"); d.Alert {
			t.Fatal("streak not reset by a successful op")
		}
	}
}

func TestExternalOffenseFeedsSameEscalation(t *testing.T) {
	clk := newTestClock()
	l := New(Config{Rate: 100, Burst: 100, OffenseThreshold: 3, Clock: clk.Now})
	// Quota refusals escalate even though the rate bucket is full.
	var alerted bool
	for i := 0; i < 3; i++ {
		if d := l.Offense("chatty"); d.Alert {
			alerted = true
		}
	}
	if !alerted {
		t.Fatal("3 external offenses at threshold 3 raised no alert")
	}
	// And tokens were not consumed.
	if !l.Allow("chatty").Allowed {
		t.Fatal("Offense consumed tokens")
	}
}

func TestTrackedBound(t *testing.T) {
	clk := newTestClock()
	l := New(Config{Rate: 1000, Burst: 4, MaxTracked: 64, Clock: clk.Now})
	for i := 0; i < 1000; i++ {
		l.Allow(fmt.Sprintf("peer-%d", i))
		clk.Advance(10 * time.Millisecond) // older buckets refill to idle
	}
	if m := l.Metrics(); m.Tracked > 64 {
		t.Fatalf("tracked %d buckets, cap 64", m.Tracked)
	}
}

func TestConcurrentAllow(t *testing.T) {
	l := New(Config{Rate: 1e9, Burst: 1e9})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			key := fmt.Sprintf("p%d", n%4)
			for j := 0; j < 1000; j++ {
				l.Allow(key)
			}
		}(i)
	}
	wg.Wait()
	if m := l.Metrics(); m.Allowed != 8000 {
		t.Fatalf("allowed = %d, want 8000", m.Allowed)
	}
}
