package core_test

import (
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// presenceAdv builds an unsigned presence advertisement document.
func presenceAdv(peer keys.PeerID, group string) *xmldoc.Element {
	pres := &advert.Presence{
		PeerID: peer,
		Name:   "someone",
		Group:  group,
		Status: advert.StatusOnline,
		Seen:   time.Now(),
	}
	doc, err := pres.Document()
	if err != nil {
		panic(err)
	}
	return doc
}
