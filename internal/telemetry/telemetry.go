// Package telemetry is the system's unified metrics layer: a
// lock-cheap registry of named counters, gauges and histograms with a
// stable snapshot API, exported as Prometheus-style text or JSON.
//
// Two usage patterns, chosen per call site by cost:
//
//   - Counter/Histogram instruments are owned by the registry and
//     updated inline (one atomic add on the hot path). They are for
//     code that has no counter of its own — scenario drivers, delivery
//     latency, admission decisions.
//   - GaugeFunc collectors PULL from counters a subsystem already
//     keeps (relay.Metrics, lru cache stats, advert.ParseCalls,
//     keys.SignCalls). Registration costs the hot path nothing at all:
//     the closure runs only when a snapshot is taken. This is how the
//     existing per-subsystem counters are unified without touching
//     their fast paths — see core.RegisterBrokerTelemetry.
//
// Snapshots are point-in-time and internally consistent per metric
// (each value is one atomic load or one collector call); they are not
// a cross-metric transaction, which monitoring does not need.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero Counter is not
// usable; obtain one from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed exponential buckets. Bucket
// i counts observations <= Buckets[i]; the implicit last bucket counts
// the rest. Observe is one atomic add plus a branch-free bucket search
// over a small slice — cheap enough for per-message latency.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []atomic.Uint64
	sum    atomic.Uint64 // total, in the observed unit, truncated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
}

// Count returns how many observations the histogram has absorbed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) from the recorded
// buckets, interpolating within the winning bucket. With no
// observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	seen := uint64(0)
	lower := 0.0
	for i := range h.counts {
		n := h.counts[i].Load()
		upper := math.Inf(1)
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		if float64(seen+n) >= rank && n > 0 {
			if math.IsInf(upper, 1) {
				return lower
			}
			frac := (rank - float64(seen)) / float64(n)
			return lower + (upper-lower)*frac
		}
		seen += n
		lower = upper
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// Sample is one metric in a snapshot.
type Sample struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge", "histogram"
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

type metric struct {
	name    string
	help    string
	kind    string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	collect func() float64 // GaugeFunc
}

// Registry holds a set of named metrics. Registration takes a lock;
// instrument updates are lock-free atomics. The zero value is not
// usable; call New.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	routes  map[string]http.Handler // extra HTTP routes mounted by Handler (see Handle)
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry used by tools (overlaysim, the
// scenario driver) for process-scoped sources. Libraries take a
// *Registry explicitly.
var Default = New()

func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[m.name]; ok {
		if old.kind != m.kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", m.name, m.kind, old.kind))
		}
		// Instruments are idempotent by name (the same counter is
		// returned); collectors are replaced, so re-wiring a restarted
		// subsystem (e.g. a recovered relay) rebinds the name to the
		// live instance instead of a dead closure.
		if m.collect != nil {
			old.collect = m.collect
		}
		return old
	}
	r.metrics[m.name] = m
	return m
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, kind: "counter", counter: &Counter{}})
	return m.counter
}

// Gauge returns the settable gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{name: name, help: help, kind: "gauge", gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a pull collector: fn runs at snapshot time only,
// so instrumenting an existing counter costs its hot path nothing.
// Re-registering a name replaces the collector.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: "gauge", collect: fn})
}

// CounterFunc is GaugeFunc for sources that are semantically monotonic
// (exposition kind "counter"); the collector contract is identical.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: "counter", collect: fn})
}

// Histogram returns the histogram registered under name with the given
// ascending bucket upper bounds (defensively copied).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	m := r.register(&metric{name: name, help: help, kind: "histogram", hist: h})
	return m.hist
}

// LatencyBucketsMS is a general-purpose latency bucket layout
// (milliseconds, ~2.5x exponential) used by the scenario drivers.
var LatencyBucketsMS = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Snapshot returns every metric's current value, sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Kind: m.kind}
		switch {
		case m.collect != nil:
			s.Value = m.collect()
		case m.counter != nil:
			s.Value = float64(m.counter.Value())
		case m.gauge != nil:
			s.Value = float64(m.gauge.Value())
		case m.hist != nil:
			s.Count = m.hist.count.Load()
			s.Sum = float64(m.hist.sum.Load())
			s.Bounds = m.hist.bounds
			s.Buckets = make([]uint64, len(m.hist.counts))
			for i := range m.hist.counts {
				s.Buckets[i] = m.hist.counts[i].Load()
			}
			s.Value = float64(s.Count)
		}
		out = append(out, s)
	}
	return out
}

// Get returns the current value of one metric by name (histograms
// report their observation count) and whether it exists. Intended for
// tests and gating scripts, not hot paths.
func (r *Registry) Get(name string) (float64, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// WriteText renders the snapshot in a Prometheus-style exposition
// format: "# HELP"/"# TYPE" comments followed by one value line per
// metric (histograms additionally emit cumulative _bucket lines).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	help := make(map[string]string, len(r.metrics))
	for name, m := range r.metrics {
		help[name] = m.help
	}
	r.mu.Unlock()
	for _, s := range r.Snapshot() {
		if h := help[s.Name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		if s.Kind == "histogram" {
			cum := uint64(0)
			for i, b := range s.Buckets {
				cum += b
				le := "+Inf"
				if i < len(s.Bounds) {
					le = fmt.Sprintf("%g", s.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", s.Name, s.Sum, s.Name, s.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as a JSON array of Samples — the
// machine-readable form `admin metrics` consumes.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
