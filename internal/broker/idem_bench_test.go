package broker

import (
	"fmt"
	"testing"

	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
)

// BenchmarkIdemOverhead prices the idempotency dedup window at its two
// operating points. "hit" is the retry fast path — a resubmitted
// mutation answered from the table instead of re-executed — held to an
// absolute nanosecond ceiling and exactly zero allocations in
// bench_compare.sh (the peer-first two-level table exists so this
// lookup never builds a scoped key string). "store" caches one
// acknowledged response; it allocates by design (a map insert) and is
// held to a wall-clock ceiling only, measured at steady state inside a
// bounded key set so amortized sweeps, not evictions, set the price.
func BenchmarkIdemOverhead(b *testing.B) {
	peer := keys.PeerID("urn:jxta:bench-peer")
	resp := endpoint.NewMessage()
	b.Run("hit", func(b *testing.B) {
		var c idemCache
		c.store(peer, "ik-bench", resp)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := c.lookup(peer, "ik-bench"); !ok {
				b.Fatal("cached response missing")
			}
		}
	})
	b.Run("store", func(b *testing.B) {
		var c idemCache
		ks := make([]string, 1024)
		for i := range ks {
			ks[i] = fmt.Sprintf("ik-bench-%04d", i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.store(peer, ks[i%len(ks)], resp)
		}
	})
}
