// Package parallel provides the bounded fan-out primitive the hot paths
// share: group message sealing and sending, recipient verification, and
// broker advertisement propagation all run per-recipient work under a
// concurrency cap. Centralizing the semaphore/WaitGroup scaffolding
// keeps the cap semantics (and any future fix to them) in one place.
package parallel

import "sync"

// ForEach invokes fn(i) for every i in [0, n), running at most limit
// invocations concurrently, and returns when all have finished. A limit
// below one is raised to one. Results and errors are the caller's to
// collect (typically into a pre-sized slice indexed by i, which needs
// no locking since every worker writes its own element).
func ForEach(limit, n int, fn func(i int)) {
	if limit < 1 {
		limit = 1
	}
	if n <= 0 {
		return
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}
