package relay_test

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/relay/wal"
	"jxtaoverlay/internal/waituntil"
)

// TestRecoveryMatchesModel drives a durable relay through random
// interleavings of submit / deliver / time-passing, optionally crashes
// the log at a random fault point, restarts, and checks the recovered
// queues against an in-memory model of the same history filtered by
// TTL and the delivery acks. The invariants under test:
//
//   - no loss: every fsync-acknowledged, undelivered, unexpired
//     submission is in a queue after recovery;
//   - no resurrection: items delivered or expired while the log was
//     healthy never come back;
//   - no pre-crash double delivery: an item delivered AND acked before
//     the crash is never delivered again (items delivered after the
//     log died may redeliver — that is the documented at-least-once
//     residue the recipient's replay guard absorbs).
func TestRecoveryMatchesModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runRecoveryModel(t, rand.New(rand.NewSource(seed)))
		})
	}
}

type modelItem struct {
	payload string
	expires time.Time
}

// expireModel drops every model item dead at now; safe to call early
// (an item expired at T is still expired at any later T').
func expireModel(queues map[keys.PeerID][]modelItem, now time.Time) {
	for id, q := range queues {
		kept := q[:0]
		for _, it := range q {
			if !now.After(it.expires) {
				kept = append(kept, it)
			}
		}
		if len(kept) == 0 {
			delete(queues, id)
		} else {
			queues[id] = kept
		}
	}
}

func runRecoveryModel(t *testing.T, rng *rand.Rand) {
	dir := t.TempDir()
	var clock atomic.Int64
	now := func() time.Time { return time.Unix(1_000_000+clock.Load(), 0) }
	peers := []keys.PeerID{"alice", "bob", "carol", "dave"}

	// Sync-per-append (SyncInterval 0): every submission accepted while
	// the log is healthy is fsync-acknowledged, so the model may count
	// it durable. When armed, the fault kills the log at crashPoint and
	// the relay runs memory-only from then on.
	var armed atomic.Bool
	crashPoint := []wal.FaultPoint{wal.BeforeAppend, wal.AfterAppend, wal.BeforeSync, wal.AfterSync}[rng.Intn(4)]
	cfg := relay.Config{TTL: time.Hour, Clock: now, QueueCap: 1 << 16}
	cfg.WAL.Dir = dir
	cfg.WAL.Faults = func(fp wal.FaultPoint) error {
		if armed.Load() && fp == crashPoint {
			return wal.ErrInjected
		}
		return nil
	}

	s := newSink()
	r, err := relay.New(cfg, s.isOnline, s.deliver)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[keys.PeerID][]modelItem)

	submit := func(i int) {
		to := peers[rng.Intn(len(peers))]
		payload := fmt.Sprintf("op%d", i)
		it := relay.Item{To: to, From: "sender", Group: "g", Payload: []byte(payload)}
		if rng.Intn(4) == 0 {
			it.Expires = now().Add(time.Duration(1+rng.Intn(90)) * time.Second)
		}
		if r.Submit(it) != relay.SubmitQueued {
			t.Fatalf("op %d: submit not queued", i)
		}
		exp := it.Expires
		if exp.IsZero() {
			exp = now().Add(cfg.TTL)
		}
		if !armed.Load() {
			model[to] = append(model[to], modelItem{payload, exp})
		}
	}
	deliverAll := func(id keys.PeerID) {
		s.setOnline(id, true)
		r.Flush(id)
		waitQuiet(t, r, id)
		s.setOnline(id, false)
		if !armed.Load() {
			// Healthy log: the delivery acks landed, nothing comes back.
			delete(model, id)
		}
		// Dead log: acks were lost, so the model KEEPS these items —
		// they resurrect at recovery and redeliver (at-least-once).
	}

	ops := 60 + rng.Intn(60)
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			submit(i)
		case 6, 7:
			deliverAll(peers[rng.Intn(len(peers))])
		case 8, 9:
			clock.Add(int64(10 + rng.Intn(40)))
		}
	}

	// Half the histories end in a crash: snapshot what was delivered
	// under a healthy log (those may never redeliver), arm the fault,
	// and run a short memory-only tail the recovery must NOT reflect —
	// except for delivered-but-unacked items, which must resurrect.
	ackedDelivery := make(map[keys.PeerID]map[string]bool)
	for _, id := range peers {
		ackedDelivery[id] = make(map[string]bool)
		for _, p := range s.got(id) {
			ackedDelivery[id][p] = true
		}
	}
	if rng.Intn(2) == 0 {
		armed.Store(true)
		// The submission that trips the fault: its record reaches the
		// disk unless the crash fired before the append wrote it.
		to := peers[rng.Intn(len(peers))]
		it := relay.Item{To: to, From: "sender", Group: "g", Payload: []byte("crash-trigger")}
		if r.Submit(it) != relay.SubmitQueued {
			t.Fatal("crash-trigger submit not queued")
		}
		if r.Metrics().WALErrors == 0 {
			t.Fatal("fault did not fire")
		}
		if crashPoint != wal.BeforeAppend {
			model[to] = append(model[to], modelItem{"crash-trigger", now().Add(cfg.TTL)})
		}
		for i := 0; i < 10+rng.Intn(10); i++ {
			switch rng.Intn(3) {
			case 0:
				submit(1000 + i) // memory-only: lost at restart
			case 1:
				deliverAll(peers[rng.Intn(len(peers))]) // unacked: resurrects
			case 2:
				clock.Add(int64(rng.Intn(30)))
			}
		}
	}
	r.Close()
	expireModel(model, now()) // recovery re-enforces TTL at this instant

	s2 := newSink()
	cfg2 := relay.Config{TTL: time.Hour, Clock: now, QueueCap: 1 << 16}
	cfg2.WAL.Dir = dir
	r2, err := relay.New(cfg2, s2.isOnline, s2.deliver)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	for _, id := range peers {
		want := payloadsOf(model[id])
		if got := r2.QueueLen(id); got != len(want) {
			t.Fatalf("peer %s: recovered %d items, model has %d %v", id, got, len(want), want)
		}
		s2.setOnline(id, true)
		r2.Flush(id)
		waitQuiet(t, r2, id)
		got := s2.got(id)
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("peer %s: recovered %v, model %v", id, got, want)
		}
		for _, p := range got {
			if ackedDelivery[id][p] {
				t.Fatalf("peer %s: %s delivered under a healthy log AND after recovery", id, p)
			}
		}
	}
}

func payloadsOf(items []modelItem) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, it.payload)
	}
	sort.Strings(out)
	return out
}

// waitQuiet blocks until the peer's queue drains (online delivery
// cannot fail in these tests, so a drain always empties it).
func waitQuiet(t *testing.T, r *relay.Relay, id keys.PeerID) {
	t.Helper()
	waituntil.Must(t, 5*time.Second, func() bool {
		if r.QueueLen(id) == 0 {
			return true
		}
		r.Flush(id)
		return false
	}, "queue for %s never drained", id)
}
