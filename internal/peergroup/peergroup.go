// Package peergroup models JXTA-Overlay's overlapping peer groups: end
// users are organized into groups by the broker, and only members of the
// same group may interact. A peer may belong to any number of groups at
// once.
package peergroup

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"jxtaoverlay/internal/keys"
)

// Member is one peer's membership in a group.
type Member struct {
	PeerID keys.PeerID
	Name   string
	Joined time.Time
}

// Group is a named peer group.
type Group struct {
	ID      string
	Name    string
	Desc    string
	Creator keys.PeerID

	mu      sync.RWMutex
	members map[keys.PeerID]Member
}

// Members returns the current members sorted by peer ID.
func (g *Group) Members() []Member {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Member, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PeerID < out[j].PeerID })
	return out
}

// MemberIDs returns just the peer IDs, sorted.
func (g *Group) MemberIDs() []keys.PeerID {
	members := g.Members()
	out := make([]keys.PeerID, len(members))
	for i, m := range members {
		out[i] = m.PeerID
	}
	return out
}

// Has reports whether the peer is a member.
func (g *Group) Has(id keys.PeerID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.members[id]
	return ok
}

// Size returns the member count.
func (g *Group) Size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.members)
}

// Errors reported by the registry.
var (
	ErrExists    = errors.New("peergroup: group already exists")
	ErrNotFound  = errors.New("peergroup: group not found")
	ErrNotMember = errors.New("peergroup: peer is not a member")
)

// Registry is the broker-side (and client-side mirror) group table.
type Registry struct {
	mu     sync.RWMutex
	groups map[string]*Group // by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: make(map[string]*Group)}
}

// Create registers a new group.
func (r *Registry) Create(id, name, desc string, creator keys.PeerID) (*Group, error) {
	if name == "" {
		return nil, errors.New("peergroup: empty group name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.groups[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	g := &Group{
		ID:      id,
		Name:    name,
		Desc:    desc,
		Creator: creator,
		members: make(map[keys.PeerID]Member),
	}
	r.groups[name] = g
	return g, nil
}

// Ensure returns the named group, creating it if needed.
func (r *Registry) Ensure(id, name, desc string, creator keys.PeerID) *Group {
	if g, err := r.Get(name); err == nil {
		return g
	}
	g, err := r.Create(id, name, desc, creator)
	if err != nil {
		// Lost a race; the group now exists.
		g, _ = r.Get(name)
	}
	return g
}

// Get returns the named group.
func (r *Registry) Get(name string) (*Group, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.groups[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return g, nil
}

// Join adds a member to the named group.
func (r *Registry) Join(name string, id keys.PeerID, humanName string) error {
	g, err := r.Get(name)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members[id] = Member{PeerID: id, Name: humanName, Joined: time.Now()}
	return nil
}

// Leave removes a member from the named group.
func (r *Registry) Leave(name string, id keys.PeerID) error {
	g, err := r.Get(name)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[id]; !ok {
		return fmt.Errorf("%w: %s in %q", ErrNotMember, id, name)
	}
	delete(g.members, id)
	return nil
}

// LeaveAll removes the peer from every group (client disconnect).
func (r *Registry) LeaveAll(id keys.PeerID) {
	r.mu.RLock()
	groups := make([]*Group, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	r.mu.RUnlock()
	for _, g := range groups {
		g.mu.Lock()
		delete(g.members, id)
		g.mu.Unlock()
	}
}

// List returns all group names, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.groups))
	for name := range r.groups {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// GroupsOf returns the names of every group the peer belongs to, sorted
// (overlapping membership).
func (r *Registry) GroupsOf(id keys.PeerID) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for name, g := range r.groups {
		if g.Has(id) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// SameGroup reports whether two peers share at least one group — the
// JXTA-Overlay interaction precondition.
func (r *Registry) SameGroup(a, b keys.PeerID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, g := range r.groups {
		if g.Has(a) && g.Has(b) {
			return true
		}
	}
	return false
}
