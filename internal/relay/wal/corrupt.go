package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Deterministic on-disk corruption, used by the fault-injection matrix
// (internal/attack, internal/integration) to simulate the two damage
// shapes recovery must absorb: a record torn in half by a crash
// mid-write, and a bit flipped by the disk (or an attacker) under an
// intact length frame. These operate on a CLOSED log's directory.

// ErrNoRecords means the directory holds no complete record to corrupt.
var ErrNoRecords = errors.New("wal: no records to corrupt")

// finalSegment returns the path of the highest-numbered segment.
func finalSegment(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var segs []int
	for _, e := range entries {
		var i int
		if n, _ := fmt.Sscanf(e.Name(), "seg-%d.wal", &i); n == 1 {
			segs = append(segs, i)
		}
	}
	if len(segs) == 0 {
		return "", ErrNoRecords
	}
	sort.Ints(segs)
	return filepath.Join(dir, segName(segs[len(segs)-1])), nil
}

// lastRecordOffset scans the final segment and returns its path, the
// offset of the last complete record, and that record's length.
func lastRecordOffset(dir string) (path string, off, size int, err error) {
	path, err = finalSegment(dir)
	if err != nil {
		return "", 0, 0, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", 0, 0, err
	}
	pos, found := 0, false
	for pos < len(data) {
		_, n, derr := DecodeRecord(data[pos:])
		if derr != nil {
			break
		}
		off, size, found = pos, n, true
		pos += n
	}
	if !found {
		return "", 0, 0, ErrNoRecords
	}
	return path, off, size, nil
}

// TearFinalRecord truncates the final segment mid-way through its last
// record — the torn tail an interrupted append leaves behind.
func TearFinalRecord(dir string) error {
	path, off, size, err := lastRecordOffset(dir)
	if err != nil {
		return err
	}
	return os.Truncate(path, int64(off+size/2))
}

// FlipTailCRC flips one bit inside the last record's body, leaving the
// length frame intact, so the record decodes far enough to fail its CRC
// check rather than its framing.
func FlipTailCRC(dir string) error {
	path, off, size, err := lastRecordOffset(dir)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	// Flip a bit in the middle of the body (past the 8-byte header).
	pos := int64(off + headerSize + (size-headerSize)/2)
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, pos); err != nil {
		return err
	}
	b[0] ^= 0x10
	_, err = f.WriteAt(b, pos)
	return err
}
