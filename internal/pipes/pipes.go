// Package pipes implements JXTA pipes — the virtual communication
// channels the Control Module uses for direct messaging between
// JXTA-Overlay entities. A peer binds an InputPipe for each group it
// belongs to (brokers bind a single shared one); other peers resolve the
// matching pipe advertisement into an OutputPipe and send messages
// through it.
//
// Unicast pipes map to a single endpoint service; propagate pipes fan
// out to the current members of a group as reported by a MemberProvider
// (in JXTA-Overlay the broker's view of the group).
package pipes

import (
	"context"
	"errors"
	"fmt"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
)

// servicePrefix namespaces pipe traffic inside the endpoint demux.
const servicePrefix = "jxta:pipe:"

// Errors returned by pipe operations.
var (
	ErrClosed      = errors.New("pipes: pipe closed")
	ErrNotOwner    = errors.New("pipes: advertisement names a different peer")
	ErrWrongType   = errors.New("pipes: wrong pipe type for operation")
	ErrNoProvider  = errors.New("pipes: propagate pipe requires a member provider")
	ErrBufferFull  = errors.New("pipes: input pipe buffer full, message dropped")
	errNilElements = errors.New("pipes: nil advertisement or service")
)

// Delivery is one message received on an input pipe. From is the sender
// identifier claimed in the message envelope; absent the security
// extension it is unauthenticated.
type Delivery struct {
	From keys.PeerID
	Msg  *endpoint.Message
}

// InputPipe is the receiving end of a pipe.
type InputPipe struct {
	adv  *advert.Pipe
	svc  *endpoint.Service
	ch   chan Delivery
	done chan struct{}
}

// CreateInputPipe binds the advertisement's pipe on this peer's endpoint
// and starts queuing deliveries (up to buffer messages; further messages
// are dropped, matching JXTA's best-effort unicast pipes).
func CreateInputPipe(svc *endpoint.Service, adv *advert.Pipe, buffer int) (*InputPipe, error) {
	if svc == nil || adv == nil {
		return nil, errNilElements
	}
	if adv.PeerID != svc.PeerID() {
		return nil, fmt.Errorf("%w: %s", ErrNotOwner, adv.PeerID)
	}
	if buffer <= 0 {
		buffer = 64
	}
	ip := &InputPipe{
		adv:  adv,
		svc:  svc,
		ch:   make(chan Delivery, buffer),
		done: make(chan struct{}),
	}
	svc.RegisterHandler(servicePrefix+adv.PipeID, func(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
		select {
		case <-ip.done:
		case ip.ch <- Delivery{From: from, Msg: msg}:
		default:
			// Buffer full: best-effort drop.
		}
		return nil
	})
	return ip, nil
}

// Advertisement returns the pipe's advertisement.
func (ip *InputPipe) Advertisement() *advert.Pipe { return ip.adv }

// Receive blocks for the next delivery or context cancellation.
func (ip *InputPipe) Receive(ctx context.Context) (Delivery, error) {
	select {
	case d := <-ip.ch:
		return d, nil
	case <-ip.done:
		return Delivery{}, ErrClosed
	case <-ctx.Done():
		return Delivery{}, ctx.Err()
	}
}

// Chan exposes the delivery channel for select-based consumers.
func (ip *InputPipe) Chan() <-chan Delivery { return ip.ch }

// Done is closed when the pipe closes; pair it with Chan in selects.
func (ip *InputPipe) Done() <-chan struct{} { return ip.done }

// Close unbinds the pipe. Pending buffered deliveries remain readable
// from Chan until drained.
func (ip *InputPipe) Close() {
	select {
	case <-ip.done:
		return
	default:
	}
	close(ip.done)
	ip.svc.UnregisterHandler(servicePrefix + ip.adv.PipeID)
}

// MemberProvider reports the current members of a group; propagate
// pipes use it to resolve their fan-out set at send time.
type MemberProvider interface {
	Members(group string) []keys.PeerID
}

// MemberProviderFunc adapts a function to the MemberProvider interface.
type MemberProviderFunc func(group string) []keys.PeerID

// Members implements MemberProvider.
func (f MemberProviderFunc) Members(group string) []keys.PeerID { return f(group) }

// OutputPipe is the sending end of a resolved pipe.
type OutputPipe struct {
	adv      *advert.Pipe
	svc      *endpoint.Service
	provider MemberProvider
}

// ResolveOutputPipe binds an output pipe to a unicast pipe
// advertisement.
func ResolveOutputPipe(svc *endpoint.Service, adv *advert.Pipe) (*OutputPipe, error) {
	if svc == nil || adv == nil {
		return nil, errNilElements
	}
	if adv.PipeType != advert.PipeUnicast {
		return nil, fmt.Errorf("%w: %s", ErrWrongType, adv.PipeType)
	}
	return &OutputPipe{adv: adv, svc: svc}, nil
}

// ResolvePropagatePipe binds an output pipe to a propagate pipe
// advertisement; sends fan out to the provider's current member list.
func ResolvePropagatePipe(svc *endpoint.Service, adv *advert.Pipe, provider MemberProvider) (*OutputPipe, error) {
	if svc == nil || adv == nil {
		return nil, errNilElements
	}
	if adv.PipeType != advert.PipePropagate {
		return nil, fmt.Errorf("%w: %s", ErrWrongType, adv.PipeType)
	}
	if provider == nil {
		return nil, ErrNoProvider
	}
	return &OutputPipe{adv: adv, svc: svc, provider: provider}, nil
}

// Advertisement returns the resolved advertisement.
func (op *OutputPipe) Advertisement() *advert.Pipe { return op.adv }

// Send delivers the message through the pipe. For unicast pipes this is
// a single endpoint send to the advertised peer. For propagate pipes the
// message is sent to every current group member except the sender; the
// first error is returned after attempting all members.
func (op *OutputPipe) Send(msg *endpoint.Message) error {
	if op.adv.PipeType == advert.PipeUnicast {
		return op.svc.Send(op.adv.PeerID, servicePrefix+op.adv.PipeID, msg)
	}
	var firstErr error
	for _, member := range op.provider.Members(op.adv.Group) {
		if member == op.svc.PeerID() {
			continue
		}
		if err := op.svc.Send(member, servicePrefix+op.adv.PipeID, msg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
