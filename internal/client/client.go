// Package client implements the Client Module: the primitive API every
// JXTA-Overlay application is built on. Applications invoke primitives
// (connect, login, sendMsgPeer, group and file operations) and react to
// events thrown by functions executed when messages arrive from other
// peers or the broker.
//
// This module reproduces the original, insecure primitives: login ships
// the username and password in the clear, message sources are taken on
// faith, and advertisements are accepted unverified. The security
// extension in internal/core layers the secure primitives on top of the
// same machinery.
package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/control"
	"jxtaoverlay/internal/discovery"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/pipes"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/telemetry"
	"jxtaoverlay/internal/trace"
	"jxtaoverlay/internal/xmldoc"
)

// Errors returned by primitives.
var (
	ErrNotConnected = errors.New("client: not connected to a broker")
	ErrNotLoggedIn  = errors.New("client: not logged in")
	ErrLoginFailed  = errors.New("client: login failed")
	ErrNoPipe       = errors.New("client: destination pipe advertisement not found")
	ErrBrokerOp     = errors.New("client: broker operation failed")
	// ErrRelayQuota wraps ErrBrokerOp for the relay's quota refusal: the
	// relay is up, but this sender (or its group) must let its queued
	// backlog drain before uploading more rounds.
	ErrRelayQuota = fmt.Errorf("%w: relay sender/group quota exceeded", ErrBrokerOp)
	// ErrRateLimited wraps ErrBrokerOp for admission-control refusals:
	// this credential exhausted its operation budget at the broker and
	// must back off before retrying. Other credentials are unaffected.
	ErrRateLimited = fmt.Errorf("%w: rate limited by broker admission control", ErrBrokerOp)
)

// OpError is a broker refusal carrying its wire error token. It wraps
// ErrBrokerOp (errors.Is keeps working) while letting resilience
// layers classify the refusal — auth tokens are terminal, liveness
// tokens trigger a session resume — without string matching.
type OpError struct {
	// Token is the stable wire error token (proto.Err*).
	Token string
	// RetryAfter is the broker's backoff hint, when the refusal
	// carried one (0 = none).
	RetryAfter time.Duration
}

// Error formats exactly like the pre-typed "%w: %s" wrapping did.
func (e *OpError) Error() string { return ErrBrokerOp.Error() + ": " + e.Token }

// Unwrap links the refusal to ErrBrokerOp.
func (e *OpError) Unwrap() error { return ErrBrokerOp }

// PeerSummary is one row of a getOnlinePeers result.
type PeerSummary struct {
	ID       keys.PeerID
	Username string
	Status   string
}

// EnvelopeHandler lets the security extension intercept pipe deliveries
// carrying secure envelopes. Return true when the delivery was consumed.
type EnvelopeHandler func(group string, d pipes.Delivery) bool

// Client is one client peer.
type Client struct {
	ep  *endpoint.Service
	ctl *control.Module
	mem membership.Service

	mu        sync.RWMutex
	broker    keys.PeerID
	identity  *membership.Identity
	username  string
	groups    []string
	loggedIn  bool
	envelope  EnvelopeHandler
	advSigner AdvSigner

	timeout time.Duration
	started time.Time

	// Observability (see observe.go): nil/unset means disabled.
	tracer   atomic.Pointer[trace.Recorder]
	delivery atomic.Pointer[telemetry.Histogram]
}

// New attaches a client peer to the network. The membership service
// establishes the peer identity for the alias (a legacy ID for None, a
// CBID for PSE).
func New(net *simnet.Network, mem membership.Service, alias string) (*Client, error) {
	id, err := mem.Join(alias)
	if err != nil {
		return nil, err
	}
	ep, err := endpoint.NewService(net, id.PeerID)
	if err != nil {
		return nil, err
	}
	c := &Client{
		ep:       ep,
		ctl:      control.New(ep, discovery.NewCache(), events.NewBus()),
		mem:      mem,
		identity: id,
		username: alias,
		timeout:  10 * time.Second,
		started:  time.Now(),
	}
	c.ctl.SetMessageHandler(c.onPipeDelivery)
	ep.RegisterHandler(proto.ClientService, c.onBrokerPush)
	return c, nil
}

// SetTimeout adjusts the per-primitive timeout used when the caller's
// context has no deadline.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Accessors.

// PeerID returns the local peer identifier.
func (c *Client) PeerID() keys.PeerID { return c.identity.PeerID }

// Username returns the end-user alias.
func (c *Client) Username() string { return c.username }

// Identity returns the membership identity.
func (c *Client) Identity() *membership.Identity { return c.identity }

// Membership returns the membership service the client was built with.
func (c *Client) Membership() membership.Service { return c.mem }

// Bus returns the event bus applications subscribe to.
func (c *Client) Bus() *events.Bus { return c.ctl.Bus() }

// Cache returns the local advertisement cache.
func (c *Client) Cache() *discovery.Cache { return c.ctl.Cache() }

// Endpoint returns the peer's endpoint service.
func (c *Client) Endpoint() *endpoint.Service { return c.ep }

// Control returns the control module (used by the security extension).
func (c *Client) Control() *control.Module { return c.ctl }

// Broker returns the connected broker's peer ID ("" before Connect).
func (c *Client) Broker() keys.PeerID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.broker
}

// Groups returns the groups joined in this session.
func (c *Client) Groups() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.groups...)
}

// LoggedIn reports whether a login succeeded in this session.
func (c *Client) LoggedIn() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.loggedIn
}

// Uptime reports how long the peer has been up (statistics primitives).
func (c *Client) Uptime() time.Duration { return time.Since(c.started) }

// SetEnvelopeHandler installs the security extension's interceptor for
// secure message envelopes.
func (c *Client) SetEnvelopeHandler(h EnvelopeHandler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.envelope = h
}

// AdvSigner mutates an advertisement document before publication; the
// security extension installs an XMLdsig signer here so every published
// advertisement (pipes, presence, file lists, statistics) goes out
// signed.
type AdvSigner func(doc *xmldoc.Element) error

// SetAdvSigner installs the advertisement signing hook.
func (c *Client) SetAdvSigner(s AdvSigner) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advSigner = s
}

func (c *Client) signAdv(doc *xmldoc.Element) error {
	c.mu.RLock()
	s := c.advSigner
	c.mu.RUnlock()
	if s == nil {
		return nil
	}
	return s(doc)
}

func (c *Client) withTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// Call performs one broker operation and unwraps the ok/err envelope. It
// is exported for the security extension, which adds its own operations.
func (c *Client) Call(ctx context.Context, msg *endpoint.Message) (*endpoint.Message, error) {
	br := c.Broker()
	if br == "" {
		return nil, ErrNotConnected
	}
	tid := c.traceMsg(msg)
	var sp trace.Span
	if tid != 0 {
		sp = trace.Begin(tid, trace.StageSend)
		if op, ok := msg.GetString(proto.ElemOp); ok {
			sp.SetAttr("op", op)
		}
	}
	resp, err := c.call(ctx, br, msg)
	if tid != 0 {
		c.tracer.Load().End(sp, callOutcome(err))
	}
	return resp, err
}

func (c *Client) call(ctx context.Context, br keys.PeerID, msg *endpoint.Message) (*endpoint.Message, error) {
	ctx, cancel := c.withTimeout(ctx)
	defer cancel()
	resp, err := c.ep.Request(ctx, br, proto.BrokerService, msg)
	if err != nil {
		return nil, err
	}
	if ok, errToken := proto.IsOK(resp); !ok {
		switch errToken {
		case proto.ErrRelayQuota:
			return resp, ErrRelayQuota
		case proto.ErrRateLimited:
			return resp, rateLimitedError(resp)
		}
		return resp, &OpError{Token: errToken}
	}
	return resp, nil
}

// rateLimitedError preserves the ErrRateLimited sentinel while
// attaching the broker's retry-after hint when the refusal carried
// one, so backoff layers can floor their delay on it.
func rateLimitedError(resp *endpoint.Message) error {
	if ms, ok := resp.GetString(proto.ElemRetryAfter); ok {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			return &RateLimitedError{RetryAfter: time.Duration(v) * time.Millisecond}
		}
	}
	return ErrRateLimited
}

// RateLimitedError is an admission refusal with a broker backoff hint.
// It wraps ErrRateLimited (and transitively ErrBrokerOp).
type RateLimitedError struct {
	RetryAfter time.Duration
}

// Error matches the sentinel's message.
func (e *RateLimitedError) Error() string { return ErrRateLimited.Error() }

// Unwrap links the refusal to the ErrRateLimited sentinel.
func (e *RateLimitedError) Unwrap() error { return ErrRateLimited }

// --- discovery primitives ---

// Connect locates the broker and opens the connection (the original
// connect primitive: no legitimacy check whatsoever).
func (c *Client) Connect(ctx context.Context, broker keys.PeerID) error {
	c.mu.Lock()
	c.broker = broker
	c.mu.Unlock()
	c.ep.SetRelay(broker)
	msg := endpoint.NewMessage().AddString(proto.ElemOp, proto.OpConnect)
	resp, err := c.Call(ctx, msg)
	if err != nil {
		c.mu.Lock()
		c.broker = ""
		c.mu.Unlock()
		return err
	}
	name, _ := resp.GetString(proto.ElemBroker)
	c.ctl.Emit(events.Connected, broker, "", map[string]string{"broker": name}, nil)
	return nil
}

// Login authenticates the end user with the original primitive: the
// username and password travel to the broker unprotected.
func (c *Client) Login(ctx context.Context, password string) error {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpLogin).
		AddString(proto.ElemUser, c.username).
		AddString(proto.ElemPass, password)
	resp, err := c.Call(ctx, msg)
	if err != nil {
		c.ctl.Emit(events.LoginFailed, c.Broker(), "", nil, nil)
		return fmt.Errorf("%w: %v", ErrLoginFailed, err)
	}
	groupsCSV, _ := resp.GetString(proto.ElemGroups)
	return c.finishLogin(ctx, splitCSV(groupsCSV))
}

// finishLogin installs the session state shared by the plain and secure
// login paths: group membership, per-group input pipes, and pipe
// advertisement publication.
func (c *Client) finishLogin(ctx context.Context, groups []string) error {
	c.mu.Lock()
	c.loggedIn = true
	c.groups = groups
	c.mu.Unlock()
	for _, g := range groups {
		if err := c.enterGroup(ctx, g); err != nil {
			return err
		}
	}
	c.ctl.Emit(events.LoginOK, c.Broker(), "", map[string]string{
		"user":   c.username,
		"groups": strings.Join(groups, ","),
	}, nil)
	return nil
}

// FinishLogin is the hook the security extension calls after a
// successful secureLogin to reuse the session bring-up.
func (c *Client) FinishLogin(ctx context.Context, groups []string) error {
	return c.finishLogin(ctx, groups)
}

// enterGroup binds the group's input pipe and announces it.
func (c *Client) enterGroup(ctx context.Context, group string) error {
	adv, err := c.ctl.BindGroupPipe(group)
	if err != nil {
		return err
	}
	return c.PublishAdv(ctx, adv)
}

// Logout closes the session.
func (c *Client) Logout(ctx context.Context) error {
	msg := endpoint.NewMessage().AddString(proto.ElemOp, proto.OpLogout)
	_, err := c.Call(ctx, msg)
	c.mu.Lock()
	c.loggedIn = false
	groups := c.groups
	c.groups = nil
	c.mu.Unlock()
	for _, g := range groups {
		c.ctl.UnbindGroupPipe(g)
	}
	c.ctl.Emit(events.Disconnected, c.Broker(), "", nil, nil)
	return err
}

// GetOnlinePeers returns the online peers of a group as seen by the
// broker (empty group = whole network).
func (c *Client) GetOnlinePeers(ctx context.Context, group string) ([]PeerSummary, error) {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpListPeers).
		AddString(proto.ElemGroup, group)
	resp, err := c.Call(ctx, msg)
	if err != nil {
		return nil, err
	}
	return parsePeerList(resp), nil
}

// GetGroupMembers returns every member the broker knows for a group —
// online AND offline — with real presence in Status. This is the
// store-and-forward roster: recipients a relayed round may address even
// while they are logged out.
func (c *Client) GetGroupMembers(ctx context.Context, group string) ([]PeerSummary, error) {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpListPeers).
		AddString(proto.ElemGroup, group).
		AddString(proto.ElemAll, "1")
	resp, err := c.Call(ctx, msg)
	if err != nil {
		return nil, err
	}
	return parsePeerList(resp), nil
}

func parsePeerList(resp *endpoint.Message) []PeerSummary {
	raw, _ := resp.GetString(proto.ElemPeers)
	var out []PeerSummary
	for _, line := range strings.Split(raw, "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "|", 3)
		if len(parts) != 3 {
			continue
		}
		out = append(out, PeerSummary{ID: keys.PeerID(parts[0]), Username: parts[1], Status: parts[2]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- advertisement primitives ---

// PublishAdv publishes an advertisement to the broker, which indexes it
// and propagates it to the relevant group. When an advertisement signer
// is installed (security extension) the document is signed first.
func (c *Client) PublishAdv(ctx context.Context, adv advert.Advertisement) error {
	doc, err := adv.Document()
	if err != nil {
		return err
	}
	if err := c.signAdv(doc); err != nil {
		return err
	}
	return c.PublishAdvDoc(ctx, doc)
}

// PublishAdvDoc publishes a raw advertisement document (used by the
// security extension to publish signed documents verbatim).
func (c *Client) PublishAdvDoc(ctx context.Context, doc *xmldoc.Element) error {
	if _, err := c.ctl.Cache().Put(doc); err != nil {
		return err
	}
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpPublishAdv).
		AddXML(proto.ElemAdv, doc.Canonical())
	_, err := c.Call(ctx, msg)
	return err
}

// LookupAdv finds an advertisement by type and id, first locally, then
// at the broker. The raw document is returned alongside the parsed form
// so callers can verify signatures.
func (c *Client) LookupAdv(ctx context.Context, advType, advID string) (advert.Advertisement, *xmldoc.Element, error) {
	if rec, err := c.ctl.Cache().Lookup(advType, advID); err == nil {
		return rec.Adv, rec.Doc, nil
	}
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpLookupAdv).
		AddString(proto.ElemAdvType, advType).
		AddString(proto.ElemAdvID, advID)
	resp, err := c.Call(ctx, msg)
	if err != nil {
		return nil, nil, err
	}
	return c.cacheAdvResponse(resp)
}

// LookupPipe finds the unicast pipe advertisement of a peer in a group.
func (c *Client) LookupPipe(ctx context.Context, peer keys.PeerID, group string) (*advert.Pipe, *xmldoc.Element, error) {
	recs := c.ctl.Cache().Find(advert.TypePipe, func(a advert.Advertisement) bool {
		p := a.(*advert.Pipe)
		return p.PeerID == peer && p.Group == group
	})
	if len(recs) > 0 {
		return recs[0].Adv.(*advert.Pipe), recs[0].Doc, nil
	}
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpLookupPipe).
		AddString(proto.ElemPeer, string(peer)).
		AddString(proto.ElemGroup, group)
	resp, err := c.Call(ctx, msg)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrNoPipe, err)
	}
	adv, doc, err := c.cacheAdvResponse(resp)
	if err != nil {
		return nil, nil, err
	}
	pipeAdv, ok := adv.(*advert.Pipe)
	if !ok {
		return nil, nil, ErrNoPipe
	}
	return pipeAdv, doc, nil
}

func (c *Client) cacheAdvResponse(resp *endpoint.Message) (advert.Advertisement, *xmldoc.Element, error) {
	raw, ok := resp.Get(proto.ElemAdv)
	if !ok {
		return nil, nil, ErrNoPipe
	}
	doc, err := xmldoc.ParseCanonical(raw)
	if err != nil {
		return nil, nil, err
	}
	adv, err := c.ctl.Cache().Put(doc)
	if err != nil {
		return nil, nil, err
	}
	return adv, doc, nil
}

// --- messenger primitives ---

// SendMsgPeer sends a simple text message to another client peer over
// its group input pipe, without broker intervention (original primitive:
// no privacy, integrity or source authentication).
func (c *Client) SendMsgPeer(ctx context.Context, peer keys.PeerID, group, text string) error {
	pipeAdv, _, err := c.LookupPipe(ctx, peer, group)
	if err != nil {
		return err
	}
	msg := endpoint.NewMessage().
		AddString(proto.ElemBody, text).
		AddString(proto.ElemGroup, group)
	return c.ctl.SendOnPipe(pipeAdv, msg)
}

// SendMsgPeerGroup sends a simple message to every online member of a
// group by iteratively calling SendMsgPeer, exactly as JXTA-Overlay
// resolves the group primitive. It returns the number of peers reached
// and the first error encountered.
func (c *Client) SendMsgPeerGroup(ctx context.Context, group, text string) (int, error) {
	members, err := c.GetOnlinePeers(ctx, group)
	if err != nil {
		return 0, err
	}
	sent := 0
	var firstErr error
	for _, m := range members {
		if m.ID == c.PeerID() {
			continue
		}
		if err := c.SendMsgPeer(ctx, m.ID, group, text); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	return sent, firstErr
}

// --- group primitives ---

// CreateGroup registers a new group at the broker.
func (c *Client) CreateGroup(ctx context.Context, name, desc string) error {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpGroupCreate).
		AddString(proto.ElemGroup, name).
		AddString(proto.ElemDesc, desc)
	_, err := c.Call(ctx, msg)
	return err
}

// JoinGroup joins a group and binds its messaging pipe.
func (c *Client) JoinGroup(ctx context.Context, name string) error {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpGroupJoin).
		AddString(proto.ElemGroup, name)
	if _, err := c.Call(ctx, msg); err != nil {
		return err
	}
	c.mu.Lock()
	if !containsString(c.groups, name) {
		c.groups = append(c.groups, name)
	}
	c.mu.Unlock()
	return c.enterGroup(ctx, name)
}

// LeaveGroup leaves a group and unbinds its pipe.
func (c *Client) LeaveGroup(ctx context.Context, name string) error {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpGroupLeave).
		AddString(proto.ElemGroup, name)
	if _, err := c.Call(ctx, msg); err != nil {
		return err
	}
	c.mu.Lock()
	c.groups = removeString(c.groups, name)
	c.mu.Unlock()
	c.ctl.UnbindGroupPipe(name)
	return nil
}

// ListGroups returns the group names known to the broker.
func (c *Client) ListGroups(ctx context.Context) ([]string, error) {
	msg := endpoint.NewMessage().AddString(proto.ElemOp, proto.OpGroupList)
	resp, err := c.Call(ctx, msg)
	if err != nil {
		return nil, err
	}
	csv, _ := resp.GetString(proto.ElemGroups)
	return splitCSV(csv), nil
}

// --- statistics primitives ---

// PublishStats publishes this peer's counters for a group.
func (c *Client) PublishStats(ctx context.Context, group string) error {
	tx, rx, txB, rxB := c.ep.Counters()
	stats := &advert.Stats{
		PeerID:    c.PeerID(),
		Group:     group,
		MsgsSent:  tx,
		MsgsRecv:  rx,
		BytesSent: txB,
		BytesRecv: rxB,
		UptimeSec: uint64(c.Uptime() / time.Second),
	}
	return c.PublishAdv(ctx, stats)
}

// GetPeerStats retrieves another peer's last published statistics.
func (c *Client) GetPeerStats(ctx context.Context, peer keys.PeerID, group string) (*advert.Stats, error) {
	adv, _, err := c.LookupAdv(ctx, advert.TypeStats, string(peer)+"/"+group)
	if err != nil {
		return nil, err
	}
	stats, ok := adv.(*advert.Stats)
	if !ok {
		return nil, errors.New("client: unexpected advertisement type")
	}
	return stats, nil
}

// --- inbound paths ---

// onPipeDelivery converts pipe messages into events; secure envelopes
// are offered to the security extension first.
func (c *Client) onPipeDelivery(group string, d pipes.Delivery) {
	c.mu.RLock()
	envelope := c.envelope
	c.mu.RUnlock()
	if d.Msg.Has(proto.ElemEnvelope) {
		if envelope == nil || !envelope(group, d) {
			c.ctl.Emit(events.SecurityAlert, d.From, group, map[string]string{
				"reason": "secure envelope received but security extension not enabled",
			}, nil)
		}
		return
	}
	if body, ok := d.Msg.GetString(proto.ElemBody); ok {
		c.ctl.Emit(events.MessageReceived, d.From, group, map[string]string{"authenticated": "false"}, []byte(body))
	}
}

// onBrokerPush handles advertisements propagated by the broker and
// relay-delivered round slices.
func (c *Client) onBrokerPush(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	op, _ := msg.GetString(proto.ElemOp)
	if op == proto.OpSliceDeliver {
		// A per-recipient round slice cut by the broker relay — either a
		// live push or a queued item drained at login. It rides the same
		// envelope path as pipe deliveries; the claimed origin is the
		// submitting peer (unauthenticated here — the signed sender is
		// inside the envelope, checked by the security extension).
		group, _ := msg.GetString(proto.ElemGroup)
		origin, _ := msg.GetString(proto.ElemPeer)
		c.onPipeDelivery(group, pipes.Delivery{From: keys.PeerID(origin), Msg: msg})
		return nil
	}
	if op != proto.OpAdvPush {
		return nil
	}
	raw, ok := msg.Get(proto.ElemAdv)
	if !ok {
		return nil
	}
	doc, err := xmldoc.ParseCanonical(raw)
	if err != nil {
		return nil
	}
	adv, err := c.ctl.Cache().Put(doc)
	if err != nil {
		return nil
	}
	switch a := adv.(type) {
	case *advert.Presence:
		c.ctl.Emit(events.PresenceUpdate, a.PeerID, a.Group, map[string]string{
			"user": a.Name, "status": a.Status,
		}, nil)
	case *advert.FileList:
		c.ctl.Emit(events.FileIndexUpdated, a.PeerID, a.Group, nil, nil)
	case *advert.Group:
		c.ctl.Emit(events.GroupUpdated, a.Creator, a.Name, map[string]string{"action": "advertised"}, nil)
	}
	return nil
}

// Close detaches the peer from the network.
func (c *Client) Close() {
	c.ctl.Close()
	c.ep.Close()
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func removeString(ss []string, s string) []string {
	out := ss[:0]
	for _, v := range ss {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}
