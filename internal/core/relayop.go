package core

import (
	"errors"
	"strconv"
	"strings"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/trace"
)

// Broker-side relay registration: the glue between the generic
// store-and-forward queues (internal/relay) and the broker's operation
// surface. A sender uploads ONE sealed ModeGroup round (relayRound);
// the broker slices it per recipient (core.SliceRound — byte surgery,
// no keys, no plaintext) and routes each slice: direct push to online
// peers, bounded TTL queue for offline ones, drained on their next
// login by the relay's shard workers. Recipients whose presence lives
// at a federation partner get their slice handed off broker-to-broker
// (fedRelaySlice) instead of refused — including queued slices whose
// recipient migrates to a partner while the slice waits.
//
// Trust model (see SECURITY.md): the broker validates session and
// group-roster facts it owns (submitter logged in, recipients known
// members) but can vouch for nothing cryptographic. Each slice carries
// the signed round header inside the shared ciphertext; the recipient's
// OpenSlice enforces the Merkle recipient binding and the single-use
// round nonce, so a compromised broker cannot read, re-target, forge or
// replay what it queues — only drop or delay it.

// ErrRelayUnavailable is returned by the client-side relay primitives
// when the broker rejects the relay operation.
var ErrRelayUnavailable = errors.New("core: broker relay unavailable")

// ErrRelaySkipped is returned (wrapped, with counts) by the client-side
// relay primitives when the broker refused some addressed recipients —
// unknown to it, or whose federation hand-off failed. The round still
// went out to everyone counted in direct/queued/handoff; the error
// exists so a shortfall is never silent.
var ErrRelaySkipped = errors.New("core: relay skipped undeliverable recipients")

// ErrRelayQuota is returned when the broker throttled the round because
// the sender (or its group) exhausted its relay queue quota. Retry
// after the queued backlog drains; the relay itself is healthy.
var ErrRelayQuota = errors.New("core: relay quota exceeded")

// RelayConfig parameterizes the broker relay. It embeds the queue
// configuration (durability, quotas, TTL — see relay.Config).
type RelayConfig struct {
	relay.Config
}

// EnableBrokerRelay attaches the store-and-forward relay subsystem to a
// broker: it builds the sharded queues (recovering any durable backlog
// when cfg.WAL.Dir is set), binds queue drains to the broker's presence
// events, and registers the relayRound and fedRelaySlice operations.
// Close() the returned relay when the broker shuts down.
func EnableBrokerRelay(b *broker.Broker, cfg RelayConfig) (*relay.Relay, error) {
	if cfg.Tracer == nil {
		// Inherit the broker's recorder so one SetTracer call covers the
		// whole broker-side lifecycle.
		cfg.Tracer = b.Tracer()
	}
	if cfg.Auditor == nil {
		// Same inheritance for the audit journal: SetAuditor before
		// EnableBrokerRelay and the relay's drops and WAL faults land in
		// the broker's tamper-evident log.
		cfg.Auditor = b.Auditor()
	}
	tr := cfg.Tracer
	var r *relay.Relay
	deliver := func(it relay.Item) error {
		// Presence migrated to a federation partner? Chase the slice
		// there instead of failing the drain — the partner's own relay
		// delivers it (or queues it under the partner's TTL). Forwarded
		// items never re-forward: one hop, no mesh loops.
		if !it.Forwarded {
			if origin := b.PeerOrigin(it.To); origin != "" {
				var sp trace.Span
				if it.Trace != 0 && tr != nil {
					sp = trace.Begin(it.Trace, trace.StageHandoff)
				}
				if err := b.Endpoint().Send(origin, proto.BrokerService, fedSliceMessage(it)); err != nil {
					tr.End(sp, trace.OutcomeError)
					return err
				}
				tr.End(sp, trace.OutcomeOK)
				r.AddHandoff()
				return nil
			}
		}
		var sp trace.Span
		if it.Trace != 0 && tr != nil {
			sp = trace.Begin(it.Trace, trace.StageDeliver)
		}
		err := b.Endpoint().Send(it.To, proto.ClientService, sliceDeliverMessage(it))
		if err != nil {
			tr.End(sp, trace.OutcomeError)
		} else {
			tr.End(sp, trace.OutcomeOK)
		}
		return err
	}
	r, err := relay.New(cfg.Config, b.PeerOnline, deliver)
	if err != nil {
		return nil, err
	}
	r.BindBus(b.Bus())
	b.RegisterOp(proto.OpRelayRound, relayRoundHandler(b, r))
	b.RegisterOp(proto.OpFedRelaySlice, fedRelaySliceHandler(b, r))
	return r, nil
}

// sliceDeliverMessage wraps one slice into the client push that carries
// it — the same ClientService surface advertisement pushes use.
func sliceDeliverMessage(it relay.Item) *endpoint.Message {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpSliceDeliver).
		AddString(proto.ElemGroup, it.Group).
		AddString(proto.ElemPeer, string(it.From)).
		Add(proto.ElemEnvelope, it.Payload)
	if it.Trace != 0 {
		msg.AddString(proto.ElemTrace, trace.FormatID(it.Trace))
	}
	return msg
}

// fedSliceMessage wraps one slice into the broker-to-broker hand-off.
// The original expiry travels with it: a slice must not gain lifetime
// by hopping brokers.
func fedSliceMessage(it relay.Item) *endpoint.Message {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpFedRelaySlice).
		AddString(proto.ElemRelayTo, string(it.To)).
		AddString(proto.ElemPeer, string(it.From)).
		AddString(proto.ElemGroup, it.Group).
		AddString(proto.ElemRelayExp, strconv.FormatInt(it.Expires.UnixNano(), 10)).
		Add(proto.ElemEnvelope, it.Payload)
	if it.Trace != 0 {
		msg.AddString(proto.ElemTrace, trace.FormatID(it.Trace))
	}
	return msg
}

// fedRelaySliceHandler accepts a slice handed off by a federation
// partner and routes it through the local relay as a one-hop Forwarded
// item: direct push if the recipient is logged in here, local queue
// otherwise. Non-partners are ignored outright, mirroring the other
// federation handlers.
func fedRelaySliceHandler(b *broker.Broker, r *relay.Relay) broker.OpHandler {
	return func(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
		if !b.IsPartner(from) {
			return nil
		}
		to, _ := msg.GetString(proto.ElemRelayTo)
		sender, _ := msg.GetString(proto.ElemPeer)
		group, _ := msg.GetString(proto.ElemGroup)
		payload, ok := msg.Get(proto.ElemEnvelope)
		if to == "" || !ok {
			return nil
		}
		it := relay.Item{
			To: keys.PeerID(to), From: keys.PeerID(sender),
			Group: group, Payload: payload, Forwarded: true,
		}
		if idStr, _ := msg.GetString(proto.ElemTrace); idStr != "" {
			it.Trace = trace.ParseID(idStr)
		}
		if expStr, _ := msg.GetString(proto.ElemRelayExp); expStr != "" {
			if ns, err := strconv.ParseInt(expStr, 10, 64); err == nil {
				it.Expires = time.Unix(0, ns)
			}
		}
		r.Submit(it)
		// Hand-off is one-way, like every federation push: the origin
		// broker already acked (or acked-and-logged) the slice to its
		// sender, and failure here is indistinguishable from the
		// recipient logging out mid-flight — the local TTL queue and
		// the sender's end-to-end round receipt are the safety nets.
		return nil
	}
}

// relayRoundHandler processes one uploaded round: validate, slice,
// route. The response reports how many slices went out directly, were
// queued, were handed off to federation partners, were refused by
// quota, and were skipped as undeliverable.
func relayRoundHandler(b *broker.Broker, r *relay.Relay) broker.OpHandler {
	return func(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
		if !b.PeerOnline(from) {
			return proto.Fail(proto.ErrNotLoggedIn)
		}
		group, _ := msg.GetString(proto.ElemGroup)
		if !b.KnownMember(from, group) {
			return proto.Fail(proto.ErrNoGroup)
		}
		// Fast-fail a sender already at its quota before paying for the
		// round parse: every queued slice would be refused anyway. The
		// refusal also counts as an admission offense: a sender hammering
		// a full queue escalates toward a SecurityAlert exactly like one
		// hammering the op rate limit.
		tid := b.TraceID(msg)
		tr := b.Tracer()
		if r.SenderOverQuota(from) {
			b.RecordOffense(from, proto.OpRelayRound, proto.ErrRelayQuota, tid)
			if tid != 0 {
				sp := trace.Begin(tid, trace.StageEnqueue)
				tr.End(sp, trace.OutcomeQuota)
			}
			return proto.Fail(proto.ErrRelayQuota)
		}
		var spParse trace.Span
		if tid != 0 {
			spParse = trace.Begin(tid, trace.StageParse)
		}
		wire, ok := msg.Get(proto.ElemEnvelope)
		if !ok || len(wire) == 0 || Mode(wire[0]) != ModeGroup {
			tr.End(spParse, trace.OutcomeError)
			return proto.Fail(proto.ErrBadRound)
		}
		rcptCSV, _ := msg.GetString(proto.ElemRecipients)
		if rcptCSV == "" {
			tr.End(spParse, trace.OutcomeError)
			return proto.Fail(proto.ErrBadRequest)
		}
		ids := strings.Split(rcptCSV, ",")
		d, err := SliceRound(wire)
		if err != nil {
			tr.End(spParse, trace.OutcomeError)
			return proto.Fail(proto.ErrBadRound)
		}
		tr.End(spParse, trace.OutcomeOK)
		// The recipient list must pair 1:1 with the round's key wraps —
		// the broker cannot check WHICH fingerprint belongs to which peer
		// (it holds no keys), but a mismapped slice is merely
		// undeliverable: the wrong recipient fails ErrNotRecipient and the
		// signed Merkle binding stops anything stronger.
		var spVerify trace.Span
		if tid != 0 {
			spVerify = trace.Begin(tid, trace.StageVerify)
		}
		if len(ids) != d.Recipients() {
			if tid != 0 {
				spVerify.SetAttr("err", proto.ErrBadRound)
				tr.End(spVerify, trace.OutcomeError)
			}
			return proto.Fail(proto.ErrBadRound)
		}
		tr.End(spVerify, trace.OutcomeOK)
		// Every addressed recipient lands in exactly one of the five
		// counters — direct, queued, handoff, quota or skipped — so the
		// sender can detect a shortfall instead of a silent drop. Slices
		// are cut lazily: only accepted recipients pay for their copy of
		// the ciphertext.
		direct, queued, handoff, quota, skipped := 0, 0, 0, 0, 0
		var spSlice trace.Span
		if tid != 0 {
			spSlice = trace.Begin(tid, trace.StageSlice)
		}
		for i, raw := range ids {
			id := keys.PeerID(raw)
			if !b.KnownMember(id, group) || id == from {
				// No session record for this member (e.g. the broker
				// restarted and the peer never returned), or the sender
				// addressed itself.
				skipped++
				continue
			}
			if !b.PeerResident(id) {
				// The member is logged in at (or last seen through) a
				// federation partner: its presence events fire there, so
				// hand the slice to the broker that owns it. The item is
				// stamped with the local TTL so a hop cannot extend its
				// life past what a local queue would have allowed.
				it := relay.Item{
					To: id, From: from, Group: group, Payload: d.Slice(i),
					Expires: time.Now().Add(r.TTL()), Trace: tid,
				}
				if b.Endpoint().Send(b.PeerOrigin(id), proto.BrokerService, fedSliceMessage(it)) != nil {
					skipped++
					continue
				}
				r.AddHandoff()
				handoff++
				continue
			}
			switch r.Submit(relay.Item{To: id, From: from, Group: group, Payload: d.Slice(i), Trace: tid}) {
			case relay.SubmitDirect:
				direct++
			case relay.SubmitQueued:
				queued++
			case relay.SubmitDroppedQuota:
				// The sender crossed its quota mid-round (or the group
				// did). Already-routed slices stand; the rest of the
				// round is counted so the sender sees exactly how far it
				// got.
				quota++
			case relay.SubmitDropped:
				// The relay shut down mid-round; nothing already counted is
				// lost, but the remaining slices cannot be accepted — fail
				// so the sender does not trust the queued count.
				return proto.Fail(proto.ErrRelayOff)
			}
		}
		if tid != 0 {
			if quota > 0 {
				tr.End(spSlice, trace.OutcomeQuota)
			} else {
				tr.End(spSlice, trace.OutcomeOK)
			}
		}
		if quota > 0 {
			// One offense per throttled round (not per slice): the unit
			// of sender behavior is the upload, and per-slice counting
			// would let a single wide round trip the alert threshold.
			b.RecordOffense(from, proto.OpRelayRound, proto.ErrRelayQuota, tid)
		}
		return proto.OK().
			AddString(proto.ElemRelayDirect, strconv.Itoa(direct)).
			AddString(proto.ElemRelayQueued, strconv.Itoa(queued)).
			AddString(proto.ElemRelayHandoff, strconv.Itoa(handoff)).
			AddString(proto.ElemRelayQuota, strconv.Itoa(quota)).
			AddString(proto.ElemRelaySkipped, strconv.Itoa(skipped))
	}
}
