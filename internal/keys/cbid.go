package keys

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// PeerID identifies a peer on the overlay. Secure peers use crypto-based
// identifiers (CBIDs): the ID is derived from the peer's public key, so
// possession of the matching private key proves ownership of the ID
// without any extra infrastructure (Montenegro & Castelluccia [20]).
type PeerID string

// CBIDPrefix is the URN prefix of crypto-based peer identifiers.
const CBIDPrefix = "urn:jxta:cbid-"

// cbidBytes is how much of the key fingerprint the ID keeps (hex-encoded).
const cbidBytes = 16

// CBID derives the crypto-based identifier for a public key.
func CBID(pub *PublicKey) (PeerID, error) {
	fp, err := pub.Fingerprint()
	if err != nil {
		return "", err
	}
	return PeerID(CBIDPrefix + hex.EncodeToString(fp[:cbidBytes])), nil
}

// ErrCBIDMismatch is returned when a claimed peer ID does not match the
// presented public key — the check the broker performs at secureLogin
// step 7 and receivers perform on signed advertisements.
var ErrCBIDMismatch = errors.New("keys: peer ID does not match public key (CBID check failed)")

// VerifyCBID checks the binding between a claimed peer ID and a public
// key. Non-CBID identifiers (plain peers) fail with a descriptive error.
func VerifyCBID(id PeerID, pub *PublicKey) error {
	if !strings.HasPrefix(string(id), CBIDPrefix) {
		return fmt.Errorf("keys: %q is not a crypto-based identifier", id)
	}
	want, err := CBID(pub)
	if err != nil {
		return err
	}
	if want != id {
		return ErrCBIDMismatch
	}
	return nil
}

// IsCBID reports whether the identifier is crypto-based.
func IsCBID(id PeerID) bool { return strings.HasPrefix(string(id), CBIDPrefix) }

// LegacyPeerID builds a non-crypto identifier from a human name; it is
// what the original, insecure JXTA-Overlay deployment used.
func LegacyPeerID(name string) PeerID {
	sum := sha256.Sum256([]byte("legacy:" + name))
	return PeerID("urn:jxta:uuid-" + hex.EncodeToString(sum[:cbidBytes]))
}
