// Package endpoint implements the JXTA endpoint abstraction over simnet:
// messages made of named elements, a binary wire codec, per-service
// demultiplexing, request/response correlation, and relay routing so
// brokers can carry traffic between peers that cannot reach each other
// directly (the "beyond broadcast range or NAT" role of JXTA-Overlay
// brokers).
package endpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Element is one named, typed payload inside a message — JXTA's message
// element. Security layers attach signatures and envelopes as additional
// elements without disturbing the rest of the message.
type Element struct {
	Name     string
	MimeType string
	Data     []byte
}

// Message is an ordered multiset of elements.
type Message struct {
	Elements []Element
}

// NewMessage returns an empty message.
func NewMessage() *Message { return &Message{} }

// Add appends an element with the default application/octet-stream type
// and returns the message for chaining.
func (m *Message) Add(name string, data []byte) *Message {
	return m.AddTyped(name, "application/octet-stream", data)
}

// AddString appends a text element.
func (m *Message) AddString(name, value string) *Message {
	return m.AddTyped(name, "text/plain", []byte(value))
}

// AddXML appends an XML document element.
func (m *Message) AddXML(name string, doc []byte) *Message {
	return m.AddTyped(name, "text/xml", doc)
}

// AddTyped appends an element with an explicit MIME type.
func (m *Message) AddTyped(name, mime string, data []byte) *Message {
	m.Elements = append(m.Elements, Element{Name: name, MimeType: mime, Data: data})
	return m
}

// Get returns the data of the first element with the given name.
func (m *Message) Get(name string) ([]byte, bool) {
	for _, e := range m.Elements {
		if e.Name == name {
			return e.Data, true
		}
	}
	return nil, false
}

// GetString returns the first matching element's data as a string.
func (m *Message) GetString(name string) (string, bool) {
	b, ok := m.Get(name)
	return string(b), ok
}

// Has reports whether an element with the given name exists.
func (m *Message) Has(name string) bool {
	_, ok := m.Get(name)
	return ok
}

// Set replaces the first element with the given name, or appends.
func (m *Message) Set(name string, data []byte) *Message {
	for i := range m.Elements {
		if m.Elements[i].Name == name {
			m.Elements[i].Data = data
			return m
		}
	}
	return m.Add(name, data)
}

// Remove deletes every element with the given name; reports how many.
func (m *Message) Remove(name string) int {
	kept := m.Elements[:0]
	n := 0
	for _, e := range m.Elements {
		if e.Name == name {
			n++
			continue
		}
		kept = append(kept, e)
	}
	m.Elements = kept
	return n
}

// Size returns the total payload bytes across elements (wire size is
// slightly larger due to framing).
func (m *Message) Size() int {
	n := 0
	for _, e := range m.Elements {
		n += len(e.Data)
	}
	return n
}

// Clone deep-copies the message.
func (m *Message) Clone() *Message {
	out := &Message{Elements: make([]Element, len(m.Elements))}
	for i, e := range m.Elements {
		data := make([]byte, len(e.Data))
		copy(data, e.Data)
		out.Elements[i] = Element{Name: e.Name, MimeType: e.MimeType, Data: data}
	}
	return out
}

// Wire format: magic "JXM1", u16 element count, then per element
// u16 name length + name, u16 mime length + mime, u32 data length + data.
// All integers big-endian.
var wireMagic = [4]byte{'J', 'X', 'M', '1'}

// Codec limits guard against malformed frames.
const (
	maxElements = 1 << 12
	maxElemData = 64 << 20
)

// ErrWire is wrapped by all codec parse failures.
var ErrWire = errors.New("endpoint: malformed wire message")

// Marshal encodes the message in the binary wire format.
func (m *Message) Marshal() []byte {
	size := 6
	for _, e := range m.Elements {
		size += 2 + len(e.Name) + 2 + len(e.MimeType) + 4 + len(e.Data)
	}
	out := make([]byte, 0, size)
	out = append(out, wireMagic[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.Elements)))
	for _, e := range m.Elements {
		out = binary.BigEndian.AppendUint16(out, uint16(len(e.Name)))
		out = append(out, e.Name...)
		out = binary.BigEndian.AppendUint16(out, uint16(len(e.MimeType)))
		out = append(out, e.MimeType...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.Data)))
		out = append(out, e.Data...)
	}
	return out
}

// ParseMessage decodes a wire frame produced by Marshal.
func ParseMessage(data []byte) (*Message, error) {
	if len(data) < 6 || [4]byte(data[:4]) != wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrWire)
	}
	count := int(binary.BigEndian.Uint16(data[4:6]))
	if count > maxElements {
		return nil, fmt.Errorf("%w: %d elements", ErrWire, count)
	}
	data = data[6:]
	msg := &Message{Elements: make([]Element, 0, count)}
	readLen16 := func() (int, error) {
		if len(data) < 2 {
			return 0, fmt.Errorf("%w: truncated length", ErrWire)
		}
		n := int(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
		return n, nil
	}
	for i := 0; i < count; i++ {
		nameLen, err := readLen16()
		if err != nil {
			return nil, err
		}
		if len(data) < nameLen {
			return nil, fmt.Errorf("%w: truncated name", ErrWire)
		}
		name := string(data[:nameLen])
		data = data[nameLen:]

		mimeLen, err := readLen16()
		if err != nil {
			return nil, err
		}
		if len(data) < mimeLen {
			return nil, fmt.Errorf("%w: truncated mime", ErrWire)
		}
		mime := string(data[:mimeLen])
		data = data[mimeLen:]

		if len(data) < 4 {
			return nil, fmt.Errorf("%w: truncated data length", ErrWire)
		}
		dataLen := int(binary.BigEndian.Uint32(data[:4]))
		data = data[4:]
		if dataLen > maxElemData || len(data) < dataLen {
			return nil, fmt.Errorf("%w: truncated data", ErrWire)
		}
		payload := make([]byte, dataLen)
		copy(payload, data[:dataLen])
		data = data[dataLen:]
		msg.Elements = append(msg.Elements, Element{Name: name, MimeType: mime, Data: payload})
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(data))
	}
	return msg, nil
}
