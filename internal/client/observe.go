package client

import (
	"errors"
	"time"

	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/telemetry"
	"jxtaoverlay/internal/trace"
)

// DeliveryLatencyMetric is the registry name of the client-side
// delivery latency histogram. It is the library-owned replacement for
// the scenario harness's old body-stamp parser: production peers and
// the scenario driver now export the SAME quantiles from the same
// instrument.
const DeliveryLatencyMetric = "client_delivery_latency_ms"

// BindTelemetry registers the client's delivery-latency histogram on
// reg and starts feeding it. Registration is idempotent by name, so
// every client bound to one registry shares one histogram — the
// process-wide delivery quantiles. Safe to call concurrently with
// deliveries.
func (c *Client) BindTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.delivery.Store(reg.Histogram(DeliveryLatencyMetric,
		"end-to-end secure delivery latency: signed seal time to local open (ms)",
		telemetry.LatencyBucketsMS))
}

// DeliveryLatency returns the bound histogram (nil before
// BindTelemetry). The scenario driver reads its quantiles; admin
// metrics scrapes it over /metrics like any other instrument.
func (c *Client) DeliveryLatency() *telemetry.Histogram { return c.delivery.Load() }

// ObserveDelivery records one end-to-end delivery latency. The
// security extension calls it with (now - opened.SentAt) — the signed
// seal timestamp — after a successful open. Negative skew clamps to
// zero rather than polluting the histogram.
func (c *Client) ObserveDelivery(lat time.Duration) {
	h := c.delivery.Load()
	if h == nil {
		return
	}
	if lat < 0 {
		lat = 0
	}
	h.Observe(float64(lat) / float64(time.Millisecond))
}

// SetTracer installs a lifecycle span recorder. Client primitives then
// mint a trace ID per broker call (unless the caller pre-assigned one
// on the message) and record send-stage spans; the security extension
// rides the same recorder for seal/open stages.
func (c *Client) SetTracer(r *trace.Recorder) {
	if r == nil {
		return
	}
	c.tracer.Store(r)
}

// Tracer returns the installed recorder (nil when tracing is off).
func (c *Client) Tracer() *trace.Recorder { return c.tracer.Load() }

// traceMsg stamps msg with a trace ID for the wire: the pre-assigned
// one if the caller (e.g. the relay upload path, which opened a seal
// span first) already set ElemTrace, else a freshly minted ID. Returns
// 0 with tracing disabled.
func (c *Client) traceMsg(msg *endpoint.Message) uint64 {
	tr := c.tracer.Load()
	if tr == nil {
		return 0
	}
	if s, ok := msg.GetString(proto.ElemTrace); ok {
		return trace.ParseID(s)
	}
	id := tr.NewID()
	msg.AddString(proto.ElemTrace, trace.FormatID(id))
	return id
}

// callOutcome maps a broker-call error to a span outcome token.
func callOutcome(err error) trace.Outcome {
	switch {
	case err == nil:
		return trace.OutcomeOK
	case errors.Is(err, ErrRateLimited):
		return trace.OutcomeRateLimited
	case errors.Is(err, ErrRelayQuota):
		return trace.OutcomeQuota
	default:
		return trace.OutcomeError
	}
}
