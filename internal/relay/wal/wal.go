// Package wal is the crash-recovery backbone of the broker relay: an
// append-only, CRC-checked queue log that makes store-and-forward
// queues survive a broker restart. Every queue mutation is written
// behind the in-memory queues — KindAdd when an item is enqueued,
// KindAck when it is delivered, expires or is dropped — so replaying
// the log reconstructs exactly the set of undelivered items.
//
// Durability contract: an append is durable once it has been fsynced
// (SyncInterval == 0 syncs every append before returning; a positive
// interval batches appends in memory and a background flusher writes
// and fsyncs each batch that often; Sync() forces one). Recovery never
// loses an fsynced add, never resurrects an item whose ack was
// fsynced, and treats a torn or corrupt tail as the crash artifact it
// is: replay stops at the last valid record and the tail is truncated
// away. Un-fsynced records MAY survive (the OS got them to disk
// anyway) or may be lost entirely (a batched append that never left
// the staging buffer); that asymmetry is safe because the relay is
// at-least-once and the recipient's replay guard deduplicates (see
// SECURITY.md, "Durable queue trust model").
//
// The log is segmented: the active segment takes appends; when it
// outgrows SegmentBytes the log compacts — live records are rewritten
// into a fresh segment and every older segment is deleted — so disk
// usage tracks the live queue, not lifetime traffic.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FaultPoint names an instant the fault-injection hook can observe (and
// kill the log at). The points bracket the two operations whose
// ordering recovery invariants depend on: the buffered write of a
// record and the fsync that makes it durable.
type FaultPoint int

// Fault points.
const (
	// BeforeAppend fires before a record's bytes are written (or, with
	// batched syncing, staged): a crash here loses the record entirely.
	BeforeAppend FaultPoint = iota
	// AfterAppend fires after the write but before any fsync: the record
	// is in the OS page cache (or, with batched syncing, the staging
	// buffer), durable only by luck.
	AfterAppend
	// BeforeSync fires on entry to fsync: everything written is still
	// only as durable as the page cache.
	BeforeSync
	// AfterSync fires after a successful fsync: everything appended so
	// far is durable.
	AfterSync
)

// String names the point for test output.
func (p FaultPoint) String() string {
	switch p {
	case BeforeAppend:
		return "before-append"
	case AfterAppend:
		return "after-append"
	case BeforeSync:
		return "before-sync"
	case AfterSync:
		return "after-sync"
	default:
		return fmt.Sprintf("fault-point-%d", int(p))
	}
}

// FaultFunc is the deterministic fault-injection hook: return a non-nil
// error to simulate the process dying at that point. The log goes
// sticky-failed — every later append or sync fails with ErrLogFailed —
// so the test can then reopen the directory and assert what recovery
// reconstructs from the bytes that made it to disk.
type FaultFunc func(p FaultPoint) error

// ErrInjected is a convenient error for FaultFunc implementations.
var ErrInjected = errors.New("wal: injected crash")

// ErrLogFailed is returned by appends after the log has failed (an
// injected crash or a real I/O error). The in-memory relay keeps
// working; the WAL just stops being written, exactly like a dying disk.
var ErrLogFailed = errors.New("wal: log failed")

// Options parameterizes a Log.
type Options struct {
	// Dir is the directory holding the segments. Empty disables the WAL
	// entirely (the relay runs in-memory, the pre-durability behaviour).
	Dir string
	// SyncInterval batches fsyncs: 0 syncs every append before it
	// returns (full durability, one fsync per record); a positive value
	// stages appends in memory and starts a background flusher that
	// writes each staged batch with one write() and fsyncs it that
	// often, keeping both syscalls off the append path; a negative
	// value writes inline but never syncs automatically (tests).
	SyncInterval time.Duration
	// SegmentBytes is the size the active segment may reach before the
	// log compacts into a fresh one (0 = 4 MiB).
	SegmentBytes int64
	// Faults is the deterministic fault-injection hook (nil = none).
	Faults FaultFunc
	// OnSync, when set, observes every successful fsync with its start
	// time and duration — the relay's tracer uses it to attribute
	// fsync-wait to the traces staged behind that sync. The callback
	// may run with log locks held and MUST NOT call back into the Log.
	OnSync func(start time.Time, d time.Duration)
}

// RecoveryStats reports what replay found.
type RecoveryStats struct {
	// Live is how many adds survived replay (no ack seen).
	Live int
	// Acked is how many adds were discarded because an ack retired them
	// — the "delivered/expired while down must not resurrect" guard.
	Acked int
	// TornBytes is how many trailing bytes were truncated off the final
	// segment (a crash mid-append).
	TornBytes int64
	// CorruptSegments counts non-final segments whose replay stopped
	// early on a corrupt record (disk damage, not a crash artifact).
	CorruptSegments int
}

// Log is an open write-ahead queue log.
type Log struct {
	opts Options

	// syncMu serializes batched fsyncs (the flusher and Sync). It is
	// acquired BEFORE mu, never while holding it: the fsync itself runs
	// with mu released, so appends keep flowing while the disk catches
	// up — holding the append lock across an fsync would turn every
	// flush interval into a queue-wide stall.
	syncMu sync.Mutex

	mu       sync.Mutex
	f        *os.File
	segIndex int
	segBytes int64
	buf      []byte // reusable encode buffer (guarded by mu)
	stage    []byte // batched mode: encoded records awaiting the flusher
	spare    []byte // recycled staging buffer (swapped with stage per flush)
	nextSeq  Seq
	live     map[Seq]Record // undelivered adds, for compaction
	dirty    bool           // written but not fsynced
	err      error          // sticky failure

	stop chan struct{}
	wg   sync.WaitGroup
}

const defaultSegmentBytes = 4 << 20

func segName(i int) string { return fmt.Sprintf("seg-%08d.wal", i) }

// Open replays the segments in dir (creating it if needed), returning
// the log ready for appends plus the recovered live records and replay
// stats. Live records come back sorted by sequence number — enqueue
// order — with payloads copied out of the read buffer.
func Open(opts Options) (*Log, []Record, RecoveryStats, error) {
	var stats RecoveryStats
	if opts.Dir == "" {
		return nil, nil, stats, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, stats, err
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, nil, stats, err
	}
	var segs []int
	for _, e := range entries {
		var i int
		if n, _ := fmt.Sscanf(e.Name(), "seg-%d.wal", &i); n == 1 {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)

	l := &Log{opts: opts, live: make(map[Seq]Record), nextSeq: 1, stop: make(chan struct{})}
	for si, seg := range segs {
		final := si == len(segs)-1
		path := filepath.Join(opts.Dir, segName(seg))
		if err := l.replaySegment(path, final, &stats); err != nil {
			return nil, nil, stats, err
		}
	}

	// Open (or create) the active segment.
	l.segIndex = 0
	if len(segs) > 0 {
		l.segIndex = segs[len(segs)-1]
	}
	path := filepath.Join(opts.Dir, segName(l.segIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, stats, err
	}
	if fi, err := f.Stat(); err == nil {
		l.segBytes = fi.Size()
	}
	l.f = f

	recovered := make([]Record, 0, len(l.live))
	for _, rec := range l.live {
		rec.Payload = append([]byte(nil), rec.Payload...)
		recovered = append(recovered, rec)
	}
	sort.Slice(recovered, func(i, j int) bool { return recovered[i].Seq < recovered[j].Seq })
	// The live map must not alias the replay buffers either.
	for _, rec := range recovered {
		l.live[rec.Seq] = rec
	}
	stats.Live = len(recovered)

	if opts.SyncInterval > 0 {
		l.wg.Add(1)
		go l.flusher(l.stop)
	}
	return l, recovered, stats, nil
}

// replaySegment folds one segment's records into l.live. A torn or
// corrupt record in the FINAL segment is a crash artifact: replay stops
// there and the tail is truncated so new appends start at a clean
// boundary. The same damage mid-way through an earlier segment cannot
// come from a crash (later segments were created after it) — replay
// still keeps everything before the damage but counts the segment so
// callers can surface the tampering.
func (l *Log) replaySegment(path string, final bool, stats *RecoveryStats) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			if final {
				stats.TornBytes += int64(len(data) - off)
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return terr
				}
			} else {
				stats.CorruptSegments++
			}
			break
		}
		switch rec.Kind {
		case KindAdd:
			l.live[rec.Seq] = rec
		case KindAck:
			if _, ok := l.live[rec.Seq]; ok {
				delete(l.live, rec.Seq)
				stats.Acked++
			}
		}
		if rec.Seq >= l.nextSeq {
			l.nextSeq = rec.Seq + 1
		}
		off += n
	}
	return nil
}

// AppendAdd persists one enqueued item and returns its sequence number.
// With SyncInterval == 0 the record is fsynced before returning — the
// caller may then report the item as accepted-durable. The payload is
// retained (for compaction) until the matching AppendAck; the caller
// must not mutate it in between.
func (l *Log) AppendAdd(rec Record) (Seq, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	rec.Kind = KindAdd
	rec.Seq = l.nextSeq
	if l.opts.SyncInterval > 0 {
		if err := l.stageLocked(rec); err != nil {
			return 0, err
		}
		l.nextSeq++
		l.live[rec.Seq] = rec
		return rec.Seq, nil
	}
	if err := l.appendLocked(rec); err != nil {
		return 0, err
	}
	l.nextSeq++
	l.live[rec.Seq] = rec
	return rec.Seq, l.maybeRotateLocked()
}

// AppendAck retires a previously appended item. Acks for sequence 0
// (items that were never persisted, e.g. because the disk died) are
// silently ignored.
func (l *Log) AppendAck(seq Seq, reason AckReason) error {
	if seq == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	rec := Record{Kind: KindAck, Seq: seq, Reason: reason}
	if l.opts.SyncInterval > 0 {
		if err := l.stageLocked(rec); err != nil {
			return err
		}
		delete(l.live, seq)
		return nil
	}
	if err := l.appendLocked(rec); err != nil {
		return err
	}
	delete(l.live, seq)
	return l.maybeRotateLocked()
}

// stageLocked encodes rec into the in-memory staging buffer instead of
// writing it: the flusher (or Sync) drains the whole batch with a
// single write() immediately before its fsync. Until then the record
// exists only in process memory — lost in a crash, which the
// durability contract allows for anything not yet fsynced — so the
// append path costs an encode and nothing else.
func (l *Log) stageLocked(rec Record) error {
	if err := l.fault(BeforeAppend); err != nil {
		return err
	}
	var err error
	l.stage, err = AppendRecord(l.stage, rec)
	if err != nil {
		return err
	}
	return l.fault(AfterAppend)
}

func (l *Log) appendLocked(rec Record) error {
	if err := l.fault(BeforeAppend); err != nil {
		return err
	}
	var err error
	l.buf, err = AppendRecord(l.buf[:0], rec)
	if err != nil {
		return err
	}
	n, err := l.f.Write(l.buf)
	l.segBytes += int64(n)
	if err != nil {
		l.fail(err)
		return err
	}
	l.dirty = true
	if err := l.fault(AfterAppend); err != nil {
		return err
	}
	if l.opts.SyncInterval == 0 {
		return l.syncLocked()
	}
	return nil
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.fault(BeforeSync); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.fail(err)
		return err
	}
	if l.opts.OnSync != nil {
		l.opts.OnSync(start, time.Since(start))
	}
	l.dirty = false
	return l.fault(AfterSync)
}

// Sync forces an fsync of everything appended before the call. Unlike
// the append-synchronous path (SyncInterval == 0), the fsync runs with
// the append lock released, so concurrent appends are not stalled —
// they are simply not covered by this sync.
func (l *Log) Sync() error {
	return l.syncBatch()
}

// syncBatch is the batched-fsync path shared by the background flusher
// and Sync. It swaps out the staging buffer under mu, then writes and
// fsyncs with mu released, so appends keep flowing while the disk
// catches up — batched mode never touches the file outside syncMu, so
// the two syscalls here cannot race anything. The post-fsync
// re-validation covers the sync-per-append configuration, where an
// append can rotate the segment while a concurrent Sync() call is
// inside fsync: the synced file has already been compacted away
// (rotation fsyncs its replacement before deleting anything), so both
// the result and any error from the stale file are moot.
func (l *Log) syncBatch() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if len(l.stage) == 0 && !l.dirty {
		l.mu.Unlock()
		return nil
	}
	batch := l.stage
	l.stage = l.spare[:0]
	l.spare = nil
	f := l.f
	l.dirty = false
	l.mu.Unlock()

	var written int
	var werr error
	if len(batch) > 0 {
		written, werr = f.Write(batch)
	}

	l.mu.Lock()
	if cap(batch) > cap(l.spare) {
		l.spare = batch[:0]
	}
	l.segBytes += int64(written)
	if werr != nil {
		l.fail(werr)
		l.mu.Unlock()
		return werr
	}
	if err := l.fault(BeforeSync); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	start := time.Now()
	serr := f.Sync()
	if serr == nil && l.opts.OnSync != nil {
		l.opts.OnSync(start, time.Since(start))
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != f {
		return nil // rotated mid-sync; the synced file is gone
	}
	if serr != nil {
		l.dirty = true
		l.fail(serr)
		return serr
	}
	if err := l.fault(AfterSync); err != nil {
		return err
	}
	return l.maybeRotateLocked()
}

// fault runs the injection hook; a non-nil result kills the log.
func (l *Log) fault(p FaultPoint) error {
	if l.opts.Faults == nil {
		return nil
	}
	if err := l.opts.Faults(p); err != nil {
		l.fail(err)
		return err
	}
	return nil
}

func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("%w: %w", ErrLogFailed, err)
	}
}

// maybeRotateLocked compacts once the active segment outgrows its
// budget: the live set is rewritten into a fresh segment (fsynced
// before it becomes authoritative) and every older segment is deleted.
// Delivered and expired records are reclaimed here — the new segment
// holds only undelivered adds.
func (l *Log) maybeRotateLocked() error {
	if l.segBytes < l.opts.SegmentBytes {
		return nil
	}
	lo := l.segIndex
	l.segIndex++
	path := filepath.Join(l.opts.Dir, segName(l.segIndex))
	nf, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		l.fail(err)
		return err
	}
	seqs := make([]Seq, 0, len(l.live))
	for seq := range l.live {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var written int64
	for _, seq := range seqs {
		l.buf, err = AppendRecord(l.buf[:0], l.live[seq])
		if err == nil {
			var n int
			n, err = nf.Write(l.buf)
			written += int64(n)
		}
		if err != nil {
			nf.Close()
			os.Remove(path)
			l.segIndex--
			l.fail(err)
			return err
		}
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(path)
		l.segIndex--
		l.fail(err)
		return err
	}
	// The new segment is durable; retire the history.
	old := l.f
	l.f = nf
	l.segBytes = written
	l.dirty = false
	old.Close()
	for i := lo; i < l.segIndex; i++ {
		os.Remove(filepath.Join(l.opts.Dir, segName(i)))
	}
	return nil
}

// LiveCount reports how many adds are currently un-acked (tests).
func (l *Log) LiveCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.live)
}

// SegmentIndex reports the active segment's index (tests).
func (l *Log) SegmentIndex() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segIndex
}

func (l *Log) flusher(stop <-chan struct{}) {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			_ = l.syncBatch()
		}
	}
}

// Close writes and syncs pending appends — including any staged batch
// — unless the log already failed, then releases the file. A failed
// log closes without touching the file again — its on-disk state is
// whatever the "crash" left.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.stop != nil {
		close(l.stop)
		l.stop = nil
	}
	failed := l.err != nil
	l.mu.Unlock()
	l.wg.Wait()
	var err error
	if !failed {
		err = l.syncBatch()
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}
