package audit

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestAppendReopenContinuesChain: a journal reopened after a clean
// close restores its chain state (seq and head) and appends link onto
// the recovered history — the whole directory verifies end to end.
func TestAppendReopenContinuesChain(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustRecord(t, j, ev(i))
	}
	head := j.Head()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := j2.Stats(); got.Recovered != 10 || got.Seq != 10 {
		t.Fatalf("recovered journal: %+v, want 10 recovered at seq 10", got)
	}
	if j2.Head() != head {
		t.Fatal("reopen did not restore the chain head")
	}
	if seq := mustRecord(t, j2, ev(10)); seq != 11 {
		t.Fatalf("append after reopen got seq %d, want 11", seq)
	}
	if err := j2.Sync(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.LastSeq != 11 || rep.Events != 11 {
		t.Fatalf("verify: %+v (fault %v)", rep, rep.Fault)
	}
}

// TestCheckpointCadenceAndClose: with a signer, the chain seals every
// CheckpointEvery records and once more on Close; every checkpoint
// verifies against the trust store and attributes the broker by name.
func TestCheckpointCadenceAndClose(t *testing.T) {
	kp, chain, trust := signer(t)
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: -1, CheckpointEvery: 4, Signer: kp, Chain: chain})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustRecord(t, j, ev(i))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir, VerifyOptions{Trust: trust})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verify fault: %v", rep.Fault)
	}
	// 10 events: sealed after records 4 and 8 (the checkpoint records
	// themselves advance the count), plus the final seal on Close.
	if rep.Checkpoints != 3 || rep.Events != 10 {
		t.Fatalf("got %d checkpoints over %d events, want 3 over 10", rep.Checkpoints, rep.Events)
	}
	if rep.Signer != "broker-1" {
		t.Fatalf("checkpoint signer %q, want broker-1", rep.Signer)
	}
	if rep.Unsealed != 0 {
		t.Fatalf("%d records unsealed after a clean Close, want 0", rep.Unsealed)
	}
}

// TestRotationKeepsHistory: outgrowing SegmentBytes starts fresh
// segments without deleting old ones, the chain links across the
// boundaries, and a reopen walks all of it.
func TestRotationKeepsHistory(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		mustRecord(t, j, ev(i))
	}
	st := j.Stats()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Segments < 3 {
		t.Fatalf("expected rotation across >=3 segments, got %d", st.Segments)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != st.Segments {
		t.Fatalf("%d segment files on disk, stats says %d — rotation deleted history?", len(segs), st.Segments)
	}

	j2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatalf("reopen multi-segment journal: %v", err)
	}
	defer j2.Close()
	if got := j2.Stats().Recovered; got != 64 {
		t.Fatalf("recovered %d of 64 records", got)
	}
	rep, err := Verify(dir, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Segments != len(segs) {
		t.Fatalf("verify across segments: %+v (fault %v)", rep, rep.Fault)
	}
}

// TestTornTailTruncatedOnOpen: a crash mid-append leaves a torn final
// record; Open truncates it as a crash artifact and appends resume on
// the clean boundary.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustRecord(t, j, ev(i))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := TearRecord(dir); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.TornBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	if st.Seq != 4 {
		t.Fatalf("recovered to seq %d, want 4 (the torn record is lost)", st.Seq)
	}
	if seq := mustRecord(t, j2, ev(99)); seq != 5 {
		t.Fatalf("append after torn-tail recovery got seq %d, want 5", seq)
	}
	if err := j2.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("journal should verify clean after recovery, got %v", rep.Fault)
	}
}

// TestDamagedJournalRefusesAppend: damage that is not a torn tail (a
// flipped bit under intact framing) must fail Open with
// ErrJournalDamaged — appending onto a broken chain would launder it.
func TestDamagedJournalRefusesAppend(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustRecord(t, j, ev(i))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := FlipBit(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SyncInterval: -1}); !errors.Is(err, ErrJournalDamaged) {
		t.Fatalf("Open on damaged journal: %v, want ErrJournalDamaged", err)
	}
}

// TestStagedModeFlushes: with a positive SyncInterval appends are
// staged and the background flusher lands them on disk without any
// explicit Sync call.
func TestStagedModeFlushes(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustRecord(t, j, ev(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if fi, err := os.Stat(filepath.Join(dir, segName(0))); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never wrote the staged batch")
		}
		time.Sleep(time.Millisecond)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Events != 20 {
		t.Fatalf("staged journal on disk: %+v (fault %v)", rep, rep.Fault)
	}
}

// TestNilJournalIsInert: every method is safe on a nil journal, so call
// sites stay unconditional (the SetAuditor-never-called deployment).
func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if seq := j.Record(ev(0)); seq != 0 {
		t.Fatalf("nil Record returned %d", seq)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Seq() != 0 || (j.Stats() != Stats{}) {
		t.Fatal("nil journal reported state")
	}
}

// TestOversizedEventClamped: an attacker padding a field must not make
// the audit path refuse to record — the field is truncated instead.
func TestOversizedEventClamped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, maxFieldLen*2)
	for i := range huge {
		huge[i] = 'x'
	}
	e := Event{Kind: KindOffense, Peer: string(huge), Op: "op", Reason: string(huge)}
	if seq := j.Record(e); seq != 1 {
		t.Fatalf("oversized event rejected (seq %d)", seq)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(dir, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Events != 1 {
		t.Fatalf("clamped event journal: %+v (fault %v)", rep, rep.Fault)
	}
}
