package xmldoc

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// refCanonical is an independent, deliberately naive canonicalizer —
// the oracle the memoizing fast path is checked against. It mirrors the
// specification: open tag, attributes sorted by name, escaped text,
// children in order, close tag.
func refCanonical(e *Element) []byte {
	var b strings.Builder
	refWrite(&b, e)
	return []byte(b.String())
}

func refWrite(b *strings.Builder, e *Element) {
	b.WriteByte('<')
	b.WriteString(e.Name)
	attrs := make([]Attr, len(e.Attrs))
	copy(attrs, e.Attrs)
	sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
	for _, a := range attrs {
		b.WriteString(" " + a.Name + `="`)
		b.WriteString(refEscape(a.Value, true))
		b.WriteByte('"')
	}
	b.WriteByte('>')
	b.WriteString(refEscape(e.Text, false))
	for _, c := range e.Children {
		refWrite(b, c)
	}
	b.WriteString("</" + e.Name + ">")
}

func refEscape(s string, attr bool) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r == '&':
			b.WriteString("&amp;")
		case r == '<':
			b.WriteString("&lt;")
		case r == '>' && !attr:
			b.WriteString("&gt;")
		case r == '"' && attr:
			b.WriteString("&quot;")
		case r == '\t' && attr:
			b.WriteString("&#x9;")
		case r == '\n' && attr:
			b.WriteString("&#xA;")
		case r == '\r':
			b.WriteString("&#xD;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func checkAgainstRef(t *testing.T, e *Element, context string) {
	t.Helper()
	if got, want := e.Canonical(), refCanonical(e); !bytes.Equal(got, want) {
		t.Fatalf("%s: Canonical() = %q, reference = %q", context, got, want)
	}
}

func TestCanonicalInvalidUTF8MatchesReference(t *testing.T) {
	// Invalid UTF-8 must canonicalize to U+FFFD exactly as the rune-wise
	// reference does — the canonical form is signing input, so the two
	// serializers may never diverge.
	e := New("T", "ok\xffbad")
	e.SetAttr("a", "x\xfe\xffy")
	e.AddText("C", "\x80")
	checkAgainstRef(t, e, "invalid utf-8")
	if !bytes.Contains(e.Canonical(), []byte("�")) {
		t.Fatalf("invalid byte not replaced: %q", e.Canonical())
	}
}

func TestCanonicalMemoized(t *testing.T) {
	e := NewTree("Adv", New("Id", "urn:x"), New("Name", "n"))
	first := e.Canonical()
	second := e.Canonical()
	if &first[0] != &second[0] {
		t.Fatal("repeated Canonical() did not return the memoized bytes")
	}
}

// TestMutatorsInvalidate drives every mutator and confirms the memo is
// dropped on the mutated element and all ancestors.
func TestMutatorsInvalidate(t *testing.T) {
	build := func() (*Element, *Element) {
		inner := NewTree("Inner", New("Leaf", "v"))
		root := NewTree("Root", New("A", "1"), inner)
		return root, inner
	}
	cases := []struct {
		name   string
		mutate func(root, inner *Element)
	}{
		{"Add", func(_, inner *Element) { inner.Add(New("New", "x")) }},
		{"AddText", func(_, inner *Element) { inner.AddText("New", "x") }},
		{"SetText", func(_, inner *Element) { inner.Child("Leaf").SetText("changed") }},
		{"SetAttr-new", func(_, inner *Element) { inner.SetAttr("k", "v") }},
		{"SetAttr-replace", func(_, inner *Element) {
			inner.SetAttr("k", "v1") // also invalidates, tested via fresh canonical below
			inner.SetAttr("k", "v2")
		}},
		{"RemoveChildren", func(_, inner *Element) { inner.RemoveChildren("Leaf") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root, inner := build()
			before := append([]byte(nil), root.Canonical()...) // populate memos
			_ = inner.Canonical()
			tc.mutate(root, inner)
			checkAgainstRef(t, root, "root after "+tc.name)
			checkAgainstRef(t, inner, "inner after "+tc.name)
			if bytes.Equal(root.Canonical(), before) {
				t.Fatalf("root canonical unchanged after %s — stale memo", tc.name)
			}
		})
	}
}

func TestAddReparentMovesChild(t *testing.T) {
	// Re-parenting via Add must MOVE the element: the old tree loses the
	// child (and its memo is invalidated), and later mutations of the
	// child are reflected only in the new tree. Without move semantics
	// the old tree would serve stale canonical bytes — fatal for signing
	// input.
	x := New("X", "old")
	a := NewTree("A", x)
	before := append([]byte(nil), a.Canonical()...)
	b := New("B", "")
	b.Add(x)
	x.SetText("new")
	if bytes.Equal(a.Canonical(), before) {
		t.Fatal("old tree canonical unchanged after child moved away — stale memo")
	}
	if a.Child("X") != nil {
		t.Fatal("old tree still holds the moved child")
	}
	if !bytes.Contains(b.Canonical(), []byte("new")) {
		t.Fatal("new tree missing the child's updated text")
	}
	checkAgainstRef(t, a, "old tree after move")
	checkAgainstRef(t, b, "new tree after move")
}

// TestPropertyCacheInvalidation applies random mutation sequences
// through the mutator API, interleaved with Canonical calls that
// populate memos at every level, and checks the canonical bytes against
// the reference serializer after each step. Every other round the tree
// comes from ParseCanonical, so the memos under mutation are the
// parse-time SEEDED ones (input subslices), not computed ones — a
// mutator that failed to invalidate a seeded memo would serve stale
// wire bytes as signing input.
func TestPropertyCacheInvalidation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	names := []string{"A", "B", "C", "D"}
	for round := 0; round < 50; round++ {
		root := randomTree(r, 3)
		if round%2 == 1 {
			parsed, err := ParseCanonical(append([]byte(nil), root.Canonical()...))
			if err != nil {
				t.Fatalf("round %d: ParseCanonical of canonical bytes: %v", round, err)
			}
			root = parsed
		}
		nodes := collect(root)
		for step := 0; step < 30; step++ {
			// Populate memos on a random subset before mutating.
			_ = root.Canonical()
			_ = nodes[r.Intn(len(nodes))].Canonical()

			target := nodes[r.Intn(len(nodes))]
			switch r.Intn(5) {
			case 0:
				target.AddText(names[r.Intn(len(names))], randText(r))
			case 1:
				sub := randomTree(r, 1)
				target.Add(sub)
			case 2:
				target.SetText(randText(r))
			case 3:
				target.SetAttr(names[r.Intn(len(names))]+"attr", randText(r))
			case 4:
				if len(target.Children) > 0 {
					target.RemoveChildren(target.Children[r.Intn(len(target.Children))].Name)
				}
			}
			nodes = collect(root)
			if got, want := root.Canonical(), refCanonical(root); !bytes.Equal(got, want) {
				t.Fatalf("round %d step %d: stale canonical\n got: %q\nwant: %q", round, step, got, want)
			}
		}
	}
}

func collect(e *Element) []*Element {
	out := []*Element{e}
	for _, c := range e.Children {
		out = append(out, collect(c)...)
	}
	return out
}

func TestCanonicalSkipMatchesCloneStrip(t *testing.T) {
	doc := NewTree("PipeAdvertisement",
		New("Id", "urn:jxta:pipe-1"),
		New("Name", "msg/alice"),
	)
	doc.Add(NewTree("Signature", New("SignatureValue", "AAAA")))
	doc.Add(NewTree("Signature", New("SignatureValue", "BBBB"))) // every Signature child is skipped
	_ = doc.Canonical()                                          // memoized full form must not leak into the skipped form

	want := func() []byte {
		c := doc.Clone()
		c.RemoveChildren("Signature")
		return refCanonical(c)
	}()
	if got := doc.CanonicalSkip("Signature"); !bytes.Equal(got, want) {
		t.Fatalf("CanonicalSkip = %q, want %q", got, want)
	}
	// Skipping a name that does not appear must equal the plain form.
	if got := doc.CanonicalSkip("Absent"); !bytes.Equal(got, doc.Canonical()) {
		t.Fatal("CanonicalSkip(absent) differs from Canonical")
	}
	// And the full form must still include the signatures afterwards.
	if !bytes.Contains(doc.Canonical(), []byte("BBBB")) {
		t.Fatal("Canonical lost the Signature children")
	}
}

func TestAppendCanonical(t *testing.T) {
	e := NewTree("R", New("C", "x"))
	dst := []byte("prefix:")
	dst = e.AppendCanonical(dst)
	want := "prefix:" + string(refCanonical(e))
	if string(dst) != want {
		t.Fatalf("AppendCanonical = %q, want %q", dst, want)
	}
	// Appending from the memo must produce identical bytes.
	_ = e.Canonical()
	if got := e.AppendCanonical([]byte("prefix:")); string(got) != want {
		t.Fatalf("AppendCanonical (memoized) = %q, want %q", got, want)
	}
}

func TestCloneCarriesIndependentCache(t *testing.T) {
	e := NewTree("R", New("C", "x"))
	orig := e.Canonical()
	c := e.Clone()
	if !bytes.Equal(c.Canonical(), orig) {
		t.Fatal("clone canonical differs")
	}
	// Mutating the clone must not disturb the original's bytes.
	c.Child("C").SetText("y")
	checkAgainstRef(t, c, "clone after mutation")
	if !bytes.Equal(e.Canonical(), orig) {
		t.Fatal("original canonical changed after clone mutation")
	}
}

// TestConcurrentCanonical exercises the memo under concurrent readers;
// run with -race.
func TestConcurrentCanonical(t *testing.T) {
	doc := NewTree("Adv", New("Id", "urn:x"), New("Name", "y"))
	want := refCanonical(doc)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := doc.Canonical(); !bytes.Equal(got, want) {
					errs <- fmt.Errorf("concurrent Canonical = %q", got)
					return
				}
				if got := doc.String(); got != string(want) {
					errs <- fmt.Errorf("concurrent String = %q", got)
					return
				}
				_ = doc.CanonicalSkip("Name")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
