// Command admin is the JXTA-Overlay administrator tool (paper §4.1): it
// generates the deployment's cryptographic material and manages the
// central database's user records on disk.
//
// Subcommands:
//
//	admin init    -dir deploy/                      generate admin key + anchor credential
//	admin broker  -dir deploy/ -name broker-1       issue a broker key + credential
//	admin adduser -dir deploy/ -user alice -pass pw -groups math,art
//	admin users   -dir deploy/                      list registered users
//	admin metrics -url localhost:9090               snapshot a broker's telemetry
//	admin trace   -url localhost:9090               dump captured message-lifecycle traces
//	admin audit   -url localhost:9090               tail a broker's security audit log
//	admin audit verify -dir audit/                  verify an audit journal's hash chain + checkpoints
package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/telemetry"
	"jxtaoverlay/internal/trace"
	"jxtaoverlay/internal/userdb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "init":
		err = cmdInit(os.Args[2:])
	case "broker":
		err = cmdBroker(os.Args[2:])
	case "adduser":
		err = cmdAddUser(os.Args[2:])
	case "users":
		err = cmdUsers(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "audit":
		err = cmdAudit(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "admin:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: admin <init|broker|adduser|users|metrics|trace|audit> [flags]
  init    -dir DIR [-name admin] [-bits 1024]
  broker  -dir DIR -name NAME [-validity 8760h]
  adduser -dir DIR -user USER -pass PASS [-groups g1,g2]
  users   -dir DIR
  metrics -url HOST:PORT [-timeout 5s]
  trace   -url HOST:PORT [-trace HEXID] [-stage NAME] [-outcome NAME] [-min DUR] [-timeout 5s]
  audit   -url HOST:PORT [-kind NAME] [-peer ID] [-op NAME] [-trace HEXID] [-since SEQ] [-limit N]
  audit verify -dir DIR [-anchor FILE] [-expect-head DIGEST] [-expect-seq N]`)
	os.Exit(2)
}

const (
	adminKeyFile = "admin.key.pem"
	usersFile    = "users.json"
)

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "deploy", "deployment directory")
	name := fs.String("name", "admin", "administrator name")
	bits := fs.Int("bits", keys.DefaultRSABits, "RSA modulus size")
	fs.Parse(args)

	if err := os.MkdirAll(*dir, 0o700); err != nil {
		return err
	}
	kp, err := keys.KeyPairBits(*bits)
	if err != nil {
		return err
	}
	pemBytes, err := kp.MarshalPEM()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, adminKeyFile), pemBytes, 0o600); err != nil {
		return err
	}
	dep, err := core.NewDeploymentFromKey(kp, *name)
	if err != nil {
		return err
	}
	anchorDoc, err := dep.Anchor().Document()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, "anchor.cred.xml"), anchorDoc.Canonical(), 0o644); err != nil {
		return err
	}
	db := userdb.NewStore()
	if err := db.SaveFile(filepath.Join(*dir, usersFile)); err != nil {
		return err
	}
	fmt.Printf("deployment initialized in %s (admin id %s)\n", *dir, dep.AdminID())
	return nil
}

func loadDeployment(dir string) (*core.Deployment, error) {
	pemBytes, err := os.ReadFile(filepath.Join(dir, adminKeyFile))
	if err != nil {
		return nil, fmt.Errorf("read admin key (run 'admin init' first): %w", err)
	}
	kp, err := keys.ParseKeyPairPEM(pemBytes)
	if err != nil {
		return nil, err
	}
	return core.NewDeploymentFromKey(kp, "admin")
}

func cmdBroker(args []string) error {
	fs := flag.NewFlagSet("broker", flag.ExitOnError)
	dir := fs.String("dir", "deploy", "deployment directory")
	name := fs.String("name", "", "broker deployment name")
	validity := fs.Duration("validity", 365*24*time.Hour, "credential validity")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("broker: -name is required")
	}
	dep, err := loadDeployment(*dir)
	if err != nil {
		return err
	}
	kp, err := keys.NewKeyPair()
	if err != nil {
		return err
	}
	crd, err := dep.IssueBrokerCredential(kp.Public(), *name, *validity)
	if err != nil {
		return err
	}
	pemBytes, err := kp.MarshalPEM()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, *name+".key.pem"), pemBytes, 0o600); err != nil {
		return err
	}
	credDoc, err := crd.Document()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*dir, *name+".cred.xml"), credDoc.Canonical(), 0o644); err != nil {
		return err
	}
	fmt.Printf("broker %q credentialed (id %s, valid until %s)\n", *name, crd.Subject, crd.NotAfter.Format(time.RFC3339))
	return nil
}

func cmdAddUser(args []string) error {
	fs := flag.NewFlagSet("adduser", flag.ExitOnError)
	dir := fs.String("dir", "deploy", "deployment directory")
	user := fs.String("user", "", "username")
	pass := fs.String("pass", "", "password")
	groups := fs.String("groups", "", "comma-separated groups")
	fs.Parse(args)
	if *user == "" || *pass == "" {
		return fmt.Errorf("adduser: -user and -pass are required")
	}
	db := userdb.NewStore()
	path := filepath.Join(*dir, usersFile)
	if err := db.LoadFile(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	var groupList []string
	if *groups != "" {
		groupList = strings.Split(*groups, ",")
	}
	if err := db.Register(*user, *pass, groupList...); err != nil {
		return err
	}
	if err := db.SaveFile(path); err != nil {
		return err
	}
	fmt.Printf("user %q registered (groups %v)\n", *user, groupList)
	return nil
}

func cmdUsers(args []string) error {
	fs := flag.NewFlagSet("users", flag.ExitOnError)
	dir := fs.String("dir", "deploy", "deployment directory")
	fs.Parse(args)
	db := userdb.NewStore()
	if err := db.LoadFile(filepath.Join(*dir, usersFile)); err != nil {
		return err
	}
	for _, name := range db.Usernames() {
		groups, _ := db.Groups(name)
		fmt.Printf("%-16s groups=%v\n", name, groups)
	}
	return nil
}

// cmdMetrics pulls one telemetry snapshot from a running broker
// process (e.g. `overlaysim -metrics localhost:9090`) and renders it
// as the same text exposition the endpoint itself serves.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	url := fs.String("url", "localhost:9090", "metrics endpoint (host:port or full URL)")
	timeout := fs.Duration("timeout", 5*time.Second, "fetch timeout")
	fs.Parse(args)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	samples, err := telemetry.Fetch(ctx, *url)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return telemetry.RenderText(os.Stdout, samples)
}

// cmdTrace pulls the span capture buffer from a running process (e.g.
// `overlaysim -trace-sample 1 -metrics localhost:9090`) and renders a
// per-trace stage waterfall: spans grouped by trace ID, ordered by
// start time, each with its offset from the trace's first span.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	endpoint := fs.String("url", "localhost:9090", "trace endpoint (host:port or full URL)")
	traceID := fs.String("trace", "", "only the trace with this hex ID")
	stage := fs.String("stage", "", "only spans of this lifecycle stage (e.g. seal, wal-fsync, open)")
	outcome := fs.String("outcome", "", "only spans with this outcome (e.g. ok, rate-limited, security-alert)")
	minDur := fs.Duration("min", 0, "only spans at least this slow")
	timeout := fs.Duration("timeout", 5*time.Second, "fetch timeout")
	fs.Parse(args)

	q := url.Values{}
	if *traceID != "" {
		q.Set("trace", *traceID)
	}
	if *stage != "" {
		q.Set("stage", *stage)
	}
	if *outcome != "" {
		q.Set("outcome", *outcome)
	}
	if *minDur > 0 {
		q.Set("min_ms", fmt.Sprintf("%g", float64(*minDur)/float64(time.Millisecond)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	page, err := trace.Fetch(ctx, *endpoint, q)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Printf("%d spans recorded, %d dropped, %d matched\n", page.Recorded, page.Dropped, len(page.Spans))
	renderWaterfalls(os.Stdout, page.Spans)
	return nil
}

// renderWaterfalls groups spans by trace and prints each trace's stage
// timeline. Traces print in order of their first span's start time.
func renderWaterfalls(w *os.File, spans []trace.SpanJSON) {
	byTrace := map[string][]trace.SpanJSON{}
	var order []string
	for _, sp := range spans {
		if _, seen := byTrace[sp.Trace]; !seen {
			order = append(order, sp.Trace)
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	sort.Slice(order, func(i, j int) bool {
		return byTrace[order[i]][0].StartNS < byTrace[order[j]][0].StartNS
	})
	for _, id := range order {
		ss := byTrace[id]
		sort.Slice(ss, func(i, j int) bool { return ss[i].StartNS < ss[j].StartNS })
		t0 := ss[0].StartNS
		// Span of the whole trace: last end minus first start.
		endNS := t0
		anomalous := false
		for _, sp := range ss {
			if e := sp.StartNS + int64(sp.DurationMS*float64(time.Millisecond)); e > endNS {
				endNS = e
			}
			if sp.Outcome != "ok" && sp.Outcome != "error" {
				anomalous = true
			}
		}
		mark := ""
		if anomalous {
			mark = "  !"
		}
		fmt.Fprintf(w, "\ntrace %s  %d spans  %.3fms%s\n", id, len(ss), float64(endNS-t0)/float64(time.Millisecond), mark)
		for _, sp := range ss {
			offMS := float64(sp.StartNS-t0) / float64(time.Millisecond)
			line := fmt.Sprintf("  +%9.3fms  %-12s %-22s %9.3fms", offMS, sp.Stage, sp.Outcome, sp.DurationMS)
			for _, a := range sp.Attrs {
				line += fmt.Sprintf("  %s=%s", a.Key, a.Value)
			}
			fmt.Fprintln(w, line)
		}
	}
}
