// E-learning scenario: the workload that motivated JXTA-Overlay
// (Matsuo et al., "Implementation of a JXTA-based P2P e-learning
// system"). A teacher and students are organized into overlapping
// classroom groups; the teacher distributes material via file sharing,
// students chat securely within their group, presence tracks who is in
// class, and the teacher runs a (secured) remote task on a student peer
// — the executable primitive the paper flags as security-critical.
//
//	go run ./examples/elearning
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/filesvc"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/taskexec"
	"jxtaoverlay/internal/userdb"
)

type participant struct {
	sc    *core.SecureClient
	files *filesvc.Service
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	net := simnet.NewNetwork(simnet.ProfileLAN)
	defer net.Close()
	dep, err := core.NewDeployment("school-admin", 0)
	if err != nil {
		return err
	}

	// Roster: the teacher belongs to both classes (overlapping groups).
	db := userdb.NewStore()
	db.Register("teacher", "t-pw", "algebra", "geometry")
	db.Register("ann", "a-pw", "algebra")
	db.Register("ben", "b-pw", "algebra")
	db.Register("gil", "g-pw", "geometry")

	brKP, err := keys.NewKeyPair()
	if err != nil {
		return err
	}
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "school-broker", 24*time.Hour)
	if err != nil {
		return err
	}
	trust, err := dep.TrustStore()
	if err != nil {
		return err
	}
	br, err := broker.New(broker.Config{
		Name: "school-broker", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		return err
	}
	defer br.Close()
	if _, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: true,
	}); err != nil {
		return err
	}

	join := func(alias, password string) (*participant, error) {
		cl, err := client.New(net, membership.NewPSE("", 0), alias)
		if err != nil {
			return nil, err
		}
		clTrust, err := dep.TrustStore()
		if err != nil {
			return nil, err
		}
		sc, err := core.NewSecureClient(cl, clTrust)
		if err != nil {
			return nil, err
		}
		if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
			return nil, err
		}
		if err := sc.SecureLogin(ctx, password); err != nil {
			return nil, err
		}
		return &participant{sc: sc, files: filesvc.New(cl)}, nil
	}

	teacher, err := join("teacher", "t-pw")
	if err != nil {
		return err
	}
	defer teacher.sc.Close()
	ann, err := join("ann", "a-pw")
	if err != nil {
		return err
	}
	defer ann.sc.Close()
	ben, err := join("ben", "b-pw")
	if err != nil {
		return err
	}
	defer ben.sc.Close()
	gil, err := join("gil", "g-pw")
	if err != nil {
		return err
	}
	defer gil.sc.Close()
	fmt.Println("class joined; teacher groups:", teacher.sc.Groups())

	// Presence: who is in algebra right now?
	peers, err := teacher.sc.GetOnlinePeers(ctx, "algebra")
	if err != nil {
		return err
	}
	var names []string
	for _, p := range peers {
		names = append(names, p.Username)
	}
	fmt.Println("algebra attendance:", strings.Join(names, ", "))

	// The teacher distributes the lecture to the algebra group.
	lecture := []byte(strings.Repeat("theorem; proof; exercise. ", 2000))
	if err := teacher.files.Share(ctx, "algebra", "lecture-3.txt", lecture); err != nil {
		return err
	}
	hits, err := ann.files.Search(ctx, "lecture", "algebra")
	if err != nil {
		return err
	}
	if len(hits) == 0 {
		return fmt.Errorf("ann found no lecture material")
	}
	data, err := ann.files.Download(ctx, hits[0].Peer, hits[0].File.Name)
	if err != nil {
		return err
	}
	fmt.Printf("ann downloaded %q (%d bytes, digest-verified)\n", hits[0].File.Name, len(data))

	// Secure classroom chat: ben asks a question to the algebra group.
	annGot := make(chan events.Event, 4)
	ann.sc.Bus().Subscribe(events.SecureMessage, func(e events.Event) { annGot <- e })
	if _, err := ben.sc.SecureMsgPeerGroup(ctx, "algebra", "is exercise 2 due friday?"); err != nil {
		return err
	}
	select {
	case e := <-annGot:
		fmt.Printf("ann sees classmate %s ask: %q\n", e.Attr("user"), e.Data)
	case <-ctx.Done():
		return ctx.Err()
	}

	// Group isolation: gil (geometry only) cannot message algebra peers.
	if err := gil.sc.SecureMsgPeer(ctx, ann.sc.PeerID(), "algebra", "psst"); err != nil {
		fmt.Println("gil cannot reach the algebra group:", errShort(err))
	} else {
		return fmt.Errorf("group isolation failed: gil reached algebra")
	}

	// The executable primitive, secured: the teacher asks ann's peer to
	// run a grading task. The request and response both travel inside
	// the sign-then-encrypt envelope and ann's peer verifies the caller
	// shares the group.
	reg := taskexec.NewRegistry()
	reg.Register("grade", func(args []string) (string, error) {
		return fmt.Sprintf("submission %q graded: A", strings.Join(args, " ")), nil
	})
	ann.sc.EnableSecureTasks(reg)
	out, err := teacher.sc.SecureExecTask(ctx, ann.sc.PeerID(), "algebra", "grade", []string{"exercise-2"})
	if err != nil {
		return err
	}
	fmt.Println("secure remote task on ann's peer:", out)

	// Statistics primitives close the session.
	if err := ann.sc.PublishStats(ctx, "algebra"); err != nil {
		return err
	}
	stats, err := teacher.sc.GetPeerStats(ctx, ann.sc.PeerID(), "algebra")
	if err != nil {
		return err
	}
	fmt.Printf("ann's session stats: sent=%d recv=%d uptime=%ds\n",
		stats.MsgsSent, stats.MsgsRecv, stats.UptimeSec)
	return nil
}

func errShort(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, ':'); i > 0 {
		return s[:i]
	}
	return s
}
