package audit

import (
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"jxtaoverlay/internal/cred"
)

// VerifyOptions parameterizes a full-chain verification.
type VerifyOptions struct {
	// Trust, when set, requires every checkpoint's credential chain to
	// reach one of the store's anchors (attribution to a certified
	// broker key, not just "some RSA key"). Nil checks signatures
	// structurally only.
	Trust *cred.TrustStore
	// Now is the instant credential validity is evaluated at (zero =
	// time.Now).
	Now time.Time
	// ExpectHead and ExpectSeq are an externally remembered trust point
	// — the chain head and sequence number scraped from /debug/audit or
	// a prior Verify. When set, a journal that verifies internally but
	// falls short of them is reported as rollback: an attacker who
	// truncated the journal back to a record boundary (or restored an
	// old snapshot) produced a chain that is self-consistent but
	// provably not the one the auditor last saw.
	ExpectHead []byte
	ExpectSeq  uint64
}

// Fault pinpoints the first detected problem.
type Fault struct {
	// Segment is the damaged segment's file name.
	Segment string `json:"segment"`
	// Offset is the byte offset within the segment where verification
	// first failed.
	Offset int64 `json:"offset"`
	// Seq is the last sequence number verified good before the fault.
	Seq uint64 `json:"seq"`
	// Reason describes the failure.
	Reason string `json:"reason"`
}

func (f *Fault) String() string {
	return fmt.Sprintf("%s@%d (after seq %d): %s", f.Segment, f.Offset, f.Seq, f.Reason)
}

// Report is the result of one full-chain verification.
type Report struct {
	// Segments is how many segment files were walked.
	Segments int
	// Records is how many records verified good (checkpoints included).
	Records uint64
	// Events is how many of those were event records.
	Events uint64
	// Checkpoints is how many signed checkpoints verified good.
	Checkpoints int
	// LastCheckpointSeq is the newest verified checkpoint's sequence
	// number (0 = none).
	LastCheckpointSeq uint64
	// Unsealed counts records after the last verified checkpoint — the
	// tail no signature covers yet (see SECURITY.md).
	Unsealed uint64
	// Signer names the newest checkpoint's certified signer.
	Signer string
	// Head is the chain head over the verified records.
	Head [HashSize]byte
	// LastSeq is the last verified sequence number.
	LastSeq uint64
	// Fault is the first detected problem (nil = the journal is clean).
	Fault *Fault
}

// OK reports whether verification found no fault.
func (r *Report) OK() bool { return r.Fault == nil }

// Verify walks every segment of an audit journal directory, re-derives
// the hash chain record by record and checks each checkpoint's
// signature against the chain state computed so far. It stops at the
// first fault and reports its exact segment and byte offset:
//
//   - a flipped bit fails the CRC (or, if re-checksummed, the next
//     record's prev-hash) at the damaged record;
//   - a truncated or torn record fails to decode at its offset;
//   - reordered records break sequence/chain continuity at the first
//     displaced record;
//   - a rollback to an earlier record boundary verifies internally but
//     fails the ExpectHead/ExpectSeq trust point at the journal's end.
//
// The error return is reserved for harness problems (unreadable
// directory); tamper findings land in Report.Fault.
func Verify(dir string, opts VerifyOptions) (*Report, error) {
	if opts.Now.IsZero() {
		opts.Now = time.Now()
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	var head [HashSize]byte
	var seq uint64
	lastSegName := ""
	var lastSegEnd int64

walk:
	for _, seg := range segs {
		name := segName(seg)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		r.Segments++
		lastSegName, lastSegEnd = name, int64(len(data))
		var off int64
		for off < int64(len(data)) {
			rec, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				r.Fault = &Fault{Segment: name, Offset: off, Seq: seq, Reason: derr.Error()}
				break walk
			}
			if rec.Seq != seq+1 {
				r.Fault = &Fault{Segment: name, Offset: off, Seq: seq,
					Reason: fmt.Sprintf("sequence break: got seq %d, want %d", rec.Seq, seq+1)}
				break walk
			}
			if rec.Prev != head {
				r.Fault = &Fault{Segment: name, Offset: off, Seq: seq,
					Reason: fmt.Sprintf("hash chain break at seq %d: prev-hash does not match the preceding record", rec.Seq)}
				break walk
			}
			if rec.Frame == FrameCheckpoint {
				claim, cerr := parseCheckpoint(rec.Checkpoint)
				if cerr != nil {
					r.Fault = &Fault{Segment: name, Offset: off, Seq: seq, Reason: cerr.Error()}
					break walk
				}
				signer, cerr := claim.verify(rec, head, opts.Trust, opts.Now)
				if cerr != nil {
					r.Fault = &Fault{Segment: name, Offset: off, Seq: seq, Reason: cerr.Error()}
					break walk
				}
				r.Checkpoints++
				r.LastCheckpointSeq = rec.Seq
				r.Signer = signer.SubjectName
			} else {
				r.Events++
			}
			head = sha256.Sum256(data[off : off+int64(n)])
			seq = rec.Seq
			r.Records++
			off += int64(n)
		}
	}
	r.Head = head
	r.LastSeq = seq
	if r.LastCheckpointSeq > 0 {
		r.Unsealed = seq - r.LastCheckpointSeq
	} else {
		r.Unsealed = seq
	}

	// The internal chain is consistent — now hold it against the
	// externally remembered trust point, if the caller has one. The
	// first bad offset of a rollback is the journal's end: everything
	// on disk is genuine, it is the missing suffix that convicts.
	if r.Fault == nil && (len(opts.ExpectHead) > 0 || opts.ExpectSeq > 0) {
		rolledBack := opts.ExpectSeq > 0 && seq < opts.ExpectSeq
		if len(opts.ExpectHead) > 0 &&
			(opts.ExpectSeq == 0 || opts.ExpectSeq == seq) &&
			subtle.ConstantTimeCompare(head[:], opts.ExpectHead) != 1 {
			rolledBack = true
		}
		if rolledBack {
			r.Fault = &Fault{Segment: lastSegName, Offset: lastSegEnd, Seq: seq,
				Reason: fmt.Sprintf("rollback: journal ends at seq %d, which is not the trust point (expect seq %d / remembered head)", seq, opts.ExpectSeq)}
		}
	}
	return r, nil
}
