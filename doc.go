// Package jxtaoverlay is a from-scratch Go reproduction of
// "A Security-aware Approach to JXTA-Overlay Primitives"
// (Arnedo-Moreno, Matsuo, Barolli, Xhafa — ICPP Workshops 2009,
// DOI 10.1109/ICPPW.2009.13).
//
// The repository contains the complete JXTA-Overlay middleware substrate
// (XML advertisements, pipes, endpoint messaging, discovery, brokers,
// the central user database, group/file/statistics/executable
// primitives) plus the paper's contribution: the security extension in
// internal/core (secureConnection, secureLogin, secureMsgPeer,
// secureMsgPeerGroup, XMLdsig-signed advertisements, and the secured
// executable primitives the paper lists as further work).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction of the paper's evaluation. The
// benchmarks in bench_test.go regenerate every number the paper reports.
package jxtaoverlay
