// Package xmldoc implements a small XML document model with a
// deterministic canonical serialization.
//
// JXTA represents every piece of metadata — advertisements, credentials,
// messages — as structured XML documents. The security extension signs
// those documents, which requires byte-for-byte reproducible output: the
// canonical form produced here sorts attributes by name, escapes text
// minimally and deterministically, and never emits insignificant
// whitespace. It is a self-contained subset in the spirit of W3C
// Exclusive XML Canonicalization, sufficient for the document shapes
// JXTA-Overlay exchanges (no namespaces, comments, or processing
// instructions survive canonicalization).
package xmldoc

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Attr is a single name="value" attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// Element is a node in an XML document tree. Text and child elements are
// kept separately: JXTA documents are "element normal form" — an element
// carries either a text payload or child elements, not interleaved mixed
// content. Parsing concatenates any character data into Text.
type Element struct {
	Name     string
	Attrs    []Attr
	Text     string
	Children []*Element
}

// New returns an element with the given name and text payload.
func New(name, text string) *Element {
	return &Element{Name: name, Text: text}
}

// NewTree returns an element with the given name and children.
func NewTree(name string, children ...*Element) *Element {
	return &Element{Name: name, Children: children}
}

// Add appends children and returns the receiver for chaining.
func (e *Element) Add(children ...*Element) *Element {
	e.Children = append(e.Children, children...)
	return e
}

// AddText appends a child element holding only text and returns the
// receiver for chaining.
func (e *Element) AddText(name, text string) *Element {
	return e.Add(New(name, text))
}

// SetAttr sets (or replaces) an attribute value.
func (e *Element) SetAttr(name, value string) *Element {
	for i := range e.Attrs {
		if e.Attrs[i].Name == name {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Name: name, Value: value})
	return e
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Element) Attr(name string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Child returns the first direct child with the given name, or nil.
func (e *Element) Child(name string) *Element {
	for _, c := range e.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildText returns the text of the first direct child with the given
// name, or the empty string when no such child exists.
func (e *Element) ChildText(name string) string {
	if c := e.Child(name); c != nil {
		return c.Text
	}
	return ""
}

// ChildrenNamed returns all direct children with the given name.
func (e *Element) ChildrenNamed(name string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// RemoveChildren removes every direct child with the given name and
// reports how many were removed.
func (e *Element) RemoveChildren(name string) int {
	kept := e.Children[:0]
	removed := 0
	for _, c := range e.Children {
		if c.Name == name {
			removed++
			continue
		}
		kept = append(kept, c)
	}
	e.Children = kept
	return removed
}

// Clone returns a deep copy of the element tree.
func (e *Element) Clone() *Element {
	if e == nil {
		return nil
	}
	out := &Element{Name: e.Name, Text: e.Text}
	if len(e.Attrs) > 0 {
		out.Attrs = make([]Attr, len(e.Attrs))
		copy(out.Attrs, e.Attrs)
	}
	for _, c := range e.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Equal reports whether two trees are structurally identical (same names,
// attributes, text, and child order).
func (e *Element) Equal(o *Element) bool {
	if e == nil || o == nil {
		return e == o
	}
	if e.Name != o.Name || e.Text != o.Text || len(e.Attrs) != len(o.Attrs) || len(e.Children) != len(o.Children) {
		return false
	}
	ea, oa := sortedAttrs(e.Attrs), sortedAttrs(o.Attrs)
	for i := range ea {
		if ea[i] != oa[i] {
			return false
		}
	}
	for i := range e.Children {
		if !e.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

func sortedAttrs(in []Attr) []Attr {
	out := make([]Attr, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Canonical returns the deterministic canonical serialization of the
// tree. Two structurally equal trees always canonicalize to identical
// bytes, which makes the output suitable as signing input.
func (e *Element) Canonical() []byte {
	var b strings.Builder
	e.writeCanonical(&b)
	return []byte(b.String())
}

func (e *Element) writeCanonical(b *strings.Builder) {
	b.WriteByte('<')
	b.WriteString(e.Name)
	for _, a := range sortedAttrs(e.Attrs) {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		escapeAttr(b, a.Value)
		b.WriteByte('"')
	}
	b.WriteByte('>')
	escapeText(b, e.Text)
	for _, c := range e.Children {
		c.writeCanonical(b)
	}
	b.WriteString("</")
	b.WriteString(e.Name)
	b.WriteByte('>')
}

// String renders the canonical form; handy for debugging and logs.
func (e *Element) String() string { return string(e.Canonical()) }

// Indented returns a pretty-printed rendering for human consumption. The
// output is NOT canonical and must never be used as signing input.
func (e *Element) Indented() string {
	var b strings.Builder
	e.writeIndented(&b, 0)
	return b.String()
}

func (e *Element) writeIndented(b *strings.Builder, depth int) {
	pad := strings.Repeat("  ", depth)
	b.WriteString(pad)
	b.WriteByte('<')
	b.WriteString(e.Name)
	for _, a := range sortedAttrs(e.Attrs) {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		escapeAttr(b, a.Value)
		b.WriteByte('"')
	}
	if len(e.Children) == 0 && e.Text == "" {
		b.WriteString("/>\n")
		return
	}
	b.WriteByte('>')
	if len(e.Children) == 0 {
		escapeText(b, e.Text)
		b.WriteString("</")
		b.WriteString(e.Name)
		b.WriteString(">\n")
		return
	}
	b.WriteByte('\n')
	if e.Text != "" {
		b.WriteString(pad)
		b.WriteString("  ")
		escapeText(b, e.Text)
		b.WriteByte('\n')
	}
	for _, c := range e.Children {
		c.writeIndented(b, depth+1)
	}
	b.WriteString(pad)
	b.WriteString("</")
	b.WriteString(e.Name)
	b.WriteString(">\n")
}

func escapeText(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '\r':
			b.WriteString("&#xD;")
		default:
			b.WriteRune(r)
		}
	}
}

func escapeAttr(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '"':
			b.WriteString("&quot;")
		case '\t':
			b.WriteString("&#x9;")
		case '\n':
			b.WriteString("&#xA;")
		case '\r':
			b.WriteString("&#xD;")
		default:
			b.WriteRune(r)
		}
	}
}

// ErrEmptyDocument is returned by Parse when the input holds no element.
var ErrEmptyDocument = errors.New("xmldoc: empty document")

// Parse reads a single XML document from r into an Element tree.
// Namespaces are flattened (local names only), comments, directives and
// processing instructions are dropped, and character data inside an
// element is concatenated and trimmed of leading/trailing whitespace
// when the element also has child elements (pretty-printed input).
func Parse(r io.Reader) (*Element, error) {
	dec := xml.NewDecoder(r)
	var stack []*Element
	var root *Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := &Element{Name: t.Name.Local}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				el.Attrs = append(el.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmldoc: multiple root elements")
				}
				root = el
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmldoc: unbalanced end element")
			}
			top := stack[len(stack)-1]
			if len(top.Children) > 0 {
				top.Text = strings.TrimSpace(top.Text)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, ErrEmptyDocument
	}
	if len(stack) != 0 {
		return nil, errors.New("xmldoc: unexpected EOF inside element")
	}
	return root, nil
}

// ParseBytes is Parse over a byte slice.
func ParseBytes(data []byte) (*Element, error) {
	return Parse(strings.NewReader(string(data)))
}

// RoundTrip canonicalizes and re-parses the tree; it is used by tests to
// assert that canonicalization is a fixed point of Parse∘Canonical.
func RoundTrip(e *Element) (*Element, error) {
	return ParseBytes(e.Canonical())
}
