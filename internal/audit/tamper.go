package audit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Disk-adversary helpers: the attack suite (and the property test)
// corrupt journals through these so every test damages bytes the same
// way a malicious or failing disk would — by path, offset and bit,
// never through the Journal API.

// ErrNoRecords is returned when a tamper helper needs records the
// journal does not have.
var ErrNoRecords = errors.New("audit: journal has no records")

// Loc names one record's position on disk.
type Loc struct {
	Segment string // file name within the journal directory
	Offset  int64  // byte offset of the record's header
	Size    int64  // framed size (header + body)
	Seq     uint64
	Frame   Frame
}

// scan decodes every record in every segment, returning their
// locations in order. Damage mid-scan stops the scan (the helpers
// only need the intact prefix).
func scan(dir string) ([]Loc, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var locs []Loc
	for _, seg := range segs {
		name := segName(seg)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var off int64
		for off < int64(len(data)) {
			rec, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				return locs, nil
			}
			locs = append(locs, Loc{Segment: name, Offset: off, Size: int64(n), Seq: rec.Seq, Frame: rec.Frame})
			off += int64(n)
		}
	}
	return locs, nil
}

// FlipBit flips one bit in the middle of the last record's body — the
// single-bit disk error (or the crudest tamper). The CRC catches it.
func FlipBit(dir string) (Loc, error) {
	locs, err := scan(dir)
	if err != nil {
		return Loc{}, err
	}
	if len(locs) == 0 {
		return Loc{}, ErrNoRecords
	}
	loc := locs[len(locs)-1]
	pos := loc.Offset + headerSize + (loc.Size-headerSize)/2
	return loc, flipBitAt(filepath.Join(dir, loc.Segment), pos)
}

func flipBitAt(path string, pos int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], pos); err != nil {
		return err
	}
	b[0] ^= 0x10
	_, err = f.WriteAt(b[:], pos)
	return err
}

// TearRecord truncates the final segment halfway through its last
// record — the torn write a crash (or a truncation attack) leaves.
func TearRecord(dir string) (Loc, error) {
	locs, err := scan(dir)
	if err != nil {
		return Loc{}, err
	}
	if len(locs) == 0 {
		return Loc{}, ErrNoRecords
	}
	loc := locs[len(locs)-1]
	return loc, os.Truncate(filepath.Join(dir, loc.Segment), loc.Offset+loc.Size/2)
}

// SwapRecords swaps the last two records that share a segment — a
// reorder that preserves every byte and every CRC, so only the chain
// (sequence and prev-hash continuity) can convict it. It returns the
// location of the earlier of the two (where verification must break).
func SwapRecords(dir string) (Loc, error) {
	locs, err := scan(dir)
	if err != nil {
		return Loc{}, err
	}
	for i := len(locs) - 1; i > 0; i-- {
		a, b := locs[i-1], locs[i]
		if a.Segment != b.Segment {
			continue
		}
		path := filepath.Join(dir, a.Segment)
		data, err := os.ReadFile(path)
		if err != nil {
			return Loc{}, err
		}
		swapped := make([]byte, 0, len(data))
		swapped = append(swapped, data[:a.Offset]...)
		swapped = append(swapped, data[b.Offset:b.Offset+b.Size]...)
		swapped = append(swapped, data[a.Offset:a.Offset+a.Size]...)
		swapped = append(swapped, data[b.Offset+b.Size:]...)
		return a, os.WriteFile(path, swapped, 0o644)
	}
	return Loc{}, fmt.Errorf("%w: need two records in one segment", ErrNoRecords)
}

// Rollback truncates the journal back to just after its most recent
// checkpoint that is not the final record, deleting later segments —
// the snapshot-restore attack. The resulting journal is internally
// consistent (it ends on a genuine signed checkpoint); only an
// externally remembered trust point (Verify's ExpectHead/ExpectSeq)
// can convict it. It returns the location of the checkpoint the
// journal was rolled back to.
func Rollback(dir string) (Loc, error) {
	locs, err := scan(dir)
	if err != nil {
		return Loc{}, err
	}
	ckpt := -1
	for i := len(locs) - 2; i >= 0; i-- {
		if locs[i].Frame == FrameCheckpoint {
			ckpt = i
			break
		}
	}
	if ckpt < 0 {
		return Loc{}, fmt.Errorf("%w: need a non-final checkpoint to roll back to", ErrNoRecords)
	}
	loc := locs[ckpt]
	if err := os.Truncate(filepath.Join(dir, loc.Segment), loc.Offset+loc.Size); err != nil {
		return Loc{}, err
	}
	// Drop every segment after the one we truncated into.
	segs, err := listSegments(dir)
	if err != nil {
		return Loc{}, err
	}
	cut := false
	for _, seg := range segs {
		name := segName(seg)
		if cut {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return Loc{}, err
			}
		}
		if name == loc.Segment {
			cut = true
		}
	}
	return loc, nil
}
