package audit

import (
	"crypto/subtle"
	"encoding/base64"
	"fmt"
	"strconv"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xdsig"
	"jxtaoverlay/internal/xmldoc"
)

// CheckpointElement is the root element of a checkpoint attestation.
const CheckpointElement = "AuditCheckpoint"

// buildCheckpoint produces the signed canonical XML payload of a
// checkpoint record at sequence seq: an attestation that after the
// first seq-1 records the hash chain's head was `head`. The signature
// is the same enveloped XMLdsig shape advertisements use, so the
// KeyInfo block carries the broker's credential chain — the attestation
// is attributable to a specific certified broker key, not just "some
// RSA key".
func buildCheckpoint(seq uint64, head [HashSize]byte, ts time.Time, kp *keys.KeyPair, chain []*cred.Credential) ([]byte, error) {
	doc := xmldoc.New(CheckpointElement, "")
	doc.AddText("Seq", strconv.FormatUint(seq, 10))
	doc.AddText("Records", strconv.FormatUint(seq-1, 10))
	doc.AddText("ChainHead", base64.StdEncoding.EncodeToString(head[:]))
	doc.AddText("Timestamp", strconv.FormatInt(ts.UnixNano(), 10))
	if err := xdsig.Sign(doc, kp, chain...); err != nil {
		return nil, fmt.Errorf("audit: sign checkpoint: %w", err)
	}
	return doc.Canonical(), nil
}

// checkpointClaim is a parsed (not yet verified) checkpoint payload.
type checkpointClaim struct {
	Seq     uint64
	Records uint64
	Head    [HashSize]byte
	Time    int64
	doc     *xmldoc.Element
}

func parseCheckpoint(payload []byte) (*checkpointClaim, error) {
	doc, err := xmldoc.ParseBytes(payload)
	if err != nil {
		return nil, fmt.Errorf("audit: checkpoint payload: %w", err)
	}
	if doc.Name != CheckpointElement {
		return nil, fmt.Errorf("audit: checkpoint payload is a %q document", doc.Name)
	}
	c := &checkpointClaim{doc: doc}
	if c.Seq, err = strconv.ParseUint(doc.ChildText("Seq"), 10, 64); err != nil {
		return nil, fmt.Errorf("audit: checkpoint Seq: %w", err)
	}
	if c.Records, err = strconv.ParseUint(doc.ChildText("Records"), 10, 64); err != nil {
		return nil, fmt.Errorf("audit: checkpoint Records: %w", err)
	}
	h, err := base64.StdEncoding.DecodeString(doc.ChildText("ChainHead"))
	if err != nil || len(h) != HashSize {
		return nil, fmt.Errorf("audit: checkpoint ChainHead invalid")
	}
	copy(c.Head[:], h)
	if c.Time, err = strconv.ParseInt(doc.ChildText("Timestamp"), 10, 64); err != nil {
		return nil, fmt.Errorf("audit: checkpoint Timestamp: %w", err)
	}
	return c, nil
}

// verify checks the claim against the verifier's independently computed
// chain state at the checkpoint's position, then the XMLdsig signature
// (structurally always; against a trust anchor when ts is non-nil).
// It returns the signer's leaf credential for attribution.
func (c *checkpointClaim) verify(rec Record, computedHead [HashSize]byte, ts *cred.TrustStore, now time.Time) (*cred.Credential, error) {
	if c.Seq != rec.Seq {
		return nil, fmt.Errorf("audit: checkpoint claims seq %d but sits at seq %d", c.Seq, rec.Seq)
	}
	if c.Records != rec.Seq-1 {
		return nil, fmt.Errorf("audit: checkpoint claims %d records before seq %d", c.Records, rec.Seq)
	}
	if subtle.ConstantTimeCompare(c.Head[:], computedHead[:]) != 1 {
		return nil, fmt.Errorf("audit: checkpoint chain head does not match the records before it")
	}
	var res *xdsig.Result
	var err error
	if ts != nil {
		res, err = xdsig.VerifyTrusted(c.doc, ts, now)
	} else {
		res, err = xdsig.Verify(c.doc)
	}
	if err != nil {
		return nil, fmt.Errorf("audit: checkpoint signature: %w", err)
	}
	return res.Signer, nil
}
