package core_test

// Liveness tests: lease grant at secureLogin, heartbeat renewal,
// missed-heartbeat expiry, and the lease-expired refusal surfacing as
// ErrLeaseLost. Time is driven through the injected broker clock +
// ExpireLapsedNow, never wall-clock sleeps.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

// leaseHarness is a secureHarness with liveness enabled and a movable
// broker clock.
type leaseHarness struct {
	*secureHarness
	mu  sync.Mutex
	now time.Time
}

const testLeaseTTL = 30 * time.Second

func newLeaseHarness(t *testing.T) *leaseHarness {
	t.Helper()
	h := &leaseHarness{now: time.Now()}
	h.secureHarness = &secureHarness{t: t, signAdv: true}
	h.net = simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(h.net.Close)

	var err error
	h.dep, err = core.NewDeployment("uoc-admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	h.db = userdb.NewStoreIter(4)
	h.db.Register("alice", "pw-alice", "math")
	h.db.Register("bob", "pw-bob", "math")

	h.brKP, err = keys.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	h.brCred, err = h.dep.IssueBrokerCredential(h.brKP.Public(), "broker-1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, err := h.dep.TrustStore()
	if err != nil {
		t.Fatal(err)
	}
	h.br, err = broker.New(broker.Config{
		Name:   "broker-1",
		PeerID: h.brCred.Subject,
		Net:    h.net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return h.db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.br.Close)
	h.brSec, err = core.EnableBrokerSecurity(h.br, core.BrokerConfig{
		KeyPair:           h.brKP,
		Credential:        h.brCred,
		Trust:             trust,
		RequireSignedAdvs: true,
		LeaseTTL:          testLeaseTTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.brSec.Close)
	h.brSec.SetClock(h.clock)
	return h
}

func (h *leaseHarness) clock() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now
}

func (h *leaseHarness) advance(d time.Duration) {
	h.mu.Lock()
	h.now = h.now.Add(d)
	h.mu.Unlock()
}

func TestSecureLoginGrantsLease(t *testing.T) {
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")

	leaseID, ttl := sc.Lease()
	if leaseID == "" {
		t.Fatal("secureLogin granted no lease with LeaseTTL configured")
	}
	if ttl != testLeaseTTL {
		t.Fatalf("lease TTL = %v, want %v", ttl, testLeaseTTL)
	}
	if got := h.brSec.Leases(); got != 1 {
		t.Fatalf("broker holds %d leases, want 1", got)
	}
	if st := h.brSec.LivenessStats(); st.LeasesGranted != 1 {
		t.Fatalf("LeasesGranted = %d, want 1", st.LeasesGranted)
	}
}

func TestHeartbeatRenewsLease(t *testing.T) {
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	ctx := testCtx(t)

	// Walk several TTLs forward, heartbeating just before each expiry:
	// the session must stay up the whole way.
	for i := 0; i < 4; i++ {
		h.advance(testLeaseTTL - time.Second)
		if err := sc.SecureHeartbeat(ctx); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
		h.brSec.ExpireLapsedNow()
		if !h.br.PeerOnline(sc.PeerID()) {
			t.Fatalf("renewed session went down at step %d", i)
		}
	}
	if st := h.brSec.LivenessStats(); st.HeartbeatsRenewed != 4 || st.LeasesExpired != 0 {
		t.Fatalf("stats = %+v, want 4 renewed / 0 expired", st)
	}
}

func TestMissedHeartbeatsExpirePresence(t *testing.T) {
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")

	if !h.br.PeerOnline(sc.PeerID()) {
		t.Fatal("peer not online after login")
	}
	h.advance(testLeaseTTL + time.Second)
	h.brSec.ExpireLapsedNow()
	if h.br.PeerOnline(sc.PeerID()) {
		t.Fatal("silent session still online past its lease")
	}
	if st := h.brSec.LivenessStats(); st.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", st.LeasesExpired)
	}
	if h.brSec.Leases() != 0 {
		t.Fatal("expired lease still held")
	}

	// The dead session's next heartbeat is refused with lease-expired,
	// surfaced to callers as ErrLeaseLost (resume, don't retry).
	if err := sc.SecureHeartbeat(testCtx(t)); !errors.Is(err, core.ErrLeaseLost) {
		t.Fatalf("heartbeat after expiry = %v, want ErrLeaseLost", err)
	}
}

func TestReloginAfterExpiryGrantsFreshLease(t *testing.T) {
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	first, _ := sc.Lease()

	h.advance(testLeaseTTL + time.Second)
	h.brSec.ExpireLapsedNow()

	// Full re-login (fresh sid) mints a fresh lease under the same peer.
	h.join(sc, "pw-alice")
	second, _ := sc.Lease()
	if second == "" || second == first {
		t.Fatalf("re-login lease = %q (first %q), want a fresh id", second, first)
	}
	if !h.br.PeerOnline(sc.PeerID()) {
		t.Fatal("peer not online after re-login")
	}

	// A sweep collected against the OLD session must not take the new
	// one down: the monotonic session guard in ExpirePeer.
	if h.br.ExpirePeer(sc.PeerID(), "lease-expired", time.Now().Add(-time.Hour)) {
		t.Fatal("stale expiry clobbered the newer session")
	}
	if !h.br.PeerOnline(sc.PeerID()) {
		t.Fatal("peer knocked offline by a stale expiry")
	}
}

func TestHeartbeatWithoutLeaseErrs(t *testing.T) {
	// A broker without liveness grants no lease; the client's heartbeat
	// fails fast with ErrNoLease rather than sending anything.
	h := newSecureHarness(t, true)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	if id, ttl := sc.Lease(); id != "" || ttl != 0 {
		t.Fatalf("lease granted (%q, %v) with liveness disabled", id, ttl)
	}
	if err := sc.SecureHeartbeat(testCtx(t)); !errors.Is(err, core.ErrNoLease) {
		t.Fatalf("heartbeat = %v, want ErrNoLease", err)
	}
}

func TestIdempotentRetryDedup(t *testing.T) {
	// The same mutating request presented twice under one idempotency
	// key executes once: the second submission is answered from the
	// dedup window (the ambiguous-timeout retry case).
	h := newLeaseHarness(t)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	ctx := testCtx(t)

	mkReq := func() *endpoint.Message {
		return endpoint.NewMessage().
			AddString(proto.ElemOp, proto.OpGroupCreate).
			AddString(proto.ElemGroup, "proj").
			AddString(proto.ElemDesc, "project").
			AddString(proto.ElemIdem, "ik-test-1")
	}
	if _, err := sc.Call(ctx, mkReq()); err != nil {
		t.Fatalf("first create: %v", err)
	}
	// Without the key this retry would fail with group-exists; with it,
	// the cached OK comes back.
	if _, err := sc.Call(ctx, mkReq()); err != nil {
		t.Fatalf("idempotent retry: %v", err)
	}
	if got := h.br.Stats().IdemDeduped; got != 1 {
		t.Fatalf("IdemDeduped = %d, want 1", got)
	}

	// A DIFFERENT key re-executes and gets the real refusal.
	fresh := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpGroupCreate).
		AddString(proto.ElemGroup, "proj").
		AddString(proto.ElemDesc, "project").
		AddString(proto.ElemIdem, "ik-test-2")
	if _, err := sc.Call(ctx, fresh); err == nil {
		t.Fatal("duplicate create under a fresh key did not fail")
	}
}
