package core_test

import (
	"testing"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/simnet"
)

// TestSecureMessageReplay demonstrates both halves of the messenger
// replay story: without the guard the stateless primitive accepts a
// verbatim replay (faithful to the paper), with the guard it does not.
func TestSecureMessageReplay(t *testing.T) {
	run := func(withGuard bool) (messages, alerts int) {
		h := newSecureHarness(t, true)
		alice := h.secureClient("alice")
		var opts []core.Option
		if withGuard {
			opts = append(opts, core.WithReplayGuard(core.NewReplayGuard(time.Minute, 64)))
		}
		bob := h.secureClient("bob", opts...)
		h.join(alice, "pw-alice")
		h.join(bob, "pw-bob")
		bobEvents := events.NewCollector(bob.Bus())

		eve := attack.NewEavesdropper(h.net)
		ctx := testCtx(t)
		if err := alice.SecureMsgPeer(ctx, bob.PeerID(), "math", "pay invoice 42"); err != nil {
			t.Fatal(err)
		}
		if _, ok := bobEvents.WaitFor(events.SecureMessage, 5*time.Second); !ok {
			t.Fatal("original message not delivered")
		}

		// Replay every captured frame addressed to bob verbatim.
		raw, err := attack.NewRawNode(h.net, "replayer")
		if err != nil {
			t.Fatal(err)
		}
		bobNode := simnet.NodeID(bob.PeerID())
		for _, frame := range eve.FramesTo(bobNode) {
			if err := raw.Replay(bobNode, frame); err != nil {
				t.Fatal(err)
			}
		}
		// Wait for the replays to be processed either way.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if len(bobEvents.OfType(events.SecureMessage))+len(bobEvents.OfType(events.SecurityAlert)) >= 2 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		return len(bobEvents.OfType(events.SecureMessage)), len(bobEvents.OfType(events.SecurityAlert))
	}

	// Paper-faithful stateless mode: the replay is accepted as a second
	// message (documented limitation of §4.3's best-effort design).
	msgs, _ := run(false)
	if msgs < 2 {
		t.Fatalf("stateless mode delivered %d messages, expected the replay to land", msgs)
	}

	// Hardened mode: exactly one delivery, and a security alert for the
	// replay.
	msgs, alerts := run(true)
	if msgs != 1 {
		t.Fatalf("guarded mode delivered %d messages, want 1", msgs)
	}
	if alerts == 0 {
		t.Fatal("guarded mode raised no alert for the replay")
	}
}
