package xmldoc

import (
	"sort"
	"sync"
	"unicode/utf8"
)

// Canonicalization fast path.
//
// Canonical output is requested over and over on the hot paths — every
// signature, digest, wire encoding and cache lookup serializes the same
// trees — so the serializer is built around three ideas:
//
//  1. append-based writing into a caller- or pool-provided []byte, so a
//     serialization costs at most one right-sized allocation;
//  2. a per-element memo of the element's own canonical bytes, dropped by
//     every mutator (see Element.invalidate), so repeated Canonical calls
//     on an unchanged tree are a pointer load;
//  3. CanonicalSkip, which serializes a document *minus* selected direct
//     children (the XMLdsig "detach the Signature" step) without the
//     Clone+RemoveChildren deep copy the naive formulation needs.
//
// The memo slice is shared: callers of Canonical and String MUST treat
// the returned bytes as read-only.

// canonPool recycles scratch buffers for cache-miss serializations.
var canonPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// Canonical returns the deterministic canonical serialization of the
// tree. Two structurally equal trees always canonicalize to identical
// bytes, which makes the output suitable as signing input.
//
// The result is memoized on the element until a mutator invalidates it;
// callers must not modify the returned slice.
func (e *Element) Canonical() []byte {
	if c := e.canon.Load(); c != nil {
		return *c
	}
	bp := canonPool.Get().(*[]byte)
	buf := e.appendCanonical((*bp)[:0], noSkip)
	out := make([]byte, len(buf))
	copy(out, buf)
	*bp = buf[:0]
	canonPool.Put(bp)
	e.canon.Store(&out)
	return out
}

// AppendCanonical appends the canonical serialization of the tree to dst
// and returns the extended slice, reusing the memoized bytes when they
// are fresh. It never allocates beyond growing dst.
func (e *Element) AppendCanonical(dst []byte) []byte {
	return e.appendCanonical(dst, noSkip)
}

// CanonicalSkip returns the canonical serialization of the tree with
// every *direct* child named skip omitted — the signing input of an
// enveloped-signature document without detaching its Signature children
// first. Unlike Canonical the result is a fresh slice owned by the
// caller; it is not memoized (the skipped form is derived, not the
// element's identity).
func (e *Element) CanonicalSkip(skip string) []byte {
	bp := canonPool.Get().(*[]byte)
	buf := e.appendCanonical((*bp)[:0], skip)
	out := make([]byte, len(buf))
	copy(out, buf)
	*bp = buf[:0]
	canonPool.Put(bp)
	return out
}

// noSkip marks a plain serialization; element names are never empty.
const noSkip = ""

func (e *Element) appendCanonical(dst []byte, skip string) []byte {
	if skip == noSkip {
		if c := e.canon.Load(); c != nil {
			return append(dst, *c...)
		}
	}
	dst = append(dst, '<')
	dst = append(dst, e.Name...)
	switch len(e.Attrs) {
	case 0:
	case 1:
		dst = appendAttr(dst, e.Attrs[0])
	default:
		sorted := make([]Attr, len(e.Attrs))
		copy(sorted, e.Attrs)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, a := range sorted {
			dst = appendAttr(dst, a)
		}
	}
	dst = append(dst, '>')
	dst = appendEscapedText(dst, e.Text)
	for _, c := range e.Children {
		if skip != noSkip && c.Name == skip {
			continue
		}
		dst = c.appendCanonical(dst, noSkip)
	}
	dst = append(dst, '<', '/')
	dst = append(dst, e.Name...)
	dst = append(dst, '>')
	return dst
}

func appendAttr(dst []byte, a Attr) []byte {
	dst = append(dst, ' ')
	dst = append(dst, a.Name...)
	dst = append(dst, '=', '"')
	dst = appendEscapedAttr(dst, a.Value)
	return append(dst, '"')
}

// The escape loops run byte-wise over the ASCII range (every escaped
// character is ASCII) and fall back to rune decoding above 0x7F, so
// invalid UTF-8 canonicalizes to U+FFFD exactly as the previous
// rune-wise serializer (strings.Builder.WriteRune) produced — the
// canonical bytes, i.e. the signing input, are unchanged.

func appendEscapedText(dst []byte, s string) []byte {
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == '&':
			dst = append(dst, "&amp;"...)
		case c == '<':
			dst = append(dst, "&lt;"...)
		case c == '>':
			dst = append(dst, "&gt;"...)
		case c == '\r':
			dst = append(dst, "&#xD;"...)
		case c < utf8.RuneSelf:
			dst = append(dst, c)
		default:
			var size int
			dst, size = appendRune(dst, s[i:])
			i += size
			continue
		}
		i++
	}
	return dst
}

func appendEscapedAttr(dst []byte, s string) []byte {
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == '&':
			dst = append(dst, "&amp;"...)
		case c == '<':
			dst = append(dst, "&lt;"...)
		case c == '"':
			dst = append(dst, "&quot;"...)
		case c == '\t':
			dst = append(dst, "&#x9;"...)
		case c == '\n':
			dst = append(dst, "&#xA;"...)
		case c == '\r':
			dst = append(dst, "&#xD;"...)
		case c < utf8.RuneSelf:
			dst = append(dst, c)
		default:
			var size int
			dst, size = appendRune(dst, s[i:])
			i += size
			continue
		}
		i++
	}
	return dst
}

// appendRune appends the leading rune of s, replacing invalid UTF-8
// with U+FFFD, and reports how many input bytes were consumed.
func appendRune(dst []byte, s string) ([]byte, int) {
	r, size := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError && size == 1 {
		return utf8.AppendRune(dst, utf8.RuneError), 1
	}
	return append(dst, s[:size]...), size
}
