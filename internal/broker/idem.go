package broker

// Idempotency dedup window. A resilient client that retries a mutating
// operation after an ambiguous timeout (request sent, response never
// seen) cannot know whether the broker executed it. When the retry
// carries the same client-minted idempotency key (proto.ElemIdem), the
// broker answers from a (peer, key) → response table instead of
// executing the handler again — at-most-once for acknowledged
// mutations, the same promise the recipient-side ReplayGuard makes for
// message opens, enforced one layer earlier so the mutation itself
// (a relay enqueue, a group create) is not repeated.
//
// The table is bounded exactly like core.ReplayGuard: entries expire a
// window after caching, an amortized sweep (every window/4, or
// whenever the table is full) prunes them, and overflow evicts the
// entry closest to expiry. Only successful responses are cached — a
// refused operation performed no mutation, so retrying it must
// re-execute, and transient refusals (rate-limited, quota) must not be
// pinned for the window.

import (
	"sync"
	"time"

	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
)

const (
	// idemWindow bounds how long an acknowledged response is replayable.
	// It must comfortably exceed the longest retry schedule a client
	// runs (backoff cap ~5s, a handful of attempts) — 2 minutes matches
	// the ReplayGuard freshness window.
	idemWindow = 2 * time.Minute
	// idemMaxEntries bounds table memory; at the default window this
	// admits ~34 acknowledged mutations/sec before eviction pressure.
	idemMaxEntries = 4096
)

type idemEntry struct {
	resp   *endpoint.Message
	expiry time.Time
}

// idemCache is the broker's dedup table, keyed peer-first so the
// lookup — which runs on EVERY mutating dispatch carrying a key, hits
// and misses alike — indexes two maps instead of concatenating a
// scoped string key (zero allocations, bench-gated). The per-peer
// outer level is also the isolation boundary: peers cannot collide
// with (or probe) each other's cached responses. The zero value is
// ready to use (lazily initialized under its own mutex, off the
// read-mostly broker lock).
type idemCache struct {
	mu        sync.Mutex
	seen      map[keys.PeerID]map[string]idemEntry
	count     int
	nextSweep time.Time
	clock     func() time.Time
}

func (c *idemCache) now() time.Time {
	if c.clock != nil {
		return c.clock()
	}
	return time.Now()
}

// lookup returns the cached response for a live (peer, key) entry.
func (c *idemCache) lookup(from keys.PeerID, key string) (*endpoint.Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.seen[from][key]
	if !ok || c.now().After(e.expiry) {
		return nil, false
	}
	return e.resp, true
}

// store caches a response under (peer, key), sweeping amortizedly and
// evicting the soonest-to-expire entry on overflow.
func (c *idemCache) store(from keys.PeerID, key string, resp *endpoint.Message) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seen == nil {
		c.seen = make(map[keys.PeerID]map[string]idemEntry)
	}
	if !now.Before(c.nextSweep) || c.count >= idemMaxEntries {
		c.sweepLocked(now)
		c.nextSweep = now.Add(idemWindow / 4)
	}
	if c.count >= idemMaxEntries {
		var oldFrom keys.PeerID
		var oldKey string
		var soonest time.Time
		first := true
		for f, inner := range c.seen {
			for k, e := range inner {
				if first || e.expiry.Before(soonest) {
					oldFrom, oldKey, soonest = f, k, e.expiry
					first = false
				}
			}
		}
		if !first {
			c.deleteLocked(oldFrom, oldKey)
		}
	}
	inner := c.seen[from]
	if inner == nil {
		inner = make(map[string]idemEntry)
		c.seen[from] = inner
	}
	if _, exists := inner[key]; !exists {
		c.count++
	}
	inner[key] = idemEntry{resp: resp, expiry: now.Add(idemWindow)}
}

// sweepLocked prunes expired entries and empty per-peer tables.
func (c *idemCache) sweepLocked(now time.Time) {
	for f, inner := range c.seen {
		for k, e := range inner {
			if now.After(e.expiry) {
				delete(inner, k)
				c.count--
			}
		}
		if len(inner) == 0 {
			delete(c.seen, f)
		}
	}
}

// deleteLocked removes one entry, dropping its peer table when empty.
func (c *idemCache) deleteLocked(from keys.PeerID, key string) {
	inner := c.seen[from]
	if _, ok := inner[key]; ok {
		delete(inner, key)
		c.count--
		if len(inner) == 0 {
			delete(c.seen, from)
		}
	}
}

// entries reports the live table size (telemetry gauge).
func (c *idemCache) entries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// SetIdemClock overrides the dedup window's time source (tests).
func (b *Broker) SetIdemClock(now func() time.Time) {
	b.idem.mu.Lock()
	b.idem.clock = now
	b.idem.mu.Unlock()
}

// IdemEntries reports the idempotency dedup window's live entry count.
func (b *Broker) IdemEntries() int { return b.idem.entries() }
