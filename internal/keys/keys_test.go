package keys

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// testKeys caches generated key pairs so the suite does not pay RSA
// generation per test.
var testKeys = struct {
	a, b *KeyPair
}{mustKey(1), mustKey(2)}

func mustKey(seed int64) *KeyPair {
	kp, err := KeyPairFrom(rand.New(rand.NewSource(seed)), DefaultRSABits)
	if err != nil {
		panic(err)
	}
	return kp
}

func TestKeySizeFloor(t *testing.T) {
	if _, err := KeyPairBits(512); err == nil {
		t.Fatal("KeyPairBits(512) succeeded, want error")
	}
	if _, err := KeyPairFrom(rand.New(rand.NewSource(9)), 768); err == nil {
		t.Fatal("KeyPairFrom(768) succeeded, want error")
	}
}

func TestSignVerify(t *testing.T) {
	msg := []byte("advertisement body")
	sig, err := testKeys.a.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := testKeys.a.Public().Verify(msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	msg := []byte("login request")
	sig, err := testKeys.a.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	tampered := append([]byte(nil), msg...)
	tampered[0] ^= 0x01
	if err := testKeys.a.Public().Verify(tampered, sig); err == nil {
		t.Fatal("Verify accepted tampered message")
	}
	badSig := append([]byte(nil), sig...)
	badSig[10] ^= 0x80
	if err := testKeys.a.Public().Verify(msg, badSig); err == nil {
		t.Fatal("Verify accepted tampered signature")
	}
	if err := testKeys.b.Public().Verify(msg, sig); err == nil {
		t.Fatal("Verify accepted signature under wrong key")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	plain := []byte("username|password|pk")
	env, err := testKeys.a.Public().Encrypt(plain)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := testKeys.a.Decrypt(env)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatalf("Decrypt = %q, want %q", got, plain)
	}
}

func TestDecryptWrongKey(t *testing.T) {
	env, err := testKeys.a.Public().Encrypt([]byte("secret"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := testKeys.b.Decrypt(env); err == nil {
		t.Fatal("Decrypt with wrong key succeeded")
	}
}

func TestDecryptTamperedCiphertext(t *testing.T) {
	env, err := testKeys.a.Public().Encrypt([]byte("secret"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	env.Ciphertext[0] ^= 0xFF
	if _, err := testKeys.a.Decrypt(env); err == nil {
		t.Fatal("Decrypt accepted tampered ciphertext (GCM must fail)")
	}
}

func TestDecryptNil(t *testing.T) {
	if _, err := testKeys.a.Decrypt(nil); err == nil {
		t.Fatal("Decrypt(nil) succeeded")
	}
}

func TestEnvelopeMarshalRoundTrip(t *testing.T) {
	env, err := testKeys.a.Public().Encrypt([]byte("payload"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	wire := env.Marshal()
	back, err := ParseEnvelope(wire)
	if err != nil {
		t.Fatalf("ParseEnvelope: %v", err)
	}
	if !bytes.Equal(back.WrappedKey, env.WrappedKey) ||
		!bytes.Equal(back.Nonce, env.Nonce) ||
		!bytes.Equal(back.Ciphertext, env.Ciphertext) {
		t.Fatal("envelope round trip mismatch")
	}
	got, err := testKeys.a.Decrypt(back)
	if err != nil || string(got) != "payload" {
		t.Fatalf("Decrypt after round trip = %q, %v", got, err)
	}
}

func TestParseEnvelopeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"short":     {0, 0},
		"truncated": {0, 0, 0, 10, 1, 2},
		"trailing":  append(new(Envelope).Marshal(), 0xFF),
	}
	for name, data := range cases {
		if _, err := ParseEnvelope(data); err == nil {
			t.Errorf("ParseEnvelope(%s) succeeded, want error", name)
		}
	}
}

func TestPublicKeyDERRoundTrip(t *testing.T) {
	pub := testKeys.a.Public()
	der, err := pub.MarshalDER()
	if err != nil {
		t.Fatalf("MarshalDER: %v", err)
	}
	back, err := ParsePublicDER(der)
	if err != nil {
		t.Fatalf("ParsePublicDER: %v", err)
	}
	if !pub.Equal(back) {
		t.Fatal("DER round trip key mismatch")
	}
}

func TestPublicKeyBase64RoundTrip(t *testing.T) {
	pub := testKeys.a.Public()
	b64, err := pub.MarshalBase64()
	if err != nil {
		t.Fatalf("MarshalBase64: %v", err)
	}
	back, err := ParsePublicBase64(b64)
	if err != nil {
		t.Fatalf("ParsePublicBase64: %v", err)
	}
	if !pub.Equal(back) {
		t.Fatal("base64 round trip key mismatch")
	}
	if _, err := ParsePublicBase64("!!not-base64!!"); err == nil {
		t.Fatal("ParsePublicBase64 accepted invalid input")
	}
	if _, err := ParsePublicBase64("AAAA"); err == nil {
		t.Fatal("ParsePublicBase64 accepted non-key DER")
	}
}

func TestKeyPairPEMRoundTrip(t *testing.T) {
	pemBytes, err := testKeys.a.MarshalPEM()
	if err != nil {
		t.Fatalf("MarshalPEM: %v", err)
	}
	back, err := ParseKeyPairPEM(pemBytes)
	if err != nil {
		t.Fatalf("ParseKeyPairPEM: %v", err)
	}
	if !back.Public().Equal(testKeys.a.Public()) {
		t.Fatal("PEM round trip key mismatch")
	}
	if _, err := ParseKeyPairPEM([]byte("garbage")); err == nil {
		t.Fatal("ParseKeyPairPEM accepted garbage")
	}
}

func TestCBIDDeterministic(t *testing.T) {
	id1, err := CBID(testKeys.a.Public())
	if err != nil {
		t.Fatalf("CBID: %v", err)
	}
	id2, err := CBID(testKeys.a.Public())
	if err != nil {
		t.Fatalf("CBID: %v", err)
	}
	if id1 != id2 {
		t.Fatalf("CBID not deterministic: %q vs %q", id1, id2)
	}
	if !IsCBID(id1) {
		t.Fatalf("IsCBID(%q) = false", id1)
	}
}

func TestVerifyCBID(t *testing.T) {
	id, err := CBID(testKeys.a.Public())
	if err != nil {
		t.Fatalf("CBID: %v", err)
	}
	if err := VerifyCBID(id, testKeys.a.Public()); err != nil {
		t.Fatalf("VerifyCBID(own key): %v", err)
	}
	if err := VerifyCBID(id, testKeys.b.Public()); err == nil {
		t.Fatal("VerifyCBID accepted wrong key")
	}
	if err := VerifyCBID(LegacyPeerID("alice"), testKeys.a.Public()); err == nil {
		t.Fatal("VerifyCBID accepted legacy (non-CBID) identifier")
	}
}

func TestLegacyPeerIDStable(t *testing.T) {
	if LegacyPeerID("alice") != LegacyPeerID("alice") {
		t.Fatal("LegacyPeerID not deterministic")
	}
	if LegacyPeerID("alice") == LegacyPeerID("bob") {
		t.Fatal("LegacyPeerID collision for distinct names")
	}
	if IsCBID(LegacyPeerID("alice")) {
		t.Fatal("legacy ID must not be a CBID")
	}
}

// TestPBKDF2Vector checks RFC 6070-style test vectors adapted to
// HMAC-SHA256 (vectors from the PBKDF2-HMAC-SHA256 test suite widely
// used to validate implementations).
func TestPBKDF2Vector(t *testing.T) {
	got := PBKDF2([]byte("password"), []byte("salt"), 1, 32)
	want, _ := hex.DecodeString("120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b")
	if !bytes.Equal(got, want) {
		t.Fatalf("PBKDF2 iter=1 = %x, want %x", got, want)
	}
	got = PBKDF2([]byte("password"), []byte("salt"), 4096, 32)
	want, _ = hex.DecodeString("c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a")
	if !bytes.Equal(got, want) {
		t.Fatalf("PBKDF2 iter=4096 = %x, want %x", got, want)
	}
}

func TestPBKDF2KeyLengths(t *testing.T) {
	for _, n := range []int{1, 16, 31, 32, 33, 64, 100} {
		dk := PBKDF2([]byte("pw"), []byte("na"), 10, n)
		if len(dk) != n {
			t.Fatalf("PBKDF2 keyLen %d produced %d bytes", n, len(dk))
		}
	}
	// Prefix property: longer outputs extend shorter ones.
	short := PBKDF2([]byte("pw"), []byte("na"), 10, 16)
	long := PBKDF2([]byte("pw"), []byte("na"), 10, 48)
	if !bytes.Equal(short, long[:16]) {
		t.Fatal("PBKDF2 outputs are not prefix-consistent")
	}
}

func TestRandomBytes(t *testing.T) {
	a, err := RandomBytes(32)
	if err != nil {
		t.Fatalf("RandomBytes: %v", err)
	}
	b, err := RandomBytes(32)
	if err != nil {
		t.Fatalf("RandomBytes: %v", err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatal("wrong length")
	}
	if bytes.Equal(a, b) {
		t.Fatal("two random draws identical")
	}
}

func TestConstantTimeEqual(t *testing.T) {
	if !ConstantTimeEqual([]byte("abc"), []byte("abc")) {
		t.Fatal("equal strings reported unequal")
	}
	if ConstantTimeEqual([]byte("abc"), []byte("abd")) {
		t.Fatal("unequal strings reported equal")
	}
}

func TestPropertySignVerify(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	prop := func(msg []byte) bool {
		sig, err := testKeys.a.Sign(msg)
		if err != nil {
			return false
		}
		return testKeys.a.Public().Verify(msg, sig) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncryptDecrypt(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	prop := func(msg []byte) bool {
		env, err := testKeys.b.Public().Encrypt(msg)
		if err != nil {
			return false
		}
		got, err := testKeys.b.Decrypt(env)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnvelopeWire(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			mk := func() []byte {
				b := make([]byte, r.Intn(64))
				r.Read(b)
				return b
			}
			vals[0] = reflect.ValueOf(&Envelope{WrappedKey: mk(), Nonce: mk(), Ciphertext: mk()})
		},
	}
	prop := func(env *Envelope) bool {
		back, err := ParseEnvelope(env.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(back.WrappedKey, env.WrappedKey) &&
			bytes.Equal(back.Nonce, env.Nonce) &&
			bytes.Equal(back.Ciphertext, env.Ciphertext)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintMatchesSHA256(t *testing.T) {
	pub := testKeys.a.Public()
	der, err := pub.MarshalDER()
	if err != nil {
		t.Fatalf("MarshalDER: %v", err)
	}
	want := sha256.Sum256(der)
	got, err := pub.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if got != want {
		t.Fatal("fingerprint does not match SHA-256 of DER")
	}
}
