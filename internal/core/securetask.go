package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/taskexec"
)

// This file implements the paper's stated further work: extending the
// security building blocks to the executable set of primitives. The
// approach is exactly the one §6 prescribes — "any message exchange can
// be secured using an approach similar to that defined for messenger
// primitives": the task request and its response both travel inside the
// sign-then-encrypt envelope, with key distribution via signed pipe
// advertisements.

// Secure task errors.
var (
	ErrTaskRejected = errors.New("core: secure task rejected")
	ErrTaskGroup    = errors.New("core: caller does not share the task group")
)

// taskBodySep separates the task name from its packed arguments inside
// the envelope body.
const taskBodySep = "\x1e"

// EnableSecureTasks serves signed+encrypted task execution requests from
// group members, executing them against the registry. Plain (unsigned)
// task requests remain served — or not — by taskexec.Service; this
// handler only accepts authenticated ones.
func (s *SecureClient) EnableSecureTasks(reg *taskexec.Registry) {
	s.Endpoint().RegisterHandler(proto.SecureTaskService, func(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
		return s.handleSecureTask(from, msg, reg)
	})
}

func (s *SecureClient) handleSecureTask(_ keys.PeerID, msg *endpoint.Message, reg *taskexec.Registry) *endpoint.Message {
	wire, ok := msg.Get(proto.ElemEnvelope)
	if !ok {
		return proto.Fail(proto.ErrBadRequest)
	}
	opened, err := Open(s.kp, wire)
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	// Executable primitives demand source authentication: unsigned
	// envelopes are rejected outright.
	if !opened.Signed() {
		return proto.Fail(proto.ErrBadSignature)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	senderKey, senderCred, err := s.senderKey(ctx, opened.Sender, opened.Group)
	if err != nil {
		return proto.Fail(proto.ErrBadCredential)
	}
	if err := opened.VerifySignature(senderKey); err != nil {
		return proto.Fail(proto.ErrBadSignature)
	}
	// Authorization: the caller must share the group it claims.
	if !containsGroup(s.Groups(), opened.Group) {
		return proto.Fail("unauthorized")
	}
	_ = senderCred

	name, args, ok := splitTaskBody(string(opened.Body))
	if !ok {
		return proto.Fail(proto.ErrBadRequest)
	}
	out, err := reg.Run(name, args)
	if err != nil {
		return proto.Fail(err.Error())
	}
	// Seal the result back to the caller's certified key.
	sealed, err := Seal(s.kp, s.PeerID(), opened.Group, []byte(out), senderKey, ModeFull)
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	return proto.OK().Add(proto.ElemEnvelope, sealed.Bytes())
}

// SecureExecTask runs a task on a remote group member with both request
// and response protected by the secure envelope.
func (s *SecureClient) SecureExecTask(ctx context.Context, peer keys.PeerID, group, task string, args []string) (string, error) {
	recipientKey, _, err := s.verifiedPeerKey(ctx, peer, group)
	if err != nil {
		return "", err
	}
	body := task + taskBodySep + taskexec.PackArgs(args)
	// The request is sealed in the client's configured mode; the executor
	// enforces that executable requests arrive signed, so degraded modes
	// are rejected remotely rather than silently upgraded here.
	sealed, err := Seal(signerFor(s.kp, s.mode), s.PeerID(), group, []byte(body), recipientKey, s.mode)
	if err != nil {
		return "", err
	}
	msg := endpoint.NewMessage().Add(proto.ElemEnvelope, sealed.Bytes())
	resp, err := s.Endpoint().Request(ctx, peer, proto.SecureTaskService, msg)
	if err != nil {
		return "", err
	}
	if ok, errToken := proto.IsOK(resp); !ok {
		return "", fmt.Errorf("%w: %s", ErrTaskRejected, errToken)
	}
	wire, ok := resp.Get(proto.ElemEnvelope)
	if !ok {
		return "", ErrTaskRejected
	}
	opened, err := Open(s.kp, wire)
	if err != nil {
		return "", err
	}
	if err := opened.VerifySignature(recipientKey); err != nil {
		return "", fmt.Errorf("%w: response %v", ErrTaskRejected, err)
	}
	return string(opened.Body), nil
}

func splitTaskBody(body string) (name string, args []string, ok bool) {
	idx := strings.Index(body, taskBodySep)
	if idx < 0 {
		return "", nil, false
	}
	return body[:idx], taskexec.UnpackArgs(body[idx+1:]), true
}

// signerFor returns the signing key when the mode calls for one.
func signerFor(kp *keys.KeyPair, mode Mode) *keys.KeyPair {
	if mode == ModeEncrypt {
		return nil
	}
	return kp
}

func containsGroup(groups []string, g string) bool {
	for _, v := range groups {
		if v == g {
			return true
		}
	}
	return false
}
