// Package admission implements the broker's self-protection layer:
// per-credential token-bucket rate limiting with offender tracking.
//
// Every broker operation consumes one token from the bucket of the
// invoking credential. The key is the peer ID, which for secure logins
// IS the credential fingerprint: CBID binding (keys.VerifyCBID) ties
// the peer ID to the credentialed public key, so a client cannot dodge
// its bucket without minting a new identity — which costs it the whole
// secureConnection/secureLogin handshake, itself rate limited.
//
// What this bounds and what it does not: a limiter caps how much
// broker CPU, queue space and fan-out one authenticated identity can
// consume — resource exhaustion, the "merely enthusiastic workload" as
// much as the hostile one. It does NOT make identities expensive: an
// adversary who can register many users (or mint many CBIDs and pass
// login) gets a fresh bucket per identity. Sybil cost lives in the
// credential issuance policy, not here (see SECURITY.md, "Admission
// control").
package admission

import (
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Limiter.
type Config struct {
	// Rate is the sustained budget in operations per second per
	// credential (0 = 50).
	Rate float64
	// Burst is the bucket depth: how many operations a credential may
	// issue back-to-back after an idle period (0 = 2*Rate, min 8).
	// Login handshakes cost several operations in a burst, so keep
	// this comfortably above the per-join op count.
	Burst float64
	// OffenseThreshold is how many consecutive refusals escalate a
	// credential to a SecurityAlert (0 = 16). Alerts repeat every
	// threshold refusals, not on each one, so one flooding credential
	// cannot flood the audit stream too.
	OffenseThreshold int
	// MaxTracked bounds the bucket map (0 = 65536). When full, idle
	// buckets (refilled to capacity) are evicted first — forgetting an
	// idle credential is free, its next bucket starts full anyway.
	MaxTracked int
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// Decision reports the outcome of one admission check.
type Decision struct {
	// Allowed is whether the operation may proceed.
	Allowed bool
	// Alert is whether this refusal crossed the offense threshold and
	// should be surfaced as a SecurityAlert audit event.
	Alert bool
	// Offenses is the credential's current consecutive-refusal count.
	Offenses int
}

// Metrics is a snapshot of the limiter's counters.
type Metrics struct {
	// Allowed counts admitted operations.
	Allowed uint64
	// Limited counts refused operations.
	Limited uint64
	// Alerts counts threshold crossings (SecurityAlerts raised).
	Alerts uint64
	// Tracked is the number of credentials currently holding a bucket.
	Tracked int
}

type bucket struct {
	tokens   float64
	last     time.Time
	offenses int
}

// Limiter is a token-bucket admission controller. All methods are safe
// for concurrent use.
type Limiter struct {
	cfg Config

	mu      sync.Mutex
	buckets map[string]*bucket

	allowed atomic.Uint64
	limited atomic.Uint64
	alerts  atomic.Uint64
}

// New builds a limiter from cfg, applying defaults.
func New(cfg Config) *Limiter {
	if cfg.Rate <= 0 {
		cfg.Rate = 50
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate * 2
		if cfg.Burst < 8 {
			cfg.Burst = 8
		}
	}
	if cfg.OffenseThreshold <= 0 {
		cfg.OffenseThreshold = 16
	}
	if cfg.MaxTracked <= 0 {
		cfg.MaxTracked = 65536
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Limiter{cfg: cfg, buckets: make(map[string]*bucket)}
}

// RetryAfter reports how long an empty bucket takes to refill one
// token: the soonest a refused credential could be admitted again.
// The broker attaches it to rate-limited refusals as a backoff hint.
func (l *Limiter) RetryAfter() time.Duration {
	return time.Duration(float64(time.Second) / l.cfg.Rate)
}

// Allow spends one token from the credential's bucket. Refusals count
// as offenses; a success resets the offense streak (the credential
// backed off and recovered).
func (l *Limiter) Allow(key string) Decision {
	now := l.cfg.Clock()
	l.mu.Lock()
	b := l.fill(key, now)
	if b.tokens >= 1 {
		b.tokens--
		b.offenses = 0
		l.mu.Unlock()
		l.allowed.Add(1)
		return Decision{Allowed: true}
	}
	d := l.offendLocked(b)
	l.mu.Unlock()
	l.limited.Add(1)
	if d.Alert {
		l.alerts.Add(1)
	}
	return d
}

// Offense records a refusal that happened OUTSIDE the limiter — e.g.
// the relay refusing a round because the sender is over its queue
// quota — so quota abuse feeds the same offender escalation as rate
// abuse. It never consumes tokens.
func (l *Limiter) Offense(key string) Decision {
	now := l.cfg.Clock()
	l.mu.Lock()
	b := l.fill(key, now)
	d := l.offendLocked(b)
	l.mu.Unlock()
	if d.Alert {
		l.alerts.Add(1)
	}
	return d
}

// offendLocked bumps the offense streak and decides whether it crossed
// an alert threshold. Caller holds l.mu.
func (l *Limiter) offendLocked(b *bucket) Decision {
	b.offenses++
	alert := b.offenses%l.cfg.OffenseThreshold == 0
	return Decision{Allowed: false, Alert: alert, Offenses: b.offenses}
}

// fill refills (or creates) the credential's bucket up to now. Caller
// holds l.mu.
func (l *Limiter) fill(key string, now time.Time) *bucket {
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= l.cfg.MaxTracked {
			l.evictLocked(now)
		}
		b = &bucket{tokens: l.cfg.Burst, last: now}
		l.buckets[key] = b
		return b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * l.cfg.Rate
		if b.tokens > l.cfg.Burst {
			b.tokens = l.cfg.Burst
		}
	}
	b.last = now
	return b
}

// evictLocked makes room: drop buckets that have fully refilled (an
// idle credential's next bucket starts full, so forgetting it changes
// nothing), then, if every tracked credential is active, the stalest
// one. Caller holds l.mu.
func (l *Limiter) evictLocked(now time.Time) {
	var stalestKey string
	var stalest time.Time
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.cfg.Rate >= l.cfg.Burst && b.offenses == 0 {
			delete(l.buckets, k)
			continue
		}
		if stalestKey == "" || b.last.Before(stalest) {
			stalestKey, stalest = k, b.last
		}
	}
	if len(l.buckets) >= l.cfg.MaxTracked && stalestKey != "" {
		delete(l.buckets, stalestKey)
	}
}

// Metrics returns a snapshot of the counters.
func (l *Limiter) Metrics() Metrics {
	l.mu.Lock()
	tracked := len(l.buckets)
	l.mu.Unlock()
	return Metrics{
		Allowed: l.allowed.Load(),
		Limited: l.limited.Load(),
		Alerts:  l.alerts.Load(),
		Tracked: tracked,
	}
}
