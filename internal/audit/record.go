package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Wire layout of one record:
//
//	uint32 LE  body length
//	uint32 LE  CRC-32C (Castagnoli) of body
//	body:
//	  [0]      version (1)
//	  [1]      frame (FrameEvent | FrameCheckpoint)
//	  [2:10]   uint64 LE sequence number (1-based, strictly consecutive)
//	  [10:42]  SHA-256 of the predecessor's full framed bytes
//	           (all zero for the journal's first record)
//	  [42:50]  int64 LE wall time, unix nanoseconds
//	  FrameEvent:
//	    [50:58]  uint64 LE trace ID (0 = untraced)
//	    uint16 LE len + bytes: Kind
//	    uint16 LE len + bytes: Peer
//	    uint16 LE len + bytes: Op
//	    uint16 LE len + bytes: Reason
//	  FrameCheckpoint:
//	    uint32 LE len + bytes: canonical <AuditCheckpoint> XML, signed
//
// Every field is fixed-width or explicitly length-prefixed and the
// decoder rejects records whose fields do not consume the body exactly,
// so decoding is a bijection on accepted inputs: any record the decoder
// admits re-encodes to the identical bytes (FuzzAuditDecode pins this).
//
// The CRC is an integrity check against accidental damage only; the
// tamper evidence is the prev-hash chain plus the signed checkpoints —
// an adversary can recompute a CRC, but cannot forge the SHA-256 link
// carried by the NEXT record, nor the RSA signature sealing the chain
// head (see SECURITY.md, "Audit trust model").

// Frame discriminates record types.
type Frame byte

// Frame kinds.
const (
	// FrameEvent is one security event (kind/peer/op/reason/trace).
	FrameEvent Frame = 1
	// FrameCheckpoint seals the chain: its payload is a broker-signed
	// canonical XML attestation of the chain head at this position.
	FrameCheckpoint Frame = 2
)

const (
	recordVersion = 1
	headerSize    = 8 // length + CRC

	// HashSize is the width of the prev-hash chain link (SHA-256).
	HashSize = 32

	// fixedBody is the length of the fields every body starts with:
	// version, frame, seq, prev-hash, timestamp.
	fixedBody = 2 + 8 + HashSize + 8

	// maxFieldLen bounds the kind/peer/op/reason strings.
	maxFieldLen = 1 << 12

	// MaxCheckpointBytes bounds one checkpoint payload so a corrupt
	// length field cannot drive a giant allocation during verification.
	// A checkpoint is a small XML document plus a credential chain — a
	// few KB; 1 MiB leaves room for deep chains.
	MaxCheckpointBytes = 1 << 20
)

// Codec errors.
var (
	// ErrShortRecord: the buffer ends before the record does — the torn
	// tail a crash mid-append leaves behind.
	ErrShortRecord = errors.New("audit: truncated record")
	// ErrCorruptRecord: framing decoded but the contents are invalid —
	// CRC mismatch, bad version/frame, or fields that do not tile the
	// body exactly.
	ErrCorruptRecord = errors.New("audit: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one journal entry.
type Record struct {
	Seq   uint64
	Frame Frame
	// Prev is the SHA-256 of the preceding record's framed bytes
	// (header included); zero for the first record.
	Prev [HashSize]byte
	// Time is the wall time the record was appended, unix nanoseconds.
	Time int64

	// FrameEvent fields.
	Trace  uint64
	Kind   string
	Peer   string
	Op     string
	Reason string

	// FrameCheckpoint field: the signed canonical XML attestation.
	Checkpoint []byte
}

// AppendRecord encodes rec onto dst and returns the extended slice.
func AppendRecord(dst []byte, rec Record) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header backfilled below
	bodyStart := len(dst)
	dst = append(dst, recordVersion, byte(rec.Frame))
	dst = binary.LittleEndian.AppendUint64(dst, rec.Seq)
	dst = append(dst, rec.Prev[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Time))
	switch rec.Frame {
	case FrameEvent:
		if len(rec.Kind) > maxFieldLen || len(rec.Peer) > maxFieldLen ||
			len(rec.Op) > maxFieldLen || len(rec.Reason) > maxFieldLen {
			return dst[:start], fmt.Errorf("%w: oversized field", ErrCorruptRecord)
		}
		dst = binary.LittleEndian.AppendUint64(dst, rec.Trace)
		for _, s := range [...]string{rec.Kind, rec.Peer, rec.Op, rec.Reason} {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
			dst = append(dst, s...)
		}
	case FrameCheckpoint:
		if len(rec.Checkpoint) > MaxCheckpointBytes {
			return dst[:start], fmt.Errorf("%w: oversized checkpoint", ErrCorruptRecord)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Checkpoint)))
		dst = append(dst, rec.Checkpoint...)
	default:
		return dst[:start], fmt.Errorf("%w: bad frame %d", ErrCorruptRecord, rec.Frame)
	}
	body := dst[bodyStart:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, crcTable))
	return dst, nil
}

// DecodeRecord decodes one record from the front of b, returning the
// record and the number of bytes it occupied. ErrShortRecord means b
// ends mid-record (a torn tail); ErrCorruptRecord means the bytes are
// framed but invalid (CRC mismatch included). The returned record's
// Checkpoint aliases b.
func DecodeRecord(b []byte) (Record, int, error) {
	var rec Record
	if len(b) < headerSize {
		return rec, 0, ErrShortRecord
	}
	bodyLen := binary.LittleEndian.Uint32(b)
	if bodyLen < fixedBody || bodyLen > MaxCheckpointBytes+64 {
		return rec, 0, fmt.Errorf("%w: implausible body length %d", ErrCorruptRecord, bodyLen)
	}
	if uint32(len(b)-headerSize) < bodyLen {
		return rec, 0, ErrShortRecord
	}
	body := b[headerSize : headerSize+int(bodyLen)]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return rec, 0, fmt.Errorf("%w: CRC mismatch", ErrCorruptRecord)
	}
	if body[0] != recordVersion {
		return rec, 0, fmt.Errorf("%w: version %d", ErrCorruptRecord, body[0])
	}
	rec.Frame = Frame(body[1])
	rec.Seq = binary.LittleEndian.Uint64(body[2:])
	copy(rec.Prev[:], body[10:])
	rec.Time = int64(binary.LittleEndian.Uint64(body[42:]))
	rest := body[fixedBody:]
	switch rec.Frame {
	case FrameEvent:
		if len(rest) < 8 {
			return rec, 0, fmt.Errorf("%w: short event body", ErrCorruptRecord)
		}
		rec.Trace = binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		var field []byte
		var err error
		for _, dst := range [...]*string{&rec.Kind, &rec.Peer, &rec.Op, &rec.Reason} {
			if field, rest, err = take16(rest); err != nil {
				return rec, 0, err
			}
			*dst = string(field)
		}
		if len(rest) != 0 {
			// Trailing garbage: accepting it would break encode∘decode
			// identity AND let an adversary smuggle unhashed bytes.
			return rec, 0, fmt.Errorf("%w: event fields do not tile body", ErrCorruptRecord)
		}
	case FrameCheckpoint:
		if len(rest) < 4 {
			return rec, 0, fmt.Errorf("%w: short checkpoint length", ErrCorruptRecord)
		}
		plen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) != plen {
			return rec, 0, fmt.Errorf("%w: checkpoint does not tile body", ErrCorruptRecord)
		}
		rec.Checkpoint = rest
	default:
		return rec, 0, fmt.Errorf("%w: bad frame %d", ErrCorruptRecord, body[1])
	}
	return rec, headerSize + int(bodyLen), nil
}

func take16(b []byte) (field, rest []byte, err error) {
	if len(b) < 2 {
		return nil, b, fmt.Errorf("%w: short field length", ErrCorruptRecord)
	}
	n := int(binary.LittleEndian.Uint16(b))
	if n > maxFieldLen {
		return nil, b, fmt.Errorf("%w: oversized field", ErrCorruptRecord)
	}
	b = b[2:]
	if len(b) < n {
		return nil, b, fmt.Errorf("%w: field overruns body", ErrCorruptRecord)
	}
	return b[:n], b[n:], nil
}
