package xmldoc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// signedAdvBytes builds the canonical bytes of a signed-advertisement
// shaped document — the document the receive paths parse most often.
func signedAdvBytes() []byte {
	doc := NewTree("PipeAdvertisement",
		New("Id", "urn:jxta:pipe-0123456789abcdef0123456789abcdef"),
		New("Type", "JxtaUnicast"),
		New("Name", "chat/alice"),
		New("PeerID", "urn:jxta:cbid-0123456789abcdef0123456789abcdef"),
		New("Group", "students"),
	)
	si := NewTree("SignedInfo",
		New("CanonicalizationMethod", "jxta-overlay-c14n-v1"),
		New("SignatureMethod", "rsa-sha256-pkcs1v15"),
		New("DigestMethod", "sha256"),
		New("DigestValue", "3q2+7wAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA="),
	)
	cr := NewTree("Credential",
		New("Subject", "urn:jxta:cbid-0123456789abcdef"),
		New("SubjectName", "alice"),
		New("Role", "client"),
		New("Key", "TUlHZk1BMEdDU3FHU0liM0RRRUJBUVVBQTRHTkFEQ0JpUUtCZ1FERGV4YW1wbGU="),
	)
	sig := NewTree("Signature", si,
		New("SignatureValue", "c2lnbmF0dXJlLXZhbHVlLWJlbmNobWFyay1wYWRkaW5n"),
		NewTree("KeyInfo", cr),
	)
	doc.Add(sig)
	return append([]byte(nil), doc.Canonical()...)
}

// mustParseCanonical fails the test on rejection.
func mustParseCanonical(t *testing.T, data []byte) *Element {
	t.Helper()
	e, err := ParseCanonical(data)
	if err != nil {
		t.Fatalf("ParseCanonical(%q): %v", data, err)
	}
	return e
}

// checkDifferential asserts the two-parser contract on one input:
// if the fast path accepts, the reference parser must accept and
// produce a structurally identical tree with identical canonical and
// canonical-skip bytes. Returns whether the fast path accepted.
func checkDifferential(t *testing.T, data []byte) bool {
	t.Helper()
	fast, errFast := ParseCanonical(append([]byte(nil), data...))
	ref, errRef := ParseBytes(data)
	if errFast != nil {
		// Narrower grammar: rejecting what the reference accepts is
		// fine; accepting what it rejects is not (checked below).
		if errRef == nil && ref != nil && treeInSubset(ref, 0) && bytes.Equal(data, ref.Canonical()) {
			t.Fatalf("ParseCanonical rejected canonical input %q: %v", data, errFast)
		}
		return false
	}
	if errRef != nil {
		t.Fatalf("ParseCanonical accepted %q but reference rejected: %v", data, errRef)
	}
	if !fast.Equal(ref) {
		t.Fatalf("tree mismatch on %q:\n fast: %s\n  ref: %s", data, fast.Indented(), ref.Indented())
	}
	if got, want := fast.Canonical(), ref.Canonical(); !bytes.Equal(got, want) {
		t.Fatalf("canonical mismatch on %q:\n fast: %q\n  ref: %q", data, got, want)
	}
	if got, want := fast.CanonicalSkip("Signature"), ref.CanonicalSkip("Signature"); !bytes.Equal(got, want) {
		t.Fatalf("canonical-skip mismatch on %q:\n fast: %q\n  ref: %q", data, got, want)
	}
	return true
}

// treeInSubset reports whether a reference-parsed tree stays within the
// canonical subset's vocabulary limits (ASCII names, unique attributes,
// bounded depth) — the precondition for "its canonical bytes must be
// accepted by ParseCanonical".
func treeInSubset(e *Element, depth int) bool {
	if depth >= maxCanonicalDepth {
		return false
	}
	if !nameInSubset(e.Name) {
		return false
	}
	for i, a := range e.Attrs {
		if !nameInSubset(a.Name) {
			return false
		}
		for _, b := range e.Attrs[:i] {
			if a.Name == b.Name {
				return false
			}
		}
	}
	for _, c := range e.Children {
		if !treeInSubset(c, depth+1) {
			return false
		}
	}
	return true
}

func nameInSubset(n string) bool {
	if n == "" || !isNameStart(n[0]) || n == "xmlns" {
		return false
	}
	for i := 1; i < len(n); i++ {
		if !isNameByte(n[i]) {
			return false
		}
	}
	return true
}

func TestParseCanonicalSignedAdvertisement(t *testing.T) {
	raw := signedAdvBytes()
	doc := mustParseCanonical(t, raw)
	ref, err := ParseBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Equal(ref) {
		t.Fatalf("tree mismatch:\n fast: %s\n  ref: %s", doc.Indented(), ref.Indented())
	}
	if doc.ChildText("Name") != "chat/alice" || doc.Child("Signature") == nil {
		t.Fatalf("parsed tree lost content: %s", doc.Indented())
	}
}

func TestParseCanonicalSeedsMemo(t *testing.T) {
	raw := signedAdvBytes()
	doc := mustParseCanonical(t, raw)
	got := doc.Canonical()
	if !bytes.Equal(got, raw) {
		t.Fatalf("Canonical() after canonical parse = %q, want input %q", got, raw)
	}
	// The memo must be the input subslice, not a re-serialization.
	if &got[0] != &raw[0] {
		t.Fatal("Canonical() re-serialized instead of returning the seeded input bytes")
	}
	// Children are seeded independently (the CanonicalSkip fast path):
	// the child's canonical bytes must ALIAS the input segment, not just
	// equal it — pointer identity with the matching subslice proves the
	// memo was seeded rather than re-serialized.
	sig := doc.Child("Signature")
	sc := sig.Canonical()
	idx := bytes.Index(raw, sc)
	if idx < 0 || &sc[0] != &raw[idx] {
		t.Fatal("child memo not seeded from the input subslice")
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = sig.Canonical() }); allocs != 0 {
		t.Fatalf("child memo read allocates %v times", allocs)
	}
	// Seeded memos make the memo read allocation-free.
	if allocs := testing.AllocsPerRun(100, func() { _ = doc.Canonical() }); allocs != 0 {
		t.Fatalf("Canonical() on seeded tree allocates %v times", allocs)
	}
}

func TestParseCanonicalMemoSeedZeroAllocs(t *testing.T) {
	// The acceptance bar: parse of already-canonical input followed by
	// Canonical() performs zero allocations for the canonical read and
	// returns bytes equal to the input.
	raw := signedAdvBytes()
	doc := mustParseCanonical(t, raw)
	var out []byte
	if allocs := testing.AllocsPerRun(100, func() { out = doc.Canonical() }); allocs != 0 {
		t.Fatalf("memo read allocates %v times, want 0", allocs)
	}
	if !bytes.Equal(out, raw) {
		t.Fatal("memo read returned different bytes than the canonical input")
	}
}

func TestParseCanonicalMutationInvalidatesSeed(t *testing.T) {
	raw := signedAdvBytes()
	doc := mustParseCanonical(t, raw)
	_ = doc.Canonical() // memo seeded from input
	doc.Child("Name").SetText("mallory")
	got := doc.Canonical()
	if bytes.Equal(got, raw) {
		t.Fatal("mutation did not invalidate the seeded memo — stale signing input")
	}
	checkAgainstRef(t, doc, "after mutating seeded tree")
	if !bytes.Contains(got, []byte("mallory")) {
		t.Fatal("mutated text missing from canonical bytes")
	}
	// Mutating a deep child invalidates every seeded ancestor too.
	doc2 := mustParseCanonical(t, signedAdvBytes())
	_ = doc2.Canonical()
	doc2.Child("Signature").Child("SignedInfo").Child("DigestValue").SetText("forged")
	checkAgainstRef(t, doc2, "after deep mutation of seeded tree")
	if !bytes.Contains(doc2.Canonical(), []byte("forged")) {
		t.Fatal("deep mutation not reflected in canonical bytes")
	}
}

func TestParseCanonicalNonCanonicalInputs(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"pretty-printed", "<A>\n  <B>x</B>\n  <C>y</C>\n</A>"},
		{"self-closing", "<A><B/></A>"},
		{"unsorted-attrs", `<A z="1" a="2"></A>`},
		{"tag-spacing", "<A  k = \"v\" ></A >"},
		{"noncanon-escape-text", "<A>&quot;q&quot;</A>"},
		{"noncanon-escape-attr", `<A k="&gt;"></A>`},
		{"trimmed-container-text", "<A>  x  <B></B></A>"},
		{"text-after-child", "<A><B></B>tail</A>"},
		{"ws-around-root", "  \n<A>x</A>\n  "},
		{"interleaved-text", "<A>x<B></B>y</A>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := []byte(tc.in)
			if !checkDifferential(t, data) {
				t.Fatalf("ParseCanonical rejected acceptable non-canonical input %q", tc.in)
			}
			// Non-canonical input must NOT seed a verbatim root memo:
			// Canonical() must return proper canonical bytes, not the
			// input.
			doc := mustParseCanonical(t, data)
			checkAgainstRef(t, doc, tc.name)
		})
	}
}

func TestParseCanonicalRejects(t *testing.T) {
	deep := strings.Repeat("<A>", 100) + strings.Repeat("</A>", 100)
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"whitespace-only", "  \n\t"},
		{"xml-decl", `<?xml version="1.0"?><A></A>`},
		{"doctype", `<!DOCTYPE lolz [<!ENTITY lol "lol">]><A>&lol;</A>`},
		{"comment", "<A><!-- hidden --></A>"},
		{"cdata", "<A><![CDATA[x]]></A>"},
		{"pi", "<A><?php evil ?></A>"},
		{"unknown-entity", "<A>&nbsp;</A>"},
		{"apos-entity", "<A>&apos;</A>"},
		{"decimal-charref", "<A>&#65;</A>"},
		{"hex-charref-other", "<A>&#x41;</A>"},
		{"lone-amp", "<A>a & b</A>"},
		{"unterminated-entity", "<A>&amp</A>"},
		{"raw-gt-in-text", "<A>a>b</A>"},
		{"cdata-end-in-text", "<A>]]></A>"},
		{"raw-cr-text", "<A>a\rb</A>"},
		{"raw-cr-attr", "<A k=\"a\rb\"></A>"},
		{"control-byte", "<A>\x01</A>"},
		{"nul-byte", "<A>\x00</A>"},
		{"bad-utf8-text", "<A>a\xffb</A>"},
		{"bad-utf8-attr", "<A k=\"\xfe\"></A>"},
		{"lit-u+ffff", "<A>\uffff</A>"},
		{"namespace-name", "<n:A></n:A>"},
		{"xmlns-attr", `<A xmlns="urn:x"></A>`},
		{"dup-attr", `<A k="1" k="2"></A>`},
		{"single-quoted-attr", "<A k='v'></A>"},
		{"unbalanced", "<A><B></A>"},
		{"truncated", "<A><B>"},
		{"truncated-tag", "<A"},
		{"two-roots", "<A></A><B></B>"},
		{"junk-before-root", "junk<A></A>"},
		{"junk-after-root", "<A></A>junk"},
		{"bom", "\xef\xbb\xbf<A></A>"},
		{"garbage", "not xml at all <"},
		{"too-deep", deep},
		{"raw-lt-in-attr", `<A k="<"></A>`},
		{"digit-name", "<1A></1A>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseCanonical([]byte(tc.in)); err == nil {
				t.Fatalf("ParseCanonical(%q) accepted, want rejection", tc.in)
			}
		})
	}
}

// TestParseCanonicalPropertyRoundTrip: any random tree's canonical
// bytes parse back to an equal tree with every memo seeded.
func TestParseCanonicalPropertyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		tree := randomTree(r, 3)
		raw := append([]byte(nil), tree.Canonical()...)
		doc, err := ParseCanonical(raw)
		if err != nil {
			t.Fatalf("canonical bytes rejected: %v\ninput: %q", err, raw)
		}
		if !doc.Equal(tree) {
			t.Fatalf("round-trip mismatch:\n  in: %q\n out: %q", tree.Canonical(), doc.Canonical())
		}
		got := doc.Canonical()
		if !bytes.Equal(got, raw) || &got[0] != &raw[0] {
			t.Fatalf("root memo not seeded from canonical input %q", raw)
		}
	}
}

// TestParseCanonicalPropertyDifferential drives random mutations of
// canonical documents through both parsers and checks the subset
// contract each time.
func TestParseCanonicalPropertyDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	accepted := 0
	for i := 0; i < 500; i++ {
		tree := randomTree(r, 3)
		raw := append([]byte(nil), tree.Canonical()...)
		// Corrupt 0–3 positions with random bytes (sometimes printable,
		// sometimes hostile), or splice in random snippets.
		for m := 0; m < r.Intn(4); m++ {
			if len(raw) == 0 {
				break
			}
			switch r.Intn(3) {
			case 0:
				raw[r.Intn(len(raw))] = byte(r.Intn(256))
			case 1:
				raw[r.Intn(len(raw))] = "<>&\"= /'"[r.Intn(8)]
			case 2:
				at := r.Intn(len(raw))
				snip := []string{" ", "<!--x-->", "&amp;", "<B></B>", "</", "\r"}[r.Intn(6)]
				raw = append(raw[:at], append([]byte(snip), raw[at:]...)...)
			}
		}
		if checkDifferential(t, raw) {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("differential property never exercised an accepted input")
	}
}

// TestParseCanonicalAllocBudget pins the ≥3× allocation win over the
// encoding/xml path on the hot document shape. Allocation counts are
// deterministic, so this is a stable functional assertion, unlike a
// time-based ratio.
func TestParseCanonicalAllocBudget(t *testing.T) {
	raw := signedAdvBytes()
	fast := testing.AllocsPerRun(50, func() {
		if _, err := ParseCanonical(raw); err != nil {
			t.Fatal(err)
		}
	})
	ref := testing.AllocsPerRun(50, func() {
		if _, err := ParseBytes(raw); err != nil {
			t.Fatal(err)
		}
	})
	if fast*3 > ref {
		t.Fatalf("ParseCanonical allocs = %.0f, reference = %.0f; want ≥3× fewer", fast, ref)
	}
}

// FuzzParseCanonical is the differential fuzzer: on every input, if the
// fast path accepts, the reference parser must accept with an identical
// tree (same structure, same canonical bytes, same detached-signature
// serialization); if the fast path rejects but the input was bytes the
// canonical serializer itself produced, that is a false rejection. It
// must never panic on any input.
func FuzzParseCanonical(f *testing.F) {
	f.Add(signedAdvBytes())
	f.Add([]byte("<SecureMessage><Sender>urn:jxta:cbid-1</Sender><Group>g</Group><BodyDigest>AA==</BodyDigest><Time>2026-01-01T00:00:00Z</Time><Signature>c2ln</Signature></SecureMessage>"))
	f.Add([]byte(`<A k="v" z="&quot;x&#x9;"></A>`))
	f.Add([]byte("<A>&amp;&lt;&gt;&#xD;</A>"))
	f.Add([]byte("<A>\n  <B>x</B>\n</A>"))
	f.Add([]byte("<A><B/></A>"))
	f.Add([]byte(`<?xml version="1.0"?><A></A>`))
	f.Add([]byte(`<!DOCTYPE lolz [<!ENTITY a "bb">]><A>&a;</A>`))
	f.Add([]byte("<A><!--c--></A>"))
	f.Add([]byte("<A>]]></A>"))
	f.Add([]byte("<A>\xff</A>"))
	f.Add([]byte(strings.Repeat("<A>", 80) + strings.Repeat("</A>", 80)))
	f.Add([]byte("<Credential><Subject>s</Subject><Key>a2V5</Key></Credential>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fast, errFast := ParseCanonical(append([]byte(nil), data...))
		ref, errRef := ParseBytes(data)
		if errFast != nil {
			if errRef == nil && ref != nil && treeInSubset(ref, 0) && bytes.Equal(data, ref.Canonical()) {
				t.Fatalf("canonical input rejected: %v\ninput: %q", errFast, data)
			}
			return
		}
		if errRef != nil {
			t.Fatalf("fast path accepted input the reference rejects (%v): %q", errRef, data)
		}
		if !fast.Equal(ref) {
			t.Fatalf("tree mismatch on %q", data)
		}
		if !bytes.Equal(fast.Canonical(), ref.Canonical()) {
			t.Fatalf("canonical mismatch on %q", data)
		}
		if !bytes.Equal(fast.CanonicalSkip("Signature"), ref.CanonicalSkip("Signature")) {
			t.Fatalf("canonical-skip mismatch on %q", data)
		}
	})
}
