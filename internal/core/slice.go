package core

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// Per-recipient round slicing. The full ModeGroup wire carries every
// recipient's key wrap, so fanning the same bytes out to N members costs
// O(N²) wire bytes across a round. Slicing fixes that: the sender seals
// the round ONCE (SealGroupDetached), hands the full wire to a relay
// (the broker), and the relay re-cuts it into per-recipient ModeSlice
// wires — each carrying only that recipient's RSA-OAEP wrap, the shared
// ciphertext, and an O(log N) inclusion proof. The relay never sees
// plaintext or keys: the header (and the signature over it) stays inside
// the ciphertext, and slicing is pure byte surgery.
//
// Binding. A slice omits the other recipients' wraps, so the recipient
// can no longer recompute the signed Recipients digest the full-wire
// OpenGroup checks. Instead the signed header carries a second binding,
// SliceRoot: the root of a Merkle tree whose leaf i commits to
// (i, fingerprint_i, SHA-256(wrap_i)). Each slice carries its leaf index
// and sibling path, so the recipient recomputes the root from its OWN
// materials alone and compares against the signed value. A relay (or a
// malicious round member) that re-targets a slice to a non-recipient,
// swaps wraps between recipients, or reorders leaves produces a root
// that does not match the signature — ErrRoundBinding — before the
// header signature can vouch for anything. Replayed slices die on the
// signed single-use round nonce, exactly like full-wire rounds.
//
// Slice wire layout (mode byte ModeSlice, then):
//
//	u32 recipient count | u32 leaf index
//	32-byte recipient key fingerprint
//	u32 wrap length | RSA-OAEP wrapped CEK
//	u8 proof length | proof hashes (32 bytes each, leaf upward)
//	u32 nonce length | AES-GCM nonce
//	AES-GCM ciphertext of ( u32 header length | header XML | raw body )

// sliceRootName is the signed header element carrying the Merkle root.
const sliceRootName = "SliceRoot"

// maxSliceProofLen bounds the inclusion proof parsed from the wire:
// ceil(log2(maxRoundRecipients)) = 12, with headroom.
const maxSliceProofLen = 16

// sliceLeaf commits one recipient position to the tree: the index (so
// leaves cannot be reordered), the key fingerprint (who) and the wrap
// digest (which key material).
func sliceLeaf(index uint32, fp [32]byte, wrap []byte) []byte {
	buf := make([]byte, 0, 1+4+32+32)
	buf = append(buf, 0x00)
	buf = binary.BigEndian.AppendUint32(buf, index)
	buf = append(buf, fp[:]...)
	buf = append(buf, keys.SHA256(wrap)...)
	return keys.SHA256(buf)
}

// sliceParent combines two tree nodes. The domain-separation prefixes
// (0x00 leaf, 0x01 interior) stop a leaf from being replayed as an
// interior node and vice versa.
func sliceParent(left, right []byte) []byte {
	buf := make([]byte, 0, 1+64)
	buf = append(buf, 0x01)
	buf = append(buf, left...)
	buf = append(buf, right...)
	return keys.SHA256(buf)
}

// sliceLevels builds the whole tree bottom-up; levels[0] are the leaves,
// the last level is the single root. An unpaired last node is promoted
// unchanged (never duplicated, so no two recipient sets share a root).
func sliceLevels(fps [][32]byte, wraps [][]byte) [][][]byte {
	level := make([][]byte, len(fps))
	for i := range fps {
		level[i] = sliceLeaf(uint32(i), fps[i], wraps[i])
	}
	levels := [][][]byte{level}
	for len(level) > 1 {
		next := make([][]byte, 0, (len(level)+1)/2)
		for j := 0; j+1 < len(level); j += 2 {
			next = append(next, sliceParent(level[j], level[j+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		levels = append(levels, next)
		level = next
	}
	return levels
}

// sliceProof extracts the sibling path for leaf i.
func sliceProof(levels [][][]byte, i int) [][]byte {
	var proof [][]byte
	for l := 0; l < len(levels)-1; l++ {
		j := (i >> l) ^ 1
		if j < len(levels[l]) {
			proof = append(proof, levels[l][j])
		}
	}
	return proof
}

// verifySliceProof recomputes the root from one leaf and its sibling
// path. It returns false when the proof shape does not match the
// declared recipient count — a truncated or padded proof never reaches
// the root comparison.
func verifySliceProof(n int, index uint32, fp [32]byte, wrap []byte, proof [][]byte) ([]byte, bool) {
	node := sliceLeaf(index, fp, wrap)
	width, j, p := n, int(index), 0
	for width > 1 {
		if sib := j ^ 1; sib < width {
			if p >= len(proof) {
				return nil, false
			}
			if j&1 == 0 {
				node = sliceParent(node, proof[p])
			} else {
				node = sliceParent(proof[p], node)
			}
			p++
		}
		j >>= 1
		width = (width + 1) / 2
	}
	if p != len(proof) {
		return nil, false
	}
	return node, true
}

// DetachedRound is one sealed fan-out round held in sliceable form: the
// shared ciphertext plus the per-recipient wraps, before assembly into
// either the full ModeGroup wire or per-recipient ModeSlice wires.
type DetachedRound struct {
	fps      [][32]byte
	wraps    [][]byte
	gcmNonce []byte
	ct       []byte
	levels   [][][]byte // Merkle tree, built lazily on first Slice/Slices
}

// SealGroupDetached seals one fan-out round exactly as SealGroup does —
// one header signature, one content encryption, one wrap per recipient —
// but returns the round in detached form so the caller can choose the
// assembly: Wire for the classic every-recipient-gets-everything bytes,
// Slices for relay-side per-recipient delivery.
func SealGroupDetached(signer *keys.KeyPair, sender keys.PeerID, group string, body []byte, recipients []*keys.PublicKey) (*DetachedRound, error) {
	if signer == nil {
		return nil, errors.New("core: group round requires a signing key")
	}
	if len(recipients) == 0 {
		return nil, errors.New("core: group round requires at least one recipient")
	}
	if len(recipients) > maxRoundRecipients {
		return nil, fmt.Errorf("core: group round exceeds %d recipients", maxRoundRecipients)
	}
	fps := make([][32]byte, len(recipients))
	for i, r := range recipients {
		fp, err := r.Fingerprint()
		if err != nil {
			return nil, err
		}
		fps[i] = fp
	}
	nonce, err := keys.RandomBytes(roundNonceSize)
	if err != nil {
		return nil, err
	}

	// The content key and wraps come first: the signed header commits to
	// them through the slice tree root.
	cek, err := keys.NewContentKey()
	if err != nil {
		return nil, err
	}
	wraps := make([][]byte, len(recipients))
	for i, r := range recipients {
		w, err := r.WrapKey(cek)
		if err != nil {
			return nil, err
		}
		wraps[i] = w
	}
	levels := sliceLevels(fps, wraps)
	root := levels[len(levels)-1][0]

	// The round header: one timestamp + nonce + group + body digest +
	// both recipient bindings (flat digest for full wires, tree root for
	// slices), signed once.
	header := xmldoc.New(roundHeaderName, "")
	header.AddText("Sender", string(sender))
	header.AddText("Group", group)
	header.AddText("BodyDigest", base64.StdEncoding.EncodeToString(keys.SHA256(body)))
	header.AddText("Time", nowUTCRFC3339())
	header.AddText("Nonce", base64.StdEncoding.EncodeToString(nonce))
	header.AddText("Recipients", base64.StdEncoding.EncodeToString(recipientsDigest(fps)))
	header.AddText(sliceRootName, base64.StdEncoding.EncodeToString(root))
	sig, err := signer.Sign(header.Canonical())
	if err != nil {
		return nil, err
	}
	header.AddText("Signature", base64.StdEncoding.EncodeToString(sig))

	gcmNonce, ct, err := keys.AEADSeal(cek, packBlock(header, body))
	if err != nil {
		return nil, err
	}
	return &DetachedRound{fps: fps, wraps: wraps, gcmNonce: gcmNonce, ct: ct, levels: levels}, nil
}

// Recipients reports how many recipients the round addresses.
func (d *DetachedRound) Recipients() int { return len(d.fps) }

// Wire assembles the full ModeGroup wire (identical bytes for every
// recipient) — the layout documented in round.go.
func (d *DetachedRound) Wire() []byte {
	wireLen := 1 + 4 + 4 + len(d.gcmNonce) + len(d.ct)
	for _, w := range d.wraps {
		wireLen += 32 + 4 + len(w)
	}
	wire := make([]byte, 0, wireLen)
	wire = append(wire, byte(ModeGroup))
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(d.wraps)))
	for i := range d.wraps {
		wire = append(wire, d.fps[i][:]...)
		wire = binary.BigEndian.AppendUint32(wire, uint32(len(d.wraps[i])))
		wire = append(wire, d.wraps[i]...)
	}
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(d.gcmNonce)))
	wire = append(wire, d.gcmNonce...)
	wire = append(wire, d.ct...)
	return wire
}

// Slices cuts the round into one ModeSlice wire per recipient, in
// recipient order. Slicing is deterministic byte surgery over public
// material — no keys, no plaintext — which is what lets an untrusted
// relay perform it.
func (d *DetachedRound) Slices() [][]byte {
	out := make([][]byte, len(d.fps))
	for i := range d.fps {
		out[i] = d.Slice(i)
	}
	return out
}

// Slice cuts recipient i's ModeSlice wire alone. The relay path filters
// recipients (unknown, non-resident, self) before cutting, and each
// slice carries its own copy of the shared ciphertext — cutting only
// accepted recipients skips that allocation for the rest. The Merkle
// tree is built once and cached; DetachedRound is not safe for
// concurrent use.
func (d *DetachedRound) Slice(i int) []byte {
	if d.levels == nil {
		d.levels = sliceLevels(d.fps, d.wraps)
	}
	return d.slice(i, sliceProof(d.levels, i))
}

func (d *DetachedRound) slice(i int, proof [][]byte) []byte {
	wireLen := 1 + 4 + 4 + 32 + 4 + len(d.wraps[i]) + 1 + 32*len(proof) + 4 + len(d.gcmNonce) + len(d.ct)
	wire := make([]byte, 0, wireLen)
	wire = append(wire, byte(ModeSlice))
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(d.fps)))
	wire = binary.BigEndian.AppendUint32(wire, uint32(i))
	wire = append(wire, d.fps[i][:]...)
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(d.wraps[i])))
	wire = append(wire, d.wraps[i]...)
	wire = append(wire, byte(len(proof)))
	for _, h := range proof {
		wire = append(wire, h...)
	}
	wire = binary.BigEndian.AppendUint32(wire, uint32(len(d.gcmNonce)))
	wire = append(wire, d.gcmNonce...)
	wire = append(wire, d.ct...)
	return wire
}

// SliceRound parses a full ModeGroup wire back into sliceable form — the
// relay-side entry point: a broker that received one uploaded round can
// re-cut it per recipient without holding any key material.
func SliceRound(wire []byte) (*DetachedRound, error) {
	if len(wire) < 2 || Mode(wire[0]) != ModeGroup {
		return nil, ErrEnvelope
	}
	rw, err := parseRoundWire(wire[1:])
	if err != nil {
		return nil, err
	}
	return &DetachedRound{fps: rw.fps, wraps: rw.wraps, gcmNonce: rw.gcmNonce, ct: rw.ct}, nil
}

// parsedSlice is the wire-level view of one ModeSlice payload.
type parsedSlice struct {
	n        int
	index    uint32
	fp       [32]byte
	wrap     []byte
	proof    [][]byte
	gcmNonce []byte
	ct       []byte
}

func parseSliceWire(payload []byte) (*parsedSlice, error) {
	if len(payload) < 8 {
		return nil, ErrEnvelope
	}
	ps := &parsedSlice{}
	n := binary.BigEndian.Uint32(payload[:4])
	ps.index = binary.BigEndian.Uint32(payload[4:8])
	payload = payload[8:]
	if n == 0 || n > maxRoundRecipients || ps.index >= n {
		return nil, ErrEnvelope
	}
	ps.n = int(n)
	if len(payload) < 36 {
		return nil, ErrEnvelope
	}
	copy(ps.fp[:], payload[:32])
	wl := binary.BigEndian.Uint32(payload[32:36])
	payload = payload[36:]
	if uint32(len(payload)) < wl {
		return nil, ErrEnvelope
	}
	ps.wrap = payload[:wl:wl]
	payload = payload[wl:]
	if len(payload) < 1 {
		return nil, ErrEnvelope
	}
	pl := int(payload[0])
	payload = payload[1:]
	if pl > maxSliceProofLen || len(payload) < 32*pl {
		return nil, ErrEnvelope
	}
	ps.proof = make([][]byte, pl)
	for i := 0; i < pl; i++ {
		ps.proof[i] = payload[:32:32]
		payload = payload[32:]
	}
	if len(payload) < 4 {
		return nil, ErrEnvelope
	}
	nl := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	if nl > 64 || uint32(len(payload)) < nl {
		return nil, ErrEnvelope
	}
	ps.gcmNonce = payload[:nl:nl]
	ps.ct = payload[nl:]
	return ps, nil
}

// OpenSlice decrypts and parses one per-recipient round slice. Beyond
// the full-wire OpenGroup checks it enforces the slice binding: the
// Merkle path from this slice's (index, fingerprint, wrap) leaf must
// reach the signed SliceRoot, so a slice re-cut for a different
// recipient set — or with swapped wraps or reordered leaves — fails
// ErrRoundBinding no matter who relayed it. The header signature itself
// is deferred to VerifySignature, exactly as in the other open paths.
func OpenSlice(own *keys.KeyPair, wire []byte, guard *ReplayGuard) (*Opened, error) {
	if len(wire) < 2 || Mode(wire[0]) != ModeSlice {
		return nil, ErrEnvelope
	}
	if own == nil {
		return nil, ErrNotRecipient
	}
	ps, err := parseSliceWire(wire[1:])
	if err != nil {
		return nil, err
	}
	ownFP, err := own.Public().Fingerprint()
	if err != nil {
		return nil, err
	}
	if ps.fp != ownFP {
		return nil, ErrNotRecipient
	}
	cek, err := own.UnwrapKey(ps.wrap)
	if err != nil {
		return nil, ErrNotRecipient
	}
	block, err := keys.AEADOpen(cek, ps.gcmNonce, ps.ct)
	if err != nil {
		return nil, ErrEnvelope
	}
	header, body, err := unpackBlock(block, roundHeaderName)
	if err != nil {
		return nil, err
	}
	wantDigest, err := base64.StdEncoding.DecodeString(header.ChildText("BodyDigest"))
	if err != nil {
		return nil, ErrEnvelope
	}
	if !keys.ConstantTimeEqual(keys.SHA256(body), wantDigest) {
		return nil, ErrBodyDigest
	}
	// The slice binding: recompute the tree root from this slice's own
	// materials and compare against the signed value. A header without a
	// SliceRoot (or with a root over a different recipient set) cannot
	// authorize any slice.
	wantRoot, err := base64.StdEncoding.DecodeString(header.ChildText(sliceRootName))
	if err != nil || len(wantRoot) == 0 {
		return nil, ErrRoundBinding
	}
	root, ok := verifySliceProof(ps.n, ps.index, ps.fp, ps.wrap, ps.proof)
	if !ok || !keys.ConstantTimeEqual(root, wantRoot) {
		return nil, ErrRoundBinding
	}
	return finishRoundOpen(header, body, ModeSlice, guard)
}
