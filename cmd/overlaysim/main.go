// Command overlaysim runs a complete JXTA-Overlay network in one
// process: an administrator deployment, a broker, the central user
// database, and a population of client peers that join, exchange
// messages, share files and publish statistics. Every event is logged,
// so the tool doubles as a smoke test of the whole stack.
//
// Usage:
//
//	overlaysim [-clients 6] [-secure] [-profile lan] [-messages 3] [-churn] [-restart] [-metrics addr] [-v]
//	overlaysim -scenario join-storm|drain-spike|parse-flood|slow-sender [-clients N] [-messages N] [-out summary.json]
//
// With -churn (requires -secure) a third of the peers log out before
// the group chatter, each round is uploaded ONCE to the broker's
// store-and-forward relay, and the departed peers log back in at the
// end to drain their queued slices — the offline-delivery path the
// original client-side fan-out silently dropped. With -restart the
// relay additionally runs on a durable WAL and is torn down and
// recovered mid-churn, while the queues are full, before the departed
// peers return — the crash-recovery path end to end.
//
// With -scenario the tool becomes a scenario driver: it runs one named
// traffic shape against a full in-process deployment and emits a
// schema-stable JSON summary (stdout, or -out FILE) that CI archives
// and gates on. The exit status is the gate: non-zero when the run
// recorded anomalies. -metrics ADDR serves the live telemetry registry
// over HTTP ("/metrics" text, "/metrics.json" snapshot) in either
// mode; `admin metrics -url ADDR` reads it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/bench"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/filesvc"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/scenario"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/telemetry"
	"jxtaoverlay/internal/trace"
	"jxtaoverlay/internal/userdb"
)

func main() {
	nClients := flag.Int("clients", 6, "number of client peers")
	secure := flag.Bool("secure", false, "use the secure primitives")
	profileName := flag.String("profile", "lan", "link profile: local, lan, wan")
	messages := flag.Int("messages", 3, "group messages per client")
	churn := flag.Bool("churn", false, "take a third of the peers offline mid-run; deliver via the broker relay queues (requires -secure)")
	restart := flag.Bool("restart", false, "run the relay on a durable WAL and restart it mid-churn: queued slices must survive into the recovered queues (requires -churn)")
	scenarioName := flag.String("scenario", "", "run one named scenario instead of the smoke sim: "+strings.Join(scenario.Names(), ", "))
	out := flag.String("out", "", "write the scenario summary JSON to FILE (default stdout)")
	metricsAddr := flag.String("metrics", "", "serve the telemetry registry over HTTP on ADDR (e.g. localhost:9090)")
	traceSample := flag.Float64("trace-sample", 0, "record message-lifecycle spans for this fraction of traces (0 disables tracing, 1 records all); anomalies are always captured")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond, "force-capture traces containing a span at least this slow")
	auditDir := flag.String("audit", "", "scenario mode: write a tamper-evident audit journal to DIR and serve /debug/audit on the -metrics endpoint (verify with admin audit verify -dir DIR)")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof on the -metrics endpoint")
	pprofContention := flag.Bool("pprof-contention", false, "with -pprof, also sample mutex/block contention (small process-wide overhead)")
	linger := flag.Duration("linger", 0, "keep the -metrics endpoint up this long after the run, so admin metrics/trace can scrape a finished run")
	verbose := flag.Bool("v", false, "log every event")
	flag.Parse()

	reg := telemetry.Default
	var tracer *trace.Recorder
	if *traceSample > 0 {
		// Seeded like the scenario network: the sampled-trace set is
		// reproducible run to run.
		tracer = trace.New(trace.Config{
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
			Seed:          42,
		})
		reg.Handle("/debug/traces", tracer.DebugHandler())
	}
	if *pprofOn || *pprofContention {
		reg.EnablePprof(*pprofContention)
	}
	// The metrics mux is built before the scenario stack opens its
	// journal, so /debug/audit is an indirection: it answers 503 until
	// the scenario harness hands the live journal back (OnAudit).
	var liveAudit atomic.Pointer[audit.Journal]
	if *auditDir != "" {
		reg.Handle("/debug/audit", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			j := liveAudit.Load()
			if j == nil {
				http.Error(w, "audit journal not open yet", http.StatusServiceUnavailable)
				return
			}
			j.DebugHandler().ServeHTTP(w, r)
		}))
	}
	if *metricsAddr != "" {
		srv, err := reg.Serve(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
		if tracer != nil {
			fmt.Fprintf(os.Stderr, "tracing:   serving http://%s/debug/traces (sample=%g)\n", srv.Addr(), *traceSample)
		}
	}

	if *scenarioName != "" {
		onAudit := func(j *audit.Journal) { liveAudit.Store(j) }
		if err := runScenario(*scenarioName, *nClients, *messages, *profileName, *out, *auditDir, onAudit, reg, tracer); err != nil {
			log.Fatal(err)
		}
		lingerFor(*linger, *metricsAddr)
		return
	}
	if err := run(*nClients, *secure, *profileName, *messages, *churn, *restart, *verbose, reg); err != nil {
		log.Fatal(err)
	}
	lingerFor(*linger, *metricsAddr)
}

// lingerFor holds the process (and with it the -metrics endpoint,
// traces included) open after a completed run, so the admin tool can
// scrape evidence from a run that is already over.
func lingerFor(d time.Duration, metricsAddr string) {
	if d <= 0 || metricsAddr == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "lingering %s for scrapes (ctrl-c to stop)\n", d)
	time.Sleep(d)
}

// runScenario drives one named scenario and writes its JSON summary.
// A run that recorded anomalies exits with status 1 AFTER writing the
// summary: CI gets the evidence and the red build.
func runScenario(name string, nClients, rounds int, profileName, out, auditDir string, onAudit func(*audit.Journal), reg *telemetry.Registry, tracer *trace.Recorder) error {
	// The flag defaults belong to the smoke sim; a scenario invoked
	// without explicit sizes uses its own defaults instead.
	opt := scenario.Options{Profile: profileName, Registry: reg, Tracer: tracer, AuditDir: auditDir, OnAudit: onAudit}
	if auditDir != "" {
		if err := os.MkdirAll(auditDir, 0o755); err != nil {
			return err
		}
	}
	if explicitFlag("clients") {
		opt.Clients = nClients
	}
	if explicitFlag("messages") {
		opt.Rounds = rounds
	}
	sum, err := scenario.Run(name, opt)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if out != "" {
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(raw)
	}
	fmt.Fprintf(os.Stderr, "scenario %s: %d delivered, %.1f rounds/s, p99 %.1fms, %d anomalies\n",
		sum.Scenario, sum.Delivered, sum.RoundsPerSec, sum.P99DeliveryMS, len(sum.Anomalies))
	if len(sum.Anomalies) > 0 {
		for _, a := range sum.Anomalies {
			fmt.Fprintf(os.Stderr, "anomaly: %s\n", a)
		}
		// An anomalous run dumps the full registry snapshot next to the
		// summary: the gate gets the verdict AND the evidence, not just
		// the verdict. Best-effort — the exit status must not change.
		if out != "" {
			metricsOut := strings.TrimSuffix(out, ".json") + ".metrics.json"
			if raw, err := json.MarshalIndent(reg.Snapshot(), "", "  "); err == nil {
				if werr := os.WriteFile(metricsOut, append(raw, '\n'), 0o644); werr == nil {
					fmt.Fprintf(os.Stderr, "telemetry snapshot written to %s\n", metricsOut)
				}
			}
		}
		os.Exit(1)
	}
	return nil
}

func explicitFlag(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func run(nClients int, secure bool, profileName string, messages int, churn, restart, verbose bool, reg *telemetry.Registry) error {
	if churn && !secure {
		return fmt.Errorf("-churn demonstrates relayed secure rounds; run with -secure")
	}
	if restart && !churn {
		return fmt.Errorf("-restart demonstrates crash recovery of queued slices; run with -churn")
	}
	profile, err := bench.ProfileByName(profileName)
	if err != nil {
		return err
	}
	net := simnet.NewNetwork(profile)
	defer net.Close()

	dep, err := core.NewDeployment("sim-admin", 0)
	if err != nil {
		return err
	}
	db := userdb.NewStoreIter(128)
	for i := 0; i < nClients; i++ {
		group := "team-a"
		if i%2 == 1 {
			group = "team-b"
		}
		if err := db.Register(user(i), pw(i), group, "plenary"); err != nil {
			return err
		}
	}

	brKP, err := keys.NewKeyPair()
	if err != nil {
		return err
	}
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "sim-broker", 24*time.Hour)
	if err != nil {
		return err
	}
	trust, err := dep.TrustStore()
	if err != nil {
		return err
	}
	br, err := broker.New(broker.Config{
		Name:   "sim-broker",
		PeerID: brCred.Subject,
		Net:    net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: secure,
	})
	if err != nil {
		return err
	}
	defer br.Close()
	bs, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: secure,
	})
	if err != nil {
		return err
	}
	relayCfg := core.RelayConfig{}
	if restart {
		walDir, err := os.MkdirTemp("", "overlaysim-wal-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(walDir)
		relayCfg.WAL.Dir = walDir
		relayCfg.WAL.SyncInterval = 2 * time.Millisecond
	}
	rly, err := core.EnableBrokerRelay(br, relayCfg)
	if err != nil {
		return err
	}
	defer func() { rly.Close() }()
	core.RegisterBrokerTelemetry(reg, br, bs, rly, nil, nil)
	fmt.Printf("broker %q up (secure=%v, profile=%s, churn=%v)\n", br.Name(), secure, profileName, churn)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var msgCount, secCount, alertCount atomic.Int64
	type peer struct {
		plain  *client.Client
		secure *core.SecureClient
		files  *filesvc.Service
	}
	var peersList []*peer

	for i := 0; i < nClients; i++ {
		var p peer
		if secure {
			cl, err := client.New(net, membership.NewPSE("", 0), user(i))
			if err != nil {
				return err
			}
			clTrust, err := dep.TrustStore()
			if err != nil {
				return err
			}
			sc, err := core.NewSecureClient(cl, clTrust)
			if err != nil {
				return err
			}
			if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
				return fmt.Errorf("%s secureConnection: %w", user(i), err)
			}
			if err := sc.SecureLogin(ctx, pw(i)); err != nil {
				return fmt.Errorf("%s secureLogin: %w", user(i), err)
			}
			p.plain = cl
			p.secure = sc
			p.files = filesvc.New(cl)
		} else {
			cl, err := client.New(net, membership.NewNone(), user(i))
			if err != nil {
				return err
			}
			if err := cl.Connect(ctx, br.PeerID()); err != nil {
				return fmt.Errorf("%s connect: %w", user(i), err)
			}
			if err := cl.Login(ctx, pw(i)); err != nil {
				return fmt.Errorf("%s login: %w", user(i), err)
			}
			p.plain = cl
			p.files = filesvc.New(cl)
		}
		name := user(i)
		p.plain.Bus().SubscribeAll(func(e events.Event) {
			switch e.Type {
			case events.MessageReceived:
				msgCount.Add(1)
			case events.SecureMessage:
				secCount.Add(1)
			case events.SecurityAlert:
				alertCount.Add(1)
			}
			if verbose {
				fmt.Printf("  [%s] %-24s from=%.24s group=%s %s\n", name, e.Type, e.From, e.Group, summary(e))
			}
		})
		defer p.plain.Close()
		peersList = append(peersList, &p)
		fmt.Printf("client %s joined groups %v\n", name, p.plain.Groups())
	}

	// Everyone shares one file with the plenary group.
	for i, p := range peersList {
		content := []byte(strings.Repeat(fmt.Sprintf("notes of %s; ", user(i)), 100))
		if err := p.files.Share(ctx, "plenary", fmt.Sprintf("notes-%s.txt", user(i)), content); err != nil {
			return fmt.Errorf("share: %w", err)
		}
	}

	// With churn, a third of the peers drop offline BEFORE the chatter:
	// their traffic must survive in the broker's store-and-forward
	// queues instead of being silently dropped.
	var churned []int
	if churn {
		for i := range peersList {
			if i%3 == 2 {
				churned = append(churned, i)
			}
		}
		for _, i := range churned {
			if err := peersList[i].secure.Logout(ctx); err != nil {
				return fmt.Errorf("%s logout: %w", user(i), err)
			}
		}
		fmt.Printf("churn: %d of %d peers logged out mid-run\n", len(churned), len(peersList))
	}
	offline := make(map[int]bool, len(churned))
	for _, i := range churned {
		offline[i] = true
	}

	// Group chatter.
	var relayDirect, relayQueued int
	for round := 0; round < messages; round++ {
		for i, p := range peersList {
			if offline[i] {
				continue
			}
			text := fmt.Sprintf("round %d greetings from %s", round, user(i))
			var sent int
			var err error
			switch {
			case churn:
				// The send-once path: ONE sealed round uploaded to the
				// broker, which slices it per recipient — online members
				// get a direct push, offline ones a queued slice.
				var direct, queued int
				direct, queued, err = p.secure.SecureMsgPeerGroupRelay(ctx, "plenary", text)
				relayDirect += direct
				relayQueued += queued
				sent = direct + queued
			case secure:
				sent, err = p.secure.SecureMsgPeerGroup(ctx, "plenary", text)
			default:
				sent, err = p.plain.SendMsgPeerGroup(ctx, "plenary", text)
			}
			if err != nil {
				return fmt.Errorf("group send: %w", err)
			}
			if verbose {
				fmt.Printf("  %s sent to %d peers\n", user(i), sent)
			}
		}
	}

	// The churned peers return: their fresh logins trigger presence
	// events, and the relay's shard workers drain each queue in order.
	if churn {
		fmt.Printf("relay:   %d slices delivered directly, %d queued for offline peers\n", relayDirect, relayQueued)
		// With -restart the relay "crashes" here, while the churned
		// peers' slices sit in its queues: close it, then bring up a
		// fresh relay on the same WAL directory. Recovery must rebuild
		// the queues — delivery below proceeds from the recovered state.
		if restart {
			queuedBefore := rly.QueuedTotal()
			rly.Close()
			rly, err = core.EnableBrokerRelay(br, relayCfg)
			if err != nil {
				return fmt.Errorf("relay restart: %w", err)
			}
			// Rebind the relay collectors to the recovered instance — the
			// registry replaces same-name collectors in place.
			core.RegisterBrokerTelemetry(reg, br, bs, rly, nil, nil)
			m := rly.Metrics()
			fmt.Printf("restart: relay recovered %d of %d queued slices (%d expired while down, %d already acked)\n",
				m.RecoveryReplayed, queuedBefore, m.RecoveryDiscardedTTL, m.RecoveryDiscardedGuard)
			if int(m.RecoveryReplayed) != queuedBefore {
				return fmt.Errorf("recovery lost slices: had %d queued, recovered %d", queuedBefore, m.RecoveryReplayed)
			}
		}
		for _, i := range churned {
			sc := peersList[i].secure
			if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
				return fmt.Errorf("%s re-connect: %w", user(i), err)
			}
			if err := sc.SecureLogin(ctx, pw(i)); err != nil {
				return fmt.Errorf("%s re-login: %w", user(i), err)
			}
		}
		drainDeadline := time.Now().Add(10 * time.Second)
		for rly.QueuedTotal() > 0 && time.Now().Before(drainDeadline) {
			time.Sleep(20 * time.Millisecond)
		}
		m := rly.Metrics()
		fmt.Printf("relay:   flushed %d queued slices on re-login (%d expired, %d dropped, residual %d)\n",
			m.DeliveredFlushed, m.Expired, m.DroppedOverflow, rly.QueuedTotal())
	}

	// One cross-peer download.
	if len(peersList) >= 2 {
		data, err := peersList[1].files.Download(ctx, peersList[0].plain.PeerID(), "notes-"+user(0)+".txt")
		if err != nil {
			return fmt.Errorf("download: %w", err)
		}
		fmt.Printf("%s downloaded %d bytes from %s\n", user(1), len(data), user(0))
	}

	// Publish and read statistics.
	for _, p := range peersList {
		if err := p.plain.PublishStats(ctx, "plenary"); err != nil {
			return err
		}
	}
	if len(peersList) >= 2 {
		stats, err := peersList[0].plain.GetPeerStats(ctx, peersList[1].plain.PeerID(), "plenary")
		if err != nil {
			return err
		}
		fmt.Printf("stats of %s: sent=%d recv=%d bytes-out=%d\n", user(1), stats.MsgsSent, stats.MsgsRecv, stats.BytesSent)
	}

	// Let deliveries drain, then report.
	time.Sleep(200 * time.Millisecond)
	ns := net.Stats()
	fmt.Println()
	fmt.Printf("network: %d frames sent, %d delivered, %d dropped, %d bytes\n", ns.Sent, ns.Delivered, ns.Dropped, ns.Bytes)
	fmt.Printf("events:  %d plain messages, %d secure messages, %d security alerts\n",
		msgCount.Load(), secCount.Load(), alertCount.Load())
	return nil
}

func user(i int) string { return fmt.Sprintf("peer%02d", i) }
func pw(i int) string   { return fmt.Sprintf("pw-%02d", i) }

func summary(e events.Event) string {
	if len(e.Data) > 0 {
		s := string(e.Data)
		if len(s) > 32 {
			s = s[:32] + "..."
		}
		return fmt.Sprintf("%q", s)
	}
	if len(e.Payload) > 0 {
		return fmt.Sprintf("%v", e.Payload)
	}
	return ""
}
