package control

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/discovery"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/pipes"
	"jxtaoverlay/internal/simnet"
)

func newModule(t *testing.T, net *simnet.Network, id string) *Module {
	t.Helper()
	ep, err := endpoint.NewService(net, keys.PeerID(id))
	if err != nil {
		t.Fatal(err)
	}
	m := New(ep, discovery.NewCache(), events.NewBus())
	t.Cleanup(m.Close)
	return m
}

func testNet(t *testing.T) *simnet.Network {
	t.Helper()
	n := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(n.Close)
	return n
}

func TestBindGroupPipe(t *testing.T) {
	net := testNet(t)
	m := newModule(t, net, "urn:jxta:m1")
	adv, err := m.BindGroupPipe("math")
	if err != nil {
		t.Fatalf("BindGroupPipe: %v", err)
	}
	if adv.Group != "math" || adv.PeerID != "urn:jxta:m1" || adv.PipeType != advert.PipeUnicast {
		t.Fatalf("adv = %+v", adv)
	}
	// Idempotent: same group returns the same advertisement.
	again, err := m.BindGroupPipe("math")
	if err != nil || again.PipeID != adv.PipeID {
		t.Fatalf("re-bind = %+v, %v", again, err)
	}
	// Cached locally.
	if _, err := m.Cache().Lookup(advert.TypePipe, adv.PipeID); err != nil {
		t.Fatal("pipe advertisement not cached")
	}
	if got, ok := m.GroupPipeAdv("math"); !ok || got.PipeID != adv.PipeID {
		t.Fatal("GroupPipeAdv mismatch")
	}
	if got := m.BoundGroups(); len(got) != 1 || got[0] != "math" {
		t.Fatalf("BoundGroups = %v", got)
	}
}

func TestMessagePumpDelivers(t *testing.T) {
	net := testNet(t)
	recv := newModule(t, net, "urn:jxta:recv")
	send := newModule(t, net, "urn:jxta:send")

	got := make(chan string, 1)
	recv.SetMessageHandler(func(group string, d pipes.Delivery) {
		body, _ := d.Msg.GetString("body")
		got <- group + "/" + string(d.From) + "/" + body
	})
	adv, err := recv.BindGroupPipe("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := send.SendOnPipe(adv, endpoint.NewMessage().AddString("body", "hi")); err != nil {
		t.Fatalf("SendOnPipe: %v", err)
	}
	select {
	case v := <-got:
		if v != "g/urn:jxta:send/hi" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pump never delivered")
	}
}

func TestUnbindGroupPipe(t *testing.T) {
	net := testNet(t)
	m := newModule(t, net, "urn:jxta:m1")
	if _, err := m.BindGroupPipe("g"); err != nil {
		t.Fatal(err)
	}
	m.UnbindGroupPipe("g")
	if _, ok := m.GroupPipeAdv("g"); ok {
		t.Fatal("pipe adv survived unbind")
	}
	if len(m.BoundGroups()) != 0 {
		t.Fatal("group survived unbind")
	}
	m.UnbindGroupPipe("g") // idempotent
}

func TestCloseRejectsBind(t *testing.T) {
	net := testNet(t)
	m := newModule(t, net, "urn:jxta:m1")
	m.Close()
	if _, err := m.BindGroupPipe("g"); err != ErrClosed {
		t.Fatalf("BindGroupPipe after Close = %v", err)
	}
	m.Close() // idempotent
}

func TestAnnouncer(t *testing.T) {
	net := testNet(t)
	m := newModule(t, net, "urn:jxta:m1")
	var published atomic.Int32
	m.StartAnnouncer(20*time.Millisecond, "alice",
		func() []string { return []string{"g1", "g2"} },
		func(_ context.Context, adv advert.Advertisement) error {
			pres, ok := adv.(*advert.Presence)
			if !ok || pres.Name != "alice" || pres.Status != advert.StatusOnline {
				t.Errorf("unexpected announcement %+v", adv)
			}
			published.Add(1)
			return nil
		})
	deadline := time.Now().Add(5 * time.Second)
	for published.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if published.Load() < 4 {
		t.Fatalf("announcer published %d advertisements", published.Load())
	}
	m.StopAnnouncer()
	count := published.Load()
	time.Sleep(60 * time.Millisecond)
	if published.Load() > count+1 { // one tick may be in flight
		t.Fatal("announcer kept publishing after stop")
	}
}

func TestEmit(t *testing.T) {
	net := testNet(t)
	m := newModule(t, net, "urn:jxta:m1")
	col := events.NewCollector(m.Bus())
	m.Emit(events.GroupUpdated, "urn:jxta:x", "g", map[string]string{"k": "v"}, []byte("d"))
	e, ok := col.WaitFor(events.GroupUpdated, 5*time.Second)
	if !ok || e.Attr("k") != "v" || string(e.Data) != "d" {
		t.Fatalf("event = %+v, %v", e, ok)
	}
}
