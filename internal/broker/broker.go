// Package broker implements the Broker Module: the super-peer that
// controls access to a JXTA-Overlay network. Brokers authenticate end
// users against the central database, organize them into overlapping
// groups, maintain a global index of advertisements and resources, relay
// traffic for NATed client peers, and propagate peer information across
// group members.
//
// The module reproduces the original (insecure) broker faithfully —
// plaintext login, no advertisement verification, no proof of broker
// legitimacy — and exposes extension points (RegisterOp, RegisterPeer,
// RequireSignedAdv) that internal/core uses to graft the paper's
// security extension on top.
package broker

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/admission"
	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/control"
	"jxtaoverlay/internal/discovery"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/parallel"
	"jxtaoverlay/internal/peergroup"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/trace"
	"jxtaoverlay/internal/xmldoc"
)

// Authenticator abstracts the central database connection: the local
// Store in small deployments, the authenticated remote client in
// distributed ones.
type Authenticator interface {
	Authenticate(ctx context.Context, username, password string) ([]string, error)
}

// AuthenticatorFunc adapts a function to Authenticator.
type AuthenticatorFunc func(ctx context.Context, username, password string) ([]string, error)

// Authenticate implements Authenticator.
func (f AuthenticatorFunc) Authenticate(ctx context.Context, u, p string) ([]string, error) {
	return f(ctx, u, p)
}

// PeerInfo is the broker's view of a connected client peer.
type PeerInfo struct {
	ID          keys.PeerID
	Username    string
	Groups      []string
	Online      bool
	ConnectedAt time.Time
	LastSeen    time.Time
	// Origin is the federated broker the peer is logged into, or empty
	// for peers connected to this broker directly.
	Origin keys.PeerID
}

// Local reports whether the peer is connected to this broker directly.
func (p PeerInfo) Local() bool { return p.Origin == "" }

// OpHandler processes one broker operation.
type OpHandler func(from keys.PeerID, msg *endpoint.Message) *endpoint.Message

// AdvVerifier validates a published advertisement document before the
// broker accepts and propagates it, and returns the parsed
// advertisement so the broker never parses a document twice (the
// verifier already had to parse it for the ownership check). The
// security extension installs one backed by xdsig; nil accepts
// everything (the original behaviour) and leaves parsing to the broker.
type AdvVerifier func(doc *xmldoc.Element) (advert.Advertisement, error)

// Config parameterizes a broker.
type Config struct {
	// Name is the broker's deployment name (its "well-known identifier").
	Name string
	// PeerID is the broker's overlay identifier.
	PeerID keys.PeerID
	// Net is the fabric to attach to.
	Net *simnet.Network
	// DB is the central database connection.
	DB Authenticator
	// RequireSecureLogin rejects the plaintext login primitive, forcing
	// clients through the security extension.
	RequireSecureLogin bool
	// OpTimeout bounds database lookups triggered by operations.
	OpTimeout time.Duration
}

// Broker is a running broker instance.
type Broker struct {
	cfg    Config
	ep     *endpoint.Service
	ctl    *control.Module
	groups *peergroup.Registry

	mu          sync.RWMutex
	peers       map[keys.PeerID]*PeerInfo
	ops         map[string]OpHandler
	advVerifier AdvVerifier
	federation  []keys.PeerID
	adm         *admission.Limiter

	// Lifecycle span recorder (nil pointer load = tracing off). An
	// atomic pointer so SetTracer needs no lock against the dispatch
	// path.
	tracer atomic.Pointer[trace.Recorder]

	// Tamper-evident security event journal (nil pointer load = audit
	// off; Journal.Record is nil-safe). Same lock-free install as the
	// tracer.
	auditor atomic.Pointer[audit.Journal]

	// Idempotency dedup window for retried mutating ops (see idem.go).
	idem idemCache

	// Operation counters (see Stats). Plain atomics on the dispatch
	// path; the telemetry layer reads them through pull collectors.
	opsDispatched    atomic.Uint64
	opsFailed        atomic.Uint64
	opsRateLimited   atomic.Uint64
	advsPublished    atomic.Uint64
	fedAdvsAccepted  atomic.Uint64
	fedStalePresence atomic.Uint64
	idemDeduped      atomic.Uint64
}

// Stats is a snapshot of the broker's operation counters.
type Stats struct {
	// OpsDispatched counts operations routed to a handler (rate-limited
	// refusals included, unknown ops excluded).
	OpsDispatched uint64
	// OpsFailed counts operations answered with an error token.
	OpsFailed uint64
	// OpsRateLimited counts operations refused by admission control.
	OpsRateLimited uint64
	// AdvsPublished counts advertisements accepted via publishAdv.
	AdvsPublished uint64
	// FedAdvsAccepted counts federation-forwarded advertisements
	// accepted into the local cache.
	FedAdvsAccepted uint64
	// FedStalePresence counts federation presence updates discarded by
	// the monotonic session guard.
	FedStalePresence uint64
	// IdemDeduped counts mutating-op retries answered from the
	// idempotency dedup window instead of re-executing the handler.
	IdemDeduped uint64
	// PeersOnline / PeersKnown are the live and total session records.
	PeersOnline int
	PeersKnown  int
}

// Stats returns a snapshot of the broker's counters and roster sizes.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	known := len(b.peers)
	online := 0
	for _, p := range b.peers {
		if p.Online {
			online++
		}
	}
	b.mu.RUnlock()
	return Stats{
		OpsDispatched:    b.opsDispatched.Load(),
		OpsFailed:        b.opsFailed.Load(),
		OpsRateLimited:   b.opsRateLimited.Load(),
		AdvsPublished:    b.advsPublished.Load(),
		FedAdvsAccepted:  b.fedAdvsAccepted.Load(),
		FedStalePresence: b.fedStalePresence.Load(),
		IdemDeduped:      b.idemDeduped.Load(),
		PeersOnline:      online,
		PeersKnown:       known,
	}
}

// New attaches a broker to the network and registers its operations.
func New(cfg Config) (*Broker, error) {
	if cfg.Name == "" || cfg.PeerID == "" || cfg.Net == nil {
		return nil, errors.New("broker: Name, PeerID and Net are required")
	}
	if cfg.DB == nil {
		return nil, errors.New("broker: a database connection is required")
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	ep, err := endpoint.NewService(cfg.Net, cfg.PeerID)
	if err != nil {
		return nil, err
	}
	ep.EnableRelaying(true)
	b := &Broker{
		cfg:    cfg,
		ep:     ep,
		ctl:    control.New(ep, discovery.NewCache(), events.NewBus()),
		groups: peergroup.NewRegistry(),
		peers:  make(map[keys.PeerID]*PeerInfo),
		ops:    make(map[string]OpHandler),
	}
	b.registerDefaultOps()
	b.registerFederationOps()
	ep.RegisterHandler(proto.BrokerService, b.dispatch)
	return b, nil
}

// Accessors used by the security extension and diagnostics.

// Name returns the broker's deployment name.
func (b *Broker) Name() string { return b.cfg.Name }

// PeerID returns the broker's overlay identifier.
func (b *Broker) PeerID() keys.PeerID { return b.cfg.PeerID }

// Endpoint returns the broker's endpoint service.
func (b *Broker) Endpoint() *endpoint.Service { return b.ep }

// Cache returns the broker's advertisement index.
func (b *Broker) Cache() *discovery.Cache { return b.ctl.Cache() }

// Groups returns the broker's group registry.
func (b *Broker) Groups() *peergroup.Registry { return b.groups }

// Bus returns the broker's event bus.
func (b *Broker) Bus() *events.Bus { return b.ctl.Bus() }

// DB returns the configured database connection.
func (b *Broker) DB() Authenticator { return b.cfg.DB }

// OpTimeout returns the configured per-operation timeout.
func (b *Broker) OpTimeout() time.Duration { return b.cfg.OpTimeout }

// RequireSecureLogin reports whether plaintext login is disabled.
func (b *Broker) RequireSecureLogin() bool { return b.cfg.RequireSecureLogin }

// RegisterOp installs (or overrides) an operation handler; the security
// extension uses it to add secureConnection and secureLogin.
func (b *Broker) RegisterOp(op string, h OpHandler) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ops[op] = h
}

// SetAdvVerifier installs the advertisement acceptance policy.
func (b *Broker) SetAdvVerifier(v AdvVerifier) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advVerifier = v
}

// EnableAdmission installs per-credential admission control on the
// operation surface: every op a peer invokes spends one token from its
// limiter bucket, and exhausting the bucket earns the `rate-limited`
// wire refusal. Buckets are keyed by peer ID, which secure logins bind
// to the credentialed key via CBID — so the key is, in effect, the
// credential fingerprint. Federation partners are exempt: their ops
// aggregate whole-broker traffic, and their legitimacy question
// (IsPartner) is settled per handler.
func (b *Broker) EnableAdmission(l *admission.Limiter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.adm = l
}

// Admission returns the installed limiter (nil when admission control
// is off). The relay op uses it to feed quota refusals into the same
// offender escalation.
func (b *Broker) Admission() *admission.Limiter {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.adm
}

// SetTracer installs a lifecycle span recorder on the broker: dispatch
// then records admission-stage spans, the publish pipeline records
// parse/verify/publish, and SecurityAlert payloads carry the trace ID
// of the message that earned them (key "trace") so an alert links to
// its captured trace.
func (b *Broker) SetTracer(r *trace.Recorder) {
	if r == nil {
		return
	}
	b.tracer.Store(r)
}

// Tracer returns the installed recorder (nil when tracing is off).
func (b *Broker) Tracer() *trace.Recorder { return b.tracer.Load() }

// SetAuditor installs the tamper-evident security event journal:
// offense records, admission refusals, SecurityAlerts and presence
// transitions are appended to it from then on, each with the trace ID
// of the message that caused it (key "audit" in alert payloads carries
// the journal sequence number, so an alert is joinable to both its
// audit record and its trace waterfall).
func (b *Broker) SetAuditor(j *audit.Journal) {
	if j == nil {
		return
	}
	b.auditor.Store(j)
}

// Auditor returns the installed journal (nil when auditing is off).
// The relay and security extension inherit it so one SetAuditor call
// covers the whole deployment.
func (b *Broker) Auditor() *audit.Journal { return b.auditor.Load() }

// Audit appends one event to the installed journal and returns its
// sequence number (0 when auditing is off). Exposed for the op
// handlers grafted on by internal/core.
func (b *Broker) Audit(e audit.Event) uint64 { return b.auditor.Load().Record(e) }

// TraceID extracts the message's lifecycle trace ID (0 when tracing is
// off or the message is untraced). Op handlers outside this package
// (relay, security extension) use it to continue the sender's trace.
func (b *Broker) TraceID(msg *endpoint.Message) uint64 {
	if b.tracer.Load() == nil {
		return 0
	}
	s, ok := msg.GetString(proto.ElemTrace)
	if !ok {
		return 0
	}
	return trace.ParseID(s)
}

// RecordOffense feeds an out-of-band refusal (e.g. a relay quota
// rejection) into the offender tracking and raises the SecurityAlert
// audit event when the credential's streak crosses the threshold. A
// no-op without admission control. traceID (0 = untraced) correlates
// the alert with the refused message's captured trace.
func (b *Broker) RecordOffense(from keys.PeerID, op, reason string, traceID uint64) {
	b.Audit(audit.Event{Kind: audit.KindOffense, Peer: string(from), Op: op, Reason: reason, Trace: traceID})
	adm := b.Admission()
	if adm == nil {
		return
	}
	if d := adm.Offense(string(from)); d.Alert {
		b.emitAdmissionAlert(from, op, reason, d.Offenses, traceID)
	}
}

func (b *Broker) emitAdmissionAlert(from keys.PeerID, op, reason string, offenses int, traceID uint64) {
	payload := map[string]string{
		"reason":   reason,
		"op":       op,
		"offenses": strconv.Itoa(offenses),
	}
	if traceID != 0 {
		payload["trace"] = trace.FormatID(traceID)
	}
	// The alert's audit record is appended BEFORE the bus event so the
	// payload can carry its sequence number: an alert consumer can then
	// retrieve the durable record (/debug/audit?since=seq-1) and, via
	// the trace ID both carry, the captured waterfall.
	if seq := b.Audit(audit.Event{Kind: audit.KindAlert, Peer: string(from), Op: op, Reason: reason, Trace: traceID}); seq != 0 {
		payload["audit"] = strconv.FormatUint(seq, 10)
	}
	b.ctl.Emit(events.SecurityAlert, from, "", payload, nil)
}

func (b *Broker) dispatch(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	op, _ := msg.GetString(proto.ElemOp)
	b.mu.RLock()
	h, ok := b.ops[op]
	adm := b.adm
	b.mu.RUnlock()
	if !ok {
		return proto.Fail(proto.ErrUnknownOp)
	}
	b.opsDispatched.Add(1)
	tid := b.TraceID(msg)
	// The admission span is recorded for every traced dispatch, limiter
	// or not: "admitted in ~0" and "no limiter installed" read the same
	// in a waterfall, and the stage is always present to anchor the
	// broker side of the trace.
	var sp trace.Span
	if tid != 0 {
		sp = trace.Begin(tid, trace.StageAdmission)
		sp.SetAttr("op", op)
	}
	if adm != nil && !b.IsPartner(from) {
		if d := adm.Allow(string(from)); !d.Allowed {
			b.opsRateLimited.Add(1)
			b.opsFailed.Add(1)
			// Anomalous outcome: the recorder force-captures this span
			// (and the trace's remaining stages) even when unsampled, so
			// the alert's trace ID is always retrievable.
			b.tracer.Load().End(sp, trace.OutcomeRateLimited)
			b.Audit(audit.Event{Kind: audit.KindRateLimited, Peer: string(from), Op: op, Reason: proto.ErrRateLimited, Trace: tid})
			if d.Alert {
				b.emitAdmissionAlert(from, op, proto.ErrRateLimited, d.Offenses, tid)
			}
			// The refusal carries a backoff hint: one token's refill
			// time. Resilient clients floor their retry delay on it so
			// a fleet of retries doesn't hammer an exhausted bucket.
			return proto.Fail(proto.ErrRateLimited).
				AddString(proto.ElemRetryAfter, strconv.FormatInt(adm.RetryAfter().Milliseconds(), 10))
		}
	}
	if tid != 0 {
		b.tracer.Load().End(sp, trace.OutcomeOK)
	}
	// Idempotency dedup: a retried mutating op presenting a key the
	// window already acknowledged gets the original response back —
	// the mutation is not executed twice. Checked after admission
	// (dedup hits are cheap, but a flooder must not bypass its bucket
	// by replaying one key) and only for logged-in peers' keys (the
	// table is per-peer, so strangers can't seed it).
	idemK, hasIdem := msg.GetString(proto.ElemIdem)
	if hasIdem && idemK != "" {
		if cached, ok := b.idem.lookup(from, idemK); ok {
			b.idemDeduped.Add(1)
			b.Audit(audit.Event{Kind: audit.KindIdemDedup, Peer: string(from), Op: op, Reason: "replayed-key", Trace: tid})
			return cached
		}
	}
	resp := h(from, msg)
	if resp != nil {
		if ok, _ := proto.IsOK(resp); !ok {
			b.opsFailed.Add(1)
		} else if hasIdem && idemK != "" {
			// Only acknowledged successes are cached: a refused op
			// performed no mutation, so its retry must re-execute.
			b.idem.store(from, idemK, resp)
		}
	}
	return resp
}

func (b *Broker) registerDefaultOps() {
	b.ops[proto.OpConnect] = b.handleConnect
	b.ops[proto.OpLogin] = b.handleLogin
	b.ops[proto.OpLogout] = b.handleLogout
	b.ops[proto.OpPublishAdv] = b.handlePublishAdv
	b.ops[proto.OpLookupAdv] = b.handleLookupAdv
	b.ops[proto.OpLookupPipe] = b.handleLookupPipe
	b.ops[proto.OpListPeers] = b.handleListPeers
	b.ops[proto.OpGroupCreate] = b.handleGroupCreate
	b.ops[proto.OpGroupJoin] = b.handleGroupJoin
	b.ops[proto.OpGroupLeave] = b.handleGroupLeave
	b.ops[proto.OpGroupList] = b.handleGroupList
	b.ops[proto.OpFileSearch] = b.handleFileSearch
}

// --- discovery ops ---

func (b *Broker) handleConnect(from keys.PeerID, _ *endpoint.Message) *endpoint.Message {
	// The plain connect opens a channel and identifies the broker by
	// name only — nothing proves legitimacy (the vulnerability
	// secureConnection addresses).
	return proto.OK().AddString(proto.ElemBroker, b.cfg.Name)
}

func (b *Broker) handleLogin(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if b.cfg.RequireSecureLogin {
		return proto.Fail(proto.ErrSecureRequired)
	}
	user, _ := msg.GetString(proto.ElemUser)
	pass, _ := msg.GetString(proto.ElemPass)
	if user == "" {
		return proto.Fail(proto.ErrBadRequest)
	}
	ctx, cancel := context.WithTimeout(context.Background(), b.cfg.OpTimeout)
	defer cancel()
	groups, err := b.cfg.DB.Authenticate(ctx, user, pass)
	if err != nil {
		return proto.Fail(proto.ErrAuthFailed)
	}
	b.RegisterPeer(from, user, groups)
	return proto.OK().AddString(proto.ElemGroups, strings.Join(groups, ","))
}

func (b *Broker) handleLogout(from keys.PeerID, _ *endpoint.Message) *endpoint.Message {
	b.UnregisterPeer(from)
	return proto.OK()
}

// RegisterPeer records a successfully authenticated peer and joins it to
// its database-assigned groups. The security extension calls it from
// secureLogin; the plain login path calls it directly.
func (b *Broker) RegisterPeer(id keys.PeerID, username string, groups []string) {
	b.registerPeer(id, username, groups, "")
}

func (b *Broker) registerPeer(id keys.PeerID, username string, groups []string, origin keys.PeerID) {
	b.registerPeerAt(id, username, groups, origin, time.Now())
}

// registerPeerAt records a session that began at the given time. The
// timestamp makes presence migration monotonic: federation partners
// deliver peer-up/peer-down messages with no ordering guarantee, so a
// stale announcement from a peer's PREVIOUS session can arrive after
// the peer already re-registered (here, or at another broker). Such an
// update must not clobber the newer record — a relay hand-off routed on
// the clobbered record would queue for a peer that is in fact logged in
// locally. Local logins always pass the guard (their session starts
// now, which is never older than what is recorded).
func (b *Broker) registerPeerAt(id keys.PeerID, username string, groups []string, origin keys.PeerID, session time.Time) {
	b.mu.Lock()
	if old, ok := b.peers[id]; ok && old.ConnectedAt.After(session) {
		b.mu.Unlock()
		b.fedStalePresence.Add(1)
		return
	}
	info := &PeerInfo{
		ID: id, Username: username,
		Groups: append([]string(nil), groups...),
		Online: true, ConnectedAt: session, LastSeen: session,
		Origin: origin,
	}
	b.peers[id] = info
	b.mu.Unlock()
	reg := b.groups
	for _, g := range groups {
		reg.Ensure("", g, "", id)
		reg.Join(g, id, username)
	}
	for _, g := range groups {
		b.pushPresence(id, username, g, advert.StatusOnline)
	}
	// Announce locally connected peers to the federation; the partner
	// brokers run their own local presence propagation.
	if origin == "" {
		b.fedBroadcast(peerUpMessage(info))
	}
	b.Audit(audit.Event{Kind: audit.KindPeerUp, Peer: string(id), Op: "presence", Reason: presenceOrigin(origin)})
	b.ctl.Emit(events.PresenceUpdate, id, "", map[string]string{"user": username, "status": advert.StatusOnline}, nil)
}

// UnregisterPeer removes a peer from the network view.
func (b *Broker) UnregisterPeer(id keys.PeerID) {
	b.unregisterPeer(id, true)
}

func (b *Broker) unregisterPeer(id keys.PeerID, announce bool) {
	b.unregisterPeerAt(id, announce, time.Now(), "")
}

// ExpirePeer takes an online peer's presence down for a liveness
// reason ("lease-expired"): the security extension's lease sweeper
// calls it when a session misses its heartbeats. session is the start
// time of the session whose lease lapsed — the monotonic presence
// guard then discards an expiry racing a re-login (the new session's
// ConnectedAt is later, so the stale expiry must not take it down).
// The peer-down audit record carries the reason, distinguishing an
// expiry from a clean logout. Reports whether presence was taken down.
func (b *Broker) ExpirePeer(id keys.PeerID, reason string, session time.Time) bool {
	b.mu.RLock()
	p, ok := b.peers[id]
	online := ok && p.Online && !p.ConnectedAt.After(session)
	b.mu.RUnlock()
	if !online {
		return false
	}
	b.unregisterPeerAt(id, true, session, reason)
	return true
}

// TouchPeer refreshes a peer's LastSeen (heartbeat bookkeeping).
func (b *Broker) TouchPeer(id keys.PeerID) {
	b.mu.Lock()
	if p, ok := b.peers[id]; ok {
		p.LastSeen = time.Now()
	}
	b.mu.Unlock()
}

// unregisterPeerAt ends the session that was live at the given time.
// The same monotonic guard as registerPeerAt: a peer-down arriving
// after the peer already re-registered (delivery is unordered) refers
// to a session that no longer exists and must not take the new one
// offline. Local logouts always pass (their session predates now).
// reason overrides the audit record's provenance label when non-empty
// (lease expiries audit as "lease-expired", not "local").
func (b *Broker) unregisterPeerAt(id keys.PeerID, announce bool, session time.Time, reason string) {
	b.mu.Lock()
	info, ok := b.peers[id]
	if ok && info.ConnectedAt.After(session) {
		ok = false // stale: a newer session superseded the one ending here
		b.fedStalePresence.Add(1)
	}
	var local bool
	var sessionAt time.Time
	var groups []string
	var username string
	var origin keys.PeerID
	if ok {
		info.Online = false
		local = info.Origin == ""
		sessionAt = info.ConnectedAt
		// Copy what the rest of the teardown needs while still holding
		// the lock: Groups is mutated in place by join/leave, and the
		// lease sweeper runs this teardown concurrently with dispatch.
		groups = append(groups, info.Groups...)
		username, origin = info.Username, info.Origin
	}
	b.mu.Unlock()
	if !ok {
		return
	}
	reg := b.groups
	for _, g := range groups {
		b.pushPresence(id, username, g, advert.StatusOffline)
	}
	reg.LeaveAll(id)
	if announce && local {
		b.fedBroadcast(endpoint.NewMessage().
			AddString(proto.ElemOp, opFedPeerDown).
			AddString(proto.ElemPeer, string(id)).
			AddString(proto.ElemFedSession, strconv.FormatInt(sessionAt.UnixNano(), 10)))
	}
	if reason == "" {
		reason = presenceOrigin(origin)
	}
	b.Audit(audit.Event{Kind: audit.KindPeerDown, Peer: string(id), Op: "presence", Reason: reason})
	b.ctl.Emit(events.PresenceUpdate, id, "", map[string]string{"user": username, "status": advert.StatusOffline}, nil)
}

// presenceOrigin labels a presence audit record's provenance.
func presenceOrigin(origin keys.PeerID) string {
	if origin == "" {
		return "local"
	}
	return "federated"
}

// Peer returns the broker's record for a peer.
func (b *Broker) Peer(id keys.PeerID) (PeerInfo, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, ok := b.peers[id]
	if !ok {
		return PeerInfo{}, false
	}
	return *p, true
}

// OnlinePeers lists the online peers of a group (all groups when group
// is empty), sorted by peer ID.
func (b *Broker) OnlinePeers(group string) []PeerInfo {
	reg := b.groups
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []PeerInfo
	for _, p := range b.peers {
		if !p.Online {
			continue
		}
		if group != "" {
			if g, err := reg.Get(group); err != nil || !g.Has(p.ID) {
				continue
			}
		}
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (b *Broker) loggedIn(id keys.PeerID) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	p, ok := b.peers[id]
	return ok && p.Online
}

// memberOf enforces the JXTA-Overlay interaction rule: only members of
// the same group may interact. The empty group (network-wide data) is
// open to every logged-in peer.
func (b *Broker) memberOf(id keys.PeerID, group string) bool {
	if group == "" {
		return true
	}
	g, err := b.groups.Get(group)
	if err != nil {
		return false
	}
	return g.Has(id)
}

// --- advertisement ops ---

func (b *Broker) handlePublishAdv(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	raw, ok := msg.Get(proto.ElemAdv)
	if !ok {
		return proto.Fail(proto.ErrBadRequest)
	}
	tid := b.TraceID(msg)
	tr := b.tracer.Load()
	var sp trace.Span
	// Published advertisements must be canonical wire bytes — peers
	// serialize with Canonical() — so the hardened fast-path parser is
	// both the cheap and the strict choice at this, the broker's most
	// exposed ingest surface.
	if tid != 0 {
		sp = trace.Begin(tid, trace.StageParse)
	}
	doc, err := xmldoc.ParseCanonical(raw)
	if err != nil {
		tr.End(sp, trace.OutcomeError)
		return proto.Fail(proto.ErrBadRequest)
	}
	tr.End(sp, trace.OutcomeOK)
	// The advertisement is parsed exactly once on this path: by the
	// verifier when one is installed (it parses for the ownership check
	// anyway), by the broker otherwise. The parsed form then rides into
	// the cache via PutParsed.
	if tid != 0 {
		sp = trace.Begin(tid, trace.StageVerify)
	}
	parsed, errTok := b.verifyAndParse(doc)
	if errTok != "" {
		sp.SetAttr("err", errTok)
		tr.End(sp, trace.OutcomeError)
		return proto.Fail(errTok)
	}
	tr.End(sp, trace.OutcomeOK)
	// A peer may only publish into groups it belongs to.
	group := advGroup(parsed)
	if group != "" && !b.memberOf(from, group) {
		return proto.Fail(proto.ErrNoGroup)
	}
	if tid != 0 {
		sp = trace.Begin(tid, trace.StagePublish)
	}
	if err := b.ctl.Cache().PutParsed(doc, parsed); err != nil {
		tr.End(sp, trace.OutcomeError)
		return proto.Fail(proto.ErrBadRequest)
	}
	b.advsPublished.Add(1)
	if group != "" {
		b.PropagateAdv(doc, group, from)
	}
	b.forwardAdvToFederation(doc, from)
	tr.End(sp, trace.OutcomeOK)
	return proto.OK()
}

// verifyAndParse runs the acceptance policy and yields the
// exactly-once-parsed advertisement, or a protocol error token.
func (b *Broker) verifyAndParse(doc *xmldoc.Element) (advert.Advertisement, string) {
	b.mu.RLock()
	verifier := b.advVerifier
	b.mu.RUnlock()
	if verifier != nil {
		parsed, err := verifier(doc)
		if err != nil {
			return nil, proto.ErrUnsignedAdv
		}
		if parsed != nil {
			return parsed, ""
		}
		// Defensive: a verifier that accepts without parsing falls back
		// to the broker's own parse.
	}
	parsed, err := advert.Parse(doc)
	if err != nil {
		return nil, proto.ErrBadRequest
	}
	return parsed, ""
}

// advGroup extracts the group an advertisement belongs to, if any.
func advGroup(adv advert.Advertisement) string {
	switch a := adv.(type) {
	case *advert.Pipe:
		return a.Group
	case *advert.Presence:
		return a.Group
	case *advert.FileList:
		return a.Group
	case *advert.Stats:
		return a.Group
	default:
		return ""
	}
}

// PropagateAdv pushes an advertisement document to every locally
// connected online member of the group except the source — the broker's
// "distribute data beyond boundaries" role. Members on federated
// brokers are reached by their own broker after forwardAdvToFederation.
func (b *Broker) PropagateAdv(doc *xmldoc.Element, group string, except keys.PeerID) {
	b.propagateLocal(doc, group, except)
}

func (b *Broker) propagateLocal(doc *xmldoc.Element, group string, except keys.PeerID) {
	// The canonical bytes are rendered once (memoized on the document)
	// and shared by every recipient's message.
	push := endpoint.NewMessage().
		AddString(proto.ElemOp, proto.OpAdvPush).
		AddXML(proto.ElemAdv, doc.Canonical())
	var targets []keys.PeerID
	for _, p := range b.OnlinePeers(group) {
		if p.ID == except || !p.Local() {
			continue
		}
		targets = append(targets, p.ID)
	}
	if len(targets) == 1 {
		_ = b.ep.Send(targets[0], proto.ClientService, push)
		return
	}
	// Fan the sends out in parallel: large groups should pay the wire
	// latency of one recipient, not the sum of all of them.
	parallel.ForEach(sendParallelism, len(targets), func(i int) {
		_ = b.ep.Send(targets[i], proto.ClientService, push)
	})
}

// sendParallelism bounds concurrent recipient sends in group fan-outs.
// Sends are latency-bound (wire time, not CPU), so the floor is above
// one core — distinct from core's CPU-bound fanOutParallelism.
var sendParallelism = max(4, runtime.GOMAXPROCS(0))

func (b *Broker) pushPresence(id keys.PeerID, username, group, status string) {
	pres := &advert.Presence{PeerID: id, Name: username, Group: group, Status: status, Seen: time.Now()}
	doc, err := pres.Document()
	if err != nil {
		return
	}
	b.ctl.Cache().PutAdv(pres)
	b.propagateLocal(doc, group, id)
}

func (b *Broker) handleLookupAdv(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	advType, _ := msg.GetString(proto.ElemAdvType)
	advID, _ := msg.GetString(proto.ElemAdvID)
	rec, err := b.ctl.Cache().Lookup(advType, advID)
	if err != nil {
		return proto.Fail(proto.ErrNotFound)
	}
	if group := advGroup(rec.Adv); group != "" && !b.memberOf(from, group) {
		return proto.Fail(proto.ErrNoGroup)
	}
	return proto.OK().AddXML(proto.ElemAdv, rec.Doc.Canonical())
}

func (b *Broker) handleLookupPipe(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	peer, _ := msg.GetString(proto.ElemPeer)
	group, _ := msg.GetString(proto.ElemGroup)
	if !b.memberOf(from, group) {
		return proto.Fail(proto.ErrNoGroup)
	}
	recs := b.ctl.Cache().Find(advert.TypePipe, func(a advert.Advertisement) bool {
		p := a.(*advert.Pipe)
		return string(p.PeerID) == peer && p.Group == group
	})
	if len(recs) == 0 {
		return proto.Fail(proto.ErrNotFound)
	}
	return proto.OK().AddXML(proto.ElemAdv, recs[0].Doc.Canonical())
}

func (b *Broker) handleListPeers(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	group, _ := msg.GetString(proto.ElemGroup)
	if !b.memberOf(from, group) && !b.KnownMember(from, group) {
		return proto.Fail(proto.ErrNoGroup)
	}
	var lines []string
	if all, _ := msg.GetString(proto.ElemAll); all == "1" {
		// The store-and-forward roster: every known member, with real
		// presence, so senders can address offline peers through the
		// relay.
		for _, p := range b.KnownPeers(group) {
			status := advert.StatusOffline
			if p.Online {
				status = advert.StatusOnline
			}
			lines = append(lines, fmt.Sprintf("%s|%s|%s", p.ID, p.Username, status))
		}
	} else {
		for _, p := range b.OnlinePeers(group) {
			lines = append(lines, fmt.Sprintf("%s|%s|%s", p.ID, p.Username, advert.StatusOnline))
		}
	}
	return proto.OK().AddString(proto.ElemPeers, strings.Join(lines, "\n"))
}

// --- group ops ---

func (b *Broker) handleGroupCreate(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	name, _ := msg.GetString(proto.ElemGroup)
	desc, _ := msg.GetString(proto.ElemDesc)
	if name == "" {
		return proto.Fail(proto.ErrBadRequest)
	}
	id, err := advert.NewID("group")
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	if _, err := b.groups.Create(id, name, desc, from); err != nil {
		return proto.Fail(proto.ErrGroupExists)
	}
	ga := &advert.Group{GroupID: id, Name: name, Desc: desc, Creator: from}
	b.ctl.Cache().PutAdv(ga)
	b.ctl.Emit(events.GroupUpdated, from, name, map[string]string{"action": "create"}, nil)
	return proto.OK()
}

func (b *Broker) handleGroupJoin(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	name, _ := msg.GetString(proto.ElemGroup)
	info, _ := b.Peer(from)
	if err := b.groups.Join(name, from, info.Username); err != nil {
		return proto.Fail(proto.ErrNoGroup)
	}
	b.mu.Lock()
	if p, ok := b.peers[from]; ok && !contains(p.Groups, name) {
		p.Groups = append(p.Groups, name)
	}
	b.mu.Unlock()
	b.pushPresence(from, info.Username, name, advert.StatusOnline)
	b.ctl.Emit(events.GroupUpdated, from, name, map[string]string{"action": "join"}, nil)
	return proto.OK()
}

func (b *Broker) handleGroupLeave(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	name, _ := msg.GetString(proto.ElemGroup)
	info, _ := b.Peer(from)
	if err := b.groups.Leave(name, from); err != nil {
		return proto.Fail(proto.ErrNoGroup)
	}
	b.mu.Lock()
	if p, ok := b.peers[from]; ok {
		p.Groups = remove(p.Groups, name)
	}
	b.mu.Unlock()
	b.pushPresence(from, info.Username, name, advert.StatusOffline)
	b.ctl.Emit(events.GroupUpdated, from, name, map[string]string{"action": "leave"}, nil)
	return proto.OK()
}

func (b *Broker) handleGroupList(from keys.PeerID, _ *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	return proto.OK().AddString(proto.ElemGroups, strings.Join(b.groups.List(), ","))
}

// --- file index ops ---

func (b *Broker) handleFileSearch(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.loggedIn(from) {
		return proto.Fail(proto.ErrNotLoggedIn)
	}
	keyword, _ := msg.GetString(proto.ElemKeyword)
	group, _ := msg.GetString(proto.ElemGroup)
	if group != "" && !b.memberOf(from, group) {
		return proto.Fail(proto.ErrNoGroup)
	}
	resp := proto.OK()
	found := 0
	for _, rec := range b.ctl.Cache().Find(advert.TypeFileList, nil) {
		fl := rec.Adv.(*advert.FileList)
		if group != "" && fl.Group != group {
			continue
		}
		// Network-wide searches only surface files from the requester's
		// own groups.
		if group == "" && !b.memberOf(from, fl.Group) {
			continue
		}
		for _, f := range fl.Files {
			if keyword == "" || strings.Contains(f.Name, keyword) {
				resp.AddXML(proto.ElemAdv, rec.Doc.Canonical())
				found++
				break
			}
		}
		if found >= 64 {
			break
		}
	}
	return resp
}

// Close detaches the broker from the network.
func (b *Broker) Close() {
	b.ctl.Close()
	b.ep.Close()
}

// NodeID returns the broker's simnet attachment point.
func (b *Broker) NodeID() simnet.NodeID { return endpoint.NodeID(b.cfg.PeerID) }

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func remove(ss []string, s string) []string {
	out := ss[:0]
	for _, v := range ss {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}
