package core_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/keys"
)

type sliceParty struct {
	kp *keys.KeyPair
	id keys.PeerID
}

func newSliceParty(t *testing.T) sliceParty {
	t.Helper()
	kp, err := keys.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	id, err := keys.CBID(kp.Public())
	if err != nil {
		t.Fatal(err)
	}
	return sliceParty{kp: kp, id: id}
}

func newSliceParties(t *testing.T, n int) (sliceParty, []sliceParty, []*keys.PublicKey) {
	t.Helper()
	sender := newSliceParty(t)
	members := make([]sliceParty, n)
	pubs := make([]*keys.PublicKey, n)
	for i := range members {
		members[i] = newSliceParty(t)
		pubs[i] = members[i].kp.Public()
	}
	return sender, members, pubs
}

// TestSliceRoundTrip: every recipient opens its own slice, recovers the
// body, and can verify the single sender signature — for recipient
// counts covering the empty-proof, odd-leaf and power-of-two tree
// shapes.
func TestSliceRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		sender, members, pubs := newSliceParties(t, n)
		body := []byte("sliced round payload")
		before := sender.kp.SignCalls()
		d, err := core.SealGroupDetached(sender.kp, sender.id, "math", body, pubs)
		if err != nil {
			t.Fatal(err)
		}
		if got := sender.kp.SignCalls() - before; got != 1 {
			t.Fatalf("n=%d: sealing cost %d signatures, want 1", n, got)
		}
		slices := d.Slices()
		if len(slices) != n {
			t.Fatalf("n=%d: got %d slices", n, len(slices))
		}
		for i, m := range members {
			opened, err := core.OpenSlice(m.kp, slices[i], nil)
			if err != nil {
				t.Fatalf("n=%d recipient %d: %v", n, i, err)
			}
			if !bytes.Equal(opened.Body, body) {
				t.Fatalf("n=%d recipient %d: body mismatch", n, i)
			}
			if opened.Mode != core.ModeSlice {
				t.Fatalf("mode = %v, want ModeSlice", opened.Mode)
			}
			if opened.Sender != sender.id || opened.Group != "math" {
				t.Fatalf("n=%d recipient %d: header fields wrong", n, i)
			}
			if err := opened.VerifySignature(sender.kp.Public()); err != nil {
				t.Fatalf("n=%d recipient %d: signature: %v", n, i, err)
			}
		}
	}
}

// TestSliceRoundRelaySide: a relay holding only the full ModeGroup wire
// re-cuts it into the exact same slices the sender would produce — byte
// surgery needs no keys.
func TestSliceRoundRelaySide(t *testing.T) {
	sender, _, pubs := newSliceParties(t, 5)
	d, err := core.SealGroupDetached(sender.kp, sender.id, "math", []byte("x"), pubs)
	if err != nil {
		t.Fatal(err)
	}
	resliced, err := core.SliceRound(d.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if resliced.Recipients() != 5 {
		t.Fatalf("recipients = %d, want 5", resliced.Recipients())
	}
	want, got := d.Slices(), resliced.Slices()
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("slice %d differs between sender and relay assembly", i)
		}
	}
}

// TestSliceFullWireInterop: the same detached round opens both as a full
// ModeGroup wire and as slices, and SealGroup still produces the classic
// wire.
func TestSliceFullWireInterop(t *testing.T) {
	sender, members, pubs := newSliceParties(t, 3)
	body := []byte("interop")
	d, err := core.SealGroupDetached(sender.kp, sender.id, "g", body, pubs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.OpenGroup(members[1].kp, d.Wire(), nil); err != nil {
		t.Fatalf("full wire from detached round: %v", err)
	}
	sealed, err := core.SealGroup(sender.kp, sender.id, "g", body, pubs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.OpenGroup(members[0].kp, sealed.Bytes(), nil); err != nil {
		t.Fatalf("SealGroup wire: %v", err)
	}
}

// TestSliceWrongRecipientRejected: a slice delivered to the wrong peer
// fails before any decryption can happen.
func TestSliceWrongRecipientRejected(t *testing.T) {
	sender, members, pubs := newSliceParties(t, 2)
	d, err := core.SealGroupDetached(sender.kp, sender.id, "g", []byte("x"), pubs)
	if err != nil {
		t.Fatal(err)
	}
	slices := d.Slices()
	if _, err := core.OpenSlice(members[1].kp, slices[0], nil); !errors.Is(err, core.ErrNotRecipient) {
		t.Fatalf("misrouted slice = %v, want ErrNotRecipient", err)
	}
	if _, err := core.OpenSlice(nil, slices[0], nil); !errors.Is(err, core.ErrNotRecipient) {
		t.Fatalf("nil key = %v, want ErrNotRecipient", err)
	}
}

// TestSliceReplayRejected: the signed single-use round nonce makes a
// replayed slice (the store-and-forward relay's new replay surface) die
// at the recipient's guard.
func TestSliceReplayRejected(t *testing.T) {
	sender, members, pubs := newSliceParties(t, 2)
	d, err := core.SealGroupDetached(sender.kp, sender.id, "g", []byte("x"), pubs)
	if err != nil {
		t.Fatal(err)
	}
	guard := core.NewReplayGuard(time.Minute, 64)
	w := d.Slices()[0]
	if _, err := core.OpenSlice(members[0].kp, w, guard); err != nil {
		t.Fatalf("first delivery: %v", err)
	}
	if _, err := core.OpenSlice(members[0].kp, w, guard); !errors.Is(err, core.ErrMessageReplayed) {
		t.Fatalf("replayed slice = %v, want ErrMessageReplayed", err)
	}
	// A recipient that accepted the full-wire round also rejects its
	// slice of the same round: the nonce is shared.
	guard2 := core.NewReplayGuard(time.Minute, 64)
	if _, err := core.OpenGroup(members[1].kp, d.Wire(), guard2); err != nil {
		t.Fatalf("full wire: %v", err)
	}
	if _, err := core.OpenSlice(members[1].kp, d.Slices()[1], guard2); !errors.Is(err, core.ErrMessageReplayed) {
		t.Fatalf("slice after full wire = %v, want ErrMessageReplayed", err)
	}
}

// TestSliceModeConfinement: Open rejects slice wires (round semantics
// need a guard-tracking surface), OpenSlice rejects non-slice wires, and
// OpenGroup rejects slices.
func TestSliceModeConfinement(t *testing.T) {
	sender, members, pubs := newSliceParties(t, 2)
	d, err := core.SealGroupDetached(sender.kp, sender.id, "g", []byte("x"), pubs)
	if err != nil {
		t.Fatal(err)
	}
	w := d.Slices()[0]
	if _, err := core.Open(members[0].kp, w); !errors.Is(err, core.ErrEnvelope) {
		t.Fatalf("Open(slice) = %v, want ErrEnvelope", err)
	}
	if _, err := core.OpenGroup(members[0].kp, w, nil); !errors.Is(err, core.ErrEnvelope) {
		t.Fatalf("OpenGroup(slice) = %v, want ErrEnvelope", err)
	}
	if _, err := core.OpenSlice(members[0].kp, d.Wire(), nil); !errors.Is(err, core.ErrEnvelope) {
		t.Fatalf("OpenSlice(full wire) = %v, want ErrEnvelope", err)
	}
}

// TestSliceTruncatedWireRejected: every proper prefix of a valid slice
// wire must be rejected cleanly (no panic, no acceptance).
func TestSliceTruncatedWireRejected(t *testing.T) {
	sender, members, pubs := newSliceParties(t, 3)
	d, err := core.SealGroupDetached(sender.kp, sender.id, "g", []byte("truncate me"), pubs)
	if err != nil {
		t.Fatal(err)
	}
	w := d.Slices()[1]
	for cut := 0; cut < len(w); cut++ {
		if _, err := core.OpenSlice(members[1].kp, w[:cut], nil); err == nil {
			t.Fatalf("truncated slice (%d/%d bytes) accepted", cut, len(w))
		}
	}
}

// TestSliceWireBytesScaleLinearly pins the whole point of slicing: the
// full ModeGroup wire fanned to N recipients costs O(N^2) bytes on the
// wire, slices cost O(N) (each slice is one wrap plus an O(log N)
// proof). At N=100 the per-recipient bytes must be at least 10x smaller
// than the full wire, and the slice overhead over N=10 must be only the
// logarithmic proof growth.
func TestSliceWireBytesScaleLinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 100 RSA keys")
	}
	body := []byte("wire size probe")
	sizes := map[int]int{} // n -> slice bytes for recipient 0
	full := map[int]int{}
	for _, n := range []int{10, 100} {
		sender, _, pubs := newSliceParties(t, n)
		d, err := core.SealGroupDetached(sender.kp, sender.id, "g", body, pubs)
		if err != nil {
			t.Fatal(err)
		}
		sizes[n] = len(d.Slices()[0])
		full[n] = len(d.Wire())
	}
	if sizes[100]*10 > full[100] {
		t.Fatalf("slice %dB not <1/10 of full wire %dB at N=100", sizes[100], full[100])
	}
	// Growing the round 10x adds only proof hashes to a slice:
	// ceil(log2(100))-ceil(log2(10)) = 3 more 32-byte hashes.
	if grow := sizes[100] - sizes[10]; grow > 4*32 {
		t.Fatalf("slice grew %dB from N=10 to N=100, want <=%d (log-proof only)", grow, 4*32)
	}
}
