// Quickstart: stand up a secure JXTA-Overlay deployment and exchange a
// protected message between two peers.
//
// It walks through the paper's whole §4 flow in order: system setup
// (administrator, broker credential), secureConnection (broker
// legitimacy check), secureLogin (credential issuance), and
// secureMsgPeer (sign-then-encrypt messaging over signed pipe
// advertisements).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// --- 1. System setup (paper §4.1) -------------------------------
	// The administrator generates PK/SK_Adm and the self-signed
	// credential every peer is provisioned with as trust anchor.
	net := simnet.NewNetwork(simnet.ProfileLAN)
	defer net.Close()
	dep, err := core.NewDeployment("quickstart-admin", 0)
	if err != nil {
		return err
	}
	fmt.Println("1. administrator ready:", dep.AdminID())

	// The central database holds the end users (registered out of band).
	db := userdb.NewStore()
	db.Register("alice", "alice-pw", "demo")
	db.Register("bob", "bob-pw", "demo")

	// The broker gets a key pair and an administrator-issued credential.
	brKP, err := keys.NewKeyPair()
	if err != nil {
		return err
	}
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "broker-1", 24*time.Hour)
	if err != nil {
		return err
	}
	brTrust, err := dep.TrustStore()
	if err != nil {
		return err
	}
	br, err := broker.New(broker.Config{
		Name:   "broker-1",
		PeerID: brCred.Subject,
		Net:    net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true, // plaintext login is turned off
	})
	if err != nil {
		return err
	}
	defer br.Close()
	if _, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair:           brKP,
		Credential:        brCred,
		Trust:             brTrust,
		RequireSignedAdvs: true, // unsigned advertisements are rejected
	}); err != nil {
		return err
	}
	fmt.Println("2. broker credentialed and up:", br.PeerID())

	// --- 2. Client boot ----------------------------------------------
	// Each client uses PSE membership: a key pair is created at boot and
	// the peer ID is the key's crypto-based identifier (CBID).
	newPeer := func(alias string) (*core.SecureClient, error) {
		cl, err := client.New(net, membership.NewPSE("", 0), alias)
		if err != nil {
			return nil, err
		}
		trust, err := dep.TrustStore()
		if err != nil {
			return nil, err
		}
		return core.NewSecureClient(cl, trust)
	}
	alice, err := newPeer("alice")
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := newPeer("bob")
	if err != nil {
		return err
	}
	defer bob.Close()

	// --- 3. secureConnection (§4.2.1) --------------------------------
	// Challenge/response proves the broker holds SK_Br and an
	// administrator-issued credential before any password is typed.
	for _, p := range []*core.SecureClient{alice, bob} {
		if err := p.SecureConnection(ctx, br.PeerID()); err != nil {
			return err
		}
		fmt.Printf("3. %s verified broker %q (sid=%s...)\n",
			p.Username(), p.BrokerCredential().SubjectName, p.Sid()[:8])
	}

	// --- 4. secureLogin (§4.2.2) --------------------------------------
	// The signed, encrypted, replay-protected login; the broker answers
	// with a credential the peer uses as proof of identity.
	if err := alice.SecureLogin(ctx, "alice-pw"); err != nil {
		return err
	}
	if err := bob.SecureLogin(ctx, "bob-pw"); err != nil {
		return err
	}
	fmt.Printf("4. alice holds credential issued by %q, valid until %s\n",
		alice.Identity().Credential.Issuer[:24]+"...",
		alice.Identity().Credential.NotAfter.Format(time.RFC3339))

	// --- 5. secureMsgPeer (§4.3.1) -------------------------------------
	// Bob subscribes to secure-message events; alice sends E_PK(m, S(m)).
	received := make(chan events.Event, 1)
	bob.Bus().Subscribe(events.SecureMessage, func(e events.Event) { received <- e })

	if err := alice.SecureMsgPeer(ctx, bob.PeerID(), "demo", "hello over an authenticated, private channel"); err != nil {
		return err
	}
	select {
	case e := <-received:
		fmt.Printf("5. bob received %q\n   from user %q (authenticated=%s, mode=%s)\n",
			e.Data, e.Attr("user"), e.Attr("authenticated"), e.Attr("mode"))
	case <-ctx.Done():
		return ctx.Err()
	}

	// --- 6. secureMsgPeerGroup ------------------------------------------
	sent, err := bob.SecureMsgPeerGroup(ctx, "demo", "group ack")
	if err != nil {
		return err
	}
	fmt.Printf("6. bob acked the whole group (%d peer(s))\n", sent)
	return nil
}
