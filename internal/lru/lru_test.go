package lru

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

var (
	t0 = time.Unix(1000, 0)
	t1 = time.Unix(2000, 0)
	t2 = time.Unix(3000, 0)
)

func TestGetPut(t *testing.T) {
	c := New[string, int](4)
	if _, ok := c.Get("a", t0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, time.Time{})
	if v, ok := c.Get("a", t0); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 2, time.Time{})
	if v, _ := c.Get("a", t0); v != 2 {
		t.Fatalf("Get(a) after replace = %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1, time.Time{})
	c.Put("b", 2, time.Time{})
	c.Get("a", t0) // "a" becomes most recently used
	c.Put("c", 3, time.Time{})
	if _, ok := c.Get("b", t0); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	if _, ok := c.Get("a", t0); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Get("c", t0); !ok {
		t.Fatal("new entry missing")
	}
}

func TestExpiry(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1, t1)
	if _, ok := c.Get("a", t0); !ok {
		t.Fatal("entry expired before its time")
	}
	if _, ok := c.Get("a", t1); ok {
		t.Fatal("entry live at its expiry instant")
	}
	if c.Len() != 0 {
		t.Fatal("expired entry not collected on Get")
	}
	// Expiry is judged by the caller's clock: an entry can be dead for
	// one caller and live for another with an earlier "now".
	c.Put("b", 2, t2)
	if _, ok := c.Get("b", t1); !ok {
		t.Fatal("entry dead before expiry")
	}
}

func TestRemovePurge(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1, time.Time{})
	c.Put("b", 2, time.Time{})
	if !c.Remove("a") || c.Remove("a") {
		t.Fatal("Remove semantics wrong")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("Purge left entries behind")
	}
	if _, ok := c.Get("b", t0); ok {
		t.Fatal("purged entry still present")
	}
}

func TestStats(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1, time.Time{})
	c.Get("a", t0)
	c.Get("missing", t0)
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("Stats = %d hits, %d misses", h, m)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New[string, int](0)
	c.Put("a", 1, time.Time{})
	c.Put("b", 2, time.Time{})
	if c.Len() != 1 {
		t.Fatalf("capacity floor violated: Len = %d", c.Len())
	}
}

// TestConcurrent hammers the cache from many goroutines; run with -race.
func TestConcurrent(t *testing.T) {
	c := New[string, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%100)
				if i%3 == 0 {
					c.Put(key, i, t2)
				} else {
					c.Get(key, t0)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache overflowed its capacity: %d", c.Len())
	}
}
