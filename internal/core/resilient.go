package core

// Client resilience: a retry/resume layer over the secure primitives.
//
// The paper's client assumes a stable session: connect once, login
// once, every primitive either succeeds or surfaces its error to the
// application. Under churn — lossy links, partitions, broker restarts,
// admission refusals — that pushes all recovery logic into every
// application. ResilientClient centralises it:
//
//   - error classification: transport failures and backpressure
//     refusals (rate-limited, relay-quota) are retryable; liveness
//     failures (lease-expired, not-logged-in, no connection) trigger a
//     session resume; authentication failures are terminal and never
//     retried (a wrong password does not become right by retrying, and
//     hammering auth looks like an attack);
//   - capped exponential backoff with full jitter between retries,
//     flooring on the broker's retry-after hint when the refusal
//     carried one, under a per-call retry budget;
//   - idempotency keys: CallIdempotent stamps a mutating request with
//     a client-minted key so a retry after an ambiguous timeout (the
//     op may or may not have executed) is collapsed by the broker's
//     dedup window into at-most-once execution;
//   - automatic session resume: on lease loss or connection death the
//     wrapper re-runs secureConnection + secureLogin (which re-binds
//     group pipes and republishes signed advertisements), then releases
//     every call parked on the outage — the pending-send flush — and
//     emits a Reconnected event carrying the attempt count;
//   - a heartbeat loop renewing the presence lease at a third of its
//     TTL, so the broker keeps pushing to this session instead of
//     expiring it into the relay queue.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/backoff"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/trace"
)

// ErrRetryBudget is returned when a call exhausted its retry budget;
// the last underlying failure is wrapped alongside it.
var ErrRetryBudget = errors.New("core: retry budget exhausted")

// ErrResumeFailed is returned when a session resume exhausted its
// attempt budget without re-establishing the session.
var ErrResumeFailed = errors.New("core: session resume failed")

// ErrClosed is returned by calls on a closed ResilientClient.
var ErrClosed = errors.New("core: resilient client closed")

// ResilientConfig tunes the resilience layer. The zero value gets
// sensible defaults.
type ResilientConfig struct {
	// Backoff shapes retry and resume delays (zero = backoff.DefaultPolicy).
	Backoff backoff.Policy
	// RetryBudget caps attempts per logical call (default 5).
	RetryBudget int
	// ResumeBudget caps login attempts per outage (default 8).
	ResumeBudget int
	// HeartbeatEvery overrides the renewal cadence (default: a third
	// of the granted lease TTL).
	HeartbeatEvery time.Duration
	// AttemptTimeout bounds each individual attempt (0 = rely on the
	// underlying client timeout or the caller's deadline). Set it when
	// the caller context carries a long deadline: without a per-attempt
	// bound, one silently lost request consumes the whole deadline
	// before the first retry fires.
	AttemptTimeout time.Duration
	// Seed makes the jitter deterministic (simulations); 0 seeds from
	// entropy.
	Seed int64
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.RetryBudget <= 0 {
		c.RetryBudget = 5
	}
	if c.ResumeBudget <= 0 {
		c.ResumeBudget = 8
	}
	return c
}

// ResilienceStats is a snapshot of the wrapper's counters (scenario
// gates and telemetry read these).
type ResilienceStats struct {
	Retries           uint64 // attempts beyond the first, across all calls
	Resumes           uint64 // successful session resumes
	ResumeAttempts    uint64 // login attempts made during resumes
	HeartbeatsSent    uint64 // heartbeat renewals attempted
	HeartbeatFailures uint64 // heartbeats that did not renew the lease
}

// ResilientClient wraps a SecureClient with retries, heartbeats and
// automatic session resume. All SecureClient primitives remain
// available through embedding; the wrapper adds the resilient call
// surface and owns the session lifecycle (Connect/Close).
type ResilientClient struct {
	*SecureClient

	cfg      ResilientConfig
	brokerID keys.PeerID
	password string

	idemCounter atomic.Uint64 // per-client idempotency key sequence
	seedCounter atomic.Int64  // decorrelates seeded backoff sources

	mu         sync.Mutex
	closed     bool
	resuming   bool
	resumeDone chan struct{} // closed when the in-flight resume finishes
	resumeErr  error         // outcome of the last finished resume
	hbStop     chan struct{}
	hbDone     chan struct{}

	retries           atomic.Uint64
	resumes           atomic.Uint64
	resumeAttempts    atomic.Uint64
	heartbeatsSent    atomic.Uint64
	heartbeatFailures atomic.Uint64
}

// NewResilientClient wraps an existing SecureClient. The broker ID and
// password are retained for automatic resumes.
func NewResilientClient(sc *SecureClient, brokerID keys.PeerID, password string, cfg ResilientConfig) *ResilientClient {
	return &ResilientClient{
		SecureClient: sc,
		cfg:          cfg.withDefaults(),
		brokerID:     brokerID,
		password:     password,
	}
}

// Stats returns the resilience counter snapshot.
func (r *ResilientClient) Stats() ResilienceStats {
	return ResilienceStats{
		Retries:           r.retries.Load(),
		Resumes:           r.resumes.Load(),
		ResumeAttempts:    r.resumeAttempts.Load(),
		HeartbeatsSent:    r.heartbeatsSent.Load(),
		HeartbeatFailures: r.heartbeatFailures.Load(),
	}
}

// Connect establishes the secure session (secureConnection +
// secureLogin) and starts the heartbeat loop when the broker granted a
// lease. The initial connect is not retried — a broker that is down at
// startup is a deployment problem, not churn.
func (r *ResilientClient) Connect(ctx context.Context) error {
	if err := r.SecureConnection(ctx, r.brokerID); err != nil {
		return err
	}
	if err := r.SecureLogin(ctx, r.password); err != nil {
		return err
	}
	r.startHeartbeat()
	return nil
}

// Close stops the heartbeat loop and closes the underlying client.
// Calls in flight fail with ErrClosed at their next attempt.
func (r *ResilientClient) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	hbStop, hbDone := r.hbStop, r.hbDone
	r.mu.Unlock()
	if hbStop != nil {
		close(hbStop)
		<-hbDone
	}
	r.SecureClient.Close()
}

// isClosed reports whether Close ran.
func (r *ResilientClient) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// NextIdemKey mints a fresh idempotency key, unique per (peer, key)
// within this client's lifetime.
func (r *ResilientClient) NextIdemKey() string {
	return "ik-" + strconv.FormatUint(r.idemCounter.Add(1), 36)
}

// CallIdempotent performs one MUTATING broker operation with retries:
// the request is stamped with a fresh idempotency key, so every
// attempt presents the same key and the broker's dedup window
// collapses re-executions into at-most-once.
func (r *ResilientClient) CallIdempotent(ctx context.Context, msg *endpoint.Message) (*endpoint.Message, error) {
	msg.AddString(proto.ElemIdem, r.NextIdemKey())
	return r.CallResilient(ctx, msg)
}

// CallResilient performs one broker operation under the resilience
// policy: retryable failures back off and retry within the budget,
// liveness failures resume the session first, terminal failures return
// immediately. The message is reused across attempts (do not mutate it
// concurrently). Read-only operations can use this directly; mutating
// operations should go through CallIdempotent.
func (r *ResilientClient) CallResilient(ctx context.Context, msg *endpoint.Message) (*endpoint.Message, error) {
	var resp *endpoint.Message
	err := r.Do(ctx, func(ctx context.Context) error {
		var cerr error
		resp, cerr = r.Call(ctx, msg)
		return cerr
	})
	return resp, err
}

// Do runs fn under the resilience policy: retryable failures back off
// and re-run within the retry budget, liveness failures resume the
// session first, terminal failures return immediately. fn must be safe
// to re-run — read-only, or idempotent by construction (a request
// carrying a fixed idempotency key).
func (r *ResilientClient) Do(ctx context.Context, fn func(context.Context) error) error {
	src := backoff.NewSource(r.cfg.Backoff, r.seed())
	var lastErr error
	for attempt := 0; attempt < r.cfg.RetryBudget; attempt++ {
		if r.isClosed() {
			return ErrClosed
		}
		if cerr := ctx.Err(); cerr != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %w)", cerr, lastErr)
			}
			return cerr
		}
		if attempt > 0 {
			r.retries.Add(1)
		}
		err := r.attempt(ctx, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		switch cls, floor := classify(err); cls {
		case classTerminal:
			return err
		case classResume:
			// The session is gone; a bare retry would fail the same way.
			// Resume (or join the resume already in flight), then retry
			// immediately — the resume's own backoff already paced us.
			if rerr := r.ensureResumed(ctx); rerr != nil {
				return fmt.Errorf("%w (after %v)", rerr, err)
			}
		case classRetryable:
			delay := src.Next()
			if delay < floor {
				delay = floor
			}
			if serr := r.sleep(ctx, delay); serr != nil {
				return serr
			}
		}
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrRetryBudget, r.cfg.RetryBudget, lastErr)
}

// attempt runs one try of fn under the per-attempt timeout.
func (r *ResilientClient) attempt(ctx context.Context, fn func(context.Context) error) error {
	if r.cfg.AttemptTimeout <= 0 {
		return fn(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	defer cancel()
	return fn(actx)
}

// SendGroupRelay fans text over the group's full roster through the
// broker relay under the resilience policy. It differs from calling
// SecureMsgPeerGroupRelay in a retry loop in the one way that matters
// for exactly-once delivery: each round is sealed ONCE, and the single
// sealed wire is resubmitted under one idempotency key across retries
// and session resumes. An ambiguous timeout — the upload may or may
// not have landed — therefore cannot double-enqueue (the broker's
// dedup window replays the accepted response) and recipients can never
// open the payload twice; a naive re-send would re-seal with a fresh
// nonce, which no replay guard could collapse.
func (r *ResilientClient) SendGroupRelay(ctx context.Context, group, text string) (direct, queued int, err error) {
	// Roster and per-recipient key verification are read-only: they ride
	// the plain resilient path.
	var ids []keys.PeerID
	if err := r.Do(ctx, func(ctx context.Context) error {
		members, merr := r.GetGroupMembers(ctx, group)
		if merr != nil {
			return merr
		}
		ids = ids[:0]
		for _, m := range members {
			if m.ID != r.PeerID() {
				ids = append(ids, m.ID)
			}
		}
		return nil
	}); err != nil {
		return 0, 0, err
	}
	if len(ids) == 0 {
		return 0, 0, nil
	}
	recipients := make([]*keys.PublicKey, len(ids))
	for i, id := range ids {
		i, id := i, id
		if err := r.Do(ctx, func(ctx context.Context) error {
			key, _, kerr := r.verifiedPeerKey(ctx, id, group)
			if kerr != nil {
				return kerr
			}
			recipients[i] = key
			return nil
		}); err != nil {
			return 0, 0, err
		}
	}

	for start := 0; start < len(ids); start += maxRoundRecipients {
		end := min(start+maxRoundRecipients, len(ids))
		keyList := recipients[start:end]
		idList := make([]string, 0, end-start)
		for _, id := range ids[start:end] {
			idList = append(idList, string(id))
		}
		tr := r.Tracer()
		var tid uint64
		if tr != nil {
			tid = tr.NewID()
		}
		var spSeal trace.Span
		if tid != 0 {
			spSeal = trace.Begin(tid, trace.StageSeal)
		}
		d, serr := SealGroupDetached(r.kp, r.PeerID(), group, []byte(text), keyList)
		if serr != nil {
			tr.End(spSeal, trace.OutcomeError)
			return direct, queued, serr
		}
		tr.End(spSeal, trace.OutcomeOK)
		msg := endpoint.NewMessage().
			AddString(proto.ElemOp, proto.OpRelayRound).
			AddString(proto.ElemGroup, group).
			AddString(proto.ElemRecipients, strings.Join(idList, ",")).
			Add(proto.ElemEnvelope, d.Wire())
		if tid != 0 {
			msg.AddString(proto.ElemTrace, trace.FormatID(tid))
		}
		// One key per sealed chunk, stamped before the retry loop: every
		// resubmission of this wire presents the same key.
		resp, cerr := r.CallIdempotent(ctx, msg)
		if cerr != nil {
			return direct, queued, cerr
		}
		di, qi, rerr := relayCounts(resp, end-start)
		direct += di
		queued += qi
		if rerr != nil && err == nil {
			err = rerr
		}
	}
	return direct, queued, err
}

// callClass buckets a failure for the retry loop.
type callClass int

const (
	classRetryable callClass = iota // transient: back off and retry
	classResume                     // session dead: resume, then retry
	classTerminal                   // retrying cannot help
)

// classify maps an error from Call to its resilience class and, for
// retryable failures, the broker's backoff floor (0 = none).
func classify(err error) (callClass, time.Duration) {
	// Liveness failures: the session (or connection) is gone.
	if errors.Is(err, client.ErrNotConnected) || errors.Is(err, ErrLeaseLost) {
		return classResume, 0
	}
	var rle *client.RateLimitedError
	if errors.As(err, &rle) {
		// Backpressure with an explicit hint: honor it as the floor.
		return classRetryable, rle.RetryAfter
	}
	var opErr *client.OpError
	if errors.As(err, &opErr) {
		switch opErr.Token {
		case proto.ErrLeaseExpired, proto.ErrNotLoggedIn, proto.ErrBadSid:
			return classResume, 0
		case proto.ErrAuthFailed, proto.ErrBadSignature, proto.ErrBadCredential,
			proto.ErrCBIDMismatch, proto.ErrSecureRequired, proto.ErrSecurityOff,
			proto.ErrUnknownOp, proto.ErrBadRequest, proto.ErrUnsignedAdv,
			proto.ErrBadRound:
			// Auth and malformed-request refusals: deterministic, never
			// retried.
			return classTerminal, opErr.RetryAfter
		}
		return classRetryable, opErr.RetryAfter
	}
	if errors.Is(err, client.ErrRateLimited) || errors.Is(err, client.ErrRelayQuota) {
		return classRetryable, 0
	}
	if errors.Is(err, context.Canceled) {
		return classTerminal, 0
	}
	// Everything else — transport timeouts, partition drops — is
	// transient churn.
	return classRetryable, 0
}

// ensureResumed re-establishes the session, joining an in-flight
// resume when one is already running (its completion is the
// pending-send flush: every parked call releases at once).
func (r *ResilientClient) ensureResumed(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if r.resuming {
		done := r.resumeDone
		r.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
		r.mu.Lock()
		err := r.resumeErr
		r.mu.Unlock()
		return err
	}
	r.resuming = true
	done := make(chan struct{})
	r.resumeDone = done
	r.mu.Unlock()

	err := r.resume(ctx)

	r.mu.Lock()
	r.resuming = false
	r.resumeErr = err
	r.mu.Unlock()
	close(done)
	return err
}

// resume re-runs the session bring-up under backoff: a fresh
// secureConnection (the session identifier is single-use on both
// sides) followed by secureLogin, which re-installs the credential,
// re-binds every group pipe and republishes the signed advertisements.
// On success a Reconnected event fires with the attempt count.
func (r *ResilientClient) resume(ctx context.Context) error {
	var sp trace.Span
	var tid uint64
	if tr := r.Tracer(); tr != nil {
		tid = tr.NewID()
		sp = trace.Begin(tid, trace.StageResume)
	}
	src := backoff.NewSource(r.cfg.Backoff, r.seed())
	var lastErr error
	for attempt := 1; attempt <= r.cfg.ResumeBudget; attempt++ {
		if r.isClosed() {
			return ErrClosed
		}
		r.resumeAttempts.Add(1)
		err := r.attempt(ctx, func(ctx context.Context) error {
			if cerr := r.SecureConnection(ctx, r.brokerID); cerr != nil {
				return cerr
			}
			return r.SecureLogin(ctx, r.password)
		})
		if err == nil {
			r.resumes.Add(1)
			if tr := r.Tracer(); tr != nil {
				sp.SetAttr("attempts", strconv.Itoa(attempt))
				tr.End(sp, trace.OutcomeOK)
			}
			r.Bus().Emit(events.Event{
				Type: events.Reconnected,
				From: r.brokerID,
				Payload: map[string]string{
					"attempts": strconv.Itoa(attempt),
				},
			})
			return nil
		}
		lastErr = err
		if serr := r.sleep(ctx, src.Next()); serr != nil {
			if tr := r.Tracer(); tr != nil {
				tr.End(sp, trace.OutcomeError)
			}
			return serr
		}
	}
	if tr := r.Tracer(); tr != nil {
		tr.End(sp, trace.OutcomeError)
	}
	return fmt.Errorf("%w after %d attempts: %w", ErrResumeFailed, r.cfg.ResumeBudget, lastErr)
}

// startHeartbeat launches the renewal loop when the login granted a
// lease. Idempotent per session generation: a resume's SecureLogin
// refreshes the lease the existing loop renews, so the loop is only
// started once.
func (r *ResilientClient) startHeartbeat() {
	_, ttl := r.Lease()
	if ttl <= 0 {
		return
	}
	r.mu.Lock()
	if r.closed || r.hbStop != nil {
		r.mu.Unlock()
		return
	}
	r.hbStop = make(chan struct{})
	r.hbDone = make(chan struct{})
	stop, done := r.hbStop, r.hbDone
	r.mu.Unlock()
	go r.heartbeatLoop(stop, done)
}

// heartbeatLoop renews the lease at a third of its TTL (three misses
// before expiry). Transport failures are tolerated — the next tick
// retries; lease loss triggers a background resume so the session
// comes back even when the application is idle.
func (r *ResilientClient) heartbeatLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	interval := r.cfg.HeartbeatEvery
	if interval <= 0 {
		_, ttl := r.Lease()
		interval = ttl / 3
	}
	if interval <= 0 {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			r.heartbeatsSent.Add(1)
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			err := r.SecureHeartbeat(ctx)
			cancel()
			if err == nil {
				continue
			}
			r.heartbeatFailures.Add(1)
			if errors.Is(err, ErrLeaseLost) || errors.Is(err, ErrNoLease) || errors.Is(err, client.ErrNotConnected) {
				// The session is gone; resume in the background. A failed
				// resume is retried at the next lease-lost heartbeat.
				rctx, rcancel := context.WithTimeout(context.Background(), time.Minute)
				_ = r.ensureResumed(rctx)
				rcancel()
			}
		}
	}
}

// sleep waits the backoff delay, aborting on context cancellation or
// client close.
func (r *ResilientClient) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return ErrClosed
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// seed derives a per-source jitter seed. With a configured seed the
// sequence is deterministic but still decorrelated across sources
// (each draws a distinct offset); unseeded clients decorrelate from
// each other through entropy.
func (r *ResilientClient) seed() int64 {
	if r.cfg.Seed == 0 {
		return rand.Int63()
	}
	return r.cfg.Seed + int64(r.seedCounter.Add(1))
}
