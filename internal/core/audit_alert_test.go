package core_test

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/trace"
)

// TestSecurityAlertCarriesRetrievableAuditSeq pins the alert → journal →
// trace round-trip: a SecurityAlert raised for a replayed slice carries
// BOTH the audit sequence number and the trace ID; the sequence
// retrieves the matching tamper-evident record through the /debug/audit
// query surface, and that record's trace field retrieves the span
// waterfall from the recorder. One refusal, three correlated surfaces.
func TestSecurityAlertCarriesRetrievableAuditSeq(t *testing.T) {
	h := newSecureHarness(t, true)
	rec := trace.New(trace.Config{SampleRate: 0, Seed: 7})
	h.br.SetTracer(rec)
	rly, err := core.EnableBrokerRelay(h.br, core.RelayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rly.Close() })

	jnl, err := audit.Open(audit.Options{Dir: t.TempDir(), SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jnl.Close() })

	alice := h.secureClient("alice")
	bob := h.secureClient("bob", core.WithReplayGuard(core.NewReplayGuard(time.Minute, 64)))
	alice.SetTracer(rec)
	bob.SetTracer(rec)
	bob.SetAuditor(jnl)
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")
	bobEvents := events.NewCollector(bob.Bus())

	eve := attack.NewEavesdropper(h.net)
	ctx := testCtx(t)
	if _, _, err := alice.SecureMsgPeersViaRelay(ctx, "math", "pay invoice 42", []keys.PeerID{bob.PeerID()}); err != nil {
		t.Fatal(err)
	}
	if _, ok := bobEvents.WaitFor(events.SecureMessage, 5*time.Second); !ok {
		t.Fatal("original slice not delivered")
	}

	raw, err := attack.NewRawNode(h.net, "replayer")
	if err != nil {
		t.Fatal(err)
	}
	bobNode := simnet.NodeID(bob.PeerID())
	for _, frame := range eve.FramesTo(bobNode) {
		if err := raw.Replay(bobNode, frame); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := bobEvents.WaitFor(events.SecurityAlert, 5*time.Second); !ok {
		t.Fatal("replayed slice raised no alert")
	}

	var seqStr, traceStr string
	for _, e := range bobEvents.OfType(events.SecurityAlert) {
		if e.Payload["audit"] != "" {
			seqStr, traceStr = e.Payload["audit"], e.Payload["trace"]
			break
		}
	}
	if seqStr == "" {
		t.Fatal("no SecurityAlert carried an audit sequence number")
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil || seq == 0 {
		t.Fatalf("alert audit seq %q does not parse", seqStr)
	}

	// Surface 2: the sequence selects the record via /debug/audit.
	rr := httptest.NewRecorder()
	jnl.DebugHandler().ServeHTTP(rr, httptest.NewRequest("GET",
		"/debug/audit?since="+strconv.FormatUint(seq-1, 10)+"&limit=1", nil))
	var page audit.PageJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 1 || page.Events[0].Seq != seq {
		t.Fatalf("audit seq %d not retrievable: %+v", seq, page.Events)
	}
	recJSON := page.Events[0]
	if recJSON.Kind != audit.KindOpenFail || recJSON.Peer != string(alice.PeerID()) {
		t.Fatalf("audit record %+v does not describe alice's replayed slice", recJSON)
	}
	if recJSON.Trace != traceStr {
		t.Fatalf("audit record trace %q != alert trace %q", recJSON.Trace, traceStr)
	}

	// Surface 3: the record's trace ID retrieves the span waterfall.
	id := trace.ParseID(recJSON.Trace)
	if id == 0 {
		t.Fatalf("audit record trace %q does not parse", recJSON.Trace)
	}
	spans := rec.TraceSpans(id)
	if len(spans) == 0 {
		t.Fatalf("trace %s from audit record not retrievable", recJSON.Trace)
	}
	found := false
	for _, sp := range spans {
		if sp.Stage == trace.StageOpen && sp.Outcome == trace.OutcomeAlert {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s has no open span with outcome %s", recJSON.Trace, trace.OutcomeAlert)
	}
}
