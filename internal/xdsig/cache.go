package xdsig

import (
	"errors"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/lru"
	"jxtaoverlay/internal/xmldoc"
)

// DefaultVerifyCacheSize bounds a VerifyCache when the caller does not
// pick a size.
const DefaultVerifyCacheSize = 1024

// VerifyCache memoizes successful VerifyTrusted outcomes so a peer that
// sees the same signed document over and over — a broker re-validating a
// popular advertisement, a client fanning a message out to a group whose
// pipe advertisements it already verified — pays the RSA and chain work
// once and a digest lookup thereafter.
//
// The cache key is the SHA-256 digest of the document's canonical form
// (which covers the signature and the embedded credential chain)
// combined with a fingerprint of the signer's embedded key material. Any
// tampering changes the digest and misses the cache, falling back to a
// full — and failing — verification; failures are never cached.
//
// Entries are TTL-bounded by the credential chain's validity window:
// an entry expires at the chain's earliest NotAfter, and a hit before
// the chain's latest NotBefore is ignored, so VerifyTrusted honors
// credential expiry exactly as the uncached path does. A cache is bound
// to one TrustStore and must not be shared across trust domains.
//
// VerifyCache is the outermost of three cache layers: a miss here (a
// document this peer has not verified) still rides the TrustStore's
// chain-verdict cache — so a *new* document by a *known* signer pays
// one RSA operation, its own leaf signature — and, below that, the
// per-link signature cache.
type VerifyCache struct {
	trust *cred.TrustStore
	lru   *lru.Cache[string, *verifyEntry]
}

type verifyEntry struct {
	res *Result
	// notBefore is the latest NotBefore across the chain; the entry's
	// LRU expiry holds the earliest NotAfter. Together they pin the
	// cached verdict inside the chain's validity window.
	notBefore time.Time
}

// NewVerifyCache creates a verification cache bound to the given trust
// store. capacity <= 0 selects DefaultVerifyCacheSize.
func NewVerifyCache(trust *cred.TrustStore, capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = DefaultVerifyCacheSize
	}
	return &VerifyCache{trust: trust, lru: lru.New[string, *verifyEntry](capacity)}
}

// TrustStore returns the trust store the cache verifies against.
func (vc *VerifyCache) TrustStore() *cred.TrustStore { return vc.trust }

// Stats reports cumulative cache hits and misses.
func (vc *VerifyCache) Stats() (hits, misses uint64) { return vc.lru.Stats() }

// cacheKey derives the lookup key: document digest plus a fingerprint of
// the signer's embedded key material. The key text is hashed as embedded
// (no DER parse) — it only has to bind the cache entry to the exact
// bytes that were verified, and those are what the digest covers.
func cacheKey(doc *xmldoc.Element) (string, bool) {
	sig := doc.Child(SignatureElement)
	if sig == nil {
		return "", false
	}
	keyInfo := sig.Child("KeyInfo")
	if keyInfo == nil {
		return "", false
	}
	leaf := keyInfo.Child(cred.ElementName)
	if leaf == nil {
		return "", false
	}
	docDigest := keys.SHA256(doc.Canonical())
	keyFP := keys.SHA256([]byte(leaf.ChildText("Key")))
	return string(docDigest) + string(keyFP), true
}

// VerifyTrusted is the cached equivalent of the package-level
// VerifyTrusted. On a miss (or any structural shortfall) it runs the
// full verification and caches a success; on a hit it re-checks only the
// validity window against now. The returned Result is shared between
// callers and must be treated as read-only.
func (vc *VerifyCache) VerifyTrusted(doc *xmldoc.Element, now time.Time) (*Result, error) {
	if vc == nil {
		return nil, errors.New("xdsig: nil verify cache")
	}
	if doc == nil {
		return nil, errors.New("xdsig: nil document")
	}
	key, ok := cacheKey(doc)
	if !ok {
		// Structurally unsound for caching; the full path produces the
		// precise error (ErrNoSignature, ErrNoKeyInfo, ...).
		return VerifyTrusted(doc, vc.trust, now)
	}
	if ent, hit := vc.lru.Get(key, now); hit && !now.Before(ent.notBefore) {
		return ent.res, nil
	}
	res, err := VerifyTrusted(doc, vc.trust, now)
	if err != nil {
		return nil, err
	}
	notBefore, notAfter := cred.ChainWindow(res.Chain)
	vc.lru.Put(key, &verifyEntry{res: res, notBefore: notBefore}, notAfter)
	return res, nil
}
