package broker

import (
	"strconv"
	"strings"
	"time"

	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/xmldoc"
)

// Brokers "exchange information about all client peers, maintaining a
// global index of available resources" (paper §2.1). This file
// implements that exchange: federated brokers push peer arrivals,
// departures and published advertisements to each other, so a client
// logged into broker A can discover and message a client logged into
// broker B.
//
// Loop prevention is structural: federation messages are never
// re-forwarded, and local propagation only reaches locally registered
// peers, so every update crosses the broker mesh exactly once per link.

// Federation operations (broker → broker).
const (
	opFedPeerUp   = "fedPeerUp"
	opFedPeerDown = "fedPeerDown"
	opFedAdv      = "fedAdv"
)

// Federate connects this broker to peer brokers. Call it on both sides
// (or all pairs of a full mesh). Existing local peers are announced to
// the new partners immediately.
func (b *Broker) Federate(partners ...keys.PeerID) {
	b.mu.Lock()
	for _, p := range partners {
		if p != b.cfg.PeerID && !containsPeer(b.federation, p) {
			b.federation = append(b.federation, p)
		}
	}
	local := make([]*PeerInfo, 0, len(b.peers))
	for _, info := range b.peers {
		if info.Online && info.Origin == "" {
			cp := *info
			local = append(local, &cp)
		}
	}
	b.mu.Unlock()
	for _, info := range local {
		b.fedBroadcast(peerUpMessage(info))
	}
}

// FederationPartners lists the connected brokers.
func (b *Broker) FederationPartners() []keys.PeerID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]keys.PeerID(nil), b.federation...)
}

func containsPeer(list []keys.PeerID, p keys.PeerID) bool {
	for _, v := range list {
		if v == p {
			return true
		}
	}
	return false
}

// fedBroadcast pushes a federation message to every partner.
func (b *Broker) fedBroadcast(msg *endpoint.Message) {
	b.mu.RLock()
	partners := append([]keys.PeerID(nil), b.federation...)
	b.mu.RUnlock()
	for _, p := range partners {
		_ = b.ep.Send(p, proto.BrokerService, msg)
	}
}

// IsPartner reports whether the sender is a registered federation peer.
// In the original middleware nothing authenticates this (consistent
// with its threat model); the security extension's advertisement
// verifier still applies to federated advertisement payloads. Exported
// for the relay hand-off handler (core), which must refuse forwarded
// slices from non-partners.
func (b *Broker) IsPartner(id keys.PeerID) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return containsPeer(b.federation, id)
}

func peerUpMessage(info *PeerInfo) *endpoint.Message {
	return endpoint.NewMessage().
		AddString(proto.ElemOp, opFedPeerUp).
		AddString(proto.ElemPeer, string(info.ID)).
		AddString(proto.ElemUser, info.Username).
		AddString(proto.ElemGroups, strings.Join(info.Groups, ",")).
		AddString(proto.ElemFedSession, strconv.FormatInt(info.ConnectedAt.UnixNano(), 10))
}

// fedSession extracts the session start time a federation presence
// update describes. Broker-to-broker delivery is unordered, so the
// receiver compares it against the session it already has on record
// and discards updates an intervening (re-)login made stale — without
// this, a slow peer-up from a recipient's previous session can clobber
// its live local registration and misroute relay traffic. A message
// without the element (never produced here) falls back to "now", the
// pre-timestamp behavior.
func fedSession(msg *endpoint.Message) time.Time {
	if s, _ := msg.GetString(proto.ElemFedSession); s != "" {
		if ns, err := strconv.ParseInt(s, 10, 64); err == nil {
			return time.Unix(0, ns)
		}
	}
	return time.Now()
}

func (b *Broker) registerFederationOps() {
	b.ops[opFedPeerUp] = b.handleFedPeerUp
	b.ops[opFedPeerDown] = b.handleFedPeerDown
	b.ops[opFedAdv] = b.handleFedAdv
}

func (b *Broker) handleFedPeerUp(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.IsPartner(from) {
		return nil
	}
	peer, _ := msg.GetString(proto.ElemPeer)
	user, _ := msg.GetString(proto.ElemUser)
	groupsCSV, _ := msg.GetString(proto.ElemGroups)
	var groups []string
	if groupsCSV != "" {
		groups = strings.Split(groupsCSV, ",")
	}
	b.registerPeerAt(keys.PeerID(peer), user, groups, from, fedSession(msg))
	return nil
}

func (b *Broker) handleFedPeerDown(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.IsPartner(from) {
		return nil
	}
	peer, _ := msg.GetString(proto.ElemPeer)
	b.unregisterPeerAt(keys.PeerID(peer), false, fedSession(msg), "")
	return nil
}

func (b *Broker) handleFedAdv(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	if !b.IsPartner(from) {
		return nil
	}
	raw, ok := msg.Get(proto.ElemAdv)
	if !ok {
		return nil
	}
	doc, err := xmldoc.ParseCanonical(raw)
	if err != nil {
		return nil
	}
	// Same single-parse discipline as handlePublishAdv: the verifier's
	// parsed advertisement is reused for the cache and propagation.
	adv, errTok := b.verifyAndParse(doc)
	if errTok != "" {
		return nil
	}
	src, _ := msg.GetString(proto.ElemPeer)
	if err := b.ctl.Cache().PutParsed(doc, adv); err != nil {
		return nil
	}
	b.fedAdvsAccepted.Add(1)
	// Propagate to local members only; never re-forward (loop guard).
	if group := advGroup(adv); group != "" {
		b.propagateLocal(doc, group, keys.PeerID(src))
	}
	return nil
}

// forwardAdvToFederation ships a freshly published advertisement to the
// partner brokers.
func (b *Broker) forwardAdvToFederation(doc *xmldoc.Element, source keys.PeerID) {
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, opFedAdv).
		AddString(proto.ElemPeer, string(source)).
		AddXML(proto.ElemAdv, doc.Canonical())
	b.fedBroadcast(msg)
}
