package core_test

import (
	"strings"
	"testing"

	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/taskexec"
)

func taskRegistry() *taskexec.Registry {
	reg := taskexec.NewRegistry()
	reg.Register("upper", func(args []string) (string, error) {
		return strings.ToUpper(strings.Join(args, " ")), nil
	})
	return reg
}

func TestSecureExecTask(t *testing.T) {
	h := newSecureHarness(t, true)
	alice := h.secureClient("alice")
	bob := h.secureClient("bob")
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")
	bob.EnableSecureTasks(taskRegistry())

	ctx := testCtx(t)
	out, err := alice.SecureExecTask(ctx, bob.PeerID(), "math", "upper", []string{"hello", "world"})
	if err != nil {
		t.Fatalf("SecureExecTask: %v", err)
	}
	if out != "HELLO WORLD" {
		t.Fatalf("out = %q", out)
	}
}

func TestSecureExecTaskUnknownTask(t *testing.T) {
	h := newSecureHarness(t, true)
	alice := h.secureClient("alice")
	bob := h.secureClient("bob")
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")
	bob.EnableSecureTasks(taskRegistry())

	ctx := testCtx(t)
	if _, err := alice.SecureExecTask(ctx, bob.PeerID(), "math", "rm-rf", nil); err == nil {
		t.Fatal("unknown task executed")
	}
}

func TestSecureExecTaskRejectsOutsider(t *testing.T) {
	// Carol is valid on the network but in a different group ("art"):
	// the group-membership policy must block her.
	h := newSecureHarness(t, true)
	h.db.Register("carol", "pw-carol", "art")
	alice := h.secureClient("alice")
	carol := h.secureClient("carol")
	h.join(alice, "pw-alice")
	h.join(carol, "pw-carol")
	alice.EnableSecureTasks(taskRegistry())

	ctx := testCtx(t)
	// Carol claims group "math" in her envelope, but alice (the executor)
	// checks her own membership AND carol has no pipe advertisement in
	// math — either way the call must fail.
	if _, err := carol.SecureExecTask(ctx, alice.PeerID(), "math", "upper", []string{"x"}); err == nil {
		t.Fatal("outsider executed a secure task")
	}
}

func TestSecureExecTaskRejectsPlainEnvelope(t *testing.T) {
	// An encrypt-only (unsigned) envelope must be rejected: executable
	// primitives demand source authentication.
	h := newSecureHarness(t, true)
	alice := h.secureClient("alice", core.WithMode(core.ModeEncrypt))
	bob := h.secureClient("bob")
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")
	bob.EnableSecureTasks(taskRegistry())

	ctx := testCtx(t)
	if _, err := alice.SecureExecTask(ctx, bob.PeerID(), "math", "upper", []string{"x"}); err == nil {
		t.Fatal("unsigned task request executed")
	}
}

func TestSecureTaskResponseAuthenticated(t *testing.T) {
	// The response envelope is signed by the executor; requester verifies.
	h := newSecureHarness(t, true)
	alice := h.secureClient("alice")
	bob := h.secureClient("bob")
	h.join(alice, "pw-alice")
	h.join(bob, "pw-bob")
	bob.EnableSecureTasks(taskRegistry())

	ctx := testCtx(t)
	out, err := alice.SecureExecTask(ctx, bob.PeerID(), "math", "upper", []string{"ok"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "OK" {
		t.Fatalf("out = %q", out)
	}
}
