// The tests in this package are the executable form of the paper's
// security analysis: each vulnerability in §2.3 is demonstrated against
// the original primitives, and each corresponding defense in §4 is
// demonstrated against the secure ones.
package attack_test

import (
	"context"
	"testing"
	"time"

	"jxtaoverlay/internal/attack"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/xdsig"
	"jxtaoverlay/internal/xmldoc"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// plainStack assembles the original, insecure deployment.
type plainStack struct {
	net *simnet.Network
	br  *broker.Broker
	db  *userdb.Store
}

func newPlainStack(t *testing.T) *plainStack {
	t.Helper()
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	db := userdb.NewStoreIter(4)
	db.Register("alice", "alice-secret-pw", "math")
	db.Register("bob", "bob-secret-pw", "math")
	db.Register("mallory", "mallory-pw", "math") // a legitimate but malicious user
	br, err := broker.New(broker.Config{
		Name: "broker-1", PeerID: keys.LegacyPeerID("broker-1"), Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(br.Close)
	return &plainStack{net: net, br: br, db: db}
}

func (s *plainStack) login(t *testing.T, alias, password string) *client.Client {
	t.Helper()
	cl, err := client.New(s.net, membership.NewNone(), alias)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	ctx := testCtx(t)
	if err := cl.Connect(ctx, s.br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Login(ctx, password); err != nil {
		t.Fatal(err)
	}
	return cl
}

// --- Vulnerability 1: eavesdropping (§2.3 bullet 1) ---

func TestPlainLoginLeaksPassword(t *testing.T) {
	s := newPlainStack(t)
	eve := attack.NewEavesdropper(s.net)
	s.login(t, "alice", "alice-secret-pw")
	if !eve.SawString("alice-secret-pw") {
		t.Fatal("expected the plain login to leak the password (vulnerability not reproduced)")
	}
}

func TestPlainMessageLeaksContent(t *testing.T) {
	s := newPlainStack(t)
	alice := s.login(t, "alice", "alice-secret-pw")
	bob := s.login(t, "bob", "bob-secret-pw")
	eve := attack.NewEavesdropper(s.net)
	ctx := testCtx(t)
	if err := alice.SendMsgPeer(ctx, bob.PeerID(), "math", "my-private-note"); err != nil {
		t.Fatal(err)
	}
	if !eve.SawString("my-private-note") {
		t.Fatal("expected the plain message to be readable on the wire")
	}
}

// --- Vulnerability 2: advertisement forgery (§2.3 bullet 2) ---

func TestPlainPresenceForgeryAccepted(t *testing.T) {
	// Mallory, a legitimate user, forges alice's presence advertisement
	// (claiming she went offline). The broker accepts and propagates it,
	// and every group member updates its view — "accepted by all group
	// members, unaware of the false data".
	s := newPlainStack(t)
	alice := s.login(t, "alice", "alice-secret-pw")
	bob := s.login(t, "bob", "bob-secret-pw")
	mallory := s.login(t, "mallory", "mallory-pw")

	bobEvents := events.NewCollector(bob.Bus())
	ctx := testCtx(t)
	forged := attack.ForgePresence(alice.PeerID(), "alice", "math", "offline")
	if err := mallory.PublishAdvDoc(ctx, forged); err != nil {
		t.Fatalf("plain broker rejected the forged advertisement: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var hit bool
		for _, e := range bobEvents.OfType(events.PresenceUpdate) {
			if e.Attr("user") == "alice" && e.Attr("status") == "offline" {
				hit = true
			}
		}
		if hit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("forged presence never reached bob (vulnerability not reproduced)")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = alice // alice never went offline; her view was falsified anyway
}

func TestPlainMessageSourceSpoofing(t *testing.T) {
	// No source authenticity: an attacker node injects a pipe message
	// with alice's peer ID in the source element, and bob's application
	// sees a message "from alice".
	s := newPlainStack(t)
	alice := s.login(t, "alice", "alice-secret-pw")
	bob := s.login(t, "bob", "bob-secret-pw")

	bobPipe, ok := bob.Control().GroupPipeAdv("math")
	if !ok {
		t.Fatal("bob has no math pipe")
	}
	raw, err := attack.NewRawNode(s.net, "attacker-node")
	if err != nil {
		t.Fatal(err)
	}
	bobEvents := events.NewCollector(bob.Bus())
	frame := attack.SpoofedPipeMessage(alice.PeerID(), bob.PeerID(), bobPipe.PipeID, "math", "wire me money")
	if err := raw.Replay(simnet.NodeID(bob.PeerID()), frame); err != nil {
		t.Fatalf("inject: %v", err)
	}
	e, ok := bobEvents.WaitFor(events.MessageReceived, 5*time.Second)
	if !ok {
		t.Fatal("spoofed message not delivered (vulnerability not reproduced)")
	}
	if e.From != alice.PeerID() {
		t.Fatalf("spoofed source = %q, want alice's ID", e.From)
	}
	if string(e.Data) != "wire me money" {
		t.Fatalf("payload = %q", e.Data)
	}
}

// --- Vulnerability 3: fake broker (§2.3 bullet 3) ---

func TestPlainClientTrustsFakeBroker(t *testing.T) {
	s := newPlainStack(t)
	harvested := make(chan [2]string, 1)
	fake, err := attack.NewFakeBroker(s.net, "broker-1", keys.LegacyPeerID("evil"), harvested)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fake.Close)

	// Alice's traffic is redirected (DNS spoofing analog): she connects
	// to the fake broker's address believing it is broker-1.
	cl, err := client.New(s.net, membership.NewNone(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	ctx := testCtx(t)
	if err := cl.Connect(ctx, fake.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Login(ctx, "alice-secret-pw"); err != nil {
		t.Fatalf("fake broker rejected the login: %v", err)
	}
	select {
	case creds := <-harvested:
		if creds[0] != "alice" || creds[1] != "alice-secret-pw" {
			t.Fatalf("harvested = %v", creds)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fake broker harvested nothing")
	}
}

// --- Vulnerability 4: login replay ---

func TestPlainLoginReplay(t *testing.T) {
	s := newPlainStack(t)
	eve := attack.NewEavesdropper(s.net)
	alice := s.login(t, "alice", "alice-secret-pw")
	bob := s.login(t, "bob", "bob-secret-pw")

	ctx := testCtx(t)
	// Snapshot the captured traffic BEFORE logout so the replay set
	// contains the login exchange but not the logout.
	brokerNode := simnet.NodeID(s.br.PeerID())
	captured := eve.FramesTo(brokerNode)
	if len(captured) == 0 {
		t.Fatal("no frames captured")
	}

	// Alice logs out; she is gone from the network view.
	if err := alice.Logout(ctx); err != nil {
		t.Fatal(err)
	}
	online, _ := bob.GetOnlinePeers(ctx, "math")
	for _, p := range online {
		if p.Username == "alice" {
			t.Fatal("alice still online after logout")
		}
	}

	// The attacker replays alice's captured login frame verbatim —
	// without knowing the password — and alice "logs in" again.
	raw, err := attack.NewRawNode(s.net, "attacker-node")
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range captured {
		if err := raw.Replay(brokerNode, frame); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		online, _ = bob.GetOnlinePeers(ctx, "math")
		for _, p := range online {
			if p.Username == "alice" {
				return // vulnerability reproduced: replay re-authenticated alice
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("replayed login did not re-authenticate alice (vulnerability not reproduced)")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- Defenses: the same attacks against the secure stack ---

type secureStack struct {
	net   *simnet.Network
	dep   *core.Deployment
	br    *broker.Broker
	db    *userdb.Store
	brKP  *keys.KeyPair
	brSec *core.BrokerSecurity
}

func newSecureStack(t *testing.T) *secureStack {
	t.Helper()
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	db := userdb.NewStoreIter(4)
	db.Register("alice", "alice-secret-pw", "math")
	db.Register("bob", "bob-secret-pw", "math")
	db.Register("mallory", "mallory-pw", "math")
	brKP, _ := keys.NewKeyPair()
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "broker-1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, _ := dep.TrustStore()
	br, err := broker.New(broker.Config{
		Name: "broker-1", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(br.Close)
	brSec, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &secureStack{net: net, dep: dep, br: br, db: db, brKP: brKP, brSec: brSec}
}

func (s *secureStack) join(t *testing.T, alias, password string) *core.SecureClient {
	t.Helper()
	cl, err := client.New(s.net, membership.NewPSE("", 0), alias)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	trust, _ := s.dep.TrustStore()
	sc, err := core.NewSecureClient(cl, trust)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	if err := sc.SecureConnection(ctx, s.br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := sc.SecureLogin(ctx, password); err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestSecureLoginDefeatsEavesdropper(t *testing.T) {
	s := newSecureStack(t)
	eve := attack.NewEavesdropper(s.net)
	s.join(t, "alice", "alice-secret-pw")
	if eve.SawString("alice-secret-pw") {
		t.Fatal("secure login leaked the password")
	}
	if eve.FrameCount() == 0 {
		t.Fatal("eavesdropper saw no traffic at all (tap broken)")
	}
}

func TestSecureMessagingDefeatsEavesdropper(t *testing.T) {
	s := newSecureStack(t)
	alice := s.join(t, "alice", "alice-secret-pw")
	bob := s.join(t, "bob", "bob-secret-pw")
	eve := attack.NewEavesdropper(s.net)
	ctx := testCtx(t)
	if err := alice.SecureMsgPeer(ctx, bob.PeerID(), "math", "my-private-note"); err != nil {
		t.Fatal(err)
	}
	if eve.SawString("my-private-note") {
		t.Fatal("secure message readable on the wire")
	}
}

func TestSecureBrokerDefeatsAdvForgery(t *testing.T) {
	s := newSecureStack(t)
	alice := s.join(t, "alice", "alice-secret-pw")
	mallory := s.join(t, "mallory", "mallory-pw")
	ctx := testCtx(t)

	// Unsigned forgery: rejected outright.
	forged := attack.ForgePipeAdv(alice.PeerID(), "urn:jxta:pipe-evil", mallory.PeerID(), "math")
	if err := mallory.PublishAdvDoc(ctx, forged); err == nil {
		t.Fatal("secure broker accepted an unsigned forged advertisement")
	}

	// Signed-by-the-wrong-peer forgery: mallory signs with her own valid
	// credential, but she does not own alice's identity.
	forged2 := attack.ForgePipeAdv(alice.PeerID(), "urn:jxta:pipe-evil2", alice.PeerID(), "math")
	id := mallory.Identity()
	if err := signDoc(forged2, id); err != nil {
		t.Fatal(err)
	}
	if err := mallory.PublishAdvDoc(ctx, forged2); err == nil {
		t.Fatal("secure broker accepted a foreign-signed forged advertisement")
	}
}

func TestSecureLoginReplayDefeated(t *testing.T) {
	s := newSecureStack(t)
	eve := attack.NewEavesdropper(s.net)
	alice := s.join(t, "alice", "alice-secret-pw")
	bob := s.join(t, "bob", "bob-secret-pw")
	ctx := testCtx(t)
	brokerNode := simnet.NodeID(s.br.PeerID())
	captured := eve.FramesTo(brokerNode) // includes the secureLogin frame
	if err := alice.Logout(ctx); err != nil {
		t.Fatal(err)
	}

	raw, err := attack.NewRawNode(s.net, "attacker-node")
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range captured {
		_ = raw.Replay(brokerNode, frame)
	}
	// Give the replays time to be processed, then confirm alice stayed
	// offline: the single-use sid blocks re-authentication.
	time.Sleep(200 * time.Millisecond)
	online, err := bob.GetOnlinePeers(ctx, "math")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range online {
		if p.Username == "alice" {
			t.Fatal("replayed secureLogin re-authenticated alice")
		}
	}
}

// signDoc signs a document with a client identity's credential chain.
func signDoc(doc *xmldoc.Element, id *membership.Identity) error {
	return xdsig.Sign(doc, id.Keys, id.Chain...)
}
