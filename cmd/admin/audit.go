package main

import (
	"context"
	"encoding/base64"
	"encoding/hex"
	"flag"
	"fmt"
	"net/url"
	"os"
	"time"

	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/xmldoc"
)

// cmdAudit is the operator's window into the tamper-evident security
// audit log. `admin audit` tails a running broker's /debug/audit ring;
// `admin audit verify` walks a journal directory offline, re-deriving
// the hash chain and checking every signed checkpoint, and reports the
// exact first bad offset when anything was tampered with.
func cmdAudit(args []string) error {
	if len(args) > 0 && args[0] == "verify" {
		return cmdAuditVerify(args[1:])
	}
	return cmdAuditTail(args)
}

func cmdAuditTail(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	endpoint := fs.String("url", "localhost:9090", "audit endpoint (host:port or full URL)")
	kind := fs.String("kind", "", "only events of this kind (e.g. rate-limited, offense, login)")
	peer := fs.String("peer", "", "only events attributed to this peer ID")
	op := fs.String("op", "", "only events for this operation")
	traceID := fs.String("trace", "", "only events of the trace with this hex ID")
	since := fs.Uint64("since", 0, "only events with a sequence number greater than N")
	limit := fs.Int("limit", 0, "at most N events (0 = server default)")
	timeout := fs.Duration("timeout", 5*time.Second, "fetch timeout")
	fs.Parse(args)

	q := url.Values{}
	if *kind != "" {
		q.Set("kind", *kind)
	}
	if *peer != "" {
		q.Set("peer", *peer)
	}
	if *op != "" {
		q.Set("op", *op)
	}
	if *traceID != "" {
		q.Set("trace", *traceID)
	}
	if *since > 0 {
		q.Set("since", fmt.Sprintf("%d", *since))
	}
	if *limit > 0 {
		q.Set("limit", fmt.Sprintf("%d", *limit))
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	page, err := audit.Fetch(ctx, *endpoint, q)
	if err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	// The head/seq line is the trust point: note it down (or archive
	// it) and a later `admin audit verify -expect-seq/-expect-head`
	// makes rollback provable.
	fmt.Printf("seq %d  head %s\n", page.Seq, page.Head)
	fmt.Printf("%d records, %d checkpoints, %d lost; %d events matched\n",
		page.Records, page.Checkpoints, page.Lost, len(page.Events))
	for _, e := range page.Events {
		line := fmt.Sprintf("%8d  %s  %-14s %-18s %-14s %s",
			e.Seq, time.Unix(0, e.TimeNS).Format("15:04:05.000"), e.Kind, e.Peer, e.Op, e.Reason)
		if e.Trace != "" {
			line += "  trace=" + e.Trace
		}
		fmt.Println(line)
	}
	return nil
}

func cmdAuditVerify(args []string) error {
	fs := flag.NewFlagSet("audit verify", flag.ExitOnError)
	dir := fs.String("dir", "", "audit journal directory")
	anchor := fs.String("anchor", "", "anchor credential XML (e.g. deploy/anchor.cred.xml); checkpoint signers must chain to it")
	expectHead := fs.String("expect-head", "", "remembered chain head (hex or base64 as printed by admin audit / /debug/audit)")
	expectSeq := fs.Uint64("expect-seq", 0, "remembered chain sequence number")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("audit verify: -dir is required")
	}

	opts := audit.VerifyOptions{ExpectSeq: *expectSeq}
	if *anchor != "" {
		raw, err := os.ReadFile(*anchor)
		if err != nil {
			return err
		}
		doc, err := xmldoc.ParseBytes(raw)
		if err != nil {
			return fmt.Errorf("audit verify: parse %s: %w", *anchor, err)
		}
		anchorCred, err := cred.Parse(doc)
		if err != nil {
			return fmt.Errorf("audit verify: %s: %w", *anchor, err)
		}
		ts, err := cred.NewTrustStore(anchorCred)
		if err != nil {
			return fmt.Errorf("audit verify: %s: %w", *anchor, err)
		}
		opts.Trust = ts
	}
	if *expectHead != "" {
		head, err := parseHead(*expectHead)
		if err != nil {
			return err
		}
		opts.ExpectHead = head
	}

	report, err := audit.Verify(*dir, opts)
	if err != nil {
		return fmt.Errorf("audit verify: %w", err)
	}
	fmt.Printf("%d segments, %d records (%d events, %d checkpoints), last seq %d\n",
		report.Segments, report.Records, report.Events, report.Checkpoints, report.LastSeq)
	fmt.Printf("head %s\n", hex.EncodeToString(report.Head[:]))
	if report.Checkpoints > 0 {
		fmt.Printf("last checkpoint seq %d signed by %q; %d records unsealed after it\n",
			report.LastCheckpointSeq, report.Signer, report.Unsealed)
	}
	if !report.OK() {
		fmt.Printf("TAMPERED: %s\n", report.Fault)
		os.Exit(1)
	}
	fmt.Println("clean: hash chain and checkpoint signatures verify end to end")
	return nil
}

// parseHead accepts the chain head in either encoding it is printed in:
// hex (admin audit verify output) or base64 (/debug/audit pages).
func parseHead(s string) ([]byte, error) {
	if b, err := hex.DecodeString(s); err == nil && len(b) == audit.HashSize {
		return b, nil
	}
	if b, err := base64.StdEncoding.DecodeString(s); err == nil && len(b) == audit.HashSize {
		return b, nil
	}
	return nil, fmt.Errorf("audit verify: -expect-head is neither a %d-byte hex nor base64 digest", audit.HashSize)
}
