// Reconnect racing the relay drain: a peer that resumes its session
// WHILE the relay is pushing its queued backlog must neither lose a
// slice (the drain aborts, the items stay queued and follow the new
// session) nor surface one twice (redeliveries collapse in the replay
// guard below the application). Run with -race: the interesting bugs
// here are ordering windows between the login presence path, the shard
// drain worker, and the client's pipe re-binding.
package integration_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/waituntil"
)

func TestReconnectDuringRelayDrain(t *testing.T) {
	const rounds = 12
	net := simnet.NewNetwork(simnet.LinkProfile{})
	defer net.Close()

	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "g")
	db.Register("bob", "pw", "g")
	brKP, _ := keys.NewKeyPair()
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "race-broker", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, _ := dep.TrustStore()
	br, err := broker.New(broker.Config{
		Name: "race-broker", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if _, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: true,
	}); err != nil {
		t.Fatal(err)
	}
	rly, err := core.EnableBrokerRelay(br, core.RelayConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rly.Close()

	mkClient := func(name string, opts ...core.Option) *core.SecureClient {
		cl, err := client.New(net, membership.NewPSE("", 0), name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		clTrust, _ := dep.TrustStore()
		sc, err := core.NewSecureClient(cl, clTrust, opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx := ctxT(t, 30*time.Second)
		if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
			t.Fatalf("%s secureConnection: %v", name, err)
		}
		if err := sc.SecureLogin(ctx, "pw"); err != nil {
			t.Fatalf("%s secureLogin: %v", name, err)
		}
		return sc
	}
	alice := mkClient("alice")
	bob := mkClient("bob", core.WithReplayGuard(core.NewReplayGuard(time.Minute, 256)))
	bobEvents := events.NewCollector(bob.Bus())

	// Bob leaves; alice queues a backlog of distinct rounds for him.
	if err := bob.Logout(ctxT(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		direct, queued, err := alice.SecureMsgPeerGroupRelay(ctxT(t, 30*time.Second), "g", fmt.Sprintf("backlog-%d", i))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if direct != 0 || queued != 1 {
			t.Fatalf("round %d: direct=%d queued=%d", i, direct, queued)
		}
	}
	if got := rly.QueuedTotal(); got != rounds {
		t.Fatalf("relay holds %d slices, want %d", got, rounds)
	}

	// Bob returns — and reconnects AGAIN while the first login's drain
	// is still pushing. The second login races the shard worker: its
	// fresh session must keep (or re-trigger) the drain, and the replay
	// guard must absorb any redelivered overlap.
	relogin := func() {
		ctx := ctxT(t, 30*time.Second)
		if err := bob.SecureConnection(ctx, br.PeerID()); err != nil {
			t.Fatalf("re-secureConnection: %v", err)
		}
		if err := bob.SecureLogin(ctx, "pw"); err != nil {
			t.Fatalf("re-secureLogin: %v", err)
		}
	}
	relogin()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		relogin() // races the in-flight drain of the first re-login
	}()
	wg.Wait()

	// Every queued round must surface exactly once, none dropped.
	waituntil.True(15*time.Second, func() bool {
		return len(bobEvents.OfType(events.SecureMessage)) >= rounds && rly.QueuedTotal() == 0
	})
	got := bobEvents.OfType(events.SecureMessage)
	seen := map[string]int{}
	for _, e := range got {
		seen[string(e.Data)]++
	}
	for i := 0; i < rounds; i++ {
		key := fmt.Sprintf("backlog-%d", i)
		switch seen[key] {
		case 0:
			t.Errorf("%s dropped during reconnect-vs-drain race (relay %+v)", key, rly.Metrics())
		case 1:
		default:
			t.Errorf("%s delivered %d times", key, seen[key])
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if got := rly.QueuedTotal(); got != 0 {
		t.Fatalf("relay still holds %d slices", got)
	}
}
