package endpoint

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/simnet"
)

func TestMessageAccessors(t *testing.T) {
	m := NewMessage()
	m.Add("bin", []byte{1, 2})
	m.AddString("txt", "hello")
	m.AddXML("doc", []byte("<A></A>"))

	if b, ok := m.Get("bin"); !ok || !bytes.Equal(b, []byte{1, 2}) {
		t.Fatalf("Get(bin) = %v, %v", b, ok)
	}
	if s, ok := m.GetString("txt"); !ok || s != "hello" {
		t.Fatalf("GetString(txt) = %q, %v", s, ok)
	}
	if !m.Has("doc") || m.Has("nope") {
		t.Fatal("Has misbehaved")
	}
	if m.Size() != 2+5+7 {
		t.Fatalf("Size = %d", m.Size())
	}
	m.Set("txt", []byte("world"))
	if s, _ := m.GetString("txt"); s != "world" {
		t.Fatalf("after Set, txt = %q", s)
	}
	if n := m.Remove("txt"); n != 1 {
		t.Fatalf("Remove = %d", n)
	}
	if m.Has("txt") {
		t.Fatal("element survived Remove")
	}
}

func TestMessageCloneIndependent(t *testing.T) {
	m := NewMessage().Add("k", []byte("abc"))
	c := m.Clone()
	c.Elements[0].Data[0] = 'X'
	if b, _ := m.Get("k"); b[0] != 'a' {
		t.Fatal("Clone shares data with original")
	}
}

func TestMessageWireRoundTrip(t *testing.T) {
	m := NewMessage()
	m.AddTyped("a", "text/plain", []byte("alpha"))
	m.AddTyped("b", "application/octet-stream", nil)
	m.AddTyped("a", "text/xml", []byte("<dup/>")) // duplicate names allowed
	back, err := ParseMessage(m.Marshal())
	if err != nil {
		t.Fatalf("ParseMessage: %v", err)
	}
	if len(back.Elements) != 3 {
		t.Fatalf("elements = %d", len(back.Elements))
	}
	for i := range m.Elements {
		if m.Elements[i].Name != back.Elements[i].Name ||
			m.Elements[i].MimeType != back.Elements[i].MimeType ||
			!bytes.Equal(m.Elements[i].Data, back.Elements[i].Data) {
			t.Fatalf("element %d mismatch", i)
		}
	}
}

func TestParseMessageErrors(t *testing.T) {
	good := NewMessage().Add("k", []byte("v")).Marshal()
	cases := map[string][]byte{
		"empty":      nil,
		"bad magic":  []byte("XXXX\x00\x00"),
		"truncated":  good[:len(good)-1],
		"trailing":   append(append([]byte{}, good...), 0),
		"name cut":   good[:7],
		"high count": {'J', 'X', 'M', '1', 0xFF, 0xFF},
	}
	for name, data := range cases {
		if _, err := ParseMessage(data); err == nil {
			t.Errorf("ParseMessage(%s) succeeded, want error", name)
		}
	}
}

func TestPropertyMessageWire(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			m := NewMessage()
			for i := 0; i < r.Intn(6); i++ {
				name := make([]byte, r.Intn(10))
				r.Read(name)
				data := make([]byte, r.Intn(100))
				r.Read(data)
				m.AddTyped(string(name), "application/octet-stream", data)
			}
			vals[0] = reflect.ValueOf(m)
		},
	}
	prop := func(m *Message) bool {
		back, err := ParseMessage(m.Marshal())
		if err != nil || len(back.Elements) != len(m.Elements) {
			return false
		}
		for i := range m.Elements {
			if m.Elements[i].Name != back.Elements[i].Name ||
				!bytes.Equal(m.Elements[i].Data, back.Elements[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- Service tests ---

func pair(t *testing.T) (*simnet.Network, *Service, *Service) {
	t.Helper()
	n := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(n.Close)
	a, err := NewService(n, "urn:jxta:test-a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewService(n, "urn:jxta:test-b")
	if err != nil {
		t.Fatal(err)
	}
	return n, a, b
}

func TestSendToHandler(t *testing.T) {
	_, a, b := pair(t)
	got := make(chan string, 1)
	b.RegisterHandler("chat", func(from keys.PeerID, m *Message) *Message {
		s, _ := m.GetString("body")
		got <- string(from) + "/" + s
		return nil
	})
	if err := a.Send(b.PeerID(), "chat", NewMessage().AddString("body", "hi")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case v := <-got:
		if v != "urn:jxta:test-a/hi" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestRequestResponse(t *testing.T) {
	_, a, b := pair(t)
	b.RegisterHandler("echo", func(from keys.PeerID, m *Message) *Message {
		body, _ := m.Get("body")
		return NewMessage().Add("body", append([]byte("re:"), body...))
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := a.Request(ctx, b.PeerID(), "echo", NewMessage().AddString("body", "ping"))
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if body, _ := resp.GetString("body"); body != "re:ping" {
		t.Fatalf("body = %q", body)
	}
}

func TestRequestTimeout(t *testing.T) {
	_, a, b := pair(t)
	// No handler registered on b: message is dropped, request must time out.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := a.Request(ctx, b.PeerID(), "void", NewMessage())
	if err == nil {
		t.Fatal("Request succeeded with no handler")
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, a, b := pair(t)
	b.RegisterHandler("id", func(from keys.PeerID, m *Message) *Message {
		v, _ := m.Get("v")
		return NewMessage().Add("v", v)
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i byte) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			resp, err := a.Request(ctx, b.PeerID(), "id", NewMessage().Add("v", []byte{i}))
			if err != nil {
				t.Errorf("Request %d: %v", i, err)
				return
			}
			if v, _ := resp.Get("v"); len(v) != 1 || v[0] != i {
				t.Errorf("response %d carried %v", i, v)
			}
		}(byte(i))
	}
	wg.Wait()
}

func TestRelayThroughBroker(t *testing.T) {
	n := simnet.NewNetwork(simnet.ProfileLocal)
	defer n.Close()
	cl1, err := NewService(n, "urn:jxta:cl1")
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := NewService(n, "urn:jxta:cl2")
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewService(n, "urn:jxta:br")
	if err != nil {
		t.Fatal(err)
	}
	br.EnableRelaying(true)
	cl1.SetRelay(br.PeerID())

	// cl1 is NATed: it cannot open a direct path to cl2.
	n.SetReachable(simnet.NodeID(cl1.PeerID()), simnet.NodeID(cl2.PeerID()), false)

	got := make(chan keys.PeerID, 1)
	cl2.RegisterHandler("chat", func(from keys.PeerID, m *Message) *Message {
		got <- from
		return nil
	})
	if err := cl1.Send(cl2.PeerID(), "chat", NewMessage().AddString("body", "via relay")); err != nil {
		t.Fatalf("Send via relay: %v", err)
	}
	select {
	case from := <-got:
		// The original source must be preserved through the relay.
		if from != cl1.PeerID() {
			t.Fatalf("source after relay = %q", from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for relayed message")
	}
}

func TestRelayRequiresEnabledForwarder(t *testing.T) {
	n := simnet.NewNetwork(simnet.ProfileLocal)
	defer n.Close()
	cl1, _ := NewService(n, "urn:jxta:c1")
	cl2, _ := NewService(n, "urn:jxta:c2")
	lazy, _ := NewService(n, "urn:jxta:lazy") // relaying NOT enabled
	cl1.SetRelay(lazy.PeerID())
	n.SetReachable(simnet.NodeID(cl1.PeerID()), simnet.NodeID(cl2.PeerID()), false)

	delivered := make(chan struct{}, 1)
	cl2.RegisterHandler("chat", func(keys.PeerID, *Message) *Message {
		delivered <- struct{}{}
		return nil
	})
	if err := cl1.Send(cl2.PeerID(), "chat", NewMessage()); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case <-delivered:
		t.Fatal("non-relaying node forwarded a frame")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestNoRelayConfigured(t *testing.T) {
	n := simnet.NewNetwork(simnet.ProfileLocal)
	defer n.Close()
	cl1, _ := NewService(n, "urn:jxta:c1")
	cl2, _ := NewService(n, "urn:jxta:c2")
	n.SetReachable(simnet.NodeID(cl1.PeerID()), simnet.NodeID(cl2.PeerID()), false)
	if err := cl1.Send(cl2.PeerID(), "chat", NewMessage()); err == nil {
		t.Fatal("Send succeeded with no relay configured")
	}
}

func TestCounters(t *testing.T) {
	_, a, b := pair(t)
	done := make(chan struct{}, 1)
	b.RegisterHandler("x", func(keys.PeerID, *Message) *Message {
		done <- struct{}{}
		return nil
	})
	if err := a.Send(b.PeerID(), "x", NewMessage().AddString("k", "v")); err != nil {
		t.Fatal(err)
	}
	<-done
	tx, _, txB, _ := a.Counters()
	if tx != 1 || txB == 0 {
		t.Fatalf("a counters tx=%d txB=%d", tx, txB)
	}
	_, rx, _, rxB := b.Counters()
	if rx != 1 || rxB == 0 {
		t.Fatalf("b counters rx=%d rxB=%d", rx, rxB)
	}
}

func TestCloseStopsService(t *testing.T) {
	_, a, b := pair(t)
	a.Close()
	if err := a.Send(b.PeerID(), "x", NewMessage()); err == nil {
		t.Fatal("Send after Close succeeded")
	}
	ctx := context.Background()
	if _, err := a.Request(ctx, b.PeerID(), "x", NewMessage()); err == nil {
		t.Fatal("Request after Close succeeded")
	}
	a.Close() // idempotent
}

func TestUnregisterHandler(t *testing.T) {
	_, a, b := pair(t)
	hits := make(chan struct{}, 2)
	b.RegisterHandler("x", func(keys.PeerID, *Message) *Message {
		hits <- struct{}{}
		return nil
	})
	a.Send(b.PeerID(), "x", NewMessage())
	select {
	case <-hits:
	case <-time.After(5 * time.Second):
		t.Fatal("first send not delivered")
	}
	b.UnregisterHandler("x")
	a.Send(b.PeerID(), "x", NewMessage())
	select {
	case <-hits:
		t.Fatal("handler fired after unregister")
	case <-time.After(100 * time.Millisecond):
	}
}
