// Command benchmsg regenerates experiment F2 (paper Figure 2): the
// overhead of secureMsgPeer relative to sendMsgPeer as a function of
// message size, plus the A2 (envelope mode), A3 (group fan-out) and A5
// (link profile) ablations.
//
// Usage:
//
//	benchmsg [-sizes 16,256,4096,65536,1048576] [-iters 5]
//	         [-profiles lan,wan] [-modes full] [-group] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jxtaoverlay/internal/bench"
	"jxtaoverlay/internal/core"
)

func main() {
	sizesFlag := flag.String("sizes", "16,256,4096,65536,1048576", "payload sizes in bytes")
	iters := flag.Int("iters", 5, "messages per size per variant")
	profilesFlag := flag.String("profiles", "lan", "link profiles: local, lan, wan (A5 ablation)")
	modesFlag := flag.String("modes", "full", "envelope modes: full, sign, encrypt (A2 ablation)")
	group := flag.Bool("group", false, "also run the A3 group fan-out ablation")
	csvPath := flag.String("csv", "", "write the F2 series as CSV to this file")
	flag.Parse()

	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		fatal(err)
	}

	env, err := bench.NewEnv()
	if err != nil {
		fatal(err)
	}
	defer env.Close()

	var csvTable *bench.Table
	for _, modeName := range strings.Split(*modesFlag, ",") {
		mode, err := modeByName(strings.TrimSpace(modeName))
		if err != nil {
			fatal(err)
		}
		for _, profName := range strings.Split(*profilesFlag, ",") {
			profile, err := bench.ProfileByName(strings.TrimSpace(profName))
			if err != nil {
				fatal(err)
			}
			points, err := bench.RunMsgSeries(env, profile, sizes, *iters, mode)
			if err != nil {
				fatal(err)
			}
			table := &bench.Table{
				Title: fmt.Sprintf("F2: secureMsgPeer overhead vs size (mode=%s, profile=%s, iters=%d)",
					mode, profName, *iters),
				Header: []string{"size", "plain", "secure", "overhead%", "plain-bytes", "secure-bytes"},
			}
			for _, p := range points {
				table.AddRow(
					strconv.Itoa(p.Size),
					p.PlainTotal.String(),
					p.SecureTotal.String(),
					fmt.Sprintf("%.2f", p.OverheadPct),
					strconv.FormatUint(p.Plain.Bytes, 10),
					strconv.FormatUint(p.Secure.Bytes, 10),
				)
			}
			if err := table.Fprint(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			if csvTable == nil {
				csvTable = &bench.Table{Header: []string{"mode", "profile", "size", "plain_ns", "secure_ns", "overhead_pct"}}
			}
			for _, p := range points {
				csvTable.AddRow(mode.String(), profName,
					strconv.Itoa(p.Size),
					strconv.FormatInt(int64(p.PlainTotal), 10),
					strconv.FormatInt(int64(p.SecureTotal), 10),
					fmt.Sprintf("%.2f", p.OverheadPct),
				)
			}
		}
	}

	if *group {
		profile, _ := bench.ProfileByName("lan")
		results, err := bench.RunGroupFanOut(env, profile, []int{2, 4, 8}, *iters)
		if err != nil {
			fatal(err)
		}
		table := &bench.Table{
			Title:  "A3: group fan-out (secureMsgPeerGroup vs sendMsgPeerGroup, profile=lan)",
			Header: []string{"members", "plain", "secure", "overhead%"},
		}
		for _, r := range results {
			table.AddRow(strconv.Itoa(r.GroupSize), r.Plain.String(), r.Secure.String(),
				fmt.Sprintf("%.2f", r.OverheadPct))
		}
		if err := table.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *csvPath != "" && csvTable != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := csvTable.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Println("CSV series written to", *csvPath)
	}
	fmt.Println("paper reference (Figure 2): overhead is high for small payloads and falls steeply as transfer time dominates")
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func modeByName(name string) (core.Mode, error) {
	switch name {
	case "full":
		return core.ModeFull, nil
	case "sign":
		return core.ModeSign, nil
	case "encrypt":
		return core.ModeEncrypt, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmsg:", err)
	os.Exit(1)
}
