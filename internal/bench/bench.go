// Package bench is the measurement harness behind the paper's
// evaluation (§5). It assembles a complete deployment on the simulated
// fabric, measures primitive costs, and reprices wire time under
// arbitrary link profiles.
//
// Methodology (documented in EXPERIMENTS.md): operations run on a
// zero-latency network so the measured wall time is pure compute
// (crypto, XML, framing — the part the paper ran on a 1.20 GHz
// Pentium M). The frames and bytes each operation exchanged are counted
// from fabric statistics, and wire time is added analytically per link
// profile (frames × latency + bytes ÷ bandwidth). This keeps the
// reported shapes deterministic while preserving the compute/transport
// trade-off the paper measures.
package bench

import (
	"context"
	"fmt"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

// Env is a ready-to-measure deployment: administrator, one broker with
// the security extension attached (plain login still allowed, so both
// paths can be compared), and a local user database.
type Env struct {
	Net    *simnet.Network
	Dep    *core.Deployment
	Broker *broker.Broker
	Sec    *core.BrokerSecurity
	DB     *userdb.Store

	keyBits int
	users   int
}

// EnvOption tunes an Env.
type EnvOption func(*envConfig)

type envConfig struct {
	keyBits int
	dbIters int
}

// WithKeyBits selects the RSA modulus size for every entity (A1).
func WithKeyBits(bits int) EnvOption { return func(c *envConfig) { c.keyBits = bits } }

// WithDBIterations sets the PBKDF2 cost of the user database.
func WithDBIterations(n int) EnvOption { return func(c *envConfig) { c.dbIters = n } }

// NewEnv builds a deployment on a zero-latency fabric.
func NewEnv(opts ...EnvOption) (*Env, error) {
	cfg := envConfig{keyBits: keys.DefaultRSABits, dbIters: 64}
	for _, o := range opts {
		o(&cfg)
	}
	net := simnet.NewNetwork(simnet.ProfileLocal)
	dep, err := core.NewDeployment("bench-admin", cfg.keyBits)
	if err != nil {
		return nil, err
	}
	db := userdb.NewStoreIter(cfg.dbIters)
	brKP, err := keys.KeyPairBits(cfg.keyBits)
	if err != nil {
		return nil, err
	}
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "bench-broker", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	trust, err := dep.TrustStore()
	if err != nil {
		return nil, err
	}
	br, err := broker.New(broker.Config{
		Name:   "bench-broker",
		PeerID: brCred.Subject,
		Net:    net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		return nil, err
	}
	sec, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair:    brKP,
		Credential: brCred,
		Trust:      trust,
	})
	if err != nil {
		return nil, err
	}
	return &Env{Net: net, Dep: dep, Broker: br, Sec: sec, DB: db, keyBits: cfg.keyBits}, nil
}

// Close tears the deployment down.
func (e *Env) Close() {
	e.Broker.Close()
	e.Net.Close()
}

// AddUser registers a fresh benchmark user and returns its alias.
func (e *Env) AddUser(groups ...string) (alias, password string, err error) {
	e.users++
	alias = fmt.Sprintf("user%04d", e.users)
	password = "pw-" + alias
	if len(groups) == 0 {
		groups = []string{"bench"}
	}
	if err := e.DB.Register(alias, password, groups...); err != nil {
		return "", "", err
	}
	return alias, password, nil
}

// PlainClient creates a logged-out plain client for an alias.
func (e *Env) PlainClient(alias string) (*client.Client, error) {
	return client.New(e.Net, membership.NewNone(), alias)
}

// SecureClient creates a logged-out secure client for an alias. Key
// generation happens here — at "boot time" per §4.1 — so join
// measurements exclude it, as the paper's do.
func (e *Env) SecureClient(alias string, mode core.Mode) (*core.SecureClient, error) {
	cl, err := client.New(e.Net, membership.NewPSE("", e.keyBits), alias)
	if err != nil {
		return nil, err
	}
	trust, err := e.Dep.TrustStore()
	if err != nil {
		cl.Close()
		return nil, err
	}
	return core.NewSecureClient(cl, trust, core.WithMode(mode))
}

// TrustStore returns a fresh trust store for verification tasks.
func (e *Env) TrustStore() (*cred.TrustStore, error) { return e.Dep.TrustStore() }

// OpCost is the measured cost of one operation: compute wall time plus
// the traffic it generated.
type OpCost struct {
	Wall   time.Duration
	Frames uint64
	Bytes  uint64
}

// Total reprices the operation under a link profile: compute time plus
// per-frame latency plus serialization at the link rate.
func (c OpCost) Total(p simnet.LinkProfile) time.Duration {
	d := c.Wall + time.Duration(c.Frames)*p.Latency
	if p.Bandwidth > 0 {
		d += time.Duration(float64(c.Bytes) / float64(p.Bandwidth) * float64(time.Second))
	}
	return d
}

// Measure runs op on the env's zero-latency fabric and returns its cost.
func (e *Env) Measure(op func() error) (OpCost, error) {
	before := e.Net.Stats()
	start := time.Now()
	if err := op(); err != nil {
		return OpCost{}, err
	}
	wall := time.Since(start)
	after := e.Net.Stats()
	return OpCost{
		Wall:   wall,
		Frames: after.Sent - before.Sent,
		Bytes:  after.Bytes - before.Bytes,
	}, nil
}

// ProfileByName resolves the link profiles the bench tools accept.
func ProfileByName(name string) (simnet.LinkProfile, error) {
	switch name {
	case "local":
		return simnet.ProfileLocal, nil
	case "lan":
		return simnet.ProfileLAN, nil
	case "paperlan":
		return simnet.ProfilePaperLAN, nil
	case "wan":
		return simnet.ProfileWAN, nil
	default:
		return simnet.LinkProfile{}, fmt.Errorf("bench: unknown profile %q (local, lan, paperlan, wan)", name)
	}
}

// Overhead returns (secure-plain)/plain in percent.
func Overhead(plain, secure time.Duration) float64 {
	if plain <= 0 {
		return 0
	}
	return (float64(secure) - float64(plain)) / float64(plain) * 100
}

// avgCost averages per-field over n runs of measure.
func avgCost(n int, run func() (OpCost, error)) (OpCost, error) {
	if n < 1 {
		n = 1
	}
	var sumWall time.Duration
	var sumFrames, sumBytes uint64
	for i := 0; i < n; i++ {
		c, err := run()
		if err != nil {
			return OpCost{}, err
		}
		sumWall += c.Wall
		sumFrames += c.Frames
		sumBytes += c.Bytes
	}
	return OpCost{
		Wall:   sumWall / time.Duration(n),
		Frames: sumFrames / uint64(n),
		Bytes:  sumBytes / uint64(n),
	}, nil
}
