package audit

import (
	"bytes"
	"testing"
)

// FuzzAuditDecode pins the decoder's two safety properties under
// arbitrary input, the same contract the relay WAL's FuzzWALDecode
// holds (and CI corpus-ratchets):
//
//  1. no crash, no giant allocation — DecodeRecord either returns a
//     record or an error, never panics;
//  2. bijection — any input the decoder accepts re-encodes to the
//     identical bytes, so there is no byte sequence that decodes
//     validly but would hash differently when re-framed (a prerequisite
//     for the hash chain's "framed bytes are the canonical form").
func FuzzAuditDecode(f *testing.F) {
	// Seed with one valid record of each frame, plus mutations the
	// fuzzer can splice.
	var prev [HashSize]byte
	evRec, err := AppendRecord(nil, Record{
		Frame: FrameEvent, Seq: 1, Prev: prev, Time: 1234567890,
		Trace: 42, Kind: KindLogin, Peer: "urn:jxta:cbid-ab", Op: "secureLogin", Reason: "ok",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(evRec)
	ckRec, err := AppendRecord(nil, Record{
		Frame: FrameCheckpoint, Seq: 2, Prev: prev, Time: 1234567890,
		Checkpoint: []byte("<AuditCheckpoint>not actually signed</AuditCheckpoint>"),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ckRec)
	f.Add(append(evRec[:len(evRec):len(evRec)], ckRec...))
	f.Add(evRec[:len(evRec)/2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted record claims %d of %d bytes", n, len(data))
		}
		re, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("decode/encode not a bijection:\n in  %x\n out %x", data[:n], re)
		}
	})
}
