package bench

import (
	"context"
	"fmt"
	"time"

	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/simnet"
)

// JoinResult is one row of experiment E1 (§5: network-join overhead).
type JoinResult struct {
	KeyBits     int
	Plain       OpCost
	Secure      OpCost
	PlainTotal  time.Duration
	SecureTotal time.Duration
	OverheadPct float64
}

// RunJoin measures connect+login vs secureConnection+secureLogin, each
// averaged over iters fresh sessions, and reprices both under profile.
func RunJoin(env *Env, profile simnet.LinkProfile, iters int) (*JoinResult, error) {
	alias, password, err := env.AddUser()
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Only the join itself is timed (§5 measures "time overhead until a
	// client peer joins the network"); the logout that resets state for
	// the next iteration happens outside the measured window.
	plain, err := avgCost(iters, func() (OpCost, error) {
		cl, err := env.PlainClient(alias)
		if err != nil {
			return OpCost{}, err
		}
		defer cl.Close()
		cost, err := env.Measure(func() error {
			if err := cl.Connect(ctx, env.Broker.PeerID()); err != nil {
				return err
			}
			return cl.Login(ctx, password)
		})
		if err != nil {
			return OpCost{}, err
		}
		return cost, cl.Logout(ctx)
	})
	if err != nil {
		return nil, fmt.Errorf("bench: plain join: %w", err)
	}

	secure, err := avgCost(iters, func() (OpCost, error) {
		sc, err := env.SecureClient(alias, core.ModeFull)
		if err != nil {
			return OpCost{}, err
		}
		defer sc.Close()
		cost, err := env.Measure(func() error {
			if err := sc.SecureConnection(ctx, env.Broker.PeerID()); err != nil {
				return err
			}
			return sc.SecureLogin(ctx, password)
		})
		if err != nil {
			return OpCost{}, err
		}
		return cost, sc.Logout(ctx)
	})
	if err != nil {
		return nil, fmt.Errorf("bench: secure join: %w", err)
	}

	res := &JoinResult{
		KeyBits:     env.keyBits,
		Plain:       plain,
		Secure:      secure,
		PlainTotal:  plain.Total(profile),
		SecureTotal: secure.Total(profile),
	}
	res.OverheadPct = Overhead(res.PlainTotal, res.SecureTotal)
	return res, nil
}

// MsgPoint is one point of experiment F2 (Figure 2: secureMsgPeer
// overhead vs message size).
type MsgPoint struct {
	Size        int
	Plain       OpCost
	Secure      OpCost
	PlainTotal  time.Duration
	SecureTotal time.Duration
	OverheadPct float64
}

// RunMsgSeries measures sendMsgPeer vs secureMsgPeer end-to-end
// (send → receive event) for each payload size and reprices under
// profile. The same sessions are reused across sizes, as a chat
// application would.
func RunMsgSeries(env *Env, profile simnet.LinkProfile, sizes []int, iters int, mode core.Mode) ([]MsgPoint, error) {
	ctx := context.Background()

	// Plain pair.
	aliasA, pwA, err := env.AddUser()
	if err != nil {
		return nil, err
	}
	aliasB, pwB, err := env.AddUser()
	if err != nil {
		return nil, err
	}
	pa, err := env.PlainClient(aliasA)
	if err != nil {
		return nil, err
	}
	defer pa.Close()
	pb, err := env.PlainClient(aliasB)
	if err != nil {
		return nil, err
	}
	defer pb.Close()
	for _, step := range []func() error{
		func() error { return pa.Connect(ctx, env.Broker.PeerID()) },
		func() error { return pa.Login(ctx, pwA) },
		func() error { return pb.Connect(ctx, env.Broker.PeerID()) },
		func() error { return pb.Login(ctx, pwB) },
	} {
		if err := step(); err != nil {
			return nil, err
		}
	}
	plainGot := make(chan struct{}, 256)
	cancelPlain := pb.Bus().Subscribe(events.MessageReceived, func(events.Event) {
		plainGot <- struct{}{}
	})
	defer cancelPlain()

	// Secure pair.
	aliasC, pwC, err := env.AddUser()
	if err != nil {
		return nil, err
	}
	aliasD, pwD, err := env.AddUser()
	if err != nil {
		return nil, err
	}
	sa, err := env.SecureClient(aliasC, mode)
	if err != nil {
		return nil, err
	}
	defer sa.Close()
	sb, err := env.SecureClient(aliasD, mode)
	if err != nil {
		return nil, err
	}
	defer sb.Close()
	for _, step := range []func() error{
		func() error { return sa.SecureConnection(ctx, env.Broker.PeerID()) },
		func() error { return sa.SecureLogin(ctx, pwC) },
		func() error { return sb.SecureConnection(ctx, env.Broker.PeerID()) },
		func() error { return sb.SecureLogin(ctx, pwD) },
	} {
		if err := step(); err != nil {
			return nil, err
		}
	}
	secGot := make(chan struct{}, 256)
	cancelSec := sb.Bus().Subscribe(events.SecureMessage, func(events.Event) {
		secGot <- struct{}{}
	})
	defer cancelSec()

	// Warm both paths so pipe advertisement resolution (which happens on
	// the first message regardless of primitive) is out of the loop.
	if err := pa.SendMsgPeer(ctx, pb.PeerID(), "bench", "warm"); err != nil {
		return nil, err
	}
	if err := waitSignal(plainGot); err != nil {
		return nil, err
	}
	if err := sa.SecureMsgPeer(ctx, sb.PeerID(), "bench", "warm"); err != nil {
		return nil, err
	}
	if err := waitSignal(secGot); err != nil {
		return nil, err
	}

	var out []MsgPoint
	for _, size := range sizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte('a' + i%26)
		}
		text := string(payload)

		plain, err := avgCost(iters, func() (OpCost, error) {
			return env.Measure(func() error {
				if err := pa.SendMsgPeer(ctx, pb.PeerID(), "bench", text); err != nil {
					return err
				}
				return waitSignal(plainGot)
			})
		})
		if err != nil {
			return nil, fmt.Errorf("bench: plain msg size %d: %w", size, err)
		}
		secure, err := avgCost(iters, func() (OpCost, error) {
			return env.Measure(func() error {
				if err := sa.SecureMsgPeer(ctx, sb.PeerID(), "bench", text); err != nil {
					return err
				}
				return waitSignal(secGot)
			})
		})
		if err != nil {
			return nil, fmt.Errorf("bench: secure msg size %d: %w", size, err)
		}
		p := MsgPoint{
			Size:        size,
			Plain:       plain,
			Secure:      secure,
			PlainTotal:  plain.Total(profile),
			SecureTotal: secure.Total(profile),
		}
		p.OverheadPct = Overhead(p.PlainTotal, p.SecureTotal)
		out = append(out, p)
	}
	return out, nil
}

func waitSignal(ch <-chan struct{}) error {
	select {
	case <-ch:
		return nil
	case <-time.After(30 * time.Second):
		return fmt.Errorf("bench: timed out waiting for delivery")
	}
}

// GroupResult is one row of ablation A3 (group fan-out).
type GroupResult struct {
	GroupSize   int
	Plain       time.Duration
	Secure      time.Duration
	OverheadPct float64
}

// RunGroupFanOut measures sendMsgPeerGroup vs secureMsgPeerGroup for
// increasing group sizes under profile. Wire time is repriced as for the
// other experiments; iterated unicast means frames scale linearly with
// the group size, exactly the cost §4.3.1 accepts.
func RunGroupFanOut(env *Env, profile simnet.LinkProfile, groupSizes []int, iters int) ([]GroupResult, error) {
	ctx := context.Background()
	var out []GroupResult
	for _, n := range groupSizes {
		// Separate plain and secure groups so the member lists (and thus
		// the fan-out sets) stay disjoint and equal-sized.
		plainGroup := fmt.Sprintf("fanp%02d", n)
		secGroup := fmt.Sprintf("fans%02d", n)

		var plainSender *client.Client
		var secSender *core.SecureClient
		var closers []func()
		for i := 0; i < n; i++ {
			aliasP, pwP, err := env.AddUser(plainGroup)
			if err != nil {
				return nil, err
			}
			pcl, err := env.PlainClient(aliasP)
			if err != nil {
				return nil, err
			}
			closers = append(closers, pcl.Close)
			if err := pcl.Connect(ctx, env.Broker.PeerID()); err != nil {
				return nil, err
			}
			if err := pcl.Login(ctx, pwP); err != nil {
				return nil, err
			}
			if i == 0 {
				plainSender = pcl
			}

			aliasS, pwS, err := env.AddUser(secGroup)
			if err != nil {
				return nil, err
			}
			scl, err := env.SecureClient(aliasS, core.ModeFull)
			if err != nil {
				return nil, err
			}
			closers = append(closers, scl.Close)
			if err := scl.SecureConnection(ctx, env.Broker.PeerID()); err != nil {
				return nil, err
			}
			if err := scl.SecureLogin(ctx, pwS); err != nil {
				return nil, err
			}
			if i == 0 {
				secSender = scl
			}
		}

		plain, err := avgCost(iters, func() (OpCost, error) {
			return env.Measure(func() error {
				_, err := plainSender.SendMsgPeerGroup(ctx, plainGroup, "fanout")
				return err
			})
		})
		if err != nil {
			return nil, err
		}
		secure, err := avgCost(iters, func() (OpCost, error) {
			return env.Measure(func() error {
				_, err := secSender.SecureMsgPeerGroup(ctx, secGroup, "fanout")
				return err
			})
		})
		if err != nil {
			return nil, err
		}
		res := GroupResult{
			GroupSize: n,
			Plain:     plain.Total(profile),
			Secure:    secure.Total(profile),
		}
		res.OverheadPct = Overhead(res.Plain, res.Secure)
		out = append(out, res)
		for _, c := range closers {
			c()
		}
	}
	return out, nil
}
