// Package relay implements the broker-side store-and-forward delivery
// subsystem: per-recipient wires (round slices cut by the broker from
// one uploaded ModeGroup round) are delivered immediately to online
// peers and queued — in bounded, TTL-expiring, per-peer FIFO queues —
// for offline ones, then drained by sharded delivery workers when the
// peer's presence comes back (login events on the events.Bus).
//
// The relay is deliberately ignorant of cryptography: payloads are
// opaque bytes. Everything that makes a queued slice safe to hold at an
// untrusted intermediary — the signed recipient binding, the body
// digest, the single-use round nonce — lives inside the payload and is
// enforced by the recipient (core.OpenSlice). A compromised relay can
// drop or delay traffic; it cannot read, re-target or replay it (see
// SECURITY.md, "Store-and-forward trust model").
package relay

import (
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
)

// Item is one undelivered payload addressed to one recipient.
type Item struct {
	// To is the recipient peer.
	To keys.PeerID
	// From is the originating peer (diagnostics; the authenticated
	// sender is inside the payload).
	From keys.PeerID
	// Group is the overlay group the payload belongs to.
	Group string
	// Payload is the wire to hand to the recipient, opaque to the relay.
	Payload []byte
	// Expires is when the item stops being deliverable. The zero value
	// means "now + Config.TTL", stamped at submission.
	Expires time.Time
}

// DeliverFunc hands one item to its recipient. A non-nil error means
// the recipient was not reached; the relay keeps (or re-queues) the
// item until its TTL runs out.
type DeliverFunc func(it Item) error

// OnlineFunc reports whether a peer is currently reachable for direct
// delivery.
type OnlineFunc func(id keys.PeerID) bool

// Config parameterizes a Relay.
type Config struct {
	// QueueCap bounds each peer's offline queue. On overflow the OLDEST
	// item is dropped (and counted) — newer traffic is the traffic a
	// returning peer still cares about. 0 = 64.
	QueueCap int
	// TTL is how long a queued item stays deliverable (0 = 2 minutes).
	// Note the tension with the recipients' replay-guard freshness
	// window: items held longer than that window would be rejected as
	// stale on delivery anyway, so the TTL should not exceed it.
	TTL time.Duration
	// Shards is the number of queue shards, each with one delivery
	// worker (0 = 8). Peers hash onto shards, so flushes for different
	// peers proceed in parallel while one peer's queue always drains in
	// order from a single worker.
	Shards int
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// Metrics is a snapshot of the relay's counters.
type Metrics struct {
	// DeliveredDirect counts items handed to online recipients without
	// queueing.
	DeliveredDirect uint64
	// DeliveredFlushed counts queued items delivered by a flush.
	DeliveredFlushed uint64
	// Enqueued counts items that entered an offline queue.
	Enqueued uint64
	// DroppedOverflow counts oldest-items dropped by full queues.
	DroppedOverflow uint64
	// Expired counts items whose TTL ran out before delivery.
	Expired uint64
	// DeliverErrors counts failed delivery attempts (the item is kept).
	DeliverErrors uint64
}

// Relay is the store-and-forward subsystem of one broker.
type Relay struct {
	cfg     Config
	deliver DeliverFunc
	online  OnlineFunc

	shards []*shard
	wg     sync.WaitGroup
	stop   chan struct{}
	closed atomic.Bool

	bus       *events.Bus // optional, set by BindBus; emits RelayFlushed
	busCancel func()      // unsubscribes from the bus; called by Close

	deliveredDirect  atomic.Uint64
	deliveredFlushed atomic.Uint64
	enqueued         atomic.Uint64
	droppedOverflow  atomic.Uint64
	expired          atomic.Uint64
	deliverErrors    atomic.Uint64
}

type shard struct {
	r       *Relay
	mu      sync.Mutex
	queues  map[keys.PeerID][]Item
	flushCh chan keys.PeerID
}

// New starts a relay. online gates direct delivery; deliver performs
// it. Both must be safe for concurrent use.
func New(cfg Config, online OnlineFunc, deliver DeliverFunc) *Relay {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 2 * time.Minute
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	r := &Relay{
		cfg:     cfg,
		deliver: deliver,
		online:  online,
		stop:    make(chan struct{}),
	}
	r.shards = make([]*shard, cfg.Shards)
	for i := range r.shards {
		s := &shard{r: r, queues: make(map[keys.PeerID][]Item), flushCh: make(chan keys.PeerID, 256)}
		r.shards[i] = s
		r.wg.Add(1)
		go s.work()
	}
	return r
}

// BindBus subscribes the relay to presence events so a peer's queue is
// drained the moment it logs (back) in, and lets the relay announce
// completed drains as events.RelayFlushed. It returns the unsubscribe
// function; Close also unsubscribes, so a bus-bound relay does not
// outlive its shutdown as a dead subscriber.
func (r *Relay) BindBus(bus *events.Bus) (cancel func()) {
	r.bus = bus
	cancel = bus.Subscribe(events.PresenceUpdate, func(e events.Event) {
		if e.Attr("status") == advert.StatusOnline {
			r.Flush(e.From)
		}
	})
	r.busCancel = cancel
	return cancel
}

func (r *Relay) shardOf(id keys.PeerID) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return r.shards[int(h.Sum32())%len(r.shards)]
}

// SubmitResult reports the disposition of one submitted item.
type SubmitResult int

const (
	// SubmitDropped means the relay is closed and the item was
	// discarded — it was neither delivered nor stored.
	SubmitDropped SubmitResult = iota
	// SubmitDirect means the item was handed to its online recipient
	// immediately.
	SubmitDirect
	// SubmitQueued means the item was stored for delivery at the
	// recipient's next login (or the armed retry).
	SubmitQueued
)

// Submit routes one item: direct delivery when the recipient is online
// (falling back to the queue when the send fails under it), the
// bounded queue otherwise. Callers must not report SubmitDropped items
// as pending — nothing will ever deliver them.
func (r *Relay) Submit(it Item) SubmitResult {
	if r.closed.Load() {
		return SubmitDropped
	}
	if it.Expires.IsZero() {
		it.Expires = r.cfg.Clock().Add(r.cfg.TTL)
	}
	if r.online(it.To) {
		if err := r.deliver(it); err == nil {
			r.deliveredDirect.Add(1)
			// A direct success proves the peer reachable: drain any
			// stragglers an earlier failed flush put back in its queue,
			// so they don't sit until TTL while new traffic flows past.
			r.Flush(it.To)
			return SubmitDirect
		}
		r.deliverErrors.Add(1)
	}
	s := r.shardOf(it.To)
	s.enqueue(it)
	// Close raced the enqueue: the workers are (or are about to be)
	// gone and nothing will drain this item, so don't report it queued.
	if r.closed.Load() {
		return SubmitDropped
	}
	// Close the enqueue-vs-login race: if the peer came online between
	// the check above and the enqueue, its login flush may already have
	// run and missed this item — re-trigger. Either the enqueue
	// happened before the flush drained (item delivered there) or this
	// flush sees it; no ordering loses the item.
	if r.online(it.To) {
		r.Flush(it.To)
	}
	return SubmitQueued
}

// retryDelay spaces the re-drain attempts armed after a delivery
// failure against a peer that is still online.
const retryDelay = 250 * time.Millisecond

// retryFlush re-drains a peer's queue after a short delay. Firing after
// Close is harmless: Flush no-ops on a closed relay.
func (r *Relay) retryFlush(id keys.PeerID) {
	time.AfterFunc(retryDelay, func() { r.Flush(id) })
}

// Flush schedules an asynchronous drain of the peer's queue on its
// shard worker. Draining attempts delivery in FIFO order and stops at
// the first failure (the peer went away again); expired items are
// discarded.
func (r *Relay) Flush(id keys.PeerID) {
	if r.closed.Load() {
		return
	}
	s := r.shardOf(id)
	s.mu.Lock()
	pending := len(s.queues[id]) > 0
	s.mu.Unlock()
	if !pending {
		return
	}
	select {
	case s.flushCh <- id:
	default:
		// Worker backlog: hand off without blocking the caller (which
		// may be the broker's login path).
		go func() {
			select {
			case s.flushCh <- id:
			case <-r.stop:
			}
		}()
	}
}

// QueueLen reports how many items are queued for a peer (expired items
// included until their lazy removal).
func (r *Relay) QueueLen(id keys.PeerID) int {
	s := r.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[id])
}

// QueuedTotal reports the total queued items across all peers.
func (r *Relay) QueuedTotal() int {
	total := 0
	for _, s := range r.shards {
		s.mu.Lock()
		for _, q := range s.queues {
			total += len(q)
		}
		s.mu.Unlock()
	}
	return total
}

// Metrics returns a snapshot of the counters.
func (r *Relay) Metrics() Metrics {
	return Metrics{
		DeliveredDirect:  r.deliveredDirect.Load(),
		DeliveredFlushed: r.deliveredFlushed.Load(),
		Enqueued:         r.enqueued.Load(),
		DroppedOverflow:  r.droppedOverflow.Load(),
		Expired:          r.expired.Load(),
		DeliverErrors:    r.deliverErrors.Load(),
	}
}

// Close stops the delivery workers. Queued items are abandoned.
func (r *Relay) Close() {
	if r.closed.Swap(true) {
		return
	}
	if r.busCancel != nil {
		r.busCancel()
	}
	close(r.stop)
	r.wg.Wait()
}

func (s *shard) enqueue(it Item) {
	now := s.r.cfg.Clock()
	s.mu.Lock()
	q := s.pruneLocked(it.To, now)
	if len(q) >= s.r.cfg.QueueCap {
		// Drop-oldest: the front of the FIFO is the stalest traffic.
		drop := len(q) - s.r.cfg.QueueCap + 1
		q = append(q[:0], q[drop:]...)
		s.r.droppedOverflow.Add(uint64(drop))
	}
	s.queues[it.To] = append(q, it)
	s.mu.Unlock()
	s.r.enqueued.Add(1)
}

// pruneLocked removes expired items wherever they sit in the peer's
// queue (items submitted with caller-set TTLs need not expire in FIFO
// order) and returns the surviving queue. Caller holds s.mu.
func (s *shard) pruneLocked(id keys.PeerID, now time.Time) []Item {
	q := s.queues[id]
	kept := q[:0]
	for _, it := range q {
		if now.After(it.Expires) {
			s.r.expired.Add(1)
			continue
		}
		kept = append(kept, it)
	}
	if len(kept) == 0 && q != nil {
		delete(s.queues, id)
		return nil
	}
	s.queues[id] = kept
	return kept
}

func (s *shard) work() {
	defer s.r.wg.Done()
	for {
		select {
		case <-s.r.stop:
			return
		case id := <-s.flushCh:
			s.drain(id)
		}
	}
}

// drain delivers the peer's queue in order: pop the front under the
// lock, deliver outside it (delivery does wire I/O), push back at the
// front and stop on failure.
func (s *shard) drain(id keys.PeerID) {
	flushed := 0
	for {
		now := s.r.cfg.Clock()
		s.mu.Lock()
		q := s.pruneLocked(id, now)
		if len(q) == 0 {
			s.mu.Unlock()
			break
		}
		it := q[0]
		s.queues[id] = q[1:]
		s.mu.Unlock()

		if err := s.r.deliver(it); err != nil {
			s.r.deliverErrors.Add(1)
			// Put the item back where it was. Usually the peer went away
			// again and the next presence event re-triggers the drain —
			// but a TRANSIENT failure against a still-online peer has no
			// such trigger, so arm a delayed retry; it re-enters this
			// path (re-arming) until delivery succeeds, the peer drops
			// offline, or the items expire.
			s.mu.Lock()
			s.queues[id] = append([]Item{it}, s.queues[id]...)
			s.mu.Unlock()
			if s.r.online(id) {
				s.r.retryFlush(id)
			}
			break
		}
		s.r.deliveredFlushed.Add(1)
		flushed++
	}
	if flushed > 0 && s.r.bus != nil {
		s.r.bus.Emit(events.Event{Type: events.RelayFlushed, From: id, Payload: map[string]string{
			"delivered": strconv.Itoa(flushed),
		}})
	}
}
