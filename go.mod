module jxtaoverlay

go 1.23
