package core

import (
	"context"
	"encoding/base64"
	"errors"
	"time"

	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/xdsig"
	"jxtaoverlay/internal/xmldoc"
)

// Credentials issued at secureLogin are proof of identity "until cr's
// expiration date" (§4.2.2 step 10). This file adds the natural
// companion primitive: secureRenew, which lets a client holding a
// still-valid credential obtain a fresh one by proof of key possession —
// no password retransmission, hence nothing new for an attacker to
// capture. The exchange reuses the extension's building blocks exactly
// as §6 prescribes for new primitives.

// OpSecureRenew is the broker operation implementing credential renewal.
const OpSecureRenew = "secureRenew"

// ErrRenewRejected is returned when the broker declines to renew.
var ErrRenewRejected = errors.New("core: credential renewal rejected")

// renewRequest is the signed renewal body.
func renewRequest(c *cred.Credential, nonce []byte) (*xmldoc.Element, error) {
	credDoc, err := c.Document()
	if err != nil {
		return nil, err
	}
	doc := xmldoc.New("SecureRenewRequest", "")
	doc.AddText("Nonce", base64.StdEncoding.EncodeToString(nonce))
	doc.AddText("Timestamp", time.Now().UTC().Format(time.RFC3339Nano))
	doc.Add(credDoc)
	return doc, nil
}

// SecureRenewCredential asks the connected broker for a fresh credential
// before the current one lapses. The request carries the current
// credential and is signed with the client key; the broker validates
// both and re-issues with a new validity window.
func (s *SecureClient) SecureRenewCredential(ctx context.Context) error {
	current := s.Identity().Credential
	if current == nil {
		return ErrNoCredential
	}
	s.mu.RLock()
	brCred := s.brokerCred
	s.mu.RUnlock()
	if brCred == nil {
		return ErrNoCredential
	}
	nonce, err := keys.RandomBytes(16)
	if err != nil {
		return err
	}
	doc, err := renewRequest(current, nonce)
	if err != nil {
		return err
	}
	sig, err := s.kp.Sign(doc.Canonical())
	if err != nil {
		return err
	}
	msg := endpoint.NewMessage().
		AddString(proto.ElemOp, OpSecureRenew).
		AddXML(proto.ElemBody, doc.Canonical()).
		Add(proto.ElemSig, sig)
	resp, err := s.Call(ctx, msg)
	if err != nil {
		return errors.Join(ErrRenewRejected, err)
	}
	credRaw, ok := resp.Get(proto.ElemCred)
	if !ok {
		return ErrRenewRejected
	}
	credDoc, err := xmldoc.ParseCanonical(credRaw)
	if err != nil {
		return ErrRenewRejected
	}
	fresh, err := cred.Parse(credDoc)
	if err != nil {
		return ErrRenewRejected
	}
	if !fresh.Key.Equal(s.kp.Public()) || fresh.Subject != s.PeerID() {
		return ErrCredUnexpected
	}
	if err := fresh.Verify(brCred.Key, time.Now()); err != nil {
		return ErrCredUnexpected
	}
	if fresh.NotAfter.Before(current.NotAfter) {
		return ErrCredUnexpected
	}
	// Install and re-arm the advertisement signer with the new chain.
	id := s.Identity()
	id.Credential = fresh
	id.Chain = []*cred.Credential{fresh, brCred}
	s.SetAdvSigner(func(doc *xmldoc.Element) error {
		return xdsig.Sign(doc, s.kp, fresh, brCred)
	})
	return nil
}

// handleSecureRenew is the broker side: validate the presented
// credential (own issuance, unexpired), the proof-of-possession
// signature, and the CBID binding, then re-issue.
func (bs *BrokerSecurity) handleSecureRenew(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
	body, ok := msg.Get(proto.ElemBody)
	if !ok {
		return proto.Fail(proto.ErrBadRequest)
	}
	sig, ok := msg.Get(proto.ElemSig)
	if !ok {
		return proto.Fail(proto.ErrBadRequest)
	}
	doc, err := xmldoc.ParseCanonical(body)
	if err != nil || doc.Name != "SecureRenewRequest" {
		return proto.Fail(proto.ErrBadRequest)
	}
	credDoc := doc.Child(cred.ElementName)
	if credDoc == nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	current, err := cred.Parse(credDoc)
	if err != nil {
		bs.auditAuth(audit.KindRenew, from, OpSecureRenew, proto.ErrBadCredential)
		return proto.Fail(proto.ErrBadCredential)
	}
	// Only credentials this broker issued, still within validity.
	if current.Issuer != bs.cfg.Credential.Subject {
		bs.auditAuth(audit.KindRenew, current.Subject, OpSecureRenew, proto.ErrBadCredential)
		return proto.Fail(proto.ErrBadCredential)
	}
	if err := current.Verify(bs.cfg.KeyPair.Public(), bs.now()); err != nil {
		bs.auditAuth(audit.KindRenew, current.Subject, OpSecureRenew, proto.ErrBadCredential)
		return proto.Fail(proto.ErrBadCredential)
	}
	// Proof of key possession over the whole request.
	if err := current.Key.Verify(body, sig); err != nil {
		bs.auditAuth(audit.KindRenew, current.Subject, OpSecureRenew, proto.ErrBadSignature)
		return proto.Fail(proto.ErrBadSignature)
	}
	if err := keys.VerifyCBID(current.Subject, current.Key); err != nil {
		bs.auditAuth(audit.KindRenew, current.Subject, OpSecureRenew, proto.ErrCBIDMismatch)
		return proto.Fail(proto.ErrCBIDMismatch)
	}
	ts, err := time.Parse(time.RFC3339Nano, doc.ChildText("Timestamp"))
	if err != nil || absDuration(bs.now().Sub(ts)) > 2*time.Minute {
		return proto.Fail(proto.ErrBadRequest)
	}
	fresh, err := bs.IssueClientCredential(current.Subject, current.SubjectName, current.Key)
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	freshDoc, err := fresh.Document()
	if err != nil {
		return proto.Fail(proto.ErrBadRequest)
	}
	bs.auditAuth(audit.KindRenew, current.Subject, OpSecureRenew, "ok")
	return proto.OK().AddXML(proto.ElemCred, freshDoc.Canonical())
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
