// Package discovery implements the local advertisement cache every JXTA
// peer maintains. Records keep both the parsed advertisement and the raw
// XML document: signature verification (xdsig) must run over the exact
// bytes that crossed the wire, not a re-serialization.
//
// Remote discovery — asking a broker for advertisements the local cache
// lacks — lives in the client/broker modules; this package is the shared
// storage layer.
package discovery

import (
	"errors"
	"sort"
	"sync"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/xmldoc"
)

// Record is one cached advertisement.
type Record struct {
	// Doc is the document exactly as received (signatures included).
	Doc *xmldoc.Element
	// Adv is the parsed payload.
	Adv advert.Advertisement
	// Received is when the record entered the cache.
	Received time.Time
}

// Expired reports whether the record has outlived its advertisement's
// lifetime at the given instant.
func (r *Record) Expired(now time.Time) bool {
	return now.Sub(r.Received) > r.Adv.Lifetime()
}

type cacheKey struct{ typ, id string }

// Cache is a concurrency-safe advertisement store with lazy expiry.
type Cache struct {
	mu   sync.RWMutex
	recs map[cacheKey]*Record
	now  func() time.Time
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{recs: make(map[cacheKey]*Record), now: time.Now}
}

// SetClock overrides the cache's time source (tests).
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Put parses and stores a document, replacing any record with the same
// (type, id). The stored Doc is a private clone.
func (c *Cache) Put(doc *xmldoc.Element) (advert.Advertisement, error) {
	adv, err := advert.Parse(doc)
	if err != nil {
		return nil, err
	}
	return adv, c.PutParsed(doc, adv)
}

// PutParsed stores a document whose parsed form the caller already has
// (the broker publish path parses exactly once — in its acceptance
// policy — and hands both forms here). adv must be the parse of doc.
func (c *Cache) PutParsed(doc *xmldoc.Element, adv advert.Advertisement) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs[cacheKey{adv.AdvType(), adv.AdvID()}] = &Record{
		Doc:      doc.Clone(),
		Adv:      adv,
		Received: c.now(),
	}
	return nil
}

// PutAdv serializes and stores an advertisement (unsigned path).
func (c *Cache) PutAdv(adv advert.Advertisement) error {
	doc, err := adv.Document()
	if err != nil {
		return err
	}
	_, err = c.Put(doc)
	return err
}

// ErrNotFound is returned by Lookup when no fresh record exists.
var ErrNotFound = errors.New("discovery: advertisement not found")

// Lookup returns the fresh record with the given type and id. Expired
// records are evicted and reported as missing.
func (c *Cache) Lookup(advType, id string) (*Record, error) {
	key := cacheKey{advType, id}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[key]
	if !ok {
		return nil, ErrNotFound
	}
	if rec.Expired(c.now()) {
		delete(c.recs, key)
		return nil, ErrNotFound
	}
	return rec, nil
}

// Find returns fresh records of the given type matching the predicate
// (nil matches all), sorted by AdvID for deterministic output.
func (c *Cache) Find(advType string, match func(advert.Advertisement) bool) []*Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var out []*Record
	for key, rec := range c.recs {
		if key.typ != advType {
			continue
		}
		if rec.Expired(now) {
			delete(c.recs, key)
			continue
		}
		if match == nil || match(rec.Adv) {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Adv.AdvID() < out[j].Adv.AdvID() })
	return out
}

// Remove deletes the record with the given type and id.
func (c *Cache) Remove(advType, id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.recs, cacheKey{advType, id})
}

// Sweep evicts every expired record and returns how many were removed.
func (c *Cache) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	n := 0
	for key, rec := range c.recs {
		if rec.Expired(now) {
			delete(c.recs, key)
			n++
		}
	}
	return n
}

// Len returns the number of records currently stored (including any not
// yet lazily expired).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.recs)
}
