// Package proto pins the wire vocabulary spoken between the Client and
// Broker Modules: endpoint service names, operation identifiers and
// message element names. Both modules (and the security extension in
// internal/core) import it, keeping the protocol in one place.
package proto

import "jxtaoverlay/internal/endpoint"

// Endpoint service names.
const (
	// BrokerService is the broker's shared input channel: every Client
	// Module primitive that involves the broker sends here.
	BrokerService = "overlay:broker"
	// ClientService receives broker pushes (propagated advertisements).
	ClientService = "overlay:client"
	// FileService serves chunked file downloads between client peers.
	FileService = "overlay:file"
	// TaskService serves the executable primitives (remote task calls).
	TaskService = "overlay:task"
	// SecureTaskService is the security extension's wrapper around
	// TaskService.
	SecureTaskService = "overlay:sectask"
)

// Common element names.
const (
	ElemOp      = "op"
	ElemOK      = "ok"
	ElemErr     = "err"
	ElemUser    = "user"
	ElemPass    = "pass"
	ElemGroup   = "group"
	ElemGroups  = "groups"
	ElemDesc    = "desc"
	ElemAdv     = "adv"
	ElemAdvType = "advtype"
	ElemAdvID   = "advid"
	ElemPeer    = "peer"
	ElemPeers   = "peers"
	ElemKeyword = "keyword"
	ElemBroker  = "broker"
	ElemBody    = "msg:body"

	// Security extension elements.
	ElemChallenge = "sec:chall"
	ElemSid       = "sec:sid"
	ElemSig       = "sec:sig"
	ElemCred      = "sec:cred"
	ElemCredChain = "sec:chain"
	ElemEnvelope  = "sec:env"

	// File transfer elements.
	ElemFileName  = "file:name"
	ElemFileChunk = "file:chunk"
	ElemFileData  = "file:data"
	ElemFileSize  = "file:size"
	ElemFileCount = "file:nchunks"
	ElemFileSum   = "file:digest"

	// Task execution elements.
	ElemTaskName = "task:name"
	ElemTaskArgs = "task:args"
	ElemTaskOut  = "task:out"

	// Relay (store-and-forward round delivery) elements.
	ElemRecipients  = "relay:rcpt"   // ordered recipient peer IDs, comma separated
	ElemRelayDirect = "relay:direct" // slices delivered immediately
	ElemRelayQueued = "relay:queued" // slices queued for offline peers
	// slices not accepted: recipients unknown to this broker (no session
	// record), or whose slice a federation hand-off also failed to ship
	ElemRelaySkipped = "relay:skipped"
	// slices handed off to the federation partner that owns the
	// recipient's presence (counted toward delivery alongside queued)
	ElemRelayHandoff = "relay:handoff"
	// slices refused because the sender or group is over its relay
	// queue quota
	ElemRelayQuota = "relay:quota"
	// fedRelaySlice addressing: recipient peer and expiry (unix nanos)
	// of one handed-off slice
	ElemRelayTo  = "relay:to"
	ElemRelayExp = "relay:exp"
	// fedPeerUp/fedPeerDown: start time (unix nanos) of the client
	// session the update describes. Delivery between brokers is
	// unordered, so receivers use it to discard updates a newer session
	// has already superseded.
	ElemFedSession = "fed:session"
	ElemAll        = "all" // listPeers: include offline peers
	// ElemTrace carries a message-lifecycle trace ID (hex, see
	// internal/trace) end to end: the sending client mints it, the
	// broker threads it through relay items and federation hand-offs,
	// and delivery pushes return it to the receiving client, so every
	// stage span of one message shares one ID. Absent = untraced;
	// brokers never reject a message over it.
	ElemTrace = "trace:id"

	// Presence-lease elements (session liveness). secureLogin responses
	// carry the granted lease identifier and its TTL in milliseconds;
	// the signed heartbeat body renews it. A broker that grants no
	// lease omits both (presence then never expires, the pre-liveness
	// behaviour).
	ElemLease    = "lease:id"
	ElemLeaseTTL = "lease:ttl"

	// ElemIdem carries a client-minted idempotency key on a mutating
	// operation. The broker remembers (peer, key) → response for a
	// dedup window, so a retry after an ambiguous timeout returns the
	// original response instead of executing the mutation twice.
	// Absent = no dedup (the pre-resilience behaviour).
	ElemIdem = "idem:key"

	// ElemRetryAfter is a broker backoff hint (milliseconds) attached
	// to rate-limited refusals: the soonest a retry could be admitted.
	// Advisory — clients still jitter around it.
	ElemRetryAfter = "retry:after"
)

// Broker operations (the Broker Module "functions" clients call).
const (
	OpConnect       = "connect"
	OpLogin         = "login"
	OpLogout        = "logout"
	OpSecureConnect = "secureConnection"
	OpSecureLogin   = "secureLogin"
	OpPublishAdv    = "publishAdv"
	OpLookupAdv     = "lookupAdv"
	OpLookupPipe    = "lookupPipe"
	OpListPeers     = "listPeers"
	OpGroupCreate   = "groupCreate"
	OpGroupJoin     = "groupJoin"
	OpGroupLeave    = "groupLeave"
	OpGroupList     = "groupList"
	OpFileSearch    = "fileSearch"
	// OpRelayRound uploads ONE sealed ModeGroup round for broker-side
	// per-recipient slicing and store-and-forward delivery.
	OpRelayRound = "relayRound"
)

// Client-side push operations (functions the broker invokes on clients).
const (
	OpAdvPush = "advPush"
	// OpSliceDeliver pushes one per-recipient round slice cut by the
	// broker relay (immediately, or from the offline queue at login).
	OpSliceDeliver = "sliceDeliver"
)

// File/task operations.
const (
	OpFileGet  = "fileGet"
	OpTaskExec = "taskExec"
)

// OK builds a success response.
func OK() *endpoint.Message {
	return endpoint.NewMessage().AddString(ElemOK, "1")
}

// Fail builds an error response with a stable error token.
func Fail(errToken string) *endpoint.Message {
	return endpoint.NewMessage().AddString(ElemOK, "0").AddString(ElemErr, errToken)
}

// IsOK splits a response into success flag and error token.
func IsOK(m *endpoint.Message) (bool, string) {
	if m == nil {
		return false, "no-response"
	}
	if ok, _ := m.GetString(ElemOK); ok == "1" {
		return true, ""
	}
	errToken, _ := m.GetString(ElemErr)
	if errToken == "" {
		errToken = "unknown"
	}
	return false, errToken
}

// Error tokens returned by the broker.
const (
	ErrAuthFailed     = "auth-failed"
	ErrNotLoggedIn    = "not-logged-in"
	ErrUnknownOp      = "unknown-op"
	ErrBadRequest     = "bad-request"
	ErrNotFound       = "not-found"
	ErrGroupExists    = "group-exists"
	ErrNoGroup        = "no-group"
	ErrSecureRequired = "secure-login-required"
	ErrSecurityOff    = "security-not-enabled"
	ErrBadSid         = "bad-session-id"
	ErrBadSignature   = "bad-signature"
	ErrBadCredential  = "bad-credential"
	ErrCBIDMismatch   = "cbid-mismatch"
	ErrUnsignedAdv    = "unsigned-advertisement"
	ErrRelayOff       = "relay-not-enabled"
	ErrBadRound       = "bad-round-wire"
	// ErrRelayQuota means the sender (or its group) has exhausted its
	// relay queue quota; distinct from ErrRelayOff so clients can back
	// off instead of treating the relay as down.
	ErrRelayQuota = "relay-quota-exceeded"
	// ErrRateLimited means admission control refused the operation: the
	// invoking credential exhausted its token bucket. The broker is
	// healthy and other credentials are unaffected; back off and retry.
	ErrRateLimited = "rate-limited"
	// ErrLeaseExpired means the heartbeat named a presence lease the
	// broker no longer holds — it expired (missed heartbeats) or was
	// superseded by a newer login. The session is gone: re-login
	// (secureConnection + secureLogin), don't retry the heartbeat.
	ErrLeaseExpired = "lease-expired"
)

// OpFedRelaySlice forwards one queued round slice broker-to-broker:
// the recipient's presence migrated to a federation partner, so the
// slice chases it there instead of expiring in the origin's queue.
const OpFedRelaySlice = "fedRelaySlice"
