package xdsig

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

var (
	adminKP  = mustKey(200)
	brokerKP = mustKey(201)
	clientKP = mustKey(202)
	mallory  = mustKey(203)
)

func mustKey(seed int64) *keys.KeyPair {
	kp, err := keys.KeyPairFrom(rand.New(rand.NewSource(seed)), keys.DefaultRSABits)
	if err != nil {
		panic(err)
	}
	return kp
}

type fixture struct {
	adm, br, cl *cred.Credential
	ts          *cred.TrustStore
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	adm, err := cred.SelfSigned(adminKP, "admin", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	brID, _ := keys.CBID(brokerKP.Public())
	br, err := cred.Issue(adminKP, adm.Subject, brID, "broker-1", cred.RoleBroker, brokerKP.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clID, _ := keys.CBID(clientKP.Public())
	cl, err := cred.Issue(brokerKP, br.Subject, clID, "alice", cred.RoleClient, clientKP.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := cred.NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{adm: adm, br: br, cl: cl, ts: ts}
}

func pipeAdv() *xmldoc.Element {
	return xmldoc.NewTree("PipeAdvertisement",
		xmldoc.New("Id", "urn:jxta:pipe-42"),
		xmldoc.New("Type", "JxtaUnicast"),
		xmldoc.New("Name", "msg/alice"),
	)
}

func TestSignVerify(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !IsSigned(doc) {
		t.Fatal("IsSigned = false after Sign")
	}
	res, err := Verify(doc)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Signer.SubjectName != "alice" {
		t.Fatalf("signer = %q", res.Signer.SubjectName)
	}
	if len(res.Chain) != 2 {
		t.Fatalf("chain length = %d", len(res.Chain))
	}
}

func TestSignPreservesDocumentType(t *testing.T) {
	// The key property vs JXTA's Base64 signed advertisements: the root
	// element name (the advertisement type) is still recognizable.
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if doc.Name != "PipeAdvertisement" {
		t.Fatalf("root element became %q", doc.Name)
	}
	if doc.ChildText("Id") != "urn:jxta:pipe-42" {
		t.Fatal("payload fields no longer directly accessible")
	}
}

func TestVerifyTrustedFullChain(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	res, err := VerifyTrusted(doc, f.ts, time.Now())
	if err != nil {
		t.Fatalf("VerifyTrusted: %v", err)
	}
	if res.Signer.Subject != f.cl.Subject {
		t.Fatal("unexpected signer subject")
	}
}

func TestVerifyDetectsTamper(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	// The forged-advertisement attack from §2.3: redirect the pipe.
	doc.Child("Id").SetText("urn:jxta:pipe-evil")
	if _, err := Verify(doc); err != ErrDigestMismatch {
		t.Fatalf("Verify tampered doc = %v, want ErrDigestMismatch", err)
	}
}

func TestVerifyDetectsSignatureSwap(t *testing.T) {
	f := newFixture(t)
	docA := pipeAdv()
	if err := Sign(docA, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	docB := xmldoc.NewTree("PipeAdvertisement",
		xmldoc.New("Id", "urn:jxta:pipe-other"),
		xmldoc.New("Type", "JxtaUnicast"),
		xmldoc.New("Name", "msg/mallory"),
	)
	// Graft A's signature onto B.
	docB.Add(docA.Child(SignatureElement).Clone())
	if _, err := Verify(docB); err == nil {
		t.Fatal("Verify accepted transplanted signature")
	}
}

func TestVerifyDetectsSignedInfoTamper(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	// Attacker rewrites the document AND fixes up the digest — the
	// SignedInfo signature must then fail.
	doc.Child("Id").SetText("urn:jxta:pipe-evil")
	body := StripSignature(doc)
	di := doc.Child(SignatureElement).Child("SignedInfo").Child("DigestValue")
	di.SetText(b64(keys.SHA256(body.Canonical())))
	if _, err := Verify(doc); err != ErrBadSignature {
		t.Fatalf("Verify = %v, want ErrBadSignature", err)
	}
}

func b64(b []byte) string {
	const tbl = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	var sb strings.Builder
	for len(b) >= 3 {
		sb.WriteByte(tbl[b[0]>>2])
		sb.WriteByte(tbl[(b[0]&0x3)<<4|b[1]>>4])
		sb.WriteByte(tbl[(b[1]&0xF)<<2|b[2]>>6])
		sb.WriteByte(tbl[b[2]&0x3F])
		b = b[3:]
	}
	switch len(b) {
	case 1:
		sb.WriteByte(tbl[b[0]>>2])
		sb.WriteByte(tbl[(b[0]&0x3)<<4])
		sb.WriteString("==")
	case 2:
		sb.WriteByte(tbl[b[0]>>2])
		sb.WriteByte(tbl[(b[0]&0x3)<<4|b[1]>>4])
		sb.WriteByte(tbl[(b[1]&0xF)<<2])
		sb.WriteString("=")
	}
	return sb.String()
}

func TestVerifyTrustedRejectsUntrustedChain(t *testing.T) {
	f := newFixture(t)
	// Mallory self-issues a credential and signs an advertisement. The
	// structural check passes, but the trusted check must fail.
	mID, _ := keys.CBID(mallory.Public())
	selfCred, err := cred.Issue(mallory, mID, mID, "mallory", cred.RoleClient, mallory.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	doc := pipeAdv()
	if err := Sign(doc, mallory, selfCred); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if _, err := Verify(doc); err != nil {
		t.Fatalf("structural Verify should pass: %v", err)
	}
	if _, err := VerifyTrusted(doc, f.ts, time.Now()); err == nil {
		t.Fatal("VerifyTrusted accepted self-issued chain")
	}
}

func TestVerifyTrustedRejectsCBIDMismatch(t *testing.T) {
	f := newFixture(t)
	// Broker (legitimately credentialed) issues a credential whose
	// subject ID does not match the enclosed key: receivers must reject.
	badCred, err := cred.Issue(brokerKP, f.br.Subject, "urn:jxta:cbid-0000000000000000000000000000dead", "alice", cred.RoleClient, clientKP.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	doc := pipeAdv()
	if err := Sign(doc, clientKP, badCred, f.br); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if _, err := VerifyTrusted(doc, f.ts, time.Now()); err == nil {
		t.Fatal("VerifyTrusted accepted CBID mismatch")
	}
}

func TestSignReplacesExistingSignature(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	doc.Child("Name").SetText("msg/alice-v2")
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatalf("re-Sign: %v", err)
	}
	if got := len(doc.ChildrenNamed(SignatureElement)); got != 1 {
		t.Fatalf("signature elements = %d, want 1", got)
	}
	if _, err := VerifyTrusted(doc, f.ts, time.Now()); err != nil {
		t.Fatalf("VerifyTrusted after re-sign: %v", err)
	}
}

func TestSignErrors(t *testing.T) {
	f := newFixture(t)
	if err := Sign(nil, clientKP, f.cl); err == nil {
		t.Fatal("Sign(nil) succeeded")
	}
	if err := Sign(pipeAdv(), clientKP); err == nil {
		t.Fatal("Sign without credential succeeded")
	}
	// Credential key mismatch: signing key is mallory's but credential
	// belongs to alice.
	if err := Sign(pipeAdv(), mallory, f.cl); err == nil {
		t.Fatal("Sign with mismatched credential succeeded")
	}
}

func TestVerifyErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := Verify(nil); err == nil {
		t.Fatal("Verify(nil) succeeded")
	}
	if _, err := Verify(pipeAdv()); err != ErrNoSignature {
		t.Fatal("Verify(unsigned) did not return ErrNoSignature")
	}

	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	alg := doc.Child(SignatureElement).Child("SignedInfo").Child("SignatureMethod")
	alg.SetText("rsa-md5") // downgrade attempt
	if _, err := Verify(doc); err != ErrAlgorithm {
		t.Fatalf("Verify with downgraded algorithm = %v, want ErrAlgorithm", err)
	}
}

func TestVerifyNoKeyInfo(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	doc.Child(SignatureElement).RemoveChildren("KeyInfo")
	if _, err := Verify(doc); err != ErrNoKeyInfo {
		t.Fatalf("Verify = %v, want ErrNoKeyInfo", err)
	}
}

func TestSignedDocumentSurvivesWire(t *testing.T) {
	// Serialize → parse → verify: what actually happens when an
	// advertisement crosses the network.
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	wire := doc.Canonical()
	back, err := xmldoc.ParseBytes(wire)
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	if _, err := VerifyTrusted(back, f.ts, time.Now()); err != nil {
		t.Fatalf("VerifyTrusted after wire round trip: %v", err)
	}
}

func TestStripSignature(t *testing.T) {
	f := newFixture(t)
	doc := pipeAdv()
	if err := Sign(doc, clientKP, f.cl, f.br); err != nil {
		t.Fatal(err)
	}
	bare := StripSignature(doc)
	if IsSigned(bare) {
		t.Fatal("StripSignature left a signature")
	}
	if !IsSigned(doc) {
		t.Fatal("StripSignature mutated the original")
	}
}
