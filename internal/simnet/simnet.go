// Package simnet is the in-memory network substrate the overlay runs on.
//
// The paper evaluates on a physical LAN with a deliberately low-end
// client machine. This repository replaces that testbed with a simulated
// network whose links have configurable latency, jitter, bandwidth and
// loss, plus partition and NAT-style reachability controls. Crypto cost
// is still paid natively by the caller's CPU; only wire time is modeled,
// which preserves the trade-off the paper measures (crypto overhead vs
// transport time).
//
// The package also exposes an analytic transfer-time model
// (LinkProfile.TransferTime) used by the benchmark harness to produce
// deterministic figures independent of scheduler noise.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// NodeID names an attachment point on the simulated network. The overlay
// maps peer IDs to node IDs one-to-one.
type NodeID string

// Packet is one datagram in flight. Payload is opaque to the network.
type Packet struct {
	From    NodeID
	To      NodeID
	Payload []byte
	SentAt  time.Time
}

// Handler receives delivered packets. Handlers run on delivery
// goroutines and must be safe for concurrent invocation.
type Handler func(Packet)

// Tap observes every packet at transmission time, before loss or
// delivery — exactly what a passive eavesdropper on the wire sees. The
// attack harness uses taps to demonstrate the paper's eavesdropping
// vulnerability.
type Tap func(Packet)

// LinkProfile describes one direction of a link.
type LinkProfile struct {
	// Latency is the fixed propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Bandwidth is the link rate in bytes per second; 0 means infinite.
	Bandwidth int64
	// Loss is the independent drop probability in [0, 1).
	Loss float64
}

// TransferTime returns the analytic one-way time for a payload of n
// bytes: latency plus serialization time at the link rate. Jitter and
// loss are excluded so the result is deterministic.
func (p LinkProfile) TransferTime(n int) time.Duration {
	d := p.Latency
	if p.Bandwidth > 0 {
		d += time.Duration(float64(n) / float64(p.Bandwidth) * float64(time.Second))
	}
	return d
}

// Canonical profiles used across examples, tests and benches.
var (
	// ProfileLocal is instantaneous delivery (unit tests).
	ProfileLocal = LinkProfile{}
	// ProfileLAN is a modern switched 100 Mb/s LAN.
	ProfileLAN = LinkProfile{Latency: 500 * time.Microsecond, Bandwidth: 12_500_000}
	// ProfilePaperLAN approximates the paper's testbed: a 100 Mb/s LAN
	// driven by a Java-era network stack, with ~1 ms effective
	// per-message latency. Calibrated so the compute/wire balance of the
	// join experiment matches the environment the paper reports
	// (EXPERIMENTS.md discusses the calibration).
	ProfilePaperLAN = LinkProfile{Latency: time.Millisecond, Bandwidth: 12_500_000}
	// ProfileWAN approximates a broadband Internet path.
	ProfileWAN = LinkProfile{Latency: 40 * time.Millisecond, Jitter: 5 * time.Millisecond, Bandwidth: 1_250_000}
	// ProfileLossy is a WAN path with 5% loss, for failure injection.
	ProfileLossy = LinkProfile{Latency: 40 * time.Millisecond, Jitter: 10 * time.Millisecond, Bandwidth: 1_250_000, Loss: 0.05}
)

// Errors reported by Send.
var (
	ErrClosed       = errors.New("simnet: network closed")
	ErrUnknownNode  = errors.New("simnet: unknown node")
	ErrNotAttached  = errors.New("simnet: destination not attached")
	ErrPartitioned  = errors.New("simnet: link partitioned")
	ErrNotReachable = errors.New("simnet: destination not directly reachable (NAT)")
)

// Stats are cumulative network counters.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

type linkKey struct{ from, to NodeID }

// Network is the simulated fabric. The zero value is not usable; create
// networks with NewNetwork or NewNetworkSeeded.
type Network struct {
	mu       sync.RWMutex
	nodes    map[NodeID]Handler
	def      LinkProfile
	links    map[linkKey]LinkProfile
	blocked  map[linkKey]bool
	nat      map[linkKey]bool // true = NOT directly reachable
	taps     []Tap
	rngMu    sync.Mutex
	rng      *rand.Rand
	wg       sync.WaitGroup
	closed   bool
	sent     atomic.Uint64
	deliv    atomic.Uint64
	dropped  atomic.Uint64
	bytesTot atomic.Uint64
}

// NewNetwork creates a network whose default link is profile.
func NewNetwork(profile LinkProfile) *Network {
	return NewNetworkSeeded(profile, time.Now().UnixNano())
}

// NewNetworkSeeded creates a network with a deterministic jitter/loss
// random stream, for reproducible failure-injection tests.
func NewNetworkSeeded(profile LinkProfile, seed int64) *Network {
	return &Network{
		nodes:   make(map[NodeID]Handler),
		def:     profile,
		links:   make(map[linkKey]LinkProfile),
		blocked: make(map[linkKey]bool),
		nat:     make(map[linkKey]bool),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Attach registers a node and its delivery handler.
func (n *Network) Attach(id NodeID, h Handler) error {
	if h == nil {
		return errors.New("simnet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("simnet: node %q already attached", id)
	}
	n.nodes[id] = h
	return nil
}

// Detach removes a node; packets in flight to it are dropped on arrival.
func (n *Network) Detach(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

// Attached reports whether the node is currently attached.
func (n *Network) Attached(id NodeID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.nodes[id]
	return ok
}

// SetLink sets the profile for both directions between a and b.
func (n *Network) SetLink(a, b NodeID, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{a, b}] = p
	n.links[linkKey{b, a}] = p
}

// SetLinkOneWay sets the profile for the a→b direction only.
func (n *Network) SetLinkOneWay(a, b NodeID, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{a, b}] = p
}

// Profile returns the effective profile for the a→b direction.
func (n *Network) Profile(a, b NodeID) LinkProfile {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if p, ok := n.links[linkKey{a, b}]; ok {
		return p
	}
	return n.def
}

// Partition blocks both directions between a and b (network split).
func (n *Network) Partition(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[linkKey{a, b}] = true
	n.blocked[linkKey{b, a}] = true
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, linkKey{a, b})
	delete(n.blocked, linkKey{b, a})
}

// SetReachable marks whether from can open a direct path to to. NATed
// client peers are modeled by marking client↔client pairs unreachable;
// brokers stay reachable and relay for them, as in JXTA-Overlay.
func (n *Network) SetReachable(from, to NodeID, reachable bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reachable {
		delete(n.nat, linkKey{from, to})
	} else {
		n.nat[linkKey{from, to}] = true
	}
}

// AddTap registers a passive wire observer.
func (n *Network) AddTap(t Tap) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.taps = append(n.taps, t)
}

// Send transmits payload from→to. It returns synchronously; delivery
// happens after the modeled wire time on a separate goroutine. The
// payload is copied, so callers may reuse their buffer.
func (n *Network) Send(from, to NodeID, payload []byte) error {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrClosed
	}
	if _, ok := n.nodes[from]; !ok {
		n.mu.RUnlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if _, ok := n.nodes[to]; !ok {
		n.mu.RUnlock()
		return fmt.Errorf("%w: %q", ErrNotAttached, to)
	}
	if n.blocked[linkKey{from, to}] {
		n.mu.RUnlock()
		return fmt.Errorf("%w: %q->%q", ErrPartitioned, from, to)
	}
	if n.nat[linkKey{from, to}] {
		n.mu.RUnlock()
		return fmt.Errorf("%w: %q->%q", ErrNotReachable, from, to)
	}
	taps := n.taps
	profile, ok := n.links[linkKey{from, to}]
	if !ok {
		profile = n.def
	}
	// Register the in-flight delivery while still holding the lock so a
	// concurrent Close cannot slip between the closed check and wg.Add.
	n.wg.Add(1)
	n.mu.RUnlock()

	buf := make([]byte, len(payload))
	copy(buf, payload)
	pkt := Packet{From: from, To: to, Payload: buf, SentAt: time.Now()}

	n.sent.Add(1)
	n.bytesTot.Add(uint64(len(buf)))
	for _, t := range taps {
		t(pkt)
	}

	if profile.Loss > 0 && n.randFloat() < profile.Loss {
		n.dropped.Add(1)
		n.wg.Done()
		return nil // loss is silent, as on a real wire
	}

	delay := profile.TransferTime(len(buf))
	if profile.Jitter > 0 {
		delay += time.Duration(n.randFloat() * float64(profile.Jitter))
	}

	go func() {
		defer n.wg.Done()
		if delay > 0 {
			time.Sleep(delay)
		}
		// In-flight packets are delivered even if the network has since
		// closed: Close waits for them rather than dropping them.
		n.mu.RLock()
		h, ok := n.nodes[to]
		n.mu.RUnlock()
		if !ok {
			n.dropped.Add(1)
			return
		}
		n.deliv.Add(1)
		h(pkt)
	}()
	return nil
}

func (n *Network) randFloat() float64 {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return n.rng.Float64()
}

// Stats returns a snapshot of the cumulative counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:      n.sent.Load(),
		Delivered: n.deliv.Load(),
		Dropped:   n.dropped.Load(),
		Bytes:     n.bytesTot.Load(),
	}
}

// Close stops accepting sends and waits for in-flight deliveries.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}
