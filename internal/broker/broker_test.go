package broker

import (
	"context"
	"errors"
	"testing"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/proto"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/xmldoc"
)

func acceptAll(_ context.Context, u, p string) ([]string, error) {
	if p == "bad" {
		return nil, errors.New("denied")
	}
	return []string{"g1"}, nil
}

func newBroker(t *testing.T) (*Broker, *simnet.Network) {
	t.Helper()
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	b, err := New(Config{
		Name:   "b1",
		PeerID: keys.LegacyPeerID("b1"),
		Net:    net,
		DB:     AuthenticatorFunc(acceptAll),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b, net
}

// caller is a raw endpoint that speaks broker ops directly.
type caller struct {
	ep *endpoint.Service
	br keys.PeerID
	t  *testing.T
}

func newCaller(t *testing.T, net *simnet.Network, b *Broker, id string) *caller {
	t.Helper()
	ep, err := endpoint.NewService(net, keys.PeerID(id))
	if err != nil {
		t.Fatal(err)
	}
	return &caller{ep: ep, br: b.PeerID(), t: t}
}

func (c *caller) op(op string, kv ...string) *endpoint.Message {
	c.t.Helper()
	msg := endpoint.NewMessage().AddString(proto.ElemOp, op)
	for i := 0; i+1 < len(kv); i += 2 {
		msg.AddString(kv[i], kv[i+1])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := c.ep.Request(ctx, c.br, proto.BrokerService, msg)
	if err != nil {
		c.t.Fatalf("op %s: %v", op, err)
	}
	return resp
}

func (c *caller) login(user string) {
	c.t.Helper()
	resp := c.op(proto.OpLogin, proto.ElemUser, user, proto.ElemPass, "pw")
	if ok, errTok := proto.IsOK(resp); !ok {
		c.t.Fatalf("login failed: %s", errTok)
	}
}

func TestConfigValidation(t *testing.T) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	defer net.Close()
	bad := []Config{
		{},
		{Name: "x", PeerID: "p", Net: net}, // no DB
		{Name: "x", Net: net, DB: AuthenticatorFunc(acceptAll)},
		{PeerID: "p", Net: net, DB: AuthenticatorFunc(acceptAll)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestUnknownOp(t *testing.T) {
	b, net := newBroker(t)
	c := newCaller(t, net, b, "urn:jxta:c1")
	resp := c.op("fly-to-the-moon")
	if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrUnknownOp {
		t.Fatalf("resp = %v / %s", ok, errTok)
	}
}

func TestLoginAndRegistry(t *testing.T) {
	b, net := newBroker(t)
	c := newCaller(t, net, b, "urn:jxta:c1")
	c.login("alice")
	info, ok := b.Peer("urn:jxta:c1")
	if !ok || info.Username != "alice" || !info.Online {
		t.Fatalf("peer info = %+v, %v", info, ok)
	}
	if got := b.Groups().GroupsOf("urn:jxta:c1"); len(got) != 1 || got[0] != "g1" {
		t.Fatalf("groups = %v", got)
	}
}

func TestLoginFailure(t *testing.T) {
	b, net := newBroker(t)
	c := newCaller(t, net, b, "urn:jxta:c1")
	resp := c.op(proto.OpLogin, proto.ElemUser, "alice", proto.ElemPass, "bad")
	if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrAuthFailed {
		t.Fatalf("resp = %v / %s", ok, errTok)
	}
	if _, ok := b.Peer("urn:jxta:c1"); ok {
		t.Fatal("failed login registered the peer")
	}
	// Empty user is a bad request.
	resp = c.op(proto.OpLogin, proto.ElemPass, "pw")
	if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrBadRequest {
		t.Fatalf("resp = %v / %s", ok, errTok)
	}
}

func TestSecureRequiredRejectsPlainLogin(t *testing.T) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	defer net.Close()
	b, err := New(Config{
		Name: "b1", PeerID: keys.LegacyPeerID("b1"), Net: net,
		DB: AuthenticatorFunc(acceptAll), RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c := newCaller(t, net, b, "urn:jxta:c1")
	resp := c.op(proto.OpLogin, proto.ElemUser, "alice", proto.ElemPass, "pw")
	if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrSecureRequired {
		t.Fatalf("resp = %v / %s", ok, errTok)
	}
}

func TestOpsRequireLogin(t *testing.T) {
	b, net := newBroker(t)
	c := newCaller(t, net, b, "urn:jxta:c1")
	for _, op := range []string{
		proto.OpPublishAdv, proto.OpLookupAdv, proto.OpLookupPipe,
		proto.OpListPeers, proto.OpGroupCreate, proto.OpGroupJoin,
		proto.OpGroupLeave, proto.OpGroupList, proto.OpFileSearch,
	} {
		resp := c.op(op)
		if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrNotLoggedIn {
			t.Errorf("op %s before login: ok=%v err=%s", op, ok, errTok)
		}
	}
	_ = b
}

func TestLogoutUnregisters(t *testing.T) {
	b, net := newBroker(t)
	c := newCaller(t, net, b, "urn:jxta:c1")
	c.login("alice")
	c.op(proto.OpLogout)
	if info, _ := b.Peer("urn:jxta:c1"); info.Online {
		t.Fatal("peer still online after logout")
	}
	if len(b.OnlinePeers("g1")) != 0 {
		t.Fatal("peer still listed after logout")
	}
}

func TestPublishAdvMembership(t *testing.T) {
	b, net := newBroker(t)
	c := newCaller(t, net, b, "urn:jxta:c1")
	c.login("alice")

	// Publishing into the peer's own group works.
	own := &advert.Presence{PeerID: "urn:jxta:c1", Name: "alice", Group: "g1", Status: advert.StatusOnline, Seen: time.Now()}
	ownDoc, _ := own.Document()
	resp := c.op(proto.OpPublishAdv, proto.ElemAdv, string(ownDoc.Canonical()))
	if ok, errTok := proto.IsOK(resp); !ok {
		t.Fatalf("publish to own group failed: %s", errTok)
	}

	// Publishing into a foreign group is denied.
	foreign := &advert.Presence{PeerID: "urn:jxta:c1", Name: "alice", Group: "other", Status: advert.StatusOnline, Seen: time.Now()}
	fDoc, _ := foreign.Document()
	resp = c.op(proto.OpPublishAdv, proto.ElemAdv, string(fDoc.Canonical()))
	if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrNoGroup {
		t.Fatalf("publish to foreign group: ok=%v err=%s", ok, errTok)
	}

	// Garbage documents are rejected.
	resp = c.op(proto.OpPublishAdv, proto.ElemAdv, "<Garbage/>")
	if ok, _ := proto.IsOK(resp); ok {
		t.Fatal("garbage advertisement accepted")
	}
}

func TestAdvVerifierHook(t *testing.T) {
	b, net := newBroker(t)
	b.SetAdvVerifier(func(doc *xmldoc.Element) (advert.Advertisement, error) {
		return nil, errors.New("nothing is trusted")
	})
	c := newCaller(t, net, b, "urn:jxta:c1")
	c.login("alice")
	pres := &advert.Presence{PeerID: "urn:jxta:c1", Name: "alice", Group: "g1", Status: advert.StatusOnline, Seen: time.Now()}
	doc, _ := pres.Document()
	resp := c.op(proto.OpPublishAdv, proto.ElemAdv, string(doc.Canonical()))
	if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrUnsignedAdv {
		t.Fatalf("verifier not enforced: ok=%v err=%s", ok, errTok)
	}
}

func TestPublishParsesExactlyOnce(t *testing.T) {
	// The publish path's contract: one advert.Parse per accepted
	// advertisement, whether the parse happens in the acceptance policy
	// (verifier installed) or in the broker (no verifier).
	cases := []struct {
		name     string
		verifier AdvVerifier
	}{
		{"no-verifier", nil},
		{"parsing-verifier", func(doc *xmldoc.Element) (advert.Advertisement, error) {
			return advert.Parse(doc)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, net := newBroker(t)
			if tc.verifier != nil {
				b.SetAdvVerifier(tc.verifier)
			}
			c := newCaller(t, net, b, "urn:jxta:c1")
			c.login("alice")
			pres := &advert.Presence{PeerID: "urn:jxta:c1", Name: "alice", Group: "g1", Status: advert.StatusOnline, Seen: time.Now()}
			doc, _ := pres.Document()
			raw := string(doc.Canonical())
			before := advert.ParseCalls()
			resp := c.op(proto.OpPublishAdv, proto.ElemAdv, raw)
			if ok, errTok := proto.IsOK(resp); !ok {
				t.Fatalf("publish failed: %s", errTok)
			}
			if got := advert.ParseCalls() - before; got != 1 {
				t.Fatalf("publish ran advert.Parse %d times, want exactly 1", got)
			}
		})
	}
}

func TestLookupAdvAndGroupGating(t *testing.T) {
	b, net := newBroker(t)
	c1 := newCaller(t, net, b, "urn:jxta:c1")
	c1.login("alice")
	pres := &advert.Presence{PeerID: "urn:jxta:c1", Name: "alice", Group: "g1", Status: advert.StatusOnline, Seen: time.Now()}
	doc, _ := pres.Document()
	c1.op(proto.OpPublishAdv, proto.ElemAdv, string(doc.Canonical()))

	// A member can look it up.
	resp := c1.op(proto.OpLookupAdv, proto.ElemAdvType, advert.TypePresence, proto.ElemAdvID, pres.AdvID())
	if ok, errTok := proto.IsOK(resp); !ok {
		t.Fatalf("member lookup failed: %s", errTok)
	}
	// Missing records are not-found.
	resp = c1.op(proto.OpLookupAdv, proto.ElemAdvType, advert.TypePresence, proto.ElemAdvID, "nope")
	if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrNotFound {
		t.Fatalf("missing lookup: ok=%v err=%s", ok, errTok)
	}
}

func TestRegisterOpOverride(t *testing.T) {
	b, net := newBroker(t)
	b.RegisterOp("custom", func(from keys.PeerID, msg *endpoint.Message) *endpoint.Message {
		return proto.OK().AddString("echo", string(from))
	})
	c := newCaller(t, net, b, "urn:jxta:c9")
	resp := c.op("custom")
	if v, _ := resp.GetString("echo"); v != "urn:jxta:c9" {
		t.Fatalf("custom op echo = %q", v)
	}
}

func TestGroupOps(t *testing.T) {
	b, net := newBroker(t)
	c := newCaller(t, net, b, "urn:jxta:c1")
	c.login("alice")

	resp := c.op(proto.OpGroupCreate, proto.ElemGroup, "proj", proto.ElemDesc, "project")
	if ok, errTok := proto.IsOK(resp); !ok {
		t.Fatalf("groupCreate: %s", errTok)
	}
	resp = c.op(proto.OpGroupCreate, proto.ElemGroup, "proj")
	if ok, errTok := proto.IsOK(resp); ok || errTok != proto.ErrGroupExists {
		t.Fatalf("duplicate create: ok=%v err=%s", ok, errTok)
	}
	resp = c.op(proto.OpGroupJoin, proto.ElemGroup, "proj")
	if ok, _ := proto.IsOK(resp); !ok {
		t.Fatal("groupJoin failed")
	}
	if info, _ := b.Peer("urn:jxta:c1"); len(info.Groups) != 2 {
		t.Fatalf("peer groups = %v", info.Groups)
	}
	resp = c.op(proto.OpGroupLeave, proto.ElemGroup, "proj")
	if ok, _ := proto.IsOK(resp); !ok {
		t.Fatal("groupLeave failed")
	}
	resp = c.op(proto.OpGroupLeave, proto.ElemGroup, "proj")
	if ok, _ := proto.IsOK(resp); ok {
		t.Fatal("second groupLeave succeeded")
	}
	resp = c.op(proto.OpGroupList)
	if groups, _ := resp.GetString(proto.ElemGroups); groups == "" {
		t.Fatal("groupList empty")
	}
}

func TestOnlinePeersFilters(t *testing.T) {
	b, net := newBroker(t)
	c1 := newCaller(t, net, b, "urn:jxta:c1")
	c2 := newCaller(t, net, b, "urn:jxta:c2")
	c1.login("alice")
	c2.login("bob")
	if got := len(b.OnlinePeers("")); got != 2 {
		t.Fatalf("all online = %d", got)
	}
	if got := len(b.OnlinePeers("g1")); got != 2 {
		t.Fatalf("g1 online = %d", got)
	}
	if got := len(b.OnlinePeers("missing")); got != 0 {
		t.Fatalf("missing group online = %d", got)
	}
	b.UnregisterPeer("urn:jxta:c2")
	if got := len(b.OnlinePeers("g1")); got != 1 {
		t.Fatalf("after unregister = %d", got)
	}
}

func TestOpTimeoutDefault(t *testing.T) {
	b, _ := newBroker(t)
	if b.OpTimeout() <= 0 {
		t.Fatal("OpTimeout not defaulted")
	}
	if b.RequireSecureLogin() {
		t.Fatal("RequireSecureLogin default should be false")
	}
	if b.DB() == nil || b.Cache() == nil || b.Bus() == nil || b.Endpoint() == nil {
		t.Fatal("accessors returned nil")
	}
	if b.NodeID() != simnet.NodeID(b.PeerID()) {
		t.Fatal("NodeID mismatch")
	}
}
