package advert

import (
	"strings"
	"testing"
	"time"

	"jxtaoverlay/internal/xmldoc"
)

func roundTrip(t *testing.T, adv Advertisement) Advertisement {
	t.Helper()
	doc, err := adv.Document()
	if err != nil {
		t.Fatalf("Document: %v", err)
	}
	// Cross the wire: canonical bytes → parse → dispatch.
	back, err := xmldoc.ParseBytes(doc.Canonical())
	if err != nil {
		t.Fatalf("ParseBytes: %v", err)
	}
	out, err := Parse(back)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if out.AdvType() != adv.AdvType() || out.AdvID() != adv.AdvID() {
		t.Fatalf("round trip identity mismatch: %s/%s vs %s/%s",
			out.AdvType(), out.AdvID(), adv.AdvType(), adv.AdvID())
	}
	return out
}

func TestPeerRoundTrip(t *testing.T) {
	p := &Peer{
		PeerID:   "urn:jxta:cbid-0001",
		Name:     "alice",
		Desc:     "e-learning client",
		Services: []string{"msg", "file", "task"},
	}
	out := roundTrip(t, p).(*Peer)
	if out.Name != "alice" || len(out.Services) != 3 || out.Services[2] != "task" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	p := &Pipe{
		PipeID:   "urn:jxta:pipe-77",
		PipeType: PipeUnicast,
		Name:     "msg/alice",
		PeerID:   "urn:jxta:cbid-0001",
		Group:    "classroom-1",
	}
	out := roundTrip(t, p).(*Pipe)
	if out.Group != "classroom-1" || out.PipeType != PipeUnicast {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestPipeRejectsUnknownType(t *testing.T) {
	doc := xmldoc.New(TypePipe, "")
	doc.AddText("Id", "urn:jxta:pipe-1")
	doc.AddText("Type", "JxtaCarrierPigeon")
	doc.AddText("PeerID", "urn:jxta:cbid-1")
	if _, err := ParsePipe(doc); err == nil {
		t.Fatal("ParsePipe accepted unknown pipe type")
	}
}

func TestPresenceRoundTrip(t *testing.T) {
	p := &Presence{
		PeerID: "urn:jxta:cbid-0002",
		Name:   "bob",
		Group:  "lab",
		Status: StatusOnline,
		Seen:   time.Now().UTC().Truncate(time.Second),
	}
	out := roundTrip(t, p).(*Presence)
	if !out.Seen.Equal(p.Seen) || out.Status != StatusOnline {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestFileListRoundTrip(t *testing.T) {
	f := &FileList{
		PeerID: "urn:jxta:cbid-0003",
		Group:  "lab",
		Files: []FileEntry{
			{Name: "lecture.pdf", Size: 1 << 20, Digest: "aa11"},
			{Name: "notes.txt", Size: 42, Digest: "bb22"},
		},
	}
	out := roundTrip(t, f).(*FileList)
	if len(out.Files) != 2 || out.Files[0].Size != 1<<20 || out.Files[1].Name != "notes.txt" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	s := &Stats{
		PeerID: "urn:jxta:cbid-0004", Group: "lab",
		MsgsSent: 10, MsgsRecv: 20, BytesSent: 1000, BytesRecv: 2000, UptimeSec: 3600,
	}
	out := roundTrip(t, s).(*Stats)
	if out.MsgsRecv != 20 || out.UptimeSec != 3600 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestGroupRoundTrip(t *testing.T) {
	g := &Group{GroupID: "urn:jxta:group-9", Name: "lab", Desc: "lab group", Creator: "urn:jxta:cbid-1"}
	out := roundTrip(t, g).(*Group)
	if out.Name != "lab" || out.Creator != "urn:jxta:cbid-1" {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestParseDispatchUnknown(t *testing.T) {
	if _, err := Parse(xmldoc.New("MysteryAdvertisement", "")); err == nil {
		t.Fatal("Parse accepted unknown type")
	}
	if _, err := Parse(nil); err == nil {
		t.Fatal("Parse(nil) succeeded")
	}
}

func TestMissingMandatoryFields(t *testing.T) {
	cases := []Advertisement{
		&Peer{},
		&Pipe{PipeType: PipeUnicast},
		&Presence{},
		&FileList{},
		&Stats{},
		&Group{},
	}
	for _, adv := range cases {
		if _, err := adv.Document(); err == nil {
			t.Errorf("%s.Document() with empty fields succeeded", adv.AdvType())
		}
	}
	parseCases := map[string]*xmldoc.Element{
		TypePeer:     xmldoc.New(TypePeer, ""),
		TypePipe:     xmldoc.New(TypePipe, ""),
		TypePresence: xmldoc.New(TypePresence, ""),
		TypeFileList: xmldoc.New(TypeFileList, ""),
		TypeStats:    xmldoc.New(TypeStats, ""),
		TypeGroup:    xmldoc.New(TypeGroup, ""),
	}
	for name, doc := range parseCases {
		if _, err := Parse(doc); err == nil {
			t.Errorf("Parse(empty %s) succeeded", name)
		}
	}
}

func TestParseToleratesForeignChildren(t *testing.T) {
	// A signed advertisement carries a Signature child; parsers must not
	// choke on it.
	p := &Pipe{PipeID: "urn:jxta:pipe-1", PipeType: PipeUnicast, PeerID: "urn:jxta:cbid-1"}
	doc, err := p.Document()
	if err != nil {
		t.Fatal(err)
	}
	doc.Add(xmldoc.New("Signature", "opaque"))
	out, err := ParsePipe(doc)
	if err != nil {
		t.Fatalf("ParsePipe with Signature child: %v", err)
	}
	if out.PipeID != p.PipeID {
		t.Fatal("payload fields corrupted by foreign child")
	}
}

func TestNewID(t *testing.T) {
	a, err := NewID("pipe")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewID("pipe")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("NewID returned duplicate")
	}
	if !strings.HasPrefix(a, "urn:jxta:pipe-") {
		t.Fatalf("NewID format: %q", a)
	}
}

func TestAdvIDIncludesGroupWhereNeeded(t *testing.T) {
	// Per-group advertisements must not collide across groups.
	a := &Presence{PeerID: "p", Group: "g1", Status: StatusOnline, Seen: time.Now()}
	b := &Presence{PeerID: "p", Group: "g2", Status: StatusOnline, Seen: time.Now()}
	if a.AdvID() == b.AdvID() {
		t.Fatal("presence AdvID collides across groups")
	}
	fa := &FileList{PeerID: "p", Group: "g1"}
	fb := &FileList{PeerID: "p", Group: "g2"}
	if fa.AdvID() == fb.AdvID() {
		t.Fatal("file list AdvID collides across groups")
	}
}

func TestLifetimesPositive(t *testing.T) {
	advs := []Advertisement{
		&Peer{PeerID: "p"}, &Pipe{}, &Presence{}, &FileList{}, &Stats{}, &Group{},
	}
	for _, a := range advs {
		if a.Lifetime() <= 0 {
			t.Errorf("%s lifetime = %v", a.AdvType(), a.Lifetime())
		}
	}
}

func TestStatsRejectsMalformedCounter(t *testing.T) {
	s := &Stats{PeerID: "p", Group: "g"}
	doc, _ := s.Document()
	doc.Child("MsgsSent").Text = "many"
	if _, err := ParseStats(doc); err == nil {
		t.Fatal("ParseStats accepted non-numeric counter")
	}
}

func TestFileListRejectsMalformedSize(t *testing.T) {
	f := &FileList{PeerID: "p", Files: []FileEntry{{Name: "x", Size: 1}}}
	doc, _ := f.Document()
	doc.Child("File").Child("Size").Text = "big"
	if _, err := ParseFileList(doc); err == nil {
		t.Fatal("ParseFileList accepted non-numeric size")
	}
}
