package core

import (
	"runtime"

	"jxtaoverlay/internal/admission"
	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/telemetry"
	"jxtaoverlay/internal/xmldoc"
)

// RegisterBrokerTelemetry wires a broker deployment's counters into a
// telemetry registry as pull collectors: nothing here touches a hot
// path. Every subsystem already keeps its own cheap atomics (or derives
// the number on demand), and the closures registered below read them
// only when a snapshot is taken. Any of bs, rly, adm and aud may be nil
// — the matching metric families are simply not registered, so a
// plaintext broker or one without a relay exports exactly what it runs.
func RegisterBrokerTelemetry(reg *telemetry.Registry, b *broker.Broker, bs *BrokerSecurity, rly *relay.Relay, adm *admission.Limiter, aud *audit.Journal) {
	u := func(v uint64) float64 { return float64(v) }

	// Go runtime health. ReadMemStats on a snapshot pull is cheap at
	// scrape cadence (it stops the world for microseconds); the GC pause
	// total is cumulative so rate() gives pause time per second.
	reg.GaugeFunc("go_goroutines",
		"Goroutines currently live in this process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_gomaxprocs",
		"Scheduler parallelism (GOMAXPROCS).",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.GaugeFunc("go_heap_inuse_bytes",
		"Bytes in in-use heap spans.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapInuse) })
	reg.CounterFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.PauseTotalNs) / 1e9 })

	// Broker operation surface.
	reg.CounterFunc("broker_ops_dispatched_total",
		"Operations routed to a handler (rate-limited refusals included).",
		func() float64 { return u(b.Stats().OpsDispatched) })
	reg.CounterFunc("broker_ops_failed_total",
		"Operations answered with an error token.",
		func() float64 { return u(b.Stats().OpsFailed) })
	reg.CounterFunc("broker_ops_rate_limited_total",
		"Operations refused by admission control.",
		func() float64 { return u(b.Stats().OpsRateLimited) })
	reg.CounterFunc("broker_advs_published_total",
		"Advertisements accepted via publishAdv.",
		func() float64 { return u(b.Stats().AdvsPublished) })
	reg.CounterFunc("broker_fed_advs_accepted_total",
		"Federation-forwarded advertisements accepted into the cache.",
		func() float64 { return u(b.Stats().FedAdvsAccepted) })
	reg.CounterFunc("broker_fed_stale_presence_total",
		"Federation presence updates discarded by the session guard.",
		func() float64 { return u(b.Stats().FedStalePresence) })
	reg.GaugeFunc("broker_peers_online",
		"Peers currently logged in at this broker.",
		func() float64 { return float64(b.Stats().PeersOnline) })
	reg.GaugeFunc("broker_peers_known",
		"Session records held (online and offline).",
		func() float64 { return float64(b.Stats().PeersKnown) })
	reg.CounterFunc("broker_idem_deduped_total",
		"Mutating requests answered from the idempotency dedup window.",
		func() float64 { return u(b.Stats().IdemDeduped) })
	reg.GaugeFunc("broker_idem_entries",
		"Responses currently cached in the idempotency dedup window.",
		func() float64 { return float64(b.IdemEntries()) })

	// Security extension: replay guard, signature caches, parsers. The
	// replay and parse counters are process-wide aggregates (see their
	// packages); on a one-broker-per-process deployment they are broker
	// totals, in tests they aggregate every instance.
	reg.CounterFunc("core_replay_rejected_total",
		"Secure messages rejected as replays (digest/nonce already seen).",
		func() float64 { r, _ := ReplayStats(); return u(r) })
	reg.CounterFunc("core_stale_rejected_total",
		"Secure messages rejected as stale (outside freshness window).",
		func() float64 { _, s := ReplayStats(); return u(s) })
	reg.CounterFunc("xmldoc_parse_canonical_total",
		"ParseCanonical invocations.",
		func() float64 { c, _ := xmldoc.ParseCanonicalStats(); return u(c) })
	reg.CounterFunc("xmldoc_parse_failures_total",
		"ParseCanonical invocations that returned an error.",
		func() float64 { _, f := xmldoc.ParseCanonicalStats(); return u(f) })
	reg.CounterFunc("advert_parse_total",
		"Advertisement parses (cache misses in the signed-adv path).",
		func() float64 { return u(advert.ParseCalls()) })
	if bs != nil {
		// Liveness: presence leases and the heartbeat surface.
		reg.CounterFunc("core_leases_granted_total",
			"Presence leases minted at secureLogin.",
			func() float64 { return u(bs.LivenessStats().LeasesGranted) })
		reg.CounterFunc("core_leases_expired_total",
			"Leases lapsed by missed heartbeats (presence taken down).",
			func() float64 { return u(bs.LivenessStats().LeasesExpired) })
		reg.CounterFunc("core_heartbeats_renewed_total",
			"Heartbeats that renewed a live lease.",
			func() float64 { return u(bs.LivenessStats().HeartbeatsRenewed) })
		reg.CounterFunc("core_heartbeats_rejected_total",
			"Heartbeats refused (bad credential, replayed seq, lapsed lease).",
			func() float64 { return u(bs.LivenessStats().HeartbeatsRejected) })
		reg.GaugeFunc("core_leases",
			"Presence leases currently live.",
			func() float64 { return float64(bs.Leases()) })
		if vc := bs.VerifyCache(); vc != nil {
			reg.CounterFunc("xdsig_verify_cache_hits_total",
				"Signature verifications skipped by the verify cache.",
				func() float64 { h, _ := vc.Stats(); return u(h) })
			reg.CounterFunc("xdsig_verify_cache_misses_total",
				"Signature verifications that ran crypto (cache misses).",
				func() float64 { _, m := vc.Stats(); return u(m) })
		}
		if ts := bs.Trust(); ts != nil {
			reg.CounterFunc("cred_chain_cache_hits_total",
				"Credential chain validations answered from cache.",
				func() float64 { h, _ := ts.ChainCacheStats(); return u(h) })
			reg.CounterFunc("cred_chain_cache_misses_total",
				"Credential chain validations walked in full.",
				func() float64 { _, m := ts.ChainCacheStats(); return u(m) })
		}
	}

	// Relay (store-and-forward) queues.
	if rly != nil {
		reg.CounterFunc("relay_delivered_direct_total",
			"Slices handed to online recipients without queueing.",
			func() float64 { return u(rly.Metrics().DeliveredDirect) })
		reg.CounterFunc("relay_delivered_flushed_total",
			"Queued slices delivered by a flush.",
			func() float64 { return u(rly.Metrics().DeliveredFlushed) })
		reg.CounterFunc("relay_handed_off_total",
			"Slices forwarded to a federation partner broker.",
			func() float64 { return u(rly.Metrics().HandedOff) })
		reg.CounterFunc("relay_enqueued_total",
			"Slices that entered an offline queue.",
			func() float64 { return u(rly.Metrics().Enqueued) })
		reg.CounterFunc("relay_dropped_overflow_total",
			"Oldest slices dropped by full queues.",
			func() float64 { return u(rly.Metrics().DroppedOverflow) })
		reg.CounterFunc("relay_dropped_quota_total",
			"Submissions refused by sender/group queue quotas.",
			func() float64 { return u(rly.Metrics().DroppedQuota) })
		reg.CounterFunc("relay_expired_total",
			"Slices whose TTL ran out before delivery.",
			func() float64 { return u(rly.Metrics().Expired) })
		reg.CounterFunc("relay_deliver_errors_total",
			"Failed delivery attempts (the slice is kept).",
			func() float64 { return u(rly.Metrics().DeliverErrors) })
		reg.CounterFunc("relay_wal_errors_total",
			"Queue mutations the WAL failed to log.",
			func() float64 { return u(rly.Metrics().WALErrors) })
		reg.CounterFunc("relay_recovery_replayed_total",
			"Slices rebuilt into queues at startup.",
			func() float64 { return u(rly.Metrics().RecoveryReplayed) })
		reg.GaugeFunc("relay_queued",
			"Slices currently waiting in offline queues.",
			func() float64 { return float64(rly.QueuedTotal()) })
	}

	// Audit journal (tamper-evident security event log).
	if aud != nil {
		reg.CounterFunc("audit_records_total",
			"Event records appended to the audit journal.",
			func() float64 { return u(aud.Stats().Records) })
		reg.CounterFunc("audit_checkpoints_total",
			"Signed checkpoints sealed into the audit journal.",
			func() float64 { return u(aud.Stats().Checkpoints) })
		reg.CounterFunc("audit_lost_total",
			"Audit events dropped after a journal write failure.",
			func() float64 { return u(aud.Stats().Lost) })
		reg.GaugeFunc("audit_segments",
			"Segment files the audit journal spans.",
			func() float64 { return float64(aud.Stats().Segments) })
		reg.GaugeFunc("audit_seq",
			"Current audit chain sequence number.",
			func() float64 { return u(aud.Stats().Seq) })
	}

	// Admission control.
	if adm != nil {
		reg.CounterFunc("admission_allowed_total",
			"Operations admitted by the rate limiter.",
			func() float64 { return u(adm.Metrics().Allowed) })
		reg.CounterFunc("admission_limited_total",
			"Operations refused by the rate limiter.",
			func() float64 { return u(adm.Metrics().Limited) })
		reg.CounterFunc("admission_alerts_total",
			"Offense-streak threshold crossings (SecurityAlerts).",
			func() float64 { return u(adm.Metrics().Alerts) })
		reg.GaugeFunc("admission_tracked",
			"Credentials currently holding a token bucket.",
			func() float64 { return float64(adm.Metrics().Tracked) })
	}
}
