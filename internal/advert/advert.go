// Package advert defines the advertisement types a JXTA-Overlay network
// exchanges. Advertisements are XML metadata documents (xmldoc trees)
// describing peers, pipes, presence, shared files, statistics and
// groups; client peers broadcast one set per group they belong to, and
// brokers propagate them across boundaries.
//
// The paper's point of attack: since the original middleware neither
// signs nor verifies these documents, "any legitimate user may forge
// advertisements with no fear of reprisal". The security extension signs
// them with xdsig; this package stays signature-agnostic — parsers
// tolerate and preserve foreign child elements such as <Signature>.
package advert

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// Advertisement type names (XML root element names).
const (
	TypePeer     = "PeerAdvertisement"
	TypePipe     = "PipeAdvertisement"
	TypePresence = "PresenceAdvertisement"
	TypeFileList = "FileListAdvertisement"
	TypeStats    = "StatsAdvertisement"
	TypeGroup    = "GroupAdvertisement"
)

// DefaultLifetime is how long an advertisement stays fresh in discovery
// caches unless the type overrides it.
const DefaultLifetime = 15 * time.Minute

// Advertisement is the common behaviour of every advertisement type.
type Advertisement interface {
	// AdvType returns the XML root element name.
	AdvType() string
	// AdvID is the identity used for cache replacement: re-publishing an
	// advertisement with the same AdvID overwrites the previous copy.
	AdvID() string
	// Document serializes the advertisement to XML.
	Document() (*xmldoc.Element, error)
	// Lifetime is the cache freshness window.
	Lifetime() time.Duration
}

// ErrUnknownType is returned when parsing an unregistered root element.
var ErrUnknownType = errors.New("advert: unknown advertisement type")

// parseCalls counts Parse invocations. The broker publish path promises
// to parse each advertisement exactly once; tests assert that promise on
// this counter rather than trusting the call graph.
var parseCalls atomic.Uint64

// ParseCalls reports how many times Parse has run (process-wide).
func ParseCalls() uint64 { return parseCalls.Load() }

// Parse dispatches on the document's root element name.
func Parse(doc *xmldoc.Element) (Advertisement, error) {
	parseCalls.Add(1)
	if doc == nil {
		return nil, errors.New("advert: nil document")
	}
	switch doc.Name {
	case TypePeer:
		return ParsePeer(doc)
	case TypePipe:
		return ParsePipe(doc)
	case TypePresence:
		return ParsePresence(doc)
	case TypeFileList:
		return ParseFileList(doc)
	case TypeStats:
		return ParseStats(doc)
	case TypeGroup:
		return ParseGroup(doc)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, doc.Name)
	}
}

// NewID mints a random identifier with the given URN prefix, e.g.
// NewID("pipe") → "urn:jxta:pipe-<32 hex chars>".
func NewID(kind string) (string, error) {
	b, err := keys.RandomBytes(16)
	if err != nil {
		return "", err
	}
	return "urn:jxta:" + kind + "-" + hex.EncodeToString(b), nil
}

// --- PeerAdvertisement ---

// Peer describes a peer: its identifier, human name and the services it
// runs.
type Peer struct {
	PeerID   keys.PeerID
	Name     string
	Desc     string
	Services []string
}

func (p *Peer) AdvType() string         { return TypePeer }
func (p *Peer) AdvID() string           { return string(p.PeerID) }
func (p *Peer) Lifetime() time.Duration { return DefaultLifetime }

// Document implements Advertisement.
func (p *Peer) Document() (*xmldoc.Element, error) {
	if p.PeerID == "" {
		return nil, errors.New("advert: peer advertisement requires PeerID")
	}
	doc := xmldoc.New(TypePeer, "")
	doc.AddText("PeerID", string(p.PeerID))
	doc.AddText("Name", p.Name)
	doc.AddText("Desc", p.Desc)
	svcs := xmldoc.New("Services", "")
	for _, s := range p.Services {
		svcs.AddText("Service", s)
	}
	doc.Add(svcs)
	return doc, nil
}

// ParsePeer reads a PeerAdvertisement.
func ParsePeer(doc *xmldoc.Element) (*Peer, error) {
	if doc.Name != TypePeer {
		return nil, fmt.Errorf("advert: not a %s", TypePeer)
	}
	p := &Peer{
		PeerID: keys.PeerID(doc.ChildText("PeerID")),
		Name:   doc.ChildText("Name"),
		Desc:   doc.ChildText("Desc"),
	}
	if p.PeerID == "" {
		return nil, errors.New("advert: peer advertisement missing PeerID")
	}
	if svcs := doc.Child("Services"); svcs != nil {
		for _, s := range svcs.ChildrenNamed("Service") {
			p.Services = append(p.Services, s.Text)
		}
	}
	return p, nil
}

// --- PipeAdvertisement ---

// Pipe types.
const (
	PipeUnicast   = "JxtaUnicast"
	PipePropagate = "JxtaPropagate"
)

// Pipe describes a virtual communication channel endpoint: which peer
// hosts it, its identifier, and the group it serves. Client peers have
// one input pipe per group; brokers a single shared one.
type Pipe struct {
	PipeID   string
	PipeType string
	Name     string
	PeerID   keys.PeerID
	Group    string
}

func (p *Pipe) AdvType() string         { return TypePipe }
func (p *Pipe) AdvID() string           { return p.PipeID }
func (p *Pipe) Lifetime() time.Duration { return DefaultLifetime }

// Document implements Advertisement.
func (p *Pipe) Document() (*xmldoc.Element, error) {
	if p.PipeID == "" || p.PeerID == "" {
		return nil, errors.New("advert: pipe advertisement requires PipeID and PeerID")
	}
	doc := xmldoc.New(TypePipe, "")
	doc.AddText("Id", p.PipeID)
	doc.AddText("Type", p.PipeType)
	doc.AddText("Name", p.Name)
	doc.AddText("PeerID", string(p.PeerID))
	doc.AddText("Group", p.Group)
	return doc, nil
}

// ParsePipe reads a PipeAdvertisement.
func ParsePipe(doc *xmldoc.Element) (*Pipe, error) {
	if doc.Name != TypePipe {
		return nil, fmt.Errorf("advert: not a %s", TypePipe)
	}
	p := &Pipe{
		PipeID:   doc.ChildText("Id"),
		PipeType: doc.ChildText("Type"),
		Name:     doc.ChildText("Name"),
		PeerID:   keys.PeerID(doc.ChildText("PeerID")),
		Group:    doc.ChildText("Group"),
	}
	if p.PipeID == "" || p.PeerID == "" {
		return nil, errors.New("advert: pipe advertisement missing Id or PeerID")
	}
	if p.PipeType != PipeUnicast && p.PipeType != PipePropagate {
		return nil, fmt.Errorf("advert: unknown pipe type %q", p.PipeType)
	}
	return p, nil
}

// --- PresenceAdvertisement ---

// Presence statuses.
const (
	StatusOnline  = "online"
	StatusAway    = "away"
	StatusOffline = "offline"
)

// Presence is the periodic liveness notification a client broadcasts for
// each of its groups.
type Presence struct {
	PeerID keys.PeerID
	Name   string
	Group  string
	Status string
	Seen   time.Time
}

func (p *Presence) AdvType() string         { return TypePresence }
func (p *Presence) AdvID() string           { return string(p.PeerID) + "/" + p.Group }
func (p *Presence) Lifetime() time.Duration { return 2 * time.Minute }

// Document implements Advertisement.
func (p *Presence) Document() (*xmldoc.Element, error) {
	if p.PeerID == "" {
		return nil, errors.New("advert: presence requires PeerID")
	}
	doc := xmldoc.New(TypePresence, "")
	doc.AddText("PeerID", string(p.PeerID))
	doc.AddText("Name", p.Name)
	doc.AddText("Group", p.Group)
	doc.AddText("Status", p.Status)
	doc.AddText("Seen", p.Seen.UTC().Format(time.RFC3339))
	return doc, nil
}

// ParsePresence reads a PresenceAdvertisement.
func ParsePresence(doc *xmldoc.Element) (*Presence, error) {
	if doc.Name != TypePresence {
		return nil, fmt.Errorf("advert: not a %s", TypePresence)
	}
	seen, err := time.Parse(time.RFC3339, doc.ChildText("Seen"))
	if err != nil {
		return nil, fmt.Errorf("advert: presence Seen: %w", err)
	}
	p := &Presence{
		PeerID: keys.PeerID(doc.ChildText("PeerID")),
		Name:   doc.ChildText("Name"),
		Group:  doc.ChildText("Group"),
		Status: doc.ChildText("Status"),
		Seen:   seen,
	}
	if p.PeerID == "" {
		return nil, errors.New("advert: presence missing PeerID")
	}
	return p, nil
}

// --- FileListAdvertisement ---

// FileEntry is one shared file in a file-list advertisement.
type FileEntry struct {
	Name   string
	Size   int64
	Digest string // hex SHA-256 of content
}

// FileList announces the files a peer shares with a group.
type FileList struct {
	PeerID keys.PeerID
	Group  string
	Files  []FileEntry
}

func (f *FileList) AdvType() string         { return TypeFileList }
func (f *FileList) AdvID() string           { return string(f.PeerID) + "/" + f.Group }
func (f *FileList) Lifetime() time.Duration { return DefaultLifetime }

// Document implements Advertisement.
func (f *FileList) Document() (*xmldoc.Element, error) {
	if f.PeerID == "" {
		return nil, errors.New("advert: file list requires PeerID")
	}
	doc := xmldoc.New(TypeFileList, "")
	doc.AddText("PeerID", string(f.PeerID))
	doc.AddText("Group", f.Group)
	for _, fe := range f.Files {
		e := xmldoc.New("File", "")
		e.AddText("Name", fe.Name)
		e.AddText("Size", strconv.FormatInt(fe.Size, 10))
		e.AddText("Digest", fe.Digest)
		doc.Add(e)
	}
	return doc, nil
}

// ParseFileList reads a FileListAdvertisement.
func ParseFileList(doc *xmldoc.Element) (*FileList, error) {
	if doc.Name != TypeFileList {
		return nil, fmt.Errorf("advert: not a %s", TypeFileList)
	}
	f := &FileList{
		PeerID: keys.PeerID(doc.ChildText("PeerID")),
		Group:  doc.ChildText("Group"),
	}
	if f.PeerID == "" {
		return nil, errors.New("advert: file list missing PeerID")
	}
	for _, fe := range doc.ChildrenNamed("File") {
		size, err := strconv.ParseInt(fe.ChildText("Size"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("advert: file size: %w", err)
		}
		f.Files = append(f.Files, FileEntry{
			Name:   fe.ChildText("Name"),
			Size:   size,
			Digest: fe.ChildText("Digest"),
		})
	}
	return f, nil
}

// --- StatsAdvertisement ---

// Stats carries the periodic performance counters JXTA-Overlay peers
// publish (the middleware uses them for broker selection and monitoring).
type Stats struct {
	PeerID    keys.PeerID
	Group     string
	MsgsSent  uint64
	MsgsRecv  uint64
	BytesSent uint64
	BytesRecv uint64
	UptimeSec uint64
}

func (s *Stats) AdvType() string         { return TypeStats }
func (s *Stats) AdvID() string           { return string(s.PeerID) + "/" + s.Group }
func (s *Stats) Lifetime() time.Duration { return 5 * time.Minute }

// Document implements Advertisement.
func (s *Stats) Document() (*xmldoc.Element, error) {
	if s.PeerID == "" {
		return nil, errors.New("advert: stats requires PeerID")
	}
	doc := xmldoc.New(TypeStats, "")
	doc.AddText("PeerID", string(s.PeerID))
	doc.AddText("Group", s.Group)
	doc.AddText("MsgsSent", strconv.FormatUint(s.MsgsSent, 10))
	doc.AddText("MsgsRecv", strconv.FormatUint(s.MsgsRecv, 10))
	doc.AddText("BytesSent", strconv.FormatUint(s.BytesSent, 10))
	doc.AddText("BytesRecv", strconv.FormatUint(s.BytesRecv, 10))
	doc.AddText("UptimeSec", strconv.FormatUint(s.UptimeSec, 10))
	return doc, nil
}

// ParseStats reads a StatsAdvertisement.
func ParseStats(doc *xmldoc.Element) (*Stats, error) {
	if doc.Name != TypeStats {
		return nil, fmt.Errorf("advert: not a %s", TypeStats)
	}
	s := &Stats{
		PeerID: keys.PeerID(doc.ChildText("PeerID")),
		Group:  doc.ChildText("Group"),
	}
	if s.PeerID == "" {
		return nil, errors.New("advert: stats missing PeerID")
	}
	for _, f := range []struct {
		name string
		dst  *uint64
	}{
		{"MsgsSent", &s.MsgsSent}, {"MsgsRecv", &s.MsgsRecv},
		{"BytesSent", &s.BytesSent}, {"BytesRecv", &s.BytesRecv},
		{"UptimeSec", &s.UptimeSec},
	} {
		v, err := strconv.ParseUint(doc.ChildText(f.name), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("advert: stats %s: %w", f.name, err)
		}
		*f.dst = v
	}
	return s, nil
}

// --- GroupAdvertisement ---

// Group announces a peer group and who created it.
type Group struct {
	GroupID string
	Name    string
	Desc    string
	Creator keys.PeerID
}

func (g *Group) AdvType() string         { return TypeGroup }
func (g *Group) AdvID() string           { return g.GroupID }
func (g *Group) Lifetime() time.Duration { return time.Hour }

// Document implements Advertisement.
func (g *Group) Document() (*xmldoc.Element, error) {
	if g.GroupID == "" {
		return nil, errors.New("advert: group advertisement requires GroupID")
	}
	doc := xmldoc.New(TypeGroup, "")
	doc.AddText("GroupID", g.GroupID)
	doc.AddText("Name", g.Name)
	doc.AddText("Desc", g.Desc)
	doc.AddText("Creator", string(g.Creator))
	return doc, nil
}

// ParseGroup reads a GroupAdvertisement.
func ParseGroup(doc *xmldoc.Element) (*Group, error) {
	if doc.Name != TypeGroup {
		return nil, fmt.Errorf("advert: not a %s", TypeGroup)
	}
	g := &Group{
		GroupID: doc.ChildText("GroupID"),
		Name:    doc.ChildText("Name"),
		Desc:    doc.ChildText("Desc"),
		Creator: keys.PeerID(doc.ChildText("Creator")),
	}
	if g.GroupID == "" {
		return nil, errors.New("advert: group advertisement missing GroupID")
	}
	return g, nil
}
