package core

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/xmldoc"
)

// Mode selects how the secure messaging envelope protects a payload.
// The paper's primitive is sign-then-encrypt (ModeFull); the degraded
// modes exist for the ablation benchmarks (experiment A2) and for
// applications that only need one property.
type Mode byte

// Envelope modes.
const (
	// ModeFull is E_PK(m, S_SK(m)): privacy, integrity and source
	// authentication (the paper's secureMsgPeer).
	ModeFull Mode = 'F'
	// ModeSign sends m, S_SK(m) in the clear: integrity and source
	// authentication only.
	ModeSign Mode = 'S'
	// ModeEncrypt sends E_PK(m): privacy only, no authentication.
	ModeEncrypt Mode = 'E'
	// ModeGroup is the fan-out round format: one signed round header
	// (timestamp + nonce + recipient-set binding) shared by every
	// recipient, with only the per-recipient key wrap differing. See
	// SealGroup/OpenGroup in round.go.
	ModeGroup Mode = 'G'
	// ModeSlice is one recipient's cut of a ModeGroup round: the shared
	// ciphertext plus only that recipient's key wrap and a Merkle
	// inclusion proof binding the slice to the signed round header. A
	// relay produces slices from an uploaded round without holding keys
	// or plaintext. See SliceRound/OpenSlice in slice.go.
	ModeSlice Mode = 'L'
)

func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "sign+encrypt"
	case ModeSign:
		return "sign-only"
	case ModeEncrypt:
		return "encrypt-only"
	case ModeGroup:
		return "group-round"
	case ModeSlice:
		return "round-slice"
	default:
		return fmt.Sprintf("mode(%c)", byte(m))
	}
}

// Envelope errors.
var (
	ErrEnvelope      = errors.New("core: malformed secure envelope")
	ErrNotRecipient  = errors.New("core: envelope not addressed to this peer")
	ErrNoSignature   = errors.New("core: envelope carries no signature")
	ErrSigInvalid    = errors.New("core: envelope signature invalid")
	ErrBodyDigest    = errors.New("core: envelope body digest mismatch")
	ErrModeForbidden = errors.New("core: envelope mode not accepted by policy")
)

// Sealed is the transportable secure message.
//
// Wire layout: one mode byte followed by a block. For ModeSign the block
// is plaintext; for ModeFull/ModeEncrypt it is a wrapped-key encryption
// (keys.Envelope) of the same block. The block itself is
//
//	u32 header length | header (canonical <SecureMessage> XML) | raw body
//
// The header carries the sender, group, timestamp and the body's SHA-256
// digest; in signed modes it also carries the sender's signature over
// the header (digest included), which transitively authenticates the
// body. Keeping the body out of the XML avoids Base64 inflation, so the
// secure message adds only a small constant to the wire size — the
// property behind Figure 2's falling overhead curve.
type Sealed struct {
	Mode Mode
	wire []byte
}

// Bytes returns the wire form.
func (s *Sealed) Bytes() []byte { return s.wire }

func headerDoc(sender keys.PeerID, group string, bodyDigest []byte, at time.Time) *xmldoc.Element {
	doc := xmldoc.New("SecureMessage", "")
	doc.AddText("Sender", string(sender))
	doc.AddText("Group", group)
	doc.AddText("BodyDigest", base64.StdEncoding.EncodeToString(bodyDigest))
	doc.AddText("Time", at.UTC().Format(time.RFC3339Nano))
	return doc
}

func packBlock(header *xmldoc.Element, body []byte) []byte {
	h := header.Canonical()
	out := make([]byte, 0, 4+len(h)+len(body))
	out = binary.BigEndian.AppendUint32(out, uint32(len(h)))
	out = append(out, h...)
	out = append(out, body...)
	return out
}

func unpackBlock(block []byte, name string) (*xmldoc.Element, []byte, error) {
	if len(block) < 4 {
		return nil, nil, ErrEnvelope
	}
	hlen := int(binary.BigEndian.Uint32(block[:4]))
	if hlen < 0 || len(block)-4 < hlen {
		return nil, nil, ErrEnvelope
	}
	// Fast-path parse: headers are canonical bytes produced by the peer's
	// packBlock, so the parsed tree's canonical memos are seeded straight
	// from the wire — the CanonicalSkip/Canonical calls inside signature
	// verification become pointer reads. A header outside the canonical
	// subset is malformed by protocol definition. The tree aliases block,
	// which this receive path owns and never mutates.
	header, err := xmldoc.ParseCanonical(block[4 : 4+hlen])
	if err != nil || header.Name != name {
		return nil, nil, ErrEnvelope
	}
	return header, block[4+hlen:], nil
}

// Seal produces the secure envelope for body (paper §4.3.1 step 4:
// Cl1 → Cl2: E_PKCl2(m, S_SKCl1(m))). recipient may be nil only for
// ModeSign. signer may be nil only for ModeEncrypt.
func Seal(signer *keys.KeyPair, sender keys.PeerID, group string, body []byte, recipient *keys.PublicKey, mode Mode) (*Sealed, error) {
	header := headerDoc(sender, group, keys.SHA256(body), time.Now())
	if mode == ModeFull || mode == ModeSign {
		if signer == nil {
			return nil, errors.New("core: mode requires a signing key")
		}
		sig, err := signer.Sign(header.Canonical())
		if err != nil {
			return nil, err
		}
		header.AddText("Signature", base64.StdEncoding.EncodeToString(sig))
	}
	block := packBlock(header, body)
	switch mode {
	case ModeSign:
		return &Sealed{Mode: mode, wire: append([]byte{byte(mode)}, block...)}, nil
	case ModeFull, ModeEncrypt:
		if recipient == nil {
			return nil, errors.New("core: mode requires a recipient key")
		}
		env, err := recipient.Encrypt(block)
		if err != nil {
			return nil, err
		}
		return &Sealed{Mode: mode, wire: append([]byte{byte(mode)}, env.Marshal()...)}, nil
	default:
		return nil, fmt.Errorf("core: unknown envelope mode %q", mode)
	}
}

// Opened is a decrypted (but not yet authenticated) secure message.
// Callers must complete verification with VerifySignature before
// trusting Sender — that is the paper's step 7, which requires the
// sender's certified public key from its signed advertisement.
type Opened struct {
	Mode   Mode
	Sender keys.PeerID
	Group  string
	Body   []byte
	SentAt time.Time
	// Nonce is the single-use round nonce (ModeGroup only, nil
	// otherwise). Receivers feed it to ReplayGuard.CheckRound.
	Nonce []byte

	sigDoc   []byte          // canonical signed header bytes
	sig      []byte          // detached signature, nil for ModeEncrypt
	headerEl *xmldoc.Element // parsed header incl. signature (ModeGroup)
}

// HeaderXML returns the full canonical header bytes, signature included
// (ModeGroup only, nil otherwise). It exists for diagnostics and for the
// attack suite, which uses it to act as a malicious round recipient
// splicing a validly signed header into forged wires. Serialization is
// deferred to this call so the production receive path never pays it.
func (o *Opened) HeaderXML() []byte {
	if o.headerEl == nil {
		return nil
	}
	return o.headerEl.Canonical()
}

// Open decrypts and parses a secure envelope addressed to own. The body
// digest in the header is always checked; the header signature is
// deferred to VerifySignature.
func Open(own *keys.KeyPair, wire []byte) (*Opened, error) {
	if len(wire) < 2 {
		return nil, ErrEnvelope
	}
	mode := Mode(wire[0])
	payload := wire[1:]
	var block []byte
	switch mode {
	case ModeGroup:
		// Round envelopes carry extra semantics (single-use nonce,
		// recipient-set binding) that only make sense on surfaces that
		// track round replays. Callers must opt in via OpenGroup with a
		// guard; surfaces that never expect rounds (e.g. the secure task
		// service, which is strictly point-to-point) reject them here.
		return nil, fmt.Errorf("%w: group round requires OpenGroup", ErrEnvelope)
	case ModeSlice:
		// Same reasoning as ModeGroup: slices carry round semantics and
		// are only accepted by OpenSlice on round-tracking surfaces.
		return nil, fmt.Errorf("%w: round slice requires OpenSlice", ErrEnvelope)
	case ModeSign:
		block = payload
	case ModeFull, ModeEncrypt:
		if own == nil {
			return nil, ErrNotRecipient
		}
		env, err := keys.ParseEnvelope(payload)
		if err != nil {
			return nil, ErrEnvelope
		}
		block, err = own.Decrypt(env)
		if err != nil {
			return nil, ErrNotRecipient
		}
	default:
		return nil, fmt.Errorf("%w: mode %q", ErrEnvelope, byte(mode))
	}
	header, body, err := unpackBlock(block, "SecureMessage")
	if err != nil {
		return nil, err
	}
	wantDigest, err := base64.StdEncoding.DecodeString(header.ChildText("BodyDigest"))
	if err != nil {
		return nil, ErrEnvelope
	}
	if !keys.ConstantTimeEqual(keys.SHA256(body), wantDigest) {
		return nil, ErrBodyDigest
	}
	sentAt, err := time.Parse(time.RFC3339Nano, header.ChildText("Time"))
	if err != nil {
		return nil, ErrEnvelope
	}
	o := &Opened{
		Mode:   mode,
		Sender: keys.PeerID(header.ChildText("Sender")),
		Group:  header.ChildText("Group"),
		Body:   body,
		SentAt: sentAt,
	}
	if sigText := header.ChildText("Signature"); sigText != "" {
		sig, err := base64.StdEncoding.DecodeString(sigText)
		if err != nil {
			return nil, ErrEnvelope
		}
		o.sig = sig
		// Signed bytes are the header minus its Signature child —
		// serialized directly, no deep copy per message.
		o.sigDoc = header.CanonicalSkip("Signature")
	}
	return o, nil
}

// Signed reports whether the message carries a signature.
func (o *Opened) Signed() bool { return o.sig != nil }

// VerifySignature checks the sender signature against the certified
// public key the caller obtained from the sender's signed advertisement.
// The signature covers the header including the body digest, so a valid
// signature authenticates the body as well.
func (o *Opened) VerifySignature(senderKey *keys.PublicKey) error {
	if o.sig == nil {
		return ErrNoSignature
	}
	if err := senderKey.Verify(o.sigDoc, o.sig); err != nil {
		return ErrSigInvalid
	}
	return nil
}
