package core_test

import (
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"

	"context"
)

// TestSecureConnectionRejectsExpiredBrokerCredential: credentials carry
// a validity window ("until cr's expiration date", §4.2.2); a broker
// whose administrator-issued credential has lapsed must fail the
// legitimacy check even though the signature itself is genuine.
func TestSecureConnectionRejectsExpiredBrokerCredential(t *testing.T) {
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw", "g")

	brKP, _ := keys.NewKeyPair()
	// Validity so short the credential is stale by the time the client
	// checks it.
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "broker-1", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	trust, _ := dep.TrustStore()
	br, err := broker.New(broker.Config{
		Name: "broker-1", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(br.Close)
	if _, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the credential lapse

	cl, err := client.New(net, membership.NewPSE("", 0), "alice")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	clTrust, _ := dep.TrustStore()
	sc, err := core.NewSecureClient(cl, clTrust)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sc.SecureConnection(ctx, br.PeerID()); err == nil {
		t.Fatal("secureConnection accepted an expired broker credential")
	}
}

// TestClientCredentialValidityWindow: the credential issued at
// secureLogin carries the configured validity.
func TestClientCredentialValidityWindow(t *testing.T) {
	h := newSecureHarness(t, false)
	sc := h.secureClient("alice")
	h.join(sc, "pw-alice")
	crd := sc.Identity().Credential
	if crd == nil {
		t.Fatal("no credential")
	}
	ttl := time.Until(crd.NotAfter)
	if ttl <= 0 || ttl > core.DefaultCredValidity+time.Minute {
		t.Fatalf("credential validity = %v, want about %v", ttl, core.DefaultCredValidity)
	}
}
