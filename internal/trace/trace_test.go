package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplingDeterminism(t *testing.T) {
	// Same seed => same minted IDs and same sampled set; scenario runs
	// that fix a seed must capture identical traces run-to-run.
	a := New(Config{SampleRate: 0.25, Seed: 42})
	b := New(Config{SampleRate: 0.25, Seed: 42})
	c := New(Config{SampleRate: 0.25, Seed: 43})

	var idsA, idsB []uint64
	diverged := false
	for i := 0; i < 4096; i++ {
		ia, ib := a.NewID(), b.NewID()
		if ia != ib {
			t.Fatalf("id %d: seed-42 recorders minted %x vs %x", i, ia, ib)
		}
		if a.Sampled(ia) != b.Sampled(ib) {
			t.Fatalf("id %x: sampling decision differs for same seed", ia)
		}
		if a.Sampled(ia) != c.Sampled(ia) {
			diverged = true
		}
		idsA = append(idsA, ia)
		idsB = append(idsB, ib)
	}
	if !diverged {
		t.Fatal("seed 43 sampled the exact same set as seed 42 over 4096 ids")
	}

	// Rate sanity: ~25% of well-spread IDs should be sampled.
	n := 0
	for _, id := range idsA {
		if a.Sampled(id) {
			n++
		}
	}
	if n < len(idsA)/8 || n > len(idsA)/2 {
		t.Fatalf("sample rate 0.25 kept %d of %d ids", n, len(idsA))
	}
	_ = idsB
}

func TestSampleRateBounds(t *testing.T) {
	all := New(Config{SampleRate: 1, Seed: 7})
	none := New(Config{SampleRate: 0, Seed: 7})
	for i := 0; i < 1000; i++ {
		id := all.NewID()
		if !all.Sampled(id) {
			t.Fatalf("rate 1.0 skipped id %x", id)
		}
		if none.Sampled(id) {
			t.Fatalf("rate 0 sampled id %x", id)
		}
	}
	if none.Sampled(0) || all.Sampled(0) {
		t.Fatal("zero trace ID must never be sampled")
	}
}

func TestForcedCaptureOnAnomaly(t *testing.T) {
	r := New(Config{SampleRate: 0, Seed: 1}) // head sampling off entirely
	id := r.NewID()

	// An OK span on an unsampled trace is not kept.
	if r.End(Begin(id, StageSend), OutcomeOK) {
		t.Fatal("unsampled OK span was recorded")
	}
	// An anomalous outcome forces capture...
	if !r.End(Begin(id, StageAdmission), OutcomeRateLimited) {
		t.Fatal("rate-limited span was not force-captured")
	}
	// ...and extends to later stages of the same trace.
	if !r.End(Begin(id, StageOpen), OutcomeOK) {
		t.Fatal("post-anomaly span of a forced trace was dropped")
	}
	// Other traces stay unsampled.
	if r.End(Begin(r.NewID(), StageOpen), OutcomeOK) {
		t.Fatal("unrelated trace rode along with the forced one")
	}

	spans := r.TraceSpans(id)
	if len(spans) != 2 {
		t.Fatalf("TraceSpans: got %d spans, want 2", len(spans))
	}
	if spans[0].Stage != StageAdmission || spans[0].Outcome != OutcomeRateLimited {
		t.Fatalf("first captured span = %s/%s", spans[0].Stage, spans[0].Outcome)
	}
}

func TestSlowThresholdForcesCapture(t *testing.T) {
	r := New(Config{SampleRate: 0, SlowThreshold: time.Millisecond, Seed: 1})
	id := r.NewID()
	fast := Span{TraceID: id, Stage: StageParse, Start: 1, Duration: int64(time.Microsecond)}
	if r.Record(fast) {
		t.Fatal("fast span recorded with sampling off")
	}
	slow := Span{TraceID: id, Stage: StageParse, Start: 1, Duration: int64(2 * time.Millisecond)}
	if !r.Record(slow) {
		t.Fatal("slow span not force-captured")
	}
}

func TestAttrRejectsOversizedAndBinary(t *testing.T) {
	var sp Span
	sp.SetAttr("op", "relayRound")
	if sp.AttrCount() != 1 {
		t.Fatal("plain attr rejected")
	}
	// Oversized value: rejected, not truncated.
	sp.SetAttr("big", strings.Repeat("x", MaxAttrBytes+1))
	// Binary value (ciphertext-shaped): rejected.
	sp.SetAttr("bin", string([]byte{0x01, 0x9f, 0x00}))
	// Control characters: rejected.
	sp.SetAttr("ctl", "line1\nline2")
	// Binary key: rejected.
	sp.SetAttr(string([]byte{0xff}), "v")
	if sp.AttrCount() != 1 {
		t.Fatalf("invalid attrs accepted: %d attrs, want 1", sp.AttrCount())
	}
	// Capacity bound: the array never grows.
	sp.SetAttr("err", "rate-limited")
	sp.SetAttr("overflow", "dropped")
	if sp.AttrCount() != maxAttrs {
		t.Fatalf("attr capacity: got %d, want %d", sp.AttrCount(), maxAttrs)
	}
}

func TestRingOverwriteCountsDrops(t *testing.T) {
	r := New(Config{SampleRate: 1, Shards: 1, ShardCap: 8, Seed: 1})
	id := r.NewID()
	for i := 0; i < 20; i++ {
		r.Record(Span{TraceID: id, Stage: StageSend, Start: int64(i), Duration: 1})
	}
	rec, dropped := r.Stats()
	if rec != 20 {
		t.Fatalf("recorded = %d, want 20", rec)
	}
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
	if got := len(r.Snapshot()); got != 8 {
		t.Fatalf("snapshot holds %d spans, want ring cap 8", got)
	}
}

func TestSnapshotOrdered(t *testing.T) {
	r := New(Config{SampleRate: 1, Shards: 4, Seed: 9})
	ids := []uint64{r.NewID(), r.NewID(), r.NewID()}
	for i, id := range ids {
		r.Record(Span{TraceID: id, Stage: StageOpen, Start: int64(100 - i), Duration: 1})
		r.Record(Span{TraceID: id, Stage: StageSeal, Start: int64(100 - i), Duration: 1})
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.Start > b.Start {
			t.Fatalf("snapshot not start-ordered at %d", i)
		}
		if a.Start == b.Start && a.TraceID == b.TraceID && a.Stage > b.Stage {
			t.Fatalf("same-instant spans not in stage order at %d", i)
		}
	}
}

func TestIDRoundTrip(t *testing.T) {
	r := New(Config{Seed: 5})
	for i := 0; i < 100; i++ {
		id := r.NewID()
		if id == 0 {
			t.Fatal("NewID minted zero")
		}
		if got := ParseID(FormatID(id)); got != id {
			t.Fatalf("round trip: %x -> %q -> %x", id, FormatID(id), got)
		}
	}
	for _, bad := range []string{"", "xyz", "12345678901234567", "0x12", "-1"} {
		if ParseID(bad) != 0 {
			t.Fatalf("ParseID(%q) != 0", bad)
		}
	}
}

func TestNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	if r.NewID() != 0 || r.Sampled(1) || r.End(Begin(1, StageSeal), OutcomeOK) {
		t.Fatal("nil recorder did something")
	}
	r.Force(1)
	if r.Snapshot() != nil {
		t.Fatal("nil recorder snapshotted")
	}
	rec, drop := r.Stats()
	if rec != 0 || drop != 0 {
		t.Fatal("nil recorder has stats")
	}
}

// TestConcurrentWritesVsDebugReads hammers the rings from writer
// goroutines while readers scrape /debug/traces — the -race CI jobs
// turn this into a data-race proof for the ring/mutex scheme.
func TestConcurrentWritesVsDebugReads(t *testing.T) {
	r := New(Config{SampleRate: 1, Shards: 4, ShardCap: 128, Seed: 3})
	srv := httptest.NewServer(r.DebugHandler())
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := r.NewID()
				sp := Begin(id, StageEnqueue)
				sp.SetAttr("op", "relayRound")
				r.End(sp, OutcomeOK)
				r.End(Begin(id, StageDeliver), OutcomeQuota)
			}
		}()
	}
	client := srv.Client()
	for i := 0; i < 25; i++ {
		resp, err := client.Get(srv.URL + "?outcome=relay-quota-exceeded")
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		var page PageJSON
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatalf("scrape %d: bad JSON: %v", i, err)
		}
		resp.Body.Close()
		for _, sp := range page.Spans {
			if sp.Outcome != "relay-quota-exceeded" {
				t.Fatalf("outcome filter leaked %q", sp.Outcome)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Filter checks on a quiesced recorder.
	resp, err := client.Get(srv.URL + "?stage=deliver&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page PageJSON
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Spans) == 0 || len(page.Spans) > 5 {
		t.Fatalf("stage filter + limit returned %d spans", len(page.Spans))
	}
	for _, sp := range page.Spans {
		if sp.Stage != "deliver" {
			t.Fatalf("stage filter leaked %q", sp.Stage)
		}
	}
}

func TestStageOutcomeNames(t *testing.T) {
	for s := Stage(0); s < stageCount; s++ {
		name := s.String()
		got, ok := ParseStage(name)
		if !ok || got != s {
			t.Fatalf("stage %d name %q does not round-trip", s, name)
		}
	}
	for o := Outcome(0); o < outcomeCount; o++ {
		name := o.String()
		got, ok := ParseOutcome(name)
		if !ok || got != o {
			t.Fatalf("outcome %d name %q does not round-trip", o, name)
		}
	}
	if OutcomeError.Anomalous() || OutcomeOK.Anomalous() {
		t.Fatal("ok/error must not force capture")
	}
	for _, o := range []Outcome{OutcomeRateLimited, OutcomeQuota, OutcomeWALError, OutcomeAlert} {
		if !o.Anomalous() {
			t.Fatalf("%s must force capture", o)
		}
	}
}
