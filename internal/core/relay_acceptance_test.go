package core_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/relay"
)

// TestRelayHundredRecipientsThirtyPercentOffline is the subsystem's
// acceptance scenario: a 100-recipient round with 30 recipients offline
// is sealed and uploaded ONCE (one sender signature, one full wire),
// sliced relay-side, delivered immediately to the 70 online members,
// queued for the 30 offline ones, and fully drained when they log back
// in — every slice opening correctly at its recipient, with per-
// recipient wire bytes O(N) instead of the full wire's O(N²) fan-out.
func TestRelayHundredRecipientsThirtyPercentOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 100 RSA keys")
	}
	const (
		n        = 100
		nOffline = 30
	)
	sender, members, pubs := newSliceParties(t, n)

	signsBefore := sender.kp.SignCalls()
	d, err := core.SealGroupDetached(sender.kp, sender.id, "g", []byte("acceptance round"), pubs)
	if err != nil {
		t.Fatal(err)
	}
	if got := sender.kp.SignCalls() - signsBefore; got != 1 {
		t.Fatalf("sealing cost %d sender signatures, want exactly 1", got)
	}

	// The sender's upload: ONE full wire, not one per recipient.
	upload := d.Wire()
	uploadedOnce := len(upload)
	clientSideFanOut := n * len(upload) // what PR 2's path would send
	if uploadedOnce*10 >= clientSideFanOut {
		t.Fatalf("upload %dB not an order cheaper than client-side fan-out %dB", uploadedOnce, clientSideFanOut)
	}

	// The relay re-cuts the uploaded bytes without keys; each recipient
	// receives O(N) bytes (shared ciphertext + own wrap + log-proof),
	// not the O(N²)-per-round full wire.
	sliced, err := core.SliceRound(upload)
	if err != nil {
		t.Fatal(err)
	}
	slices := sliced.Slices()
	for i, s := range slices {
		if len(s)*10 > len(upload) {
			t.Fatalf("slice %d is %dB, not <1/10 of the %dB full wire", i, len(s), len(upload))
		}
	}

	// Presence: the last nOffline members are logged out at send time.
	var mu sync.Mutex
	online := make(map[keys.PeerID]bool, n)
	ids := make([]keys.PeerID, n)
	delivered := make(map[keys.PeerID][]byte, n)
	for i, m := range members {
		ids[i] = m.id
		online[m.id] = i < n-nOffline
	}
	bus := events.NewBus()
	r, rerr := relay.New(relay.Config{Shards: 4},
		func(id keys.PeerID) bool { mu.Lock(); defer mu.Unlock(); return online[id] },
		func(it relay.Item) error {
			mu.Lock()
			defer mu.Unlock()
			if !online[it.To] {
				return errors.New("unreachable")
			}
			if _, dup := delivered[it.To]; dup {
				return fmt.Errorf("duplicate delivery to %s", it.To)
			}
			delivered[it.To] = it.Payload
			return nil
		})
	if rerr != nil {
		t.Fatal(rerr)
	}
	defer r.Close()
	defer r.BindBus(bus)()

	direct, queued := 0, 0
	for i := range ids {
		switch r.Submit(relay.Item{To: ids[i], From: sender.id, Group: "g", Payload: slices[i]}) {
		case relay.SubmitDirect:
			direct++
		case relay.SubmitQueued:
			queued++
		default:
			t.Fatalf("slice %d dropped by open relay", i)
		}
	}
	if direct != n-nOffline || queued != nOffline {
		t.Fatalf("direct=%d queued=%d, want %d/%d", direct, queued, n-nOffline, nOffline)
	}
	if got := r.QueuedTotal(); got != nOffline {
		t.Fatalf("relay holds %d slices, want %d", got, nOffline)
	}

	// The offline members log back in; presence events drain the queues.
	for i := n - nOffline; i < n; i++ {
		mu.Lock()
		online[ids[i]] = true
		mu.Unlock()
		bus.Emit(events.Event{Type: events.PresenceUpdate, From: ids[i],
			Payload: map[string]string{"status": advert.StatusOnline}})
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		got := len(delivered)
		mu.Unlock()
		if got == n {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Every member — present or returned — opens exactly its own slice.
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != n {
		t.Fatalf("delivered to %d of %d recipients", len(delivered), n)
	}
	for i, m := range members {
		wire, ok := delivered[m.id]
		if !ok {
			t.Fatalf("recipient %d never received its slice", i)
		}
		guard := core.NewReplayGuard(time.Minute, 16)
		opened, err := core.OpenSlice(m.kp, wire, guard)
		if err != nil {
			t.Fatalf("recipient %d open: %v", i, err)
		}
		if string(opened.Body) != "acceptance round" {
			t.Fatalf("recipient %d body = %q", i, opened.Body)
		}
		if err := opened.VerifySignature(sender.kp.Public()); err != nil {
			t.Fatalf("recipient %d signature: %v", i, err)
		}
	}
	m := r.Metrics()
	if m.DeliveredDirect != uint64(n-nOffline) || m.DeliveredFlushed != uint64(nOffline) ||
		m.DroppedOverflow != 0 || m.Expired != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}
