package membership

import (
	"math/rand"
	"testing"
	"time"

	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
)

func TestNoneJoin(t *testing.T) {
	m := NewNone()
	id, err := m.Join("alice")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if id.Secure() {
		t.Fatal("None identity reports Secure")
	}
	if id.PeerID != keys.LegacyPeerID("alice") {
		t.Fatalf("peer id = %q", id.PeerID)
	}
	if m.Current() != id {
		t.Fatal("Current != joined identity")
	}
	m.Resign()
	if m.Current() != nil {
		t.Fatal("identity survived Resign")
	}
	if _, err := m.Join(""); err == nil {
		t.Fatal("Join(\"\") succeeded")
	}
}

func TestPSEJoinCreatesCBID(t *testing.T) {
	m := NewPSE("", 0)
	id, err := m.Join("alice")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !id.Secure() {
		t.Fatal("PSE identity not Secure")
	}
	if !keys.IsCBID(id.PeerID) {
		t.Fatalf("peer id %q is not a CBID", id.PeerID)
	}
	if err := keys.VerifyCBID(id.PeerID, id.Keys.Public()); err != nil {
		t.Fatalf("CBID binding: %v", err)
	}
}

func TestPSEJoinStableWithinProcess(t *testing.T) {
	m := NewPSE("", 0)
	a, err := m.Join("alice")
	if err != nil {
		t.Fatal(err)
	}
	m.Resign()
	b, err := m.Join("alice")
	if err != nil {
		t.Fatal(err)
	}
	if a.PeerID != b.PeerID {
		t.Fatal("re-join produced a different identity")
	}
	c, err := m.Join("bob")
	if err != nil {
		t.Fatal(err)
	}
	if c.PeerID == a.PeerID {
		t.Fatal("distinct aliases share an identity")
	}
}

func TestPSEPersistence(t *testing.T) {
	dir := t.TempDir()
	m1 := NewPSE(dir, 0)
	id1, err := m1.Join("alice")
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// A second service over the same directory must recover the key.
	m2 := NewPSE(dir, 0)
	id2, err := m2.Join("alice")
	if err != nil {
		t.Fatalf("Join (reload): %v", err)
	}
	if id1.PeerID != id2.PeerID {
		t.Fatal("persisted identity differs across reload")
	}
}

func TestPSECredentialPersistence(t *testing.T) {
	dir := t.TempDir()
	issuer, err := keys.KeyPairFrom(rand.New(rand.NewSource(5)), keys.DefaultRSABits)
	if err != nil {
		t.Fatal(err)
	}
	issuerID, _ := keys.CBID(issuer.Public())

	m1 := NewPSE(dir, 0)
	id, err := m1.Join("alice")
	if err != nil {
		t.Fatal(err)
	}
	c, err := cred.Issue(issuer, issuerID, id.PeerID, "alice", cred.RoleClient, id.Keys.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.SetCredential(c); err != nil {
		t.Fatalf("SetCredential: %v", err)
	}

	m2 := NewPSE(dir, 0)
	id2, err := m2.Join("alice")
	if err != nil {
		t.Fatal(err)
	}
	if id2.Credential == nil {
		t.Fatal("credential not restored from keystore")
	}
	if !id2.Credential.Equal(c) {
		t.Fatal("restored credential differs")
	}
}

func TestPSESetCredentialChecks(t *testing.T) {
	m := NewPSE("", 0)
	issuer, _ := keys.KeyPairFrom(rand.New(rand.NewSource(6)), keys.DefaultRSABits)
	issuerID, _ := keys.CBID(issuer.Public())

	// No identity yet.
	someCred, err := cred.Issue(issuer, issuerID, issuerID, "x", cred.RoleClient, issuer.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetCredential(someCred); err != ErrNotJoined {
		t.Fatalf("SetCredential before Join = %v", err)
	}

	// Credential for a different key.
	id, _ := m.Join("alice")
	if err := m.SetCredential(someCred); err == nil {
		t.Fatal("SetCredential accepted foreign-key credential")
	}
	good, err := cred.Issue(issuer, issuerID, id.PeerID, "alice", cred.RoleClient, id.Keys.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetCredential(good); err != nil {
		t.Fatalf("SetCredential: %v", err)
	}
	if m.Current().Credential == nil {
		t.Fatal("credential not attached")
	}
}

func TestPSERejectsBadAlias(t *testing.T) {
	m := NewPSE("", 0)
	for _, alias := range []string{"", "a/b", `a\b`} {
		if _, err := m.Join(alias); err == nil {
			t.Errorf("Join(%q) succeeded", alias)
		}
	}
}
