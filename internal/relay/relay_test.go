package relay_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/relay"
	"jxtaoverlay/internal/waituntil"
)

// sink collects deliveries and simulates per-peer reachability.
type sink struct {
	mu        sync.Mutex
	online    map[keys.PeerID]bool
	delivered map[keys.PeerID][]string
	fail      bool
}

func newSink() *sink {
	return &sink{online: make(map[keys.PeerID]bool), delivered: make(map[keys.PeerID][]string)}
}

func (s *sink) setOnline(id keys.PeerID, on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.online[id] = on
}

func (s *sink) isOnline(id keys.PeerID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.online[id]
}

func (s *sink) deliver(it relay.Item) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail || !s.online[it.To] {
		return errors.New("unreachable")
	}
	s.delivered[it.To] = append(s.delivered[it.To], string(it.Payload))
	return nil
}

func (s *sink) got(id keys.PeerID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.delivered[id]...)
}

func mustRelay(t *testing.T, cfg relay.Config, s *sink) *relay.Relay {
	t.Helper()
	r, err := relay.New(cfg, s.isOnline, s.deliver)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	waituntil.Must(t, 5*time.Second, cond, "condition not reached within 5s")
}

func item(to keys.PeerID, payload string) relay.Item {
	return relay.Item{To: to, From: "sender", Group: "g", Payload: []byte(payload)}
}

func TestDirectDeliveryWhenOnline(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{}, s)
	defer r.Close()
	s.setOnline("bob", true)
	if r.Submit(item("bob", "hello")) != relay.SubmitDirect {
		t.Fatal("online submit not delivered directly")
	}
	if got := s.got("bob"); len(got) != 1 || got[0] != "hello" {
		t.Fatalf("delivered = %v", got)
	}
	if m := r.Metrics(); m.DeliveredDirect != 1 || m.Enqueued != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestQueueAndFlushOnPresence(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{}, s)
	defer r.Close()
	bus := events.NewBus()
	defer r.BindBus(bus)()

	for i := 0; i < 3; i++ {
		if r.Submit(item("bob", fmt.Sprintf("m%d", i))) != relay.SubmitQueued {
			t.Fatal("offline submit not queued")
		}
	}
	if r.QueueLen("bob") != 3 {
		t.Fatalf("queue len = %d", r.QueueLen("bob"))
	}
	// The login path: presence flips online, the bus announces it.
	s.setOnline("bob", true)
	col := events.NewCollector(bus)
	bus.Emit(events.Event{Type: events.PresenceUpdate, From: "bob", Payload: map[string]string{"status": advert.StatusOnline}})
	waitFor(t, func() bool { return len(s.got("bob")) == 3 })
	// FIFO order survives the queue.
	if got := s.got("bob"); got[0] != "m0" || got[1] != "m1" || got[2] != "m2" {
		t.Fatalf("order = %v", got)
	}
	if _, ok := col.WaitFor(events.RelayFlushed, 2*time.Second); !ok {
		t.Fatal("no RelayFlushed event")
	}
	if m := r.Metrics(); m.DeliveredFlushed != 3 || m.Enqueued != 3 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestTTLExpiryMidQueue: items with caller-set expiries interleaved in
// one queue — the expired middle item is discarded at drain while its
// neighbors deliver.
func TestTTLExpiryMidQueue(t *testing.T) {
	var clock atomic.Int64 // seconds
	now := func() time.Time { return time.Unix(1000+clock.Load(), 0) }
	s := newSink()
	r := mustRelay(t, relay.Config{Clock: now, TTL: time.Hour}, s)
	defer r.Close()

	longLived := func(p string) relay.Item {
		it := item("bob", p)
		it.Expires = now().Add(time.Hour)
		return it
	}
	shortLived := func(p string) relay.Item {
		it := item("bob", p)
		it.Expires = now().Add(10 * time.Second)
		return it
	}
	r.Submit(longLived("keep0"))
	r.Submit(shortLived("drop"))
	r.Submit(longLived("keep1"))

	clock.Store(60) // the middle item is now expired; the others are not
	s.setOnline("bob", true)
	r.Flush("bob")
	waitFor(t, func() bool { return len(s.got("bob")) == 2 })
	if got := s.got("bob"); got[0] != "keep0" || got[1] != "keep1" {
		t.Fatalf("delivered = %v", got)
	}
	if m := r.Metrics(); m.Expired != 1 {
		t.Fatalf("expired = %d, want 1", m.Expired)
	}
}

// TestOverflowDropsOldestInOrder: a full queue sheds its OLDEST items,
// and what survives still delivers in FIFO order.
func TestOverflowDropsOldestInOrder(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{QueueCap: 3}, s)
	defer r.Close()
	for i := 0; i < 5; i++ {
		r.Submit(item("bob", fmt.Sprintf("m%d", i)))
	}
	if m := r.Metrics(); m.DroppedOverflow != 2 {
		t.Fatalf("dropped = %d, want 2", m.DroppedOverflow)
	}
	s.setOnline("bob", true)
	r.Flush("bob")
	waitFor(t, func() bool { return len(s.got("bob")) == 3 })
	if got := s.got("bob"); got[0] != "m2" || got[1] != "m3" || got[2] != "m4" {
		t.Fatalf("survivors = %v, want m2 m3 m4", got)
	}
}

// TestFailedFlushKeepsRemainder: delivery failing mid-drain (the peer
// vanished again) re-queues the failed item at the FRONT, preserving
// order for the next flush.
func TestFailedFlushKeepsRemainder(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{}, s)
	defer r.Close()
	r.Submit(item("bob", "m0"))
	r.Submit(item("bob", "m1"))
	// Peer "online" but the wire is down: the drain must not lose items.
	s.mu.Lock()
	s.online["bob"] = true
	s.fail = true
	s.mu.Unlock()
	r.Flush("bob")
	waitFor(t, func() bool { return r.Metrics().DeliverErrors >= 1 })
	if r.QueueLen("bob") != 2 {
		t.Fatalf("queue len after failed flush = %d, want 2", r.QueueLen("bob"))
	}
	s.mu.Lock()
	s.fail = false
	s.mu.Unlock()
	r.Flush("bob")
	waitFor(t, func() bool { return len(s.got("bob")) == 2 })
	if got := s.got("bob"); got[0] != "m0" || got[1] != "m1" {
		t.Fatalf("order = %v", got)
	}
}

// TestTransientFailureRetriesWhileOnline: a delivery failure against a
// peer that STAYS online gets no presence event to re-trigger the
// drain, so the relay must recover on its own via the delayed retry —
// no manual Flush, no login.
func TestTransientFailureRetriesWhileOnline(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{}, s)
	defer r.Close()
	s.mu.Lock()
	s.online["bob"] = true
	s.fail = true
	s.mu.Unlock()
	r.Submit(item("bob", "m0")) // direct fails, queued; triggered drain fails too
	waitFor(t, func() bool {
		return r.Metrics().DeliverErrors >= 2 && r.QueueLen("bob") == 1
	})
	// The wire heals; nothing else happens. The armed retry must deliver.
	s.mu.Lock()
	s.fail = false
	s.mu.Unlock()
	waitFor(t, func() bool { return len(s.got("bob")) == 1 })
	if got := s.got("bob"); got[0] != "m0" {
		t.Fatalf("delivered = %v", got)
	}
}

// TestDirectSuccessDrainsStragglers: a straggler left queued by a
// failed drain is flushed by the next successful DIRECT delivery to the
// same peer — newer traffic must not permanently overtake it.
func TestDirectSuccessDrainsStragglers(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{}, s)
	defer r.Close()
	r.Submit(item("bob", "m0")) // offline: queued
	s.setOnline("bob", true)
	if r.Submit(item("bob", "m1")) != relay.SubmitDirect {
		t.Fatal("online submit not delivered directly")
	}
	waitFor(t, func() bool { return len(s.got("bob")) == 2 })
	seen := map[string]bool{}
	for _, p := range s.got("bob") {
		seen[p] = true
	}
	if !seen["m0"] || !seen["m1"] {
		t.Fatalf("delivered = %v", s.got("bob"))
	}
}

// TestConcurrentFlushEnqueueRace: submitters race a peer that logs in
// mid-stream. Whatever interleaving happens, every item is delivered
// exactly once — none lost to the gap between the online check and the
// enqueue, none duplicated by the re-triggered flush. Run under -race
// (the CI GOMAXPROCS=4 job does).
func TestConcurrentFlushEnqueueRace(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{QueueCap: 10000, TTL: time.Hour, Shards: 4}, s)
	defer r.Close()
	bus := events.NewBus()
	defer r.BindBus(bus)()

	const senders, perSender = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				r.Submit(item("bob", fmt.Sprintf("s%d-m%d", g, i)))
			}
		}(g)
	}
	// The peer logs in while the senders are mid-burst.
	time.Sleep(time.Millisecond)
	s.setOnline("bob", true)
	bus.Emit(events.Event{Type: events.PresenceUpdate, From: "bob", Payload: map[string]string{"status": advert.StatusOnline}})
	wg.Wait()

	waitFor(t, func() bool { return len(s.got("bob")) == senders*perSender })
	got := s.got("bob")
	seen := make(map[string]bool, len(got))
	for _, p := range got {
		if seen[p] {
			t.Fatalf("duplicate delivery of %s", p)
		}
		seen[p] = true
	}
	if r.QueueLen("bob") != 0 {
		t.Fatalf("residual queue: %d", r.QueueLen("bob"))
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	s := newSink()
	r := mustRelay(t, relay.Config{}, s)
	r.Submit(item("bob", "m0"))
	r.Close()
	// A closed relay must own up to discarding the item — reporting it
	// queued would let a broker tell the sender it awaits delivery.
	if got := r.Submit(item("bob", "m1")); got != relay.SubmitDropped {
		t.Fatalf("submit after close = %v, want SubmitDropped", got)
	}
	r.Flush("bob") // must not panic or hang
}
