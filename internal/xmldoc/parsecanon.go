package xmldoc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"unicode/utf8"
	"unsafe"
)

// Canonical-subset fast-path parser.
//
// Every inbound wire in this system — advertisements at the broker,
// envelope and round headers at clients, credentials everywhere —
// carries XML produced by Canonical(). ParseCanonical parses exactly
// that subset (plus harmless whitespace slack) with a hand-rolled byte
// lexer instead of encoding/xml's token stream, built around four
// ideas:
//
//  1. zero-copy extraction: names, attribute values and text are
//     subslices of the input (via one unsafe string view), so a parse
//     allocates a handful of slabs instead of one token per node;
//  2. slab allocation: all Elements of a document come from chunked
//     slabs, all child-pointer slices from one arena — parsing a
//     15-element advertisement costs ~4 allocations;
//  3. name interning: the fixed tag vocabulary (SecureMessage,
//     SecureRound, Signature, credential fields, …) resolves to shared
//     string constants, so names neither allocate nor pin the input;
//  4. canonical-memo seeding: while lexing, the parser proves per
//     element whether its input segment is byte-identical to what
//     Canonical() would re-emit (attributes sorted with exact spacing,
//     only canonical escapes, text before children, no trim effect).
//     Verbatim elements get their canonical memo seeded from the input
//     subslice, so the Canonical()/CanonicalSkip() calls inside
//     signature verification are pointer reads, not re-serializations.
//
// Hardening: the grammar is a strict SUBSET of what the encoding/xml
// reference parser accepts. There are no DTDs, entities beyond the
// canonical escape set, processing instructions, comments, CDATA,
// namespaces, or unbounded nesting — a document using any of them is
// rejected in O(position) work, so entity-expansion and deep-recursion
// attacks have no surface. The differential fuzz test
// (FuzzParseCanonical) pins both directions: accepted inputs parse to
// trees byte-identical to the reference parser's, and any input that is
// already in canonical form is always accepted.
//
// ALIASING CONTRACT: the returned tree (its strings and any seeded
// canonical memos) references data directly. The caller must not modify
// data for the lifetime of the tree. Receive paths parse buffers they
// own and never touch again, which is exactly this contract.

// ErrCanonicalSyntax is the base error for ParseCanonical rejections.
// It wraps every syntax failure, so callers can distinguish "outside
// the canonical subset" from other error classes with errors.Is.
var ErrCanonicalSyntax = errors.New("xmldoc: input outside the canonical XML subset")

// maxCanonicalDepth bounds element nesting so a hostile document cannot
// drive the recursive-descent parser arbitrarily deep. Real documents
// in this system nest 4 levels (advertisement → Signature → KeyInfo →
// Credential fields).
const maxCanonicalDepth = 64

func canonErr(pos int, what string) error {
	return fmt.Errorf("%w (%s at byte %d)", ErrCanonicalSyntax, what, pos)
}

// Process-wide ingest counters. ParseCanonical guards every wire
// receive surface in the system, so its failure count IS the "malformed
// input reaching us" signal operators watch; two uncontended atomic
// adds against a multi-microsecond parse are measurement noise (the
// gated ParseCold benchmark holds this path to its baseline).
var (
	parseCanonCalls    atomic.Uint64
	parseCanonFailures atomic.Uint64
)

// ParseCanonicalStats reports how many ParseCanonical calls have run
// process-wide and how many of them rejected their input.
func ParseCanonicalStats() (calls, failures uint64) {
	return parseCanonCalls.Load(), parseCanonFailures.Load()
}

// internedNames maps the fixed element/attribute vocabulary to shared
// constants. Map lookups keyed by a substring do not allocate, and a
// hit means the Element name neither allocates nor pins the input
// buffer. Misses fall back to a zero-copy subslice of the input.
var internedNames = buildInterned(
	// envelope / round headers
	"SecureMessage", "SecureRound", "Sender", "Group", "BodyDigest",
	"Time", "Nonce", "Recipients", "SliceRoot", "Signature",
	// XMLdsig
	"SignedInfo", "CanonicalizationMethod", "SignatureMethod",
	"DigestMethod", "DigestValue", "SignatureValue", "KeyInfo",
	// credentials
	"Credential", "Subject", "SubjectName", "Role", "Issuer", "Key",
	"NotBefore", "NotAfter", "CredentialChain",
	// advertisements
	"PipeAdvertisement", "PeerAdvertisement", "PresenceAdvertisement",
	"FileListAdvertisement", "GroupAdvertisement", "StatsAdvertisement",
	"Id", "Type", "Name", "PeerID", "Desc", "Status", "File", "Size",
	"Digest", "Seen", "Creator", "GroupID", "Services", "Service",
	"UptimeSec", "MsgsSent", "MsgsRecv", "BytesSent", "BytesRecv",
	// login / renewal / user database
	"SecureLoginRequest", "SecureRenewRequest", "User", "Pass", "Sid",
	"Timestamp", "DBRequest", "DBResponse", "Op", "Broker", "Groups",
	"OK", "Err",
)

func buildInterned(names ...string) map[string]string {
	m := make(map[string]string, len(names))
	for _, n := range names {
		m[n] = n
	}
	return m
}

// entity is one escape sequence the canonical subset accepts. The
// textCanon/attrCanon flags record whether Canonical() itself emits
// this exact byte form in that context — the condition for the
// enclosing element to keep its verbatim (memo-seedable) status.
// Anything outside this table — &apos;, general character references,
// and therefore every DTD-defined entity — is rejected.
type entity struct {
	raw       string
	ch        byte
	textCanon bool
	attrCanon bool
}

var entities = [...]entity{
	{"&amp;", '&', true, true},
	{"&lt;", '<', true, true},
	{"&gt;", '>', true, false},
	{"&quot;", '"', false, true},
	{"&#x9;", '\t', false, true},
	{"&#xA;", '\n', false, true},
	{"&#xD;", '\r', true, true},
}

type canonParser struct {
	data []byte
	s    string // zero-copy view of data
	pos  int

	depth int

	// Chunked slabs. Addresses handed out stay valid because chunks are
	// only ever resliced forward, never reallocated in place.
	elemChunk    []Element
	elemEstimate int // size of the next element chunk to allocate
	kidChunk     []*Element
	seedChunk    [][]byte

	// Scratch stacks shared across the recursion; each frame works on
	// its tail past a saved mark.
	childStack []*Element
	textStack  []string
	attrBuf    []Attr
}

// ParseCanonical parses a single XML document in the canonical subset
// (see the package comment above). On success the tree is equivalent to
// what Parse would produce for the same bytes; when the input is
// already in canonical form, each element's canonical memo is seeded
// from the matching input subslice, making a later Canonical() call a
// pointer read that returns bytes aliasing data.
//
// The returned tree references data; the caller must not modify data
// afterwards.
func ParseCanonical(data []byte) (*Element, error) {
	root, err := parseCanonical(data)
	parseCanonCalls.Add(1)
	if err != nil {
		parseCanonFailures.Add(1)
	}
	return root, err
}

func parseCanonical(data []byte) (*Element, error) {
	if len(data) == 0 {
		return nil, ErrEmptyDocument
	}
	p := &canonParser{
		data: data,
		s:    unsafe.String(unsafe.SliceData(data), len(data)),
	}
	// One pass over the input sizes the first element slab; done once
	// here (not per chunk refill) so parse work stays linear even on
	// element-dense input.
	p.elemEstimate = bytes.Count(data, []byte{'<'})/2 + 1
	if p.elemEstimate > 256 {
		p.elemEstimate = 256
	} else if p.elemEstimate < 8 {
		p.elemEstimate = 8
	}
	p.skipOuterSpace()
	if p.pos >= len(p.s) {
		return nil, ErrEmptyDocument
	}
	root, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	p.skipOuterSpace()
	if p.pos != len(p.s) {
		return nil, canonErr(p.pos, "content after document element")
	}
	return root, nil
}

// skipOuterSpace consumes whitespace outside the document element. The
// reference parser drops any top-level character data; restricting it
// to whitespace here is deliberate hardening (prologue junk rejected).
func (p *canonParser) skipOuterSpace() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *canonParser) skipTagSpace() int {
	start := p.pos
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return p.pos - start
		}
	}
	return p.pos - start
}

func isNameStart(c byte) bool {
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c == '_'
}

func isNameByte(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '.'
}

// scanName lexes an element or attribute name. The charset is the
// ASCII portion of XML names minus ':' — the canonical subset has no
// namespaces, and rejecting the separator outright means a prefixed
// name can never silently alias its local part.
func (p *canonParser) scanName() (string, error) {
	start := p.pos
	if p.pos >= len(p.s) || !isNameStart(p.s[p.pos]) {
		return "", canonErr(p.pos, "invalid name")
	}
	p.pos++
	for p.pos < len(p.s) && isNameByte(p.s[p.pos]) {
		p.pos++
	}
	n := p.s[start:p.pos]
	if in, ok := internedNames[n]; ok {
		return in, nil
	}
	return n, nil
}

func (p *canonParser) newElem() *Element {
	if len(p.elemChunk) == 0 {
		// First chunk is sized from the one-time '<' count (small
		// documents get a right-sized slab); refills use a fixed size so
		// element-dense input costs O(1) per refill, never a rescan.
		n := p.elemEstimate
		p.elemEstimate = 256
		p.elemChunk = make([]Element, n)
	}
	e := &p.elemChunk[0]
	p.elemChunk = p.elemChunk[1:]
	return e
}

// takeKids copies the child pointers accumulated past mark into the
// pointer arena and truncates the scratch stack.
func (p *canonParser) takeKids(mark int) []*Element {
	n := len(p.childStack) - mark
	if n == 0 {
		return nil
	}
	if len(p.kidChunk) < n {
		c := n
		if c < 64 {
			c = 64
		}
		p.kidChunk = make([]*Element, c)
	}
	out := p.kidChunk[:n:n]
	p.kidChunk = p.kidChunk[n:]
	copy(out, p.childStack[mark:])
	p.childStack = p.childStack[:mark]
	return out
}

// seedMemo installs b as e's memoized canonical bytes. Only called when
// the lexer proved the segment verbatim-canonical, so Canonical() on e
// returns the input subslice unchanged. Mutators invalidate seeded
// memos exactly like computed ones — it is the same atomic slot.
func (p *canonParser) seedMemo(e *Element, b []byte) {
	if len(p.seedChunk) == 0 {
		p.seedChunk = make([][]byte, 16)
	}
	sp := &p.seedChunk[0]
	p.seedChunk = p.seedChunk[1:]
	*sp = b
	e.canon.Store(sp)
}

func (p *canonParser) parseElement() (*Element, error) {
	if p.depth >= maxCanonicalDepth {
		return nil, canonErr(p.pos, "nesting too deep")
	}
	p.depth++
	defer func() { p.depth-- }()

	start := p.pos
	if p.pos >= len(p.s) || p.s[p.pos] != '<' {
		return nil, canonErr(p.pos, "expected element")
	}
	p.pos++
	if p.pos < len(p.s) && (p.s[p.pos] == '!' || p.s[p.pos] == '?') {
		// DTDs, comments, CDATA and processing instructions are outside
		// the subset by construction — rejected here, before any content
		// is interpreted, with work proportional to the scanned prefix.
		return nil, canonErr(p.pos, "markup declaration not in canonical subset")
	}
	name, err := p.scanName()
	if err != nil {
		return nil, err
	}
	e := p.newElem()
	e.Name = name

	// verbatim tracks whether the input segment for this element is
	// byte-identical to its canonical serialization; any deviation —
	// spacing, unsorted attributes, non-canonical escapes, self-closing
	// form, text after children, trimmed whitespace — clears it.
	verbatim := true
	selfClose := false
	p.attrBuf = p.attrBuf[:0]
	prevAttr := ""
	for {
		wsStart := p.pos
		ws := p.skipTagSpace()
		if p.pos >= len(p.s) {
			return nil, canonErr(p.pos, "unterminated start tag")
		}
		c := p.s[p.pos]
		if c == '>' {
			if ws != 0 {
				verbatim = false
			}
			p.pos++
			break
		}
		if c == '/' {
			if p.pos+1 >= len(p.s) || p.s[p.pos+1] != '>' {
				return nil, canonErr(p.pos, "malformed empty-element tag")
			}
			p.pos += 2
			selfClose = true
			verbatim = false // Canonical() never emits <X/>
			break
		}
		if ws == 0 {
			return nil, canonErr(p.pos, "expected whitespace before attribute")
		}
		if ws != 1 || p.s[wsStart] != ' ' {
			verbatim = false
		}
		aname, err := p.scanName()
		if err != nil {
			return nil, err
		}
		if aname == "xmlns" {
			// The reference parser drops xmlns attributes; the subset has
			// no namespaces, so carrying one is rejected rather than
			// silently dropped.
			return nil, canonErr(p.pos, "namespace declaration not in canonical subset")
		}
		for i := range p.attrBuf {
			if p.attrBuf[i].Name == aname {
				return nil, canonErr(p.pos, "duplicate attribute")
			}
		}
		if aname <= prevAttr {
			verbatim = false // canonical form sorts attributes strictly
		}
		prevAttr = aname
		if p.skipTagSpace() != 0 {
			verbatim = false
		}
		if p.pos >= len(p.s) || p.s[p.pos] != '=' {
			return nil, canonErr(p.pos, "expected = after attribute name")
		}
		p.pos++
		if p.skipTagSpace() != 0 {
			verbatim = false
		}
		if p.pos >= len(p.s) || p.s[p.pos] != '"' {
			return nil, canonErr(p.pos, "expected double-quoted attribute value")
		}
		p.pos++
		val, valVerbatim, err := p.scanAttrValue()
		if err != nil {
			return nil, err
		}
		if !valVerbatim {
			verbatim = false
		}
		p.pos++ // closing quote, checked by scanAttrValue
		p.attrBuf = append(p.attrBuf, Attr{Name: aname, Value: val})
	}
	if len(p.attrBuf) > 0 {
		e.Attrs = make([]Attr, len(p.attrBuf))
		copy(e.Attrs, p.attrBuf)
	}
	if selfClose {
		return e, nil
	}

	childMark := len(p.childStack)
	textMark := len(p.textStack)
	for {
		piece, pieceVerbatim, err := p.scanText()
		if err != nil {
			return nil, err
		}
		if piece != "" {
			if !pieceVerbatim || len(p.childStack) > childMark {
				// Non-canonical escapes, or character data after a child:
				// Canonical() emits all text before the children.
				verbatim = false
			}
			p.textStack = append(p.textStack, piece)
		}
		if p.pos+1 >= len(p.s) {
			return nil, canonErr(p.pos, "unexpected EOF inside element")
		}
		if p.s[p.pos+1] == '/' {
			p.pos += 2
			ename, err := p.scanName()
			if err != nil {
				return nil, err
			}
			if ename != e.Name {
				return nil, canonErr(p.pos, "mismatched end tag")
			}
			if p.skipTagSpace() != 0 {
				verbatim = false
			}
			if p.pos >= len(p.s) || p.s[p.pos] != '>' {
				return nil, canonErr(p.pos, "malformed end tag")
			}
			p.pos++
			break
		}
		child, err := p.parseElement()
		if err != nil {
			return nil, err
		}
		child.parent = e
		if child.canon.Load() == nil {
			verbatim = false // child not verbatim ⇒ parent segment differs
		}
		p.childStack = append(p.childStack, child)
	}
	e.Children = p.takeKids(childMark)

	switch len(p.textStack) - textMark {
	case 0:
	case 1:
		e.Text = p.textStack[textMark]
	default:
		e.Text = strings.Join(p.textStack[textMark:], "")
	}
	p.textStack = p.textStack[:textMark]
	if len(e.Children) > 0 && e.Text != "" {
		// Reference semantics: container text is trimmed. A trim that
		// changes the text means the input bytes differ from what
		// Canonical() re-emits.
		trimmed := strings.TrimSpace(e.Text)
		if len(trimmed) != len(e.Text) {
			verbatim = false
			e.Text = trimmed
		}
	}
	if verbatim {
		p.seedMemo(e, p.data[start:p.pos:p.pos])
	}
	return e, nil
}

// validHighChars reports whether s (known to contain bytes ≥ 0x80) is
// valid UTF-8 and free of the non-characters the XML character range
// excludes (U+FFFE, U+FFFF) — the same set encoding/xml rejects, so the
// subset property (accepted here ⇒ accepted by the reference parser)
// holds on non-ASCII content too.
func validHighChars(s string) bool {
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			return false
		}
		if r == 0xFFFE || r == 0xFFFF {
			return false
		}
		i += size
	}
	return true
}

// scanEntity decodes the escape starting at the current '&'. Only the
// canonical escape table is accepted.
func (p *canonParser) scanEntity() (ent *entity, err error) {
	rest := p.s[p.pos:]
	for i := range entities {
		if strings.HasPrefix(rest, entities[i].raw) {
			p.pos += len(entities[i].raw)
			return &entities[i], nil
		}
	}
	return nil, canonErr(p.pos, "entity not in canonical escape set")
}

// scanText lexes character data up to the next '<' (or EOF, handled by
// the caller). It returns the decoded text, zero-copy when no escapes
// occur, plus whether the raw bytes are exactly what Canonical() would
// emit for the decoded value.
//
// Strictness (all narrower than the reference parser, so canonical
// input is unaffected): raw '>' is rejected — canonical text always
// escapes it, and rejecting it closes the unescaped "]]>" divergence —
// and so are '\r' (the reference normalizes line endings; the subset
// has no raw carriage returns to normalize) and all other control
// bytes, plus invalid UTF-8.
func (p *canonParser) scanText() (string, bool, error) {
	start := p.pos
	pieceStart := p.pos
	var b *strings.Builder
	verbatim := true
	checkUTF8 := false
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch {
		case c == '<':
			goto done
		case c == '&':
			ent, err := p.scanEntity() // advances past the escape
			if err != nil {
				return "", false, err
			}
			if b == nil {
				// No Grow: the Builder's geometric growth keeps the decode
				// amortized-linear in the piece length; pre-reserving the
				// remaining document here would make escape-dense input
				// quadratic in allocation.
				b = &strings.Builder{}
			}
			b.WriteString(p.s[pieceStart : p.pos-len(ent.raw)])
			b.WriteByte(ent.ch)
			pieceStart = p.pos
			if !ent.textCanon {
				verbatim = false
			}
			continue
		case c == '>':
			return "", false, canonErr(p.pos, "unescaped > in character data")
		case c < 0x20 && c != '\t' && c != '\n':
			return "", false, canonErr(p.pos, "control byte in character data")
		case c >= utf8.RuneSelf:
			checkUTF8 = true
		}
		p.pos++
	}
done:
	raw := p.s[pieceStart:p.pos]
	if checkUTF8 && !validHighChars(p.s[start:p.pos]) {
		return "", false, canonErr(start, "invalid character data encoding")
	}
	if b == nil {
		return raw, verbatim, nil
	}
	b.WriteString(raw)
	return b.String(), verbatim, nil
}

// scanAttrValue lexes a double-quoted attribute value, stopping AT the
// closing quote. Raw '<' is forbidden (as in XML proper); raw '\t' and
// '\n' are legal but non-canonical (Canonical() escapes them), raw '\r'
// and other control bytes are rejected outright.
func (p *canonParser) scanAttrValue() (string, bool, error) {
	start := p.pos
	pieceStart := p.pos
	var b *strings.Builder
	verbatim := true
	checkUTF8 := false
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		switch {
		case c == '"':
			raw := p.s[pieceStart:p.pos]
			if checkUTF8 && !validHighChars(p.s[start:p.pos]) {
				return "", false, canonErr(start, "invalid attribute value encoding")
			}
			if b == nil {
				return raw, verbatim, nil
			}
			b.WriteString(raw)
			return b.String(), verbatim, nil
		case c == '&':
			ent, err := p.scanEntity()
			if err != nil {
				return "", false, err
			}
			if b == nil {
				// No Grow: the Builder's geometric growth keeps the decode
				// amortized-linear in the piece length; pre-reserving the
				// remaining document here would make escape-dense input
				// quadratic in allocation.
				b = &strings.Builder{}
			}
			b.WriteString(p.s[pieceStart : p.pos-len(ent.raw)])
			b.WriteByte(ent.ch)
			pieceStart = p.pos
			if !ent.attrCanon {
				verbatim = false
			}
			continue
		case c == '<':
			return "", false, canonErr(p.pos, "raw < in attribute value")
		case c == '\t' || c == '\n':
			verbatim = false // legal XML, but Canonical() escapes these
		case c < 0x20:
			return "", false, canonErr(p.pos, "control byte in attribute value")
		case c >= utf8.RuneSelf:
			checkUTF8 = true
		}
		p.pos++
	}
	return "", false, canonErr(p.pos, "unterminated attribute value")
}
