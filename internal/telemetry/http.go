package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	GET /metrics       Prometheus-style text exposition
//	GET /metrics.json  JSON array of Samples (admin metrics consumes this)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	r.mu.Lock()
	for pattern, h := range r.routes {
		mux.Handle(pattern, h)
	}
	r.mu.Unlock()
	return mux
}

// Handle mounts an extra route on the registry's HTTP surface — the
// way /debug/traces rides the same server as /metrics. Must be called
// before Handler/Serve; routes added later are not picked up by an
// already-built mux.
func (r *Registry) Handle(pattern string, h http.Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.routes == nil {
		r.routes = make(map[string]http.Handler)
	}
	r.routes[pattern] = h
}

// Server is a running metrics endpoint.
type Server struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr }

// Close shuts the endpoint down.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// Serve exposes the registry on addr (e.g. "127.0.0.1:9090", or ":0"
// for an ephemeral port) and returns once the listener is bound, so
// callers can read Addr immediately.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	// Explicit read-header AND write deadlines: the endpoint serves
	// point-in-time snapshots, so a slow or stalled scraper must never
	// pin a handler goroutine (or the response buffer) indefinitely.
	srv := &http.Server{
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      10 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, addr: ln.Addr().String()}, nil
}

// Fetch retrieves a snapshot from a running endpoint's /metrics.json.
// The base URL may be "host:port", "http://host:port" or the full
// ".../metrics.json" path — the tool-facing forms `admin metrics`
// accepts.
func Fetch(ctx context.Context, base string) ([]Sample, error) {
	url := base
	if len(url) < 7 || (url[:7] != "http://" && (len(url) < 8 || url[:8] != "https://")) {
		url = "http://" + url
	}
	if len(url) < len("/metrics.json") || url[len(url)-len("/metrics.json"):] != "/metrics.json" {
		url += "/metrics.json"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("telemetry: %s returned %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	var samples []Sample
	if err := json.Unmarshal(body, &samples); err != nil {
		return nil, fmt.Errorf("telemetry: bad snapshot from %s: %w", url, err)
	}
	return samples, nil
}

// RenderText formats fetched samples the way WriteText renders a live
// registry (without help text, which does not travel in JSON).
func RenderText(w io.Writer, samples []Sample) error {
	for _, s := range samples {
		if s.Kind == "histogram" {
			if _, err := fmt.Fprintf(w, "%-52s count=%d sum=%g\n", s.Name, s.Count, s.Sum); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-52s %g\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}
