package core

import (
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"jxtaoverlay/internal/keys"
)

// Process-wide replay-guard rejection counters, aggregated across every
// guard instance (clients and brokers alike): a replayed or stale
// secure message is a security signal wherever it lands, and the
// telemetry export reads these with zero per-guard bookkeeping.
var (
	replayRejectedTotal atomic.Uint64
	staleRejectedTotal  atomic.Uint64
)

// ReplayStats reports how many messages all ReplayGuards in the process
// have rejected as replayed (digest/nonce already seen) and as stale
// (signed timestamp outside the freshness window).
func ReplayStats() (replayed, stale uint64) {
	return replayRejectedTotal.Load(), staleRejectedTotal.Load()
}

// The paper's messenger primitives are deliberately stateless and
// best-effort (§4.3): no handshake, no sequence numbers — which means a
// captured secure message can be replayed verbatim and will decrypt and
// verify again. ReplayGuard is the optional hardening the paper's
// "further work" invites: a bounded window of recently seen envelope
// digests plus a freshness bound on the signed timestamp. It keeps the
// primitive stateless on the wire (nothing is negotiated) at the cost of
// per-receiver memory.

// ReplayGuard tracks recently seen secure messages.
type ReplayGuard struct {
	// Window is how far in the past (and future, for clock skew) a
	// message timestamp may lie.
	window time.Duration
	// maxEntries bounds memory; oldest entries are evicted first.
	maxEntries int

	mu sync.Mutex
	// seen maps each admitted digest/nonce to the instant it stops
	// mattering: sentAt + window, the moment the freshness check alone
	// would reject any replay. Keying expiry to the SIGNED timestamp
	// (not the admission clock) is what makes pruning safe: an entry is
	// only ever dropped once a replay of it would fail ErrMessageStale
	// anyway, so a future-dated message (allowed clock skew) stays
	// tracked for up to 2×window rather than being pruned while still
	// replayable.
	seen      map[string]time.Time
	nextSweep time.Time
	clock     func() time.Time
}

// NewReplayGuard creates a guard accepting messages within the given
// freshness window (0 = 2 minutes) and remembering up to maxEntries
// digests (0 = 4096).
func NewReplayGuard(window time.Duration, maxEntries int) *ReplayGuard {
	if window <= 0 {
		window = 2 * time.Minute
	}
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &ReplayGuard{
		window:     window,
		maxEntries: maxEntries,
		seen:       make(map[string]time.Time),
		clock:      time.Now,
	}
}

// SetClock overrides the time source (tests).
func (g *ReplayGuard) SetClock(now func() time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.clock = now
}

// Check admits a message exactly once within the freshness window. The
// wire bytes identify the message (any bit flip would already fail
// decryption or signature checks); sentAt is the signed timestamp from
// the opened envelope.
func (g *ReplayGuard) Check(wire []byte, sentAt time.Time) error {
	return g.admit(hex.EncodeToString(keys.SHA256(wire)), sentAt)
}

// CheckRound admits a group round nonce exactly once per sender within
// the freshness window. Round wires are identical for every recipient,
// so the wire digest alone cannot tell a fresh round from a malicious
// round member re-encrypting the same signed header to the same
// recipient set — the signed nonce can: it is single-use, and any reuse
// across rounds is a replay.
func (g *ReplayGuard) CheckRound(sender keys.PeerID, nonce []byte, sentAt time.Time) error {
	return g.admit("round\x00"+string(sender)+"\x00"+hex.EncodeToString(nonce), sentAt)
}

func (g *ReplayGuard) admit(key string, sentAt time.Time) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	now := g.clock()
	if d := now.Sub(sentAt); d > g.window || d < -g.window {
		staleRejectedTotal.Add(1)
		return ErrMessageStale
	}
	if _, dup := g.seen[key]; dup {
		replayRejectedTotal.Add(1)
		return ErrMessageReplayed
	}
	// Prune entries whose window has fully passed. The sweep is
	// amortized — at most every window/4, or when the map hits its
	// budget — so a long-lived broker's per-message cost stays O(1)
	// while its memory tracks live traffic, not lifetime traffic.
	if !now.Before(g.nextSweep) || len(g.seen) >= g.maxEntries {
		for k, exp := range g.seen {
			if now.After(exp) {
				delete(g.seen, k)
			}
		}
		g.nextSweep = now.Add(g.window / 4)
	}
	if len(g.seen) >= g.maxEntries {
		// Still over budget after pruning: evict the entry closest to
		// expiry (the shortest remaining replay exposure).
		var soonestK string
		var soonestT time.Time
		first := true
		for k, exp := range g.seen {
			if first || exp.Before(soonestT) {
				soonestK, soonestT, first = k, exp, false
			}
		}
		delete(g.seen, soonestK)
	}
	g.seen[key] = sentAt.Add(g.window)
	return nil
}

// Len reports how many digests are currently tracked.
func (g *ReplayGuard) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.seen)
}
