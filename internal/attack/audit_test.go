// Audit-journal negatives: the tamper-evident security log's adversary
// is the disk itself — an attacker with write access to the journal
// directory (or a failing device) who can flip bits, truncate, reorder
// records and restore old snapshots. The contract under test: every
// such move is detected by offline verification, pinned to the exact
// first bad segment and byte offset, and the one move that is
// internally undetectable (rollback to a record boundary) is convicted
// by the externally remembered trust point. The flip side matters just
// as much: an untampered multi-segment journal, checkpoints and all,
// must verify clean end to end against the deployment's trust anchor.
package attack_test

import (
	"testing"
	"time"

	"jxtaoverlay/internal/audit"
	"jxtaoverlay/internal/cred"
	"jxtaoverlay/internal/keys"
)

type auditParty struct {
	kp    *keys.KeyPair
	chain []*cred.Credential
	trust *cred.TrustStore
}

// newAuditParty builds a broker signing identity chained to a fresh
// admin anchor.
func newAuditParty(t *testing.T) *auditParty {
	t.Helper()
	adminKP, err := keys.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	adm, err := cred.SelfSigned(adminKP, "admin", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	brKP, err := keys.NewKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	brID, err := keys.CBID(brKP.Public())
	if err != nil {
		t.Fatal(err)
	}
	brCred, err := cred.Issue(adminKP, adm.Subject, brID, "broker-1", cred.RoleBroker, brKP.Public(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := cred.NewTrustStore(adm)
	if err != nil {
		t.Fatal(err)
	}
	return &auditParty{kp: brKP, chain: []*cred.Credential{brCred}, trust: ts}
}

// sealedJournal writes a multi-segment, multi-checkpoint journal and
// closes it — the artifact the adversary attacks.
func sealedJournal(t *testing.T, p *auditParty, dir string, events int) {
	t.Helper()
	j, err := audit.Open(audit.Options{
		Dir: dir, SyncInterval: -1, SegmentBytes: 1 << 10,
		CheckpointEvery: 8, Signer: p.kp, Chain: p.chain,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < events; i++ {
		e := audit.Event{Kind: audit.KindRateLimited, Peer: "urn:jxta:cbid-mallory", Op: "publishAdv", Reason: "rate-limited", Trace: uint64(i)}
		if j.Record(e) == 0 {
			t.Fatal("append failed")
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditUntamperedVerifiesClean: the baseline the negatives hang
// off — a clean multi-segment journal passes full-chain verification,
// every checkpoint signature chains to the anchor, and the signer is
// attributed by certified name.
func TestAuditUntamperedVerifiesClean(t *testing.T) {
	p := newAuditParty(t)
	dir := t.TempDir()
	sealedJournal(t, p, dir, 48)
	rep, err := audit.Verify(dir, audit.VerifyOptions{Trust: p.trust})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean journal reported fault: %v", rep.Fault)
	}
	if rep.Segments < 2 {
		t.Fatalf("fixture too small: %d segments, need rotation exercised", rep.Segments)
	}
	if rep.Checkpoints < 2 || rep.Signer != "broker-1" {
		t.Fatalf("checkpoints %d signer %q, want >=2 signed by broker-1", rep.Checkpoints, rep.Signer)
	}
}

// TestAuditBitFlipPinpointed: one flipped bit under intact framing is
// caught (CRC layer) at exactly the damaged record's offset.
func TestAuditBitFlipPinpointed(t *testing.T) {
	p := newAuditParty(t)
	dir := t.TempDir()
	sealedJournal(t, p, dir, 48)
	loc, err := audit.FlipBit(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Verify(dir, audit.VerifyOptions{Trust: p.trust})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("bit flip not detected")
	}
	if rep.Fault.Segment != loc.Segment || rep.Fault.Offset != loc.Offset {
		t.Fatalf("fault at %s@%d, flipped record at %s@%d", rep.Fault.Segment, rep.Fault.Offset, loc.Segment, loc.Offset)
	}
	if rep.Fault.Seq != loc.Seq-1 {
		t.Fatalf("last good seq %d, want %d", rep.Fault.Seq, loc.Seq-1)
	}
}

// TestAuditTruncationPinpointed: a truncation mid-record fails to
// decode at exactly the torn record's offset.
func TestAuditTruncationPinpointed(t *testing.T) {
	p := newAuditParty(t)
	dir := t.TempDir()
	sealedJournal(t, p, dir, 48)
	loc, err := audit.TearRecord(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Verify(dir, audit.VerifyOptions{Trust: p.trust})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("truncation not detected")
	}
	if rep.Fault.Segment != loc.Segment || rep.Fault.Offset != loc.Offset {
		t.Fatalf("fault at %s@%d, tear at %s@%d", rep.Fault.Segment, rep.Fault.Offset, loc.Segment, loc.Offset)
	}
}

// TestAuditReorderPinpointed: swapping two adjacent records preserves
// every byte and every CRC — only the chain (sequence + prev-hash
// continuity) convicts it, at the first displaced record.
func TestAuditReorderPinpointed(t *testing.T) {
	p := newAuditParty(t)
	dir := t.TempDir()
	sealedJournal(t, p, dir, 48)
	loc, err := audit.SwapRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := audit.Verify(dir, audit.VerifyOptions{Trust: p.trust})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("reorder not detected — CRCs alone cannot catch it, the chain must")
	}
	if rep.Fault.Segment != loc.Segment || rep.Fault.Offset != loc.Offset {
		t.Fatalf("fault at %s@%d, first displaced record at %s@%d", rep.Fault.Segment, rep.Fault.Offset, loc.Segment, loc.Offset)
	}
}

// TestAuditRollbackNeedsTrustPoint: truncating back to an earlier
// checkpoint leaves a journal that is internally self-consistent — it
// verifies clean in isolation (that is the attack) and is convicted
// only when held against the remembered head+seq, with the fault placed
// at the journal's end where the missing suffix should begin.
func TestAuditRollbackNeedsTrustPoint(t *testing.T) {
	p := newAuditParty(t)
	dir := t.TempDir()
	sealedJournal(t, p, dir, 48)

	before, err := audit.Verify(dir, audit.VerifyOptions{Trust: p.trust})
	if err != nil {
		t.Fatal(err)
	}
	if !before.OK() {
		t.Fatalf("fixture: %v", before.Fault)
	}

	loc, err := audit.Rollback(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Without the trust point the rollback is invisible: everything on
	// disk is genuine broker output.
	alone, err := audit.Verify(dir, audit.VerifyOptions{Trust: p.trust})
	if err != nil {
		t.Fatal(err)
	}
	if !alone.OK() {
		t.Fatalf("rollback should be internally consistent, got %v", alone.Fault)
	}
	if alone.LastSeq != loc.Seq || alone.LastSeq >= before.LastSeq {
		t.Fatalf("rollback fixture: ends at seq %d (checkpoint %d, originally %d)", alone.LastSeq, loc.Seq, before.LastSeq)
	}

	// With it, the verdict flips.
	rep, err := audit.Verify(dir, audit.VerifyOptions{
		Trust: p.trust, ExpectHead: before.Head[:], ExpectSeq: before.LastSeq,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("rollback not detected against the remembered trust point")
	}
	if rep.Fault.Seq != loc.Seq {
		t.Fatalf("rollback fault after seq %d, want the checkpoint seq %d", rep.Fault.Seq, loc.Seq)
	}

	// ExpectSeq alone (no head) must also convict — the seq is the
	// cheaper trust point to remember.
	rep, err = audit.Verify(dir, audit.VerifyOptions{ExpectSeq: before.LastSeq})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("rollback not detected by ExpectSeq alone")
	}
}

// TestAuditForgedCheckpointRejected: rewriting history coherently —
// recomputing CRCs and the hash chain — still fails at the first
// checkpoint, because its signature covers the chain head and the
// adversary does not hold the broker key. This is the layer that makes
// the journal tamper-EVIDENT rather than merely checksummed.
func TestAuditForgedCheckpointRejected(t *testing.T) {
	p := newAuditParty(t)
	dir := t.TempDir()
	sealedJournal(t, p, dir, 48)

	// The adversary's best coherent rewrite: flip a bit, then "repair"
	// the journal by re-chaining everything after it. Simulate the
	// repair with a second journal whose first record differs — rather
	// than hand-rolling the re-chain — by writing a fresh journal with
	// an attacker key and checking its checkpoints fail the DEPLOYMENT
	// trust store even though the chain itself is perfectly consistent.
	attacker := newAuditParty(t)
	forged := t.TempDir()
	sealedJournal(t, attacker, forged, 16)

	// Structurally valid (attacker signed it properly)…
	structural, err := audit.Verify(forged, audit.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !structural.OK() {
		t.Fatalf("forged journal should be structurally valid: %v", structural.Fault)
	}
	// …but not attributable to the deployment's broker.
	rep, err := audit.Verify(forged, audit.VerifyOptions{Trust: p.trust})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("checkpoint signed by a non-deployment key verified against the deployment anchor")
	}
	if rep.Fault.Reason == "" {
		t.Fatal("fault carries no reason")
	}
}
