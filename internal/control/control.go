// Package control implements the Control Module: the intermediate layer
// between the Broker and Client Modules providing the generic group
// management and messaging machinery (paper §2.2).
//
// Concretely it owns the per-group input pipes of a peer (client peers
// bind one input pipe per group; brokers a single shared one), pumps
// deliveries to registered message handlers, and runs the periodic
// presence announcer each client uses to broadcast its advertisements.
package control

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/discovery"
	"jxtaoverlay/internal/endpoint"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/pipes"
)

// MsgHandler consumes messages arriving on a group input pipe.
type MsgHandler func(group string, d pipes.Delivery)

// Module is the shared messaging substrate of a JXTA-Overlay entity.
type Module struct {
	ep    *endpoint.Service
	cache *discovery.Cache
	bus   *events.Bus

	mu       sync.Mutex
	inPipes  map[string]*pipes.InputPipe // by group
	pipeAdvs map[string]*advert.Pipe
	handler  MsgHandler
	pumpWG   sync.WaitGroup
	closed   bool

	announceCancel context.CancelFunc
}

// New creates a control module over an endpoint.
func New(ep *endpoint.Service, cache *discovery.Cache, bus *events.Bus) *Module {
	return &Module{
		ep:       ep,
		cache:    cache,
		bus:      bus,
		inPipes:  make(map[string]*pipes.InputPipe),
		pipeAdvs: make(map[string]*advert.Pipe),
	}
}

// Endpoint returns the underlying endpoint service.
func (m *Module) Endpoint() *endpoint.Service { return m.ep }

// Cache returns the local advertisement cache.
func (m *Module) Cache() *discovery.Cache { return m.cache }

// Bus returns the event bus.
func (m *Module) Bus() *events.Bus { return m.bus }

// SetMessageHandler installs the consumer for pipe deliveries. It must
// be set before pipes are bound.
func (m *Module) SetMessageHandler(h MsgHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handler = h
}

// ErrClosed is returned after Close.
var ErrClosed = errors.New("control: module closed")

// BindGroupPipe creates (or returns) the input pipe for a group and its
// advertisement. The advertisement is cached locally; publishing it to
// the broker is the caller's job.
func (m *Module) BindGroupPipe(group string) (*advert.Pipe, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if adv, ok := m.pipeAdvs[group]; ok {
		return adv, nil
	}
	pipeID, err := advert.NewID("pipe")
	if err != nil {
		return nil, err
	}
	adv := &advert.Pipe{
		PipeID:   pipeID,
		PipeType: advert.PipeUnicast,
		Name:     fmt.Sprintf("msg/%s/%s", group, m.ep.PeerID()),
		PeerID:   m.ep.PeerID(),
		Group:    group,
	}
	in, err := pipes.CreateInputPipe(m.ep, adv, 128)
	if err != nil {
		return nil, err
	}
	if err := m.cache.PutAdv(adv); err != nil {
		in.Close()
		return nil, err
	}
	m.inPipes[group] = in
	m.pipeAdvs[group] = adv

	m.pumpWG.Add(1)
	go m.pump(group, in)
	return adv, nil
}

func (m *Module) pump(group string, in *pipes.InputPipe) {
	defer m.pumpWG.Done()
	for {
		select {
		case d := <-in.Chan():
			m.mu.Lock()
			h := m.handler
			m.mu.Unlock()
			if h != nil {
				h(group, d)
			}
		case <-in.Done():
			return
		}
	}
}

// UnbindGroupPipe closes and forgets the group's input pipe.
func (m *Module) UnbindGroupPipe(group string) {
	m.mu.Lock()
	in := m.inPipes[group]
	delete(m.inPipes, group)
	delete(m.pipeAdvs, group)
	m.mu.Unlock()
	if in != nil {
		in.Close()
	}
}

// GroupPipeAdv returns the local pipe advertisement for a group.
func (m *Module) GroupPipeAdv(group string) (*advert.Pipe, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	adv, ok := m.pipeAdvs[group]
	return adv, ok
}

// BoundGroups lists groups with bound pipes.
func (m *Module) BoundGroups() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.inPipes))
	for g := range m.inPipes {
		out = append(out, g)
	}
	return out
}

// SendOnPipe resolves a unicast pipe advertisement and sends one message
// through it.
func (m *Module) SendOnPipe(adv *advert.Pipe, msg *endpoint.Message) error {
	out, err := pipes.ResolveOutputPipe(m.ep, adv)
	if err != nil {
		return err
	}
	return out.Send(msg)
}

// PublishFunc pushes an advertisement document to the network (the
// client module implements it as a broker publish).
type PublishFunc func(ctx context.Context, adv advert.Advertisement) error

// StartAnnouncer begins periodic presence broadcasting for the given
// groups provider. It stops when the module closes or StopAnnouncer is
// called. Each tick publishes one presence advertisement per group, as
// JXTA-Overlay clients do.
func (m *Module) StartAnnouncer(interval time.Duration, name string, groupsFn func() []string, publish PublishFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	m.mu.Lock()
	if m.announceCancel != nil {
		m.announceCancel()
	}
	m.announceCancel = cancel
	m.mu.Unlock()

	m.pumpWG.Add(1)
	go func() {
		defer m.pumpWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				for _, g := range groupsFn() {
					pres := &advert.Presence{
						PeerID: m.ep.PeerID(),
						Name:   name,
						Group:  g,
						Status: advert.StatusOnline,
						Seen:   time.Now(),
					}
					pubCtx, pubCancel := context.WithTimeout(ctx, interval)
					_ = publish(pubCtx, pres)
					pubCancel()
				}
			}
		}
	}()
}

// StopAnnouncer halts presence broadcasting.
func (m *Module) StopAnnouncer() {
	m.mu.Lock()
	cancel := m.announceCancel
	m.announceCancel = nil
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Close unbinds every pipe and stops background work.
func (m *Module) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	pipesToClose := make([]*pipes.InputPipe, 0, len(m.inPipes))
	for _, in := range m.inPipes {
		pipesToClose = append(pipesToClose, in)
	}
	m.inPipes = map[string]*pipes.InputPipe{}
	m.pipeAdvs = map[string]*advert.Pipe{}
	cancel := m.announceCancel
	m.announceCancel = nil
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	for _, in := range pipesToClose {
		in.Close()
	}
}

// Emit is a convenience for modules above to publish an event.
func (m *Module) Emit(t events.Type, from keys.PeerID, group string, payload map[string]string, data []byte) {
	m.bus.Emit(events.Event{Type: t, From: from, Group: group, Payload: payload, Data: data})
}
