package proto

import "testing"

func TestOKRoundTrip(t *testing.T) {
	ok, errTok := IsOK(OK())
	if !ok || errTok != "" {
		t.Fatalf("IsOK(OK()) = %v, %q", ok, errTok)
	}
}

func TestFailRoundTrip(t *testing.T) {
	ok, errTok := IsOK(Fail(ErrAuthFailed))
	if ok || errTok != ErrAuthFailed {
		t.Fatalf("IsOK(Fail) = %v, %q", ok, errTok)
	}
}

func TestIsOKNil(t *testing.T) {
	ok, errTok := IsOK(nil)
	if ok || errTok == "" {
		t.Fatalf("IsOK(nil) = %v, %q", ok, errTok)
	}
}

func TestIsOKMissingError(t *testing.T) {
	m := OK()
	m.Set(ElemOK, []byte("0"))
	ok, errTok := IsOK(m)
	if ok || errTok != "unknown" {
		t.Fatalf("IsOK = %v, %q", ok, errTok)
	}
}

func TestResponsesCarryExtraElements(t *testing.T) {
	m := OK().AddString(ElemGroups, "a,b")
	if ok, _ := IsOK(m); !ok {
		t.Fatal("extra elements broke IsOK")
	}
	if v, _ := m.GetString(ElemGroups); v != "a,b" {
		t.Fatalf("groups = %q", v)
	}
}
