// Crash recovery end-to-end: the broker relay runs on its durable WAL,
// dies at each injected fault point with slices still queued, and is
// brought back on the same log. The recovered queues must deliver
// every fsync-acknowledged slice exactly once through the real secure
// pipeline — no loss, no resurrection of delivered traffic, no
// duplicate surfacing past the recipients' replay guards.
package integration_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/core"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/relay/wal"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
	"jxtaoverlay/internal/waituntil"
)

// TestRelayCrashRecoveryExactlyOnce kills the relay at every fault
// point mid-queue and restarts it. Round 1's slice is accepted while
// the log is healthy, so it is fsync-acknowledged and MUST survive.
// Round 2's slice is being appended when the crash fires: it survives
// at every point where its bytes reached the file (everything except
// BeforeAppend — the same table the wal package pins in isolation,
// here verified through the full broker + secure-client stack).
func TestRelayCrashRecoveryExactlyOnce(t *testing.T) {
	for _, p := range []wal.FaultPoint{wal.BeforeAppend, wal.AfterAppend, wal.BeforeSync, wal.AfterSync} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			runCrashRecovery(t, p)
		})
	}
}

func runCrashRecovery(t *testing.T, point wal.FaultPoint) {
	net := simnet.NewNetwork(simnet.LinkProfile{})
	defer net.Close()

	dep, err := core.NewDeployment("admin", 0)
	if err != nil {
		t.Fatal(err)
	}
	db := userdb.NewStoreIter(8)
	names := []string{"alice", "bob", "carol"}
	for _, n := range names {
		db.Register(n, "pw", "g")
	}
	brKP, _ := keys.NewKeyPair()
	brCred, err := dep.IssueBrokerCredential(brKP.Public(), "crash-broker", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust, _ := dep.TrustStore()
	br, err := broker.New(broker.Config{
		Name: "crash-broker", PeerID: brCred.Subject, Net: net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
		RequireSecureLogin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if _, err := core.EnableBrokerSecurity(br, core.BrokerConfig{
		KeyPair: brKP, Credential: brCred, Trust: trust, RequireSignedAdvs: true,
	}); err != nil {
		t.Fatal(err)
	}

	// Sync-per-append relay on a durable log, with an armable crash.
	walDir := t.TempDir()
	var armed atomic.Bool
	cfg := core.RelayConfig{}
	cfg.WAL.Dir = walDir
	cfg.WAL.Faults = func(fp wal.FaultPoint) error {
		if armed.Load() && fp == point {
			return wal.ErrInjected
		}
		return nil
	}
	rly, err := core.EnableBrokerRelay(br, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rly.Close() }()

	clients := make([]*core.SecureClient, len(names))
	for i, name := range names {
		cl, err := client.New(net, membership.NewPSE("", 0), name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		clTrust, _ := dep.TrustStore()
		sc, err := core.NewSecureClient(cl, clTrust)
		if err != nil {
			t.Fatal(err)
		}
		ctx := ctxT(t, 30*time.Second)
		if err := sc.SecureConnection(ctx, br.PeerID()); err != nil {
			t.Fatalf("%s secureConnection: %v", name, err)
		}
		if err := sc.SecureLogin(ctx, "pw"); err != nil {
			t.Fatalf("%s secureLogin: %v", name, err)
		}
		clients[i] = sc
	}
	alice, bob, carol := clients[0], clients[1], clients[2]
	bobEvents := events.NewCollector(bob.Bus())
	carolEvents := events.NewCollector(carol.Bus())

	// Carol leaves; her slices queue (and persist).
	if err := carol.Logout(ctxT(t, 10*time.Second)); err != nil {
		t.Fatal(err)
	}
	sendRound := func(text string) {
		direct, queued, err := alice.SecureMsgPeerGroupRelay(ctxT(t, 30*time.Second), "g", text)
		if err != nil {
			t.Fatalf("round %q: %v", text, err)
		}
		if direct != 1 || queued != 1 {
			t.Fatalf("round %q: direct=%d queued=%d, want 1/1", text, direct, queued)
		}
	}
	sendRound("round-1") // healthy log: fsync-acked
	armed.Store(true)
	sendRound("round-2") // the log dies appending carol's slice
	if rly.Metrics().WALErrors == 0 {
		t.Fatal("fault never fired — round 2 did not exercise the crash point")
	}

	// The crash: the relay goes down with carol's queue non-empty, and a
	// fresh relay recovers from the same directory.
	rly.Close()
	cfg.WAL.Faults = nil
	rly, err = core.EnableBrokerRelay(br, cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	wantRecovered := uint64(2)
	if point == wal.BeforeAppend {
		wantRecovered = 1 // round 2's bytes never reached the file
	}
	if m := rly.Metrics(); m.RecoveryReplayed != wantRecovered || m.RecoveryDiscardedGuard != 0 {
		t.Fatalf("recovery metrics %+v, want %d replayed / 0 guard-discarded", m, wantRecovered)
	}

	// Carol returns; her recovered queue drains through the real login
	// presence pipeline.
	ctx := ctxT(t, 30*time.Second)
	if err := carol.SecureConnection(ctx, br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if err := carol.SecureLogin(ctx, "pw"); err != nil {
		t.Fatal(err)
	}
	waituntil.True(10*time.Second, func() bool {
		return uint64(len(carolEvents.OfType(events.SecureMessage))) >= wantRecovered
	})
	got := carolEvents.OfType(events.SecureMessage)
	if uint64(len(got)) != wantRecovered {
		t.Fatalf("carol received %d messages after recovery, want %d", len(got), wantRecovered)
	}
	seen := map[string]bool{}
	for _, e := range got {
		if e.Payload["authenticated"] != "true" {
			t.Fatalf("recovered slice not authenticated: %+v", e.Payload)
		}
		if seen[string(e.Data)] {
			t.Fatalf("duplicate delivery of %q", e.Data)
		}
		seen[string(e.Data)] = true
	}
	if !seen["round-1"] {
		t.Fatal("fsync-acknowledged round-1 slice lost")
	}
	if wantRecovered == 2 && !seen["round-2"] {
		t.Fatal("round-2 slice lost despite surviving bytes")
	}

	// Exactly-once, the other half: bob's slices were delivered directly
	// and never entered the log — the restart must not replay anything
	// at him, and nothing must surface twice at carol.
	time.Sleep(150 * time.Millisecond)
	if n := len(bobEvents.OfType(events.SecureMessage)); n != 2 {
		t.Fatalf("bob saw %d messages, want exactly 2 (no post-recovery replays)", n)
	}
	if n := len(carolEvents.OfType(events.SecureMessage)); uint64(n) != wantRecovered {
		t.Fatalf("carol saw %d messages after settling, want %d", n, wantRecovered)
	}
	if n := len(carolEvents.OfType(events.SecurityAlert)); n != 0 {
		t.Fatalf("recovery raised %d security alerts at carol", n)
	}
}
