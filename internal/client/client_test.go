package client_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"jxtaoverlay/internal/advert"
	"jxtaoverlay/internal/broker"
	"jxtaoverlay/internal/client"
	"jxtaoverlay/internal/events"
	"jxtaoverlay/internal/keys"
	"jxtaoverlay/internal/membership"
	"jxtaoverlay/internal/simnet"
	"jxtaoverlay/internal/userdb"
)

// harness assembles one broker, a local user database and n clients on a
// zero-latency network.
type harness struct {
	t   *testing.T
	net *simnet.Network
	br  *broker.Broker
	db  *userdb.Store
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	net := simnet.NewNetwork(simnet.ProfileLocal)
	t.Cleanup(net.Close)
	db := userdb.NewStoreIter(4)
	db.Register("alice", "pw-alice", "math")
	db.Register("bob", "pw-bob", "math")
	db.Register("carol", "pw-carol", "art")
	br, err := broker.New(broker.Config{
		Name:   "broker-1",
		PeerID: keys.LegacyPeerID("broker-1"),
		Net:    net,
		DB: broker.AuthenticatorFunc(func(_ context.Context, u, p string) ([]string, error) {
			return db.Authenticate(u, p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(br.Close)
	return &harness{t: t, net: net, br: br, db: db}
}

func (h *harness) client(alias string) *client.Client {
	h.t.Helper()
	cl, err := client.New(h.net, membership.NewNone(), alias)
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(cl.Close)
	return cl
}

func (h *harness) login(cl *client.Client, password string) {
	h.t.Helper()
	ctx := testCtx(h.t)
	if err := cl.Connect(ctx, h.br.PeerID()); err != nil {
		h.t.Fatalf("Connect: %v", err)
	}
	if err := cl.Login(ctx, password); err != nil {
		h.t.Fatalf("Login: %v", err)
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestConnectLogin(t *testing.T) {
	h := newHarness(t)
	cl := h.client("alice")
	col := events.NewCollector(cl.Bus())
	h.login(cl, "pw-alice")
	if !cl.LoggedIn() {
		t.Fatal("not logged in")
	}
	if got := cl.Groups(); len(got) != 1 || got[0] != "math" {
		t.Fatalf("groups = %v", got)
	}
	if _, ok := col.WaitFor(events.Connected, 5*time.Second); !ok {
		t.Fatal("no Connected event")
	}
	if _, ok := col.WaitFor(events.LoginOK, 5*time.Second); !ok {
		t.Fatal("no LoginOK event")
	}
}

func TestLoginWrongPassword(t *testing.T) {
	h := newHarness(t)
	cl := h.client("alice")
	ctx := testCtx(t)
	if err := cl.Connect(ctx, h.br.PeerID()); err != nil {
		t.Fatal(err)
	}
	col := events.NewCollector(cl.Bus())
	if err := cl.Login(ctx, "wrong"); err == nil {
		t.Fatal("Login with wrong password succeeded")
	}
	if cl.LoggedIn() {
		t.Fatal("client believes it is logged in")
	}
	if _, ok := col.WaitFor(events.LoginFailed, 5*time.Second); !ok {
		t.Fatal("no LoginFailed event")
	}
}

func TestOpsRequireLogin(t *testing.T) {
	h := newHarness(t)
	cl := h.client("alice")
	ctx := testCtx(t)
	if err := cl.Connect(ctx, h.br.PeerID()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetOnlinePeers(ctx, "math"); err == nil {
		t.Fatal("listPeers succeeded before login")
	}
	if err := cl.CreateGroup(ctx, "g", ""); err == nil {
		t.Fatal("groupCreate succeeded before login")
	}
}

func TestSendMsgPeer(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice")
	bob := h.client("bob")
	h.login(alice, "pw-alice")
	h.login(bob, "pw-bob")
	bobEvents := events.NewCollector(bob.Bus())

	ctx := testCtx(t)
	if err := alice.SendMsgPeer(ctx, bob.PeerID(), "math", "hello bob"); err != nil {
		t.Fatalf("SendMsgPeer: %v", err)
	}
	e, ok := bobEvents.WaitFor(events.MessageReceived, 5*time.Second)
	if !ok {
		t.Fatal("bob never received the message")
	}
	if string(e.Data) != "hello bob" || e.From != alice.PeerID() || e.Group != "math" {
		t.Fatalf("event = %+v", e)
	}
	// The original primitive carries no authentication.
	if e.Attr("authenticated") != "false" {
		t.Fatal("plain message claims authentication")
	}
}

func TestSendMsgPeerGroup(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice")
	bob := h.client("bob")
	h.login(alice, "pw-alice")
	h.login(bob, "pw-bob")
	bobEvents := events.NewCollector(bob.Bus())

	ctx := testCtx(t)
	sent, err := alice.SendMsgPeerGroup(ctx, "math", "hi all")
	if err != nil {
		t.Fatalf("SendMsgPeerGroup: %v", err)
	}
	if sent != 1 {
		t.Fatalf("sent = %d, want 1 (bob only, never self)", sent)
	}
	if _, ok := bobEvents.WaitFor(events.MessageReceived, 5*time.Second); !ok {
		t.Fatal("bob missed the group message")
	}
}

func TestGroupIsolation(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice") // math
	carol := h.client("carol") // art
	h.login(alice, "pw-alice")
	h.login(carol, "pw-carol")
	ctx := testCtx(t)
	// carol is not in math: no pipe advertisement exists for her there.
	if err := alice.SendMsgPeer(ctx, carol.PeerID(), "math", "x"); err == nil {
		t.Fatal("message crossed group boundary")
	}
}

func TestGetOnlinePeers(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice")
	bob := h.client("bob")
	h.login(alice, "pw-alice")
	h.login(bob, "pw-bob")
	ctx := testCtx(t)
	peers, err := alice.GetOnlinePeers(ctx, "math")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("online peers = %v", peers)
	}
	names := []string{peers[0].Username, peers[1].Username}
	if !(contains(names, "alice") && contains(names, "bob")) {
		t.Fatalf("names = %v", names)
	}
}

func TestLogoutRemovesPresence(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice")
	bob := h.client("bob")
	h.login(alice, "pw-alice")
	h.login(bob, "pw-bob")
	ctx := testCtx(t)
	if err := bob.Logout(ctx); err != nil {
		t.Fatalf("Logout: %v", err)
	}
	peers, err := alice.GetOnlinePeers(ctx, "math")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0].Username != "alice" {
		t.Fatalf("after logout peers = %v", peers)
	}
}

func TestGroupLifecycle(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice")
	bob := h.client("bob")
	h.login(alice, "pw-alice")
	h.login(bob, "pw-bob")
	ctx := testCtx(t)

	if err := alice.CreateGroup(ctx, "project-x", "joint project"); err != nil {
		t.Fatalf("CreateGroup: %v", err)
	}
	if err := alice.CreateGroup(ctx, "project-x", ""); err == nil {
		t.Fatal("duplicate CreateGroup succeeded")
	}
	if err := alice.JoinGroup(ctx, "project-x"); err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	if err := bob.JoinGroup(ctx, "project-x"); err != nil {
		t.Fatalf("JoinGroup: %v", err)
	}
	if err := bob.JoinGroup(ctx, "missing"); err == nil {
		t.Fatal("JoinGroup to missing group succeeded")
	}

	groups, err := alice.ListGroups(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(groups, "project-x") || !contains(groups, "math") {
		t.Fatalf("groups = %v", groups)
	}

	// Messaging works inside the new group.
	bobEvents := events.NewCollector(bob.Bus())
	if err := alice.SendMsgPeer(ctx, bob.PeerID(), "project-x", "kickoff"); err != nil {
		t.Fatalf("SendMsgPeer in new group: %v", err)
	}
	if _, ok := bobEvents.WaitFor(events.MessageReceived, 5*time.Second); !ok {
		t.Fatal("message in created group not delivered")
	}

	if err := bob.LeaveGroup(ctx, "project-x"); err != nil {
		t.Fatalf("LeaveGroup: %v", err)
	}
	if contains(bob.Groups(), "project-x") {
		t.Fatal("bob still lists project-x")
	}
}

func TestPresencePropagation(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice")
	h.login(alice, "pw-alice")
	aliceEvents := events.NewCollector(alice.Bus())

	bob := h.client("bob")
	h.login(bob, "pw-bob")

	// Alice is told that bob came online in math.
	e, ok := aliceEvents.WaitFor(events.PresenceUpdate, 5*time.Second)
	if !ok {
		t.Fatal("no presence event for bob")
	}
	if e.Attr("user") != "bob" || e.Attr("status") != advert.StatusOnline {
		t.Fatalf("presence event = %+v", e)
	}
}

func TestStatsPrimitives(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice")
	bob := h.client("bob")
	h.login(alice, "pw-alice")
	h.login(bob, "pw-bob")
	ctx := testCtx(t)

	if err := bob.PublishStats(ctx, "math"); err != nil {
		t.Fatalf("PublishStats: %v", err)
	}
	stats, err := alice.GetPeerStats(ctx, bob.PeerID(), "math")
	if err != nil {
		t.Fatalf("GetPeerStats: %v", err)
	}
	if stats.PeerID != bob.PeerID() || stats.MsgsSent == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestMessagingThroughRelay(t *testing.T) {
	h := newHarness(t)
	alice := h.client("alice")
	bob := h.client("bob")
	h.login(alice, "pw-alice")
	h.login(bob, "pw-bob")

	// NAT both directions between the two clients; only the broker path
	// remains, exercising JXTA-Overlay's broker relay role.
	h.net.SetReachable(simnet.NodeID(alice.PeerID()), simnet.NodeID(bob.PeerID()), false)
	h.net.SetReachable(simnet.NodeID(bob.PeerID()), simnet.NodeID(alice.PeerID()), false)

	bobEvents := events.NewCollector(bob.Bus())
	ctx := testCtx(t)
	if err := alice.SendMsgPeer(ctx, bob.PeerID(), "math", "via broker"); err != nil {
		t.Fatalf("SendMsgPeer via relay: %v", err)
	}
	e, ok := bobEvents.WaitFor(events.MessageReceived, 5*time.Second)
	if !ok {
		t.Fatal("relayed message not delivered")
	}
	if string(e.Data) != "via broker" {
		t.Fatalf("payload = %q", e.Data)
	}
}

func TestSecureEnvelopeWithoutExtensionAlerts(t *testing.T) {
	// A raw secure envelope arriving at a plain client must produce a
	// security alert, not a crash or a bogus message event.
	h := newHarness(t)
	alice := h.client("alice")
	bob := h.client("bob")
	h.login(alice, "pw-alice")
	h.login(bob, "pw-bob")
	ctx := testCtx(t)

	pipeAdv, _, err := alice.LookupPipe(ctx, bob.PeerID(), "math")
	if err != nil {
		t.Fatal(err)
	}
	bobEvents := events.NewCollector(bob.Bus())
	msg := newSecEnvelopeMessage()
	if err := alice.Control().SendOnPipe(pipeAdv, msg); err != nil {
		t.Fatal(err)
	}
	if _, ok := bobEvents.WaitFor(events.SecurityAlert, 5*time.Second); !ok {
		t.Fatal("no security alert for unhandled secure envelope")
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if strings.TrimSpace(s) == want {
			return true
		}
	}
	return false
}
